open Prng

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_replays () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_split_diverges () =
  let a = Rng.create ~seed:3 in
  let child = Rng.split a in
  let clash = ref 0 in
  for _ = 1 to 100 do
    if Rng.bits64 a = Rng.bits64 child then incr clash
  done;
  Alcotest.(check int) "split streams do not collide" 0 !clash

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_int_bound_one () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 always 0" 0 (Rng.int rng 1)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let test_unit_float_range () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let x = Rng.unit_float rng in
    if not (x >= 0.0 && x < 1.0) then Alcotest.fail "unit_float out of [0,1)"
  done

let test_unit_float_pos_range () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let x = Rng.unit_float_pos rng in
    if not (x > 0.0 && x <= 1.0) then Alcotest.fail "unit_float_pos out of (0,1]"
  done

let test_unit_float_mean () =
  let rng = Rng.create ~seed:17 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.unit_float rng
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.01 then Alcotest.failf "mean %f too far from 0.5" mean

let test_bool_balance () =
  let rng = Rng.create ~seed:19 in
  let n = 100_000 in
  let heads = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int n in
  if abs_float (frac -. 0.5) > 0.01 then Alcotest.failf "coin bias %f" frac

let test_float_scales () =
  let rng = Rng.create ~seed:23 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 42.0 in
    if not (x >= 0.0 && x < 42.0) then Alcotest.fail "float out of [0,42)"
  done

(* --- bit-identity against a boxed Int64 reference ------------------------- *)

(* Verbatim xoshiro256** + SplitMix64 on boxed Int64, the representation
   [Rng] used before moving to unboxed half-words.  The production
   generator must replay these streams bit for bit. *)
module Ref64 = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let mix64 z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let splitmix64_next state =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    mix64 !state

  let of_seed64 seed64 =
    let st = ref seed64 in
    let s0 = splitmix64_next st in
    let s1 = splitmix64_next st in
    let s2 = splitmix64_next st in
    let s3 = splitmix64_next st in
    { s0; s1; s2; s3 }

  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let bits64 t =
    let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
    let tmp = Int64.shift_left t.s1 17 in
    t.s2 <- Int64.logxor t.s2 t.s0;
    t.s3 <- Int64.logxor t.s3 t.s1;
    t.s1 <- Int64.logxor t.s1 t.s2;
    t.s0 <- Int64.logxor t.s0 t.s3;
    t.s2 <- Int64.logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result

  let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

  let unit_float t =
    let bits53 = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
    float_of_int bits53 /. 9007199254740992.0

  let bool t = Int64.compare (bits64 t) 0L < 0
end

let test_matches_int64_reference () =
  let seeds =
    [ 0L; 1L; -1L; 42L; 0x9E3779B97F4A7C15L; Int64.max_int; Int64.min_int; -123456789L ]
  in
  List.iter
    (fun seed ->
      let rng = Rng.of_seed64 seed and reference = Ref64.of_seed64 seed in
      for i = 1 to 2_000 do
        match i mod 4 with
        | 0 ->
            Alcotest.(check int64)
              (Printf.sprintf "bits64 seed=%Ld draw=%d" seed i)
              (Ref64.bits64 reference) (Rng.bits64 rng)
        | 1 ->
            let expect = Ref64.unit_float reference and got = Rng.unit_float rng in
            if got <> expect then
              Alcotest.failf "unit_float seed=%Ld draw=%d: %h <> %h" seed i got expect
        | 2 ->
            Alcotest.(check int)
              (Printf.sprintf "bits62 seed=%Ld draw=%d" seed i)
              (Ref64.bits62 reference) (Rng.bits62 rng)
        | _ ->
            Alcotest.(check bool)
              (Printf.sprintf "bool seed=%Ld draw=%d" seed i)
              (Ref64.bool reference) (Rng.bool rng)
      done)
    seeds

let test_split_matches_int64_reference () =
  (* [split] seeds a child from the parent's next word; the child stream
     must equal a reference generator seeded the same way. *)
  let rng = Rng.of_seed64 987654321L and reference = Ref64.of_seed64 987654321L in
  let child = Rng.split rng in
  let ref_child = Ref64.of_seed64 (Ref64.bits64 reference) in
  for _ = 1 to 200 do
    Alcotest.(check int64) "child stream" (Ref64.bits64 ref_child) (Rng.bits64 child)
  done;
  for _ = 1 to 200 do
    Alcotest.(check int64) "parent advanced" (Ref64.bits64 reference) (Rng.bits64 rng)
  done

let test_of_mixed_triple_matches_boxed () =
  (* The unboxed task-key derivation must equal the boxed spelling it
     replaces, including for negative key components. *)
  let keys =
    [
      (0L, 0, 0, 0);
      (42L, 1, 2, 3);
      (-9876543210L, 123456, 654321, 7);
      (0x9E3779B97F4A7C15L, max_int, min_int, -1);
      (Int64.min_int, 0x3FFFFFFF, -0x40000000, 2);
    ]
  in
  List.iter
    (fun (base, a, b, c) ->
      let boxed =
        let s = Rng.mix64 (Int64.add base (Int64.of_int a)) in
        let s = Rng.mix64 (Int64.add s (Int64.of_int b)) in
        let s = Rng.mix64 (Int64.add s (Int64.of_int c)) in
        Rng.of_seed64 s
      in
      let unboxed = Rng.of_mixed_triple ~base ~a ~b ~c in
      for i = 1 to 100 do
        Alcotest.(check int64)
          (Printf.sprintf "triple base=%Ld a=%d b=%d c=%d draw=%d" base a b c i)
          (Rng.bits64 boxed) (Rng.bits64 unboxed)
      done)
    keys

let test_draws_do_not_allocate () =
  (* The whole point of the half-word state: drawing raw bits or bounded
     ints must not allocate at all (unit_float boxes only its result). *)
  let rng = Rng.create ~seed:99 in
  ignore (Rng.bits62 rng);
  let before = Gc.minor_words () in
  let acc = ref 0 in
  for _ = 1 to 10_000 do
    acc := !acc lxor Rng.bits62 rng
  done;
  let after = Gc.minor_words () in
  ignore !acc;
  if after -. before > 64.0 then
    Alcotest.failf "bits62 allocated %.0f words over 10k draws" (after -. before)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bound 1" `Quick test_int_bound_one;
    Alcotest.test_case "int rejects bound<=0" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
    Alcotest.test_case "unit_float_pos range" `Quick test_unit_float_pos_range;
    Alcotest.test_case "unit_float mean" `Quick test_unit_float_mean;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "float scale" `Quick test_float_scales;
    Alcotest.test_case "matches Int64 reference" `Quick test_matches_int64_reference;
    Alcotest.test_case "split matches Int64 reference" `Quick
      test_split_matches_int64_reference;
    Alcotest.test_case "of_mixed_triple matches boxed chain" `Quick
      test_of_mixed_triple_matches_boxed;
    Alcotest.test_case "draws do not allocate" `Quick test_draws_do_not_allocate;
  ]
