(* Obs.Hist: pinned bucket boundaries, quantile error bounds, merge
   associativity, multi-domain recording, and the OBS=0 no-op path of
   the Metrics histograms built on top of it. *)

module H = Obs.Hist
module M = Obs.Metrics

let test_boundaries_pinned () =
  (* The scheme is a wire-adjacent contract (manifests and Prometheus
     dumps carry the bounds), so pin representative edges exactly. *)
  Alcotest.(check (float 0.0)) "bucket 0 bound" 0.0 (H.bound 0);
  Alcotest.(check (float 0.0)) "underflow bound" (Float.ldexp 1.0 (-31)) (H.bound 1);
  Alcotest.(check (float 0.0)) "last bound is +inf" infinity
    (H.bound (H.bucket_count - 1));
  let lands v expect =
    Alcotest.(check (float 0.0)) (Printf.sprintf "%g lands under %g" v expect)
      expect (H.bound (H.index v))
  in
  lands 1.0 1.0;
  (* first subbucket past 1.0: 1 + 1/8 *)
  lands 1.01 1.125;
  lands 3.0 3.0;
  lands 0.7 0.75;
  lands 2.1 2.25;
  lands 100.0 104.0;
  lands 1e-12 (Float.ldexp 1.0 (-31));
  lands 1e9 infinity;
  lands 0.0 0.0;
  lands (-5.0) 0.0;
  lands Float.nan 0.0;
  (* Upper bounds are inclusive: every bound indexes to its own bucket,
     and the bound array is strictly increasing. *)
  for i = 0 to H.bucket_count - 1 do
    Alcotest.(check int) (Printf.sprintf "bound %d self-indexes" i) i
      (H.index (H.bound i));
    if i > 0 && not (H.bound (i - 1) < H.bound i) then
      Alcotest.failf "bounds not increasing at %d" i
  done

let test_quantile_error_bounds () =
  let h = H.create () in
  for v = 1 to 1000 do
    H.record h (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (H.count h);
  List.iter
    (fun (p, true_q) ->
      let est = H.quantile h p in
      let rel = Float.abs (est -. true_q) /. true_q in
      if rel > 0.125 then
        Alcotest.failf "p%g: estimate %g vs true %g (rel err %.3f > 0.125)"
          (p *. 100.) est true_q rel)
    [ (0.5, 500.0); (0.9, 900.0); (0.99, 990.0); (0.999, 999.0) ]

let test_quantile_edges () =
  let h = H.create () in
  Alcotest.(check (float 0.0)) "empty -> 0" 0.0 (H.quantile h 0.5);
  H.record h (-3.0);
  H.record h 0.0;
  Alcotest.(check (float 0.0)) "all non-positive -> 0" 0.0 (H.quantile h 0.99);
  H.reset h;
  H.record h 1e12;
  (* Overflow reports the top finite edge, never infinity. *)
  let q = H.quantile h 0.5 in
  Alcotest.(check bool) "overflow quantile finite" true (Float.is_finite q)

let test_empty_quantile_pinned () =
  (* The mli pins empty quantiles to 0. (not nan) for every p — latency
     dashboards must render a quiet process as zeros.  Pin the whole
     contract: every p (including NaN and out-of-range), both on a live
     histogram and on the snapshot-shaped bucket lists. *)
  let h = H.create () in
  List.iter
    (fun p ->
      let q = H.quantile h p in
      Alcotest.(check (float 0.0)) (Printf.sprintf "empty quantile p=%g" p) 0.0 q;
      Alcotest.(check bool) "never nan" false (Float.is_nan q))
    [ 0.0; 0.5; 0.9; 0.999; 1.0; -1.0; 2.0; Float.nan ];
  Alcotest.(check (float 0.0)) "empty bucket list" 0.0
    (H.quantile_of_buckets [] 0.5);
  Alcotest.(check (float 0.0)) "all-zero bucket counts" 0.0
    (H.quantile_of_buckets [ (1.0, 0); (2.0, 0) ] 0.9);
  Alcotest.(check (float 0.0)) "nan p on empty buckets" 0.0
    (H.quantile_of_buckets [] Float.nan);
  (* Reset returns a used histogram to the pinned empty behavior. *)
  H.record h 5.0;
  H.reset h;
  Alcotest.(check (float 0.0)) "pinned again after reset" 0.0 (H.quantile h 0.99)

let buckets_equal a b =
  Alcotest.(check (list (pair (float 0.0) int))) "buckets equal" (H.buckets a) (H.buckets b)

let fill h values = List.iter (H.record h) values

let test_merge_associative () =
  let va = [ 0.1; 1.0; 1.0; 7.5 ]
  and vb = [ 0.0; 2.0; 1e-20; 3.3 ]
  and vc = [ 100.0; 1e30; 0.5 ] in
  (* (a + b) + c *)
  let left = H.create () in
  let ab = H.create () in
  let a = H.create () and b = H.create () and c = H.create () in
  fill a va; fill b vb; fill c vc;
  H.merge_into ~dst:ab a;
  H.merge_into ~dst:ab b;
  H.merge_into ~dst:left ab;
  H.merge_into ~dst:left c;
  (* a + (b + c) *)
  let right = H.create () in
  let bc = H.create () in
  H.merge_into ~dst:bc b;
  H.merge_into ~dst:bc c;
  H.merge_into ~dst:right a;
  H.merge_into ~dst:right bc;
  buckets_equal left right;
  (* and both equal recording everything into one histogram *)
  let direct = H.create () in
  fill direct (va @ vb @ vc);
  buckets_equal left direct;
  Alcotest.(check int) "merge count" 11 (H.count left)

let test_multi_domain_record () =
  let h = H.create () in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              H.record h (float_of_int ((d * per_domain) + i) /. 1000.0)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" (4 * per_domain) (H.count h);
  Alcotest.(check int) "bucket mass matches"
    (4 * per_domain)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 (H.buckets h))

let test_metrics_quantile_roundtrip () =
  (* Metrics histograms share the Hist bucket scheme, so quantiles
     estimated from their snapshots match the raw histogram. *)
  let r = M.create () in
  let mh = M.histogram ~registry:r "t.hist.q" in
  let raw = H.create () in
  let values = List.init 500 (fun i -> 0.001 *. float_of_int (i + 1)) in
  List.iter (fun v -> M.observe mh v; H.record raw v) values;
  match M.find_value r "t.hist.q" with
  | Some (M.Histogram_v snap) ->
      List.iter
        (fun p ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "p%g agrees" (p *. 100.))
            (H.quantile raw p) (M.hist_quantile snap p))
        [ 0.5; 0.9; 0.99; 0.999 ]
  | _ -> Alcotest.fail "snapshot missing"

let test_noop_mode () =
  (* A dead registry keeps the no-op guarantee end to end: observing
     costs nothing, snapshots are zeroed, quantiles are 0. *)
  let r = M.create ~live:false () in
  let mh = M.histogram ~registry:r "t.dead.hist.q" in
  for _ = 1 to 100 do
    M.observe mh 3.0
  done;
  Alcotest.(check int) "count stays 0" 0 (M.hist_count mh);
  match M.find_value r "t.dead.hist.q" with
  | Some (M.Histogram_v snap) ->
      Alcotest.(check int) "snapshot count 0" 0 snap.M.count;
      Alcotest.(check (float 0.0)) "quantile 0" 0.0 (M.hist_quantile snap 0.99)
  | _ -> Alcotest.fail "dead histogram still listed"

let suite =
  [
    Alcotest.test_case "bucket boundaries pinned" `Quick test_boundaries_pinned;
    Alcotest.test_case "quantile within bucket error" `Quick test_quantile_error_bounds;
    Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
    Alcotest.test_case "empty quantiles pinned to 0" `Quick test_empty_quantile_pinned;
    Alcotest.test_case "merge is associative" `Quick test_merge_associative;
    Alcotest.test_case "multi-domain record" `Quick test_multi_domain_record;
    Alcotest.test_case "metrics snapshot quantiles agree" `Quick test_metrics_quantile_roundtrip;
    Alcotest.test_case "OBS=0 no-op" `Quick test_noop_mode;
  ]
