(* The discrete-event substrate and the distributed protocol equivalences:
   the distributed implementations must produce byte-identical walks to the
   centralised ones. *)

let test_event_queue_order () =
  let q = Netsim.Event_queue.create () in
  List.iter (fun (t, x) -> Netsim.Event_queue.push q ~time:t x)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let rec drain acc =
    match Netsim.Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, x) -> drain (x :: acc)
  in
  Alcotest.(check (list string)) "time order" [ "z"; "a"; "b"; "c" ] (drain [])

let test_event_queue_fifo_ties () =
  let q = Netsim.Event_queue.create () in
  List.iter (fun x -> Netsim.Event_queue.push q ~time:1.0 x) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Netsim.Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, x) -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "FIFO among ties" [ 1; 2; 3; 4; 5 ] (drain [])

let test_event_queue_validation () =
  let q = Netsim.Event_queue.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Event_queue.push: time must be a non-negative number") (fun () ->
      Netsim.Event_queue.push q ~time:(-1.0) ())

let test_event_queue_random_order () =
  let rng = Prng.Rng.create ~seed:3 in
  let q = Netsim.Event_queue.create () in
  let times = Array.init 500 (fun _ -> Prng.Rng.float rng 100.0) in
  Array.iter (fun t -> Netsim.Event_queue.push q ~time:t ()) times;
  let rec drain last =
    match Netsim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < last then Alcotest.fail "times not monotone";
        drain t
  in
  drain neg_infinity

let test_sim_ping_pong () =
  (* Two nodes volley a counter until it reaches 5, then halt. *)
  let log = ref [] in
  let handler (api : int Netsim.Sim.api) ~src:_ k =
    log := (api.Netsim.Sim.self, k, api.Netsim.Sim.now) :: !log;
    if k >= 5 then api.Netsim.Sim.halt ()
    else api.Netsim.Sim.send ~dst:(1 - api.Netsim.Sim.self) (k + 1)
  in
  let sim = Netsim.Sim.create ~n:2 ~handler () in
  Netsim.Sim.inject sim ~dst:0 0;
  let stats = Netsim.Sim.run sim in
  Alcotest.(check int) "deliveries" 6 stats.Netsim.Sim.deliveries;
  Alcotest.(check int) "sends" 5 stats.Netsim.Sim.sends;
  Alcotest.(check bool) "halted" true stats.Netsim.Sim.halted;
  Alcotest.(check bool) "not truncated" false stats.Netsim.Sim.truncated;
  Alcotest.(check (float 1e-9)) "unit latency accumulates" 5.0 stats.Netsim.Sim.final_time;
  let selves = List.rev_map (fun (s, _, _) -> s) !log in
  Alcotest.(check (list int)) "alternating nodes" [ 0; 1; 0; 1; 0; 1 ] selves

let test_sim_latency_model () =
  let handler (api : int Netsim.Sim.api) ~src:_ k =
    if k < 3 then api.Netsim.Sim.send ~dst:0 (k + 1)
  in
  let sim = Netsim.Sim.create ~n:1 ~latency:(fun ~src:_ ~dst:_ -> 2.5) ~handler () in
  Netsim.Sim.inject sim ~dst:0 0;
  let stats = Netsim.Sim.run sim in
  Alcotest.(check (float 1e-9)) "3 hops at 2.5" 7.5 stats.Netsim.Sim.final_time

let test_sim_max_deliveries () =
  let handler (api : unit Netsim.Sim.api) ~src:_ () = api.Netsim.Sim.send ~dst:0 () in
  let sim = Netsim.Sim.create ~n:1 ~handler () in
  Netsim.Sim.inject sim ~dst:0 ();
  let stats = Netsim.Sim.run ~max_deliveries:100 sim in
  Alcotest.(check int) "capped" 100 stats.Netsim.Sim.deliveries;
  Alcotest.(check bool) "not halted" false stats.Netsim.Sim.halted;
  Alcotest.(check bool) "reported as truncated" true stats.Netsim.Sim.truncated

let test_local_view_matches_graph () =
  let inst = Test_greedy.girg_instance ~seed:2110 ~n:800 ~c:0.2 () in
  let views = Netsim.Local_view.of_instance inst in
  Array.iteri
    (fun v view ->
      Alcotest.(check int) "self id" v view.Netsim.Local_view.self.Netsim.Local_view.id;
      Alcotest.(check (array int)) "neighbour ids"
        (Sparse_graph.Graph.neighbors inst.graph v)
        (Array.map (fun a -> a.Netsim.Local_view.id) view.Netsim.Local_view.neighbors))
    views

let test_local_phi_matches_objective () =
  let inst = Test_greedy.girg_instance ~seed:2111 ~n:500 ~c:0.2 () in
  let views = Netsim.Local_view.of_instance inst in
  let target = 17 in
  let objective = Greedy_routing.Objective.girg_phi inst ~target in
  let tgt = views.(target).Netsim.Local_view.self in
  for v = 0 to Sparse_graph.Graph.n inst.graph - 1 do
    let local = Netsim.Local_view.phi views.(v) views.(v).Netsim.Local_view.self ~target:tgt in
    let central = objective.Greedy_routing.Objective.score v in
    if Float.is_finite central then begin
      if abs_float (local -. central) > 1e-12 *. Float.max 1.0 (abs_float central) then
        Alcotest.failf "phi mismatch at %d: %g vs %g" v local central
    end
    else if local <> infinity then Alcotest.fail "target phi must be infinite"
  done

let test_dist_greedy_equivalence () =
  let inst = Test_greedy.girg_instance ~seed:2112 ~n:3000 ~c:0.15 () in
  let rng = Prng.Rng.create ~seed:4 in
  for _ = 1 to 80 do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
    let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
    let central = Greedy_routing.Greedy.route ~graph:inst.graph ~objective ~source:s () in
    let distributed, stats = Netsim.Dist_greedy.run ~inst ~source:s ~target:t () in
    Alcotest.(check (list int)) "same walk" central.Greedy_routing.Outcome.walk
      distributed.Greedy_routing.Outcome.walk;
    Alcotest.(check bool) "same status" true
      (central.Greedy_routing.Outcome.status = distributed.Greedy_routing.Outcome.status);
    Alcotest.(check int) "messages = steps" distributed.Greedy_routing.Outcome.steps
      stats.Netsim.Sim.sends
  done

let test_dist_dfs_equivalence () =
  (* Sparse graphs so the walk exercises bounces, resets and backtracks. *)
  let inst = Test_greedy.girg_instance ~seed:2113 ~n:3000 ~c:0.07 () in
  let rng = Prng.Rng.create ~seed:5 in
  for _ = 1 to 60 do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
    let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
    let central = Greedy_routing.Patch_dfs.route ~graph:inst.graph ~objective ~source:s () in
    let distributed, _ = Netsim.Dist_dfs.run ~inst ~source:s ~target:t () in
    Alcotest.(check bool) "same status" true
      (central.Greedy_routing.Outcome.status = distributed.Greedy_routing.Outcome.status);
    Alcotest.(check int) "same steps" central.Greedy_routing.Outcome.steps
      distributed.Greedy_routing.Outcome.steps;
    Alcotest.(check (list int)) "same walk" central.Greedy_routing.Outcome.walk
      distributed.Greedy_routing.Outcome.walk
  done

let test_dist_dfs_equivalence_random_graphs () =
  (* Tiny adversarial graphs, including cross-component pairs. *)
  let rng = Prng.Rng.create ~seed:6 in
  for trial = 1 to 60 do
    let count = 3 + Prng.Rng.int rng 10 in
    let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.3 ~n:count ~poisson_count:false () in
    let weights = Girg.Instance.sample_weights ~rng ~params ~count in
    let positions = Girg.Instance.sample_positions ~rng ~params ~count in
    let inst = Girg.Instance.generate_with ~rng ~params ~weights ~positions () in
    let s = Prng.Rng.int rng count and t = Prng.Rng.int rng count in
    if s <> t then begin
      let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
      let central = Greedy_routing.Patch_dfs.route ~graph:inst.graph ~objective ~source:s () in
      let distributed, _ = Netsim.Dist_dfs.run ~inst ~source:s ~target:t () in
      Alcotest.(check (list int))
        (Printf.sprintf "trial %d walk" trial)
        central.Greedy_routing.Outcome.walk distributed.Greedy_routing.Outcome.walk
    end
  done

let test_dist_greedy_latency_is_hop_sum () =
  let inst = Test_greedy.girg_instance ~seed:2114 ~n:1000 ~c:0.25 () in
  let rng = Prng.Rng.create ~seed:7 in
  let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
  let outcome, stats =
    Netsim.Dist_greedy.run ~inst ~source:s ~target:t
      ~latency:(fun ~src ~dst -> 0.001 *. float_of_int (src + dst + 1))
      ()
  in
  (* Final time = sum of the walk's link latencies. *)
  let rec link_sum acc = function
    | a :: (b :: _ as rest) -> link_sum (acc +. (0.001 *. float_of_int (a + b + 1))) rest
    | [ _ ] | [] -> acc
  in
  Alcotest.(check (float 1e-9)) "time = sum of latencies"
    (link_sum 0.0 outcome.Greedy_routing.Outcome.walk)
    stats.Netsim.Sim.final_time

(* --- causal tracing ------------------------------------------------- *)

(* Run [f] with the flight recorder armed and cleared; skip when the obs
   layer is compiled out (SMALLWORLD_OBS=0). *)
let with_recorder f =
  if not Obs.Events.enabled then ()
  else begin
    let was = Obs.Events.recording () in
    Obs.Events.set_recording true;
    Obs.Events.clear ();
    Fun.protect ~finally:(fun () -> Obs.Events.set_recording was) f
  end

let sole_trace events =
  match Netsim.Causal.trace_ids events with
  | [ tid ] -> tid
  | ids -> Alcotest.failf "expected one trace, got %d" (List.length ids)

let test_causal_ping_pong_chain () =
  with_recorder (fun () ->
      let handler (api : int Netsim.Sim.api) ~src:_ k =
        if k >= 5 then api.Netsim.Sim.halt ()
        else api.Netsim.Sim.send ~dst:(1 - api.Netsim.Sim.self) (k + 1)
      in
      let sim = Netsim.Sim.create ~n:2 ~msg_label:(fun _ -> "ping") ~handler () in
      Netsim.Sim.inject sim ~dst:0 0;
      ignore (Netsim.Sim.run sim);
      let events = Obs.Events.events () in
      let tid = sole_trace events in
      Alcotest.(check int) "sim trace id" (Netsim.Sim.trace_id sim) tid;
      let forest = Netsim.Causal.of_trace ~trace_id:tid events in
      Alcotest.(check bool) "token passing is a chain" true (Netsim.Causal.is_chain forest);
      Alcotest.(check (list int)) "delivery walk" [ 0; 1; 0; 1; 0; 1 ]
        (Netsim.Causal.delivery_walk forest);
      match forest with
      | [ root ] ->
          Alcotest.(check int) "root is injected" (-1) root.Netsim.Causal.parent_id;
          Alcotest.(check string) "kind from msg_label" "ping" root.Netsim.Causal.kind;
          Alcotest.(check int) "size counts all messages" 6 (Netsim.Causal.size root);
          Alcotest.(check int) "chain depth" 6 (Netsim.Causal.depth root)
      | _ -> Alcotest.fail "expected a single root")

let test_causal_fanout_tree () =
  with_recorder (fun () ->
      (* Node 0 fans out to 1..3; each leaf acks back.  The tree has one
         root with three children, each with one child. *)
      let handler (api : string Netsim.Sim.api) ~src:_ = function
        | "start" ->
            for dst = 1 to 3 do
              api.Netsim.Sim.send ~dst "work"
            done
        | "work" -> api.Netsim.Sim.send ~dst:0 "ack"
        | _ -> ()
      in
      let sim = Netsim.Sim.create ~n:4 ~msg_label:Fun.id ~handler () in
      Netsim.Sim.inject sim ~dst:0 "start";
      ignore (Netsim.Sim.run sim);
      let forest = Netsim.Causal.of_trace ~trace_id:(Netsim.Sim.trace_id sim) (Obs.Events.events ()) in
      Alcotest.(check bool) "fan-out is not a chain" false (Netsim.Causal.is_chain forest);
      match forest with
      | [ root ] ->
          Alcotest.(check int) "three children" 3 (List.length root.Netsim.Causal.children);
          Alcotest.(check int) "seven messages" 7 (Netsim.Causal.size root);
          Alcotest.(check int) "depth start->work->ack" 3 (Netsim.Causal.depth root);
          List.iter
            (fun (c : Netsim.Causal.node) ->
              Alcotest.(check string) "middle layer" "work" c.Netsim.Causal.kind;
              Alcotest.(check int) "parent is root" root.Netsim.Causal.msg_id
                c.Netsim.Causal.parent_id;
              Alcotest.(check bool) "delivered" true (c.Netsim.Causal.recv_seq <> None))
            root.Netsim.Causal.children
      | _ -> Alcotest.fail "expected a single root")

let test_causal_undelivered_leaf () =
  with_recorder (fun () ->
      (* Every delivery sends one more message; capping deliveries leaves
         the last send in flight: present in the tree, but never received. *)
      let handler (api : unit Netsim.Sim.api) ~src:_ () = api.Netsim.Sim.send ~dst:0 () in
      let sim = Netsim.Sim.create ~n:1 ~handler () in
      Netsim.Sim.inject sim ~dst:0 ();
      let stats = Netsim.Sim.run ~max_deliveries:4 sim in
      Alcotest.(check bool) "truncated" true stats.Netsim.Sim.truncated;
      let forest = Netsim.Causal.of_trace ~trace_id:(Netsim.Sim.trace_id sim) (Obs.Events.events ()) in
      match forest with
      | [ root ] ->
          Alcotest.(check int) "5 sends recorded" 5 (Netsim.Causal.size root);
          let undelivered =
            Netsim.Causal.fold
              (fun acc n -> if n.Netsim.Causal.recv_seq = None then acc + 1 else acc)
              0 root
          in
          Alcotest.(check int) "exactly the in-flight one" 1 undelivered;
          Alcotest.(check (list int)) "walk stops at the truncation" [ 0; 0; 0; 0 ]
            (Netsim.Causal.delivery_walk forest)
      | _ -> Alcotest.fail "expected a single root")

let test_causal_traces_are_separated () =
  with_recorder (fun () ->
      (* Two interleaved-in-the-log simulations keep distinct trace ids. *)
      let mk () =
        let handler (api : int Netsim.Sim.api) ~src:_ k =
          if k < 2 then api.Netsim.Sim.send ~dst:0 (k + 1)
        in
        Netsim.Sim.create ~n:1 ~handler ()
      in
      let a = mk () and b = mk () in
      Netsim.Sim.inject a ~dst:0 0;
      Netsim.Sim.inject b ~dst:0 0;
      ignore (Netsim.Sim.run a);
      ignore (Netsim.Sim.run b);
      let events = Obs.Events.events () in
      let ids = Netsim.Causal.trace_ids events in
      Alcotest.(check (list int)) "both traces present"
        (List.sort compare [ Netsim.Sim.trace_id a; Netsim.Sim.trace_id b ])
        ids;
      List.iter
        (fun tid ->
          let forest = Netsim.Causal.of_trace ~trace_id:tid events in
          Alcotest.(check bool) "each trace is its own chain" true
            (Netsim.Causal.is_chain forest);
          Alcotest.(check (list int)) "three deliveries each" [ 0; 0; 0 ]
            (Netsim.Causal.delivery_walk forest))
        ids)

let test_causal_greedy_walk_matches_sequential () =
  with_recorder (fun () ->
      let inst = Test_greedy.girg_instance ~seed:2115 ~n:2000 ~c:0.2 () in
      let rng = Prng.Rng.create ~seed:8 in
      for _ = 1 to 20 do
        let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
        Obs.Events.clear ();
        let distributed, _ = Netsim.Dist_greedy.run ~inst ~source:s ~target:t () in
        let events = Obs.Events.events () in
        let forest = Netsim.Causal.of_trace ~trace_id:(sole_trace events) events in
        Alcotest.(check bool) "greedy trace is a chain" true (Netsim.Causal.is_chain forest);
        (* The causal tree rebuilt from the log IS the sequential walk. *)
        let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
        let central = Greedy_routing.Greedy.route ~graph:inst.graph ~objective ~source:s () in
        Alcotest.(check (list int)) "causal walk = sequential walk"
          central.Greedy_routing.Outcome.walk
          (Netsim.Causal.delivery_walk forest);
        Alcotest.(check (list int)) "causal walk = distributed walk"
          distributed.Greedy_routing.Outcome.walk
          (Netsim.Causal.delivery_walk forest)
      done)

let test_causal_dfs_walk_matches_sequential () =
  with_recorder (fun () ->
      (* Sparse enough that Φ-DFS actually backtracks. *)
      let inst = Test_greedy.girg_instance ~seed:2116 ~n:2000 ~c:0.07 () in
      let rng = Prng.Rng.create ~seed:9 in
      for _ = 1 to 15 do
        let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
        Obs.Events.clear ();
        ignore (Netsim.Dist_dfs.run ~inst ~source:s ~target:t ());
        let events = Obs.Events.events () in
        let forest = Netsim.Causal.of_trace ~trace_id:(sole_trace events) events in
        Alcotest.(check bool) "dfs trace is a chain" true (Netsim.Causal.is_chain forest);
        let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
        let central = Greedy_routing.Patch_dfs.route ~graph:inst.graph ~objective ~source:s () in
        Alcotest.(check (list int)) "causal walk = sequential Φ-DFS walk"
          central.Greedy_routing.Outcome.walk
          (Netsim.Causal.delivery_walk forest)
      done)

let suite =
  [
    Alcotest.test_case "event queue order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue FIFO ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "event queue validation" `Quick test_event_queue_validation;
    Alcotest.test_case "event queue random order" `Quick test_event_queue_random_order;
    Alcotest.test_case "sim ping-pong" `Quick test_sim_ping_pong;
    Alcotest.test_case "sim latency model" `Quick test_sim_latency_model;
    Alcotest.test_case "sim max deliveries" `Quick test_sim_max_deliveries;
    Alcotest.test_case "local view matches graph" `Quick test_local_view_matches_graph;
    Alcotest.test_case "local phi matches objective" `Quick test_local_phi_matches_objective;
    Alcotest.test_case "distributed greedy = centralised" `Quick test_dist_greedy_equivalence;
    Alcotest.test_case "distributed phi-dfs = centralised" `Quick test_dist_dfs_equivalence;
    Alcotest.test_case "phi-dfs equivalence on random graphs" `Quick
      test_dist_dfs_equivalence_random_graphs;
    Alcotest.test_case "latency accumulates over hops" `Quick test_dist_greedy_latency_is_hop_sum;
    Alcotest.test_case "causal: ping-pong chain" `Quick test_causal_ping_pong_chain;
    Alcotest.test_case "causal: fan-out tree" `Quick test_causal_fanout_tree;
    Alcotest.test_case "causal: undelivered leaf" `Quick test_causal_undelivered_leaf;
    Alcotest.test_case "causal: traces separated" `Quick test_causal_traces_are_separated;
    Alcotest.test_case "causal greedy walk = sequential" `Quick
      test_causal_greedy_walk_matches_sequential;
    Alcotest.test_case "causal Φ-DFS walk = sequential" `Quick
      test_causal_dfs_walk_matches_sequential;
  ]
