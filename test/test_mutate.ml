(* Live-graph mutation: op codec, script application, deterministic
   resampling (heap vs mmap base), and bit-identical churn replay at
   any job count. *)

module G = Sparse_graph.Graph

let instance () = Test_greedy.girg_instance ~seed:901 ~n:1500 ~c:0.2 ()

let graphs_equal a b =
  G.n a = G.n b
  && G.m a = G.m b
  && G.epoch a = G.epoch b
  && G.live_count a = G.live_count b
  && List.for_all (fun v -> G.neighbors a v = G.neighbors b v) (List.init (G.n a) Fun.id)

let test_op_strings () =
  let cases =
    [
      (Girg.Mutate.Leave 5, "leave:5");
      (Girg.Mutate.Rejoin 0, "rejoin:0");
      (Girg.Mutate.Drop (3, 7), "drop:3:7");
      (Girg.Mutate.Resample 12, "resample:12");
    ]
  in
  List.iter
    (fun (op, s) ->
      Alcotest.(check string) "to_string" s (Girg.Mutate.op_to_string op);
      match Girg.Mutate.op_of_string s with
      | Ok op' -> Alcotest.(check bool) "round-trip" true (op = op')
      | Error m -> Alcotest.failf "parse %s: %s" s m)
    cases;
  (match Girg.Mutate.op_of_string "explode:3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mutation accepted");
  (match Girg.Mutate.ops_of_strings [ "leave:1"; "drop:x:2" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad integer accepted");
  match Girg.Mutate.validate ~n:10 [ Girg.Mutate.Leave 10 ] with
  | Error _ -> (
      match Girg.Mutate.validate ~n:10 [ Girg.Mutate.Drop (3, 3) ] with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "self-loop drop validated")
  | Ok () -> Alcotest.fail "out-of-range vertex validated"

let test_apply_deterministic () =
  let inst = instance () in
  let ops =
    [
      Girg.Mutate.Leave 3;
      Girg.Mutate.Resample 17;
      Girg.Mutate.Drop (1, 2);
      Girg.Mutate.Rejoin 3;
      Girg.Mutate.Resample 40;
    ]
  in
  let a = Girg.Mutate.apply ~seed:5 inst ops in
  let b = Girg.Mutate.apply ~seed:5 inst ops in
  Alcotest.(check bool) "replay is bit-identical" true
    (graphs_equal a.Girg.Instance.graph b.Girg.Instance.graph);
  let c = Girg.Mutate.apply ~seed:6 inst ops in
  Alcotest.(check bool) "seed matters (resample draws differ)" false
    (graphs_equal a.Girg.Instance.graph c.Girg.Instance.graph)

let test_empty_script_advances_epoch () =
  let inst = instance () in
  let a = Girg.Mutate.apply ~seed:1 inst [] in
  Alcotest.(check int) "epoch advanced" 1 (G.epoch a.Girg.Instance.graph);
  Alcotest.(check int) "input untouched" 0 (G.epoch inst.Girg.Instance.graph);
  Alcotest.(check bool) "same edges" true
    (G.m a.Girg.Instance.graph = G.m inst.Girg.Instance.graph)

(* The resample substream is keyed on (seed, epoch, vertex, partner) —
   not on how the base CSR is stored — so a heap-built instance and its
   mmap'd snapshot mutate identically. *)
let test_resample_heap_vs_mmap () =
  let inst = instance () in
  let path = Filename.temp_file "mutate" ".girg" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Girg.Store.save_binary ~path inst;
      match Girg.Store.load_mmap ~path with
      | Error e -> Alcotest.failf "load_mmap: %s" e
      | Ok mapped ->
          let ops = [ Girg.Mutate.Resample 7; Girg.Mutate.Leave 2; Girg.Mutate.Resample 31 ] in
          let a = Girg.Mutate.apply ~seed:11 inst ops in
          let b = Girg.Mutate.apply ~seed:11 mapped ops in
          Alcotest.(check bool) "heap and mmap agree" true
            (graphs_equal a.Girg.Instance.graph b.Girg.Instance.graph))

let config scenario ~events ~quit : Experiments.Churn.config =
  {
    scenario;
    epochs = 2;
    events;
    quit;
    seed = 33;
    count = 60;
    pair_seed = 17;
    protocol = Greedy_routing.Protocol.Greedy;
    max_steps = None;
  }

let float_eq a b = (Float.is_nan a && Float.is_nan b) || a = b

let rows_equal (a : Experiments.Churn.epoch_row) (b : Experiments.Churn.epoch_row) =
  a.epoch = b.epoch && a.live = b.live && a.edges = b.edges
  && a.attempted = b.attempted
  && a.delivered = b.delivered
  && float_eq a.mean_steps b.mean_steps
  && float_eq a.mean_stretch b.mean_stretch

(* One scenario, three job counts, heap and mmap backing: every run
   must produce the same rows, or served churn results would depend on
   the daemon's parallelism. *)
let test_churn_replay_invariant () =
  let inst = instance () in
  let path = Filename.temp_file "churn" ".girg" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Girg.Store.save_binary ~path inst;
      let mapped =
        match Girg.Store.load_mmap ~path with
        | Ok i -> i
        | Error e -> Alcotest.failf "load_mmap: %s" e
      in
      List.iter
        (fun cfg ->
          let _, reference = Experiments.Churn.run_local cfg inst in
          List.iter
            (fun jobs ->
              let pool = Parallel.Pool.create ~jobs () in
              Fun.protect
                ~finally:(fun () -> Parallel.Pool.shutdown pool)
                (fun () ->
                  let _, rows = Experiments.Churn.run_local ~pool cfg inst in
                  Alcotest.(check bool)
                    (Printf.sprintf "heap rows invariant at jobs=%d" jobs)
                    true
                    (List.for_all2 rows_equal reference rows);
                  let _, mrows = Experiments.Churn.run_local ~pool cfg mapped in
                  Alcotest.(check bool)
                    (Printf.sprintf "mmap rows identical at jobs=%d" jobs)
                    true
                    (List.for_all2 rows_equal reference mrows)))
            [ 1; 2; 4 ])
        [
          config Experiments.Churn.Uniform ~events:25 ~quit:0.0;
          config Experiments.Churn.Adversarial ~events:5 ~quit:0.0;
          config Experiments.Churn.Milgram ~events:0 ~quit:0.2;
        ])

let test_churn_scenarios_behave () =
  let inst = instance () in
  let baseline_then_epochs rows =
    match rows with
    | base :: rest -> (base, rest)
    | [] -> Alcotest.fail "no rows"
  in
  (* Adversarial churn removes exactly [events] live vertices per epoch. *)
  let cfg = config Experiments.Churn.Adversarial ~events:5 ~quit:0.0 in
  let _, rows = Experiments.Churn.run_local cfg inst in
  let base, rest = baseline_then_epochs rows in
  Alcotest.(check int) "baseline epoch" 0 base.Experiments.Churn.epoch;
  List.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "live count after epoch %d" (i + 1))
        (base.Experiments.Churn.live - (5 * (i + 1)))
        row.Experiments.Churn.live)
    rest;
  (* Milgram: no structural change, only attrition of delivered runs. *)
  let cfg = config Experiments.Churn.Milgram ~events:0 ~quit:0.9 in
  let _, rows = Experiments.Churn.run_local cfg inst in
  let base, rest = baseline_then_epochs rows in
  List.iter
    (fun row ->
      Alcotest.(check int) "no structural churn" base.Experiments.Churn.edges
        row.Experiments.Churn.edges;
      Alcotest.(check bool) "quit filters deliveries" true
        (row.Experiments.Churn.delivered <= row.Experiments.Churn.attempted))
    rest

let suite =
  [
    Alcotest.test_case "mutation op strings" `Quick test_op_strings;
    Alcotest.test_case "apply is deterministic" `Quick test_apply_deterministic;
    Alcotest.test_case "empty script advances epoch" `Quick
      test_empty_script_advances_epoch;
    Alcotest.test_case "resample: heap vs mmap base" `Quick test_resample_heap_vs_mmap;
    Alcotest.test_case "churn replay invariant (jobs 1/2/4, heap+mmap)" `Slow
      test_churn_replay_invariant;
    Alcotest.test_case "churn scenarios behave" `Quick test_churn_scenarios_behave;
  ]
