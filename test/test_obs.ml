(* Obs library: metric arithmetic, span nesting/rollup invariants,
   snapshot determinism, no-op mode, and exporter output shape. *)

module M = Obs.Metrics
module S = Obs.Span

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_arithmetic () =
  let r = M.create () in
  let c = M.counter ~registry:r "t.counter" in
  Alcotest.(check int) "starts at 0" 0 (M.counter_value c);
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "incr + add" 42 (M.counter_value c);
  match M.find_value r "t.counter" with
  | Some (M.Counter_v 42) -> ()
  | _ -> Alcotest.fail "registry does not reflect counter value"

let test_counter_dedup () =
  let r = M.create () in
  let a = M.counter ~registry:r "t.shared" in
  let b = M.counter ~registry:r "t.shared" in
  M.incr a;
  M.incr b;
  Alcotest.(check int) "same cell" 2 (M.counter_value a)

let test_kind_mismatch_rejected () =
  let r = M.create () in
  ignore (M.counter ~registry:r "t.kinded");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Metrics: \"t.kinded\" already registered as a counter")
    (fun () -> ignore (M.gauge ~registry:r "t.kinded"))

let test_gauge () =
  let r = M.create () in
  let g = M.gauge ~registry:r "t.gauge" in
  M.set g 3.0;
  M.set_max g 2.0;
  Alcotest.(check (float 0.0)) "set_max keeps max" 3.0 (M.gauge_value g);
  M.set_max g 5.0;
  Alcotest.(check (float 0.0)) "set_max raises" 5.0 (M.gauge_value g)

let test_histogram_arithmetic () =
  let r = M.create () in
  let h = M.histogram ~registry:r "t.hist" in
  let values = [ 0.0; 0.5; 1.0; 2.0; 3.0; 100.0 ] in
  List.iter (M.observe h) values;
  Alcotest.(check int) "count" 6 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 106.5 (M.hist_sum h);
  match M.find_value r "t.hist" with
  | Some (M.Histogram_v snap) ->
      Alcotest.(check (float 0.0)) "min" 0.0 snap.M.min;
      Alcotest.(check (float 0.0)) "max" 100.0 snap.M.max;
      Alcotest.(check int) "bucket mass = count" 6
        (List.fold_left (fun acc (_, c) -> acc + c) 0 snap.M.buckets);
      (* Exact subbucket edges land on their own bound (powers of two
         and 3.0 = 2 * (1 + 4/8)); 100 rounds up to 104, the next
         subbucket edge of the (64, 128] binade. *)
      let bounds = List.map fst snap.M.buckets in
      List.iter
        (fun ub -> if not (List.mem ub [ 0.0; 0.5; 1.0; 2.0; 3.0; 104.0 ]) then
            Alcotest.failf "unexpected bucket bound %g" ub)
        bounds;
      (* Bounds are increasing and each value fits under some bound. *)
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "bounds increasing" true (increasing bounds)
  | _ -> Alcotest.fail "histogram snapshot missing"

let test_snapshot_deterministic () =
  let r = M.create () in
  ignore (M.counter ~registry:r "t.z");
  ignore (M.counter ~registry:r "t.a");
  let g = M.gauge ~registry:r "t.m" in
  M.set g 1.5;
  let s1 = M.snapshot r and s2 = M.snapshot r in
  Alcotest.(check bool) "two snapshots equal" true (s1 = s2);
  Alcotest.(check (list string)) "sorted by name" [ "t.a"; "t.m"; "t.z" ]
    (List.map fst s1)

let test_reset () =
  let r = M.create () in
  let c = M.counter ~registry:r "t.reset" in
  M.add c 7;
  M.reset r;
  Alcotest.(check int) "zeroed" 0 (M.counter_value c);
  Alcotest.(check bool) "still listed" true
    (List.mem_assoc "t.reset" (M.list_metrics r))

let test_noop_mode () =
  let r = M.create ~live:false () in
  Alcotest.(check bool) "dead" false (M.is_live r);
  let c = M.counter ~registry:r "t.dead.counter" in
  let g = M.gauge ~registry:r "t.dead.gauge" in
  let h = M.histogram ~registry:r "t.dead.hist" in
  M.incr c;
  M.add c 10;
  M.set g 9.0;
  M.observe h 3.0;
  Alcotest.(check int) "counter stays 0" 0 (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge stays 0" 0.0 (M.gauge_value g);
  Alcotest.(check int) "hist stays 0" 0 (M.hist_count h);
  List.iter
    (fun (name, v) ->
      match v with
      | M.Counter_v 0 | M.Gauge_v 0.0 -> ()
      | M.Histogram_v s when s.M.count = 0 && s.M.buckets = [] -> ()
      | _ -> Alcotest.failf "non-zero snapshot for %s in no-op mode" name)
    (M.snapshot r);
  (* Names and kinds remain discoverable. *)
  Alcotest.(check int) "3 metrics listed" 3 (List.length (M.list_metrics r))

(* ------------------------------------------------------------------ *)
(* Spans *)

let spin_allocate () =
  (* Burn a little time and allocate measurably. *)
  let acc = ref [] in
  for i = 0 to 5_000 do
    acc := [| float_of_int i |] :: !acc
  done;
  ignore (Sys.opaque_identity !acc)

let with_fresh_trace f =
  (* Tests share the process-global trace; isolate and restore nothing —
     each test clears before use. *)
  Obs.Trace.clear ();
  f ()

let test_span_nesting_and_rollup () =
  if not S.enabled then ()
  else
    with_fresh_trace (fun () ->
        let (), sp =
          S.time ~name:"t.root" (fun () ->
              S.with_ ~name:"t.child" (fun () -> spin_allocate ());
              S.with_ ~name:"t.child" (fun () ->
                  S.with_ ~name:"t.leaf" (fun () -> spin_allocate ()));
              S.with_ ~name:"t.other" (fun () -> ()))
        in
        match sp with
        | None -> Alcotest.fail "expected a span when enabled"
        | Some sp ->
            Alcotest.(check string) "root name" "t.root" sp.S.name;
            Alcotest.(check int) "root count" 1 sp.S.count;
            Alcotest.(check (list string)) "children rolled up in order"
              [ "t.child"; "t.other" ]
              (List.map (fun (c : S.t) -> c.S.name) sp.S.children);
            let child = List.hd sp.S.children in
            Alcotest.(check int) "sibling merge count" 2 child.S.count;
            Alcotest.(check (list string)) "grandchild kept" [ "t.leaf" ]
              (List.map (fun (c : S.t) -> c.S.name) child.S.children);
            Alcotest.(check int) "depth" 3 (S.depth sp);
            (* Rollup invariant: children cannot exceed the parent. *)
            let child_total =
              List.fold_left (fun acc (c : S.t) -> acc +. c.S.wall_s) 0.0 sp.S.children
            in
            Alcotest.(check bool) "child wall <= parent wall" true
              (child_total <= sp.S.wall_s +. 1e-6);
            Alcotest.(check bool) "self time non-negative" true (S.self_s sp >= 0.0);
            Alcotest.(check bool) "allocation recorded" true (child.S.alloc_bytes > 0.0);
            Alcotest.(check bool) "root collected" true
              (List.memq sp (Obs.Trace.roots ())))

let test_span_root_merge () =
  if not S.enabled then ()
  else
    with_fresh_trace (fun () ->
        let (), s1 = S.time ~name:"t.repeat" (fun () -> ()) in
        let (), s2 = S.time ~name:"t.repeat" (fun () -> ()) in
        match (s1, s2) with
        | Some a, Some b ->
            Alcotest.(check bool) "merged into one root" true (a == b);
            Alcotest.(check int) "count 2" 2 a.S.count;
            Alcotest.(check int) "one root" 1 (List.length (Obs.Trace.roots ()))
        | _ -> Alcotest.fail "expected spans when enabled")

let test_span_exception_safe () =
  if not S.enabled then ()
  else
    with_fresh_trace (fun () ->
        (try S.with_ ~name:"t.raises" (fun () -> failwith "boom")
         with Failure _ -> ());
        (* The stack must be clean: a new root is a root, not a child. *)
        let (), sp = S.time ~name:"t.after" (fun () -> ()) in
        match sp with
        | Some s ->
            Alcotest.(check string) "new root unaffected" "t.after" s.S.name;
            Alcotest.(check bool) "failed span still collected" true
              (Obs.Trace.find "t.raises" <> None)
        | None -> Alcotest.fail "expected a span")

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

module E = Obs.Events

(* The recorder is process-global; every test clears it first and
   restores armed/capacity state on exit. *)
let with_recorder f =
  if not E.enabled then ()
  else begin
    let cap = E.capacity () in
    Fun.protect
      ~finally:(fun () ->
        E.set_recording true;
        E.set_capacity cap)
      (fun () ->
        E.set_recording true;
        E.clear ();
        f ())
  end

let hop ~route ~hop ~vertex = E.Route_hop { route; hop; vertex; objective = 1.0 }

let test_events_seq_monotone () =
  with_recorder (fun () ->
      for i = 0 to 9 do
        E.emit (hop ~route:1 ~hop:i ~vertex:i)
      done;
      let evs = E.events () in
      Alcotest.(check int) "all kept" 10 (List.length evs);
      Alcotest.(check (list int)) "seq 0..9" (List.init 10 Fun.id)
        (List.map (fun (e : E.event) -> e.E.seq) evs);
      Alcotest.(check int) "emitted" 10 (E.emitted ());
      Alcotest.(check int) "nothing dropped" 0 (E.dropped ());
      let times = List.map (fun (e : E.event) -> e.E.time) evs in
      Alcotest.(check bool) "times non-decreasing" true
        (List.for_all2 (fun a b -> a <= b) times (List.tl times @ [ infinity ])))

let test_events_ring_overwrite () =
  with_recorder (fun () ->
      E.set_capacity 4;
      for i = 0 to 9 do
        E.emit (hop ~route:1 ~hop:i ~vertex:i)
      done;
      let evs = E.events () in
      Alcotest.(check int) "bounded by capacity" 4 (List.length evs);
      Alcotest.(check int) "dropped = overflow" 6 (E.dropped ());
      (* The tail survives, oldest first. *)
      Alcotest.(check (list int)) "last 4 seqs" [ 6; 7; 8; 9 ]
        (List.map (fun (e : E.event) -> e.E.seq) evs);
      E.clear ();
      Alcotest.(check int) "clear empties" 0 (List.length (E.events ())))

let test_events_pause () =
  with_recorder (fun () ->
      E.emit (hop ~route:1 ~hop:0 ~vertex:0);
      E.set_recording false;
      Alcotest.(check bool) "paused" false (E.recording ());
      E.emit (hop ~route:1 ~hop:1 ~vertex:1);
      E.set_recording true;
      E.emit (hop ~route:1 ~hop:2 ~vertex:2);
      Alcotest.(check int) "paused emit dropped" 2 (List.length (E.events ())))

let test_event_line_shape () =
  with_recorder (fun () ->
      E.emit
        (E.Msg_send
           { trace = 3; msg = 7; parent = -1; src = 0; dst = 5; kind = "explore"; sim_time = 2.5 });
      match E.events () with
      | [ e ] ->
          let line = Obs.Export.event_line e in
          Alcotest.(check bool) "single line" false (String.contains line '\n');
          let contains sub =
            let n = String.length sub and m = String.length line in
            let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
            go 0
          in
          List.iter
            (fun sub -> if not (contains sub) then Alcotest.failf "event line missing %s" sub)
            [
              "\"schema\":\"smallworld.events.v1\"";
              "\"seq\":0";
              "\"type\":\"msg_send\"";
              "\"trace\":3";
              "\"msg\":7";
              "\"parent\":null";
              "\"dst\":5";
              "\"kind\":\"explore\"";
              "\"sim_time\":2.5";
            ]
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_routing_emits_hop_events () =
  with_recorder (fun () ->
      let inst = Test_greedy.girg_instance ~seed:901 ~n:1500 ~c:0.2 () in
      let rng = Prng.Rng.create ~seed:9 in
      let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
      let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
      let outcome = Greedy_routing.Greedy.route ~graph:inst.graph ~objective ~source:s () in
      let hops =
        List.filter_map
          (fun (e : E.event) ->
            match e.E.payload with E.Route_hop { vertex; _ } -> Some vertex | _ -> None)
          (E.events ())
      in
      Alcotest.(check (list int)) "hop events replay the walk" outcome.Greedy_routing.Outcome.walk
        hops;
      if outcome.Greedy_routing.Outcome.status = Greedy_routing.Outcome.Dead_end then
        Alcotest.(check bool) "dead end recorded" true
          (List.exists
             (fun (e : E.event) ->
               match e.E.payload with E.Dead_end _ -> true | _ -> false)
             (E.events ())))

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_manifest_line_shape () =
  let r = M.create () in
  let c = M.counter ~registry:r "girg.test_metric" in
  M.add c 5;
  let span =
    if S.enabled then snd (S.time ~name:"exp.TEST" (fun () -> ())) else None
  in
  let line =
    Obs.Export.manifest_line ~experiment:"E1" ~seed:42 ~scale:"quick" ~registry:r ~span ()
  in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  let contains sub =
    let n = String.length sub and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      if not (contains sub) then Alcotest.failf "manifest missing %s" sub)
    [
      "\"schema\":\"smallworld.obs.v1\"";
      "\"experiment\":\"E1\"";
      "\"seed\":42";
      "\"scale\":\"quick\"";
      "\"girg.test_metric\":5";
      "\"git_rev\":";
    ]

let test_json_escaping () =
  Alcotest.(check string) "escapes" "{\"k\":\"a\\\"b\\\\c\\nd\"}"
    (Obs.Export.json_to_string (Obs.Export.Obj [ ("k", Obs.Export.Str "a\"b\\c\nd") ]));
  Alcotest.(check string) "nan is null" "null"
    (Obs.Export.json_to_string (Obs.Export.Float Float.nan))

let test_prometheus_dump () =
  let r = M.create () in
  let c = M.counter ~registry:r "route.test.counter" in
  M.add c 3;
  let h = M.histogram ~registry:r "route.test.hist" in
  M.observe h 1.0;
  M.observe h 2.0;
  let text = Obs.Export.prometheus r in
  let expect =
    "# TYPE smallworld_route_test_counter counter\n\
     smallworld_route_test_counter 3\n\
     # TYPE smallworld_route_test_hist histogram\n\
     smallworld_route_test_hist_bucket{le=\"1\"} 1\n\
     smallworld_route_test_hist_bucket{le=\"2\"} 2\n\
     smallworld_route_test_hist_bucket{le=\"+Inf\"} 2\n\
     smallworld_route_test_hist_sum 3\n\
     smallworld_route_test_hist_count 2\n"
  in
  Alcotest.(check string) "prometheus text" expect text

let test_prometheus_name_sanitisation () =
  let r = M.create () in
  let c = M.counter ~registry:r "route.test-metric:x/1" in
  M.incr c;
  let text = Obs.Export.prometheus r in
  Alcotest.(check string) "separators become underscores"
    "# TYPE smallworld_route_test_metric_x_1 counter\nsmallworld_route_test_metric_x_1 1\n" text

let test_prometheus_le_buckets_cumulative () =
  let r = M.create () in
  let h = M.histogram ~registry:r "t.lat" in
  List.iter (M.observe h) [ -1.0; 0.0; 0.5; 1.0; 2.0; 100.0; 100.0 ];
  let text = Obs.Export.prometheus r in
  let lines = String.split_on_char '\n' (String.trim text) in
  let bucket_counts =
    List.filter_map
      (fun line ->
        match String.index_opt line '}' with
        | Some i when String.length line > 7 && String.sub line 0 7 = "smallwo" ->
            let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            if String.length line > i && String.contains line '{' then int_of_string_opt rest
            else None
        | _ -> None)
      lines
  in
  (* Cumulative le convention: counts are non-decreasing and the +Inf
     bucket equals the total count. *)
  Alcotest.(check bool) "at least the <=0, some finite, and +Inf buckets" true
    (List.length bucket_counts >= 3);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative counts monotone" true (monotone bucket_counts);
  Alcotest.(check int) "+Inf bucket = count" 7 (List.nth bucket_counts (List.length bucket_counts - 1));
  (* The two non-positive observations land in the le="0" bucket. *)
  Alcotest.(check bool) "le=\"0\" bucket present with both non-positives" true
    (List.exists
       (fun line ->
         String.length line > 0
         && String.sub line 0 (min (String.length line) 60)
            = "smallworld_t_lat_bucket{le=\"0\"} 2")
       lines)

let test_git_rev_fallbacks () =
  (* git_rev reads .git/ relative to the cwd; build a fake one. *)
  let tmp = Filename.temp_file "smallworld_gitrev" "" in
  Sys.remove tmp;
  Sys.mkdir tmp 0o755;
  Sys.mkdir (Filename.concat tmp ".git") 0o755;
  let write path contents =
    Out_channel.with_open_text (Filename.concat tmp path) (fun oc -> output_string oc contents)
  in
  let cwd = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      Sys.chdir tmp;
      write ".git/HEAD" "ref: refs/heads/main\n";
      (* No loose ref, no packed-refs: unknown. *)
      Alcotest.(check string) "no ref anywhere" "unknown" (Obs.Export.git_rev ());
      (* Packed-refs fallback (the loose file is gone after git pack-refs). *)
      write ".git/packed-refs"
        "# pack-refs with: peeled fully-peeled sorted \n\
         1111111111111111111111111111111111111111 refs/heads/other\n\
         2222222222222222222222222222222222222222 refs/heads/main\n\
         ^3333333333333333333333333333333333333333\n";
      Alcotest.(check string) "packed ref found" "2222222222222222222222222222222222222222"
        (Obs.Export.git_rev ());
      (* A loose ref wins over packed-refs. *)
      Sys.mkdir ".git/refs" 0o755;
      Sys.mkdir ".git/refs/heads" 0o755;
      write ".git/refs/heads/main" "4444444444444444444444444444444444444444\n";
      Alcotest.(check string) "loose ref wins" "4444444444444444444444444444444444444444"
        (Obs.Export.git_rev ());
      (* Detached HEAD is returned as-is. *)
      write ".git/HEAD" "5555555555555555555555555555555555555555\n";
      Alcotest.(check string) "detached head" "5555555555555555555555555555555555555555"
        (Obs.Export.git_rev ()))

let test_json_parse_roundtrip () =
  let open Obs.Export in
  let doc =
    Obj
      [
        ("s", Str "a\"b\\c\nd");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("b", Bool true);
        ("z", Null);
        ("arr", Arr [ Int 1; Arr []; Obj [] ]);
        ("nested", Obj [ ("k", Arr [ Float 0.25; Bool false ]) ]);
      ]
  in
  (match json_of_string (json_to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip equal" true (parsed = doc)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match json_of_string "  { \"a\" : [ 1 , 2.0e1 , \"x\" ] } " with
  | Ok (Obj [ ("a", Arr [ Int 1; Float 20.0; Str "x" ]) ]) -> ()
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match json_of_string bad with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let suite =
  [
    Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
    Alcotest.test_case "counter dedup" `Quick test_counter_dedup;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "gauge set / set_max" `Quick test_gauge;
    Alcotest.test_case "histogram arithmetic" `Quick test_histogram_arithmetic;
    Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "no-op mode zeroed" `Quick test_noop_mode;
    Alcotest.test_case "span nesting and rollup" `Quick test_span_nesting_and_rollup;
    Alcotest.test_case "span root merge" `Quick test_span_root_merge;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "manifest line shape" `Quick test_manifest_line_shape;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "prometheus dump" `Quick test_prometheus_dump;
    Alcotest.test_case "events seq monotone" `Quick test_events_seq_monotone;
    Alcotest.test_case "events ring overwrite" `Quick test_events_ring_overwrite;
    Alcotest.test_case "events pause/resume" `Quick test_events_pause;
    Alcotest.test_case "event JSONL line shape" `Quick test_event_line_shape;
    Alcotest.test_case "routing emits hop events" `Quick test_routing_emits_hop_events;
    Alcotest.test_case "prometheus name sanitisation" `Quick test_prometheus_name_sanitisation;
    Alcotest.test_case "prometheus cumulative le buckets" `Quick test_prometheus_le_buckets_cumulative;
    Alcotest.test_case "git_rev packed-refs fallback" `Quick test_git_rev_fallbacks;
    Alcotest.test_case "json parser roundtrip" `Quick test_json_parse_roundtrip;
  ]
