(* Obs library: metric arithmetic, span nesting/rollup invariants,
   snapshot determinism, no-op mode, and exporter output shape. *)

module M = Obs.Metrics
module S = Obs.Span

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_arithmetic () =
  let r = M.create () in
  let c = M.counter ~registry:r "t.counter" in
  Alcotest.(check int) "starts at 0" 0 (M.counter_value c);
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "incr + add" 42 (M.counter_value c);
  match M.find_value r "t.counter" with
  | Some (M.Counter_v 42) -> ()
  | _ -> Alcotest.fail "registry does not reflect counter value"

let test_counter_dedup () =
  let r = M.create () in
  let a = M.counter ~registry:r "t.shared" in
  let b = M.counter ~registry:r "t.shared" in
  M.incr a;
  M.incr b;
  Alcotest.(check int) "same cell" 2 (M.counter_value a)

let test_kind_mismatch_rejected () =
  let r = M.create () in
  ignore (M.counter ~registry:r "t.kinded");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Metrics: \"t.kinded\" already registered as a counter")
    (fun () -> ignore (M.gauge ~registry:r "t.kinded"))

let test_gauge () =
  let r = M.create () in
  let g = M.gauge ~registry:r "t.gauge" in
  M.set g 3.0;
  M.set_max g 2.0;
  Alcotest.(check (float 0.0)) "set_max keeps max" 3.0 (M.gauge_value g);
  M.set_max g 5.0;
  Alcotest.(check (float 0.0)) "set_max raises" 5.0 (M.gauge_value g)

let test_histogram_arithmetic () =
  let r = M.create () in
  let h = M.histogram ~registry:r "t.hist" in
  let values = [ 0.0; 0.5; 1.0; 2.0; 3.0; 100.0 ] in
  List.iter (M.observe h) values;
  Alcotest.(check int) "count" 6 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 106.5 (M.hist_sum h);
  match M.find_value r "t.hist" with
  | Some (M.Histogram_v snap) ->
      Alcotest.(check (float 0.0)) "min" 0.0 snap.M.min;
      Alcotest.(check (float 0.0)) "max" 100.0 snap.M.max;
      Alcotest.(check int) "bucket mass = count" 6
        (List.fold_left (fun acc (_, c) -> acc + c) 0 snap.M.buckets);
      (* Exact powers of two land on their own bound; 3.0 rounds up to 4. *)
      let bounds = List.map fst snap.M.buckets in
      List.iter
        (fun ub -> if not (List.mem ub [ 0.0; 0.5; 1.0; 2.0; 4.0; 128.0 ]) then
            Alcotest.failf "unexpected bucket bound %g" ub)
        bounds;
      (* Bounds are increasing and each value fits under some bound. *)
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "bounds increasing" true (increasing bounds)
  | _ -> Alcotest.fail "histogram snapshot missing"

let test_snapshot_deterministic () =
  let r = M.create () in
  ignore (M.counter ~registry:r "t.z");
  ignore (M.counter ~registry:r "t.a");
  let g = M.gauge ~registry:r "t.m" in
  M.set g 1.5;
  let s1 = M.snapshot r and s2 = M.snapshot r in
  Alcotest.(check bool) "two snapshots equal" true (s1 = s2);
  Alcotest.(check (list string)) "sorted by name" [ "t.a"; "t.m"; "t.z" ]
    (List.map fst s1)

let test_reset () =
  let r = M.create () in
  let c = M.counter ~registry:r "t.reset" in
  M.add c 7;
  M.reset r;
  Alcotest.(check int) "zeroed" 0 (M.counter_value c);
  Alcotest.(check bool) "still listed" true
    (List.mem_assoc "t.reset" (M.list_metrics r))

let test_noop_mode () =
  let r = M.create ~live:false () in
  Alcotest.(check bool) "dead" false (M.is_live r);
  let c = M.counter ~registry:r "t.dead.counter" in
  let g = M.gauge ~registry:r "t.dead.gauge" in
  let h = M.histogram ~registry:r "t.dead.hist" in
  M.incr c;
  M.add c 10;
  M.set g 9.0;
  M.observe h 3.0;
  Alcotest.(check int) "counter stays 0" 0 (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge stays 0" 0.0 (M.gauge_value g);
  Alcotest.(check int) "hist stays 0" 0 (M.hist_count h);
  List.iter
    (fun (name, v) ->
      match v with
      | M.Counter_v 0 | M.Gauge_v 0.0 -> ()
      | M.Histogram_v s when s.M.count = 0 && s.M.buckets = [] -> ()
      | _ -> Alcotest.failf "non-zero snapshot for %s in no-op mode" name)
    (M.snapshot r);
  (* Names and kinds remain discoverable. *)
  Alcotest.(check int) "3 metrics listed" 3 (List.length (M.list_metrics r))

(* ------------------------------------------------------------------ *)
(* Spans *)

let spin_allocate () =
  (* Burn a little time and allocate measurably. *)
  let acc = ref [] in
  for i = 0 to 5_000 do
    acc := [| float_of_int i |] :: !acc
  done;
  ignore (Sys.opaque_identity !acc)

let with_fresh_trace f =
  (* Tests share the process-global trace; isolate and restore nothing —
     each test clears before use. *)
  Obs.Trace.clear ();
  f ()

let test_span_nesting_and_rollup () =
  if not S.enabled then ()
  else
    with_fresh_trace (fun () ->
        let (), sp =
          S.time ~name:"t.root" (fun () ->
              S.with_ ~name:"t.child" (fun () -> spin_allocate ());
              S.with_ ~name:"t.child" (fun () ->
                  S.with_ ~name:"t.leaf" (fun () -> spin_allocate ()));
              S.with_ ~name:"t.other" (fun () -> ()))
        in
        match sp with
        | None -> Alcotest.fail "expected a span when enabled"
        | Some sp ->
            Alcotest.(check string) "root name" "t.root" sp.S.name;
            Alcotest.(check int) "root count" 1 sp.S.count;
            Alcotest.(check (list string)) "children rolled up in order"
              [ "t.child"; "t.other" ]
              (List.map (fun (c : S.t) -> c.S.name) sp.S.children);
            let child = List.hd sp.S.children in
            Alcotest.(check int) "sibling merge count" 2 child.S.count;
            Alcotest.(check (list string)) "grandchild kept" [ "t.leaf" ]
              (List.map (fun (c : S.t) -> c.S.name) child.S.children);
            Alcotest.(check int) "depth" 3 (S.depth sp);
            (* Rollup invariant: children cannot exceed the parent. *)
            let child_total =
              List.fold_left (fun acc (c : S.t) -> acc +. c.S.wall_s) 0.0 sp.S.children
            in
            Alcotest.(check bool) "child wall <= parent wall" true
              (child_total <= sp.S.wall_s +. 1e-6);
            Alcotest.(check bool) "self time non-negative" true (S.self_s sp >= 0.0);
            Alcotest.(check bool) "allocation recorded" true (child.S.alloc_bytes > 0.0);
            Alcotest.(check bool) "root collected" true
              (List.memq sp (Obs.Trace.roots ())))

let test_span_root_merge () =
  if not S.enabled then ()
  else
    with_fresh_trace (fun () ->
        let (), s1 = S.time ~name:"t.repeat" (fun () -> ()) in
        let (), s2 = S.time ~name:"t.repeat" (fun () -> ()) in
        match (s1, s2) with
        | Some a, Some b ->
            Alcotest.(check bool) "merged into one root" true (a == b);
            Alcotest.(check int) "count 2" 2 a.S.count;
            Alcotest.(check int) "one root" 1 (List.length (Obs.Trace.roots ()))
        | _ -> Alcotest.fail "expected spans when enabled")

let test_span_exception_safe () =
  if not S.enabled then ()
  else
    with_fresh_trace (fun () ->
        (try S.with_ ~name:"t.raises" (fun () -> failwith "boom")
         with Failure _ -> ());
        (* The stack must be clean: a new root is a root, not a child. *)
        let (), sp = S.time ~name:"t.after" (fun () -> ()) in
        match sp with
        | Some s ->
            Alcotest.(check string) "new root unaffected" "t.after" s.S.name;
            Alcotest.(check bool) "failed span still collected" true
              (Obs.Trace.find "t.raises" <> None)
        | None -> Alcotest.fail "expected a span")

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_manifest_line_shape () =
  let r = M.create () in
  let c = M.counter ~registry:r "girg.test_metric" in
  M.add c 5;
  let span =
    if S.enabled then snd (S.time ~name:"exp.TEST" (fun () -> ())) else None
  in
  let line =
    Obs.Export.manifest_line ~experiment:"E1" ~seed:42 ~scale:"quick" ~registry:r ~span ()
  in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  let contains sub =
    let n = String.length sub and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      if not (contains sub) then Alcotest.failf "manifest missing %s" sub)
    [
      "\"schema\":\"smallworld.obs.v1\"";
      "\"experiment\":\"E1\"";
      "\"seed\":42";
      "\"scale\":\"quick\"";
      "\"girg.test_metric\":5";
      "\"git_rev\":";
    ]

let test_json_escaping () =
  Alcotest.(check string) "escapes" "{\"k\":\"a\\\"b\\\\c\\nd\"}"
    (Obs.Export.json_to_string (Obs.Export.Obj [ ("k", Obs.Export.Str "a\"b\\c\nd") ]));
  Alcotest.(check string) "nan is null" "null"
    (Obs.Export.json_to_string (Obs.Export.Float Float.nan))

let test_prometheus_dump () =
  let r = M.create () in
  let c = M.counter ~registry:r "route.test.counter" in
  M.add c 3;
  let h = M.histogram ~registry:r "route.test.hist" in
  M.observe h 1.0;
  M.observe h 2.0;
  let text = Obs.Export.prometheus r in
  let expect =
    "# TYPE smallworld_route_test_counter counter\n\
     smallworld_route_test_counter 3\n\
     # TYPE smallworld_route_test_hist histogram\n\
     smallworld_route_test_hist_bucket{le=\"1\"} 1\n\
     smallworld_route_test_hist_bucket{le=\"2\"} 2\n\
     smallworld_route_test_hist_bucket{le=\"+Inf\"} 2\n\
     smallworld_route_test_hist_sum 3\n\
     smallworld_route_test_hist_count 2\n"
  in
  Alcotest.(check string) "prometheus text" expect text

let suite =
  [
    Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
    Alcotest.test_case "counter dedup" `Quick test_counter_dedup;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "gauge set / set_max" `Quick test_gauge;
    Alcotest.test_case "histogram arithmetic" `Quick test_histogram_arithmetic;
    Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "no-op mode zeroed" `Quick test_noop_mode;
    Alcotest.test_case "span nesting and rollup" `Quick test_span_nesting_and_rollup;
    Alcotest.test_case "span root merge" `Quick test_span_root_merge;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "manifest line shape" `Quick test_manifest_line_shape;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "prometheus dump" `Quick test_prometheus_dump;
  ]
