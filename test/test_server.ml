(* The serving layer: registry LRU/refcount invariants, Exec semantics
   (deadlines, batch limits, counters), and the TCP daemon end to end
   over a loopback socket — byte-identity of served routes with the
   local Render output, concurrent clients, backpressure, drain. *)

module V1 = Api.V1
module E = Api.Error

let ok ?(what = "result") = function
  | Ok v -> v
  | Error (e : E.t) -> Alcotest.failf "%s: unexpected error: %s" what (E.to_string e)

let failed_code = function
  | V1.Failed e -> Some e.E.code
  | _ -> None

let check_code what expected response =
  match failed_code response with
  | Some c when c = expected -> ()
  | Some c -> Alcotest.failf "%s: expected %s, got %s" what (E.code_string expected) (E.code_string c)
  | None -> Alcotest.failf "%s: expected the %s error, got a success" what (E.code_string expected)

(* A tiny deterministic instance (exact vertex count, so test pairs are
   always in range). *)
let tiny_model =
  V1.Girg (Girg.Params.make ~poisson_count:false ~n:400 ())

let tiny_instance seed = Api.Render.instantiate ~model:tiny_model ~seed

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_lru () =
  let reg = Server.Registry.create ~cap:2 in
  let i1 = tiny_instance 1 and i2 = tiny_instance 2 and i3 = tiny_instance 3 in
  ignore (ok (Server.Registry.insert reg ~name:"a" i1));
  ignore (ok (Server.Registry.insert reg ~name:"b" i2));
  Alcotest.(check (list string)) "MRU order" [ "b"; "a" ] (Server.Registry.names reg);
  ignore (ok (Server.Registry.insert reg ~name:"c" i3));
  Alcotest.(check int) "capped" 2 (Server.Registry.size reg);
  (match Server.Registry.acquire reg "a" with
  | Error e -> Alcotest.(check bool) "a evicted" true (e.E.code = E.Unknown_instance)
  | Ok _ -> Alcotest.fail "oldest entry survived past capacity");
  let hb = ok (Server.Registry.acquire reg "b") in
  Server.Registry.release reg hb;
  (* b was just touched, so the next eviction must pick c. *)
  ignore (ok (Server.Registry.insert reg ~name:"d" i1));
  (match Server.Registry.acquire reg "c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "LRU evicted the recently used entry instead");
  Alcotest.(check (list string)) "d, b live" [ "d"; "b" ] (Server.Registry.names reg)

let test_registry_pinning () =
  let reg = Server.Registry.create ~cap:2 in
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 1)));
  ignore (ok (Server.Registry.insert reg ~name:"b" (tiny_instance 2)));
  let ha = ok (Server.Registry.acquire reg "a") in
  (* a is pinned and older than b, yet eviction must take b. *)
  ignore (ok (Server.Registry.insert reg ~name:"c" (tiny_instance 3)));
  (match Server.Registry.acquire reg "b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unpinned entry survived while a pinned one was due");
  let hc = ok (Server.Registry.acquire reg "c") in
  (* Both entries pinned at capacity: insertion must refuse, not grow. *)
  (match Server.Registry.insert reg ~name:"d" (tiny_instance 4) with
  | Error e -> Alcotest.(check bool) "overloaded" true (e.E.code = E.Overloaded)
  | Ok _ -> Alcotest.fail "insert grew past capacity with every entry pinned");
  Server.Registry.release reg ha;
  Server.Registry.release reg hc;
  ignore (ok (Server.Registry.insert reg ~name:"d" (tiny_instance 4)))

let test_registry_replace_keeps_old_alive () =
  let reg = Server.Registry.create ~cap:2 in
  let old_inst = tiny_instance 1 and new_inst = tiny_instance 2 in
  ignore (ok (Server.Registry.insert reg ~name:"a" old_inst));
  let h = ok (Server.Registry.acquire reg "a") in
  ignore (ok (Server.Registry.insert reg ~name:"a" new_inst));
  Alcotest.(check bool) "holder keeps the old instance" true
    (Server.Registry.instance h == old_inst);
  let h' = ok (Server.Registry.acquire reg "a") in
  Alcotest.(check bool) "new lookups see the new instance" true
    (Server.Registry.instance h' == new_inst);
  Alcotest.(check int) "one name" 1 (Server.Registry.size reg);
  Server.Registry.release reg h;
  Server.Registry.release reg h'

(* ------------------------------------------------------------------ *)
(* Exec                                                                *)

let sample_req name seed = V1.Sample { name; model = tiny_model; seed }

let test_exec_deadline_and_limits () =
  let ex = Server.Exec.create ~registry_cap:2 ~max_batch:2 () in
  (match Server.Exec.handle ex (sample_req "net" 1) with
  | V1.Sampled info -> Alcotest.(check int) "exact n" 400 info.V1.vertices
  | _ -> Alcotest.fail "sample failed");
  (* An already-expired deadline refuses deterministically (the deadline
     instant itself counts as expired). *)
  check_code "expired deadline" E.Deadline
    (Server.Exec.handle ex ~deadline:(Unix.gettimeofday ())
       (V1.Route { instance = "net"; source = 0; target = 1;
                   protocol = Greedy_routing.Protocol.Greedy; max_steps = None }));
  Alcotest.(check int) "deadline counted" 1 (Server.Exec.deadline_missed ex);
  check_code "oversized batch" E.Overloaded
    (Server.Exec.handle ex
       (V1.Route_batch { instance = "net"; pairs = V1.Pairs [ (0, 1); (2, 3); (4, 5) ];
                         protocol = Greedy_routing.Protocol.Greedy; max_steps = None }));
  Alcotest.(check int) "overload counted as rejected" 1 (Server.Exec.rejected ex);
  check_code "unknown instance" E.Unknown_instance
    (Server.Exec.handle ex (V1.Stats { instance = "ghost" }));
  check_code "out-of-range vertex" E.Bad_request
    (Server.Exec.handle ex
       (V1.Route { instance = "net"; source = 0; target = 400;
                   protocol = Greedy_routing.Protocol.Greedy; max_steps = None }));
  (* In-limit batch still serves. *)
  (match Server.Exec.handle ex
           (V1.Route_batch { instance = "net"; pairs = V1.Pairs [ (0, 1); (2, 3) ];
                             protocol = Greedy_routing.Protocol.Greedy; max_steps = None })
  with
  | V1.Routed_batch replies -> Alcotest.(check int) "batch size" 2 (List.length replies)
  | _ -> Alcotest.fail "in-limit batch failed");
  (match Server.Exec.handle ex V1.Health with
  | V1.Health_reply h ->
      Alcotest.(check bool) "not draining" false h.V1.draining;
      Alcotest.(check (list string)) "registry contents" [ "net" ] h.V1.instances
  | _ -> Alcotest.fail "health failed");
  (match Server.Exec.handle ex V1.Drain with
  | V1.Drain_ack -> ()
  | _ -> Alcotest.fail "drain failed");
  Alcotest.(check bool) "draining flag set" true (Server.Exec.draining ex)

(* ------------------------------------------------------------------ *)
(* Daemon over loopback                                                *)

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Byte-at-a-time line read: test-only, replies are small. *)
let recv_line_opt fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ -> if Bytes.get one 0 = '\n' then Some (Buffer.contents buf) else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let recv_line fd =
  match recv_line_opt fd with
  | Some l -> l
  | None -> Alcotest.fail "connection closed before a reply line arrived"

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let rpc fd env =
  send_all fd (V1.request_line env ^ "\n");
  let line = recv_line fd in
  (ok ~what:line (V1.reply_of_line line)).V1.response

let with_daemon ?(workers = 2) ?(queue_cap = 8) ?(registry_cap = 4) ?(max_batch = 256) f =
  let config =
    { Server.Daemon.default_config with port = 0; workers; queue_cap; registry_cap; max_batch }
  in
  let t = Server.Daemon.create config in
  let server = Domain.spawn (fun () -> Server.Daemon.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop t;
      Domain.join server)
    (fun () -> f t (Server.Daemon.port t))

let route_req ?(protocol = Greedy_routing.Protocol.Patch_dfs) instance (source, target) =
  V1.Route { instance; source; target; protocol; max_steps = None }

let test_daemon_route_byte_identity () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 5)) with
          | V1.Sampled info -> Alcotest.(check int) "sampled n" 400 info.V1.vertices
          | r -> check_code "sample" E.Internal r);
          (* The daemon and this process run the same Render code on the
             same deterministic instance, so served routes must carry
             the exact bytes graphs_cli would print. *)
          let local = tiny_instance 5 in
          List.iter
            (fun pair ->
              match rpc fd (V1.envelope (route_req "net" pair)) with
              | V1.Routed served ->
                  let expected =
                    ok (Api.Render.route ~inst:local
                          ~protocol:Greedy_routing.Protocol.Patch_dfs
                          ~source:(fst pair) ~target:(snd pair) ())
                  in
                  Alcotest.(check string) "route text" expected.V1.text served.V1.text;
                  Alcotest.(check bool) "full reply" true (served = expected)
              | r -> check_code "route" E.Internal r)
            [ (0, 399); (17, 42); (100, 101) ]))

let test_daemon_batch_jobs_invariance () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () ->
          Unix.close fd;
          Parallel.Global.set_jobs 0)
        (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 6)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          let batch =
            V1.Route_batch
              {
                instance = "net";
                pairs = V1.Drawn { count = 32; pair_seed = 9; pool = V1.Giant };
                protocol = Greedy_routing.Protocol.Patch_history;
                max_steps = None;
              }
          in
          let texts_at jobs =
            (* The daemon shares this process's global pool, so resizing
               it here resizes the serving pool. *)
            Parallel.Global.set_jobs jobs;
            match rpc fd (V1.envelope batch) with
            | V1.Routed_batch replies -> List.map (fun r -> r.V1.text) replies
            | r ->
                check_code "batch" E.Internal r;
                []
          in
          let t1 = texts_at 1 in
          Alcotest.(check int) "batch size" 32 (List.length t1);
          Alcotest.(check (list string)) "jobs=2 identical" t1 (texts_at 2);
          Alcotest.(check (list string)) "jobs=4 identical" t1 (texts_at 4)))

let test_daemon_concurrent_clients () =
  with_daemon ~workers:4 (fun _t port ->
      let fd = connect port in
      let pairs = List.init 8 (fun i -> (i * 13 mod 400, (i * 29 + 200) mod 400)) in
      let sequential =
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            (match rpc fd (V1.envelope (sample_req "net" 7)) with
            | V1.Sampled _ -> ()
            | r -> check_code "sample" E.Internal r);
            List.map
              (fun p ->
                match rpc fd (V1.envelope (route_req "net" p)) with
                | V1.Routed reply -> reply.V1.text
                | r ->
                    check_code "route" E.Internal r;
                    "")
              pairs)
      in
      let clients =
        List.map
          (fun p ->
            Domain.spawn (fun () ->
                let fd = connect port in
                Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
                    match rpc fd (V1.envelope (route_req "net" p)) with
                    | V1.Routed reply -> reply.V1.text
                    | _ -> "")))
          pairs
      in
      let concurrent = List.map Domain.join clients in
      Alcotest.(check (list string)) "8 concurrent clients match sequential"
        sequential concurrent)

let test_daemon_deadline_and_batch_limit () =
  with_daemon ~max_batch:4 (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 8)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          check_code "deadline_ms=0" E.Deadline
            (rpc fd (V1.envelope ~deadline_ms:0 (route_req "net" (0, 1))));
          check_code "oversized batch" E.Overloaded
            (rpc fd
               (V1.envelope
                  (V1.Route_batch
                     {
                       instance = "net";
                       pairs = V1.Pairs [ (0, 1); (2, 3); (4, 5); (6, 7); (8, 9) ];
                       protocol = Greedy_routing.Protocol.Greedy;
                       max_steps = None;
                     })));
          (* The connection survives both refusals. *)
          match rpc fd (V1.envelope (route_req "net" (0, 1))) with
          | V1.Routed _ -> ()
          | r -> check_code "route after refusals" E.Internal r))

let test_daemon_burst_overload () =
  with_daemon ~workers:1 ~queue_cap:1 (fun _t port ->
      (* One worker, queue of one: client A owns the worker, B fills the
         queue, so C must be refused with 'overloaded' on accept — and
         A and (once A closes) B still serve correctly. *)
      let a = connect port in
      (match rpc a (V1.envelope V1.Health) with
      | V1.Health_reply _ -> ()
      | r -> check_code "A health" E.Internal r);
      let b = connect port in
      Unix.sleepf 0.5 (* let the accept loop queue B *);
      let c = connect port in
      (match recv_line_opt c with
      | None -> Alcotest.fail "burst connection closed without the overloaded reply"
      | Some line -> (
          match (ok ~what:line (V1.reply_of_line line)).V1.response with
          | V1.Failed e -> Alcotest.(check bool) "C refused" true (e.E.code = E.Overloaded)
          | _ -> Alcotest.fail "burst connection got a success reply"));
      Alcotest.(check bool) "refusal closes C" true (recv_line_opt c = None);
      Unix.close c;
      Unix.close a;
      (* Worker freed: the queued connection now serves. *)
      (match rpc b (V1.envelope V1.Health) with
      | V1.Health_reply _ -> ()
      | r -> check_code "B health after burst" E.Internal r);
      Unix.close b)

let test_daemon_drain_completes_in_flight () =
  with_daemon (fun t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 9)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          (* Pipeline a batch and a drain on one connection: the batch
             (in flight when drain arrives) must still answer, in order,
             before the ack. *)
          let batch =
            V1.envelope
              (V1.Route_batch
                 {
                   instance = "net";
                   pairs = V1.Drawn { count = 16; pair_seed = 1; pool = V1.Any };
                   protocol = Greedy_routing.Protocol.Greedy;
                   max_steps = None;
                 })
          in
          send_all fd (V1.request_line batch ^ "\n");
          send_all fd (V1.request_line (V1.envelope V1.Drain) ^ "\n");
          (match (ok (V1.reply_of_line (recv_line fd))).V1.response with
          | V1.Routed_batch replies -> Alcotest.(check int) "in-flight batch" 16 (List.length replies)
          | r -> check_code "batch before drain" E.Internal r);
          (match (ok (V1.reply_of_line (recv_line fd))).V1.response with
          | V1.Drain_ack -> ()
          | r -> check_code "drain ack" E.Internal r));
      (* serve must now return on its own (stop in the harness finally
         would mask a hang here, so observe the counters first). *)
      Alcotest.(check bool) "drain flag" true (Server.Exec.draining (Server.Daemon.exec t)))

let suite =
  [
    Alcotest.test_case "registry LRU eviction" `Quick test_registry_lru;
    Alcotest.test_case "registry pinning" `Quick test_registry_pinning;
    Alcotest.test_case "registry replace keeps old alive" `Quick
      test_registry_replace_keeps_old_alive;
    Alcotest.test_case "exec deadlines, limits, counters" `Quick test_exec_deadline_and_limits;
    Alcotest.test_case "daemon serves byte-identical routes" `Quick
      test_daemon_route_byte_identity;
    Alcotest.test_case "batch replies invariant under jobs 1/2/4" `Quick
      test_daemon_batch_jobs_invariance;
    Alcotest.test_case "8 concurrent clients" `Quick test_daemon_concurrent_clients;
    Alcotest.test_case "deadline and batch-limit refusals" `Quick
      test_daemon_deadline_and_batch_limit;
    Alcotest.test_case "burst beyond queue capacity is refused" `Quick
      test_daemon_burst_overload;
    Alcotest.test_case "drain completes in-flight work" `Quick
      test_daemon_drain_completes_in_flight;
  ]
