(* The serving layer: registry LRU/refcount invariants, Exec semantics
   (deadlines, batch limits, counters), and the TCP daemon end to end
   over a loopback socket — byte-identity of served routes with the
   local Render output, concurrent clients, backpressure, drain. *)

module V1 = Api.V1
module E = Api.Error

let ok ?(what = "result") = function
  | Ok v -> v
  | Error (e : E.t) -> Alcotest.failf "%s: unexpected error: %s" what (E.to_string e)

let failed_code = function
  | V1.Failed e -> Some e.E.code
  | _ -> None

let check_code what expected response =
  match failed_code response with
  | Some c when c = expected -> ()
  | Some c -> Alcotest.failf "%s: expected %s, got %s" what (E.code_string expected) (E.code_string c)
  | None -> Alcotest.failf "%s: expected the %s error, got a success" what (E.code_string expected)

(* A tiny deterministic instance (exact vertex count, so test pairs are
   always in range). *)
let tiny_model =
  V1.Girg (Girg.Params.make ~poisson_count:false ~n:400 ())

let tiny_instance seed = Api.Render.instantiate ~model:tiny_model ~seed

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_lru () =
  let reg = Server.Registry.create ~cap:2 in
  let i1 = tiny_instance 1 and i2 = tiny_instance 2 and i3 = tiny_instance 3 in
  ignore (ok (Server.Registry.insert reg ~name:"a" i1));
  ignore (ok (Server.Registry.insert reg ~name:"b" i2));
  Alcotest.(check (list string)) "MRU order" [ "b"; "a" ] (Server.Registry.names reg);
  ignore (ok (Server.Registry.insert reg ~name:"c" i3));
  Alcotest.(check int) "capped" 2 (Server.Registry.size reg);
  (match Server.Registry.acquire reg "a" with
  | Error e -> Alcotest.(check bool) "a evicted" true (e.E.code = E.Unknown_instance)
  | Ok _ -> Alcotest.fail "oldest entry survived past capacity");
  let hb = ok (Server.Registry.acquire reg "b") in
  Server.Registry.release reg hb;
  (* b was just touched, so the next eviction must pick c. *)
  ignore (ok (Server.Registry.insert reg ~name:"d" i1));
  (match Server.Registry.acquire reg "c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "LRU evicted the recently used entry instead");
  Alcotest.(check (list string)) "d, b live" [ "d"; "b" ] (Server.Registry.names reg)

let test_registry_pinning () =
  let reg = Server.Registry.create ~cap:2 in
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 1)));
  ignore (ok (Server.Registry.insert reg ~name:"b" (tiny_instance 2)));
  let ha = ok (Server.Registry.acquire reg "a") in
  (* a is pinned and older than b, yet eviction must take b. *)
  ignore (ok (Server.Registry.insert reg ~name:"c" (tiny_instance 3)));
  (match Server.Registry.acquire reg "b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unpinned entry survived while a pinned one was due");
  let hc = ok (Server.Registry.acquire reg "c") in
  (* Both entries pinned at capacity: insertion must refuse, not grow. *)
  (match Server.Registry.insert reg ~name:"d" (tiny_instance 4) with
  | Error e -> Alcotest.(check bool) "overloaded" true (e.E.code = E.Overloaded)
  | Ok _ -> Alcotest.fail "insert grew past capacity with every entry pinned");
  Server.Registry.release reg ha;
  Server.Registry.release reg hc;
  ignore (ok (Server.Registry.insert reg ~name:"d" (tiny_instance 4)))

let test_registry_replace_keeps_old_alive () =
  let reg = Server.Registry.create ~cap:2 in
  let old_inst = tiny_instance 1 and new_inst = tiny_instance 2 in
  ignore (ok (Server.Registry.insert reg ~name:"a" old_inst));
  let h = ok (Server.Registry.acquire reg "a") in
  ignore (ok (Server.Registry.insert reg ~name:"a" new_inst));
  Alcotest.(check bool) "holder keeps the old instance" true
    (Server.Registry.instance h == old_inst);
  let h' = ok (Server.Registry.acquire reg "a") in
  Alcotest.(check bool) "new lookups see the new instance" true
    (Server.Registry.instance h' == new_inst);
  Alcotest.(check int) "one name" 1 (Server.Registry.size reg);
  Server.Registry.release reg h;
  Server.Registry.release reg h'

(* Generations are monotone per name: bumped by every insert (replace
   included), never reset by eviction, and carried on handles so a
   holder can tell which epoch it pinned. *)
let test_registry_generation () =
  let reg = Server.Registry.create ~cap:2 in
  Alcotest.(check int) "unknown name is gen 0" 0 (Server.Registry.generation reg "a");
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 1)));
  Alcotest.(check int) "first insert" 1 (Server.Registry.generation reg "a");
  let h1 = ok (Server.Registry.acquire reg "a") in
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 2)));
  let h2 = ok (Server.Registry.acquire reg "a") in
  Alcotest.(check int) "replace bumps" 2 (Server.Registry.generation reg "a");
  Alcotest.(check int) "old holder's epoch" 1 (Server.Registry.handle_generation h1);
  Alcotest.(check int) "new holder's epoch" 2 (Server.Registry.handle_generation h2);
  Server.Registry.release reg h1;
  Server.Registry.release reg h2;
  (* Evict a (cap 2: inserting b and c pushes the oldest out), then
     reinsert it: the generation keeps counting from where it left off. *)
  ignore (ok (Server.Registry.insert reg ~name:"b" (tiny_instance 3)));
  ignore (ok (Server.Registry.insert reg ~name:"c" (tiny_instance 4)));
  Alcotest.(check bool) "a evicted" true
    (Result.is_error (Server.Registry.acquire reg "a"));
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 5)));
  Alcotest.(check int) "monotone across evict/reinsert" 3
    (Server.Registry.generation reg "a");
  Alcotest.(check (list (pair string int))) "generations listing"
    [ ("a", 3); ("c", 1) ]
    (Server.Registry.generations reg)

(* Replaced-but-pinned entries are orphans: live heaps no new request
   can reach.  The gauge counts them; releasing the last pin drops
   them out. *)
let test_registry_orphaned () =
  let reg = Server.Registry.create ~cap:4 in
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 1)));
  Alcotest.(check int) "empty registry" 0 (Server.Registry.orphaned reg);
  let h = ok (Server.Registry.acquire reg "a") in
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 2)));
  Alcotest.(check int) "pinned old entry is orphaned" 1 (Server.Registry.orphaned reg);
  (* A second replace while the first orphan is still pinned: the new
     old entry is unpinned, so it is garbage, not an orphan. *)
  ignore (ok (Server.Registry.insert reg ~name:"a" (tiny_instance 3)));
  Alcotest.(check int) "unpinned victims are not orphans" 1
    (Server.Registry.orphaned reg);
  Server.Registry.release reg h;
  Alcotest.(check int) "released orphan is swept" 0 (Server.Registry.orphaned reg);
  (* Eviction (refs = 0) never creates an orphan. *)
  let reg2 = Server.Registry.create ~cap:1 in
  ignore (ok (Server.Registry.insert reg2 ~name:"x" (tiny_instance 1)));
  ignore (ok (Server.Registry.insert reg2 ~name:"y" (tiny_instance 2)));
  Alcotest.(check int) "eviction is not orphaning" 0 (Server.Registry.orphaned reg2)

(* ------------------------------------------------------------------ *)
(* Exec                                                                *)

let sample_req name seed = V1.Sample { name; model = tiny_model; seed }

let test_exec_deadline_and_limits () =
  let ex = Server.Exec.create ~registry_cap:2 ~max_batch:2 () in
  (match Server.Exec.handle ex (sample_req "net" 1) with
  | V1.Sampled info -> Alcotest.(check int) "exact n" 400 info.V1.vertices
  | _ -> Alcotest.fail "sample failed");
  (* An already-expired deadline refuses deterministically (the deadline
     instant itself counts as expired). *)
  check_code "expired deadline" E.Deadline
    (Server.Exec.handle ex ~deadline:(Unix.gettimeofday ())
       (V1.Route { instance = "net"; source = 0; target = 1;
                   protocol = Greedy_routing.Protocol.Greedy; max_steps = None }));
  Alcotest.(check int) "deadline counted" 1 (Server.Exec.deadline_missed ex);
  check_code "oversized batch" E.Overloaded
    (Server.Exec.handle ex
       (V1.Route_batch { instance = "net"; pairs = V1.Pairs [ (0, 1); (2, 3); (4, 5) ];
                         protocol = Greedy_routing.Protocol.Greedy; max_steps = None }));
  Alcotest.(check int) "overload counted as rejected" 1 (Server.Exec.rejected ex);
  check_code "unknown instance" E.Unknown_instance
    (Server.Exec.handle ex (V1.Stats { instance = "ghost" }));
  check_code "out-of-range vertex" E.Bad_request
    (Server.Exec.handle ex
       (V1.Route { instance = "net"; source = 0; target = 400;
                   protocol = Greedy_routing.Protocol.Greedy; max_steps = None }));
  (* In-limit batch still serves. *)
  (match Server.Exec.handle ex
           (V1.Route_batch { instance = "net"; pairs = V1.Pairs [ (0, 1); (2, 3) ];
                             protocol = Greedy_routing.Protocol.Greedy; max_steps = None })
  with
  | V1.Routed_batch replies -> Alcotest.(check int) "batch size" 2 (List.length replies)
  | _ -> Alcotest.fail "in-limit batch failed");
  (match Server.Exec.handle ex V1.Health with
  | V1.Health_reply h ->
      Alcotest.(check bool) "not draining" false h.V1.draining;
      Alcotest.(check (list string)) "registry contents" [ "net" ] h.V1.instances
  | _ -> Alcotest.fail "health failed");
  (match Server.Exec.handle ex V1.Drain with
  | V1.Drain_ack -> ()
  | _ -> Alcotest.fail "drain failed");
  Alcotest.(check bool) "draining flag set" true (Server.Exec.draining ex)

(* The out-of-core ops: spill shards, merge them into the registry,
   snapshot a registered instance, and reject broken inputs with the
   right error codes. *)
let test_exec_out_of_core () =
  let dir = Filename.temp_file "smallworld-exec-ooc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let ex = Server.Exec.create ~registry_cap:2 () in
  let params = Girg.Params.make ~poisson_count:false ~n:400 () in
  let spill shard =
    let out = Filename.concat dir (Printf.sprintf "s%d.spill" shard) in
    (match
       Server.Exec.handle ex (V1.Gen_shard { params; seed = 3; shards = 2; shard; out })
     with
    | V1.Spilled info ->
        Alcotest.(check int) "spill shard" shard info.V1.sp_shard;
        Alcotest.(check int) "spill vertices" 400 info.V1.sp_vertices
    | r -> Alcotest.failf "gen_shard %d failed: %s" shard (V1.op_of_response r));
    out
  in
  let s0 = spill 0 and s1 = spill 1 in
  (match Server.Exec.handle ex (V1.Merge_shards { name = "ooc"; spills = [ s0; s1 ] }) with
  | V1.Merged info ->
      Alcotest.(check string) "merged name" "ooc" info.V1.name;
      Alcotest.(check int) "merged vertices" 400 info.V1.vertices
  | r -> Alcotest.failf "merge_shards failed: %s" (V1.op_of_response r));
  (* The registered instance serves like any other. *)
  (match Server.Exec.handle ex (V1.Stats { instance = "ooc" }) with
  | V1.Stats_reply s -> Alcotest.(check int) "stats vertices" 400 s.V1.vertices
  | _ -> Alcotest.fail "stats on merged instance failed");
  (* Snapshot, then mmap-load the file and compare shapes. *)
  let snap = Filename.concat dir "ooc.bin" in
  (match Server.Exec.handle ex (V1.Snapshot { instance = "ooc"; out = snap }) with
  | V1.Snapshotted info ->
      Alcotest.(check int) "snapshot bytes" (Unix.stat snap).Unix.st_size info.V1.sn_bytes;
      Alcotest.(check int) "snapshot vertices" 400 info.V1.sn_vertices
  | r -> Alcotest.failf "snapshot failed: %s" (V1.op_of_response r));
  (match Girg.Store.load_mmap ~path:snap with
  | Error e -> Alcotest.failf "mmap of served snapshot failed: %s" e
  | Ok inst ->
      Alcotest.(check int) "mmap vertices" 400 (Sparse_graph.Graph.n inst.Girg.Instance.graph));
  (* Error paths: incomplete spill set, unknown instance, bad shard range. *)
  check_code "incomplete spill set" E.Io
    (Server.Exec.handle ex (V1.Merge_shards { name = "bad"; spills = [ s0 ] }));
  check_code "snapshot of unknown instance" E.Unknown_instance
    (Server.Exec.handle ex (V1.Snapshot { instance = "ghost"; out = snap ^ ".x" }));
  check_code "shard out of range" E.Bad_request
    (Server.Exec.handle ex
       (V1.Gen_shard
          { params; seed = 3; shards = 2; shard = 7; out = Filename.concat dir "x.spill" }))

(* ------------------------------------------------------------------ *)
(* Daemon over loopback                                                *)

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Byte-at-a-time line read: test-only, replies are small. *)
let recv_line_opt fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ -> if Bytes.get one 0 = '\n' then Some (Buffer.contents buf) else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let recv_line fd =
  match recv_line_opt fd with
  | Some l -> l
  | None -> Alcotest.fail "connection closed before a reply line arrived"

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let rpc fd env =
  send_all fd (V1.request_line env ^ "\n");
  let line = recv_line fd in
  (ok ~what:line (V1.reply_of_line line)).V1.response

let with_daemon ?(workers = 2) ?(queue_cap = 8) ?(registry_cap = 4) ?(max_batch = 256)
    ?admin_port ?access_log ?(access_sample = 1) ?obs_out ?(obs_interval = 60.0)
    ?events_out ?trace_out ?(json_only = false) f =
  let config =
    { Server.Daemon.default_config with port = 0; workers; queue_cap; registry_cap;
      max_batch; admin_port; access_log; access_sample; obs_out; obs_interval;
      events_out; trace_out; json_only }
  in
  let t = Server.Daemon.create config in
  let server = Domain.spawn (fun () -> Server.Daemon.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop t;
      Domain.join server)
    (fun () -> f t (Server.Daemon.port t))

let route_req ?(protocol = Greedy_routing.Protocol.Patch_dfs) instance (source, target) =
  V1.Route { instance; source; target; protocol; max_steps = None }

let test_daemon_route_byte_identity () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 5)) with
          | V1.Sampled info -> Alcotest.(check int) "sampled n" 400 info.V1.vertices
          | r -> check_code "sample" E.Internal r);
          (* The daemon and this process run the same Render code on the
             same deterministic instance, so served routes must carry
             the exact bytes graphs_cli would print. *)
          let local = tiny_instance 5 in
          List.iter
            (fun pair ->
              match rpc fd (V1.envelope (route_req "net" pair)) with
              | V1.Routed served ->
                  let expected =
                    ok (Api.Render.route ~inst:local
                          ~protocol:Greedy_routing.Protocol.Patch_dfs
                          ~source:(fst pair) ~target:(snd pair) ())
                  in
                  Alcotest.(check string) "route text" expected.V1.text served.V1.text;
                  Alcotest.(check bool) "full reply" true (served = expected)
              | r -> check_code "route" E.Internal r)
            [ (0, 399); (17, 42); (100, 101) ]))

let test_daemon_batch_jobs_invariance () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () ->
          Unix.close fd;
          Parallel.Global.set_jobs 0)
        (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 6)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          let batch =
            V1.Route_batch
              {
                instance = "net";
                pairs = V1.Drawn { count = 32; pair_seed = 9; pool = V1.Giant };
                protocol = Greedy_routing.Protocol.Patch_history;
                max_steps = None;
              }
          in
          let texts_at jobs =
            (* The daemon shares this process's global pool, so resizing
               it here resizes the serving pool. *)
            Parallel.Global.set_jobs jobs;
            match rpc fd (V1.envelope batch) with
            | V1.Routed_batch replies -> List.map (fun r -> r.V1.text) replies
            | r ->
                check_code "batch" E.Internal r;
                []
          in
          let t1 = texts_at 1 in
          Alcotest.(check int) "batch size" 32 (List.length t1);
          Alcotest.(check (list string)) "jobs=2 identical" t1 (texts_at 2);
          Alcotest.(check (list string)) "jobs=4 identical" t1 (texts_at 4)))

let test_daemon_concurrent_clients () =
  with_daemon ~workers:4 (fun _t port ->
      let fd = connect port in
      let pairs = List.init 8 (fun i -> (i * 13 mod 400, (i * 29 + 200) mod 400)) in
      let sequential =
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            (match rpc fd (V1.envelope (sample_req "net" 7)) with
            | V1.Sampled _ -> ()
            | r -> check_code "sample" E.Internal r);
            List.map
              (fun p ->
                match rpc fd (V1.envelope (route_req "net" p)) with
                | V1.Routed reply -> reply.V1.text
                | r ->
                    check_code "route" E.Internal r;
                    "")
              pairs)
      in
      let clients =
        List.map
          (fun p ->
            Domain.spawn (fun () ->
                let fd = connect port in
                Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
                    match rpc fd (V1.envelope (route_req "net" p)) with
                    | V1.Routed reply -> reply.V1.text
                    | _ -> "")))
          pairs
      in
      let concurrent = List.map Domain.join clients in
      Alcotest.(check (list string)) "8 concurrent clients match sequential"
        sequential concurrent)

let test_daemon_deadline_and_batch_limit () =
  with_daemon ~max_batch:4 (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 8)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          check_code "deadline_ms=0" E.Deadline
            (rpc fd (V1.envelope ~deadline_ms:0 (route_req "net" (0, 1))));
          check_code "oversized batch" E.Overloaded
            (rpc fd
               (V1.envelope
                  (V1.Route_batch
                     {
                       instance = "net";
                       pairs = V1.Pairs [ (0, 1); (2, 3); (4, 5); (6, 7); (8, 9) ];
                       protocol = Greedy_routing.Protocol.Greedy;
                       max_steps = None;
                     })));
          (* The connection survives both refusals. *)
          match rpc fd (V1.envelope (route_req "net" (0, 1))) with
          | V1.Routed _ -> ()
          | r -> check_code "route after refusals" E.Internal r))

let test_daemon_burst_overload () =
  with_daemon ~workers:1 ~queue_cap:1 (fun _t port ->
      (* One worker, job queue of one: client A's slow sample owns the
         worker, B's request fills the queue, so C's request must be
         refused with 'overloaded' — answered by the event loop itself,
         and the connection survives to retry once the burst passes. *)
      let slow_model = V1.Girg (Girg.Params.make ~poisson_count:false ~n:100_000 ()) in
      let a = connect port and b = connect port and c = connect port in
      send_all a
        (V1.request_line (V1.envelope (V1.Sample { name = "big"; model = slow_model; seed = 1 }))
        ^ "\n");
      Unix.sleepf 0.25 (* the worker pops A's sample and is computing *);
      send_all b (V1.request_line (V1.envelope V1.Health) ^ "\n");
      Unix.sleepf 0.25 (* B's request reaches the job queue (depth 1 = cap) *);
      (match rpc c (V1.envelope V1.Health) with
      | V1.Failed e ->
          Alcotest.(check bool) "C refused" true (e.E.code = E.Overloaded)
      | _ -> Alcotest.fail "burst request got a success reply");
      (* Refusal happens per request now: the connection stays open, and
         once A's sample releases the worker C serves normally. *)
      (match (ok (V1.reply_of_line (recv_line a))).V1.response with
      | V1.Sampled _ -> ()
      | r -> check_code "A sample" E.Internal r);
      (match (ok (V1.reply_of_line (recv_line b))).V1.response with
      | V1.Health_reply _ -> ()
      | r -> check_code "B health after burst" E.Internal r);
      (match rpc c (V1.envelope V1.Health) with
      | V1.Health_reply _ -> ()
      | r -> check_code "C health after burst" E.Internal r);
      Unix.close a;
      Unix.close b;
      Unix.close c)

let test_daemon_drain_completes_in_flight () =
  with_daemon (fun t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 9)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          (* Pipeline a batch and a drain on one connection: the batch
             (in flight when drain arrives) must still answer, in order,
             before the ack. *)
          let batch =
            V1.envelope
              (V1.Route_batch
                 {
                   instance = "net";
                   pairs = V1.Drawn { count = 16; pair_seed = 1; pool = V1.Any };
                   protocol = Greedy_routing.Protocol.Greedy;
                   max_steps = None;
                 })
          in
          send_all fd (V1.request_line batch ^ "\n");
          send_all fd (V1.request_line (V1.envelope V1.Drain) ^ "\n");
          (match (ok (V1.reply_of_line (recv_line fd))).V1.response with
          | V1.Routed_batch replies -> Alcotest.(check int) "in-flight batch" 16 (List.length replies)
          | r -> check_code "batch before drain" E.Internal r);
          (match (ok (V1.reply_of_line (recv_line fd))).V1.response with
          | V1.Drain_ack -> ()
          | r -> check_code "drain ack" E.Internal r));
      (* serve must now return on its own (stop in the harness finally
         would mask a hang here, so observe the counters first). *)
      Alcotest.(check bool) "drain flag" true (Server.Exec.draining (Server.Daemon.exec t)))

(* ------------------------------------------------------------------ *)
(* Binary wire codec against the live daemon                           *)

module B = Api.Binary

(* One request frame out, one reply frame back.  Returns the decoded
   reply record (not just the response) so callers can compare its
   re-rendered JSON line byte-for-byte with the JSON codec's output. *)
let brpc_reply fd env =
  send_all fd (B.request_frame env);
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match B.parse (Buffer.contents buf) ~pos:0 ~len:(Buffer.length buf) with
    | B.Frame { payload; _ } -> ok ~what:"reply frame" (B.reply_of_payload payload)
    | B.Need -> (
        match Unix.read fd chunk 0 4096 with
        | 0 -> Alcotest.fail "connection closed before a binary reply arrived"
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
    | B.Oversized _ | B.Bad _ | B.Bad_version _ ->
        Alcotest.fail "daemon sent a malformed reply frame"
  in
  go ()

let brpc fd env = (brpc_reply fd env).V1.response

let rpc_raw_line fd env =
  send_all fd (V1.request_line env ^ "\n");
  recv_line fd

(* A JSON client and a binary client on the same daemon: codecs are
   negotiated per connection, replies are byte-equivalent — the binary
   reply re-renders to exactly the line the JSON codec served. *)
let test_daemon_binary_codec () =
  with_daemon (fun _t port ->
      let fdj = connect port and fdb = connect port in
      Fun.protect
        ~finally:(fun () ->
          Unix.close fdj;
          Unix.close fdb)
        (fun () ->
          (match brpc fdb (V1.envelope (sample_req "net" 5)) with
          | V1.Sampled info -> Alcotest.(check int) "binary sample n" 400 info.V1.vertices
          | r -> check_code "binary sample" E.Internal r);
          List.iter
            (fun pair ->
              let env = V1.envelope ~id:7 (route_req "net" pair) in
              let json_line = rpc_raw_line fdj env in
              let breply = brpc_reply fdb env in
              Alcotest.(check string) "binary reply re-renders to the JSON line"
                json_line (V1.reply_line breply);
              match breply.V1.response with
              | V1.Routed _ -> ()
              | r -> check_code "binary route" E.Internal r)
            [ (0, 399); (17, 42); (100, 101) ]))

(* A frame delivered in tiny pieces across many TCP segments must
   parse exactly once the last byte lands. *)
let test_daemon_binary_partial_frames () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match brpc fd (V1.envelope (sample_req "net" 5)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          let frame = B.request_frame (V1.envelope (route_req "net" (3, 300))) in
          let n = String.length frame in
          let third = max 1 (n / 3) in
          let rec drip off =
            if off < n then begin
              let len = min third (n - off) in
              send_all fd (String.sub frame off len);
              Unix.sleepf 0.05;
              drip (off + len)
            end
          in
          drip 0;
          let buf = Buffer.create 512 in
          let chunk = Bytes.create 4096 in
          let rec await () =
            match B.parse (Buffer.contents buf) ~pos:0 ~len:(Buffer.length buf) with
            | B.Frame { payload; _ } ->
                (ok ~what:"reply" (B.reply_of_payload payload)).V1.response
            | B.Need -> (
                match Unix.read fd chunk 0 4096 with
                | 0 -> Alcotest.fail "connection closed mid-drip"
                | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    await ())
            | B.Oversized _ | B.Bad _ | B.Bad_version _ -> Alcotest.fail "malformed reply frame"
          in
          (match await () with
          | V1.Routed _ -> ()
          | r -> check_code "dripped route" E.Internal r)))

(* A frame declaring a payload past the 16 MiB bound is a caller
   error: the daemon answers bad-request, discards the declared bytes
   as they arrive, and the connection keeps serving. *)
let test_daemon_binary_oversized () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match brpc fd (V1.envelope (sample_req "net" 5)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          let declared = B.max_frame_bytes + 1 in
          send_all fd (B.frame (String.make declared 'x'));
          (match brpc fd (V1.envelope V1.Health) with
          | V1.Failed e ->
              Alcotest.(check bool) "oversized is a caller error" true
                (e.E.code = E.Bad_request)
          | _ -> Alcotest.fail "oversized frame was not refused");
          (* ^ that reply answered the oversized frame; the pipelined
             health now serves on the same connection. *)
          (match brpc fd (V1.envelope V1.Health) with
          | V1.Health_reply _ -> ()
          | r -> check_code "health after oversized" E.Internal r)))

(* A frame whose 9-byte length varint sets bit 62 decodes to a
   negative OCaml int.  The daemon must answer bad-frame and drop the
   connection — and, crucially, survive: this exact frame used to
   raise Invalid_argument inside the event-loop domain and kill the
   whole server. *)
let test_daemon_binary_negative_length () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          send_all fd
            (Printf.sprintf "%c%c%s" B.magic (Char.chr B.version)
               (String.make 8 '\x80' ^ "\x40"));
          let buf = Buffer.create 256 in
          let chunk = Bytes.create 4096 in
          let rec await () =
            match B.parse (Buffer.contents buf) ~pos:0 ~len:(Buffer.length buf) with
            | B.Frame { payload; _ } ->
                (ok ~what:"reply" (B.reply_of_payload payload)).V1.response
            | B.Need -> (
                match Unix.read fd chunk 0 4096 with
                | 0 -> Alcotest.fail "daemon closed before refusing the bad frame"
                | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    await ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ())
            | B.Oversized _ | B.Bad _ | B.Bad_version _ -> Alcotest.fail "malformed reply frame"
          in
          (match await () with
          | V1.Failed e ->
              Alcotest.(check bool) "negative length is a caller error" true
                (e.E.code = E.Bad_request)
          | _ -> Alcotest.fail "negative frame length was not refused");
          (* The connection is unsynchronisable and closes after the
             refusal flushes. *)
          let rec drain () =
            match Unix.read fd chunk 0 4096 with
            | 0 -> ()
            | _ -> drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          in
          drain ());
      (* The daemon survived and serves fresh connections. *)
      let fd2 = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd2) (fun () ->
          match rpc fd2 (V1.envelope V1.Health) with
          | V1.Health_reply _ -> ()
          | r -> check_code "health after bad frame" E.Internal r))

(* --json-only refuses the binary magic with a JSON caller error and
   closes after flushing it. *)
let test_daemon_json_only () =
  with_daemon ~json_only:true (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          send_all fd (B.request_frame (V1.envelope V1.Health));
          (match (ok (V1.reply_of_line (recv_line fd))).V1.response with
          | V1.Failed e ->
              Alcotest.(check bool) "refused as caller error" true
                (e.E.code = E.Bad_request)
          | _ -> Alcotest.fail "json-only daemon accepted a binary frame");
          Alcotest.(check bool) "connection closed after refusal" true
            (recv_line_opt fd = None));
      (* JSON clients are unaffected. *)
      let fdj = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fdj) (fun () ->
          match rpc fdj (V1.envelope V1.Health) with
          | V1.Health_reply _ -> ()
          | r -> check_code "json client" E.Internal r))

(* A frame carrying the right magic but a version byte we do not
   speak gets a structured unsupported-version error naming the
   supported range — in v1 framing, the only one the daemon can emit —
   and then the connection closes. *)
let test_daemon_binary_bad_version () =
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let good = B.request_frame (V1.envelope V1.Health) in
          let bad = Bytes.of_string good in
          Bytes.set bad 1 (Char.chr 9);
          send_all fd (Bytes.to_string bad);
          let buf = Buffer.create 256 in
          let chunk = Bytes.create 4096 in
          let rec await () =
            match B.parse (Buffer.contents buf) ~pos:0 ~len:(Buffer.length buf) with
            | B.Frame { payload; _ } ->
                (ok ~what:"reply" (B.reply_of_payload payload)).V1.response
            | B.Need -> (
                match Unix.read fd chunk 0 4096 with
                | 0 -> Alcotest.fail "daemon closed before refusing the version"
                | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    await ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ())
            | B.Oversized _ | B.Bad _ | B.Bad_version _ -> Alcotest.fail "malformed reply frame"
          in
          (match await () with
          | V1.Failed e ->
              Alcotest.(check bool) "unsupported-version code" true
                (e.E.code = E.Unsupported_version);
              Alcotest.(check string) "message names the range"
                "unsupported binary protocol version 9 (this server speaks v1 only)"
                e.E.message
          | _ -> Alcotest.fail "wrong version byte was not refused");
          (* The refusal flushes, then the connection closes. *)
          let rec drain () =
            match Unix.read fd chunk 0 4096 with
            | 0 -> ()
            | _ -> drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          in
          drain ());
      (* The daemon survived and still speaks v1. *)
      let fd2 = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd2) (fun () ->
          match brpc fd2 (V1.envelope V1.Health) with
          | V1.Health_reply _ -> ()
          | r -> check_code "health after bad version" E.Internal r))

(* Live-graph ops end to end over the wire: mutate through one codec,
   observe the bumped generation through the other, and run a churn
   scenario whose rows match a local replay byte for byte. *)
let test_daemon_mutate_churn () =
  with_daemon (fun _t port ->
      let fdj = connect port and fdb = connect port in
      Fun.protect
        ~finally:(fun () ->
          Unix.close fdj;
          Unix.close fdb)
        (fun () ->
          (match rpc fdj (V1.envelope (sample_req "net" 1)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          let ops = [ Girg.Mutate.Leave 7; Girg.Mutate.Resample 3 ] in
          (match
             brpc fdb (V1.envelope (V1.Mutate { instance = "net"; ops; seed = 4 }))
           with
          | V1.Mutated m ->
              Alcotest.(check int) "binary mutate epoch" 1 m.V1.mu_epoch;
              Alcotest.(check int) "binary mutate generation" 2 m.V1.mu_generation
          | r -> check_code "binary mutate" E.Internal r);
          (* The JSON connection routes on the mutated graph: byte
             identity with a local replay of the same script. *)
          let mutated = Girg.Mutate.apply ~seed:4 (tiny_instance 1) ops in
          let expected =
            (ok
               (Api.Render.route ~inst:mutated
                  ~protocol:Greedy_routing.Protocol.Patch_dfs ~source:0 ~target:399 ()))
              .V1.text
          in
          (match rpc fdj (V1.envelope (route_req "net" (0, 399))) with
          | V1.Routed r ->
              Alcotest.(check string) "served = local replay" expected r.V1.text
          | r -> check_code "route after mutate" E.Internal r);
          let config =
            {
              Experiments.Churn.scenario = Experiments.Churn.Uniform;
              epochs = 2;
              events = 10;
              quit = 0.0;
              seed = 21;
              count = 15;
              pair_seed = 2;
              protocol = Greedy_routing.Protocol.Greedy;
              max_steps = None;
            }
          in
          let local_rows = snd (Experiments.Churn.run_local config mutated) in
          let float_eq a b = (Float.is_nan a && Float.is_nan b) || a = b in
          let rows_eq (a : Experiments.Churn.epoch_row)
              (b : Experiments.Churn.epoch_row) =
            a.epoch = b.epoch && a.live = b.live && a.edges = b.edges
            && a.attempted = b.attempted
            && a.delivered = b.delivered
            && float_eq a.mean_steps b.mean_steps
            && float_eq a.mean_stretch b.mean_stretch
          in
          match rpc fdj (V1.envelope (V1.Churn { instance = "net"; config })) with
          | V1.Churned c ->
              Alcotest.(check int) "baseline + one row per epoch" 3
                (List.length c.V1.ch_rows);
              Alcotest.(check bool) "rows match a local replay" true
                (List.for_all2 rows_eq c.V1.ch_rows local_rows);
              (* Two mutation epochs on top of generation 2. *)
              Alcotest.(check int) "churn bumped the generation twice" 4
                c.V1.ch_generation
          | r -> check_code "churn" E.Internal r))

(* ------------------------------------------------------------------ *)
(* Route cache                                                         *)

let local_route_text seed (source, target) =
  (ok
     (Api.Render.route ~inst:(tiny_instance seed)
        ~protocol:Greedy_routing.Protocol.Patch_dfs ~source ~target ()))
    .V1.text

let routed_text what = function
  | V1.Routed r -> r.V1.text
  | r ->
      check_code what E.Internal r;
      ""

let test_exec_route_cache () =
  let ex = Server.Exec.create ~registry_cap:2 ~cache_cap:8 () in
  let cache = Server.Exec.cache ex in
  (match Server.Exec.handle ex (sample_req "net" 1) with
  | V1.Sampled _ -> ()
  | r -> check_code "sample" E.Internal r);
  (* Find a pair whose route differs between the two epochs, so a
     stale cache hit after replace cannot pass by coincidence. *)
  let pair =
    List.find
      (fun p -> local_route_text 1 p <> local_route_text 2 p)
      [ (0, 399); (17, 42); (100, 101); (3, 300); (50, 250); (9, 99) ]
  in
  let t1 = routed_text "first route" (Server.Exec.handle ex (route_req "net" pair)) in
  Alcotest.(check string) "served = local" (local_route_text 1 pair) t1;
  Alcotest.(check int) "one miss" 1 (Server.Cache.misses cache);
  Alcotest.(check int) "no hits yet" 0 (Server.Cache.hits cache);
  let t2 = routed_text "second route" (Server.Exec.handle ex (route_req "net" pair)) in
  Alcotest.(check string) "hit equals miss" t1 t2;
  Alcotest.(check int) "one hit" 1 (Server.Cache.hits cache);
  Alcotest.(check int) "still one miss" 1 (Server.Cache.misses cache);
  (* Replace the instance: the sweep empties the name's entries and the
     generation bump re-keys new requests — never a stale route. *)
  (match Server.Exec.handle ex (sample_req "net" 2) with
  | V1.Sampled _ -> ()
  | r -> check_code "replace" E.Internal r);
  Alcotest.(check int) "invalidated on replace" 0 (Server.Cache.size cache);
  let t3 = routed_text "route after replace" (Server.Exec.handle ex (route_req "net" pair)) in
  Alcotest.(check string) "post-replace route is the new epoch's"
    (local_route_text 2 pair) t3;
  Alcotest.(check bool) "no stale bytes" true (t3 <> t1);
  Alcotest.(check int) "replace recomputes" 2 (Server.Cache.misses cache);
  (* Counters ride the health/stats channels; generations land in the
     stats gauges. *)
  let counters = Server.Exec.counter_pairs ex in
  Alcotest.(check (option int)) "cache hits in counter_pairs" (Some 1)
    (List.assoc_opt "server.cache.hits" counters);
  let stats = Server.Exec.server_stats ex in
  (match List.assoc_opt "server.registry.gen.net" stats.V1.gauges with
  | Some g -> Alcotest.(check (float 0.0)) "generation gauge" 2.0 g
  | None -> Alcotest.fail "stats-server gauges are missing server.registry.gen.net");
  (match List.assoc_opt "server.cache.size" stats.V1.gauges with
  | Some g -> Alcotest.(check (float 0.0)) "cache size gauge" 1.0 g
  | None -> Alcotest.fail "stats-server gauges are missing server.cache.size");
  (* cache_cap = 0 disables caching entirely. *)
  let ex0 = Server.Exec.create ~cache_cap:0 () in
  (match Server.Exec.handle ex0 (sample_req "net" 1) with
  | V1.Sampled _ -> ()
  | r -> check_code "sample (nocache)" E.Internal r);
  ignore (Server.Exec.handle ex0 (route_req "net" pair));
  ignore (Server.Exec.handle ex0 (route_req "net" pair));
  Alcotest.(check int) "disabled cache counts nothing" 0
    (Server.Cache.misses (Server.Exec.cache ex0) + Server.Cache.hits (Server.Exec.cache ex0))

(* N concurrent identical requests compute once: one leader (miss),
   everyone else coalesces onto its result. *)
let test_cache_single_flight () =
  let routed =
    match
      Api.Render.route ~inst:(tiny_instance 1)
        ~protocol:Greedy_routing.Protocol.Greedy ~source:0 ~target:1 ()
    with
    | Ok r -> V1.Routed r
    | Error e -> Alcotest.failf "local route failed: %s" (E.to_string e)
  in
  let cache = Server.Cache.create ~cap:4 in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    Unix.sleepf 0.3;
    routed
  in
  let n = 8 in
  let domains =
    List.init n (fun _ ->
        Domain.spawn (fun () -> Server.Cache.find_or_compute cache ~key:"k" compute))
  in
  let results = List.map Domain.join domains in
  List.iter
    (fun r -> Alcotest.(check bool) "shared result" true (r == routed))
    results;
  Alcotest.(check int) "computed once" 1 (Atomic.get computes);
  Alcotest.(check int) "one miss" 1 (Server.Cache.misses cache);
  Alcotest.(check int) "everyone else hit or coalesced" (n - 1)
    (Server.Cache.hits cache + Server.Cache.coalesced cache);
  (* A failed leader releases its followers and the first retries as
     the new leader — failures are never shared or cached. *)
  let cache2 = Server.Cache.create ~cap:4 in
  let calls = Atomic.make 0 in
  let flaky () =
    if Atomic.fetch_and_add calls 1 = 0 then begin
      Unix.sleepf 0.2;
      V1.Failed (E.make E.Internal "transient")
    end
    else routed
  in
  let domains2 =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Server.Cache.find_or_compute cache2 ~key:"k" flaky))
  in
  let results2 = List.map Domain.join domains2 in
  let failures =
    List.length (List.filter (function V1.Failed _ -> true | _ -> false) results2)
  in
  Alcotest.(check int) "only the first leader sees the failure" 1 failures;
  Alcotest.(check int) "failure triggered exactly one recompute" 2
    (Server.Cache.misses cache2)

(* [cache_if] gates the store, not the reply: a leader whose result
   fails the predicate still returns it, but the next lookup misses
   again.  The executor uses this to drop results computed on an
   instance whose generation no longer matches the key (a replace
   raced the generation read), which would otherwise survive the
   replace's invalidation sweep. *)
let test_cache_if_gates_store () =
  let routed =
    match
      Api.Render.route ~inst:(tiny_instance 1)
        ~protocol:Greedy_routing.Protocol.Greedy ~source:0 ~target:1 ()
    with
    | Ok r -> V1.Routed r
    | Error e -> Alcotest.failf "local route failed: %s" (E.to_string e)
  in
  let cache = Server.Cache.create ~cap:4 in
  let computes = ref 0 in
  let compute () = incr computes; routed in
  let stale = Server.Cache.find_or_compute cache ~cache_if:(fun _ -> false) ~key:"k" compute in
  Alcotest.(check bool) "stale result still returned" true (stale == routed);
  Alcotest.(check int) "stale result not stored" 0 (Server.Cache.size cache);
  ignore (Server.Cache.find_or_compute cache ~cache_if:(fun _ -> true) ~key:"k" compute);
  Alcotest.(check int) "second lookup recomputed" 2 !computes;
  Alcotest.(check int) "fresh result stored" 1 (Server.Cache.size cache);
  ignore (Server.Cache.find_or_compute cache ~key:"k" compute);
  Alcotest.(check int) "third lookup hit" 2 !computes;
  Alcotest.(check int) "two misses, one hit" 2 (Server.Cache.misses cache);
  Alcotest.(check int) "one hit" 1 (Server.Cache.hits cache)

(* Mutate is a registry replace in disguise: the generation bump
   re-keys every future route and the invalidation sweep empties the
   name's cached entries, so a (gen, s, t) route cached before the
   mutation is never served after it. *)
let test_exec_mutate_invalidates_cache () =
  let ex = Server.Exec.create ~registry_cap:2 ~cache_cap:8 () in
  let cache = Server.Exec.cache ex in
  (match Server.Exec.handle ex (sample_req "net" 1) with
  | V1.Sampled _ -> ()
  | r -> check_code "sample" E.Internal r);
  let pair = (17, 42) in
  let before =
    routed_text "pre-mutation route" (Server.Exec.handle ex (route_req "net" pair))
  in
  ignore (routed_text "warm hit" (Server.Exec.handle ex (route_req "net" pair)));
  Alcotest.(check int) "warm" 1 (Server.Cache.hits cache);
  (* Pin the pre-mutation instance: the mutation must replace, not
     destroy, what a concurrent request may still be routing on. *)
  let h = ok (Server.Registry.acquire (Server.Exec.registry ex) "net") in
  let ops = [ Girg.Mutate.Leave 5; Girg.Mutate.Resample 17 ] in
  (match Server.Exec.handle ex (V1.Mutate { instance = "net"; ops; seed = 9 }) with
  | V1.Mutated m ->
      Alcotest.(check string) "name" "net" m.V1.mu_name;
      Alcotest.(check int) "epoch advanced" 1 m.V1.mu_epoch;
      Alcotest.(check int) "generation bumped" 2 m.V1.mu_generation;
      Alcotest.(check int) "one departure" 399 m.V1.mu_live;
      Alcotest.(check int) "n unchanged" 400 m.V1.mu_vertices;
      Alcotest.(check int) "both ops applied" 2 m.V1.mu_applied
  | r -> check_code "mutate" E.Internal r);
  Alcotest.(check int) "cache swept by mutation" 0 (Server.Cache.size cache);
  Alcotest.(check int) "pinned pre-mutation holder is orphaned" 1
    (Server.Registry.orphaned (Server.Exec.registry ex));
  (* The post-mutation route must be byte-identical to a local replay
     of the same mutation script — and a recompute, not a stale hit. *)
  let expected =
    let mutated = Girg.Mutate.apply ~seed:9 (tiny_instance 1) ops in
    (ok
       (Api.Render.route ~inst:mutated ~protocol:Greedy_routing.Protocol.Patch_dfs
          ~source:(fst pair) ~target:(snd pair) ()))
      .V1.text
  in
  let after =
    routed_text "post-mutation route" (Server.Exec.handle ex (route_req "net" pair))
  in
  Alcotest.(check string) "served = local replay of the mutation" expected after;
  Alcotest.(check bool) "route actually changed" true (after <> before);
  Alcotest.(check int) "recomputed, not served stale" 2 (Server.Cache.misses cache);
  Alcotest.(check int) "no new hits" 1 (Server.Cache.hits cache);
  (* The orphan shows up in the stats-server gauges and clears on
     release. *)
  let stats = Server.Exec.server_stats ex in
  (match List.assoc_opt "server.registry.orphaned" stats.V1.gauges with
  | Some g -> Alcotest.(check (float 0.0)) "orphaned gauge" 1.0 g
  | None -> Alcotest.fail "gauges are missing server.registry.orphaned");
  Server.Registry.release (Server.Exec.registry ex) h;
  Alcotest.(check int) "release sweeps the orphan" 0
    (Server.Registry.orphaned (Server.Exec.registry ex));
  (* Mutations validate before touching anything. *)
  check_code "out-of-range vertex" E.Bad_request
    (Server.Exec.handle ex
       (V1.Mutate { instance = "net"; ops = [ Girg.Mutate.Leave 400 ]; seed = 1 }));
  check_code "unknown instance" E.Unknown_instance
    (Server.Exec.handle ex
       (V1.Mutate { instance = "ghost"; ops = [ Girg.Mutate.Leave 1 ]; seed = 1 }))

(* An expired (gen, s, t) entry must not be servable even through the
   single-flight path: a follower that coalesced onto a leader keyed
   at the old generation gets the leader's result, but the store is
   gated, so nothing keyed stale survives for later requests. *)
let test_mutate_single_flight_race () =
  let ex = Server.Exec.create ~registry_cap:2 ~cache_cap:8 () in
  (match Server.Exec.handle ex (sample_req "net" 1) with
  | V1.Sampled _ -> ()
  | r -> check_code "sample" E.Internal r);
  let pair = (17, 42) in
  (* Race N routers against one mutator.  Whatever the interleaving,
     the cache must end up empty of pre-mutation keys: a final route
     must serve the mutated instance's bytes. *)
  let routers =
    List.init 6 (fun _ ->
        Domain.spawn (fun () -> Server.Exec.handle ex (route_req "net" pair)))
  in
  let mutator =
    Domain.spawn (fun () ->
        Server.Exec.handle ex
          (V1.Mutate { instance = "net"; ops = [ Girg.Mutate.Resample 17 ]; seed = 3 }))
  in
  List.iter (fun d -> ignore (Domain.join d)) routers;
  (match Domain.join mutator with
  | V1.Mutated _ -> ()
  | r -> check_code "racing mutate" E.Internal r);
  let expected =
    let mutated =
      Girg.Mutate.apply ~seed:3 (tiny_instance 1) [ Girg.Mutate.Resample 17 ]
    in
    (ok
       (Api.Render.route ~inst:mutated ~protocol:Greedy_routing.Protocol.Patch_dfs
          ~source:(fst pair) ~target:(snd pair) ()))
      .V1.text
  in
  let served =
    routed_text "route after the race" (Server.Exec.handle ex (route_req "net" pair))
  in
  Alcotest.(check string) "no stale entry survived the race" expected served

(* ------------------------------------------------------------------ *)
(* Telemetry: stats-server, admin port, access log, manifest timer     *)

let get_stats response =
  match response with
  | V1.Server_stats_reply s -> s
  | r ->
      check_code "stats-server" E.Internal r;
      Alcotest.fail "stats-server did not reply with Server_stats_reply"

let counter_of (s : V1.server_stats_reply) name =
  match List.assoc_opt name s.V1.s_counters with
  | Some v -> v
  | None -> Alcotest.failf "stats-server reply is missing counter %s" name

let gauge_of (s : V1.server_stats_reply) name =
  match List.assoc_opt name s.V1.gauges with
  | Some v -> v
  | None -> Alcotest.failf "stats-server reply is missing gauge %s" name

let test_server_stats_over_tcp () =
  (* The obs registry is process-global; clear what earlier daemon
     tests recorded so stage counts here are exact. *)
  Obs.Metrics.reset Obs.Metrics.default;
  with_daemon (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 11)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
          List.iter
            (fun p ->
              match rpc fd (V1.envelope (route_req "net" p)) with
              | V1.Routed _ -> ()
              | r -> check_code "route" E.Internal r)
            [ (0, 1); (2, 3); (4, 5) ];
          let s = get_stats (rpc fd (V1.envelope ~id:5 V1.Server_stats)) in
          Alcotest.(check bool) "uptime non-negative" true (s.V1.uptime_s >= 0.0);
          Alcotest.(check bool) "not draining" false s.V1.s_draining;
          Alcotest.(check bool) "obs_live reports the env" (Obs.Metrics.enabled)
            s.V1.obs_live;
          (* 1 sample + 3 routes + this stats-server request. *)
          Alcotest.(check int) "accepted" 5 (counter_of s "server.accepted");
          Alcotest.(check int) "served so far" 4 (counter_of s "server.served");
          Alcotest.(check (float 0.0)) "registry size gauge" 1.0
            (gauge_of s "server.registry.size");
          Alcotest.(check (float 0.0)) "inflight is this request" 1.0
            (gauge_of s "server.inflight");
          ignore (gauge_of s "server.queue_depth");
          ignore (gauge_of s "server.registry.cap");
          if Obs.Metrics.enabled then begin
            let stage name =
              match List.find_opt (fun st -> st.V1.stage = name) s.V1.stages with
              | Some st -> st
              | None -> Alcotest.failf "no %s stage in stats-server reply" name
            in
            let compute = stage "stage.compute" in
            (* Sample + 3 routes were fully traced before this request. *)
            Alcotest.(check bool) "compute count >= 4" true (compute.V1.s_count >= 4);
            Alcotest.(check bool) "quantiles ordered" true
              (compute.V1.p50 <= compute.V1.p90 && compute.V1.p90 <= compute.V1.p99
             && compute.V1.p99 <= compute.V1.p999);
            let lat = stage "latency.route" in
            Alcotest.(check int) "route latency count" 3 lat.V1.s_count;
            Alcotest.(check bool) "prometheus dump mentions the counters" true
              (let substr hay needle =
                 let nl = String.length needle and hl = String.length hay in
                 let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
                 at 0
               in
               substr s.V1.prometheus "smallworld_server_accepted")
          end))

let test_server_stats_under_load () =
  with_daemon ~workers:4 (fun _t port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (match rpc fd (V1.envelope (sample_req "net" 12)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r));
      (* Route traffic on three connections while a fourth polls
         stats-server: every scrape must answer, and the counters must
         be monotone across scrapes. *)
      let stop_flag = Atomic.make false in
      let clients =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                let fd = connect port in
                Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
                    let n = ref 0 in
                    while not (Atomic.get stop_flag) do
                      (match rpc fd (V1.envelope (route_req "net" (i, 100 + i))) with
                      | V1.Routed _ -> incr n
                      | r -> check_code "route under load" E.Internal r)
                    done;
                    !n)))
      in
      let fd = connect port in
      let served =
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            List.init 10 (fun _ ->
                let s = get_stats (rpc fd (V1.envelope V1.Server_stats)) in
                counter_of s "server.served"))
      in
      Atomic.set stop_flag true;
      let routed = List.fold_left (fun acc d -> acc + Domain.join d) 0 clients in
      Alcotest.(check bool) "clients routed" true (routed > 0);
      Alcotest.(check int) "10 scrapes all answered" 10 (List.length served);
      Alcotest.(check bool) "served counter is monotone" true
        (fst
           (List.fold_left (fun (mono, prev) v -> (mono && v >= prev, v)) (true, 0) served)))

let recv_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let substr hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let test_admin_port () =
  with_daemon ~admin_port:0 (fun t port ->
      let admin =
        match Server.Daemon.admin_port t with
        | Some p -> p
        | None -> Alcotest.fail "admin_port configured but not bound"
      in
      Alcotest.(check bool) "admin port is its own listener" true (admin <> port);
      (* Load an instance over the main port first. *)
      let fd = connect port in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          match rpc fd (V1.envelope (sample_req "net" 13)) with
          | V1.Sampled _ -> ()
          | r -> check_code "sample" E.Internal r);
      (* HTTP: GET /stats returns the stats-server reply as JSON. *)
      let fd = connect admin in
      send_all fd "GET /stats HTTP/1.0\r\n\r\n";
      let body = recv_all fd in
      Unix.close fd;
      Alcotest.(check bool) "/stats is 200" true (substr body "HTTP/1.0 200 OK");
      Alcotest.(check bool) "/stats carries the op" true (substr body "stats-server");
      Alcotest.(check bool) "/stats carries counters" true (substr body "server.accepted");
      (* HTTP: GET /metrics returns the Prometheus text dump. *)
      let fd = connect admin in
      send_all fd "GET /metrics HTTP/1.0\r\n\r\n";
      let dump = recv_all fd in
      Unix.close fd;
      Alcotest.(check bool) "/metrics is 200" true (substr dump "HTTP/1.0 200 OK");
      if Obs.Metrics.enabled then begin
        Alcotest.(check bool) "/metrics has the accepted counter" true
          (substr dump "smallworld_server_accepted");
        Alcotest.(check bool) "/metrics has cumulative buckets" true
          (substr dump "_bucket{le=")
      end;
      (* HTTP: unknown path is a 404. *)
      let fd = connect admin in
      send_all fd "GET /nope HTTP/1.0\r\n\r\n";
      let nf = recv_all fd in
      Unix.close fd;
      Alcotest.(check bool) "404 on unknown path" true (substr nf "404");
      (* JSON: stats-server and health answer; compute ops are refused. *)
      let fd = connect admin in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let s = get_stats (rpc fd (V1.envelope ~id:9 V1.Server_stats)) in
          Alcotest.(check bool) "json stats over admin" true (s.V1.uptime_s >= 0.0);
          (match rpc fd (V1.envelope V1.Health) with
          | V1.Health_reply h ->
              Alcotest.(check (list string)) "health over admin" [ "net" ] h.V1.instances
          | r -> check_code "admin health" E.Internal r);
          check_code "compute refused on admin" E.Bad_request
            (rpc fd (V1.envelope (route_req "net" (0, 1)))));
      (* Admin traffic must not move the serving counters: only the one
         sample request above was accepted. *)
      let ex = Server.Daemon.exec t in
      Alcotest.(check int) "admin requests uncounted" 1 (Server.Exec.accepted ex))

let test_access_log_sampling_unit () =
  let path = Filename.temp_file "smallworld_access" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      let alog = Server.Access_log.create ~path ~sample:3 () in
      for req_id = 1 to 9 do
        Server.Access_log.log alog
          {
            Server.Access_log.req_id;
            client_id = (if req_id mod 2 = 0 then Some req_id else None);
            op = "route";
            instance = Some "net";
            outcome = "ok";
            t_unix = 1754650000.0;
            queue_s = 0.001;
            compute_s = 0.002;
            render_s = 0.0005;
            write_s = 0.0005;
          }
      done;
      Server.Access_log.close alog;
      let lines =
        In_channel.with_open_text path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      (* Deterministic 1-in-3: exactly req ids 3, 6, 9. *)
      Alcotest.(check int) "1-in-3 sampling" 3 (List.length lines);
      List.iteri
        (fun i line ->
          match Obs.Export.json_of_string line with
          | Error e -> Alcotest.failf "access line is not JSON: %s (%s)" line e
          | Ok j ->
              Alcotest.(check bool) "schema field" true
                (Obs.Export.member "schema" j
                = Some (Obs.Export.Str Server.Access_log.schema_version));
              Alcotest.(check bool) "req id" true
                (Obs.Export.member "req" j = Some (Obs.Export.Int ((i + 1) * 3)));
              Alcotest.(check bool) "op" true
                (Obs.Export.member "op" j = Some (Obs.Export.Str "route"));
              Alcotest.(check bool) "total_ms present" true
                (Obs.Export.member "total_ms" j <> None))
        lines)

let test_daemon_access_log () =
  let path = Filename.temp_file "smallworld_access" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      with_daemon ~access_log:path (fun _t port ->
          let fd = connect port in
          Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
              (match rpc fd (V1.envelope (sample_req "net" 14)) with
              | V1.Sampled _ -> ()
              | r -> check_code "sample" E.Internal r);
              (match rpc fd (V1.envelope ~id:77 (route_req "net" (1, 2))) with
              | V1.Routed _ -> ()
              | r -> check_code "route" E.Internal r);
              (* A parse failure must still be logged, as op=invalid. *)
              send_all fd "this is not json\n";
              match (ok (V1.reply_of_line (recv_line fd))).V1.response with
              | V1.Failed _ -> ()
              | _ -> Alcotest.fail "garbage line did not fail"));
      (* with_daemon drained and joined: the log is flushed and closed. *)
      let lines =
        In_channel.with_open_text path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per request" 3 (List.length lines);
      let ops =
        List.map
          (fun line ->
            match Obs.Export.json_of_string line with
            | Error e -> Alcotest.failf "bad access line %s (%s)" line e
            | Ok j -> (
                match Obs.Export.member "op" j with
                | Some (Obs.Export.Str op) -> op
                | _ -> Alcotest.failf "no op in %s" line))
          lines
      in
      Alcotest.(check (list string)) "ops in order" [ "sample"; "route"; "invalid" ] ops;
      List.iter
        (fun line ->
          match Obs.Export.json_of_string line with
          | Ok j ->
              Alcotest.(check bool) "schema pinned" true
                (Obs.Export.member "schema" j
                = Some (Obs.Export.Str "smallworld.access.v1"))
          | Error _ -> ())
        lines)

let test_manifest_on_request () =
  let path = Filename.temp_file "smallworld_manifest" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* Huge obs_interval: only request_manifest (the SIGHUP path) can
         produce the file before drain. *)
      with_daemon ~obs_out:path ~obs_interval:1e9 (fun t port ->
          let fd = connect port in
          Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
              match rpc fd (V1.envelope V1.Health) with
              | V1.Health_reply _ -> ()
              | r -> check_code "health" E.Internal r);
          Server.Daemon.request_manifest t;
          (* Poll for the counters, not bare existence: the file is
             visible from the moment the writer opens it, before the
             line lands. *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec wait () =
            let written =
              Sys.file_exists path
              && substr
                   (In_channel.with_open_text path In_channel.input_all)
                   "\"server.accepted\""
            in
            if written then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "request_manifest produced no manifest within 5s"
            else begin
              Unix.sleepf 0.05;
              wait ()
            end
          in
          wait ()))

let test_daemon_trace_roundtrip () =
  (* End to end through the distributed-trace plumbing: a client-traced
     request must leave exactly one server-side trace.v1 record that
     merges under the client's own span into a single tree whose
     critical path accounts for the wall time the client measured, and
     that both profile exporters accept.  The drain must also dump the
     flight-recorder ring to [events_out]. *)
  let trace_path = Filename.temp_file "smallworld_trace" ".jsonl" in
  let events_path = Filename.temp_file "smallworld_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove trace_path;
      Sys.remove events_path)
    (fun () ->
      let measured = ref 0.0 in
      let client_tree = ref None in
      with_daemon ~trace_out:trace_path ~events_out:events_path (fun _t port ->
          let fd = connect port in
          Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
              (match rpc fd (V1.envelope (sample_req "net" 21)) with
              | V1.Sampled _ -> ()
              | r -> check_code "sample" E.Internal r);
              let t0 = Unix.gettimeofday () in
              let response, tree =
                Obs.Span.probe ~name:"client.request" (fun () ->
                    rpc fd
                      (V1.envelope ~id:42
                         ~trace:{ V1.trace_id = "t-e2e"; parent_span = 1 }
                         (route_req "net" (1, 2))))
              in
              measured := Unix.gettimeofday () -. t0;
              client_tree := tree;
              match response with
              | V1.Routed reply ->
                  (* Tracing must not perturb the served bytes. *)
                  let expected =
                    ok
                      (Api.Render.route ~inst:(tiny_instance 21)
                         ~protocol:Greedy_routing.Protocol.Patch_dfs ~source:1 ~target:2 ())
                  in
                  Alcotest.(check string) "traced route text" expected.V1.text reply.V1.text
              | r -> check_code "traced route" E.Internal r));
      (* with_daemon drained and joined: both sinks are flushed and closed. *)
      let records, errs =
        In_channel.with_open_text trace_path Obs.Profile.read_channel
      in
      Alcotest.(check (list string)) "trace file fully decodable" [] errs;
      let event_lines =
        In_channel.with_open_text events_path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      if not Obs.Span.enabled then begin
        Alcotest.(check int) "no trace records under OBS=0" 0 (List.length records);
        Alcotest.(check int) "empty event dump under OBS=0" 0 (List.length event_lines)
      end
      else begin
        (* The untraced sample request must not have produced a record. *)
        let server_record =
          match records with
          | [ r ] -> r
          | rs -> Alcotest.failf "expected 1 trace record, got %d" (List.length rs)
        in
        Alcotest.(check string) "trace id adopted" "t-e2e" server_record.Obs.Profile.tr_trace;
        Alcotest.(check string) "origin" "server" server_record.Obs.Profile.tr_origin;
        Alcotest.(check bool) "server span id is a negated request id" true
          (server_record.Obs.Profile.tr_span < 0);
        Alcotest.(check bool) "hangs under the client's span" true
          (server_record.Obs.Profile.tr_parent = Some 1);
        Alcotest.(check string) "server root stage" "server.request"
          server_record.Obs.Profile.tr_root.Obs.Span.name;
        let client_root =
          match !client_tree with
          | Some s -> s
          | None -> Alcotest.fail "span probe returned no tree with obs on"
        in
        let client_record =
          { Obs.Profile.tr_trace = "t-e2e"; tr_span = 1; tr_parent = None;
            tr_origin = "test"; tr_t0 = 0.0; tr_root = client_root }
        in
        let merged =
          match Obs.Profile.merge (client_record :: records) with
          | Ok r -> r
          | Error e -> Alcotest.failf "merge failed: %s" e
        in
        let root = merged.Obs.Profile.tr_root in
        Alcotest.(check string) "merged root is the client span" "client.request"
          root.Obs.Span.name;
        Alcotest.(check bool) "server tree grafted under the client" true
          (List.exists
             (fun (c : Obs.Span.t) -> c.Obs.Span.name = "server.request")
             root.Obs.Span.children);
        (* The critical path telescopes to the root wall, which the
           probe measured around the same rpc we clocked by hand; allow
           10% plus a tiny absolute floor for very fast calls. *)
        let path = Obs.Profile.critical_path root in
        (match path with
        | { Obs.Profile.cp_name = "client.request"; _ } :: _ :: _ -> ()
        | _ -> Alcotest.fail "critical path must start at the client span and descend");
        let total = Obs.Profile.total path in
        Alcotest.(check bool)
          (Printf.sprintf "critical path total %.6fs within 10%% of measured %.6fs" total
             !measured)
          true
          (Float.abs (total -. !measured) <= (0.1 *. !measured) +. 1e-4);
        (* Both exporters must accept the merged end-to-end tree. *)
        List.iter
          (fun line ->
            match String.split_on_char ' ' line with
            | [ _; n ] when int_of_string_opt n <> None -> ()
            | _ -> Alcotest.failf "bad folded line: %s" line)
          (String.split_on_char '\n' (String.trim (Obs.Export.folded_stacks root)));
        (match Obs.Export.json_of_string (Obs.Export.chrome_trace root) with
        | Error e -> Alcotest.failf "chrome trace is not JSON: %s" e
        | Ok doc -> (
            match Obs.Export.member "traceEvents" doc with
            | Some (Obs.Export.Arr events) ->
                Alcotest.(check bool) "chrome events present" true (events <> []);
                let names =
                  List.filter_map
                    (fun e ->
                      match Obs.Export.member "name" e with
                      | Some (Obs.Export.Str s) -> Some s
                      | _ -> None)
                    events
                in
                Alcotest.(check bool) "client and server spans on one timeline" true
                  (List.mem "client.request" names && List.mem "server.request" names)
            | _ -> Alcotest.fail "chrome trace has no traceEvents array"));
        (* Per-request GC deltas landed in the stage-labelled histograms. *)
        (match Obs.Metrics.find_value Obs.Metrics.default "server.gc.compute.minor_words" with
        | Some (Obs.Metrics.Histogram_v snap) ->
            Alcotest.(check bool) "gc histogram populated" true (snap.Obs.Metrics.count >= 1)
        | _ -> Alcotest.fail "server.gc.compute.minor_words histogram missing");
        (* The drain dumped a decodable smallworld.events.v1 stream. *)
        Alcotest.(check bool) "event dump non-empty" true (event_lines <> []);
        List.iter
          (fun line ->
            match Obs.Export.json_of_string line with
            | Error e -> Alcotest.failf "event line is not JSON: %s (%s)" line e
            | Ok j -> (
                match Obs.Export.event_of_json j with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "event line does not decode: %s (%s)" line e))
          event_lines
      end)

let test_exec_tracing_unit () =
  Obs.Metrics.reset Obs.Metrics.default;
  let ex = Server.Exec.create ~registry_cap:2 ~max_batch:8 () in
  let id1 = Server.Exec.next_request_id ex in
  let id2 = Server.Exec.next_request_id ex in
  Alcotest.(check bool) "ids are monotone" true (id2 = id1 + 1);
  Alcotest.(check int) "idle inflight" 0 (Server.Exec.inflight ex);
  Server.Exec.begin_request ex;
  Server.Exec.begin_request ex;
  Alcotest.(check int) "two in flight" 2 (Server.Exec.inflight ex);
  Server.Exec.end_request ex;
  Alcotest.(check int) "one left" 1 (Server.Exec.inflight ex);
  Server.Exec.set_queue_depth_source ex (fun () -> 7);
  Server.Exec.observe_stages ex ~op:"route" ~compute:0.002 ~render:0.0001
    ~write:0.0001 ();
  let s = Server.Exec.server_stats ex in
  Alcotest.(check (float 0.0)) "queue depth from source" 7.0
    (List.assoc "server.queue_depth" s.V1.gauges);
  Alcotest.(check (float 0.0)) "inflight gauge" 1.0
    (List.assoc "server.inflight" s.V1.gauges);
  if Obs.Metrics.enabled then begin
    match List.find_opt (fun st -> st.V1.stage = "latency.route") s.V1.stages with
    | Some st ->
        Alcotest.(check int) "one observation" 1 st.V1.s_count;
        (* The single observation is 0.0022 s; the estimate must be
           within the histogram's 1/8 relative-error guarantee. *)
        Alcotest.(check bool) "p50 within 12.5% of the observation" true
          (Float.abs (st.V1.p50 -. 0.0022) <= 0.0022 /. 8.0)
    | None -> Alcotest.fail "latency.route stage missing"
  end
  else
    Alcotest.(check bool) "stages silent under OBS=0" true
      (List.for_all (fun st -> st.V1.s_count = 0) s.V1.stages)

let suite =
  [
    Alcotest.test_case "registry LRU eviction" `Quick test_registry_lru;
    Alcotest.test_case "registry pinning" `Quick test_registry_pinning;
    Alcotest.test_case "registry replace keeps old alive" `Quick
      test_registry_replace_keeps_old_alive;
    Alcotest.test_case "registry orphan gauge" `Quick test_registry_orphaned;
    Alcotest.test_case "registry generations are monotone" `Quick
      test_registry_generation;
    Alcotest.test_case "exec deadlines, limits, counters" `Quick test_exec_deadline_and_limits;
    Alcotest.test_case "exec out-of-core ops (spill, merge, snapshot)" `Quick
      test_exec_out_of_core;
    Alcotest.test_case "daemon serves byte-identical routes" `Quick
      test_daemon_route_byte_identity;
    Alcotest.test_case "batch replies invariant under jobs 1/2/4" `Quick
      test_daemon_batch_jobs_invariance;
    Alcotest.test_case "8 concurrent clients" `Quick test_daemon_concurrent_clients;
    Alcotest.test_case "deadline and batch-limit refusals" `Quick
      test_daemon_deadline_and_batch_limit;
    Alcotest.test_case "burst beyond queue capacity is refused" `Quick
      test_daemon_burst_overload;
    Alcotest.test_case "drain completes in-flight work" `Quick
      test_daemon_drain_completes_in_flight;
    Alcotest.test_case "binary codec end to end, mixed with JSON" `Quick
      test_daemon_binary_codec;
    Alcotest.test_case "binary partial frames over TCP" `Quick
      test_daemon_binary_partial_frames;
    Alcotest.test_case "negative frame length refused, daemon survives" `Quick
      test_daemon_binary_negative_length;
    Alcotest.test_case "oversized frame refused, connection survives" `Quick
      test_daemon_binary_oversized;
    Alcotest.test_case "json-only refuses binary framing" `Quick
      test_daemon_json_only;
    Alcotest.test_case "binary wrong version byte is refused structurally" `Quick
      test_daemon_binary_bad_version;
    Alcotest.test_case "mutate and churn end to end over the wire" `Quick
      test_daemon_mutate_churn;
    Alcotest.test_case "route cache: hits, invalidation, generations" `Quick
      test_exec_route_cache;
    Alcotest.test_case "route cache single-flight coalescing" `Quick
      test_cache_single_flight;
    Alcotest.test_case "route cache cache_if gates the store" `Quick
      test_cache_if_gates_store;
    Alcotest.test_case "mutate invalidates cached routes" `Quick
      test_exec_mutate_invalidates_cache;
    Alcotest.test_case "mutate vs single-flight race" `Quick
      test_mutate_single_flight_race;
    Alcotest.test_case "exec request tracing" `Quick test_exec_tracing_unit;
    Alcotest.test_case "stats-server over TCP" `Quick test_server_stats_over_tcp;
    Alcotest.test_case "stats-server under concurrent load" `Quick
      test_server_stats_under_load;
    Alcotest.test_case "admin port: HTTP scrape + restricted JSON" `Quick
      test_admin_port;
    Alcotest.test_case "access log sampling is deterministic" `Quick
      test_access_log_sampling_unit;
    Alcotest.test_case "daemon writes the access log" `Quick test_daemon_access_log;
    Alcotest.test_case "request_manifest writes mid-run" `Quick
      test_manifest_on_request;
    Alcotest.test_case "end-to-end distributed trace" `Quick
      test_daemon_trace_roundtrip;
  ]
