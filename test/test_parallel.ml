(* The multicore execution layer: Pool combinator semantics, and the
   determinism contract — GIRG edge arrays, HRG graphs, route batches
   and whole experiment tables must be bit-identical for any job count
   at a fixed seed (DESIGN.md "Parallel execution"). *)

module Pool = Parallel.Pool

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let with_global_jobs jobs f =
  Fun.protect ~finally:(fun () -> Parallel.Global.set_jobs 1)
    (fun () -> Parallel.Global.set_jobs jobs; f ())

(* ------------------------------------------------------------------ *)
(* Pool sanity *)

let test_map_matches_sequential () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let got = Pool.map pool ~n:97 (fun i -> (i * i) - 3) in
          let want = Array.init 97 (fun i -> (i * i) - 3) in
          Alcotest.(check (array int))
            (Printf.sprintf "map jobs=%d" jobs) want got))
    [ 1; 2; 4 ]

let test_parallel_for_covers_range () =
  with_pool 4 (fun pool ->
      let hits = Array.make 100 0 in
      (* Disjoint chunks: each index is written by exactly one task. *)
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int)) "each index once" (Array.make 100 1) hits;
      let sum = Atomic.make 0 in
      Pool.parallel_for pool ~chunk_size:3 ~lo:10 ~hi:55 (fun i ->
          ignore (Atomic.fetch_and_add sum i));
      Alcotest.(check int) "sum 10..54" (45 * (10 + 54) / 2) (Atomic.get sum))

let test_empty_and_tiny_ranges () =
  with_pool 4 (fun pool ->
      Pool.run pool ~n:0 (fun _ -> Alcotest.fail "body called on n=0");
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "body on empty range");
      Alcotest.(check (array int)) "map n=0" [||] (Pool.map pool ~n:0 (fun i -> i)))

let test_more_jobs_than_work () =
  (* Workers starve but every index still runs exactly once. *)
  with_pool 8 (fun pool ->
      let got = Pool.map pool ~n:3 (fun i -> 10 * i) in
      Alcotest.(check (array int)) "3 items on 8 jobs" [| 0; 10; 20 |] got)

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "raise reaches submitter (jobs=%d)" jobs)
            (Failure "boom-42")
            (fun () ->
              Pool.run pool ~n:64 (fun i -> if i = 42 then failwith "boom-42"));
          (* The pool survives a failed batch. *)
          Alcotest.(check (array int)) "pool usable after failure"
            [| 0; 1; 2; 3 |]
            (Pool.map pool ~n:4 (fun i -> i))))
    [ 1; 4 ]

let test_nested_submission_runs_inline () =
  with_pool 2 (fun pool ->
      let got =
        Pool.map pool ~n:6 (fun i ->
            (* Re-entering the pool from a task must not deadlock. *)
            Pool.map_reduce pool ~n:4 ~map:(fun j -> i + j) ~reduce:( + ) ~init:0)
      in
      let want = Array.init 6 (fun i -> (4 * i) + 6) in
      Alcotest.(check (array int)) "nested map_reduce" want got)

let test_map_reduce_order () =
  (* Non-commutative reduce: result must follow index order, not
     completion order. *)
  with_pool 4 (fun pool ->
      let s =
        Pool.map_reduce pool ~n:26
          ~map:(fun i -> String.make 1 (Char.chr (Char.code 'a' + i)))
          ~reduce:( ^ ) ~init:""
      in
      Alcotest.(check string) "concat in index order" "abcdefghijklmnopqrstuvwxyz" s)

let test_resolve_jobs () =
  Alcotest.(check int) "explicit wins" 3 (Pool.resolve_jobs ~jobs:3 ());
  Alcotest.(check bool) "0 = recommended >= 1" true (Pool.resolve_jobs ~jobs:0 () >= 1);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool.resolve_jobs: bad job count -1") (fun () ->
      ignore (Pool.create ~jobs:(-1) ()))

(* ------------------------------------------------------------------ *)
(* Determinism across job counts *)

let girg_edges ~jobs =
  let params =
    Girg.Params.make ~dim:2 ~beta:2.5 ~alpha:(Girg.Params.Finite 2.0) ~n:2000
      ~poisson_count:false ()
  in
  let rng = Prng.Rng.create ~seed:97 in
  let count = 2000 in
  let weights = Girg.Instance.sample_weights ~rng ~params ~count in
  let positions = Girg.Instance.sample_positions ~rng ~params ~count in
  let kernel = Girg.Kernel.girg params in
  let rng_edges = Prng.Rng.create ~seed:11 in
  with_pool jobs (fun pool ->
      let edges = Girg.Cell.sample_edges ~pool ~rng:rng_edges ~kernel ~weights ~positions () in
      (* The caller's rng must advance identically for every job count. *)
      (edges, Prng.Rng.bits64 rng_edges))

let test_girg_edges_bit_identical () =
  let reference, rng_after = girg_edges ~jobs:1 in
  Alcotest.(check bool) "sampler produced edges" true (Array.length reference > 1000);
  List.iter
    (fun jobs ->
      let edges, rng_after' = girg_edges ~jobs in
      Alcotest.(check bool)
        (Printf.sprintf "edge array identical, jobs=%d" jobs)
        true
        (edges = reference);
      Alcotest.(check int64)
        (Printf.sprintf "caller rng state identical, jobs=%d" jobs)
        rng_after rng_after')
    [ 2; 4 ]

let adjacency g =
  Array.init (Sparse_graph.Graph.n g) (fun v -> Sparse_graph.Graph.neighbors g v)

let test_hrg_graph_bit_identical () =
  (* HRG kernels have a finite weight_cap, so this also pins the capped
     exhaustive-test task stream; generation goes through the shared
     global pool, exercising the Global.set_jobs path. *)
  let gen jobs =
    with_global_jobs jobs (fun () ->
        let p = Hyperbolic.Hrg.make ~alpha_h:0.75 ~radius_c:(-1.0) ~n:1500 () in
        Hyperbolic.Hrg.generate ~sampler:Hyperbolic.Hrg.Use_cell
          ~rng:(Prng.Rng.create ~seed:5) p)
  in
  let reference = gen 1 in
  List.iter
    (fun jobs ->
      let h = gen jobs in
      Alcotest.(check int)
        (Printf.sprintf "edge count, jobs=%d" jobs)
        (Sparse_graph.Graph.m reference.Hyperbolic.Hrg.graph)
        (Sparse_graph.Graph.m h.Hyperbolic.Hrg.graph);
      Alcotest.(check bool)
        (Printf.sprintf "adjacency identical, jobs=%d" jobs)
        true
        (adjacency h.Hyperbolic.Hrg.graph = adjacency reference.Hyperbolic.Hrg.graph))
    [ 2; 4 ]

let route_batch ~jobs =
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.3 ~n:800 ~poisson_count:false () in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:21) params in
  let rng = Prng.Rng.create ~seed:33 in
  let pairs = Experiments.Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:120 in
  with_pool jobs (fun pool ->
      Experiments.Workload.run ~pool ~graph:inst.graph
        ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
        ~protocol:Greedy_routing.Protocol.Patch_dfs ~with_stretch:true ~pairs ())

let test_route_batch_bit_identical () =
  let reference = route_batch ~jobs:1 in
  Alcotest.(check bool) "batch delivered something" true (reference.delivered > 0);
  List.iter
    (fun jobs ->
      let r = route_batch ~jobs in
      Alcotest.(check bool)
        (Printf.sprintf "results record identical, jobs=%d" jobs)
        true (r = reference))
    [ 2; 4 ]

let test_experiment_tables_identical () =
  (* End-to-end: a full registry experiment (generation + route batches
     + table assembly) rendered to CSV under the global pool. *)
  let e =
    match Experiments.Registry.find "E15" with
    | Some e -> e
    | None -> Alcotest.fail "experiment E15 missing"
  in
  let tables jobs =
    with_global_jobs jobs (fun () ->
        let ctx = Experiments.Context.make ~seed:7 ~scale:Experiments.Context.Quick () in
        List.map Stats.Table.to_csv (e.run ctx))
  in
  let reference = tables 1 in
  Alcotest.(check bool) "experiment produced tables" true (reference <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "tables identical, jobs=%d" jobs)
        reference (tables jobs))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "pool: map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "pool: parallel_for covers range" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "pool: empty ranges" `Quick test_empty_and_tiny_ranges;
    Alcotest.test_case "pool: more jobs than work" `Quick test_more_jobs_than_work;
    Alcotest.test_case "pool: exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "pool: nested submission inline" `Quick test_nested_submission_runs_inline;
    Alcotest.test_case "pool: map_reduce index order" `Quick test_map_reduce_order;
    Alcotest.test_case "pool: resolve_jobs" `Quick test_resolve_jobs;
    Alcotest.test_case "determinism: girg edges jobs=1/2/4" `Quick test_girg_edges_bit_identical;
    Alcotest.test_case "determinism: hrg graph jobs=1/2/4" `Quick test_hrg_graph_bit_identical;
    Alcotest.test_case "determinism: route batch jobs=1/2/4" `Quick test_route_batch_bit_identical;
    Alcotest.test_case "determinism: experiment tables jobs=1/2/4" `Quick
      test_experiment_tables_identical;
  ]
