open Experiments

let test_ids_unique_and_ordered () =
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check int) "eighteen experiments" 18 (List.length ids);
  Alcotest.(check (list string)) "expected ids"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18" ]
    ids

let test_find () =
  Alcotest.(check bool) "finds E3" true (Registry.find "E3" <> None);
  Alcotest.(check bool) "case insensitive" true (Registry.find "e7" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "E99" = None)

let test_claims_nonempty () =
  List.iter
    (fun e ->
      if String.length e.Registry.claim < 30 then
        Alcotest.failf "%s claim too short" e.Registry.id;
      if String.length e.Registry.title < 10 then
        Alcotest.failf "%s title too short" e.Registry.id)
    Registry.all

(* Smoke-run every experiment at Quick scale: tables must render, have a
   header, and at least one data row.  This doubles as an integration test
   of generators + protocols + workloads end to end. *)
let smoke_run e () =
  let ctx = Context.make ~seed:7 ~scale:Context.Quick () in
  let tables = e.Registry.run ctx in
  Alcotest.(check bool) "at least one table" true (tables <> []);
  List.iter
    (fun t ->
      Alcotest.(check bool) "has columns" true (Stats.Table.columns t <> []);
      Alcotest.(check bool) "has rows" true (Stats.Table.rows t <> []);
      let rendered = Stats.Table.render t in
      Alcotest.(check bool) "renders" true (String.length rendered > 0);
      let csv = Stats.Table.to_csv t in
      Alcotest.(check bool) "csv" true (String.length csv > 0))
    tables

let test_run_and_render () =
  match Registry.find "E4" with
  | None -> Alcotest.fail "E4 missing"
  | Some e ->
      let ctx = Context.make ~seed:7 ~scale:Context.Quick () in
      let s = Registry.run_and_render e ctx in
      Alcotest.(check bool) "mentions id" true
        (String.length s > 0 && String.sub s 0 7 = "---- E4")

let test_context_pick_and_rng () =
  let q = Context.make ~scale:Context.Quick () in
  let s = Context.make ~scale:Context.Standard () in
  Alcotest.(check int) "quick" 1 (Context.pick q ~quick:1 ~standard:2);
  Alcotest.(check int) "standard" 2 (Context.pick s ~quick:1 ~standard:2);
  let a = Context.rng q ~salt:5 and b = Context.rng q ~salt:5 in
  Alcotest.(check int64) "same salt same stream" (Prng.Rng.bits64 a) (Prng.Rng.bits64 b);
  let c = Context.rng q ~salt:6 in
  Alcotest.(check bool) "different salt differs" true
    (Prng.Rng.bits64 (Context.rng q ~salt:5) <> Prng.Rng.bits64 c)

let suite =
  [
    Alcotest.test_case "ids unique and ordered" `Quick test_ids_unique_and_ordered;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "claims nonempty" `Quick test_claims_nonempty;
    Alcotest.test_case "run_and_render" `Quick test_run_and_render;
    Alcotest.test_case "context pick/rng" `Quick test_context_pick_and_rng;
  ]
  @ List.map
      (fun e ->
        Alcotest.test_case (Printf.sprintf "smoke %s" e.Registry.id) `Slow (smoke_run e))
      Registry.all
