(* The v1 API contract: both codecs (JSON wire form and argument
   vectors) round-trip every request and reply shape exactly, the
   deprecation shims parse, unknown flags suggest the canonical
   spelling, and the error taxonomy's code strings / exit codes are
   pinned (CI and clients depend on them). *)

module V1 = Api.V1
module E = Api.Error

let envelope_t : V1.envelope Alcotest.testable =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (V1.request_line e))
    ( = )

let reply_t : V1.reply Alcotest.testable =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (V1.reply_line r))
    ( = )

let ok ?(what = "result") = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (E.to_string e)

let err ?(what = "result") = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error (e : E.t) -> e

(* One envelope per request shape, with enough non-default fields to
   catch a codec that drops or reorders anything. *)
let sample_envelopes =
  let girg =
    Girg.Params.make ~dim:3 ~beta:2.25 ~w_min:0.75 ~alpha:(Girg.Params.Finite 1.5)
      ~c:0.3 ~poisson_count:false ~n:1234 ()
  in
  let girg_inf =
    Girg.Params.make ~alpha:Girg.Params.Infinite ~c:1.0 ~n:500 ()
  in
  let hrg = Hyperbolic.Hrg.make ~alpha_h:0.8 ~radius_c:(-0.5) ~temperature:0.3 ~n:777 () in
  let kle = Kleinberg.Lattice.make ~long_range:2 ~exponent:1.5 ~side:17 () in
  [
    V1.envelope (V1.Load { name = "net"; path = "/tmp/net.girg" });
    V1.envelope ~id:7 (V1.Sample { name = "g"; model = V1.Girg girg; seed = 9 });
    V1.envelope (V1.Sample { name = "gi"; model = V1.Girg girg_inf; seed = 42 });
    V1.envelope (V1.Sample { name = "h"; model = V1.Hrg hrg; seed = 1 });
    V1.envelope (V1.Sample { name = "k"; model = V1.Kleinberg kle; seed = 3 });
    V1.envelope ~id:1 ~deadline_ms:250
      (V1.Route
         {
           instance = "net";
           source = 4;
           target = 93;
           protocol = Greedy_routing.Protocol.Patch_dfs;
           max_steps = Some 1000;
         });
    V1.envelope
      (V1.Route
         {
           instance = "net";
           source = 0;
           target = 1;
           protocol = Greedy_routing.Protocol.Greedy;
           max_steps = None;
         });
    V1.envelope
      (V1.Route_batch
         {
           instance = "net";
           pairs = V1.Pairs [ (1, 2); (3, 4); (5, 6) ];
           protocol = Greedy_routing.Protocol.Patch_history;
           max_steps = None;
         });
    V1.envelope ~deadline_ms:5000
      (V1.Route_batch
         {
           instance = "net";
           pairs = V1.Drawn { count = 64; pair_seed = 11; pool = V1.Giant };
           protocol = Greedy_routing.Protocol.Gravity_pressure;
           max_steps = Some 50_000;
         });
    V1.envelope
      (V1.Route_batch
         {
           instance = "net";
           pairs = V1.Drawn { count = 8; pair_seed = 0; pool = V1.Any };
           protocol = Greedy_routing.Protocol.Greedy;
           max_steps = None;
         });
    (* Trace contexts ride in the envelope; both spellings (explicit
       parent span and the 0 default) must survive the codecs. *)
    V1.envelope ~id:12 ~trace:{ V1.trace_id = "cli-1f2e"; parent_span = 1 }
      (V1.Route
         {
           instance = "net";
           source = 2;
           target = 7;
           protocol = Greedy_routing.Protocol.Greedy;
           max_steps = None;
         });
    V1.envelope ~deadline_ms:100
      ~trace:{ V1.trace_id = "batch-trace"; parent_span = 0 }
      (V1.Route_batch
         {
           instance = "net";
           pairs = V1.Pairs [ (9, 10) ];
           protocol = Greedy_routing.Protocol.Greedy;
           max_steps = None;
         });
    V1.envelope (V1.Stats { instance = "net" });
    (* Out-of-core ops: spill one shard, merge a spill set, re-encode
       as a binary snapshot. *)
    V1.envelope ~id:21
      (V1.Gen_shard
         { params = girg; seed = 9; shards = 4; shard = 2; out = "/tmp/s2.spill" });
    V1.envelope
      (V1.Gen_shard
         { params = girg_inf; seed = 42; shards = 1; shard = 0; out = "s.spill" });
    V1.envelope
      (V1.Merge_shards
         { name = "big"; spills = [ "/tmp/s0.spill"; "/tmp/s1.spill"; "/tmp/s2.spill" ] });
    V1.envelope ~id:22 (V1.Snapshot { instance = "net"; out = "/tmp/net.bin" });
    (* Live-graph ops: a mutation script and a churn scenario. *)
    V1.envelope ~id:30
      (V1.Mutate
         {
           instance = "net";
           ops =
             [
               Girg.Mutate.Leave 5;
               Girg.Mutate.Drop (3, 7);
               Girg.Mutate.Resample 2;
               Girg.Mutate.Rejoin 1;
             ];
           seed = 13;
         });
    V1.envelope (V1.Mutate { instance = "net"; ops = [ Girg.Mutate.Leave 0 ]; seed = 42 });
    V1.envelope ~id:31
      (V1.Churn
         {
           instance = "net";
           config =
             {
               Experiments.Churn.scenario = Experiments.Churn.Adversarial;
               epochs = 2;
               events = 9;
               quit = 0.25;
               seed = 7;
               count = 40;
               pair_seed = 3;
               protocol = Greedy_routing.Protocol.Patch_dfs;
               max_steps = Some 500;
             };
         });
    V1.envelope
      (V1.Churn
         {
           instance = "net";
           config =
             {
               Experiments.Churn.scenario = Experiments.Churn.Milgram;
               epochs = 3;
               events = 16;
               quit = 0.0;
               seed = 42;
               count = 200;
               pair_seed = 0;
               protocol = Greedy_routing.Protocol.Greedy;
               max_steps = None;
             };
         });
    V1.envelope ~id:99 V1.Health;
    V1.envelope ~id:5 V1.Server_stats;
    V1.envelope V1.Drain;
  ]

let test_json_round_trip () =
  List.iter
    (fun e ->
      let line = V1.request_line e in
      let e' = ok ~what:line (V1.envelope_of_line line) in
      Alcotest.check envelope_t line e e')
    sample_envelopes

let test_args_round_trip () =
  let execs =
    [
      V1.no_exec;
      {
        V1.output = Some "/tmp/out.girg";
        obs_out = Some "/tmp/manifest.jsonl";
        events_out = Some "/tmp/events.jsonl";
        trace_out = Some "/tmp/trace.jsonl";
        jobs = Some 4;
      };
    ]
  in
  List.iter
    (fun exec ->
      List.iter
        (fun e ->
          (* [sample] falls back to --output for the name only when
             --name is absent; to_args always emits --name, so the
             round-trip is exact for every exec_opts. *)
          let args = V1.to_args ~exec e in
          let what = String.concat " " args in
          let e', exec' = ok ~what (V1.of_args args) in
          Alcotest.check envelope_t what e e';
          Alcotest.(check bool) (what ^ " exec") true (exec = exec'))
        sample_envelopes)
    execs

let sample_replies =
  let info =
    { V1.name = "net"; params = "girg(n=100)"; vertices = 100; edges = 321 }
  in
  let route =
    {
      V1.source = 4;
      target = 93;
      status = Greedy_routing.Outcome.Delivered;
      steps = 7;
      visited = 8;
      shortest = Some 5;
      text = "greedy: delivered\nwalk: 4 -> 93\nshortest path: 5\n";
    }
  in
  let failed_route =
    { route with status = Greedy_routing.Outcome.Dead_end; shortest = None; text = "x\n" }
  in
  [
    { V1.reply_id = Some 7; response = V1.Loaded info };
    { V1.reply_id = None; response = V1.Sampled info };
    { V1.reply_id = Some 1; response = V1.Routed route };
    { V1.reply_id = None; response = V1.Routed_batch [ route; failed_route ] };
    { V1.reply_id = None; response = V1.Routed_batch [] };
    {
      V1.reply_id = None;
      response =
        V1.Stats_reply
          {
            V1.params = "girg(n=100)";
            vertices = 100;
            edges = 321;
            avg_degree = 6.42;
            max_degree = 17;
            components = 3;
            giant = 88;
          };
    };
    {
      V1.reply_id = Some 2;
      response =
        V1.Health_reply
          {
            V1.draining = false;
            instances = [ "a"; "b" ];
            counters = [ ("server.accepted", 10); ("server.served", 9) ];
          };
    };
    {
      V1.reply_id = Some 5;
      response =
        V1.Server_stats_reply
          {
            V1.uptime_s = 12.5;
            s_draining = false;
            obs_live = true;
            s_counters = [ ("server.accepted", 10); ("server.served", 9) ];
            gauges = [ ("server.queue_depth", 2.0); ("server.inflight", 1.0) ];
            stages =
              [
                {
                  V1.stage = "stage.compute";
                  s_count = 9;
                  p50 = 0.001;
                  p90 = 0.0025;
                  p99 = 0.005;
                  p999 = 0.005;
                  s_max = 0.00475;
                };
                {
                  V1.stage = "latency.route";
                  s_count = 4;
                  p50 = 0.002;
                  p90 = 0.002;
                  p99 = 0.002;
                  p999 = 0.002;
                  s_max = 0.002;
                };
              ];
            prometheus = "# TYPE smallworld_server_accepted counter\n";
          };
    };
    {
      V1.reply_id = Some 21;
      response =
        V1.Spilled
          {
            V1.sp_path = "/tmp/s2.spill";
            sp_shard = 2;
            sp_shards = 4;
            sp_vertices = 1234;
            sp_edges = 999;
          };
    };
    { V1.reply_id = None; response = V1.Merged info };
    {
      V1.reply_id = Some 22;
      response =
        V1.Snapshotted
          { V1.sn_path = "/tmp/net.bin"; sn_bytes = 123_456; sn_vertices = 100; sn_edges = 321 };
    };
    {
      V1.reply_id = Some 30;
      response =
        V1.Mutated
          {
            V1.mu_name = "net";
            mu_epoch = 3;
            mu_generation = 4;
            mu_live = 1995;
            mu_vertices = 2000;
            mu_edges = 10_412;
            mu_applied = 4;
          };
    };
    {
      V1.reply_id = Some 31;
      response =
        V1.Churned
          {
            V1.ch_name = "net";
            ch_scenario = Experiments.Churn.Adversarial;
            ch_generation = 6;
            ch_rows =
              [
                {
                  Experiments.Churn.epoch = 0;
                  live = 2000;
                  edges = 10_412;
                  attempted = 40;
                  delivered = 38;
                  mean_steps = 5.25;
                  mean_stretch = 1.5;
                };
                {
                  Experiments.Churn.epoch = 1;
                  live = 1991;
                  edges = 10_007;
                  attempted = 40;
                  delivered = 31;
                  mean_steps = 6.0;
                  mean_stretch = 1.75;
                };
              ];
          };
    };
    { V1.reply_id = None; response = V1.Drain_ack };
    {
      V1.reply_id = Some 3;
      response = V1.Failed (E.make E.Overloaded "queue full");
    };
    { V1.reply_id = None; response = V1.Failed (E.make E.Unknown_instance "no %S" "x") };
  ]

let test_reply_round_trip () =
  List.iter
    (fun r ->
      let line = V1.reply_line r in
      let r' = ok ~what:line (V1.reply_of_line line) in
      Alcotest.check reply_t line r r')
    sample_replies

(* The pre-v1 CLI spellings must keep parsing to the same requests as
   their canonical replacements. *)
let test_deprecated_shims () =
  let parse args = ok ~what:(String.concat " " args) (V1.of_args args) in
  let canonical, _ =
    parse
      [ "sample"; "girg"; "--n"; "2000"; "--c"; "0.25"; "--name"; "net";
        "--seed"; "7" ]
  in
  let shimmed, exec =
    parse [ "gen"; "girg"; "-n"; "2000"; "-c"; "0.25"; "--name"; "net"; "--seed"; "7"; "-o"; "f.girg"; "-j"; "2" ]
  in
  Alcotest.check envelope_t "gen girg -n -c" canonical shimmed;
  Alcotest.(check (option string)) "-o shim" (Some "f.girg") exec.V1.output;
  Alcotest.(check (option int)) "-j shim" (Some 2) exec.V1.jobs;
  let route_canonical, _ =
    parse [ "route"; "net.girg"; "--source"; "4"; "--target"; "93"; "--protocol"; "phi-dfs" ]
  in
  let route_shimmed, _ =
    parse [ "route"; "net.girg"; "-s"; "4"; "-t"; "93"; "--protocol"; "dfs" ]
  in
  Alcotest.check envelope_t "route -s -t + dfs alias" route_canonical route_shimmed;
  (match route_canonical.V1.request with
  | V1.Route { instance; source; target; protocol; _ } ->
      Alcotest.(check string) "positional instance" "net.girg" instance;
      Alcotest.(check int) "source" 4 source;
      Alcotest.(check int) "target" 93 target;
      Alcotest.(check bool) "protocol" true (protocol = Greedy_routing.Protocol.Patch_dfs)
  | _ -> Alcotest.fail "expected a route request");
  let batch, _ = parse [ "route_batch"; "net"; "--count"; "5"; "--pool"; "any" ] in
  match batch.V1.request with
  | V1.Route_batch { pairs = V1.Drawn { count = 5; pair_seed = 0; pool = V1.Any }; _ } -> ()
  | _ -> Alcotest.fail "route_batch alias did not parse to sampled pairs"

let test_unknown_flag_suggestion () =
  let e = err (V1.of_args [ "route"; "net"; "--sorce"; "4"; "--target"; "9" ]) in
  Alcotest.(check bool) "code" true (e.E.code = E.Bad_request);
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names the bad flag" true (contains e.E.message "--sorce");
  Alcotest.(check bool) "suggests --source" true (contains e.E.message "\"--source\"")

let test_arg_errors () =
  let code args =
    (err ~what:(String.concat " " args) (V1.of_args args)).E.code
  in
  Alcotest.(check bool) "missing op" true (code [] = E.Bad_request);
  Alcotest.(check bool) "unknown op" true (code [ "frobnicate" ] = E.Bad_request);
  Alcotest.(check bool) "sample w/o model" true (code [ "sample" ] = E.Bad_request);
  Alcotest.(check bool) "route w/o target" true (code [ "route"; "net"; "-s"; "1" ] = E.Bad_request);
  Alcotest.(check bool) "bad int" true
    (code [ "route"; "net"; "-s"; "one"; "-t"; "2" ] = E.Bad_request);
  Alcotest.(check bool) "pairs+count" true
    (code [ "route-batch"; "net"; "--pairs"; "1:2"; "--count"; "3" ] = E.Bad_request);
  Alcotest.(check bool) "girg validation" true
    (code [ "sample"; "girg"; "--beta"; "5"; "--name"; "x" ] = E.Bad_request)

(* The code strings and exit statuses are the wire/CI contract. *)
let test_error_taxonomy () =
  let expect =
    [
      (E.Bad_request, "bad-request", 2);
      (E.Unsupported_version, "unsupported-version", 2);
      (E.Unknown_instance, "unknown-instance", 2);
      (E.Overloaded, "overloaded", 75);
      (E.Deadline, "deadline", 75);
      (E.Draining, "draining", 75);
      (E.Io, "io", 2);
      (E.Usage, "usage", 2);
      (E.Incomparable, "incomparable", 2);
      (E.Regression, "perf-regression", 1);
      (E.Internal, "internal", 70);
    ]
  in
  List.iter
    (fun (c, s, x) ->
      Alcotest.(check string) "code string" s (E.code_string c);
      Alcotest.(check int) ("exit of " ^ s) x (E.exit_code c);
      let e = E.make c "boom %d" 7 in
      Alcotest.(check string) "render" (Printf.sprintf "error [%s] boom 7" s) (E.to_string e);
      match E.of_json (E.to_json e) with
      | Ok e' -> Alcotest.(check bool) "json round-trip" true (e = e')
      | Error m -> Alcotest.failf "error json round-trip: %s" m)
    expect

(* Envelope versioning is first-class: a request carrying a "v" we do
   not speak gets a structured error naming the supported range, not a
   generic parse failure.  The message text is part of the contract. *)
let test_unsupported_version () =
  let e =
    err ~what:"v2 envelope" (V1.envelope_of_line {|{"v":2,"op":"health"}|})
  in
  Alcotest.(check bool) "code" true (e.E.code = E.Unsupported_version);
  Alcotest.(check string) "message names the supported range"
    "unsupported API version 2 (this server speaks v1 only)" e.E.message;
  let e = err ~what:"v0 envelope" (V1.envelope_of_line {|{"v":0,"op":"health"}|}) in
  Alcotest.(check bool) "v0 also refused" true (e.E.code = E.Unsupported_version);
  let e = err ~what:"missing v" (V1.envelope_of_line {|{"op":"health"}|}) in
  Alcotest.(check bool) "missing v is bad-request" true (e.E.code = E.Bad_request);
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "missing v names the field" true
    (contains e.E.message "\"v\"");
  let e = err ~what:"string v" (V1.envelope_of_line {|{"v":"one","op":"health"}|}) in
  Alcotest.(check bool) "non-integer v is bad-request" true (e.E.code = E.Bad_request)

(* Churn rows from an epoch with zero deliveries carry NaN means; on
   the wire those become JSON null and must come back as NaN (generic
   equality can't see this — nan <> nan). *)
let test_churn_nan_round_trip () =
  let reply =
    {
      V1.reply_id = Some 7;
      response =
        V1.Churned
          {
            V1.ch_name = "net";
            ch_scenario = Experiments.Churn.Milgram;
            ch_generation = 2;
            ch_rows =
              [
                {
                  Experiments.Churn.epoch = 1;
                  live = 100;
                  edges = 400;
                  attempted = 10;
                  delivered = 0;
                  mean_steps = Float.nan;
                  mean_stretch = Float.nan;
                };
              ];
          };
    }
  in
  let check_round what r =
    match r with
    | V1.Churned { V1.ch_rows = [ row ]; _ } ->
        Alcotest.(check bool) (what ^ ": steps nan") true
          (Float.is_nan row.Experiments.Churn.mean_steps);
        Alcotest.(check bool) (what ^ ": stretch nan") true
          (Float.is_nan row.Experiments.Churn.mean_stretch)
    | _ -> Alcotest.fail (what ^ ": reply shape changed in flight")
  in
  let line = V1.reply_line reply in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "nan encodes as null" true (contains line "null");
  (match V1.reply_of_line line with
  | Ok r -> check_round "json" r.V1.response
  | Error e -> Alcotest.failf "json round-trip: %s" (E.to_string e));
  let frame = Api.Binary.reply_frame reply in
  match Api.Binary.parse frame ~pos:0 ~len:(String.length frame) with
  | Api.Binary.Frame { payload; _ } -> (
      match Api.Binary.reply_of_payload payload with
      | Ok r -> check_round "binary" r.V1.response
      | Error e -> Alcotest.failf "binary round-trip: %s" (E.to_string e))
  | _ -> Alcotest.fail "binary framing failed"

let test_float_arg () =
  let cases = [ 0.25; 2.5; 1.0; 0.1; 3.0; 1e-9; 123456.789; -0.75; Float.pi ] in
  List.iter
    (fun f ->
      let s = V1.float_arg f in
      Alcotest.(check (float 0.0)) ("float_arg " ^ s) f (float_of_string s))
    cases

(* --- binary codec ------------------------------------------------------ *)

module B = Api.Binary
module J = Obs.Export

let parse_one ?max_len bytes =
  match B.parse ?max_len bytes ~pos:0 ~len:(String.length bytes) with
  | B.Frame { payload; consumed } -> (payload, consumed)
  | B.Need -> Alcotest.fail "parser wants more bytes of a complete frame"
  | B.Oversized _ -> Alcotest.fail "unexpected oversized verdict"
  | B.Bad_version v -> Alcotest.failf "unexpected version verdict: v%d" v
  | B.Bad msg -> Alcotest.failf "bad frame: %s" msg

(* Every request shape survives framing, and the decoded payload
   re-renders to the byte-identical JSON line the JSON codec sends —
   the two codecs are the same document in two framings. *)
let test_binary_request_round_trip () =
  List.iter
    (fun e ->
      let line = V1.request_line e in
      let payload, consumed = parse_one (B.request_frame e) in
      Alcotest.(check int) (line ^ " consumed") (String.length (B.request_frame e)) consumed;
      let e' = ok ~what:line (B.envelope_of_payload payload) in
      Alcotest.check envelope_t line e e';
      match B.decode_json payload with
      | Ok tree -> Alcotest.(check string) (line ^ " bytes") line (J.json_to_string tree)
      | Error m -> Alcotest.failf "%s: decode_json: %s" line m)
    sample_envelopes

let test_binary_reply_round_trip () =
  List.iter
    (fun r ->
      let line = V1.reply_line r in
      let payload, _ = parse_one (B.reply_frame r) in
      let r' = ok ~what:line (B.reply_of_payload payload) in
      Alcotest.check reply_t line r r';
      match B.decode_json payload with
      | Ok tree -> Alcotest.(check string) (line ^ " bytes") line (J.json_to_string tree)
      | Error m -> Alcotest.failf "%s: decode_json: %s" line m)
    sample_replies

(* The incremental parser never consumes a partial frame, finds frame
   boundaries in a pipelined buffer, and survives oversized payloads
   by reporting how many bytes to skip. *)
let test_binary_partial_frames () =
  let e = List.hd sample_envelopes in
  let frame = B.request_frame e in
  let n = String.length frame in
  for keep = 0 to n - 1 do
    match B.parse frame ~pos:0 ~len:keep with
    | B.Need -> ()
    | _ -> Alcotest.failf "prefix of %d/%d bytes should be Need" keep n
  done;
  (* Two pipelined frames in one buffer parse in order at moving pos. *)
  let e2 = List.nth sample_envelopes 1 in
  let buf = frame ^ B.request_frame e2 in
  let p1, c1 = parse_one buf in
  Alcotest.check envelope_t "first of pipeline" e (ok (B.envelope_of_payload p1));
  (match B.parse buf ~pos:c1 ~len:(String.length buf - c1) with
  | B.Frame { payload; _ } ->
      Alcotest.check envelope_t "second of pipeline" e2 (ok (B.envelope_of_payload payload))
  | _ -> Alcotest.fail "second pipelined frame did not parse")

let test_binary_oversized_and_bad () =
  let big = B.frame (String.make 100 'x') in
  (match B.parse ~max_len:10 big ~pos:0 ~len:(String.length big) with
  | B.Oversized { declared; consumed } ->
      Alcotest.(check int) "declared" 100 declared;
      (* Skipping header + declared payload resynchronises on the next
         frame — the connection survives an oversized request. *)
      let skip = consumed + declared in
      let next = B.request_frame (List.hd sample_envelopes) in
      let buf = big ^ next in
      (match B.parse buf ~pos:skip ~len:(String.length buf - skip) with
      | B.Frame _ -> ()
      | _ -> Alcotest.fail "did not resynchronise after oversized frame")
  | _ -> Alcotest.fail "oversized frame not flagged");
  (match B.parse "zzzz" ~pos:0 ~len:4 with
  | B.Bad _ -> ()
  | _ -> Alcotest.fail "bad magic not flagged");
  (let bad_version = Printf.sprintf "%c\x07rest" B.magic in
   match B.parse bad_version ~pos:0 ~len:(String.length bad_version) with
   | B.Bad_version 7 -> ()
   | B.Bad_version v -> Alcotest.failf "wrong version reported: %d" v
   | _ -> Alcotest.fail "bad version not flagged");
  (* A 9-byte varint setting bit 62 decodes to a negative OCaml int
     (2^62 = min_int on 64-bit); it must be rejected as Bad, never
     reach String.sub with a negative length. *)
  let neg_len =
    Printf.sprintf "%c%c%s" B.magic (Char.chr B.version)
      (String.make 8 '\x80' ^ "\x40")
  in
  match B.parse neg_len ~pos:0 ~len:(String.length neg_len) with
  | B.Bad _ -> ()
  | B.Frame _ | B.Need | B.Oversized _ | B.Bad_version _ ->
      Alcotest.fail "negative frame length not flagged as Bad"

let test_binary_scalar_edges () =
  let rt j =
    match B.decode_json (B.encode_json j) with
    | Ok j' -> Alcotest.(check bool) (J.json_to_string j) true (j = j')
    | Error m -> Alcotest.failf "%s: %s" (J.json_to_string j) m
  in
  List.iter rt
    [
      J.Int max_int;
      J.Int min_int;
      J.Int 0;
      J.Int (-1);
      J.Str (String.init 256 Char.chr);
      J.Float infinity;
      J.Float neg_infinity;
      J.Float Float.max_float;
      J.Float (-0.);
      J.Arr [];
      J.Obj [];
    ];
  (* NaN has no structural equality; the bit pattern must survive. *)
  match B.decode_json (B.encode_json (J.Float Float.nan)) with
  | Ok (J.Float f) ->
      Alcotest.(check bool) "nan bits" true
        (Int64.bits_of_float f = Int64.bits_of_float Float.nan)
  | _ -> Alcotest.fail "nan did not round-trip as a float"

let binary_json_tree_prop =
  let gen =
    QCheck2.Gen.(
      sized
      @@ fix (fun self n ->
             let leaf =
               oneof
                 [
                   return J.Null;
                   map (fun b -> J.Bool b) bool;
                   map (fun i -> J.Int i) int;
                   map
                     (fun f -> J.Float f)
                     (oneofl
                        [ 0.0; -0.0; 1.5; -2.25; 0.1; 1e300; 1e-300; 12345.6789 ]);
                   map (fun s -> J.Str s) (string_size (int_bound 16));
                 ]
             in
             if n <= 0 then leaf
             else
               oneof
                 [
                   leaf;
                   map (fun l -> J.Arr l) (list_size (int_bound 4) (self (n / 2)));
                   map
                     (fun l -> J.Obj l)
                     (list_size (int_bound 4)
                        (pair (string_size (int_bound 8)) (self (n / 2))));
                 ]))
  in
  QCheck2.Test.make ~name:"binary codec round-trips random json trees" ~count:300
    ~print:(fun j -> J.json_to_string j)
    gen
    (fun j -> B.decode_json (B.encode_json j) = Ok j)

let test_schema_dump () =
  match V1.schema_json () with
  | Obs.Export.Obj fields ->
      Alcotest.(check bool) "schema name" true
        (List.assoc_opt "schema" fields = Some (Obs.Export.Str "smallworld.api.v1"));
      (match List.assoc_opt "ops" fields with
      | Some (Obs.Export.Arr ops) ->
          Alcotest.(check int) "twelve ops" 12 (List.length ops)
      | _ -> Alcotest.fail "schema has no ops array");
      Alcotest.(check bool) "error codes listed" true
        (List.mem_assoc "error_codes" fields)
  | _ -> Alcotest.fail "schema_json is not an object"

let suite =
  [
    Alcotest.test_case "json round-trip (every request shape)" `Quick test_json_round_trip;
    Alcotest.test_case "args round-trip (every request shape)" `Quick test_args_round_trip;
    Alcotest.test_case "reply round-trip (every response shape)" `Quick test_reply_round_trip;
    Alcotest.test_case "deprecated flag shims" `Quick test_deprecated_shims;
    Alcotest.test_case "unknown flag names the canonical spelling" `Quick
      test_unknown_flag_suggestion;
    Alcotest.test_case "argument errors are bad-request" `Quick test_arg_errors;
    Alcotest.test_case "error taxonomy is pinned" `Quick test_error_taxonomy;
    Alcotest.test_case "unsupported envelope version is structured" `Quick
      test_unsupported_version;
    Alcotest.test_case "churn nan means survive both codecs" `Quick
      test_churn_nan_round_trip;
    Alcotest.test_case "float args round-trip exactly" `Quick test_float_arg;
    Alcotest.test_case "binary frames round-trip every request shape" `Quick
      test_binary_request_round_trip;
    Alcotest.test_case "binary frames round-trip every reply shape" `Quick
      test_binary_reply_round_trip;
    Alcotest.test_case "binary parser handles partial and pipelined frames" `Quick
      test_binary_partial_frames;
    Alcotest.test_case "binary parser flags oversized and malformed frames" `Quick
      test_binary_oversized_and_bad;
    Alcotest.test_case "binary scalar edge cases" `Quick test_binary_scalar_edges;
    QCheck_alcotest.to_alcotest binary_json_tree_prop;
    Alcotest.test_case "schema dump" `Quick test_schema_dump;
  ]
