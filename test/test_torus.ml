open Geometry

let point = Alcotest.testable (Fmt.of_to_string Torus.to_string) ( = )

let test_coord_dist () =
  Alcotest.(check (float 1e-12)) "plain" 0.2 (Torus.coord_dist 0.1 0.3);
  Alcotest.(check (float 1e-12)) "wrap" 0.2 (Torus.coord_dist 0.9 0.1);
  Alcotest.(check (float 1e-12)) "half" 0.5 (Torus.coord_dist 0.0 0.5);
  Alcotest.(check (float 1e-12)) "same" 0.0 (Torus.coord_dist 0.42 0.42)

let test_dist_linf_examples () =
  Alcotest.(check (float 1e-12)) "2d" 0.3 (Torus.dist_linf [| 0.1; 0.2 |] [| 0.4; 0.3 |]);
  Alcotest.(check (float 1e-12)) "wrap dominates" 0.15
    (Torus.dist_linf [| 0.95; 0.5 |] [| 0.1; 0.4 |])

let test_norms_ordering () =
  let rng = Prng.Rng.create ~seed:1 in
  for _ = 1 to 500 do
    let x = Torus.random_point rng ~dim:3 and y = Torus.random_point rng ~dim:3 in
    let linf = Torus.dist ~norm:Torus.Linf x y in
    let l2 = Torus.dist ~norm:Torus.L2 x y in
    let l1 = Torus.dist ~norm:Torus.L1 x y in
    if not (linf <= l2 +. 1e-12 && l2 <= l1 +. 1e-12) then
      Alcotest.fail "norm ordering Linf <= L2 <= L1 violated"
  done

let test_dimension_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Torus: dimension mismatch")
    (fun () -> ignore (Torus.dist_linf [| 0.1 |] [| 0.1; 0.2 |]))

let metric_axioms_prop =
  QCheck2.Test.make ~name:"linf metric axioms (symmetry, triangle, bounds)" ~count:500
    QCheck2.Gen.(
      tup3
        (array_size (return 2) (float_bound_exclusive 1.0))
        (array_size (return 2) (float_bound_exclusive 1.0))
        (array_size (return 2) (float_bound_exclusive 1.0)))
    (fun (x, y, z) ->
      let d_xy = Torus.dist_linf x y
      and d_yx = Torus.dist_linf y x
      and d_xz = Torus.dist_linf x z
      and d_zy = Torus.dist_linf z y in
      abs_float (d_xy -. d_yx) < 1e-12
      && d_xy <= d_xz +. d_zy +. 1e-12
      && d_xy >= 0.0 && d_xy <= 0.5 +. 1e-12
      && Torus.dist_linf x x = 0.0)

let translation_invariance_prop =
  QCheck2.Test.make ~name:"linf translation invariance" ~count:500
    QCheck2.Gen.(
      tup3
        (array_size (return 2) (float_bound_exclusive 1.0))
        (array_size (return 2) (float_bound_exclusive 1.0))
        (array_size (return 2) (float_bound_exclusive 1.0)))
    (fun (x, y, t) ->
      let d0 = Torus.dist_linf x y in
      let d1 = Torus.dist_linf (Torus.add x t) (Torus.add y t) in
      abs_float (d0 -. d1) < 1e-9)

let test_dist_fn_dispatch () =
  let x = [| 0.1; 0.2 |] and y = [| 0.3; 0.5 |] in
  List.iter
    (fun norm ->
      Alcotest.(check (float 1e-12)) "dist_fn = dist" (Torus.dist ~norm x y)
        (Torus.dist_fn norm x y))
    [ Torus.Linf; Torus.L2; Torus.L1 ]

let test_wrap () =
  Alcotest.(check (float 1e-12)) "positive" 0.25 (Torus.wrap 3.25);
  Alcotest.(check (float 1e-12)) "negative" 0.75 (Torus.wrap (-0.25));
  Alcotest.(check (float 1e-12)) "zero" 0.0 (Torus.wrap 0.0);
  Alcotest.(check (float 1e-12)) "one" 0.0 (Torus.wrap 1.0)

let test_add () =
  let result = Torus.add [| 0.6; 0.7 |] [| 0.5; 0.8 |] in
  Alcotest.(check (float 1e-12)) "wraps x" 0.1 result.(0);
  Alcotest.(check (float 1e-12)) "wraps y" 0.5 result.(1)

let test_random_point_in_box () =
  let rng = Prng.Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let p = Torus.random_point rng ~dim:4 in
    Alcotest.(check int) "dim" 4 (Array.length p);
    Array.iter (fun c -> if c < 0.0 || c >= 1.0 then Alcotest.fail "coord out") p
  done

let test_ball_volume () =
  Alcotest.(check (float 1e-12)) "2d" 0.16 (Torus.ball_volume ~dim:2 ~radius:0.2);
  Alcotest.(check (float 1e-12)) "capped" 1.0 (Torus.ball_volume ~dim:2 ~radius:0.9);
  Alcotest.(check (float 1e-12)) "zero" 0.0 (Torus.ball_volume ~dim:3 ~radius:0.0)

let test_ball_roundtrip () =
  List.iter
    (fun v ->
      let r = Torus.ball_radius_of_volume ~dim:2 ~volume:v in
      Alcotest.(check (float 1e-9)) "volume roundtrip" v (Torus.ball_volume ~dim:2 ~radius:r))
    [ 0.01; 0.25; 0.5; 1.0 ]

(* --- Packed: strided kernels bit-identical to the generic paths --------- *)

let test_packed_accessors () =
  let points = [| [| 0.1; 0.2 |]; [| 0.3; 0.4 |]; [| 0.5; 0.6 |] |] in
  let pk = Torus.Packed.of_points ~dim:2 points in
  Alcotest.(check int) "dim" 2 (Torus.Packed.dim pk);
  Alcotest.(check int) "length" 3 (Torus.Packed.length pk);
  Alcotest.(check (float 0.0)) "coord" 0.4 (Torus.Packed.coord pk 1 1);
  Alcotest.(check (array (float 0.0))) "get" [| 0.5; 0.6 |] (Torus.Packed.get pk 2)

let test_packed_rejects_mismatch () =
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Torus.Packed.of_points: dimension mismatch") (fun () ->
      ignore (Torus.Packed.of_points ~dim:2 [| [| 0.1 |] |]))

(* Exact float equality on purpose: the packed kernels promise the same bit
   patterns as the generic loops, not just close values. *)
let packed_vs_generic_prop =
  QCheck.Test.make ~count:300 ~name:"packed kernels bit-identical to generic"
    QCheck.(
      triple (int_range 1 6) (int_range 1 12) (int_range 0 1_000_000))
    (fun (dim, n, salt) ->
      let rng = Prng.Rng.create ~seed:(salt + (dim * 7919) + n) in
      let points = Array.init n (fun _ -> Torus.random_point rng ~dim) in
      let pk = Torus.Packed.of_points ~dim points in
      List.for_all
        (fun norm ->
          let generic = Torus.dist_fn norm in
          let dist_to = Torus.Packed.dist_to_fn pk norm in
          let dist_between = Torus.Packed.dist_between_fn pk norm in
          let q = Torus.random_point rng ~dim in
          let ok = ref true in
          for u = 0 to n - 1 do
            if dist_to u q <> generic points.(u) q then ok := false;
            for v = 0 to n - 1 do
              if dist_between u v <> generic points.(u) points.(v) then ok := false
            done
          done;
          !ok)
        [ Torus.Linf; Torus.L2; Torus.L1 ])

let suite =
  [
    Alcotest.test_case "coord_dist" `Quick test_coord_dist;
    Alcotest.test_case "dist_linf examples" `Quick test_dist_linf_examples;
    Alcotest.test_case "norm ordering" `Quick test_norms_ordering;
    Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
    QCheck_alcotest.to_alcotest metric_axioms_prop;
    QCheck_alcotest.to_alcotest translation_invariance_prop;
    Alcotest.test_case "dist_fn dispatch" `Quick test_dist_fn_dispatch;
    Alcotest.test_case "wrap" `Quick test_wrap;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "random point in box" `Quick test_random_point_in_box;
    Alcotest.test_case "ball volume" `Quick test_ball_volume;
    Alcotest.test_case "ball volume roundtrip" `Quick test_ball_roundtrip;
    Alcotest.test_case "packed accessors" `Quick test_packed_accessors;
    Alcotest.test_case "packed rejects mismatch" `Quick test_packed_rejects_mismatch;
    QCheck_alcotest.to_alcotest packed_vs_generic_prop;
  ]
