open Greedy_routing

let make_instance () =
  (* 1-d instance with hand-placed vertices for exact phi computations. *)
  let params = Girg.Params.make ~dim:1 ~beta:2.5 ~w_min:1.0 ~n:10 ~poisson_count:false () in
  let weights = [| 1.0; 2.0; 4.0; 1.0 |] in
  let positions = [| [| 0.0 |]; [| 0.1 |]; [| 0.3 |]; [| 0.5 |] |] in
  let rng = Prng.Rng.create ~seed:1 in
  Girg.Instance.generate_with ~rng ~params ~weights ~positions ()

let test_girg_phi_values () =
  let inst = make_instance () in
  let obj = Objective.girg_phi inst ~target:3 in
  (* phi(v) = w_v / (w_min * n * dist(v, t)^d); target at 0.5. *)
  Alcotest.(check (float 1e-9)) "phi(0)" (1.0 /. (10.0 *. 0.5)) (obj.Objective.score 0);
  Alcotest.(check (float 1e-9)) "phi(1)" (2.0 /. (10.0 *. 0.4)) (obj.Objective.score 1);
  Alcotest.(check (float 1e-9)) "phi(2)" (4.0 /. (10.0 *. 0.2)) (obj.Objective.score 2);
  Alcotest.(check bool) "phi(t) = inf" true (obj.Objective.score 3 = infinity)

let test_phi_maximised_at_target () =
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~n:500 () in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:2) params in
  let n = Sparse_graph.Graph.n inst.graph in
  let obj = Objective.girg_phi inst ~target:(n / 2) in
  for v = 0 to n - 1 do
    if v <> n / 2 && obj.Objective.score v >= obj.Objective.score (n / 2) then
      Alcotest.fail "target not the global maximum"
  done

let test_geometric_objective () =
  let positions = [| [| 0.0; 0.0 |]; [| 0.4; 0.4 |]; [| 0.5; 0.5 |] |] in
  let obj = Objective.geometric ~positions ~target:2 () in
  Alcotest.(check bool) "closer scores higher" true
    (obj.Objective.score 1 > obj.Objective.score 0);
  Alcotest.(check bool) "target inf" true (obj.Objective.score 2 = infinity)

let test_hyperbolic_objective_ordering () =
  let p = Hyperbolic.Hrg.make ~n:200 () in
  let h = Hyperbolic.Hrg.generate ~rng:(Prng.Rng.create ~seed:3) p in
  let target = 17 in
  let obj = Objective.hyperbolic h ~target in
  (* phi_H ordering must match (inverse) hyperbolic distance ordering. *)
  let rng = Prng.Rng.create ~seed:4 in
  for _ = 1 to 500 do
    let u = Prng.Rng.int rng 200 and v = Prng.Rng.int rng 200 in
    if u <> target && v <> target then begin
      let du = Hyperbolic.Hrg.distance h.coords.(u) h.coords.(target) in
      let dv = Hyperbolic.Hrg.distance h.coords.(v) h.coords.(target) in
      let su = obj.Objective.score u and sv = obj.Objective.score v in
      if du < dv -. 1e-9 && su < sv then
        Alcotest.fail "phi_H ordering disagrees with hyperbolic distance"
    end
  done;
  Alcotest.(check bool) "target inf" true (obj.Objective.score target = infinity)

let test_of_fun_forces_target () =
  let obj = Objective.of_fun ~name:"const" ~target:5 (fun _ -> 1.0) in
  Alcotest.(check bool) "target inf" true (obj.Objective.score 5 = infinity);
  Alcotest.(check (float 0.0)) "others" 1.0 (obj.Objective.score 0)

let test_noisy_factor_bounds () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let noisy = Objective.noisy_factor ~seed:7 ~spread:1.0 base in
  for v = 0 to 2 do
    let ratio = noisy.Objective.score v /. base.Objective.score v in
    if ratio < exp (-1.0) -. 1e-9 || ratio > exp 1.0 +. 1e-9 then
      Alcotest.fail "factor out of bounds"
  done;
  Alcotest.(check bool) "target still inf" true (noisy.Objective.score 3 = infinity)

let test_noisy_deterministic () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let a = Objective.noisy_factor ~seed:7 ~spread:1.0 base in
  let b = Objective.noisy_factor ~seed:7 ~spread:1.0 base in
  for v = 0 to 2 do
    Alcotest.(check (float 0.0)) "same noise" (a.Objective.score v) (b.Objective.score v)
  done;
  let c = Objective.noisy_factor ~seed:8 ~spread:1.0 base in
  Alcotest.(check bool) "different seed differs" true
    (List.exists (fun v -> a.Objective.score v <> c.Objective.score v) [ 0; 1; 2 ])

let test_noisy_zero_spread_identity () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let noisy = Objective.noisy_factor ~seed:7 ~spread:0.0 base in
  for v = 0 to 2 do
    Alcotest.(check (float 1e-12)) "identity" (base.Objective.score v) (noisy.Objective.score v)
  done

let test_noisy_polynomial_bounds () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let noisy = Objective.noisy_polynomial ~seed:9 ~delta:0.5 ~weights:inst.weights base in
  for v = 0 to 2 do
    let s = base.Objective.score v in
    let m = Float.max 1.0 (Float.min inst.weights.(v) (1.0 /. s)) in
    let ratio = noisy.Objective.score v /. s in
    if ratio < (m ** -0.5) -. 1e-9 || ratio > (m ** 0.5) +. 1e-9 then
      Alcotest.fail "polynomial noise out of Theorem 3.5 bounds"
  done

let test_noisy_rejects_negative () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  Alcotest.check_raises "negative spread"
    (Invalid_argument "Objective.noisy_factor: negative spread") (fun () ->
      ignore (Objective.noisy_factor ~seed:1 ~spread:(-1.0) base))

(* --- hash_unit: pinned outputs + boxed Int64 reference ------------------ *)

(* The shipped implementation mixes on native-int halves; this is the boxed
   Int64 formulation it replaced, kept as an executable specification. *)
let hash_unit_int64 ~seed v =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (v + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits53 = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int bits53 /. 9007199254740992.0

let test_hash_unit_pinned () =
  (* Values produced by the original Int64 implementation: any drift here is
     a silent change to every noisy-objective experiment. *)
  List.iter
    (fun (seed, v, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "hash_unit ~seed:%d %d" seed v)
        expected
        (Printf.sprintf "%h" (Objective.hash_unit ~seed v)))
    [
      (0, 0, "0x1.c4415072f63b9p-1");
      (0, 1, "0x1.b9e279aa86e58p-2");
      (42, 7, "0x1.99ec6bdd3d3c5p-1");
      (42, 123456, "0x1.d6952525d5c63p-1");
      (-5, 3, "0x1.b1de70de4fe21p-1");
      (1000003, 999999, "0x1.06593fd05705p-1");
      (4611686018427387903, 2, "0x1.ee247b72d7622p-1");
      (-4611686018427387904, 11, "0x1.df250b5c5f24p-5");
      (123, 0, "0x1.69b937a8c5bc8p-1");
      (7, 1000000000, "0x1.69b0aeffc8abp-2");
    ]

let test_hash_unit_matches_int64 () =
  let rng = Prng.Rng.create ~seed:99 in
  for _ = 1 to 5000 do
    let seed = Prng.Rng.int rng 2_000_003 - 1_000_001 in
    let v = Prng.Rng.int rng 10_000_000 in
    let a = Objective.hash_unit ~seed v in
    let b = hash_unit_int64 ~seed v in
    if a <> b then
      Alcotest.failf "hash_unit mismatch at seed=%d v=%d: %h <> %h" seed v a b
  done;
  (* Extremes of the native-int range. *)
  List.iter
    (fun (seed, v) ->
      let a = Objective.hash_unit ~seed v in
      let b = hash_unit_int64 ~seed v in
      if a <> b then Alcotest.failf "hash_unit mismatch at seed=%d v=%d" seed v)
    [ (max_int, 0); (min_int, 0); (max_int, max_int - 1); (min_int, 17); (0, max_int - 1) ]

(* --- dense fast paths: bit-identical to the closure paths ---------------- *)

let check_dense_identical ~name ~n obj =
  let dense = Objective.scorer obj in
  for v = 0 to n - 1 do
    let a = obj.Objective.score v in
    let b = dense v in
    if a <> b then Alcotest.failf "%s: dense <> score at v=%d: %h <> %h" name v a b
  done

let test_dense_girg_phi_identical () =
  List.iter
    (fun (norm, dim) ->
      let params =
        Girg.Params.make ~dim ~beta:2.5 ~c:0.4 ~norm ~n:300 ~poisson_count:false ()
      in
      let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:11) params in
      let n = Array.length inst.weights in
      let name =
        Printf.sprintf "phi %s dim=%d" (Girg.Params.norm_to_string norm) dim
      in
      check_dense_identical ~name ~n (Objective.girg_phi inst ~target:(n / 3)))
    [
      (Geometry.Torus.Linf, 1);
      (Geometry.Torus.Linf, 2);
      (Geometry.Torus.Linf, 3);
      (Geometry.Torus.Linf, 4);
      (Geometry.Torus.L2, 1);
      (Geometry.Torus.L2, 2);
      (Geometry.Torus.L2, 3);
      (Geometry.Torus.L1, 2);
      (Geometry.Torus.L1, 4);
    ]

let test_dense_geometric_identical () =
  let rng = Prng.Rng.create ~seed:12 in
  let positions = Array.init 200 (fun _ -> Geometry.Torus.random_point rng ~dim:2) in
  let packed = Geometry.Torus.Packed.of_points ~dim:2 positions in
  check_dense_identical ~name:"geometric" ~n:200
    (Objective.geometric ~packed ~positions ~target:55 ())

let test_dense_hyperbolic_identical () =
  let p = Hyperbolic.Hrg.make ~n:300 () in
  let h = Hyperbolic.Hrg.generate ~rng:(Prng.Rng.create ~seed:13) p in
  check_dense_identical ~name:"phi_H" ~n:300 (Objective.hyperbolic h ~target:42)

let test_dense_noisy_identical () =
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.4 ~n:300 ~poisson_count:false () in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:14) params in
  let n = Array.length inst.weights in
  let base = Objective.girg_phi inst ~target:(n / 2) in
  check_dense_identical ~name:"noisy_factor" ~n
    (Objective.noisy_factor ~seed:5 ~spread:1.5 base);
  check_dense_identical ~name:"noisy_polynomial" ~n
    (Objective.noisy_polynomial ~seed:5 ~delta:0.7 ~weights:inst.weights base)

(* --- Memo ---------------------------------------------------------------- *)

let test_memo_identity_and_counting () =
  let calls = ref 0 in
  let obj =
    Objective.of_fun ~name:"counted" ~target:9 (fun v ->
        incr calls;
        float_of_int (v * v))
  in
  let scratch = Objective.Memo.create () in
  let wrapped = Objective.Memo.wrap scratch ~n:10 obj in
  let phi = Objective.scorer wrapped in
  for v = 0 to 9 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "memo value %d" v)
      (obj.Objective.score v) (phi v)
  done;
  let after_first = !calls in
  for v = 0 to 9 do ignore (phi v) done;
  Alcotest.(check int) "second sweep fully cached" after_first !calls;
  (* A re-wrap starts a fresh generation: values recompute. *)
  let wrapped2 = Objective.Memo.wrap scratch ~n:10 obj in
  let phi2 = Objective.scorer wrapped2 in
  ignore (phi2 0);
  Alcotest.(check bool) "new generation recomputes" true (!calls > after_first)

let suite =
  [
    Alcotest.test_case "girg phi values" `Quick test_girg_phi_values;
    Alcotest.test_case "phi maximised at target" `Quick test_phi_maximised_at_target;
    Alcotest.test_case "geometric objective" `Quick test_geometric_objective;
    Alcotest.test_case "hyperbolic objective ordering" `Quick test_hyperbolic_objective_ordering;
    Alcotest.test_case "of_fun forces target" `Quick test_of_fun_forces_target;
    Alcotest.test_case "noisy factor bounds" `Quick test_noisy_factor_bounds;
    Alcotest.test_case "noisy deterministic" `Quick test_noisy_deterministic;
    Alcotest.test_case "zero spread identity" `Quick test_noisy_zero_spread_identity;
    Alcotest.test_case "polynomial noise bounds" `Quick test_noisy_polynomial_bounds;
    Alcotest.test_case "rejects negative spread" `Quick test_noisy_rejects_negative;
    Alcotest.test_case "hash_unit pinned values" `Quick test_hash_unit_pinned;
    Alcotest.test_case "hash_unit = Int64 reference" `Quick test_hash_unit_matches_int64;
    Alcotest.test_case "dense girg_phi bit-identical" `Quick test_dense_girg_phi_identical;
    Alcotest.test_case "dense geometric bit-identical" `Quick test_dense_geometric_identical;
    Alcotest.test_case "dense hyperbolic bit-identical" `Quick test_dense_hyperbolic_identical;
    Alcotest.test_case "dense noisy chain bit-identical" `Quick test_dense_noisy_identical;
    Alcotest.test_case "memo identity and counting" `Quick test_memo_identity_and_counting;
  ]
