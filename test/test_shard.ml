(* Sharded generation: bit-identity across the (shards x jobs) matrix, spill
   round-trips, and malformed-spill rejection. *)

let with_pool jobs f =
  let pool = Parallel.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

let with_tmp_dir f =
  let dir = Filename.temp_file "smallworld-shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Two parameterisations exercising distinct dimensions, alpha regimes and
   count models. *)
let param_cases =
  [
    ("p1", Girg.Params.make ~n:800 ~dim:1 ~poisson_count:false (), 42);
    ( "p2",
      Girg.Params.make ~n:1200 ~dim:2 ~beta:2.7 ~alpha:(Girg.Params.Finite 3.0)
        ~poisson_count:true (),
      7 );
  ]

let flat_edges buf = Array.sub (Girg.Edge_buf.flat buf) 0 (Girg.Edge_buf.flat_len buf)

let baseline ~seed params =
  with_pool 1 (fun pool -> fst (Girg.Shard.sample ~pool ~seed ~shards:1 ~shard:0 params))

let check_same_edges what expected got =
  Alcotest.(check (array int)) what (flat_edges expected) (flat_edges got)

(* The tentpole guarantee: concatenating per-shard edge buffers in shard
   order is byte-identical to single-process output, for every combination
   of shards in {1,2,8} and jobs in {1,2,4}, on both parameterisations. *)
let test_shard_jobs_invariance () =
  List.iter
    (fun (label, params, seed) ->
      let expected = baseline ~seed params in
      List.iter
        (fun shards ->
          List.iter
            (fun jobs ->
              with_pool jobs (fun pool ->
                  let merged = Girg.Edge_buf.create () in
                  for shard = 0 to shards - 1 do
                    let buf, _count = Girg.Shard.sample ~pool ~seed ~shards ~shard params in
                    Girg.Edge_buf.append merged buf
                  done;
                  check_same_edges
                    (Printf.sprintf "%s shards=%d jobs=%d" label shards jobs)
                    expected merged))
            [ 1; 2; 4 ])
        [ 1; 2; 8 ])
    param_cases

let graphs_equal what a b =
  let module G = Sparse_graph.Graph in
  Alcotest.(check int) (what ^ ": n") (G.n a) (G.n b);
  Alcotest.(check int) (what ^ ": m") (G.m a) (G.m b);
  for v = 0 to G.n a - 1 do
    if G.neighbors a v <> G.neighbors b v then
      Alcotest.failf "%s: adjacency of vertex %d differs" what v
  done

(* Spill files written by independent shard runs merge back to the exact
   instance single-process generation produces. *)
let test_spill_merge_round_trip () =
  List.iter
    (fun (label, params, seed) ->
      with_tmp_dir (fun dir ->
          let shards = 3 in
          let paths =
            List.init shards (fun shard ->
                let path = Filename.concat dir (Printf.sprintf "shard-%d.spill" shard) in
                let header = Girg.Shard.generate_spill ~path ~seed ~shards ~shard params in
                Alcotest.(check int) (label ^ ": header shard") shard header.Girg.Shard.shard;
                Alcotest.(check int) (label ^ ": header shards") shards header.Girg.Shard.shards;
                path)
          in
          (* Edge stream identical to the single-process stream. *)
          (match Girg.Shard.merge_edges ~paths with
          | Error e -> Alcotest.failf "%s: merge_edges failed: %s" label e
          | Ok (_, buf) -> check_same_edges (label ^ ": merged edges") (baseline ~seed params) buf);
          (* Merge order should not depend on the argument order. *)
          (match Girg.Shard.merge_edges ~paths:(List.rev paths) with
          | Error e -> Alcotest.failf "%s: reversed merge failed: %s" label e
          | Ok (_, buf) ->
              check_same_edges (label ^ ": reversed-arg merge") (baseline ~seed params) buf);
          match Girg.Shard.merge ~paths () with
          | Error e -> Alcotest.failf "%s: merge failed: %s" label e
          | Ok inst ->
              let reference =
                Girg.Instance.generate ~sampler:Girg.Instance.Use_cell
                  ~rng:(Prng.Rng.create ~seed) params
              in
              Alcotest.(check (array (float 0.0)))
                (label ^ ": weights") reference.Girg.Instance.weights inst.Girg.Instance.weights;
              graphs_equal (label ^ ": graph") reference.Girg.Instance.graph
                inst.Girg.Instance.graph))
    param_cases

let small_params = Girg.Params.make ~n:700 ~dim:1 ~poisson_count:false ()

let write_small_spill dir =
  let path = Filename.concat dir "s.spill" in
  let (_ : Girg.Shard.header) =
    Girg.Shard.generate_spill ~path ~seed:5 ~shards:1 ~shard:0 small_params
  in
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" what
  | Error (_ : string) -> ()

let test_spill_rejection () =
  with_tmp_dir (fun dir ->
      let path = write_small_spill dir in
      let original = read_file path in
      (match Girg.Shard.read_spill ~path with
      | Error e -> Alcotest.failf "pristine spill rejected: %s" e
      | Ok (h, buf) ->
          Alcotest.(check int) "edges field" h.Girg.Shard.edges (Girg.Edge_buf.length buf));
      (* Truncation: cut the last 4 bytes. *)
      let t = Filename.concat dir "trunc.spill" in
      write_file t (String.sub original 0 (String.length original - 4));
      expect_error "truncated spill" (Girg.Shard.read_spill ~path:t);
      (* Bad magic. *)
      let b = Bytes.of_string original in
      Bytes.set b 0 'X';
      let bm = Filename.concat dir "magic.spill" in
      write_file bm (Bytes.to_string b);
      expect_error "bad magic" (Girg.Shard.read_header ~path:bm);
      (* Oversized edge count: forge the header's promise. *)
      let b = Bytes.of_string original in
      Bytes.set_int64_le b (Girg.Shard.header_bytes - 8) 0x1000000000L;
      let ov = Filename.concat dir "oversized.spill" in
      write_file ov (Bytes.to_string b);
      expect_error "oversized edge count" (Girg.Shard.read_spill ~path:ov);
      (* Endianness mismatch tag. *)
      let b = Bytes.of_string original in
      Bytes.set_int32_le b 8 0x04030201l;
      let en = Filename.concat dir "endian.spill" in
      write_file en (Bytes.to_string b);
      expect_error "endian tag" (Girg.Shard.read_header ~path:en))

let test_merge_set_validation () =
  with_tmp_dir (fun dir ->
      let shards = 2 in
      let spill ?(seed = 5) shard name =
        let path = Filename.concat dir name in
        let (_ : Girg.Shard.header) =
          Girg.Shard.generate_spill ~path ~seed ~shards ~shard small_params
        in
        path
      in
      let s0 = spill 0 "a.spill" and s1 = spill 1 "b.spill" in
      expect_error "empty set" (Girg.Shard.merge_edges ~paths:[]);
      expect_error "missing shard" (Girg.Shard.merge_edges ~paths:[ s0 ]);
      expect_error "duplicate shard" (Girg.Shard.merge_edges ~paths:[ s0; s0 ]);
      let other_seed = spill ~seed:6 1 "c.spill" in
      expect_error "mixed seeds" (Girg.Shard.merge_edges ~paths:[ s0; other_seed ]);
      match Girg.Shard.merge_edges ~paths:[ s0; s1 ] with
      | Error e -> Alcotest.failf "valid set rejected: %s" e
      | Ok _ -> ())

(* Edge_buf growth guards (satellite): adversarial capacities fail cleanly. *)
let test_edge_buf_guards () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Edge_buf.create: capacity out of range") (fun () ->
      ignore (Girg.Edge_buf.create ~capacity:(-1) ()));
  Alcotest.check_raises "huge capacity"
    (Invalid_argument "Edge_buf.create: capacity out of range") (fun () ->
      ignore (Girg.Edge_buf.create ~capacity:max_int ()));
  (* Normal growth still works across several doublings. *)
  let buf = Girg.Edge_buf.create ~capacity:1 () in
  for i = 0 to 9999 do
    Girg.Edge_buf.push buf i (i + 1)
  done;
  Alcotest.(check int) "length after growth" 10_000 (Girg.Edge_buf.length buf)

let suite =
  [
    Alcotest.test_case "edges bit-identical across shards x jobs" `Slow
      test_shard_jobs_invariance;
    Alcotest.test_case "spill merge round-trips to the reference instance" `Quick
      test_spill_merge_round_trip;
    Alcotest.test_case "malformed spills are rejected cleanly" `Quick test_spill_rejection;
    Alcotest.test_case "merge validates the spill set" `Quick test_merge_set_validation;
    Alcotest.test_case "edge buffer growth guards" `Quick test_edge_buf_guards;
  ]
