open Greedy_routing

let make_instance () =
  let params = Girg.Params.make ~dim:1 ~beta:2.5 ~n:10 ~poisson_count:false () in
  let weights = [| 1.0; 8.0; 2.0; 1.5 |] in
  let positions = [| [| 0.0 |]; [| 0.2 |]; [| 0.45 |]; [| 0.5 |] |] in
  let rng = Prng.Rng.create ~seed:1 in
  Girg.Instance.generate_with ~rng ~params ~weights ~positions ()

let test_of_walk_annotates () =
  let inst = make_instance () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "length" 4 (List.length points);
  let p0 = List.nth points 0 in
  Alcotest.(check int) "hop" 0 p0.Trajectory.hop;
  Alcotest.(check int) "vertex" 0 p0.Trajectory.vertex;
  Alcotest.(check (float 1e-9)) "weight" 1.0 p0.Trajectory.weight;
  Alcotest.(check (float 1e-9)) "dist" 0.5 p0.Trajectory.dist_to_target;
  let p3 = List.nth points 3 in
  Alcotest.(check (float 1e-9)) "target dist 0" 0.0 p3.Trajectory.dist_to_target;
  Alcotest.(check bool) "target objective inf" true (p3.Trajectory.objective = infinity)

let test_peak_weight_hop () =
  let inst = make_instance () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "peak at hop 1" 1 (Trajectory.peak_weight_hop points)

let test_exponents_filter_small_weights () =
  let inst = make_instance () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  (* Only vertex 1 has weight >= 4 in the first phase, so no ratio exists. *)
  Alcotest.(check (list (float 0.0))) "no exponents" []
    (Trajectory.weight_doubling_exponents points)

let test_exponents_on_climbing_path () =
  let params = Girg.Params.make ~dim:1 ~beta:2.5 ~n:10 ~poisson_count:false () in
  let weights = [| 4.0; 16.0; 256.0; 1.0 |] in
  let positions = [| [| 0.0 |]; [| 0.1 |]; [| 0.2 |]; [| 0.5 |] |] in
  let rng = Prng.Rng.create ~seed:1 in
  let inst = Girg.Instance.generate_with ~rng ~params ~weights ~positions () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  let exps = Trajectory.weight_doubling_exponents points in
  Alcotest.(check int) "two ratios" 2 (List.length exps);
  Alcotest.(check (float 1e-9)) "log16/log4" 2.0 (List.nth exps 0);
  Alcotest.(check (float 1e-9)) "log256/log16" 2.0 (List.nth exps 1)

let test_empty_walk () =
  let inst = make_instance () in
  Alcotest.(check int) "empty" 0 (List.length (Trajectory.of_walk ~inst ~target:3 ~walk:[]))

let test_matches_flight_recorder () =
  (* The flight recorder's Route_hop events and Trajectory.of_walk are two
     independent views of the same route; they must agree hop for hop. *)
  if not Obs.Events.enabled then ()
  else begin
    let was = Obs.Events.recording () in
    Obs.Events.set_recording true;
    Obs.Events.clear ();
    Fun.protect ~finally:(fun () -> Obs.Events.set_recording was) @@ fun () ->
    let inst = Test_greedy.girg_instance ~seed:903 ~n:2000 ~c:0.2 () in
    let rng = Prng.Rng.create ~seed:10 in
    let checked = ref 0 in
    while !checked < 10 do
      let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
      Obs.Events.clear ();
      let objective = Objective.girg_phi inst ~target:t in
      let outcome = Greedy.route ~graph:inst.graph ~objective ~source:s () in
      if outcome.Outcome.status = Outcome.Delivered then begin
        incr checked;
        let hops =
          List.filter_map
            (fun (e : Obs.Events.event) ->
              match e.Obs.Events.payload with
              | Obs.Events.Route_hop { hop; vertex; objective; _ } ->
                  Some (hop, vertex, objective)
              | _ -> None)
            (Obs.Events.events ())
        in
        let event_walk = List.map (fun (_, v, _) -> v) hops in
        let points = Trajectory.of_walk ~inst ~target:t ~walk:event_walk in
        let direct = Trajectory.of_walk ~inst ~target:t ~walk:outcome.Outcome.walk in
        Alcotest.(check int) "one event per hop" (List.length outcome.Outcome.walk)
          (List.length hops);
        Alcotest.(check (list int)) "same vertex sequence" outcome.Outcome.walk event_walk;
        Alcotest.(check int) "same peak-weight phase boundary"
          (Trajectory.peak_weight_hop direct)
          (Trajectory.peak_weight_hop points);
        (* Hop indices in events are 0..k in order, matching point.hop, and
           the recorded objective equals the trajectory's annotation. *)
        List.iter2
          (fun (hop, _, obj) (p : Trajectory.point) ->
            Alcotest.(check int) "hop index" p.Trajectory.hop hop;
            if Float.is_finite p.Trajectory.objective then
              Alcotest.(check (float 1e-9)) "objective" p.Trajectory.objective obj)
          hops points
      end
    done
  end

let suite =
  [
    Alcotest.test_case "of_walk annotates" `Quick test_of_walk_annotates;
    Alcotest.test_case "peak weight hop" `Quick test_peak_weight_hop;
    Alcotest.test_case "exponent noise filter" `Quick test_exponents_filter_small_weights;
    Alcotest.test_case "exponents on climbing path" `Quick test_exponents_on_climbing_path;
    Alcotest.test_case "empty walk" `Quick test_empty_walk;
    Alcotest.test_case "agrees with flight recorder" `Quick test_matches_flight_recorder;
  ]
