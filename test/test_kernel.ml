open Girg

let params ?(alpha = Params.Finite 2.0) ?(c = 1.0) () =
  Params.make ~dim:2 ~beta:2.5 ~alpha ~c ~n:1000 ()

let test_prob_range () =
  let p = params () in
  let rng = Prng.Rng.create ~seed:1 in
  for _ = 1 to 2000 do
    let wu = Prng.Dist.pareto rng ~x_min:1.0 ~exponent:2.5 in
    let wv = Prng.Dist.pareto rng ~x_min:1.0 ~exponent:2.5 in
    let dist = Prng.Rng.float rng 0.5 in
    let pr = Kernel.girg_prob p ~wu ~wv ~dist in
    if not (pr >= 0.0 && pr <= 1.0) then Alcotest.fail "probability out of [0,1]"
  done

let test_prob_zero_distance () =
  let p = params () in
  Alcotest.(check (float 1e-12)) "dist 0" 1.0 (Kernel.girg_prob p ~wu:1.0 ~wv:1.0 ~dist:0.0)

let test_ep3_saturation () =
  (* (EP3): p = 1 once c q >= 1, i.e. dist^d <= c wu wv / (w_min n). *)
  let p = params () in
  let boundary = sqrt (1.0 *. 4.0 *. 4.0 /. 1000.0) in
  Alcotest.(check (float 1e-12)) "inside saturation" 1.0
    (Kernel.girg_prob p ~wu:4.0 ~wv:4.0 ~dist:(boundary *. 0.99));
  Alcotest.(check bool) "outside saturation" true
    (Kernel.girg_prob p ~wu:4.0 ~wv:4.0 ~dist:(boundary *. 1.01) < 1.0)

let test_threshold_kernel () =
  let p = params ~alpha:Params.Infinite () in
  let boundary = sqrt (16.0 /. 1000.0) in
  Alcotest.(check (float 1e-12)) "below threshold" 1.0
    (Kernel.girg_prob p ~wu:4.0 ~wv:4.0 ~dist:(boundary *. 0.99));
  Alcotest.(check (float 1e-12)) "above threshold" 0.0
    (Kernel.girg_prob p ~wu:4.0 ~wv:4.0 ~dist:(boundary *. 1.01))

let test_decay_exponent () =
  (* In the polynomial regime, doubling the distance divides p by 2^(alpha d). *)
  let p = params ~alpha:(Params.Finite 2.0) () in
  let p1 = Kernel.girg_prob p ~wu:1.0 ~wv:1.0 ~dist:0.2 in
  let p2 = Kernel.girg_prob p ~wu:1.0 ~wv:1.0 ~dist:0.4 in
  Alcotest.(check (float 1e-9)) "ratio 2^(2*2)" 16.0 (p1 /. p2)

let test_specialised_alphas_match_generic () =
  (* The fast paths for alpha = 2, 3 must equal the generic power. *)
  List.iter
    (fun a ->
      let p_fast = params ~alpha:(Params.Finite a) () in
      let generic q = q ** a in
      let q = 1.0 *. 1.0 /. (1.0 *. 1000.0 *. (0.3 *. 0.3)) in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "alpha %.0f" a)
        (generic q)
        (Kernel.girg_prob p_fast ~wu:1.0 ~wv:1.0 ~dist:0.3))
    [ 2.0; 3.0 ]

let monotonicity_prop =
  QCheck2.Test.make ~name:"girg_prob monotone in weights, antitone in dist" ~count:300
    QCheck2.Gen.(
      tup4 (float_range 1.0 50.0) (float_range 1.0 50.0)
        (float_range 0.01 0.5) (float_range 1.0 2.0))
    (fun (wu, wv, dist, factor) ->
      let p = params () in
      let base = Kernel.girg_prob p ~wu ~wv ~dist in
      Kernel.girg_prob p ~wu:(wu *. factor) ~wv ~dist >= base -. 1e-12
      && Kernel.girg_prob p ~wu ~wv ~dist:(Float.min 0.5 (dist *. factor)) <= base +. 1e-12)

let envelope_prop =
  (* The kernel invariant the cell sampler relies on. *)
  QCheck2.Test.make ~name:"upper envelope dominates prob" ~count:500
    QCheck2.Gen.(
      tup4 (float_range 1.0 20.0) (float_range 1.0 20.0)
        (float_range 0.01 0.5) (tup2 (float_range 1.0 3.0) (float_range 1.0 3.0)))
    (fun (wu, wv, min_dist, (fu, fv)) ->
      let k = Kernel.girg (params ()) in
      let dist = Float.min 0.5 (min_dist *. 1.3) in
      k.Kernel.prob ~wu ~wv ~dist
      <= k.Kernel.upper ~wu_ub:(wu *. fu) ~wv_ub:(wv *. fv) ~min_dist +. 1e-12)

let test_prob_packed_matches_generic () =
  (* The fused trial kernel must equal the generic composition bit-for-bit
     ([=], not approx), across every specialised (norm, dim) arm and the
     generic fallback, for every alpha regime. *)
  let rng = Prng.Rng.create ~seed:77 in
  List.iter
    (fun norm ->
      List.iter
        (fun dim ->
          List.iter
            (fun alpha ->
              let p = Params.make ~dim ~beta:2.5 ~alpha ~c:0.5 ~norm ~n:64 () in
              let k = Kernel.girg p in
              let n = 24 in
              let weights =
                Array.init n (fun _ -> Prng.Dist.pareto rng ~x_min:1.0 ~exponent:2.5)
              in
              let positions =
                Array.init n (fun i ->
                    if i < 2 then Array.make dim 0.0 (* dist 0 and saturated pairs *)
                    else Geometry.Torus.random_point rng ~dim)
              in
              let packed = Geometry.Torus.Packed.of_points ~dim positions in
              let fused =
                match k.Kernel.prob_packed with
                | Some mk -> mk packed weights
                | None -> Alcotest.fail "girg kernel must provide prob_packed"
              in
              for u = 0 to n - 1 do
                for v = 0 to n - 1 do
                  let dist = Geometry.Torus.Packed.dist_between_fn packed norm u v in
                  let expected = k.Kernel.prob ~wu:weights.(u) ~wv:weights.(v) ~dist in
                  if not (fused u v = expected) then
                    Alcotest.failf "fused kernel diverges (norm dim=%d u=%d v=%d): %h <> %h"
                      dim u v (fused u v) expected
                done
              done)
            [ Params.Infinite; Params.Finite 2.0; Params.Finite 3.0; Params.Finite 1.2 ])
        [ 1; 2; 3; 4 ])
    [ Geometry.Torus.Linf; Geometry.Torus.L2; Geometry.Torus.L1 ]

let test_kernel_record_fields () =
  let k = Kernel.girg (params ()) in
  Alcotest.(check int) "dim" 2 k.Kernel.dim;
  Alcotest.(check bool) "no weight cap" true (k.Kernel.weight_cap = infinity);
  Alcotest.(check (float 1e-12)) "saturation volume" (16.0 /. 1000.0)
    (k.Kernel.saturation_volume ~wu_ub:4.0 ~wv_ub:4.0)

let suite =
  [
    Alcotest.test_case "prob in [0,1]" `Quick test_prob_range;
    Alcotest.test_case "prob at distance 0" `Quick test_prob_zero_distance;
    Alcotest.test_case "(EP3) saturation" `Quick test_ep3_saturation;
    Alcotest.test_case "threshold kernel (EP2)" `Quick test_threshold_kernel;
    Alcotest.test_case "polynomial decay exponent" `Quick test_decay_exponent;
    Alcotest.test_case "specialised alpha fast paths" `Quick test_specialised_alphas_match_generic;
    QCheck_alcotest.to_alcotest monotonicity_prop;
    QCheck_alcotest.to_alcotest envelope_prop;
    Alcotest.test_case "fused prob_packed bit-identical" `Quick
      test_prob_packed_matches_generic;
    Alcotest.test_case "kernel record fields" `Quick test_kernel_record_fields;
  ]
