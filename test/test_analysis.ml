(* Obs.Analysis: event-stream analytics.  A hand-built synthetic stream
   pins every aggregate exactly; the live tests check the conventions
   the docs promise — for pure greedy the analysis reproduces
   Workload's delivered/dropped split and mean steps, and for
   gravity–pressure the phase occupancy accounts for every step. *)

open Experiments
module E = Obs.Events
module A = Obs.Analysis

let mk_events payloads =
  List.mapi (fun i p -> { E.seq = i; time = float_of_int i; payload = p }) payloads

let hop route hop vertex objective = E.Route_hop { route; hop; vertex; objective }

(* Five routes exercising every analyzer path:
   1: delivered in 3 steps;
   2: dead end after 1 step;
   3: delivered in 4 steps with two phase switches (1 gravity hop,
      2 pressure hops, 1 gravity hop after the switch back);
   4: delivered in 2 steps through one patch;
   5: ring-truncated (hops 2..3 survive, prefix overwritten);
   plus two netsim message events that must not create routes. *)
let synthetic_stream () =
  mk_events
    [
      hop 1 0 10 0.1;
      hop 1 1 11 0.2;
      hop 1 2 12 0.4;
      hop 1 3 13 0.8;
      hop 2 0 20 0.1;
      hop 2 1 21 0.3;
      E.Dead_end { route = 2; vertex = 21 };
      hop 3 0 30 0.0;
      hop 3 1 31 0.1;
      E.Phase_switch { route = 3; vertex = 31; phase = "pressure" };
      hop 3 2 32 0.2;
      hop 3 3 33 0.3;
      E.Phase_switch { route = 3; vertex = 33; phase = "gravity" };
      hop 3 4 34 0.4;
      hop 4 0 40 0.5;
      E.Patch_enter { route = 4; vertex = 40; phi = 0.5 };
      hop 4 1 41 0.6;
      E.Patch_exit { route = 4; vertex = 41; phi = 0.5 };
      hop 4 2 42 0.7;
      hop 5 2 52 0.9;
      hop 5 3 53 1.0;
      E.Msg_send
        { trace = 1; msg = 1; parent = -1; src = 0; dst = 1; kind = "fwd"; sim_time = 0.0 };
      E.Msg_recv
        { trace = 1; msg = 1; parent = -1; src = 0; dst = 1; kind = "fwd"; sim_time = 0.5 };
    ]

let feq = Alcotest.(check (float 1e-9))

let test_synthetic_counts () =
  let a = A.analyze ~n:2048 (synthetic_stream ()) in
  Alcotest.(check int) "events" 23 a.A.events;
  Alcotest.(check int) "msg events" 2 a.A.msg_events;
  Alcotest.(check int) "routes" 5 a.A.routes;
  Alcotest.(check int) "truncated" 1 a.A.truncated;
  Alcotest.(check int) "completed" 4 a.A.completed;
  Alcotest.(check int) "dead ends" 1 a.A.dead_ends;
  feq "dead end rate" 0.2 a.A.dead_end_rate;
  (* Completed hop counts are 3, 4, 2, 3 (max hop index = steps). *)
  feq "hop mean" 3.0 a.A.hop_mean;
  feq "hop p50 (nearest rank)" 3.0 a.A.hop_p50;
  feq "hop p90 (nearest rank)" 4.0 a.A.hop_p90;
  Alcotest.(check int) "hop max" 4 a.A.hop_max;
  (* The dead-ended route contributes its 1 step to the all-routes mean. *)
  feq "hop mean (all)" 2.6 a.A.hop_mean_all;
  (match a.A.log_log_n with
  | Some ll -> feq "log log n" (Float.log (Float.log 2048.0)) ll
  | None -> Alcotest.fail "log_log_n missing despite ~n")

let test_synthetic_progress () =
  let a = A.analyze (synthetic_stream ()) in
  Alcotest.(check bool) "no log_log_n without ~n" true (a.A.log_log_n = None);
  Alcotest.(check (list int)) "hop axis ascending" [ 0; 1; 2; 3; 4 ]
    (List.map (fun (p : A.progress_point) -> p.A.hop) a.A.progress);
  Alcotest.(check (list int)) "route occupancy per hop" [ 4; 4; 4; 3; 1 ]
    (List.map (fun (p : A.progress_point) -> p.A.routes) a.A.progress);
  List.iter2
    (fun expect (p : A.progress_point) -> feq "mean objective" expect p.A.mean_objective)
    [ 0.175; 0.3; 0.55; 0.7; 0.4 ]
    a.A.progress

let test_progress_ignores_nonfinite_objectives () =
  (* phi diverges at the target (distance 0), so delivered walks end on
     an infinite — or nan — objective; the hop mean must average the
     finite values only, not get poisoned. *)
  let a =
    A.analyze
      (mk_events
         [
           hop 1 0 10 0.25;
           hop 1 1 11 Float.infinity;
           hop 2 0 20 0.75;
           hop 2 1 21 Float.nan;
         ])
  in
  (match a.A.progress with
  | [ p0; p1 ] ->
      Alcotest.(check int) "both routes at hop 0" 2 p0.A.routes;
      feq "finite hop-0 mean" 0.5 p0.A.mean_objective;
      Alcotest.(check int) "both routes still counted at hop 1" 2 p1.A.routes;
      Alcotest.(check bool) "no finite value -> nan" true
        (Float.is_nan p1.A.mean_objective)
  | ps -> Alcotest.failf "expected 2 progress points, got %d" (List.length ps));
  (* And the json encoder turns that nan into null. *)
  let doc = A.to_json a in
  match Obs.Export.member "progress" doc with
  | Some (Obs.Export.Arr [ _; p1 ]) ->
      Alcotest.(check bool) "nan mean_objective is null" true
        (Obs.Export.member "mean_objective" p1 = Some Obs.Export.Null)
  | _ -> Alcotest.fail "progress array missing from json"

let test_synthetic_phases_and_patches () =
  let a = A.analyze (synthetic_stream ()) in
  Alcotest.(check int) "switches" 2 a.A.switches;
  Alcotest.(check int) "phased routes" 1 a.A.phased_routes;
  (* Route 3: hops 1 and 4 in (implicit or restored) gravity, 2–3 in
     pressure; hop 0 is the source placement, not a step. *)
  Alcotest.(check int) "gravity hops" 2 a.A.hops_gravity;
  Alcotest.(check int) "pressure hops" 2 a.A.hops_pressure;
  Alcotest.(check int) "patch enters" 1 a.A.patch_enters;
  Alcotest.(check int) "patch exits" 1 a.A.patch_exits;
  Alcotest.(check int) "routes with patch" 1 a.A.routes_with_patch

let test_empty_stream () =
  let a = A.analyze [] in
  Alcotest.(check int) "events" 0 a.A.events;
  Alcotest.(check int) "routes" 0 a.A.routes;
  Alcotest.(check int) "completed" 0 a.A.completed;
  Alcotest.(check bool) "dead end rate is nan" true (Float.is_nan a.A.dead_end_rate);
  Alcotest.(check bool) "hop mean is nan" true (Float.is_nan a.A.hop_mean);
  feq "p50 pinned to 0" 0.0 a.A.hop_p50;
  Alcotest.(check int) "hop max" 0 a.A.hop_max;
  Alcotest.(check bool) "no progress points" true (a.A.progress = []);
  match (A.analyze ~n:10 []).A.log_log_n with
  | Some ll -> feq "log log n still reported" (Float.log (Float.log 10.0)) ll
  | None -> Alcotest.fail "log_log_n missing despite ~n"

(* The recorder is global state; reuse test_obs's discipline of saving
   and restoring capacity (set_capacity also clears the ring). *)
let with_clean_recorder f =
  if not E.enabled then ()
  else begin
    let cap = E.capacity () in
    Fun.protect
      ~finally:(fun () ->
        E.set_recording true;
        E.set_capacity cap)
      (fun () ->
        E.set_capacity 262_144;
        E.set_recording true;
        f ())
  end

let test_matches_workload () =
  (* The pinned convention: for pure greedy (no cutoff), dead_end events
     are exactly the dropped routes, so the analysis must reproduce
     Workload's aggregates from the event stream alone. *)
  with_clean_recorder (fun () ->
      let inst = Test_greedy.girg_instance ~seed:901 ~n:1500 ~c:0.2 () in
      let n = Sparse_graph.Graph.n inst.graph in
      let rng = Prng.Rng.create ~seed:77 in
      let pairs = Workload.sample_pairs_any ~rng ~n ~count:60 in
      let res =
        Workload.run ~graph:inst.graph
          ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
          ~protocol:Greedy_routing.Protocol.Greedy ~pairs ()
      in
      let a = A.analyze ~n (E.events ()) in
      Alcotest.(check int) "every pair left a route" res.Workload.attempted a.A.routes;
      Alcotest.(check int) "no ring truncation" 0 a.A.truncated;
      Alcotest.(check int) "completed = delivered" res.Workload.delivered a.A.completed;
      Alcotest.(check int) "dead ends agree" res.Workload.dead_end a.A.dead_ends;
      Alcotest.(check int) "greedy never hits the cutoff" 0 res.Workload.cutoff;
      feq "hop mean = mean_steps" (Workload.mean_steps res) a.A.hop_mean;
      feq "dead end rate = failure rate" (Workload.failure_rate res) a.A.dead_end_rate;
      (* Greedy objectives strictly improve along a walk, so the
         progress curve exists and starts at hop 0 with every route. *)
      match a.A.progress with
      | { A.hop = 0; routes; _ } :: _ ->
          Alcotest.(check int) "all routes pass hop 0" a.A.routes routes
      | _ -> Alcotest.fail "progress curve must start at hop 0")

let test_gravity_pressure_occupancy () =
  (* Every step of a gravity–pressure walk lands in exactly one phase,
     so for a phased route the occupancy sums to its hop count. *)
  with_clean_recorder (fun () ->
      let inst = Test_greedy.girg_instance ~seed:900 ~n:3000 ~c:0.08 () in
      let comps = Sparse_graph.Components.compute inst.graph in
      let giant = Sparse_graph.Components.giant_members comps in
      let rng = Prng.Rng.create ~seed:901 in
      let routed = ref 0 in
      for _ = 1 to 15 do
        let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
        let objective = Greedy_routing.Objective.girg_phi inst ~target:giant.(j) in
        let r =
          Greedy_routing.Gravity_pressure.route ~graph:inst.graph ~objective
            ~source:giant.(i) ()
        in
        if not (Greedy_routing.Outcome.delivered r) then Alcotest.fail "GP failed in the giant";
        incr routed
      done;
      let a = A.analyze (E.events ()) in
      Alcotest.(check int) "one route per call" !routed a.A.routes;
      Alcotest.(check int) "all delivered" a.A.routes a.A.completed;
      Alcotest.(check bool) "phased subset" true (a.A.phased_routes <= a.A.routes);
      if a.A.switches > 0 then begin
        Alcotest.(check bool) "switches imply phased routes" true (a.A.phased_routes > 0);
        (* hops_gravity/_pressure sum steps (hop > 0) over phased routes
           only; recompute that bound from the raw events. *)
        let phased = Hashtbl.create 8 in
        List.iter
          (fun (e : E.event) ->
            match e.E.payload with
            | E.Phase_switch { route; _ } -> Hashtbl.replace phased route ()
            | _ -> ())
          (E.events ());
        let steps_of_phased =
          List.fold_left
            (fun acc (e : E.event) ->
              match e.E.payload with
              | E.Route_hop { route; hop; _ } when hop > 0 && Hashtbl.mem phased route ->
                  acc + 1
              | _ -> acc)
            0 (E.events ())
        in
        Alcotest.(check int) "occupancy accounts for every phased step" steps_of_phased
          (a.A.hops_gravity + a.A.hops_pressure)
      end)

let test_json_shape () =
  let a = A.analyze ~n:2048 (synthetic_stream ()) in
  let doc = A.to_json a in
  let get path =
    List.fold_left
      (fun acc key ->
        match Option.bind acc (Obs.Export.member key) with
        | Some j -> Some j
        | None -> Alcotest.failf "missing %s" (String.concat "." path))
      (Some doc) path
  in
  (match get [ "schema" ] with
  | Some (Obs.Export.Str s) -> Alcotest.(check string) "schema" A.schema_version s
  | _ -> Alcotest.fail "schema not a string");
  (match get [ "hops"; "mean" ] with
  | Some (Obs.Export.Float m) -> feq "hops.mean" 3.0 m
  | _ -> Alcotest.fail "hops.mean not a float");
  (match get [ "hops"; "mean_over_log_log_n" ] with
  | Some (Obs.Export.Float r) -> feq "mean/loglog" (3.0 /. Float.log (Float.log 2048.0)) r
  | _ -> Alcotest.fail "hops.mean_over_log_log_n not a float");
  (match get [ "phases"; "pressure_share" ] with
  | Some (Obs.Export.Float s) -> feq "pressure share" 0.5 s
  | _ -> Alcotest.fail "phases.pressure_share not a float");
  (match get [ "patching"; "entry_rate" ] with
  | Some (Obs.Export.Float r) -> feq "patch entry rate" 0.2 r
  | _ -> Alcotest.fail "patching.entry_rate not a float");
  (* Non-finite aggregates must serialise as null, and the whole
     document must survive the repo's own JSON round trip. *)
  let empty = A.to_json (A.analyze []) in
  (match Option.bind (Obs.Export.member "hops" empty) (Obs.Export.member "mean") with
  | Some Obs.Export.Null -> ()
  | _ -> Alcotest.fail "nan mean must be null");
  match Obs.Export.json_of_string (Obs.Export.json_to_string doc) with
  | Ok reparsed ->
      Alcotest.(check string) "round trip" (Obs.Export.json_to_string doc)
        (Obs.Export.json_to_string reparsed)
  | Error e -> Alcotest.failf "analysis document does not reparse: %s" e

let test_render_shape () =
  let a = A.analyze ~n:2048 (synthetic_stream ()) in
  let text = A.render a in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub -> if not (contains sub) then Alcotest.failf "render missing %S" sub)
    [
      "routes            5 (1 truncated by ring overwrite)";
      "dead ends       1";
      "log log n";
      "phases            2 switches over 1 routes";
      "gravity 2 hops, pressure 2 hops";
      "patching          1 enters / 1 exits, 1 routes";
      "per-hop objective progress:";
    ];
  (* The empty report renders without the optional sections. *)
  let empty = A.render (A.analyze []) in
  Alcotest.(check bool) "no phase section when quiet" false
    (let sub = "phases" in
     let n = String.length sub and m = String.length empty in
     let rec go i = i + n <= m && (String.sub empty i n = sub || go (i + 1)) in
     go 0)

let suite =
  [
    Alcotest.test_case "synthetic: counts and hop stats" `Quick test_synthetic_counts;
    Alcotest.test_case "synthetic: progress curve" `Quick test_synthetic_progress;
    Alcotest.test_case "progress ignores non-finite objectives" `Quick
      test_progress_ignores_nonfinite_objectives;
    Alcotest.test_case "synthetic: phases and patches" `Quick test_synthetic_phases_and_patches;
    Alcotest.test_case "empty stream" `Quick test_empty_stream;
    Alcotest.test_case "greedy workload consistency" `Quick test_matches_workload;
    Alcotest.test_case "gravity-pressure occupancy" `Quick test_gravity_pressure_occupancy;
    Alcotest.test_case "analysis.v1 json shape" `Quick test_json_shape;
    Alcotest.test_case "rendered table shape" `Quick test_render_shape;
  ]
