(* The load-bearing property of Theorem 3.4: a (P1)-(P3) patching protocol
   delivers IF AND ONLY IF source and target share a component.  We check
   it exhaustively on many random graphs with random objectives, for both
   Phi-DFS (Algorithm 2) and the history-based protocol. *)

open Greedy_routing

let protocols =
  [ ("phi-dfs", Protocol.Patch_dfs); ("history", Protocol.Patch_history) ]

let random_objective ~rng ~n ~target =
  let scores = Array.init n (fun _ -> Prng.Rng.unit_float rng) in
  Objective.of_fun ~name:"random" ~target (fun v -> scores.(v))

let check_success_iff_connected ~label ~protocol ~graph ~objective ~source ~target =
  let r = Protocol.run protocol ~graph ~objective ~source () in
  let connected =
    Sparse_graph.Components.same (Sparse_graph.Components.compute graph) source target
  in
  match r.Outcome.status with
  | Outcome.Delivered ->
      if not connected then Alcotest.failf "%s delivered across components" label
  | Outcome.Exhausted ->
      if connected then
        Alcotest.failf "%s exhausted although s-t connected (s=%d t=%d)" label source target
  | Outcome.Dead_end -> Alcotest.failf "%s returned Dead_end (patching never drops)" label
  | Outcome.Cutoff -> Alcotest.failf "%s hit the step cap" label

let test_exhaustive_random_graphs () =
  let rng = Prng.Rng.create ~seed:2024 in
  for trial = 1 to 150 do
    let n = 2 + Prng.Rng.int rng 14 in
    let m = Prng.Rng.int rng (3 * n) in
    let graph = Test_greedy.random_graph ~seed:trial ~n ~m in
    let source = Prng.Rng.int rng n in
    let target = Prng.Rng.int rng n in
    if source <> target then begin
      let objective = random_objective ~rng ~n ~target in
      List.iter
        (fun (label, protocol) ->
          check_success_iff_connected ~label ~protocol ~graph ~objective ~source ~target)
        protocols
    end
  done

let test_on_girg_same_component () =
  let inst = Test_greedy.girg_instance ~seed:321 ~n:4000 ~c:0.08 () in
  let comps = Sparse_graph.Components.compute inst.graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let rng = Prng.Rng.create ~seed:55 in
  List.iter
    (fun (label, protocol) ->
      for _ = 1 to 60 do
        let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
        let s = giant.(i) and t = giant.(j) in
        let objective = Objective.girg_phi inst ~target:t in
        let r = Protocol.run protocol ~graph:inst.graph ~objective ~source:s () in
        if not (Outcome.delivered r) then
          Alcotest.failf "%s failed on same-component GIRG pair" label
      done)
    protocols

let test_walk_validity () =
  (* Every patching walk must only use graph edges and count steps as
     |walk| - 1. *)
  let inst = Test_greedy.girg_instance ~seed:322 ~n:2000 ~c:0.08 () in
  let g = inst.graph in
  let rng = Prng.Rng.create ~seed:56 in
  List.iter
    (fun (label, protocol) ->
      for _ = 1 to 30 do
        let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n g) in
        let objective = Objective.girg_phi inst ~target:t in
        let r = Protocol.run protocol ~graph:g ~objective ~source:s () in
        Alcotest.(check int)
          (label ^ " steps = |walk|-1")
          (List.length r.Outcome.walk - 1)
          r.Outcome.steps;
        let rec check_edges = function
          | a :: (b :: _ as rest) ->
              if a <> b && not (Sparse_graph.Graph.has_edge g a b) then
                Alcotest.failf "%s walk uses non-edge %d-%d" label a b;
              check_edges rest
          | [ _ ] | [] -> ()
        in
        check_edges r.Outcome.walk
      done)
    protocols

let test_delivery_path_ends_at_target () =
  let inst = Test_greedy.girg_instance ~seed:323 ~n:1500 ~c:0.1 () in
  let comps = Sparse_graph.Components.compute inst.graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let rng = Prng.Rng.create ~seed:57 in
  List.iter
    (fun (label, protocol) ->
      for _ = 1 to 30 do
        let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
        let s = giant.(i) and t = giant.(j) in
        let objective = Objective.girg_phi inst ~target:t in
        let r = Protocol.run protocol ~graph:inst.graph ~objective ~source:s () in
        match List.rev r.Outcome.walk with
        | last :: _ when Outcome.delivered r ->
            Alcotest.(check int) (label ^ " ends at t") t last
        | _ -> Alcotest.failf "%s should deliver in the giant" label
      done)
    protocols

let test_patching_beats_greedy_success () =
  let inst = Test_greedy.girg_instance ~seed:324 ~n:6000 ~c:0.06 () in
  let comps = Sparse_graph.Components.compute inst.graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let rng = Prng.Rng.create ~seed:58 in
  let pairs =
    Array.init 150 (fun _ ->
        let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
        (giant.(i), giant.(j)))
  in
  let success protocol =
    Array.fold_left
      (fun acc (s, t) ->
        let objective = Objective.girg_phi inst ~target:t in
        let r = Protocol.run protocol ~graph:inst.graph ~objective ~source:s () in
        if Outcome.delivered r then acc + 1 else acc)
      0 pairs
  in
  let greedy = success Protocol.Greedy in
  let dfs = success Protocol.Patch_dfs in
  Alcotest.(check int) "phi-dfs delivers all" (Array.length pairs) dfs;
  Alcotest.(check bool) "greedy drops some on sparse graphs" true
    (greedy < Array.length pairs)

let test_patching_isolated_source () =
  let graph = Sparse_graph.Graph.of_edge_list ~n:3 [ (1, 2) ] in
  List.iter
    (fun (label, protocol) ->
      let objective = Objective.of_fun ~name:"x" ~target:2 (fun v -> float_of_int v) in
      let r = Protocol.run protocol ~graph ~objective ~source:0 () in
      Alcotest.(check bool) (label ^ " exhausts") true (r.Outcome.status = Outcome.Exhausted))
    protocols

let test_patching_source_equals_neighbors_worse () =
  (* Local optimum at the source; patching must still find t. *)
  let graph = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let objective = Objective.of_fun ~name:"x" ~target:3 (fun v -> [| 0.9; 0.1; 0.5; 0.0 |].(v)) in
  List.iter
    (fun (label, protocol) ->
      let r = Protocol.run protocol ~graph ~objective ~source:0 () in
      Alcotest.(check bool) (label ^ " delivers past local opt") true (Outcome.delivered r))
    protocols

let test_dfs_cheap_on_easy_instances () =
  (* When greedy succeeds, Phi-DFS should take exactly the same path. *)
  let inst = Test_greedy.girg_instance ~seed:325 ~n:3000 ~c:0.3 () in
  let rng = Prng.Rng.create ~seed:59 in
  for _ = 1 to 50 do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n inst.graph) in
    let objective = Objective.girg_phi inst ~target:t in
    let greedy = Protocol.run Protocol.Greedy ~graph:inst.graph ~objective ~source:s () in
    if Outcome.delivered greedy then begin
      let dfs = Protocol.run Protocol.Patch_dfs ~graph:inst.graph ~objective ~source:s () in
      Alcotest.(check (list int)) "same walk when greedy works" greedy.Outcome.walk
        dfs.Outcome.walk
    end
  done

(* (P1), second clause: whenever the walk enters a vertex for the FIRST
   time and that vertex has a neighbour of strictly larger objective, the
   very next hop must be to the vertex's best neighbour. *)
let test_p1_first_visit_greedy () =
  let rng = Prng.Rng.create ~seed:4242 in
  for trial = 1 to 60 do
    let n = 4 + Prng.Rng.int rng 12 in
    let graph = Test_greedy.random_graph ~seed:(5000 + trial) ~n ~m:(2 * n) in
    let target = Prng.Rng.int rng n in
    let source = Prng.Rng.int rng n in
    if source <> target then begin
      let objective = random_objective ~rng ~n ~target in
      List.iter
        (fun (label, protocol) ->
          let r = Protocol.run protocol ~graph ~objective ~source () in
          let seen = Array.make n false in
          let rec check = function
            | a :: (b :: _ as rest) ->
                if not seen.(a) then begin
                  seen.(a) <- true;
                  let best = ref (-1) and best_score = ref neg_infinity in
                  Sparse_graph.Graph.iter_neighbors graph a (fun u ->
                      let s = objective.Objective.score u in
                      if s > !best_score then begin
                        best := u;
                        best_score := s
                      end);
                  if
                    !best >= 0
                    && !best_score > objective.Objective.score a
                    && b <> !best
                  then
                    Alcotest.failf "%s violates (P1) at %d: went to %d, best is %d" label
                      a b !best
                end;
                check rest
            | [ x ] -> seen.(x) <- true
            | [] -> ()
          in
          check r.Outcome.walk)
        protocols
    end
  done

(* When patching reports Exhausted, it must actually have seen the whole
   component of the source. *)
let test_exhausted_means_component_explored () =
  let rng = Prng.Rng.create ~seed:999 in
  for trial = 1 to 60 do
    let n = 4 + Prng.Rng.int rng 12 in
    let graph = Test_greedy.random_graph ~seed:(6000 + trial) ~n ~m:n in
    let comps = Sparse_graph.Components.compute graph in
    let source = Prng.Rng.int rng n in
    let target = Prng.Rng.int rng n in
    if source <> target && not (Sparse_graph.Components.same comps source target) then begin
      let objective = random_objective ~rng ~n ~target in
      List.iter
        (fun (label, protocol) ->
          let r = Protocol.run protocol ~graph ~objective ~source () in
          Alcotest.(check bool) (label ^ " exhausts") true
            (r.Outcome.status = Outcome.Exhausted);
          let component_size =
            Sparse_graph.Components.size comps (Sparse_graph.Components.id comps source)
          in
          Alcotest.(check int)
            (label ^ " explored the whole component")
            component_size r.Outcome.visited)
        protocols
    end
  done

let test_steps_grow_with_sparsity_not_n () =
  (* Theorem 3.4's loglog bound, coarsely: doubling n four times should
     leave the median patched path length nearly unchanged. *)
  let median_steps n =
    let inst = Test_greedy.girg_instance ~seed:(10_000 + n) ~n ~c:0.12 () in
    let comps = Sparse_graph.Components.compute inst.graph in
    let giant = Sparse_graph.Components.giant_members comps in
    let rng = Prng.Rng.create ~seed:77 in
    let steps = ref [] in
    for _ = 1 to 80 do
      let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
      let objective = Objective.girg_phi inst ~target:giant.(j) in
      let r = Protocol.run Protocol.Patch_history ~graph:inst.graph ~objective ~source:giant.(i) () in
      if Outcome.delivered r then steps := float_of_int r.Outcome.steps :: !steps
    done;
    Stats.Summary.percentile (Array.of_list !steps) ~p:0.5
  in
  let small = median_steps 2000 and large = median_steps 32_000 in
  if large > 3.0 *. small +. 3.0 then
    Alcotest.failf "median steps grew too fast: %.1f -> %.1f" small large

let test_steps_polynomially_bounded () =
  (* (P2)/(P3) imply polynomially many steps; on small graphs we can afford
     a hard cubic ceiling. *)
  let rng = Prng.Rng.create ~seed:31337 in
  for trial = 1 to 120 do
    let n = 3 + Prng.Rng.int rng 13 in
    let graph = Test_greedy.random_graph ~seed:(7000 + trial) ~n ~m:(3 * n) in
    let source = Prng.Rng.int rng n and target = Prng.Rng.int rng n in
    if source <> target then begin
      let objective = random_objective ~rng ~n ~target in
      List.iter
        (fun (label, protocol) ->
          let r = Protocol.run protocol ~graph ~objective ~source () in
          let bound = (n * n * n) + (10 * n) + 10 in
          if r.Outcome.steps > bound then
            Alcotest.failf "%s took %d steps on n=%d (bound %d)" label r.Outcome.steps n
              bound)
        protocols
    end
  done

let test_patching_increments_counters () =
  if not Obs.Metrics.enabled then ()
  else begin
    (* Path 1-0-2 with the best-scoring neighbour (1) a dead end: Phi-DFS
       must start an inner DFS (a patch) and backtrack out of 1. *)
    let graph = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (0, 2); (2, 3) ] in
    let objective =
      Objective.of_fun ~name:"trap" ~target:3 (fun v -> [| 0.1; 0.8; 0.3; infinity |].(v))
    in
    let routes0 = Test_greedy.default_counter "route.patch_dfs.routes" in
    let patches0 = Test_greedy.default_counter "route.patch_dfs.patches" in
    let backtracks0 = Test_greedy.default_counter "route.patch_dfs.backtracks" in
    let visited0 = Test_greedy.default_counter "route.patch_dfs.visited" in
    let r = Protocol.run Protocol.Patch_dfs ~graph ~objective ~source:0 () in
    Alcotest.(check bool) "delivered" true (Outcome.delivered r);
    Alcotest.(check int) "one route" 1
      (Test_greedy.default_counter "route.patch_dfs.routes" - routes0);
    Alcotest.(check bool) "patch started" true
      (Test_greedy.default_counter "route.patch_dfs.patches" - patches0 >= 1);
    Alcotest.(check bool) "backtracked" true
      (Test_greedy.default_counter "route.patch_dfs.backtracks" - backtracks0 >= 1);
    Alcotest.(check int) "visited accumulated" r.Outcome.visited
      (Test_greedy.default_counter "route.patch_dfs.visited" - visited0)
  end

let suite =
  [
    Alcotest.test_case "success iff connected (random graphs)" `Quick test_exhaustive_random_graphs;
    Alcotest.test_case "counters incremented" `Quick test_patching_increments_counters;
    Alcotest.test_case "(P1) first-visit greedy rule" `Quick test_p1_first_visit_greedy;
    Alcotest.test_case "exhausted = component explored" `Quick test_exhausted_means_component_explored;
    Alcotest.test_case "loglog growth (coarse)" `Slow test_steps_grow_with_sparsity_not_n;
    Alcotest.test_case "polynomial step ceiling" `Quick test_steps_polynomially_bounded;
    Alcotest.test_case "same-component GIRG delivery" `Quick test_on_girg_same_component;
    Alcotest.test_case "walk validity" `Quick test_walk_validity;
    Alcotest.test_case "delivery ends at target" `Quick test_delivery_path_ends_at_target;
    Alcotest.test_case "patching beats greedy" `Quick test_patching_beats_greedy_success;
    Alcotest.test_case "isolated source exhausts" `Quick test_patching_isolated_source;
    Alcotest.test_case "escapes source local optimum" `Quick test_patching_source_equals_neighbors_worse;
    Alcotest.test_case "phi-dfs = greedy when greedy works" `Quick test_dfs_cheap_on_easy_instances;
  ]
