open Greedy_routing

(* Shared helpers for the routing test modules. *)

let line_graph_objective ~target scores =
  Objective.of_fun ~name:"table" ~target (fun v -> scores.(v))

let girg_instance ?(seed = 123) ?(n = 3000) ?(c = 0.25) ?(beta = 2.5) () =
  let params = Girg.Params.make ~dim:2 ~beta ~c ~n () in
  Girg.Instance.generate ~rng:(Prng.Rng.create ~seed) params

(* A random sparse graph (Erdos-Renyi-ish) for adversarial protocol tests. *)
let random_graph ~seed ~n ~m =
  let rng = Prng.Rng.create ~seed in
  Sparse_graph.Graph.of_edges ~n
    (Array.init m (fun _ -> (Prng.Rng.int rng n, Prng.Rng.int rng n)))

let test_direct_neighbor () =
  let g = Sparse_graph.Graph.of_edge_list ~n:2 [ (0, 1) ] in
  let obj = line_graph_objective ~target:1 [| 0.1; infinity |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "delivered" true (Outcome.delivered r);
  Alcotest.(check int) "one step" 1 r.Outcome.steps;
  Alcotest.(check (list int)) "walk" [ 0; 1 ] r.Outcome.walk

let test_source_is_target () =
  let g = Sparse_graph.Graph.of_edge_list ~n:2 [ (0, 1) ] in
  let obj = line_graph_objective ~target:0 [| infinity; 0.1 |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "delivered" true (Outcome.delivered r);
  Alcotest.(check int) "zero steps" 0 r.Outcome.steps

let test_monotone_chain () =
  (* Path 0-1-2-3 with increasing scores: follows the whole chain. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let obj = line_graph_objective ~target:3 [| 0.1; 0.2; 0.3; infinity |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "delivered" true (Outcome.delivered r);
  Alcotest.(check (list int)) "walk" [ 0; 1; 2; 3 ] r.Outcome.walk

let test_dead_end () =
  (* 0's only neighbour 1 scores lower: dropped immediately. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let obj = line_graph_objective ~target:2 [| 0.5; 0.2; infinity |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "dead end" true (r.Outcome.status = Outcome.Dead_end);
  Alcotest.(check int) "no steps" 0 r.Outcome.steps

let test_isolated_source () =
  let g = Sparse_graph.Graph.of_edges ~n:2 [||] in
  let obj = line_graph_objective ~target:1 [| 0.5; infinity |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "dead end" true (r.Outcome.status = Outcome.Dead_end)

let test_picks_best_neighbor () =
  (* Star: 0 adjacent to 1, 2, 3; 2 has the best score and leads to t. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:5 [ (0, 1); (0, 2); (0, 3); (2, 4) ] in
  let obj = line_graph_objective ~target:4 [| 0.1; 0.3; 0.8; 0.5; infinity |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check (list int)) "via best" [ 0; 2; 4 ] r.Outcome.walk

let test_objective_strictly_increases () =
  let inst = girg_instance () in
  let g = inst.graph in
  let rng = Prng.Rng.create ~seed:77 in
  for _ = 1 to 100 do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n g) in
    let obj = Objective.girg_phi inst ~target:t in
    let r = Greedy.route ~graph:g ~objective:obj ~source:s () in
    let rec check_monotone = function
      | a :: (b :: _ as rest) ->
          if obj.Objective.score b <= obj.Objective.score a then
            Alcotest.fail "objective not strictly increasing along greedy path";
          check_monotone rest
      | [ _ ] | [] -> ()
    in
    check_monotone r.Outcome.walk
  done

let test_walk_is_a_path_in_graph () =
  let inst = girg_instance ~seed:124 () in
  let g = inst.graph in
  let rng = Prng.Rng.create ~seed:78 in
  for _ = 1 to 100 do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n g) in
    let obj = Objective.girg_phi inst ~target:t in
    let r = Greedy.route ~graph:g ~objective:obj ~source:s () in
    let rec check_edges = function
      | a :: (b :: _ as rest) ->
          if not (Sparse_graph.Graph.has_edge g a b) then
            Alcotest.fail "walk uses a non-edge";
          check_edges rest
      | [ _ ] | [] -> ()
    in
    check_edges r.Outcome.walk;
    Alcotest.(check int) "steps = |walk|-1" (List.length r.Outcome.walk - 1) r.Outcome.steps;
    if Outcome.delivered r then begin
      match List.rev r.Outcome.walk with
      | last :: _ -> Alcotest.(check int) "ends at target" t last
      | [] -> Alcotest.fail "empty walk"
    end
  done

let test_max_steps_cutoff () =
  let g = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let obj = line_graph_objective ~target:3 [| 0.1; 0.2; 0.3; infinity |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 ~max_steps:1 () in
  Alcotest.(check bool) "cutoff" true (r.Outcome.status = Outcome.Cutoff)

let test_delivery_when_target_adjacent () =
  (* Even a lower-scoring path cannot distract: target has score infinity. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:3 [ (0, 2); (0, 1) ] in
  let obj = line_graph_objective ~target:2 [| 0.5; 0.9; infinity |] in
  let r = Greedy.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check (list int)) "straight to target" [ 0; 2 ] r.Outcome.walk

let test_outcome_to_string () =
  Alcotest.(check string) "delivered" "delivered" (Outcome.status_to_string Outcome.Delivered);
  Alcotest.(check string) "dead-end" "dead-end" (Outcome.status_to_string Outcome.Dead_end);
  Alcotest.(check string) "exhausted" "exhausted" (Outcome.status_to_string Outcome.Exhausted);
  Alcotest.(check string) "cutoff" "cutoff" (Outcome.status_to_string Outcome.Cutoff)

(* Reads a counter from the default registry; 0 when observability is off. *)
let default_counter name =
  match Obs.Metrics.find_value Obs.Metrics.default name with
  | Some (Obs.Metrics.Counter_v v) -> v
  | _ -> 0

let test_routing_increments_counters () =
  if not Obs.Metrics.enabled then ()
  else begin
    let g = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
    let obj = line_graph_objective ~target:3 [| 0.1; 0.2; 0.3; infinity |] in
    let routes0 = default_counter "route.greedy.routes" in
    let evals0 = default_counter "route.greedy.objective_evals" in
    let steps0 = default_counter "route.greedy.steps" in
    let dead0 = default_counter "route.greedy.dead_ends" in
    ignore (Greedy.route ~graph:g ~objective:obj ~source:0 ());
    Alcotest.(check int) "one route" 1 (default_counter "route.greedy.routes" - routes0);
    (* 3 hops: degree 1 + 2 + 2 neighbour scores examined along 0-1-2-3. *)
    Alcotest.(check int) "objective evals" 5
      (default_counter "route.greedy.objective_evals" - evals0);
    Alcotest.(check int) "steps accumulated" 3
      (default_counter "route.greedy.steps" - steps0);
    Alcotest.(check int) "no dead end" 0 (default_counter "route.greedy.dead_ends" - dead0);
    (* A dropped message increments the dead-end counter. *)
    let bad = line_graph_objective ~target:3 [| 0.5; 0.2; 0.3; infinity |] in
    ignore (Greedy.route ~graph:g ~objective:bad ~source:0 ());
    Alcotest.(check int) "dead end counted" 1
      (default_counter "route.greedy.dead_ends" - dead0)
  end

let test_path_if_delivered () =
  let g = Sparse_graph.Graph.of_edge_list ~n:2 [ (0, 1) ] in
  let ok = Greedy.route ~graph:g ~objective:(line_graph_objective ~target:1 [| 0.1; infinity |]) ~source:0 () in
  Alcotest.(check (option (list int))) "some path" (Some [ 0; 1 ]) (Outcome.path_if_delivered ok);
  let g2 = Sparse_graph.Graph.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let fail_obj = line_graph_objective ~target:2 [| 0.5; 0.1; infinity |] in
  let failed = Greedy.route ~graph:g2 ~objective:fail_obj ~source:0 () in
  Alcotest.(check (option (list int))) "none" None (Outcome.path_if_delivered failed)

let suite =
  [
    Alcotest.test_case "direct neighbor" `Quick test_direct_neighbor;
    Alcotest.test_case "source is target" `Quick test_source_is_target;
    Alcotest.test_case "monotone chain" `Quick test_monotone_chain;
    Alcotest.test_case "dead end" `Quick test_dead_end;
    Alcotest.test_case "isolated source" `Quick test_isolated_source;
    Alcotest.test_case "picks best neighbor" `Quick test_picks_best_neighbor;
    Alcotest.test_case "objective strictly increases" `Quick test_objective_strictly_increases;
    Alcotest.test_case "walk is a graph path" `Quick test_walk_is_a_path_in_graph;
    Alcotest.test_case "max_steps cutoff" `Quick test_max_steps_cutoff;
    Alcotest.test_case "target adjacency wins" `Quick test_delivery_when_target_adjacent;
    Alcotest.test_case "outcome to_string" `Quick test_outcome_to_string;
    Alcotest.test_case "routing increments counters" `Quick test_routing_increments_counters;
    Alcotest.test_case "path_if_delivered" `Quick test_path_if_delivered;
  ]
