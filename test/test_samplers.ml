(* The executable-specification tests of the GIRG generator: the cell
   sampler must produce the same edge distribution as the naive sampler,
   and the generated graphs must have the structural properties the model
   promises (degrees ~ weights, power-law tail, giant component). *)

open Girg

let fixed_instance_inputs ~seed ~count ~params =
  let rng = Prng.Rng.create ~seed in
  let weights = Instance.sample_weights ~rng ~params ~count in
  let positions = Instance.sample_positions ~rng ~params ~count in
  (weights, positions)

let total_edges sampler ~params ~weights ~positions ~trials ~seed0 =
  let kernel = Kernel.girg params in
  let total = ref 0 in
  for s = 1 to trials do
    let rng = Prng.Rng.create ~seed:(seed0 + s) in
    let edges =
      match sampler with
      | `Naive -> Naive.sample_edges ~rng ~kernel ~weights ~positions
      | `Cell -> Cell.sample_edges ~rng ~kernel ~weights ~positions ()
    in
    total := !total + Array.length edges
  done;
  !total

let check_agreement ~dim ~beta ~alpha ~count ~trials =
  let params = Params.make ~dim ~beta ~alpha ~n:count ~poisson_count:false () in
  let weights, positions = fixed_instance_inputs ~seed:97 ~count ~params in
  let naive = total_edges `Naive ~params ~weights ~positions ~trials ~seed0:100 in
  let cell = total_edges `Cell ~params ~weights ~positions ~trials ~seed0:9000 in
  let ratio = float_of_int cell /. float_of_int naive in
  (* Edge totals are sums of independent Bernoullis; with >= 1e4 expected
     edges the ratio concentrates within a few percent. *)
  if abs_float (ratio -. 1.0) > 0.05 then
    Alcotest.failf "cell/naive edge ratio %.4f (naive=%d cell=%d)" ratio naive cell

let test_agreement_d1 () =
  check_agreement ~dim:1 ~beta:2.5 ~alpha:(Params.Finite 2.0) ~count:300 ~trials:15

let test_agreement_d2 () =
  check_agreement ~dim:2 ~beta:2.5 ~alpha:(Params.Finite 2.0) ~count:300 ~trials:15

let test_agreement_d3 () =
  check_agreement ~dim:3 ~beta:2.2 ~alpha:(Params.Finite 1.5) ~count:200 ~trials:15

let test_agreement_d4 () =
  (* Exercises the generic-dimension code paths (Morton codes at d=4, the
     generic dist^d power). *)
  check_agreement ~dim:4 ~beta:2.5 ~alpha:(Params.Finite 2.0) ~count:200 ~trials:15

let test_agreement_l2_norm () =
  (* Norm-generic sampling: the L-inf cell separation bounds must stay valid
     envelopes when pair distances are measured in L2. *)
  let params =
    Girg.Params.make ~dim:2 ~beta:2.5 ~alpha:(Params.Finite 2.0)
      ~norm:Geometry.Torus.L2 ~n:300 ~poisson_count:false ()
  in
  let weights, positions = fixed_instance_inputs ~seed:98 ~count:300 ~params in
  let naive = total_edges `Naive ~params ~weights ~positions ~trials:15 ~seed0:200 in
  let cell = total_edges `Cell ~params ~weights ~positions ~trials:15 ~seed0:9200 in
  let ratio = float_of_int cell /. float_of_int naive in
  if abs_float (ratio -. 1.0) > 0.05 then
    Alcotest.failf "L2 cell/naive ratio %.4f (naive=%d cell=%d)" ratio naive cell

let test_agreement_threshold_exact () =
  (* alpha = infinity: all edges are deterministic given weights/positions,
     so the two samplers must agree EXACTLY. *)
  let params = Params.make ~dim:2 ~beta:2.7 ~alpha:Params.Infinite ~n:400 ~poisson_count:false () in
  let weights, positions = fixed_instance_inputs ~seed:3 ~count:400 ~params in
  let kernel = Kernel.girg params in
  let rng = Prng.Rng.create ~seed:1 in
  let naive = Naive.sample_edges ~rng ~kernel ~weights ~positions in
  let cell = Cell.sample_edges ~rng:(Prng.Rng.create ~seed:2) ~kernel ~weights ~positions () in
  let norm edges =
    List.sort compare (Array.to_list (Array.map (fun (u, v) -> (min u v, max u v)) edges))
  in
  Alcotest.(check (list (pair int int))) "identical edge sets" (norm naive) (norm cell)

let test_per_pair_distribution () =
  (* Monte-Carlo per-pair frequencies of the cell sampler vs the exact
     kernel probability on one fixed small instance. *)
  let count = 60 in
  let params = Params.make ~dim:2 ~beta:2.5 ~alpha:(Params.Finite 2.0) ~n:count ~poisson_count:false () in
  let weights, positions = fixed_instance_inputs ~seed:11 ~count ~params in
  let kernel = Kernel.girg params in
  let trials = 2500 in
  let counts = Array.make_matrix count count 0 in
  for s = 1 to trials do
    let rng = Prng.Rng.create ~seed:(40_000 + s) in
    Array.iter
      (fun (u, v) ->
        let u, v = (min u v, max u v) in
        counts.(u).(v) <- counts.(u).(v) + 1)
      (Cell.sample_edges ~rng ~kernel ~weights ~positions ())
  done;
  for u = 0 to count - 1 do
    for v = u + 1 to count - 1 do
      let dist = Geometry.Torus.dist_linf positions.(u) positions.(v) in
      let p = Kernel.girg_prob params ~wu:weights.(u) ~wv:weights.(v) ~dist in
      let observed = float_of_int counts.(u).(v) /. float_of_int trials in
      let tolerance = 0.03 +. (4.5 *. sqrt (p *. (1.0 -. p) /. float_of_int trials)) in
      if abs_float (observed -. p) > tolerance then
        Alcotest.failf "pair (%d,%d): exact %.4f observed %.4f" u v p observed
    done
  done

let test_degree_tracks_weight () =
  let params = Params.make ~dim:2 ~beta:2.5 ~c:0.5 ~n:20_000 () in
  let rng = Prng.Rng.create ~seed:5 in
  let inst = Instance.generate ~rng params in
  (* Lemma 7.2: E[deg v] = Theta(w_v).  Check the log-log slope ~ 1. *)
  let points =
    Array.of_seq
      (Seq.filter_map
         (fun v ->
           let d = Sparse_graph.Graph.degree inst.graph v in
           if d > 0 then Some (inst.weights.(v), float_of_int d) else None)
         (Seq.init (Sparse_graph.Graph.n inst.graph) Fun.id))
  in
  let fit = Stats.Regression.log_log points in
  if abs_float (fit.Stats.Regression.slope -. 1.0) > 0.15 then
    Alcotest.failf "degree/weight slope %.3f" fit.Stats.Regression.slope

let test_power_law_degrees () =
  let params = Params.make ~dim:2 ~beta:2.5 ~c:0.5 ~n:30_000 () in
  let rng = Prng.Rng.create ~seed:6 in
  let inst = Instance.generate ~rng params in
  (* The tail estimator needs its cutoff above the degree bulk. *)
  let d_min = 2 * int_of_float (Sparse_graph.Graph.avg_degree inst.graph) in
  match Sparse_graph.Gstats.power_law_exponent_mle ~d_min inst.graph with
  | None -> Alcotest.fail "no MLE"
  | Some b -> if abs_float (b -. 2.5) > 0.35 then Alcotest.failf "beta MLE %.2f" b

let test_giant_component () =
  let params = Params.make ~dim:2 ~beta:2.5 ~c:0.5 ~n:20_000 () in
  let rng = Prng.Rng.create ~seed:7 in
  let inst = Instance.generate ~rng params in
  let comps = Sparse_graph.Components.compute inst.graph in
  let frac =
    float_of_int (Sparse_graph.Components.giant_size comps)
    /. float_of_int (Sparse_graph.Graph.n inst.graph)
  in
  if frac < 0.5 then Alcotest.failf "giant fraction %.3f" frac

let test_generate_determinism () =
  let params = Params.make ~dim:2 ~beta:2.5 ~n:2000 () in
  let a = Instance.generate ~rng:(Prng.Rng.create ~seed:9) params in
  let b = Instance.generate ~rng:(Prng.Rng.create ~seed:9) params in
  Alcotest.(check int) "same n" (Sparse_graph.Graph.n a.graph) (Sparse_graph.Graph.n b.graph);
  Alcotest.(check int) "same m" (Sparse_graph.Graph.m a.graph) (Sparse_graph.Graph.m b.graph);
  Alcotest.(check bool) "same weights" true (a.weights = b.weights)

let test_generate_with_pins_data () =
  let params = Params.make ~dim:1 ~beta:2.5 ~n:50 ~poisson_count:false () in
  let weights = Array.make 50 2.0 in
  let positions = Array.init 50 (fun i -> [| float_of_int i /. 50.0 |]) in
  let rng = Prng.Rng.create ~seed:1 in
  let inst = Instance.generate_with ~rng ~params ~weights ~positions () in
  Alcotest.(check bool) "weights kept" true (inst.weights == weights);
  Alcotest.(check int) "n" 50 (Sparse_graph.Graph.n inst.graph)

let test_connection_prob_accessor () =
  let params = Params.make ~dim:1 ~beta:2.5 ~n:10 ~poisson_count:false () in
  let weights = [| 1.0; 1.0 |] in
  let positions = [| [| 0.0 |]; [| 0.5 |] |] in
  let rng = Prng.Rng.create ~seed:1 in
  let inst = Instance.generate_with ~rng ~params ~weights ~positions () in
  Alcotest.(check (float 1e-12)) "matches kernel"
    (Kernel.girg_prob params ~wu:1.0 ~wv:1.0 ~dist:0.5)
    (Instance.connection_prob inst 0 1)

let test_generate_pinned () =
  let params = Params.make ~dim:2 ~beta:2.5 ~w_min:1.0 ~n:500 () in
  let pinned = [ (7.5, [| 0.25; 0.75 |]); (1.0, [| 0.1; 0.1 |]) ] in
  let inst =
    Instance.generate_pinned ~rng:(Prng.Rng.create ~seed:33) ~params ~pinned ()
  in
  Alcotest.(check (float 0.0)) "pinned weight 0" 7.5 inst.weights.(0);
  Alcotest.(check (float 0.0)) "pinned weight 1" 1.0 inst.weights.(1);
  Alcotest.(check (float 0.0)) "pinned position" 0.25 inst.positions.(0).(0);
  Alcotest.(check (float 0.0)) "pinned position y" 0.75 inst.positions.(0).(1);
  Alcotest.check_raises "weight below w_min"
    (Invalid_argument "Girg.generate_pinned: pinned weight below w_min") (fun () ->
      ignore
        (Instance.generate_pinned ~rng:(Prng.Rng.create ~seed:1) ~params
           ~pinned:[ (0.5, [| 0.0; 0.0 |]) ] ()));
  Alcotest.check_raises "wrong dimension"
    (Invalid_argument "Girg.generate_pinned: pinned position has wrong dimension")
    (fun () ->
      ignore
        (Instance.generate_pinned ~rng:(Prng.Rng.create ~seed:1) ~params
           ~pinned:[ (2.0, [| 0.0 |]) ] ()))

let test_capped_vertices_path () =
  (* Force the cell sampler's exhaustive capped-vertex branch by lowering the
     kernel's weight cap; in the threshold model all edges are deterministic,
     so the result must still equal the naive sampler's exactly. *)
  let params = Params.make ~dim:2 ~beta:2.7 ~alpha:Params.Infinite ~n:300 ~poisson_count:false () in
  let weights, positions = fixed_instance_inputs ~seed:44 ~count:300 ~params in
  let base = Kernel.girg params in
  let capped_kernel =
    { base with Kernel.weight_cap = Stats.Summary.percentile weights ~p:0.8 }
  in
  let norm edges =
    List.sort compare (Array.to_list (Array.map (fun (u, v) -> (min u v, max u v)) edges))
  in
  let naive = Naive.sample_edges ~rng:(Prng.Rng.create ~seed:1) ~kernel:base ~weights ~positions in
  let cell =
    Cell.sample_edges ~rng:(Prng.Rng.create ~seed:2) ~kernel:capped_kernel ~weights ~positions ()
  in
  Alcotest.(check (list (pair int int))) "capped path exact" (norm naive) (norm cell)

let test_pvt_ordering_matches_phi () =
  (* Section 2.2: maximising p_vt is equivalent to maximising phi wherever
     p_vt < 1 (the saturated region ties at 1, which phi refines). *)
  let params = Params.make ~dim:2 ~beta:2.5 ~alpha:(Params.Finite 2.0) ~n:400 () in
  let inst = Instance.generate ~rng:(Prng.Rng.create ~seed:45) params in
  let count = Sparse_graph.Graph.n inst.graph in
  let target = count / 2 in
  let phi v =
    inst.weights.(v)
    /. (params.Params.w_min *. float_of_int params.Params.n
       *. (Geometry.Torus.dist_linf inst.positions.(v) inst.positions.(target) ** 2.0))
  in
  let rng = Prng.Rng.create ~seed:46 in
  for _ = 1 to 2000 do
    let u = Prng.Rng.int rng count and v = Prng.Rng.int rng count in
    if u <> target && v <> target && u <> v then begin
      let pu = Instance.connection_prob inst u target in
      let pv = Instance.connection_prob inst v target in
      if pu < 1.0 && pv < 1.0 && pu > pv && phi u <= phi v then
        Alcotest.fail "p_vt ordering disagrees with phi ordering"
    end
  done

let test_empty_and_tiny () =
  let kernel = Kernel.girg (Params.make ~n:10 ()) in
  let rng = Prng.Rng.create ~seed:1 in
  Alcotest.(check int) "no vertices" 0
    (Array.length (Cell.sample_edges ~rng ~kernel ~weights:[||] ~positions:[||] ()));
  Alcotest.(check int) "one vertex" 0
    (Array.length
       (Cell.sample_edges ~rng ~kernel ~weights:[| 1.0 |] ~positions:[| [| 0.1; 0.2 |] |] ()))

let test_cell_near_linear_scaling () =
  (* The whole point of the cell sampler: its work scales near-linearly.  A
     quadratic sampler would multiply tested pairs by 16 when n quadruples;
     we require far less. *)
  let pairs_tested count =
    let params = Params.make ~dim:2 ~beta:2.5 ~c:0.25 ~n:count ~poisson_count:false () in
    let weights, positions = fixed_instance_inputs ~seed:55 ~count ~params in
    let _, stats =
      Cell.sample_edges_stats ~rng:(Prng.Rng.create ~seed:1)
        ~kernel:(Kernel.girg params) ~weights ~positions ()
    in
    stats.Cell.type1_pairs + stats.Cell.type2_trials
  in
  let small = pairs_tested 10_000 and large = pairs_tested 40_000 in
  let ratio = float_of_int large /. float_of_int small in
  if ratio > 8.0 then Alcotest.failf "work ratio %.1f for 4x vertices (quadratic?)" ratio

let test_cell_stats_sane () =
  let count = 2000 in
  let params = Params.make ~dim:2 ~beta:2.5 ~n:count ~poisson_count:false () in
  let weights, positions = fixed_instance_inputs ~seed:21 ~count ~params in
  let kernel = Kernel.girg params in
  let rng = Prng.Rng.create ~seed:3 in
  let edges, stats = Cell.sample_edges_stats ~rng ~kernel ~weights ~positions () in
  Alcotest.(check bool) "visited cells" true (stats.Cell.cells_visited > 0);
  Alcotest.(check bool) "type1 bounded" true
    (stats.Cell.type1_pairs < count * count / 2);
  Alcotest.(check bool) "edges nonzero" true (Array.length edges > 0)

let suite =
  [
    Alcotest.test_case "cell=naive d=1" `Slow test_agreement_d1;
    Alcotest.test_case "cell=naive d=2" `Slow test_agreement_d2;
    Alcotest.test_case "cell=naive d=3" `Slow test_agreement_d3;
    Alcotest.test_case "cell=naive d=4" `Slow test_agreement_d4;
    Alcotest.test_case "cell=naive L2 norm" `Slow test_agreement_l2_norm;
    Alcotest.test_case "threshold: identical edge sets" `Quick test_agreement_threshold_exact;
    Alcotest.test_case "per-pair distribution" `Slow test_per_pair_distribution;
    Alcotest.test_case "degree tracks weight (Lemma 7.2)" `Quick test_degree_tracks_weight;
    Alcotest.test_case "power-law degrees" `Quick test_power_law_degrees;
    Alcotest.test_case "giant component" `Quick test_giant_component;
    Alcotest.test_case "generate determinism" `Quick test_generate_determinism;
    Alcotest.test_case "generate_with pins data" `Quick test_generate_with_pins_data;
    Alcotest.test_case "connection_prob accessor" `Quick test_connection_prob_accessor;
    Alcotest.test_case "generate_pinned" `Quick test_generate_pinned;
    Alcotest.test_case "capped-vertex sampler path" `Quick test_capped_vertices_path;
    Alcotest.test_case "p_vt ordering = phi ordering" `Quick test_pvt_ordering_matches_phi;
    Alcotest.test_case "empty and tiny inputs" `Quick test_empty_and_tiny;
    Alcotest.test_case "cell near-linear scaling" `Slow test_cell_near_linear_scaling;
    Alcotest.test_case "cell sampler stats" `Quick test_cell_stats_sane;
  ]
