let () =
  Alcotest.run "smallworld"
    [
      ("prng.rng", Test_rng.suite);
      ("prng.dist", Test_dist.suite);
      ("geometry.torus", Test_torus.suite);
      ("geometry.morton", Test_morton.suite);
      ("geometry.grid", Test_grid.suite);
      ("sparse_graph.graph", Test_graph.suite);
      ("sparse_graph.bfs", Test_bfs.suite);
      ("sparse_graph.components", Test_components.suite);
      ("sparse_graph.gstats", Test_gstats.suite);
      ("stats.summary", Test_summary.suite);
      ("stats.histogram", Test_histogram.suite);
      ("stats.regression", Test_regression.suite);
      ("stats.table", Test_table.suite);
      ("girg.params", Test_girg_params.suite);
      ("girg.kernel", Test_kernel.suite);
      ("girg.samplers", Test_samplers.suite);
      ("hyperbolic.hrg", Test_hrg.suite);
      ("hyperbolic.embed", Test_embed.suite);
      ("girg.chung_lu", Test_chung_lu.suite);
      ("kleinberg.lattice", Test_lattice.suite);
      ("core.heap", Test_heap.suite);
      ("core.objective", Test_objective.suite);
      ("core.greedy", Test_greedy.suite);
      ("core.patching", Test_patching.suite);
      ("core.gravity_pressure", Test_gravity.suite);
      ("core.trajectory", Test_trajectory.suite);
      ("core.layers", Test_layers.suite);
      ("core.faulty", Test_faulty.suite);
      ("persistence.io", Test_io.suite);
      ("obs", Test_obs.suite);
      ("obs.bench", Test_bench.suite);
      ("netsim", Test_netsim.suite);
      ("experiments.workload", Test_workload.suite);
      ("experiments.registry", Test_registry.suite);
    ]
