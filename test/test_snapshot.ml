(* Binary snapshots: round-trips, text/binary auto-detection, mmap-CSR vs
   heap-CSR behavioural equality, and malformed-file rejection. *)

let with_tmp ext f =
  let path = Filename.temp_file "smallworld-snap" ext in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let expect_error what = function
  | Ok (_ : Girg.Instance.t) -> Alcotest.failf "%s: expected Error, got Ok" what
  | Error (_ : string) -> ()

let instance =
  lazy
    (let params = Girg.Params.make ~n:900 ~dim:2 ~poisson_count:false () in
     Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:11) params)

let graphs_equal what a b =
  let module G = Sparse_graph.Graph in
  Alcotest.(check int) (what ^ ": n") (G.n a) (G.n b);
  Alcotest.(check int) (what ^ ": m") (G.m a) (G.m b);
  for v = 0 to G.n a - 1 do
    if G.neighbors a v <> G.neighbors b v then
      Alcotest.failf "%s: adjacency of vertex %d differs" what v
  done

let instances_equal what (a : Girg.Instance.t) (b : Girg.Instance.t) =
  Alcotest.(check string)
    (what ^ ": params")
    (Girg.Params.to_string a.params)
    (Girg.Params.to_string b.params);
  if a.weights <> b.weights then Alcotest.failf "%s: weights differ" what;
  if a.positions <> b.positions then Alcotest.failf "%s: positions differ" what;
  graphs_equal what a.graph b.graph

let test_binary_round_trip () =
  let inst = Lazy.force instance in
  with_tmp ".bin" (fun path ->
      Girg.Store.save_binary ~path inst;
      match Girg.Store.load ~path with
      | Error e -> Alcotest.failf "binary load failed: %s" e
      | Ok loaded -> instances_equal "binary round-trip" inst loaded)

let test_text_binary_agree () =
  let inst = Lazy.force instance in
  with_tmp ".txt" (fun text_path ->
      with_tmp ".bin" (fun bin_path ->
          Girg.Store.save ~path:text_path inst;
          Girg.Store.save_binary ~path:bin_path inst;
          match (Girg.Store.load ~path:text_path, Girg.Store.load ~path:bin_path) with
          | Ok a, Ok b -> instances_equal "text vs binary" a b
          | Error e, _ -> Alcotest.failf "text load failed: %s" e
          | _, Error e -> Alcotest.failf "binary load failed: %s" e))

(* The mmap-backed CSR must be behaviourally indistinguishable from the
   heap-backed one: same routes, same BFS distances, same statistics. *)
let test_mmap_equals_heap () =
  let inst = Lazy.force instance in
  with_tmp ".bin" (fun path ->
      Girg.Store.save_binary ~path inst;
      match (Girg.Store.load ~path, Girg.Store.load_mmap ~path) with
      | Error e, _ -> Alcotest.failf "heap load failed: %s" e
      | _, Error e -> Alcotest.failf "mmap load failed: %s" e
      | Ok heap, Ok mapped ->
          instances_equal "mmap vs heap sections" heap mapped;
          let module G = Sparse_graph.Graph in
          let n = G.n heap.Girg.Instance.graph in
          (* Greedy routes agree step for step (same outcome on a pair grid). *)
          List.iter
            (fun (source, target) ->
              let route (i : Girg.Instance.t) =
                Greedy_routing.Greedy.route ~graph:i.Girg.Instance.graph
                  ~objective:(Greedy_routing.Objective.girg_phi i ~target)
                  ~source ()
              in
              if route heap <> route mapped then
                Alcotest.failf "route %d->%d differs between backings" source target)
            [ (0, n - 1); (1, n / 2); (n / 3, 2 * n / 3) ];
          let d_heap = Sparse_graph.Bfs.distances heap.Girg.Instance.graph ~source:0 in
          let d_mapped = Sparse_graph.Bfs.distances mapped.Girg.Instance.graph ~source:0 in
          Alcotest.(check (array int)) "BFS distances" d_heap d_mapped;
          Alcotest.(check (list (pair int int)))
            "degree histogram"
            (Sparse_graph.Gstats.degree_histogram heap.Girg.Instance.graph)
            (Sparse_graph.Gstats.degree_histogram mapped.Girg.Instance.graph);
          Alcotest.(check int)
            "max degree"
            (G.max_degree heap.Girg.Instance.graph)
            (G.max_degree mapped.Girg.Instance.graph))

let test_mmap_requires_binary () =
  let inst = Lazy.force instance in
  with_tmp ".txt" (fun path ->
      Girg.Store.save ~path inst;
      expect_error "mmap of text snapshot" (Girg.Store.load_mmap ~path))

(* Offsets of the fixed fields (see the layout table in store.ml). *)
let count_offset = 50
let m_offset = 58

let test_binary_rejection () =
  let inst = Lazy.force instance in
  with_tmp ".bin" (fun path ->
      Girg.Store.save_binary ~path inst;
      let original = read_file path in
      let patched patch =
        let b = Bytes.of_string original in
        patch b;
        Bytes.to_string b
      in
      with_tmp ".bad" (fun bad ->
          (* Truncated: drop the tail. *)
          write_file bad (String.sub original 0 (String.length original - 8));
          expect_error "truncated snapshot" (Girg.Store.load ~path:bad);
          expect_error "truncated snapshot (mmap)" (Girg.Store.load_mmap ~path:bad);
          (* Bad magic. *)
          write_file bad (patched (fun b -> Bytes.set b 0 'Z'));
          expect_error "bad magic" (Girg.Store.load ~path:bad);
          (* Endianness tag mismatch. *)
          write_file bad (patched (fun b -> Bytes.set_int32_le b 8 0x04030201l));
          expect_error "endian tag" (Girg.Store.load ~path:bad);
          (* Oversized counts must be rejected before any allocation. *)
          write_file bad (patched (fun b -> Bytes.set_int64_le b m_offset 0x2000000000000L));
          expect_error "huge m" (Girg.Store.load ~path:bad);
          write_file bad
            (patched (fun b -> Bytes.set_int64_le b count_offset 0x2000000000000000L));
          expect_error "huge count" (Girg.Store.load ~path:bad);
          (* Off-by-one count: the size cross-check catches it. *)
          let count = Array.length inst.Girg.Instance.weights in
          write_file bad
            (patched (fun b -> Bytes.set_int64_le b m_offset (Int64.of_int (count + 1))));
          expect_error "inflated m" (Girg.Store.load ~path:bad);
          (* Empty file. *)
          write_file bad "";
          expect_error "empty file" (Girg.Store.load ~path:bad)))

(* Satellite regression: a text header promising an absurd edge count used
   to crash Edge_buf.create with Invalid_argument; it must return Error. *)
let test_text_huge_edge_count () =
  with_tmp ".txt" (fun path ->
      write_file path
        (String.concat "\n"
           [
             "# smallworld-girg n=1 dim=1 beta=2.5 w_min=1.0 alpha=2.0 c=1.0 norm=linf \
              poisson=false count=1";
             "0 1.0 0.5";
             "edges 4611686018427387902";
             "";
           ]);
      expect_error "huge text edge count" (Girg.Store.load ~path))

let suite =
  [
    Alcotest.test_case "binary snapshot round-trips" `Quick test_binary_round_trip;
    Alcotest.test_case "text and binary loads agree" `Quick test_text_binary_agree;
    Alcotest.test_case "mmap CSR equals heap CSR" `Quick test_mmap_equals_heap;
    Alcotest.test_case "mmap requires a binary snapshot" `Quick test_mmap_requires_binary;
    Alcotest.test_case "malformed binary snapshots are rejected" `Quick test_binary_rejection;
    Alcotest.test_case "huge text edge count yields Error" `Quick test_text_huge_edge_count;
  ]
