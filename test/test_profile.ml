(* Trace propagation and profile export: Span.probe snapshot semantics,
   the smallworld.trace.v1 codec (exact round-trip), the JSON parser's
   escape error paths, multi-record trace assembly (Profile.merge) with
   the critical-path invariant, and the Chrome / folded-stack
   exporters' output contracts. *)

module S = Obs.Span
module X = Obs.Export
module P = Obs.Profile

let substr hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let span ?(count = 1) ?(wall = 0.0) ?(alloc = 0.0) ?(children = []) name =
  { S.name; count; wall_s = wall; alloc_bytes = alloc; children }

(* ------------------------------------------------------------------ *)
(* Span.probe                                                          *)

let test_probe_semantics () =
  Obs.Trace.clear ();
  let v, t1 =
    S.probe ~name:"probe.test" (fun () ->
        S.with_ ~name:"probe.child" (fun () -> ());
        41 + 1)
  in
  Alcotest.(check int) "probe passes the result through" 42 v;
  if not S.enabled then
    Alcotest.(check bool) "disabled probe returns no tree" true (t1 = None)
  else begin
    let t1 =
      match t1 with Some t -> t | None -> Alcotest.fail "probe lost its tree"
    in
    Alcotest.(check string) "root name" "probe.test" t1.S.name;
    Alcotest.(check int) "single invocation" 1 t1.S.count;
    Alcotest.(check (list string)) "nested child captured" [ "probe.child" ]
      (List.map (fun (c : S.t) -> c.S.name) t1.S.children);
    Alcotest.(check bool) "wall clock ran" true (t1.S.wall_s >= 0.0);
    (* A second same-name probe merges into the global profile... *)
    let _, t2 = S.probe ~name:"probe.test" (fun () -> ()) in
    (match Obs.Trace.find "probe.test" with
    | Some root -> Alcotest.(check int) "global profile merged both" 2 root.S.count
    | None -> Alcotest.fail "probe did not land in the global roots");
    (* ...while each captured tree stays frozen at its own invocation
       (Span.time's node would have kept accumulating). *)
    Alcotest.(check int) "first snapshot frozen" 1 t1.S.count;
    (match t2 with
    | Some t2 -> Alcotest.(check int) "second snapshot frozen" 1 t2.S.count
    | None -> Alcotest.fail "second probe lost its tree");
    Obs.Trace.clear ()
  end

let test_copy_is_deep () =
  let original = span ~wall:2.0 ~children:[ span ~wall:1.0 "child" ] "root" in
  let dup = S.copy original in
  Alcotest.(check bool) "equal by structure" true (dup = original);
  dup.S.count <- 99;
  (List.hd dup.S.children).S.wall_s <- 7.0;
  dup.S.children <- span "extra" :: dup.S.children;
  Alcotest.(check int) "original count untouched" 1 original.S.count;
  Alcotest.(check (float 0.0)) "original child wall untouched" 1.0
    (List.hd original.S.children).S.wall_s;
  Alcotest.(check int) "original children untouched" 1
    (List.length original.S.children)

(* ------------------------------------------------------------------ *)
(* JSON parser escape error paths                                      *)

let parse_err what input expect =
  match X.json_of_string input with
  | Ok _ -> Alcotest.failf "%s: %S parsed successfully" what input
  | Error m ->
      if not (substr m expect) then
        Alcotest.failf "%s: error %S does not mention %S" what m expect

let test_parser_escape_errors () =
  parse_err "truncated \\u" {|"\u12"|} "truncated \\u escape";
  parse_err "truncated \\u at eof" {|"\u|} "truncated \\u escape";
  parse_err "bad \\u hex" {|"\uzz12"|} "bad \\u escape \\uzz12";
  parse_err "bad \\u punctuation" {|"ab\u+123c"|} "bad \\u escape \\u+123";
  parse_err "unterminated string" {|"abc|} "unterminated string";
  parse_err "unterminated escape" {|"abc\|} "unterminated escape";
  parse_err "unknown escape" {|"\q"|} "bad escape \\q";
  (* The adjacent good paths still parse. *)
  (match X.json_of_string {|"A\u00e9"|} with
  | Ok (X.Str s) -> Alcotest.(check string) "\\u decodes" "A\xe9" s
  | Ok _ -> Alcotest.fail "\\u string parsed to a non-string"
  | Error m -> Alcotest.failf "valid \\u rejected: %s" m);
  match X.json_of_string {|"a\"b\\c"|} with
  | Ok (X.Str s) -> Alcotest.(check string) "simple escapes" "a\"b\\c" s
  | Ok _ -> Alcotest.fail "escaped string parsed to a non-string"
  | Error m -> Alcotest.failf "valid escapes rejected: %s" m

(* ------------------------------------------------------------------ *)
(* Event codec: event_of_json inverts event_to_json                    *)

let test_event_codec_round_trip () =
  let open Obs.Events in
  let samples =
    [
      { seq = 0; time = 1.5; payload = Route_hop { route = 3; hop = 0; vertex = 17; objective = 0.25 } };
      { seq = 1; time = 2.0; payload = Dead_end { route = 3; vertex = 9 } };
      { seq = 2; time = 2.25; payload = Patch_enter { route = 4; vertex = 1; phi = 0.75 } };
      { seq = 3; time = 2.5; payload = Patch_exit { route = 4; vertex = 1; phi = 0.5 } };
      { seq = 4; time = 3.0; payload = Phase_switch { route = 5; vertex = 2; phase = "pressure" } };
      { seq = 5; time = 3.5;
        payload = Msg_send { trace = 1; msg = 10; parent = -1; src = 0; dst = 4; kind = "probe"; sim_time = 0.5 } };
      { seq = 6; time = 4.0;
        payload = Msg_recv { trace = 1; msg = 10; parent = 7; src = 0; dst = 4; kind = "probe"; sim_time = 0.75 } };
    ]
  in
  List.iter
    (fun ev ->
      let line = X.event_line ev in
      match X.json_of_string line with
      | Error m -> Alcotest.failf "event line is not JSON: %s (%s)" line m
      | Ok j -> (
          match X.event_of_json j with
          | Ok ev' -> Alcotest.(check bool) ("round-trip " ^ line) true (ev = ev')
          | Error m -> Alcotest.failf "event line did not decode: %s (%s)" line m))
    samples;
  (* A delivered route's terminal hop has no objective: the emitter
     writes null, the decoder must map it back to nan. *)
  let terminal =
    { seq = 9; time = 5.0;
      payload = Route_hop { route = 1; hop = 4; vertex = 8; objective = Float.nan } }
  in
  (match X.json_of_string (X.event_line terminal) with
  | Ok j -> (
      match X.event_of_json j with
      | Ok ev' ->
          (* compare, not (=): nan <> nan structurally. *)
          Alcotest.(check bool) "nan objective survives as nan" true
            (compare terminal ev' = 0)
      | Error m -> Alcotest.failf "terminal hop did not decode: %s" m)
  | Error m -> Alcotest.failf "terminal hop line is not JSON: %s" m);
  match X.event_of_json (X.Obj [ ("type", X.Str "warp") ]) with
  | Ok _ -> Alcotest.fail "unknown event type decoded"
  | Error m -> Alcotest.(check bool) "unknown type named" true (substr m "warp")

(* ------------------------------------------------------------------ *)
(* trace.v1 codec                                                      *)

let sample_record =
  {
    P.tr_trace = "req-00ff";
    tr_span = -12;
    tr_parent = Some 3;
    tr_origin = "server";
    tr_t0 = 1754650000.5;
    tr_root =
      span ~wall:0.25 ~alloc:2048.0
        ~children:
          [
            span ~wall:0.0 "stage.queue_wait";
            span ~count:2 ~wall:0.125 ~alloc:1024.0
              ~children:[ span ~wall:0.0625 "route.greedy" ]
              "stage.compute";
            span ~wall:0.01 "semi;colon and space";
          ]
        "server.request";
  }

let test_trace_record_round_trip () =
  let records =
    [
      sample_record;
      { P.tr_trace = "cli-1"; tr_span = 1; tr_parent = None; tr_origin = "cli";
        tr_t0 = 0.0; tr_root = span ~wall:1.0 "client.route" };
    ]
  in
  List.iter
    (fun r ->
      let line = X.trace_line r in
      Alcotest.(check bool) "line carries the schema tag" true
        (substr line X.trace_schema_version);
      match X.json_of_string line with
      | Error m -> Alcotest.failf "trace line is not JSON: %s (%s)" line m
      | Ok j -> (
          match X.trace_of_json j with
          | Ok r' -> Alcotest.(check bool) ("exact round-trip " ^ line) true (r = r')
          | Error m -> Alcotest.failf "trace line did not decode: %s (%s)" line m))
    records;
  (* A record with the wrong schema tag must be refused. *)
  match
    X.trace_of_json
      (X.Obj [ ("schema", X.Str "smallworld.nope.v9"); ("trace", X.Str "x") ])
  with
  | Ok _ -> Alcotest.fail "wrong schema decoded"
  | Error m -> Alcotest.(check bool) "schema named in error" true (substr m "nope")

(* ------------------------------------------------------------------ *)
(* Profile.merge                                                       *)

let client_record ?(trace = "t1") ?(span_id = 1) root_name =
  { P.tr_trace = trace; tr_span = span_id; tr_parent = None; tr_origin = "cli";
    tr_t0 = 10.0; tr_root = span ~wall:1.0 root_name }

let server_record ?(trace = "t1") ?(span_id = -7) ?(parent = 1) () =
  { P.tr_trace = trace; tr_span = span_id; tr_parent = Some parent;
    tr_origin = "server"; tr_t0 = 10.1;
    tr_root = span ~wall:0.5 ~children:[ span ~wall:0.25 "stage.compute" ] "server.request" }

let test_merge_grafts_server_under_client () =
  let client = client_record "client.route" in
  let server = server_record () in
  (match P.merge [ server; client ] with
  | Error m -> Alcotest.failf "merge failed: %s" m
  | Ok merged ->
      Alcotest.(check string) "root is the client record" "cli" merged.P.tr_origin;
      Alcotest.(check (list string)) "server grafted under the client span"
        [ "server.request" ]
        (List.map (fun (c : S.t) -> c.S.name) merged.P.tr_root.S.children);
      (* Merge works on copies: the inputs are not mutated. *)
      Alcotest.(check int) "input record untouched" 0
        (List.length client.P.tr_root.S.children));
  (* Records of another trace are ignored when trace_id selects. *)
  let other = client_record ~trace:"t2" "client.other" in
  match P.merge ~trace_id:"t2" [ client_record "client.route"; server_record (); other ] with
  | Error m -> Alcotest.failf "selective merge failed: %s" m
  | Ok merged ->
      Alcotest.(check string) "t2 selected" "client.other" merged.P.tr_root.S.name

let test_merge_error_cases () =
  (match P.merge [] with
  | Ok _ -> Alcotest.fail "empty merge succeeded"
  | Error m -> Alcotest.(check bool) "empty named" true (substr m "no trace records"));
  (match P.merge ~trace_id:"ghost" [ client_record "c" ] with
  | Ok _ -> Alcotest.fail "ghost trace merged"
  | Error m -> Alcotest.(check bool) "ghost named" true (substr m "ghost"));
  (match P.merge [ client_record ~span_id:1 "a"; client_record ~span_id:2 "b" ] with
  | Ok _ -> Alcotest.fail "two roots merged"
  | Error m -> Alcotest.(check bool) "root count reported" true (substr m "2 root records"));
  (* An orphan parent reference degrades to a root, not a crash. *)
  match P.merge [ server_record ~parent:999 () ] with
  | Ok merged ->
      Alcotest.(check string) "orphan is its own root" "server.request"
        merged.P.tr_root.S.name
  | Error m -> Alcotest.failf "orphan server record did not merge: %s" m

let test_read_channel_collects_errors () =
  let path = Filename.temp_file "smallworld_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Out_channel.with_open_text path (fun oc ->
      output_string oc (X.trace_line sample_record);
      output_string oc "\n\nthis is not json\n";
      output_string oc (X.trace_line (client_record "client.route"));
      output_char oc '\n');
  let records, errors = In_channel.with_open_text path P.read_channel in
  Alcotest.(check int) "both good records read" 2 (List.length records);
  Alcotest.(check int) "one bad line reported" 1 (List.length errors);
  Alcotest.(check bool) "error cites the line number" true
    (substr (List.hd errors) "line 3");
  Alcotest.(check (list string)) "first-seen trace order" [ "req-00ff"; "t1" ]
    (P.trace_ids records)

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)

let test_critical_path_telescopes () =
  let tree =
    span ~wall:10.0
      ~children:
        [
          span ~wall:6.0 ~children:[ span ~wall:5.0 "a1"; span ~wall:0.5 "a2" ] "a";
          span ~wall:3.0 "b";
        ]
      "root"
  in
  let path = P.critical_path tree in
  Alcotest.(check (list string)) "heaviest chain" [ "root"; "a"; "a1" ]
    (List.map (fun (h : P.hop) -> h.P.cp_name) path);
  List.iter2
    (fun (h : P.hop) (wall, self) ->
      Alcotest.(check (float 1e-12)) (h.P.cp_name ^ " wall") wall h.P.cp_wall_s;
      Alcotest.(check (float 1e-12)) (h.P.cp_name ^ " self") self h.P.cp_self_s)
    path
    [ (10.0, 4.0); (6.0, 1.0); (5.0, 5.0) ];
  (* The telescoping invariant: self contributions sum to the root's
     wall time exactly — this is what makes "within 10% of measured
     wall" a meaningful end-to-end assertion. *)
  Alcotest.(check (float 1e-12)) "sum of self = root wall" tree.S.wall_s
    (P.total path);
  Alcotest.(check (list string)) "leaf-only tree" [ "leaf" ]
    (List.map (fun (h : P.hop) -> h.P.cp_name) (P.critical_path (span ~wall:1.0 "leaf")))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let test_chrome_trace_shape () =
  (* Children deliberately overcommit their parent: 0.7 + 0.7 > 1.0;
     the exporter must clamp rather than emit overlapping siblings. *)
  let tree =
    span ~wall:1.0 ~children:[ span ~wall:0.7 "c1"; span ~wall:0.7 "c2" ] "root"
  in
  match X.json_of_string (X.chrome_trace ~t0:100.0 tree) with
  | Error m -> Alcotest.failf "chrome trace is not JSON: %s" m
  | Ok doc ->
      let events =
        match X.member "traceEvents" doc with
        | Some (X.Arr events) -> events
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check int) "one event per span" 3 (List.length events);
      let field name j =
        match X.member name j with
        | Some v -> v
        | None -> Alcotest.failf "event lacks %S" name
      in
      List.iter
        (fun e ->
          Alcotest.(check bool) "complete events" true (field "ph" e = X.Str "X");
          Alcotest.(check bool) "pid pinned" true (field "pid" e = X.Int 1))
        events;
      let by_name name =
        List.find (fun e -> field "name" e = X.Str name) events
      in
      let ts j = match field "ts" j with
        | X.Float f -> f
        | X.Int i -> float_of_int i
        | _ -> Alcotest.fail "ts is not a number"
      and dur j = match field "dur" j with
        | X.Float f -> f
        | X.Int i -> float_of_int i
        | _ -> Alcotest.fail "dur is not a number"
      in
      let root = by_name "root" and c1 = by_name "c1" and c2 = by_name "c2" in
      Alcotest.(check (float 1e-6)) "root starts at t0 (µs)" 1e8 (ts root);
      Alcotest.(check (float 1e-6)) "root dur µs" 1e6 (dur root);
      Alcotest.(check (float 1e-6)) "c1 keeps its wall" 0.7e6 (dur c1);
      Alcotest.(check (float 1e-6)) "c2 packed after c1" (ts c1 +. dur c1) (ts c2);
      Alcotest.(check (float 1e-3)) "c2 clamped to the parent" 0.3e6 (dur c2);
      Alcotest.(check bool) "children stay inside the parent" true
        (ts c2 +. dur c2 <= ts root +. dur root +. 1e-6)

let test_folded_stacks_grammar () =
  let tree =
    (* Root self time is 0 too (0.5 = 0.5 + 0.0): interior zero-self
       nodes vanish from the output while their paths remain. *)
    span ~wall:0.5
      ~children:
        [
          (* Interior node with zero self time: omitted. *)
          span ~wall:0.5 ~children:[ span ~wall:0.5 "leaf one" ] "mid;dle";
          (* Zero-wall leaf: kept, so the path is visible. *)
          span ~wall:0.0 "empty_leaf";
        ]
      "root"
  in
  let folded = X.folded_stacks tree in
  let lines = String.split_on_char '\n' folded |> List.filter (fun l -> l <> "") in
  (* Every line is "stack N" with sanitized names and integer self µs. *)
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "folded line lacks a count: %S" line
      | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          (match int_of_string_opt v with
          | Some n -> Alcotest.(check bool) "non-negative" true (n >= 0)
          | None -> Alcotest.failf "folded count is not an integer: %S" line);
          let stack = String.sub line 0 i in
          Alcotest.(check bool) "no spaces inside the stack" false
            (String.contains stack ' '))
    lines;
  Alcotest.(check (list string)) "paths, sanitized, zero-self interior omitted"
    [ "root;mid:dle;leaf_one 500000"; "root;empty_leaf 0" ]
    lines

let suite =
  [
    Alcotest.test_case "probe freezes a per-invocation tree" `Quick test_probe_semantics;
    Alcotest.test_case "span copy is deep" `Quick test_copy_is_deep;
    Alcotest.test_case "parser escape error paths" `Quick test_parser_escape_errors;
    Alcotest.test_case "event codec round-trips" `Quick test_event_codec_round_trip;
    Alcotest.test_case "trace.v1 exact round-trip" `Quick test_trace_record_round_trip;
    Alcotest.test_case "merge grafts server under client" `Quick
      test_merge_grafts_server_under_client;
    Alcotest.test_case "merge error cases" `Quick test_merge_error_cases;
    Alcotest.test_case "trace reader collects line errors" `Quick
      test_read_channel_collects_errors;
    Alcotest.test_case "critical path telescopes to root wall" `Quick
      test_critical_path_telescopes;
    Alcotest.test_case "chrome trace shape and clamping" `Quick test_chrome_trace_shape;
    Alcotest.test_case "folded stacks grammar" `Quick test_folded_stacks_grammar;
  ]
