open Sparse_graph

let test_empty () =
  let g = Graph.of_edges ~n:5 [||] in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.m g);
  for v = 0 to 4 do
    Alcotest.(check int) "degree 0" 0 (Graph.degree g v)
  done

let test_zero_vertices () =
  let g = Graph.of_edges ~n:0 [||] in
  Alcotest.(check int) "n" 0 (Graph.n g);
  Alcotest.(check (float 0.0)) "avg degree" 0.0 (Graph.avg_degree g)

let test_triangle () =
  let g = Graph.of_edge_list ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check (array int)) "nbrs of 0" [| 1; 2 |] (Graph.neighbors g 0);
  Alcotest.(check (array int)) "nbrs of 1" [| 0; 2 |] (Graph.neighbors g 1)

let test_self_loops_dropped () =
  let g = Graph.of_edge_list ~n:3 [ (0, 0); (1, 1); (0, 1) ] in
  Alcotest.(check int) "m" 1 (Graph.m g);
  Alcotest.(check int) "deg 0" 1 (Graph.degree g 0)

let test_duplicates_dropped () =
  let g = Graph.of_edge_list ~n:3 [ (0, 1); (1, 0); (0, 1); (0, 2) ] in
  Alcotest.(check int) "m" 2 (Graph.m g);
  Alcotest.(check (array int)) "nbrs of 0" [| 1; 2 |] (Graph.neighbors g 0)

let test_out_of_range_rejected () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edge_list ~n:3 [ (0, 3) ]))

let test_has_edge () =
  let g = Graph.of_edge_list ~n:5 [ (0, 1); (2, 4); (1, 3) ] in
  Alcotest.(check bool) "0-1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "1-0" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "2-4" true (Graph.has_edge g 2 4);
  Alcotest.(check bool) "0-2" false (Graph.has_edge g 0 2);
  Alcotest.(check bool) "no self" false (Graph.has_edge g 0 0)

let test_iter_edges_each_once () =
  let edges = [ (0, 1); (1, 2); (3, 4); (0, 4) ] in
  let g = Graph.of_edge_list ~n:5 edges in
  let seen = ref [] in
  Graph.iter_edges g (fun u v ->
      if u >= v then Alcotest.fail "iter_edges must give u < v";
      seen := (u, v) :: !seen);
  Alcotest.(check (list (pair int int)))
    "all edges once" (List.sort compare edges) (List.sort compare !seen)

let test_fold_and_exists () =
  let g = Graph.of_edge_list ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let sum = Graph.fold_neighbors g 0 ~init:0 ~f:( + ) in
  Alcotest.(check int) "fold sum" 6 sum;
  Alcotest.(check bool) "exists" true (Graph.exists_neighbor g 0 (fun v -> v = 2));
  Alcotest.(check bool) "not exists" false (Graph.exists_neighbor g 1 (fun v -> v = 2))

let test_degrees_and_max () =
  let g = Graph.of_edge_list ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2) ] in
  Alcotest.(check int) "max degree" 4 (Graph.max_degree g);
  Alcotest.(check (float 1e-9)) "avg degree" 2.0 (Graph.avg_degree g)

(* Property: CSR construction agrees with a brute-force adjacency matrix on
   random multigraph inputs (self-loops and duplicates included). *)
let csr_vs_matrix_prop =
  QCheck2.Test.make ~name:"CSR equals adjacency matrix" ~count:200
    QCheck2.Gen.(
      let n = 8 in
      let edge = tup2 (int_bound (n - 1)) (int_bound (n - 1)) in
      list_size (int_bound 40) edge)
    (fun edges ->
      let n = 8 in
      let g = Graph.of_edge_list ~n edges in
      let matrix = Array.make_matrix n n false in
      List.iter
        (fun (u, v) ->
          if u <> v then begin
            matrix.(u).(v) <- true;
            matrix.(v).(u) <- true
          end)
        edges;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Graph.has_edge g u v <> matrix.(u).(v) then ok := false
        done;
        let expected_deg =
          Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 matrix.(u)
        in
        if Graph.degree g u <> expected_deg then ok := false
      done;
      !ok)

let neighbors_sorted_prop =
  QCheck2.Test.make ~name:"adjacency slices sorted ascending" ~count:100
    QCheck2.Gen.(list_size (int_bound 60) (tup2 (int_bound 9) (int_bound 9)))
    (fun edges ->
      let g = Graph.of_edge_list ~n:10 edges in
      let ok = ref true in
      for v = 0 to 9 do
        let nbrs = Graph.neighbors g v in
        for k = 1 to Array.length nbrs - 1 do
          if nbrs.(k - 1) >= nbrs.(k) then ok := false
        done
      done;
      !ok)

let test_large_hub_sorting () =
  (* Exercise the comparison-sort path for long adjacency slices. *)
  let edges = Array.init 500 (fun i -> (0, 500 - i)) in
  let g = Graph.of_edges ~n:501 edges in
  let nbrs = Graph.neighbors g 0 in
  Alcotest.(check int) "hub degree" 500 (Array.length nbrs);
  for k = 1 to 499 do
    if nbrs.(k - 1) >= nbrs.(k) then Alcotest.fail "hub slice unsorted"
  done

(* --- of_flat_halves: identical CSR to of_edges ---------------------------- *)

let graphs_equal a b =
  Graph.n a = Graph.n b && Graph.m a = Graph.m b
  && begin
       let ok = ref true in
       for v = 0 to Graph.n a - 1 do
         if Graph.neighbors a v <> Graph.neighbors b v then ok := false
       done;
       !ok
     end

let flat_halves_vs_of_edges_prop =
  (* Random multisets including self-loops and duplicates: both constructors
     must drop them identically and produce the same CSR. *)
  QCheck.Test.make ~count:300 ~name:"of_flat_halves = of_edges"
    QCheck.(pair (int_range 1 12) (small_list (pair (int_range 0 11) (int_range 0 11))))
    (fun (n, edge_list) ->
      let edges =
        Array.of_list (List.filter (fun (u, v) -> u < n && v < n) edge_list)
      in
      let flat = Array.make (max 1 (2 * Array.length edges)) 0 in
      Array.iteri
        (fun i (u, v) ->
          flat.(2 * i) <- u;
          flat.((2 * i) + 1) <- v)
        edges;
      let a = Graph.of_edges ~n edges in
      let b = Graph.of_flat_halves ~n ~len:(2 * Array.length edges) flat in
      graphs_equal a b)

let test_flat_halves_validation () =
  Alcotest.check_raises "odd length"
    (Invalid_argument "Graph.of_flat_halves: odd length") (fun () ->
      ignore (Graph.of_flat_halves ~n:3 ~len:3 [| 0; 1; 2; 0 |]));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Graph.of_flat_halves: bad length") (fun () ->
      ignore (Graph.of_flat_halves ~n:3 ~len:6 [| 0; 1 |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_flat_halves ~n:2 ~len:2 [| 0; 2 |]))

let test_flat_halves_ignores_tail () =
  (* Entries beyond [len] must not leak into the graph. *)
  let g = Graph.of_flat_halves ~n:4 ~len:2 [| 0; 1; 2; 3; 1; 2 |] in
  Alcotest.(check int) "m" 1 (Graph.m g);
  Alcotest.(check bool) "edge kept" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "tail dropped" false (Graph.has_edge g 2 3)

(* --- live mutation overlay ----------------------------------------- *)

let test_overlay_departure () =
  let g0 = Graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let g1 = Graph.apply g0 [ Graph.Remove_vertex 1 ] in
  Alcotest.(check int) "epoch bumped" 1 (Graph.epoch g1);
  Alcotest.(check int) "base epoch unchanged" 0 (Graph.epoch g0);
  Alcotest.(check bool) "departed" false (Graph.live g1 1);
  Alcotest.(check int) "live count" 3 (Graph.live_count g1);
  Alcotest.(check int) "degree of departed" 0 (Graph.degree g1 1);
  Alcotest.(check (array int)) "departed iterates empty" [||] (Graph.neighbors g1 1);
  Alcotest.(check (array int)) "neighbour masked" [| 3 |] (Graph.neighbors g1 0);
  Alcotest.(check int) "m drops incident edges" 2 (Graph.m g1);
  (* The base graph is copy-on-write: untouched. *)
  Alcotest.(check int) "base m" 4 (Graph.m g0);
  Alcotest.(check (array int)) "base adjacency" [| 1; 3 |] (Graph.neighbors g0 0);
  let g2 = Graph.apply g1 [ Graph.Restore_vertex 1 ] in
  Alcotest.(check int) "restored live count" 4 (Graph.live_count g2);
  Alcotest.(check (array int)) "base edges back" [| 0; 2 |] (Graph.neighbors g2 1);
  Alcotest.(check int) "m restored" 4 (Graph.m g2)

let test_overlay_edges () =
  let g0 = Graph.of_edge_list ~n:5 [ (0, 1); (1, 2) ] in
  let g1 = Graph.apply g0 [ Graph.Remove_edge (0, 1); Graph.Add_edge (0, 4) ] in
  Alcotest.(check bool) "dropped" false (Graph.has_edge g1 0 1);
  Alcotest.(check bool) "dropped reverse" false (Graph.has_edge g1 1 0);
  Alcotest.(check bool) "added" true (Graph.has_edge g1 0 4);
  Alcotest.(check bool) "added reverse" true (Graph.has_edge g1 4 0);
  Alcotest.(check int) "m" 2 (Graph.m g1);
  (* Merged iteration stays ascending with overlay adds interleaved. *)
  let g2 = Graph.apply g1 [ Graph.Add_edge (0, 2); Graph.Add_edge (0, 3) ] in
  Alcotest.(check (array int)) "ascending merge" [| 2; 3; 4 |] (Graph.neighbors g2 0);
  (* Un-drop through Add_edge. *)
  let g3 = Graph.apply g2 [ Graph.Add_edge (1, 0) ] in
  Alcotest.(check (array int)) "undropped" [| 1; 2; 3; 4 |] (Graph.neighbors g3 0)

let test_overlay_departure_strips_overlay () =
  (* Overlay edges are lost for good on departure; restore brings back
     only the base edges. *)
  let g0 = Graph.of_edge_list ~n:4 [ (0, 1) ] in
  let g1 = Graph.apply g0 [ Graph.Add_edge (1, 3) ] in
  Alcotest.(check (array int)) "overlay present" [| 0; 3 |] (Graph.neighbors g1 1);
  let g2 = Graph.apply g1 [ Graph.Remove_vertex 1 ] in
  let g3 = Graph.apply g2 [ Graph.Restore_vertex 1 ] in
  Alcotest.(check (array int)) "base only after rejoin" [| 0 |] (Graph.neighbors g3 1)

let test_overlay_validation () =
  let g = Graph.of_edge_list ~n:3 [ (0, 1) ] in
  Alcotest.(check bool) "out of range raises" true
    (match Graph.apply g [ Graph.Remove_vertex 3 ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "self-loop add raises" true
    (match Graph.apply g [ Graph.Add_edge (1, 1) ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let departed = Graph.apply g [ Graph.Remove_vertex 2 ] in
  Alcotest.(check bool) "add to departed raises" true
    (match Graph.apply departed [ Graph.Add_edge (0, 2) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_explicit_epoch_batching () =
  let g0 = Graph.of_edge_list ~n:3 [ (0, 1) ] in
  let g1 = Graph.apply ~epoch:7 g0 [ Graph.Remove_edge (0, 1) ] in
  let g2 = Graph.apply ~epoch:7 g1 [ Graph.Add_edge (1, 2) ] in
  Alcotest.(check int) "same logical version" 7 (Graph.epoch g2)

(* compact must be traversal-equivalent to the overlay view on random
   mutation scripts. *)
let compact_equivalence_prop =
  QCheck2.Test.make ~name:"compact equals overlay view" ~count:100
    QCheck2.Gen.(
      pair
        (pair (int_range 2 12) (list_size (int_bound 20) (pair (int_bound 11) (int_bound 11))))
        (list_size (int_bound 25) (pair (int_bound 3) (pair (int_bound 11) (int_bound 11)))))
    (fun ((n, raw_edges), raw_muts) ->
      let edges =
        List.filter (fun (u, v) -> u < n && v < n && u <> v) raw_edges |> Array.of_list
      in
      let g0 = Graph.of_edges ~n edges in
      (* Interpret the random script, skipping ops apply would reject. *)
      let g =
        List.fold_left
          (fun g (kind, (u, v)) ->
            if u >= n || v >= n then g
            else
              match kind with
              | 0 -> Graph.apply g [ Graph.Remove_vertex u ]
              | 1 -> Graph.apply g [ Graph.Restore_vertex u ]
              | 2 when u <> v -> Graph.apply g [ Graph.Remove_edge (u, v) ]
              | 3 when u <> v && Graph.live g u && Graph.live g v ->
                  Graph.apply g [ Graph.Add_edge (u, v) ]
              | _ -> g)
          g0 raw_muts
      in
      let c = Graph.compact g in
      Graph.epoch c = Graph.epoch g
      && Graph.m c = Graph.m g
      && List.for_all
           (fun v -> Graph.neighbors c v = Graph.neighbors g v)
           (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty;
    Alcotest.test_case "zero vertices" `Quick test_zero_vertices;
    Alcotest.test_case "triangle" `Quick test_triangle;
    Alcotest.test_case "self loops dropped" `Quick test_self_loops_dropped;
    Alcotest.test_case "duplicates dropped" `Quick test_duplicates_dropped;
    Alcotest.test_case "out of range rejected" `Quick test_out_of_range_rejected;
    Alcotest.test_case "has_edge" `Quick test_has_edge;
    Alcotest.test_case "iter_edges each once" `Quick test_iter_edges_each_once;
    Alcotest.test_case "fold/exists neighbors" `Quick test_fold_and_exists;
    Alcotest.test_case "degrees and max" `Quick test_degrees_and_max;
    QCheck_alcotest.to_alcotest csr_vs_matrix_prop;
    QCheck_alcotest.to_alcotest neighbors_sorted_prop;
    Alcotest.test_case "large hub sorting" `Quick test_large_hub_sorting;
    QCheck_alcotest.to_alcotest flat_halves_vs_of_edges_prop;
    Alcotest.test_case "flat halves validation" `Quick test_flat_halves_validation;
    Alcotest.test_case "flat halves ignores tail" `Quick test_flat_halves_ignores_tail;
    Alcotest.test_case "overlay departure and rejoin" `Quick test_overlay_departure;
    Alcotest.test_case "overlay edge drop/add" `Quick test_overlay_edges;
    Alcotest.test_case "departure strips overlay edges" `Quick
      test_overlay_departure_strips_overlay;
    Alcotest.test_case "overlay validation" `Quick test_overlay_validation;
    Alcotest.test_case "explicit epoch batching" `Quick test_explicit_epoch_batching;
    QCheck_alcotest.to_alcotest compact_equivalence_prop;
  ]
