(* Golden-run bit-identity: selected experiment tables and per-hop route
   events at a fixed seed must stay byte-identical across performance
   reworks of the scoring/routing/edge pipeline.  The committed fixtures
   under [golden/] were generated before the flat-hot-paths rework
   (SoA geometry + dense objective scorers + flat CSR construction), so
   any drift in emitted numbers — formulas, operation order, tie-breaks —
   fails here first.

   Regenerate (only when an intentional output change lands) with:
     SMALLWORLD_GOLDEN_REGEN=/abs/path/to/test/golden \
       dune exec test/test_main.exe -- test golden *)

let regen_dir = Sys.getenv_opt "SMALLWORLD_GOLDEN_REGEN"

let fixture_path name =
  match regen_dir with Some d -> Filename.concat d name | None -> Filename.concat "golden" name

let read_fixture name =
  let path = fixture_path name in
  if Sys.file_exists path then Some (In_channel.with_open_bin path In_channel.input_all)
  else None

let check_or_regen ~name actual =
  match regen_dir with
  | Some _ ->
      Out_channel.with_open_bin (fixture_path name) (fun oc -> output_string oc actual);
      Printf.printf "regenerated %s (%d bytes)\n" name (String.length actual)
  | None -> begin
      match read_fixture name with
      | None -> Alcotest.failf "missing golden fixture %s (run with SMALLWORLD_GOLDEN_REGEN)" name
      | Some expected ->
          if String.equal expected actual then ()
          else begin
            (* Byte-identity failed: show the first differing line to make
               the drift debuggable without a binary diff. *)
            let lines_e = String.split_on_char '\n' expected in
            let lines_a = String.split_on_char '\n' actual in
            let rec first_diff i = function
              | e :: es, a :: as_ ->
                  if String.equal e a then first_diff (i + 1) (es, as_) else Some (i, e, a)
              | e :: _, [] -> Some (i, e, "<missing>")
              | [], a :: _ -> Some (i, "<missing>", a)
              | [], [] -> None
            in
            match first_diff 1 (lines_e, lines_a) with
            | Some (i, e, a) ->
                Alcotest.failf "golden %s: first drift at line %d\n  expected: %s\n  actual:   %s"
                  name i e a
            | None -> Alcotest.failf "golden %s: outputs differ" name
          end
    end

(* ------------------------------------------------------------------ *)
(* Experiment tables *)

let golden_experiments = [ "E4"; "E5"; "E6"; "E7"; "E8"; "E11"; "E15"; "E18" ]

let table_test id () =
  match Experiments.Registry.find id with
  | None -> Alcotest.failf "unknown experiment %s" id
  | Some e ->
      let ctx = Experiments.Context.make ~seed:42 ~scale:Experiments.Context.Quick () in
      let rendered = Experiments.Registry.run_and_render e ctx in
      check_or_regen ~name:(Printf.sprintf "tables_%s.txt" id) rendered

(* ------------------------------------------------------------------ *)
(* Route events: per-hop objective values along full routes, printed with
   %h so every bit of every emitted score is pinned. *)

let route_events_test () =
  if not Obs.Events.enabled then ()
  else begin
    let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.3 ~n:900 () in
    let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:7) params in
    let n = Sparse_graph.Graph.n inst.Girg.Instance.graph in
    let rng = Prng.Rng.create ~seed:8 in
    let buf = Buffer.create 4096 in
    let was_recording = Obs.Events.recording () in
    Obs.Events.set_recording true;
    List.iter
      (fun protocol ->
        for _ = 1 to 8 do
          let s, t = Prng.Dist.sample_distinct_pair rng ~n in
          Obs.Events.clear ();
          let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
          let outcome =
            Greedy_routing.Protocol.run protocol ~graph:inst.Girg.Instance.graph ~objective
              ~source:s ()
          in
          Buffer.add_string buf
            (Printf.sprintf "%s s=%d t=%d status=%s steps=%d visited=%d\n"
               (Greedy_routing.Protocol.name protocol)
               s t
               (Greedy_routing.Outcome.status_to_string outcome.Greedy_routing.Outcome.status)
               outcome.steps outcome.visited);
          List.iter
            (fun (ev : Obs.Events.event) ->
              (* Route ids are process-global; the payload fields below are
                 what must stay bit-identical. *)
              match ev.Obs.Events.payload with
              | Obs.Events.Route_hop { hop; vertex; objective; _ } ->
                  Buffer.add_string buf (Printf.sprintf "  hop %d v=%d phi=%h\n" hop vertex objective)
              | Obs.Events.Dead_end { vertex; _ } ->
                  Buffer.add_string buf (Printf.sprintf "  dead_end v=%d\n" vertex)
              | Obs.Events.Patch_enter { vertex; phi; _ } ->
                  Buffer.add_string buf (Printf.sprintf "  patch_enter v=%d phi=%h\n" vertex phi)
              | Obs.Events.Patch_exit { vertex; phi; _ } ->
                  Buffer.add_string buf (Printf.sprintf "  patch_exit v=%d phi=%h\n" vertex phi)
              | Obs.Events.Phase_switch { vertex; phase; _ } ->
                  Buffer.add_string buf (Printf.sprintf "  phase v=%d %s\n" vertex phase)
              | _ -> ())
            (Obs.Events.events ())
        done)
      [ Greedy_routing.Protocol.Greedy; Greedy_routing.Protocol.Patch_dfs;
        Greedy_routing.Protocol.Gravity_pressure ];
    Obs.Events.clear ();
    Obs.Events.set_recording was_recording;
    check_or_regen ~name:"events_routes.txt" (Buffer.contents buf)
  end

(* Routing results records over a workload batch: counts plus every
   per-route float, printed with %h. *)
let workload_results_test () =
  let params = Girg.Params.make ~dim:2 ~beta:2.6 ~c:0.2 ~n:1200 () in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:21) params in
  let graph = inst.Girg.Instance.graph in
  let rng = Prng.Rng.create ~seed:22 in
  let pairs = Experiments.Workload.sample_pairs_giant ~rng ~graph ~count:60 in
  let buf = Buffer.create 2048 in
  List.iter
    (fun protocol ->
      let res =
        Experiments.Workload.run ~graph
          ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
          ~protocol ~with_stretch:true ~pairs ()
      in
      Buffer.add_string buf
        (Printf.sprintf "%s attempted=%d delivered=%d dead_end=%d exhausted=%d cutoff=%d\n"
           (Greedy_routing.Protocol.name protocol)
           res.Experiments.Workload.attempted res.delivered res.dead_end res.exhausted res.cutoff);
      let dump label arr =
        Buffer.add_string buf (Printf.sprintf "  %s:" label);
        Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %h" x)) arr;
        Buffer.add_char buf '\n'
      in
      dump "steps" res.steps;
      dump "visited" res.visited;
      dump "stretches" res.stretches)
    [ Greedy_routing.Protocol.Greedy; Greedy_routing.Protocol.Patch_dfs;
      Greedy_routing.Protocol.Patch_history; Greedy_routing.Protocol.Gravity_pressure ];
  check_or_regen ~name:"workload_results.txt" (Buffer.contents buf)

let suite =
  List.map
    (fun id -> Alcotest.test_case (Printf.sprintf "tables %s byte-identical" id) `Slow (table_test id))
    golden_experiments
  @ [
      Alcotest.test_case "route events byte-identical" `Slow route_events_test;
      Alcotest.test_case "workload results byte-identical" `Slow workload_results_test;
    ]
