(* Bench telemetry: smallworld.bench.v1 round-trip and the noise-aware
   regression comparator behind `bench diff`. *)

module B = Obs.Bench

let entry ?(runs = 3) ?(counters = []) ?(rss = 0.0) id median_s =
  { B.id; runs; median_s; min_s = median_s *. 0.9; alloc_bytes = 1e6; rss_bytes = rss; counters }

let report ?(label = "test") ?(jobs = 1) entries =
  { B.label; git_rev = "deadbeef"; scale = "quick"; seed = 42; jobs; entries }

let test_median () =
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (B.median []));
  Alcotest.(check (float 1e-9)) "odd" 2.0 (B.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (B.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_make_entry () =
  let e =
    B.make_entry ~id:"E1" ~wall_s:[ 0.3; 0.1; 0.2 ] ~alloc_bytes:5.0
      ~counters:[ ("route.greedy.steps", 7) ] ()
  in
  Alcotest.(check (float 1e-9)) "median" 0.2 e.B.median_s;
  Alcotest.(check (float 1e-9)) "min" 0.1 e.B.min_s;
  Alcotest.(check int) "runs" 3 e.B.runs;
  Alcotest.(check (float 1e-9)) "rss defaults to unrecorded" 0.0 e.B.rss_bytes;
  Alcotest.check_raises "empty samples rejected"
    (Invalid_argument "Obs.Bench.make_entry: no samples") (fun () ->
      ignore (B.make_entry ~id:"E1" ~wall_s:[] ~alloc_bytes:0.0 ~counters:[] ()))

let test_roundtrip () =
  let r =
    report
      [
        entry "E1" 0.5 ~counters:[ ("route.greedy.steps", 1234); ("netsim.sends", 5) ];
        entry "E2" 1.25;
      ]
  in
  let s = B.to_string r in
  Alcotest.(check bool) "single line" false (String.contains s '\n');
  (match B.of_string s with
  | Ok r' -> Alcotest.(check bool) "roundtrip equal" true (r = r')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Schema is enforced. *)
  (match B.of_string "{\"schema\":\"smallworld.obs.v1\"}" with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ());
  (* jobs round-trips, and reports predating the field parse as jobs=1. *)
  (match B.of_string (B.to_string (report ~jobs:4 [ entry "E1" 0.5 ])) with
  | Ok r' -> Alcotest.(check int) "jobs roundtrip" 4 r'.B.jobs
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* rss_bytes round-trips when recorded and is omitted when not. *)
  (match B.of_string (B.to_string (report [ entry "S1" 0.5 ~rss:2e8 ])) with
  | Ok r' ->
      Alcotest.(check (float 1.0)) "rss roundtrip" 2e8
        (List.hd r'.B.entries).B.rss_bytes
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Alcotest.(check bool) "rss omitted when unrecorded" false
    (let s = B.to_string (report [ entry "E1" 0.5 ]) in
     let rec contains i =
       i + 9 <= String.length s && (String.sub s i 9 = "rss_bytes" || contains (i + 1))
     in
     contains 0);
  match
    B.of_string
      "{\"schema\":\"smallworld.bench.v1\",\"label\":\"old\",\"git_rev\":\"x\",\
       \"scale\":\"quick\",\"seed\":42,\"experiments\":[]}"
  with
  | Ok r' -> Alcotest.(check int) "legacy jobs default" 1 r'.B.jobs
  | Error e -> Alcotest.failf "legacy parse failed: %s" e

let test_counters_of_registry () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:r "t.bench.counter" in
  Obs.Metrics.add c 9;
  ignore (Obs.Metrics.gauge ~registry:r "t.bench.gauge");
  ignore (Obs.Metrics.histogram ~registry:r "t.bench.hist");
  Alcotest.(check (list (pair string int))) "counters only" [ ("t.bench.counter", 9) ]
    (B.counters_of_registry r)

let test_diff_self_is_clean () =
  let r = report [ entry "E1" 0.5; entry "E2" 2.0 ] in
  let comparisons = B.diff ~baseline:r ~current:r () in
  Alcotest.(check int) "one comparison per entry" 2 (List.length comparisons);
  Alcotest.(check bool) "no regression against self" false (B.regressed comparisons);
  List.iter
    (fun (c : B.comparison) ->
      Alcotest.(check bool) "verdict ok" true (c.B.verdict = B.Ok_within_noise);
      Alcotest.(check (float 1e-9)) "ratio 1" 1.0 c.B.ratio)
    comparisons

let test_diff_flags_regression () =
  (* Synthetic regression fixture: E2 doubles, E1 is unchanged. *)
  let baseline = report [ entry "E1" 0.5; entry "E2" 1.0 ] in
  let current = report [ entry "E1" 0.5; entry "E2" 2.0 ] in
  let comparisons = B.diff ~baseline ~current () in
  Alcotest.(check bool) "regression detected" true (B.regressed comparisons);
  let e2 = List.find (fun (c : B.comparison) -> c.B.c_id = "E2") comparisons in
  Alcotest.(check bool) "E2 regressed" true (e2.B.verdict = B.Regressed);
  Alcotest.(check (float 1e-9)) "ratio 2x" 2.0 e2.B.ratio;
  let e1 = List.find (fun (c : B.comparison) -> c.B.c_id = "E1") comparisons in
  Alcotest.(check bool) "E1 clean" true (e1.B.verdict = B.Ok_within_noise);
  (* The reverse direction is an improvement, not a failure. *)
  let comparisons = B.diff ~baseline:current ~current:baseline () in
  Alcotest.(check bool) "improvement is not a regression" false (B.regressed comparisons);
  let e2 = List.find (fun (c : B.comparison) -> c.B.c_id = "E2") comparisons in
  Alcotest.(check bool) "E2 improved" true (e2.B.verdict = B.Improved)

let test_diff_noise_floor () =
  (* 3x ratio but only 3ms absolute: below the 5ms floor, so noise. *)
  let baseline = report [ entry "E1" 0.0015 ] in
  let current = report [ entry "E1" 0.0045 ] in
  Alcotest.(check bool) "sub-floor delta ignored" false
    (B.regressed (B.diff ~baseline ~current ()));
  (* A generous threshold forgives a large absolute delta. *)
  let baseline = report [ entry "E1" 1.0 ] in
  let current = report [ entry "E1" 1.2 ] in
  Alcotest.(check bool) "within 25% band" false (B.regressed (B.diff ~baseline ~current ()));
  Alcotest.(check bool) "tighter threshold flags it" true
    (B.regressed (B.diff ~threshold_pct:10.0 ~baseline ~current ()))

let test_diff_missing_experiment () =
  let baseline = report [ entry "E1" 0.5; entry "E2" 1.0 ] in
  let current = report [ entry "E1" 0.5 ] in
  let comparisons = B.diff ~baseline ~current () in
  let e2 = List.find (fun (c : B.comparison) -> c.B.c_id = "E2") comparisons in
  Alcotest.(check bool) "missing flagged" true (e2.B.verdict = B.Missing);
  Alcotest.(check bool) "missing fails the gate" true (B.regressed comparisons)

let test_diff_rss_gate () =
  (* An mmap phase that started materialising its sections: RSS triples
     at unchanged wall time. *)
  let baseline = report [ entry "scale/n1048576/mmap-route" 1.0 ~rss:1e8 ] in
  let current = report [ entry "scale/n1048576/mmap-route" 1.0 ~rss:3e8 ] in
  let comparisons = B.diff ~baseline ~current () in
  Alcotest.(check bool) "rss regression detected" true (B.rss_regressed comparisons);
  Alcotest.(check bool) "full gate fails" true (B.regressed comparisons);
  let c = List.hd comparisons in
  Alcotest.(check bool) "verdict regressed" true (c.B.rss_verdict = B.Regressed);
  Alcotest.(check (float 1e-9)) "ratio 3x" 3.0 c.B.rss_ratio;
  Alcotest.(check bool) "looser threshold forgives" false
    (B.rss_regressed (B.diff ~rss_threshold_pct:250.0 ~baseline ~current ()));
  (* 3x ratio but only 8MB absolute: below the 16MB floor, so noise. *)
  let baseline = report [ entry "S" 1.0 ~rss:4e6 ] in
  let current = report [ entry "S" 1.0 ~rss:1.2e7 ] in
  Alcotest.(check bool) "sub-floor rss ignored" false
    (B.rss_regressed (B.diff ~baseline ~current ()));
  (* A pre-RSS baseline (rss 0) must not fail against a recording
     current report, in either direction. *)
  let old = report [ entry "E1" 1.0 ] in
  let recorded = report [ entry "E1" 1.0 ~rss:5e8 ] in
  Alcotest.(check bool) "unrecorded baseline never gates" false
    (B.rss_regressed (B.diff ~baseline:old ~current:recorded ()));
  Alcotest.(check bool) "unrecorded current never gates" false
    (B.rss_regressed (B.diff ~baseline:recorded ~current:old ()));
  (* A missing experiment fails the timing axis, not the RSS one. *)
  let cs = B.diff ~baseline:(report [ entry "S" 1.0 ~rss:1e8 ]) ~current:(report []) () in
  Alcotest.(check bool) "missing is not an rss failure" false (B.rss_regressed cs);
  Alcotest.(check bool) "missing still fails overall" true (B.regressed cs)

let suite =
  [
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "make_entry" `Quick test_make_entry;
    Alcotest.test_case "schema roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "counters_of_registry" `Quick test_counters_of_registry;
    Alcotest.test_case "diff: self is clean" `Quick test_diff_self_is_clean;
    Alcotest.test_case "diff: synthetic regression fails" `Quick test_diff_flags_regression;
    Alcotest.test_case "diff: noise floor" `Quick test_diff_noise_floor;
    Alcotest.test_case "diff: missing experiment fails" `Quick test_diff_missing_experiment;
    Alcotest.test_case "diff: rss gate" `Quick test_diff_rss_gate;
  ]
