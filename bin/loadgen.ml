(* Load generator for the routing daemon:

     loadgen --port P [--host H] [--codec json|binary] [--connections N]
             [--duration SECS] [--rate RPS] [--instance NAME]
             [--protocol NAME] [--max-steps N] [--hot-pairs K]
             [--pair-seed N] [--warmup N] [--deadline-ms N]
             [--label S] [--out FILE]

   Each connection is a domain running a closed loop (one request in
   flight); --rate > 0 paces the fleet to a total target request rate
   (open-loop arrivals, but never more than one outstanding request
   per connection, so an overloaded daemon slows the generator down
   instead of queueing unboundedly inside it).  Requests are routes
   over a --hot-pairs sized pair set drawn from a seeded PRNG, so
   reruns hit the same keys (and a route cache, when present, sees a
   steady hot set).  Reports throughput, refusal rate and latency
   quantiles as one smallworld.load.v1 JSON document. *)

module V1 = Api.V1
module J = Obs.Export
open Cmdliner

let schema_version = "smallworld.load.v1"

(* ------------------------------------------------------------------ *)
(* Codec-agnostic client connection (blocking, one request in flight)  *)

type conn = {
  fd : Unix.file_descr;
  codec : [ `Json | `Binary ];
  mutable rbuf : Bytes.t;
  mutable rlen : int;
}

let connect ~host ~port ~codec =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd TCP_NODELAY true;
  Unix.connect fd addr;
  { fd; codec; rbuf = Bytes.create 65536; rlen = 0 }

let send_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let refill c =
  if c.rlen = Bytes.length c.rbuf then
    c.rbuf <- Bytes.extend c.rbuf 0 (Bytes.length c.rbuf);
  let n = Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) in
  if n = 0 then failwith "connection closed by daemon";
  c.rlen <- c.rlen + n

let consume c n =
  Bytes.blit c.rbuf n c.rbuf 0 (c.rlen - n);
  c.rlen <- c.rlen - n

let rec read_reply c =
  match c.codec with
  | `Json -> (
      match Bytes.index_opt (Bytes.sub c.rbuf 0 c.rlen) '\n' with
      | Some i ->
          let line = Bytes.sub_string c.rbuf 0 i in
          consume c (i + 1);
          V1.reply_of_line line
      | None ->
          refill c;
          read_reply c)
  | `Binary -> (
      match
        Api.Binary.parse (Bytes.unsafe_to_string c.rbuf) ~pos:0 ~len:c.rlen
      with
      | Api.Binary.Frame { payload; consumed } ->
          consume c consumed;
          Api.Binary.reply_of_payload payload
      | Api.Binary.Need ->
          refill c;
          read_reply c
      | Api.Binary.Oversized { declared; _ } ->
          Error (Api.Error.make Api.Error.Internal "oversized reply (%d bytes)" declared)
      | Api.Binary.Bad_version v ->
          Error
            (Api.Error.make Api.Error.Internal "server replied in binary protocol v%d" v)
      | Api.Binary.Bad msg -> Error (Api.Error.make Api.Error.Internal "bad frame: %s" msg))

let rpc c envelope =
  (match c.codec with
  | `Json -> send_all c.fd (V1.request_line envelope ^ "\n")
  | `Binary -> send_all c.fd (Api.Binary.request_frame envelope));
  read_reply c

(* ------------------------------------------------------------------ *)
(* Per-connection worker                                               *)

type tally = {
  mutable sent : int;
  mutable ok : int;
  mutable refused : int;
  mutable failed : int;
  mutable lat : float list;  (** seconds, post-warmup only *)
}

let classify tally = function
  | Ok (V1.Routed _) -> tally.ok <- tally.ok + 1
  | Ok (V1.Failed e) -> (
      match e.Api.Error.code with
      | Api.Error.Overloaded | Api.Error.Draining | Api.Error.Deadline ->
          tally.refused <- tally.refused + 1
      | _ -> tally.failed <- tally.failed + 1)
  | Ok _ | Error _ -> tally.failed <- tally.failed + 1

(* One closed loop.  With pacing, request k is due at [start + k*gap];
   sleeping until the due time (when we are early) yields the target
   rate, and lateness is not compensated by bursts. *)
let worker ~host ~port ~codec ~instance ~protocol ~max_steps ~deadline_ms ~pairs
    ~warmup ~duration ~gap ~conn_id =
  let c = connect ~host ~port ~codec in
  let tally = { sent = 0; ok = 0; refused = 0; failed = 0; lat = [] } in
  let npairs = Array.length pairs in
  let start = Unix.gettimeofday () in
  let stop_at = start +. duration in
  (try
     let k = ref 0 in
     let now = ref start in
     while !now < stop_at do
       (if gap > 0.0 then
          let due = start +. (float_of_int !k *. gap) in
          if due > !now then Unix.sleepf (due -. !now));
       let source, target = pairs.((conn_id + !k) mod npairs) in
       let req = V1.Route { instance; source; target; protocol; max_steps } in
       let e = V1.envelope ~id:!k ?deadline_ms req in
       let t0 = Unix.gettimeofday () in
       let reply = Result.map (fun r -> r.V1.response) (rpc c e) in
       let t1 = Unix.gettimeofday () in
       tally.sent <- tally.sent + 1;
       if !k >= warmup then begin
         classify tally reply;
         tally.lat <- (t1 -. t0) :: tally.lat
       end;
       (match reply with Error _ -> raise Exit | Ok _ -> ());
       incr k;
       now := t1
     done
   with
  | Exit -> ()
  | Unix.Unix_error _ | Failure _ -> tally.failed <- tally.failed + 1);
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  tally

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let report ~label ~host ~port ~codec ~connections ~rate ~duration ~instance
    ~protocol ~hot_pairs ~tallies ~elapsed =
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  let sent = sum (fun t -> t.sent)
  and ok = sum (fun t -> t.ok)
  and refused = sum (fun t -> t.refused)
  and failed = sum (fun t -> t.failed) in
  let lats =
    List.concat_map (fun t -> t.lat) tallies |> Array.of_list
  in
  Array.sort compare lats;
  let count = Array.length lats in
  let mean =
    if count = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int count
  in
  let ms x = x *. 1e3 in
  let measured = ok + refused + failed in
  let throughput = if elapsed > 0.0 then float_of_int measured /. elapsed else 0.0 in
  let refusal_rate =
    if measured = 0 then 0.0 else float_of_int refused /. float_of_int measured
  in
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("label", J.Str label);
      ("git_rev", J.Str (J.git_rev ()));
      ("host", J.Str host);
      ("port", J.Int port);
      ("codec", J.Str (match codec with `Json -> "json" | `Binary -> "binary"));
      ("connections", J.Int connections);
      ("rate", J.Float rate);
      ("duration_s", J.Float duration);
      ("elapsed_s", J.Float elapsed);
      ("instance", J.Str instance);
      ("protocol", J.Str (Greedy_routing.Protocol.name protocol));
      ("hot_pairs", J.Int hot_pairs);
      ("sent", J.Int sent);
      ("ok", J.Int ok);
      ("refused", J.Int refused);
      ("failed", J.Int failed);
      ("throughput_rps", J.Float throughput);
      ("refusal_rate", J.Float refusal_rate);
      ( "latency_ms",
        J.Obj
          [
            ("count", J.Int count);
            ("mean", J.Float (ms mean));
            ("p50", J.Float (ms (quantile lats 0.50)));
            ("p90", J.Float (ms (quantile lats 0.90)));
            ("p99", J.Float (ms (quantile lats 0.99)));
            ("p999", J.Float (ms (quantile lats 0.999)));
            ("max", J.Float (ms (quantile lats 1.0)));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Main                                                                *)

let fail e =
  prerr_endline (Api.Error.to_string e);
  exit (Api.Error.exit_code e.Api.Error.code)

let run host port codec_s connections duration rate instance protocol_s max_steps
    hot_pairs pair_seed warmup deadline_ms label out =
  let codec =
    match codec_s with
    | "json" -> `Json
    | "binary" -> `Binary
    | s -> fail (Api.Error.make Api.Error.Usage "--codec must be json or binary, got %S" s)
  in
  let protocol =
    match V1.protocol_of_string protocol_s with Ok p -> p | Error e -> fail e
  in
  if connections < 1 then
    fail (Api.Error.make Api.Error.Usage "--connections must be >= 1");
  (* One probe request up front: resolves the instance (fail fast on a
     wrong name) and learns the vertex count the pair set draws from. *)
  let vertices =
    let c = try connect ~host ~port ~codec
      with Unix.Unix_error (err, _, _) ->
        fail (Api.Error.make Api.Error.Io "cannot connect to %s:%d: %s" host port
                (Unix.error_message err))
    in
    let reply = rpc c (V1.envelope (V1.Stats { instance })) in
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    match reply with
    | Ok { V1.response = V1.Stats_reply s; _ } -> s.V1.vertices
    | Ok { V1.response = V1.Failed e; _ } -> fail e
    | Ok _ -> fail (Api.Error.make Api.Error.Internal "unexpected stats reply shape")
    | Error e -> fail e
  in
  if vertices < 2 then
    fail (Api.Error.make Api.Error.Usage "instance %S has %d vertices; need >= 2"
            instance vertices);
  let npairs = if hot_pairs > 0 then hot_pairs else 4096 in
  let rng = Prng.Rng.create ~seed:pair_seed in
  let pairs =
    Array.init npairs (fun _ -> Prng.Dist.sample_distinct_pair rng ~n:vertices)
  in
  let gap =
    if rate > 0.0 then float_of_int connections /. rate else 0.0
  in
  let start = Unix.gettimeofday () in
  let domains =
    List.init connections (fun conn_id ->
        Domain.spawn (fun () ->
            worker ~host ~port ~codec ~instance ~protocol ~max_steps ~deadline_ms
              ~pairs ~warmup ~duration ~gap ~conn_id))
  in
  let tallies = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. start in
  let doc =
    report ~label ~host ~port ~codec ~connections ~rate ~duration ~instance
      ~protocol ~hot_pairs ~tallies ~elapsed
  in
  let line = J.json_to_string doc in
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (line ^ "\n");
      close_out oc);
  let get name =
    match J.member name doc with
    | Some (J.Float f) -> f
    | Some (J.Int i) -> float_of_int i
    | _ -> 0.0
  in
  let lat name =
    match J.member "latency_ms" doc with
    | Some l -> ( match J.member name l with Some (J.Float f) -> f | _ -> 0.0)
    | None -> 0.0
  in
  Printf.printf
    "%s: %.0f req/s over %d conns (%s codec), %d ok / %d refused / %d failed, \
     p50 %.3f ms, p99 %.3f ms\n%!"
    label (get "throughput_rps") connections codec_s
    (int_of_float (get "ok")) (int_of_float (get "refused"))
    (int_of_float (get "failed")) (lat "p50") (lat "p99");
  if out = None then print_endline line;
  let failed = int_of_float (get "failed") in
  if failed > 0 then
    fail (Api.Error.make Api.Error.Io "%d requests failed outright" failed)

let main =
  let doc = "Drive the routing daemon at a target load and report serving SLOs." in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.") in
  let port = Arg.(required & opt (some int) None & info [ "port" ] ~docv:"P" ~doc:"Daemon port.") in
  let codec =
    Arg.(value & opt string "json"
           & info [ "codec" ] ~docv:"NAME" ~doc:"Wire codec: json (newline-delimited) or binary (length-prefixed frames).")
  in
  let connections =
    Arg.(value & opt int 4 & info [ "connections" ] ~docv:"N" ~doc:"Concurrent connections (one domain each).")
  in
  let duration =
    Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"SECS" ~doc:"Run length in seconds.")
  in
  let rate =
    Arg.(value & opt float 0.0
           & info [ "rate" ] ~docv:"RPS"
           ~doc:"Total target request rate across all connections; 0 = closed loop (as fast as replies come back).")
  in
  let instance =
    Arg.(value & opt string "net" & info [ "instance" ] ~docv:"NAME" ~doc:"Served instance to route on.")
  in
  let protocol =
    Arg.(value & opt string "greedy" & info [ "protocol" ] ~docv:"NAME" ~doc:"Routing protocol for the generated requests.")
  in
  let max_steps =
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc:"Per-route step budget.")
  in
  let hot_pairs =
    Arg.(value & opt int 16
           & info [ "hot-pairs" ] ~docv:"K"
           ~doc:"Size of the cycled source/target pair set (0 = a 4096-pair cold set).")
  in
  let pair_seed =
    Arg.(value & opt int 42 & info [ "pair-seed" ] ~docv:"N" ~doc:"Seed for the pair set.")
  in
  let warmup =
    Arg.(value & opt int 5
           & info [ "warmup" ] ~docv:"N"
           ~doc:"Per-connection requests excluded from the tallies (connection + cache warmup).")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"N" ~doc:"Deadline attached to every request.")
  in
  let label =
    Arg.(value & opt string "loadgen" & info [ "label" ] ~docv:"S" ~doc:"Label recorded in the report.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the smallworld.load.v1 report here (else stdout).")
  in
  Cmd.v (Cmd.info "smallworld-loadgen" ~doc)
    Term.(
      const run $ host $ port $ codec $ connections $ duration $ rate $ instance
      $ protocol $ max_steps $ hot_pairs $ pair_seed $ warmup $ deadline_ms
      $ label $ out)

let () = exit (Cmd.eval main)
