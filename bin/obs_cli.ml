(* Offline analytics over the observability streams the other binaries
   emit:

     obs_cli trace tree FILE...          [--trace ID]
     obs_cli trace critical-path FILE... [--trace ID]
     obs_cli trace flame FILE...         [--trace ID] [-o FILE]
     obs_cli trace chrome FILE...        [--trace ID] [-o FILE]
     obs_cli events analyze FILE         [--n N] [--json FILE]

   The trace subcommands read smallworld.trace.v1 JSONL (written by
   `graphs_cli route --trace-out` and `serve --trace-out`), merge every
   record of one trace into a single span tree (client span on top,
   server stages and algorithm spans grafted under it), and render it
   as an ASCII tree, a critical path, flamegraph.pl folded stacks, or
   Chrome trace-event JSON.

   `events analyze` reads smallworld.events.v1 JSONL (from
   `--events-out` on route / serve / experiments run) and computes the
   paper's trajectory statistics: hop counts vs log log n, per-hop
   objective progress, gravity/pressure phase occupancy, dead-end and
   patch rates.  An empty stream (SMALLWORLD_OBS=0) analyzes to a
   zero-filled report, not an error.                                  *)

open Cmdliner

let fail err =
  prerr_endline (Api.Error.to_string err);
  exit (Api.Error.exit_code err.Api.Error.code)

let fail_usage fmt = Printf.ksprintf (fun m -> fail (Api.Error.make Api.Error.Usage "%s" m)) fmt
let fail_io fmt = Printf.ksprintf (fun m -> fail (Api.Error.make Api.Error.Io "%s" m)) fmt

let with_input file f =
  match In_channel.with_open_text file f with
  | v -> v
  | exception Sys_error e -> fail_io "%s" e

let write_output output text =
  match output with
  | None -> print_string text
  | Some file ->
      Out_channel.with_open_text file (fun oc -> output_string oc text);
      Printf.eprintf "wrote %s\n" file

(* ------------------------------------------------------------------ *)
(* trace: read, pick one trace id, merge                               *)

let read_trace_files files =
  List.concat_map
    (fun file ->
      let records, errors = with_input file Obs.Profile.read_channel in
      List.iter (fun e -> Printf.eprintf "warning: %s: %s\n" file e) errors;
      records)
    files

let select_trace ~trace files =
  let records = read_trace_files files in
  if records = [] then
    fail_io "no trace records in %s" (String.concat ", " files);
  let ids = Obs.Profile.trace_ids records in
  let tid =
    match trace with
    | Some t ->
        if List.mem t ids then t
        else
          fail_usage "no records for trace %S (file holds: %s)" t
            (String.concat ", " ids)
    | None -> (
        match ids with
        | [ only ] -> only
        | _ ->
            fail_usage "file holds %d traces; pick one with --trace ID:\n  %s"
              (List.length ids)
              (String.concat "\n  " ids))
  in
  match Obs.Profile.merge ~trace_id:tid records with
  | Ok root -> root
  | Error e -> fail (Api.Error.make Api.Error.Bad_request "%s" e)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"smallworld.trace.v1 JSONL file(s); records of one trace may be \
               spread across several files (client and server sides).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"ID"
         ~doc:"Trace id to assemble.  Required only when the files hold more \
               than one trace.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write to $(docv) instead of stdout.")

let tree_cmd =
  let doc = "Render the merged span tree of one trace as an ASCII table." in
  let run files trace =
    let record = select_trace ~trace files in
    Printf.printf "trace %s (root %s, origin %s)\n" record.Obs.Profile.tr_trace
      record.tr_root.Obs.Span.name record.tr_origin;
    print_string (Obs.Trace.render record.tr_root)
  in
  Cmd.v (Cmd.info "tree" ~doc) Term.(const run $ files_arg $ trace_arg)

let critical_path_cmd =
  let doc =
    "Show the critical path: the heaviest-child chain from the trace root, \
     with each span's self contribution (the sum of self times telescopes to \
     exactly the root's wall time)."
  in
  let run files trace =
    let record = select_trace ~trace files in
    let path = Obs.Profile.critical_path record.Obs.Profile.tr_root in
    Printf.printf "critical path of trace %s:\n" record.tr_trace;
    Printf.printf "  %-32s %12s %12s\n" "span" "wall(ms)" "self(ms)";
    List.iter
      (fun (h : Obs.Profile.hop) ->
        Printf.printf "  %-32s %12.3f %12.3f\n" h.cp_name
          (h.cp_wall_s *. 1e3) (h.cp_self_s *. 1e3))
      path;
    Printf.printf "  %-32s %12s %12.3f\n" "total (= root wall)" ""
      (Obs.Profile.total path *. 1e3)
  in
  Cmd.v (Cmd.info "critical-path" ~doc) Term.(const run $ files_arg $ trace_arg)

let flame_cmd =
  let doc =
    "Emit the merged trace as folded stacks (flamegraph.pl / speedscope): \
     one 'root;child;leaf MICROS' line per span with self time in µs."
  in
  let run files trace output =
    let record = select_trace ~trace files in
    write_output output (Obs.Export.folded_stacks record.Obs.Profile.tr_root)
  in
  Cmd.v (Cmd.info "flame" ~doc)
    Term.(const run $ files_arg $ trace_arg $ output_arg)

let chrome_cmd =
  let doc =
    "Emit the merged trace as Chrome trace-event JSON (chrome://tracing, \
     Perfetto).  The timeline is synthetic — spans are rolled-up profiles — \
     but durations and nesting are real."
  in
  let run files trace output =
    let record = select_trace ~trace files in
    write_output output
      (Obs.Export.chrome_trace ~t0:record.Obs.Profile.tr_t0
         record.Obs.Profile.tr_root
      ^ "\n")
  in
  Cmd.v (Cmd.info "chrome" ~doc)
    Term.(const run $ files_arg $ trace_arg $ output_arg)

let trace_group =
  let doc = "Assemble and render smallworld.trace.v1 span trees." in
  Cmd.group (Cmd.info "trace" ~doc)
    [ tree_cmd; critical_path_cmd; flame_cmd; chrome_cmd ]

(* ------------------------------------------------------------------ *)
(* events analyze                                                      *)

let read_events_file file =
  with_input file (fun ic ->
      let events = ref [] and lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match Obs.Export.json_of_string line with
             | Error e -> Printf.eprintf "warning: %s:%d: %s\n" file !lineno e
             | Ok j -> (
                 match Obs.Export.event_of_json j with
                 | Error e -> Printf.eprintf "warning: %s:%d: %s\n" file !lineno e
                 | Ok ev -> events := ev :: !events)
         done
       with End_of_file -> ());
      (* The ring dump is already seq-ordered, but concatenated or
         hand-edited files may not be; the analysis needs order. *)
      List.sort
        (fun (a : Obs.Events.event) (b : Obs.Events.event) ->
          compare a.seq b.seq)
        (List.rev !events))

let analyze_cmd =
  let doc =
    "Compute trajectory statistics from a smallworld.events.v1 stream: \
     hop-count distribution (vs log log n when --n is given), per-hop \
     objective progress, gravity/pressure phase occupancy, dead-end and \
     patch-entry rates."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"smallworld.events.v1 JSONL file (--events-out of route, \
                 serve, or experiments run).")
  in
  let n_arg =
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N"
           ~doc:"Vertex count of the routed instance; enables the hop-mean \
                 vs ln(ln N) comparison.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the smallworld.analysis.v1 JSON document to \
                 $(docv).")
  in
  let run file n json =
    let events = read_events_file file in
    let a = Obs.Analysis.analyze ?n events in
    print_string (Obs.Analysis.render a);
    Option.iter
      (fun out ->
        Out_channel.with_open_text out (fun oc ->
            output_string oc (Obs.Export.json_to_string (Obs.Analysis.to_json a));
            output_char oc '\n');
        Printf.eprintf "wrote %s\n" out)
      json
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ file_arg $ n_arg $ json_arg)

let events_group =
  let doc = "Analyze smallworld.events.v1 flight-recorder streams." in
  Cmd.group (Cmd.info "events" ~doc) [ analyze_cmd ]

(* ------------------------------------------------------------------ *)

let main =
  let doc = "Trace assembly, profile export, and event-stream analytics." in
  Cmd.group (Cmd.info "smallworld-obs" ~doc) [ trace_group; events_group ]

let () = exit (Cmd.eval main)
