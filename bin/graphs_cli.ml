(* Graph tooling around the generators, parsed through the v1 API:

     graphs_cli gen girg -o net.girg -n 50000 --beta 2.5 [--jobs N] ...
     graphs_cli gen hrg  -o net.girg -n 50000 --alpha-h 0.55 [--jobs N] ...
     graphs_cli gen kleinberg -o net.girg --side 100 ...
     graphs_cli route net.girg -s 4 -t 93 [--protocol phi-dfs]
     graphs_cli route-batch net.girg --count 8 [--pair-seed S] [--pool giant]
     graphs_cli stats net.girg
     graphs_cli api-schema
     graphs_cli embed / import ...

   Every subcommand above the line goes through Api.V1.of_args — the
   same parser, defaults, and deprecation shims the daemon's clients
   use; `api-schema` dumps the machine-readable surface.  Instances are
   stored in the plain-text format of Girg.Store, so external tools can
   consume them directly.                                               *)

let usage =
  "usage: graphs_cli <op> [args]\n\
   ops: gen <girg|hrg|kleinberg> -o FILE ...   sample and save an instance\n\
  \     gen girg --shards S --shard I --spill-out FILE ...\n\
  \                                            sample one shard, spill its edges\n\
  \     merge-shards SPILL,SPILL,.. --name N -o FILE\n\
  \                                            merge spills -> binary snapshot\n\
  \     snapshot FILE --out FILE               re-encode as a binary snapshot\n\
  \     route FILE --source V --target V       route one message\n\
  \     route-batch FILE --count N | --pairs S route many pairs\n\
  \     stats FILE                             structural statistics\n\
  \     mutate FILE --ops leave:5,drop:3:7 -o FILE\n\
  \                                            apply a mutation script (one epoch)\n\
  \     churn FILE --scenario uniform --epochs 3 [--events N] [-o FILE]\n\
  \                                            mutate + re-route per epoch\n\
  \     load --name N --path FILE              check a file loads as an instance\n\
  \     embed FILE -o FILE                     re-embed from connectivity\n\
  \     import FILE -o FILE                    edge list -> routable instance\n\
  \     api-schema                             dump the v1 request schema (JSON)\n\
  \     serve-status --port P [--prometheus]   live telemetry of a running daemon\n\
   Flags per op: graphs_cli api-schema | python3 -m json.tool\n"

let fail err =
  prerr_endline (Api.Error.to_string err);
  exit (Api.Error.exit_code err.Api.Error.code)

let fail_usage fmt = Printf.ksprintf (fun m -> fail (Api.Error.make Api.Error.Usage "%s" m)) fmt

let ok_or_fail = function Ok v -> v | Error e -> fail e

let load_instance path =
  match Girg.Store.load ~path with
  | Ok inst -> inst
  | Error e -> fail (Api.Error.make Api.Error.Io "cannot load %s: %s" path e)

let with_manifest ~command ~seed obs_out f =
  ok_or_fail (Api.Cli.with_manifest ~command ~seed obs_out (fun () -> Ok (f ())))

let apply_jobs (exec : Api.V1.exec_opts) =
  Option.iter Parallel.Global.set_jobs exec.jobs

(* ------------------------------------------------------------------ *)
(* The V1 subcommands                                                  *)

let required_output (exec : Api.V1.exec_opts) =
  match exec.output with
  | Some path -> path
  | None -> fail_usage "an output file is required (-o FILE)"

let run_sample (exec : Api.V1.exec_opts) ~model ~seed =
  let output = required_output exec in
  let command =
    match model with
    | Api.V1.Girg _ -> "gen.girg"
    | Api.V1.Hrg _ -> "gen.hrg"
    | Api.V1.Kleinberg _ -> "gen.kleinberg"
  in
  with_manifest ~command ~seed exec.obs_out @@ fun () ->
  let inst = Api.Render.instantiate ~model ~seed in
  Girg.Store.save ~path:output inst;
  match model with
  | Api.V1.Girg params ->
      Printf.printf "wrote %s: %s -> %d vertices, %d edges (avg degree %.2f)\n" output
        (Girg.Params.to_string params)
        (Sparse_graph.Graph.n inst.graph)
        (Sparse_graph.Graph.m inst.graph)
        (Sparse_graph.Graph.avg_degree inst.graph)
  | Api.V1.Hrg p ->
      Printf.printf "wrote %s: hrg(n=%d, beta=%.2f, C=%g, T=%g) -> %d edges (avg degree %.2f)\n"
        output p.n (Hyperbolic.Hrg.beta p) p.radius_c p.temperature
        (Sparse_graph.Graph.m inst.graph)
        (Sparse_graph.Graph.avg_degree inst.graph)
  | Api.V1.Kleinberg p ->
      Printf.printf "wrote %s: kleinberg(side=%d, q=%d, r=%g) -> %d vertices, %d edges\n"
        output p.side p.long_range p.exponent
        (Sparse_graph.Graph.n inst.graph)
        (Sparse_graph.Graph.m inst.graph)

(* Out-of-core pipeline: gen --spill-out / merge-shards / snapshot.
   A shard run re-derives everything from (seed, params), so S
   independent processes can each produce one spill and a final merge
   rebuilds the exact single-process instance (see Girg.Shard). *)

let run_gen_shard (exec : Api.V1.exec_opts) ~params ~seed ~shards ~shard ~out =
  with_manifest ~command:"gen.shard" ~seed exec.obs_out @@ fun () ->
  let header = Girg.Shard.generate_spill ~path:out ~seed ~shards ~shard params in
  Printf.printf "wrote %s: shard %d/%d of %s -> %d vertices, %d edges in this shard\n"
    out shard shards
    (Girg.Params.to_string params)
    header.Girg.Shard.count header.Girg.Shard.edges

let run_merge_shards (exec : Api.V1.exec_opts) ~spills =
  let output = required_output exec in
  with_manifest ~command:"merge-shards" ~seed:0 exec.obs_out @@ fun () ->
  match Girg.Shard.merge ~paths:spills () with
  | Error e -> fail (Api.Error.make Api.Error.Io "merge failed: %s" e)
  | Ok inst ->
      Girg.Store.save_binary ~path:output inst;
      Printf.printf
        "merged %d spills -> %s: %d vertices, %d edges (v2 binary snapshot)\n"
        (List.length spills) output
        (Sparse_graph.Graph.n inst.Girg.Instance.graph)
        (Sparse_graph.Graph.m inst.Girg.Instance.graph)

let run_snapshot (exec : Api.V1.exec_opts) ~path ~out =
  with_manifest ~command:"snapshot" ~seed:0 exec.obs_out @@ fun () ->
  let inst = load_instance path in
  Girg.Store.save_binary ~path:out inst;
  Printf.printf
    "snapshotted %s -> %s: %d vertices, %d edges, %d bytes (mmap-ready)\n" path out
    (Sparse_graph.Graph.n inst.Girg.Instance.graph)
    (Sparse_graph.Graph.m inst.Girg.Instance.graph)
    (Unix.stat out).Unix.st_size

(* Client-side tracing: wrap the work in a probe span and append one
   smallworld.trace.v1 record to FILE.  With --trace-id the record
   adopts the declared context — its span id is the one the client
   announced, so a daemon-side record written for the same request
   grafts under this one when the files are merged (obs_cli trace).
   Without --trace-id a fresh trace id is generated, making the local
   CLI run a one-record trace of its own. *)
let with_client_trace ~name ~(trace : Api.V1.trace_ctx option) trace_out f =
  match trace_out with
  | None -> f ()
  | Some file ->
      let t0 = Unix.gettimeofday () in
      let result, tree = Obs.Span.probe ~name f in
      (match tree with
      | None ->
          print_endline
            "note: observability is off (SMALLWORLD_OBS=0); no trace record written"
      | Some root ->
          let trace_id, span =
            match trace with
            | Some t -> (t.Api.V1.trace_id, t.Api.V1.parent_span)
            | None ->
                (Printf.sprintf "cli-%d-%x" (Unix.getpid ())
                   (int_of_float (t0 *. 1000.0) land 0xffffff), 1)
          in
          let record =
            { Obs.Profile.tr_trace = trace_id; tr_span = span; tr_parent = None;
              tr_origin = "cli"; tr_t0 = t0; tr_root = root }
          in
          Out_channel.with_open_gen
            [ Open_append; Open_creat; Open_wronly; Open_text ]
            0o644 file
            (fun oc ->
              output_string oc (Obs.Export.trace_line record);
              output_char oc '\n');
          Printf.printf "trace %s written to %s\n" trace_id file);
      result

let run_route (exec : Api.V1.exec_opts) ~trace ~path ~source ~target ~protocol
    ~max_steps =
  with_manifest ~command:"route" ~seed:0 exec.obs_out @@ fun () ->
  let inst = load_instance path in
  if exec.events_out <> None then Obs.Events.clear ();
  let reply =
    with_client_trace ~name:"client.route" ~trace exec.trace_out @@ fun () ->
    ok_or_fail (Api.Render.route ~inst ~protocol ?max_steps ~source ~target ())
  in
  Option.iter
    (fun file ->
      Out_channel.with_open_text file (fun oc ->
          Obs.Export.write_events oc (Obs.Events.events ()));
      if not (Obs.Events.recording ()) then
        print_endline
          "note: flight recorder is off (SMALLWORLD_OBS/_EVENTS); events file is empty")
    exec.events_out;
  print_string reply.Api.V1.text

let run_route_batch (exec : Api.V1.exec_opts) ~trace ~path ~pairs ~protocol
    ~max_steps =
  with_manifest ~command:"route-batch" ~seed:0 exec.obs_out @@ fun () ->
  let inst = load_instance path in
  let resolved = ok_or_fail (Api.Render.resolve_pairs ~inst pairs) in
  let replies =
    with_client_trace ~name:"client.route_batch" ~trace exec.trace_out
    @@ fun () ->
    ok_or_fail (Api.Render.route_batch ~inst ~protocol ?max_steps ~pairs:resolved ())
  in
  List.iter (fun r -> print_string r.Api.V1.text) replies

let run_stats (exec : Api.V1.exec_opts) ~path =
  with_manifest ~command:"stats" ~seed:0 exec.obs_out @@ fun () ->
  let inst = load_instance path in
  let g = inst.Girg.Instance.graph in
  let s = Api.Render.stats inst in
  Printf.printf "params:     %s\n" s.Api.V1.params;
  Printf.printf "vertices:   %d\n" s.vertices;
  Printf.printf "edges:      %d\n" s.edges;
  Printf.printf "avg degree: %.2f (max %d)\n" s.avg_degree s.max_degree;
  Printf.printf "components: %d (giant: %d vertices, %.1f%%)\n" s.components s.giant
    (100.0 *. float_of_int s.giant /. float_of_int (max 1 s.vertices));
  let d_min = max 5 (2 * int_of_float s.avg_degree) in
  (match Sparse_graph.Gstats.power_law_exponent_mle ~d_min g with
  | Some b -> Printf.printf "degree exponent (MLE, tail >= %d): %.2f\n" d_min b
  | None -> ());
  let rng = Prng.Rng.create ~seed:1 in
  Printf.printf "clustering (sampled): %.3f\n"
    (Sparse_graph.Gstats.global_clustering_sample g ~rng ~samples:500)

let run_load (exec : Api.V1.exec_opts) ~name ~path =
  with_manifest ~command:"load" ~seed:0 exec.obs_out @@ fun () ->
  let inst = load_instance path in
  let info = Api.Render.instance_info ~name inst in
  Printf.printf "loaded %s: %s -> %d vertices, %d edges\n" name info.Api.V1.params
    info.vertices info.edges

let run_mutate (exec : Api.V1.exec_opts) ~path ~ops ~seed =
  let output = required_output exec in
  with_manifest ~command:"mutate" ~seed exec.obs_out @@ fun () ->
  let inst = load_instance path in
  (match
     Girg.Mutate.validate ~n:(Sparse_graph.Graph.n inst.Girg.Instance.graph) ops
   with
  | Error m -> fail (Api.Error.make Api.Error.Bad_request "%s" m)
  | Ok () -> ());
  let mutated = Girg.Mutate.apply ~seed inst ops in
  (* The store formats carry a plain CSR, so fold the overlay before
     writing; traversal is identical by the compact contract. *)
  let folded =
    {
      mutated with
      Girg.Instance.graph = Sparse_graph.Graph.compact mutated.Girg.Instance.graph;
    }
  in
  Girg.Store.save ~path:output folded;
  let g = folded.Girg.Instance.graph in
  Printf.printf "mutated %s -> %s: epoch %d, %d ops, %d/%d live, %d edges\n" path
    output
    (Sparse_graph.Graph.epoch g)
    (List.length ops)
    (Sparse_graph.Graph.live_count g)
    (Sparse_graph.Graph.n g) (Sparse_graph.Graph.m g)

let run_churn (exec : Api.V1.exec_opts) ~path ~(config : Experiments.Churn.config) =
  with_manifest ~command:"churn" ~seed:config.seed exec.obs_out @@ fun () ->
  let inst = load_instance path in
  let _final, rows = Experiments.Churn.run_local config inst in
  print_string (Stats.Table.render (Experiments.Churn.table config rows));
  Option.iter
    (fun file ->
      Out_channel.with_open_text file (fun oc ->
          List.iter
            (fun row ->
              output_string oc
                (Obs.Export.json_to_string (Experiments.Churn.record_json config row));
              output_char oc '\n')
            rows);
      Printf.printf "wrote %d smallworld.churn.v1 records to %s\n" (List.length rows)
        file)
    exec.output

let run_v1 args =
  let env, exec = ok_or_fail (Api.V1.of_args args) in
  apply_jobs exec;
  match env.Api.V1.request with
  | Api.V1.Sample { name = _; model; seed } -> run_sample exec ~model ~seed
  | Api.V1.Route { instance; source; target; protocol; max_steps } ->
      run_route exec ~trace:env.Api.V1.trace ~path:instance ~source ~target
        ~protocol ~max_steps
  | Api.V1.Route_batch { instance; pairs; protocol; max_steps } ->
      run_route_batch exec ~trace:env.Api.V1.trace ~path:instance ~pairs
        ~protocol ~max_steps
  | Api.V1.Stats { instance } -> run_stats exec ~path:instance
  | Api.V1.Gen_shard { params; seed; shards; shard; out } ->
      run_gen_shard exec ~params ~seed ~shards ~shard ~out
  | Api.V1.Merge_shards { name = _; spills } -> run_merge_shards exec ~spills
  | Api.V1.Snapshot { instance; out } -> run_snapshot exec ~path:instance ~out
  | Api.V1.Mutate { instance; ops; seed } -> run_mutate exec ~path:instance ~ops ~seed
  | Api.V1.Churn { instance; config } -> run_churn exec ~path:instance ~config
  | Api.V1.Load { name; path } -> run_load exec ~name ~path
  | Api.V1.Server_stats ->
      fail_usage
        "stats-server queries a running daemon; use `graphs_cli serve-status --port P`"
  | Api.V1.Health | Api.V1.Drain ->
      fail_usage "health and drain are daemon requests; run `serve` and send them over TCP"

(* ------------------------------------------------------------------ *)
(* embed / import: not part of the serving API (they produce files,
   not replies), so they keep a local flag parser with the same
   conventions.                                                        *)

let scan_flags ~op ~known args =
  let seen = Hashtbl.create 8 in
  let positional = ref None in
  let rec go = function
    | [] -> ()
    | tok :: rest when String.length tok > 1 && tok.[0] = '-' -> (
        match List.assoc_opt tok known with
        | None -> fail (Api.Error.make Api.Error.Bad_request "unknown flag %S for %s" tok op)
        | Some canonical -> (
            match rest with
            | v :: rest ->
                Hashtbl.replace seen canonical v;
                go rest
            | [] -> fail (Api.Error.make Api.Error.Bad_request "flag %s expects a value" tok)))
    | tok :: rest ->
        if !positional = None then positional := Some tok
        else fail_usage "unexpected argument %S for %s" tok op;
        go rest
  in
  go args;
  (seen, !positional)

let int_flag ~op seen flag ~default =
  match Hashtbl.find_opt seen flag with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None -> fail (Api.Error.make Api.Error.Bad_request "flag %s of %s expects an integer" flag op))

let embed_known =
  [ ("-o", "--output"); ("--output", "--output");
    ("--refinement-sweeps", "--refinement-sweeps"); ("--seed", "--seed");
    ("--obs-out", "--obs-out") ]

let run_embed args =
  let seen, positional = scan_flags ~op:"embed" ~known:embed_known args in
  let path = match positional with Some p -> p | None -> fail_usage "embed needs an instance file" in
  let out =
    match Hashtbl.find_opt seen "--output" with
    | Some o -> o
    | None -> fail_usage "embed requires -o FILE"
  in
  let sweeps = int_flag ~op:"embed" seen "--refinement-sweeps" ~default:0 in
  let seed = int_flag ~op:"embed" seen "--seed" ~default:42 in
  with_manifest ~command:"embed" ~seed (Hashtbl.find_opt seen "--obs-out") @@ fun () ->
  let inst = load_instance path in
  let graph = inst.Girg.Instance.graph in
  let rng = Prng.Rng.create ~seed in
  let embedding = Hyperbolic.Embed.infer ~rng ~graph ~refinement_sweeps:sweeps () in
  let h = Hyperbolic.Embed.to_hrg embedding ~graph in
  let n = Sparse_graph.Graph.n graph in
  let girg_params =
    Girg.Params.make ~dim:1 ~beta:2.5
      ~w_min:(Array.fold_left Float.min infinity h.Hyperbolic.Hrg.weights)
      ~alpha:Girg.Params.Infinite ~poisson_count:false ~n ()
  in
  Girg.Store.save ~path:out
    {
      Girg.Instance.params = girg_params;
      weights = h.Hyperbolic.Hrg.weights;
      positions = h.Hyperbolic.Hrg.positions;
      packed = Geometry.Torus.Packed.of_points ~dim:1 h.Hyperbolic.Hrg.positions;
      graph;
    };
  Printf.printf
    "embedded %d vertices from connectivity alone; wrote %s\n\
     (route on it with `graphs_cli route %s -s .. -t ..`)\n"
    n out out

let import_known =
  [ ("-o", "--output"); ("--output", "--output"); ("--seed", "--seed");
    ("--obs-out", "--obs-out") ]

let run_import args =
  let seen, positional = scan_flags ~op:"import" ~known:import_known args in
  let path = match positional with Some p -> p | None -> fail_usage "import needs an edge-list file" in
  let out =
    match Hashtbl.find_opt seen "--output" with
    | Some o -> o
    | None -> fail_usage "import requires -o FILE"
  in
  let seed = int_flag ~op:"import" seen "--seed" ~default:42 in
  with_manifest ~command:"import" ~seed (Hashtbl.find_opt seen "--obs-out") @@ fun () ->
  match Sparse_graph.Io.load ~path with
  | Error e -> fail (Api.Error.make Api.Error.Io "cannot load %s: %s" path e)
  | Ok graph ->
      let rng = Prng.Rng.create ~seed in
      let embedding = Hyperbolic.Embed.infer ~rng ~graph () in
      let h = Hyperbolic.Embed.to_hrg embedding ~graph in
      let n = Sparse_graph.Graph.n graph in
      let girg_params =
        Girg.Params.make ~dim:1 ~beta:2.5
          ~w_min:(Array.fold_left Float.min infinity h.Hyperbolic.Hrg.weights)
          ~alpha:Girg.Params.Infinite ~poisson_count:false ~n ()
      in
      Girg.Store.save ~path:out
        {
          Girg.Instance.params = girg_params;
          weights = h.Hyperbolic.Hrg.weights;
          positions = h.Hyperbolic.Hrg.positions;
          packed = Geometry.Torus.Packed.of_points ~dim:1 h.Hyperbolic.Hrg.positions;
          graph;
        };
      Printf.printf "imported %d vertices / %d edges and embedded them; wrote %s\n" n
        (Sparse_graph.Graph.m graph) out

(* ------------------------------------------------------------------ *)
(* serve-status: dial a running daemon (main or admin port), send one
   stats-server request, and render the reply for humans.             *)

let send_and_read_line fd out =
  let len = String.length out in
  let rec w off =
    if off < len then w (off + Unix.write_substring fd out off (len - off))
  in
  w 0;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec r () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n -> (
        let s = Bytes.sub_string chunk 0 n in
        match String.index_opt s '\n' with
        | Some i ->
            Buffer.add_string buf (String.sub s 0 i);
            Buffer.contents buf
        | None ->
            Buffer.add_string buf s;
            r ())
  in
  r ()

let render_server_stats (s : Api.V1.server_stats_reply) =
  Printf.printf "uptime:  %.1f s%s\n" s.Api.V1.uptime_s
    (if s.Api.V1.s_draining then "  (draining)" else "");
  Printf.printf "obs:     %s\n"
    (if s.Api.V1.obs_live then "live"
     else "off (SMALLWORLD_OBS=0) — stage histograms are empty");
  print_endline "counters:";
  List.iter (fun (k, v) -> Printf.printf "  %-26s %d\n" k v) s.Api.V1.s_counters;
  print_endline "gauges:";
  List.iter (fun (k, v) -> Printf.printf "  %-26s %g\n" k v) s.Api.V1.gauges;
  let live = List.filter (fun st -> st.Api.V1.s_count > 0) s.Api.V1.stages in
  if live <> [] then begin
    print_endline "latency (seconds):";
    Printf.printf "  %-22s %8s %11s %11s %11s %11s %11s\n" "stage" "count" "p50"
      "p90" "p99" "p999" "max";
    List.iter
      (fun st ->
        Printf.printf "  %-22s %8d %11.6f %11.6f %11.6f %11.6f %11.6f\n"
          st.Api.V1.stage st.Api.V1.s_count st.Api.V1.p50 st.Api.V1.p90
          st.Api.V1.p99 st.Api.V1.p999 st.Api.V1.s_max)
      live
  end

let run_serve_status args =
  let host = ref "127.0.0.1" and port = ref None and prometheus = ref false in
  let rec go = function
    | [] -> ()
    | "--host" :: v :: rest ->
        host := v;
        go rest
    | "--port" :: v :: rest ->
        (match int_of_string_opt v with
        | Some p -> port := Some p
        | None -> fail_usage "--port expects an integer, got %S" v);
        go rest
    | "--prometheus" :: rest ->
        prometheus := true;
        go rest
    | tok :: _ ->
        fail_usage
          "unknown argument %S for serve-status (flags: --host ADDR --port P [--prometheus])"
          tok
  in
  go args;
  let port =
    match !port with
    | Some p -> p
    | None -> fail_usage "serve-status requires --port P (the daemon's main or admin port)"
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string !host, port))
   with Unix.Unix_error (e, _, _) ->
     fail
       (Api.Error.make Api.Error.Io "cannot connect to %s:%d: %s" !host port
          (Unix.error_message e)));
  let line =
    send_and_read_line fd
      (Api.V1.request_line (Api.V1.envelope Api.V1.Server_stats) ^ "\n")
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if line = "" then
    fail (Api.Error.make Api.Error.Io "daemon at %s:%d closed without replying" !host port);
  match Api.V1.reply_of_line line with
  | Error e -> fail e
  | Ok { Api.V1.response = Api.V1.Failed e; _ } -> fail e
  | Ok { Api.V1.response = Api.V1.Server_stats_reply s; _ } ->
      if !prometheus then print_string s.Api.V1.prometheus
      else render_server_stats s
  | Ok _ -> fail (Api.Error.make Api.Error.Bad_request "unexpected reply kind from daemon")

(* ------------------------------------------------------------------ *)

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [] | [ "help" ] | [ "--help" ] | [ "-h" ] ->
      print_string usage;
      exit 0
  | [ "api-schema" ] ->
      print_endline (Obs.Export.json_to_string (Api.V1.schema_json ()));
      exit 0
  | "embed" :: rest -> run_embed rest
  | "import" :: rest -> run_import rest
  | "serve-status" :: rest -> run_serve_status rest
  | args -> run_v1 args
