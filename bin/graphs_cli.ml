(* Graph tooling around the generators:

     graphs_cli gen girg -o net.girg -n 50000 --beta 2.5 [--jobs N] ...
     graphs_cli gen hrg  -o net.girg -n 50000 --alpha-h 0.55 [--jobs N] ...
     graphs_cli route net.girg -s 4 -t 93 [--protocol phi-dfs]
     graphs_cli stats net.girg

   Instances are stored in the plain-text format of Girg.Store, so external
   tools can consume them directly.                                          *)

open Cmdliner

let load_instance path =
  match Girg.Store.load ~path with
  | Ok inst -> Ok inst
  | Error e -> Error (`Msg (Printf.sprintf "cannot load %s: %s" path e))

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for edge sampling (0 = all cores).  Overrides \
               SMALLWORLD_JOBS; the sampled graph is identical for any value.")

let apply_jobs = function
  | None -> Ok ()
  | Some j when j >= 0 -> Ok (Parallel.Global.set_jobs j)
  | Some _ -> Error (`Msg "--jobs expects a non-negative integer")

(* --obs-out parity with experiments_cli and bench: one JSONL manifest
   line (metrics snapshot + span tree) for the command that just ran. *)
let obs_out_arg =
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"FILE"
         ~doc:"Write a JSONL run manifest (span tree + metric snapshot) to $(docv).")

let with_manifest ~command ~seed obs_out f =
  let result, span = Obs.Span.time ~name:("cli." ^ command) f in
  (match (result, obs_out) with
  | Ok (), Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Obs.Export.manifest_line ~experiment:("cli." ^ command) ~seed ~scale:"cli"
               ~registry:Obs.Metrics.default ~span ());
          output_char oc '\n')
  | _ -> ());
  result

let out_arg =
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output instance file.")

let gen_girg_cmd =
  let doc = "Sample a geometric inhomogeneous random graph and save it." in
  let n = Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Expected vertex count.") in
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~doc:"Torus dimension.") in
  let beta = Arg.(value & opt float 2.5 & info [ "beta" ] ~doc:"Power-law exponent in (2,3).") in
  let w_min = Arg.(value & opt float 1.0 & info [ "w-min" ] ~doc:"Minimum weight.") in
  let alpha =
    Arg.(value & opt string "2.0" & info [ "alpha" ] ~doc:"Decay parameter (> 1) or 'inf'.")
  in
  let c = Arg.(value & opt float 0.25 & info [ "c" ] ~doc:"Edge probability constant.") in
  let fixed =
    Arg.(value & flag & info [ "fixed-count" ] ~doc:"Exactly n vertices instead of Poisson(n).")
  in
  let run n dim beta w_min alpha c fixed seed output obs_out jobs =
    with_manifest ~command:"gen.girg" ~seed obs_out @@ fun () ->
    match apply_jobs jobs with
    | Error e -> Error e
    | Ok () ->
    let alpha =
      match alpha with
      | "inf" | "infinity" -> Ok Girg.Params.Infinite
      | s -> begin
          match float_of_string_opt s with
          | Some a -> Ok (Girg.Params.Finite a)
          | None -> Error (`Msg (Printf.sprintf "bad --alpha %S" s))
        end
    in
    match alpha with
    | Error e -> Error e
    | Ok alpha -> begin
        match
          Girg.Params.validate
            { Girg.Params.n; dim; beta; w_min; alpha; c; norm = Geometry.Torus.Linf;
              poisson_count = not fixed }
        with
        | Error e -> Error (`Msg e)
        | Ok params ->
            let rng = Prng.Rng.create ~seed in
            let inst = Girg.Instance.generate ~rng params in
            Girg.Store.save ~path:output inst;
            Printf.printf "wrote %s: %s -> %d vertices, %d edges (avg degree %.2f)\n" output
              (Girg.Params.to_string params)
              (Sparse_graph.Graph.n inst.graph)
              (Sparse_graph.Graph.m inst.graph)
              (Sparse_graph.Graph.avg_degree inst.graph);
            Ok ()
      end
  in
  Cmd.v (Cmd.info "girg" ~doc)
    Term.(
      term_result
        (const run $ n $ dim $ beta $ w_min $ alpha $ c $ fixed $ seed_arg $ out_arg
       $ obs_out_arg $ jobs_arg))

let gen_hrg_cmd =
  let doc = "Sample a hyperbolic random graph (stored as its equivalent 1-d GIRG)." in
  let n = Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Vertex count.") in
  let alpha_h =
    Arg.(value & opt float 0.75 & info [ "alpha-h" ] ~doc:"Radial dispersion in (1/2, 1).")
  in
  let radius_c = Arg.(value & opt float 0.0 & info [ "radius-c" ] ~doc:"Constant C in R = 2 ln n + C.") in
  let temperature = Arg.(value & opt float 0.0 & info [ "temperature" ] ~doc:"T in [0, 1).") in
  let run n alpha_h radius_c temperature seed output obs_out jobs =
    with_manifest ~command:"gen.hrg" ~seed obs_out @@ fun () ->
    match apply_jobs jobs with
    | Error e -> Error e
    | Ok () ->
    match Hyperbolic.Hrg.make ~alpha_h ~radius_c ~temperature ~n () with
    | exception Invalid_argument e -> Error (`Msg e)
    | p ->
        let rng = Prng.Rng.create ~seed in
        let h = Hyperbolic.Hrg.generate ~rng p in
        (* Persist through the GIRG equivalence of Section 11; note the
           stored kernel parameters describe the equivalent GIRG, and phi on
           that instance orders vertices like the hyperbolic objective. *)
        let girg_params =
          Girg.Params.make ~dim:1
            ~beta:(Float.min 2.999 (Hyperbolic.Hrg.beta p))
            ~w_min:(exp (-.radius_c /. 2.0))
            ~alpha:
              (if temperature = 0.0 then Girg.Params.Infinite
               else Girg.Params.Finite (1.0 /. temperature))
            ~poisson_count:false ~n ()
        in
        let inst =
          {
            Girg.Instance.params = girg_params;
            weights = h.weights;
            positions = h.positions;
            packed = Geometry.Torus.Packed.of_points ~dim:1 h.positions;
            graph = h.graph;
          }
        in
        Girg.Store.save ~path:output inst;
        Printf.printf "wrote %s: hrg(n=%d, beta=%.2f, C=%g, T=%g) -> %d edges (avg degree %.2f)\n"
          output n (Hyperbolic.Hrg.beta p) radius_c temperature
          (Sparse_graph.Graph.m h.graph)
          (Sparse_graph.Graph.avg_degree h.graph);
        Ok ()
  in
  Cmd.v (Cmd.info "hrg" ~doc)
    Term.(
      term_result
        (const run $ n $ alpha_h $ radius_c $ temperature $ seed_arg $ out_arg $ obs_out_arg
       $ jobs_arg))

let gen_cmd = Cmd.group (Cmd.info "gen" ~doc:"Sample and save random graph instances.") [ gen_girg_cmd; gen_hrg_cmd ]

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Instance file.")

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "greedy" -> Ok Greedy_routing.Protocol.Greedy
    | "phi-dfs" | "dfs" -> Ok Greedy_routing.Protocol.Patch_dfs
    | "history" -> Ok Greedy_routing.Protocol.Patch_history
    | "gravity-pressure" | "gp" -> Ok Greedy_routing.Protocol.Gravity_pressure
    | other -> Error (`Msg (Printf.sprintf "unknown protocol %S" other))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Greedy_routing.Protocol.name p))

let route_cmd =
  let doc = "Route a message on a saved instance and print the walk." in
  let source = Arg.(required & opt (some int) None & info [ "s"; "source" ] ~docv:"V" ~doc:"Source vertex.") in
  let target = Arg.(required & opt (some int) None & info [ "t"; "target" ] ~docv:"V" ~doc:"Target vertex.") in
  let protocol =
    Arg.(value & opt protocol_conv Greedy_routing.Protocol.Greedy
           & info [ "protocol" ] ~docv:"P" ~doc:"greedy | phi-dfs | history | gravity-pressure.")
  in
  let events_out =
    Arg.(value & opt (some string) None & info [ "events-out" ] ~docv:"FILE"
           ~doc:"Write the route's flight-recorder events (smallworld.events.v1 \
                 JSONL) to $(docv) for offline hop-by-hop replay.")
  in
  let run path source target protocol obs_out events_out =
    with_manifest ~command:"route" ~seed:0 obs_out @@ fun () ->
    match load_instance path with
    | Error e -> Error e
    | Ok inst ->
        let n = Sparse_graph.Graph.n inst.graph in
        if source < 0 || source >= n || target < 0 || target >= n then
          Error (`Msg (Printf.sprintf "vertices must lie in [0, %d)" n))
        else begin
          let objective = Greedy_routing.Objective.girg_phi inst ~target in
          if events_out <> None then Obs.Events.clear ();
          let outcome =
            Greedy_routing.Protocol.run protocol ~graph:inst.graph ~objective ~source ()
          in
          Option.iter
            (fun file ->
              Out_channel.with_open_text file (fun oc ->
                  Obs.Export.write_events oc (Obs.Events.events ()));
              if not (Obs.Events.recording ()) then
                print_endline "note: flight recorder is off (SMALLWORLD_OBS/_EVENTS); events file is empty")
            events_out;
          Printf.printf "%s: %s\n"
            (Greedy_routing.Protocol.name protocol)
            (Greedy_routing.Outcome.to_string outcome);
          if List.length outcome.walk <= 50 then
            Printf.printf "walk: %s\n"
              (String.concat " -> " (List.map string_of_int outcome.walk))
          else Printf.printf "walk: (%d hops, omitted)\n" outcome.steps;
          (match Sparse_graph.Bfs.distance inst.graph ~source ~target with
          | Some d when d > 0 && Greedy_routing.Outcome.delivered outcome ->
              Printf.printf "shortest path: %d hops (stretch %.3f)\n" d
                (float_of_int outcome.steps /. float_of_int d)
          | Some d -> Printf.printf "shortest path: %d hops\n" d
          | None -> print_endline "source and target are disconnected");
          Ok ()
        end
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(term_result (const run $ file_arg $ source $ target $ protocol $ obs_out_arg $ events_out))

let embed_cmd =
  let doc =
    "Infer hyperbolic coordinates for a saved instance from its connectivity \
     alone and save the re-embedded instance (the pipeline of Boguna et al.)."
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file for the embedded instance.")
  in
  let sweeps =
    Arg.(value & opt int 0 & info [ "refinement-sweeps" ] ~docv:"K"
           ~doc:"Windowed likelihood refinement sweeps after the tree layout.")
  in
  let run path out sweeps seed obs_out =
    with_manifest ~command:"embed" ~seed obs_out @@ fun () ->
    match load_instance path with
    | Error e -> Error e
    | Ok inst ->
        let graph = inst.Girg.Instance.graph in
        let rng = Prng.Rng.create ~seed in
        let embedding =
          Hyperbolic.Embed.infer ~rng ~graph ~refinement_sweeps:sweeps ()
        in
        let h = Hyperbolic.Embed.to_hrg embedding ~graph in
        let n = Sparse_graph.Graph.n graph in
        let girg_params =
          Girg.Params.make ~dim:1 ~beta:2.5
            ~w_min:
              (Array.fold_left Float.min infinity h.Hyperbolic.Hrg.weights)
            ~alpha:Girg.Params.Infinite ~poisson_count:false ~n ()
        in
        Girg.Store.save ~path:out
          {
            Girg.Instance.params = girg_params;
            weights = h.Hyperbolic.Hrg.weights;
            positions = h.Hyperbolic.Hrg.positions;
            packed = Geometry.Torus.Packed.of_points ~dim:1 h.Hyperbolic.Hrg.positions;
            graph;
          };
        Printf.printf
          "embedded %d vertices from connectivity alone; wrote %s\n\
           (route on it with `graphs_cli route %s -s .. -t ..`)\n"
          n out out;
        Ok ()
  in
  Cmd.v (Cmd.info "embed" ~doc)
    Term.(term_result (const run $ file_arg $ out $ sweeps $ seed_arg $ obs_out_arg))

let import_cmd =
  let doc =
    "Import a bare edge list (smallworld-graph format), infer hyperbolic \
     coordinates from its connectivity, and save a routable instance -- \
     greedy routing on arbitrary graphs, the full [11] pipeline."
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output instance file.")
  in
  let run path out seed obs_out =
    with_manifest ~command:"import" ~seed obs_out @@ fun () ->
    match Sparse_graph.Io.load ~path with
    | Error e -> Error (`Msg (Printf.sprintf "cannot load %s: %s" path e))
    | Ok graph ->
        let rng = Prng.Rng.create ~seed in
        let embedding = Hyperbolic.Embed.infer ~rng ~graph () in
        let h = Hyperbolic.Embed.to_hrg embedding ~graph in
        let n = Sparse_graph.Graph.n graph in
        let girg_params =
          Girg.Params.make ~dim:1 ~beta:2.5
            ~w_min:(Array.fold_left Float.min infinity h.Hyperbolic.Hrg.weights)
            ~alpha:Girg.Params.Infinite ~poisson_count:false ~n ()
        in
        Girg.Store.save ~path:out
          {
            Girg.Instance.params = girg_params;
            weights = h.Hyperbolic.Hrg.weights;
            positions = h.Hyperbolic.Hrg.positions;
            packed = Geometry.Torus.Packed.of_points ~dim:1 h.Hyperbolic.Hrg.positions;
            graph;
          };
        Printf.printf "imported %d vertices / %d edges and embedded them; wrote %s\n" n
          (Sparse_graph.Graph.m graph) out;
        Ok ()
  in
  Cmd.v (Cmd.info "import" ~doc)
    Term.(term_result (const run $ file_arg $ out $ seed_arg $ obs_out_arg))

let stats_cmd =
  let doc = "Print structural statistics of a saved instance." in
  let run path obs_out =
    with_manifest ~command:"stats" ~seed:0 obs_out @@ fun () ->
    match load_instance path with
    | Error e -> Error e
    | Ok inst ->
        let g = inst.graph in
        let comps = Sparse_graph.Components.compute g in
        Printf.printf "params:     %s\n" (Girg.Params.to_string inst.params);
        Printf.printf "vertices:   %d\n" (Sparse_graph.Graph.n g);
        Printf.printf "edges:      %d\n" (Sparse_graph.Graph.m g);
        Printf.printf "avg degree: %.2f (max %d)\n" (Sparse_graph.Graph.avg_degree g)
          (Sparse_graph.Graph.max_degree g);
        Printf.printf "components: %d (giant: %d vertices, %.1f%%)\n"
          (Sparse_graph.Components.count comps)
          (Sparse_graph.Components.giant_size comps)
          (100.0
          *. float_of_int (Sparse_graph.Components.giant_size comps)
          /. float_of_int (max 1 (Sparse_graph.Graph.n g)));
        let d_min = max 5 (2 * int_of_float (Sparse_graph.Graph.avg_degree g)) in
        (match Sparse_graph.Gstats.power_law_exponent_mle ~d_min g with
        | Some b -> Printf.printf "degree exponent (MLE, tail >= %d): %.2f\n" d_min b
        | None -> ());
        let rng = Prng.Rng.create ~seed:1 in
        Printf.printf "clustering (sampled): %.3f\n"
          (Sparse_graph.Gstats.global_clustering_sample g ~rng ~samples:500);
        Ok ()
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(term_result (const run $ file_arg $ obs_out_arg))

let main =
  let doc = "Generate, inspect and route on saved random-graph instances." in
  Cmd.group (Cmd.info "smallworld-graphs" ~doc) [ gen_cmd; route_cmd; stats_cmd; embed_cmd; import_cmd ]

let () = exit (Cmd.eval main)
