(* The routing daemon:

     serve [--port P] [--workers N] [--queue-cap N] [--registry-cap N]
           [--max-batch N] [--load NAME=FILE]... [--obs-out FILE] [-j N]
           [--admin-port P] [--access-log FILE [--access-log-sample N]]
           [--obs-interval SECS] [--events-out FILE] [--trace-out FILE]

   Newline-delimited JSON over TCP; the request schema is
   `graphs_cli api-schema`.  SIGTERM / SIGINT (or a client `drain`
   request) drain gracefully: in-flight requests finish, the obs
   manifest is written, exit status 0.  SIGHUP forces a manifest
   rewrite + access-log flush without draining.  --admin-port opens a
   telemetry listener (HTTP GET /metrics for Prometheus, /stats for
   JSON; also the stats-server JSON op) that answers under full load.  *)

open Cmdliner

let host_arg =
  Arg.(value & opt string Server.Daemon.default_config.host
         & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port_arg =
  Arg.(value & opt int Server.Daemon.default_config.port
         & info [ "port" ] ~docv:"P" ~doc:"TCP port (0 = ephemeral, printed on startup).")

let workers_arg =
  Arg.(value & opt int Server.Daemon.default_config.workers
         & info [ "workers" ] ~docv:"N" ~doc:"Connection-serving domains.")

let queue_cap_arg =
  Arg.(value & opt int Server.Daemon.default_config.queue_cap
         & info [ "queue-cap" ] ~docv:"N"
         ~doc:"Pending-request bound; beyond it requests get the \
               'overloaded' error instead of queueing.")

let json_only_arg =
  Arg.(value & flag
         & info [ "json-only" ]
         ~doc:"Refuse binary-framed clients: a connection opening with the \
               0xB1 magic byte gets a JSON bad-request reply and is closed.")

let cache_cap_arg =
  Arg.(value & opt int Server.Daemon.default_config.cache_cap
         & info [ "cache-cap" ] ~docv:"N"
         ~doc:"Route-cache capacity in entries (LRU, keyed on instance \
               generation); 0 disables caching.")

let registry_cap_arg =
  Arg.(value & opt int Server.Daemon.default_config.registry_cap
         & info [ "registry-cap" ] ~docv:"N" ~doc:"Instance registry LRU capacity.")

let max_batch_arg =
  Arg.(value & opt int Server.Daemon.default_config.max_batch
         & info [ "max-batch" ] ~docv:"N"
         ~doc:"Largest accepted route_batch; bigger requests get 'overloaded'.")

let admin_port_arg =
  Arg.(value & opt (some int) None
         & info [ "admin-port" ] ~docv:"P"
         ~doc:"Open a telemetry listener on this port (0 = ephemeral, printed \
               on startup): HTTP GET /metrics (Prometheus text) and /stats \
               (stats-server JSON), plus the stats-server/health JSON ops. \
               Served off the worker queue, so scrapes answer under full load.")

let access_log_arg =
  Arg.(value & opt (some string) None
         & info [ "access-log" ] ~docv:"FILE"
         ~doc:"Append one smallworld.access.v1 JSONL line per request \
               (request id, op, instance, stage timings, outcome).")

let access_sample_arg =
  Arg.(value & opt int Server.Daemon.default_config.access_sample
         & info [ "access-log-sample" ] ~docv:"N"
         ~doc:"Log 1 request in N (deterministic, by request id); default 1.")

let obs_interval_arg =
  Arg.(value & opt float Server.Daemon.default_config.obs_interval
         & info [ "obs-interval" ] ~docv:"SECS"
         ~doc:"Rewrite the --obs-out manifest (and flush the access log) every \
               SECS seconds, not only at drain; <= 0 disables the timer. \
               SIGHUP forces a rewrite at any time.")

let events_out_arg =
  Arg.(value & opt (some string) None
         & info [ "events-out" ] ~docv:"FILE"
         ~doc:"Dump the flight-recorder event ring as smallworld.events.v1 JSONL \
               when the daemon drains (empty under SMALLWORLD_OBS=0).")

let trace_out_arg =
  Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Append one smallworld.trace.v1 record per request that carries a \
               trace context (the envelope's trace field / --trace-id), linking \
               server stage spans and algorithm spans under the client's span. \
               Requires observability on.")

let load_arg =
  Arg.(value & opt_all string [] & info [ "load" ] ~docv:"NAME=FILE"
         ~doc:"Preload a saved instance into the registry before serving; repeatable.")

let preload ex spec =
  match String.index_opt spec '=' with
  | None -> Error (Api.Error.make Api.Error.Usage "--load expects NAME=FILE, got %S" spec)
  | Some i ->
      let name = String.sub spec 0 i in
      let path = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match Server.Exec.handle ex (Api.V1.Load { name; path }) with
      | Api.V1.Failed e -> Error e
      | _ ->
          Printf.printf "loaded %s from %s\n%!" name path;
          Ok ())

let run host port workers queue_cap registry_cap max_batch admin_port access_log
    access_sample obs_interval events_out trace_out json_only cache_cap loads
    obs_out jobs =
  match Api.Cli.apply_jobs jobs with
  | Error e -> Error e
  | Ok () -> (
      let config =
        {
          Server.Daemon.host;
          port;
          workers;
          queue_cap;
          registry_cap;
          max_batch;
          obs_out;
          obs_interval;
          admin_port;
          access_log;
          access_sample;
          events_out;
          trace_out;
          json_only;
          cache_cap;
        }
      in
      let t = Server.Daemon.create config in
      let rec load_all = function
        | [] -> Ok ()
        | spec :: rest -> (
            match preload (Server.Daemon.exec t) spec with
            | Ok () -> load_all rest
            | Error e -> Error e)
      in
      match load_all loads with
      | Error e ->
          Server.Daemon.stop t;
          Server.Daemon.serve t;
          prerr_endline (Api.Error.to_string e);
          exit (Api.Error.exit_code e.code)
      | Ok () ->
          let drain _ = Server.Daemon.stop t in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
          Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
          Sys.set_signal Sys.sighup
            (Sys.Signal_handle (fun _ -> Server.Daemon.request_manifest t));
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          Printf.printf "serving on %s:%d (%d workers, queue %d, registry %d)\n%!" host
            (Server.Daemon.port t) workers queue_cap registry_cap;
          Option.iter
            (fun p -> Printf.printf "admin on %s:%d (/metrics, /stats)\n%!" host p)
            (Server.Daemon.admin_port t);
          Server.Daemon.serve t;
          Printf.printf "drained: %d accepted, %d served, %d rejected, %d deadline-missed\n%!"
            (Server.Exec.accepted (Server.Daemon.exec t))
            (Server.Exec.served (Server.Daemon.exec t))
            (Server.Exec.rejected (Server.Daemon.exec t))
            (Server.Exec.deadline_missed (Server.Daemon.exec t));
          Ok ())

let main =
  let doc = "Serve route/sample/stats queries over newline-delimited JSON (API v1)." in
  Cmd.v (Cmd.info "smallworld-serve" ~doc)
    Term.(
      term_result
        (const run $ host_arg $ port_arg $ workers_arg $ queue_cap_arg
       $ registry_cap_arg $ max_batch_arg $ admin_port_arg $ access_log_arg
       $ access_sample_arg $ obs_interval_arg $ events_out_arg $ trace_out_arg
       $ json_only_arg $ cache_cap_arg $ load_arg $ Api.Cli.obs_out
       $ Api.Cli.jobs))

let () = exit (Cmd.eval main)
