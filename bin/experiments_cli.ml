(* Command-line driver for the paper-reproduction experiment suite.

     experiments_cli list
     experiments_cli list-metrics
     experiments_cli run [-e E3] [-e E5] [--quick] [--seed N] [--csv DIR]
                         [--obs-out FILE] [--events-out FILE] [--jobs N]    *)

open Cmdliner

let scale_of_quick quick = if quick then Experiments.Context.Quick else Experiments.Context.Standard

(* The jobs / seed / obs-out flags are the shared Api.Cli terms, so
   this binary validates them exactly like graphs_cli and serve. *)
let jobs_arg = Api.Cli.jobs
let apply_jobs = Api.Cli.apply_jobs

let list_cmd =
  let doc = "List all experiments with the paper claim each one reproduces." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n     %s\n\n" e.Experiments.Registry.id e.title e.claim)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let list_metrics_cmd =
  let doc =
    "List every registered metric name and kind (the run-manifest schema); \
     metric registration happens at startup, so this is the complete set."
  in
  let run () =
    List.iter
      (fun (name, kind) ->
        Printf.printf "%-36s %s\n" name (Obs.Metrics.kind_to_string kind))
      (Obs.Metrics.list_metrics Obs.Metrics.default)
  in
  Cmd.v (Cmd.info "list-metrics" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments (all by default) and print their tables." in
  let ids =
    Arg.(value & opt_all string [] & info [ "e"; "experiment" ] ~docv:"ID"
           ~doc:"Experiment id (e.g. E3); repeatable.  Default: all.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes (seconds instead of minutes).")
  in
  let seed = Api.Cli.seed in
  let csv_dir =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write every table as a CSV file into $(docv).")
  in
  let obs_out = Api.Cli.obs_out in
  let events_out =
    Arg.(value & opt (some string) None & info [ "events-out" ] ~docv:"FILE"
           ~doc:"Dump the flight-recorder event ring as smallworld.events.v1 \
                 JSONL after each experiment.  The ring is cleared per \
                 experiment, so the file holds the $(i,last) selected \
                 experiment's stream — select one with -e for a coherent dump \
                 (feed it to `obs_cli events analyze`).  Empty under \
                 SMALLWORLD_OBS=0.")
  in
  let run ids quick seed csv_dir obs_out events_out jobs =
    match apply_jobs jobs with
    | Error e -> Error e
    | Ok () ->
    let ctx = Experiments.Context.make ~seed ~scale:(scale_of_quick quick) () in
    let selected =
      match ids with
      | [] -> Ok Experiments.Registry.all
      | ids ->
          let rec resolve acc = function
            | [] -> Ok (List.rev acc)
            | id :: rest -> begin
                match Experiments.Registry.find id with
                | Some e -> resolve (e :: acc) rest
                | None -> Error (`Msg (Printf.sprintf "unknown experiment %S" id))
              end
          in
          resolve [] ids
    in
    match selected with
    | Error e -> Error e
    | Ok experiments ->
        let manifest_oc = Option.map open_out obs_out in
        List.iter
          (fun e ->
            Obs.Metrics.reset Obs.Metrics.default;
            Obs.Trace.clear ();
            Obs.Events.clear ();
            let t0 = Sys.time () in
            let tables, span = Experiments.Registry.run_traced e ctx in
            print_string (Experiments.Registry.render_header e);
            List.iter (fun t -> print_string (Stats.Table.render t); print_newline ()) tables;
            (match csv_dir with
            | None -> ()
            | Some dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                List.iteri
                  (fun i t ->
                    let file =
                      Filename.concat dir
                        (Printf.sprintf "%s_%d.csv" (String.lowercase_ascii e.id) i)
                    in
                    Out_channel.with_open_text file (fun oc ->
                        output_string oc (Stats.Table.to_csv t)))
                  tables);
            Option.iter
              (fun oc ->
                output_string oc
                  (Obs.Export.manifest_line ~experiment:e.id ~seed
                     ~scale:(Experiments.Context.scale_name ctx)
                     ~registry:Obs.Metrics.default ~span ());
                output_char oc '\n';
                flush oc)
              manifest_oc;
            Option.iter
              (fun file ->
                Out_channel.with_open_text file (fun oc ->
                    Obs.Export.write_events oc (Obs.Events.events ())))
              events_out;
            match span with
            | Some s -> Printf.printf "(%s finished in %.1fs)\n\n%!" e.id s.Obs.Span.wall_s
            | None -> Printf.printf "(%s finished in %.1fs)\n\n%!" e.id (Sys.time () -. t0))
          experiments;
        Option.iter close_out manifest_oc;
        Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      term_result
        (const run $ ids $ quick $ seed $ csv_dir $ obs_out $ events_out
       $ jobs_arg))

let churn_cmd =
  let doc =
    "Run one churn scenario against a saved instance: per epoch, plan mutations \
     (uniform flips, adversarial hub removal, or none for the Milgram quit model), \
     apply them as one new graph version, and re-measure greedy delivery.  \
     Deterministic for a fixed (seed, pair-seed): the same command replays \
     bit-identically at any --jobs."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Saved instance (Girg.Store format).")
  in
  let scenario =
    Arg.(
      value & opt string "uniform"
      & info [ "scenario" ] ~docv:"S" ~doc:"uniform | adversarial | milgram.")
  in
  let epochs =
    Arg.(value & opt int 3 & info [ "epochs" ] ~docv:"N" ~doc:"Mutation rounds.")
  in
  let events =
    Arg.(
      value & opt int 16
      & info [ "events" ] ~docv:"N" ~doc:"Structural events per epoch.")
  in
  let quit =
    Arg.(
      value & opt float 0.0
      & info [ "quit" ] ~docv:"P" ~doc:"Per-hop quit probability (Milgram).")
  in
  let seed = Api.Cli.seed in
  let count =
    Arg.(
      value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Measurement pairs per epoch.")
  in
  let pair_seed =
    Arg.(
      value & opt int 0
      & info [ "pair-seed" ] ~docv:"N" ~doc:"Seed of the measurement-pair substream.")
  in
  let protocol =
    Arg.(
      value & opt string "greedy"
      & info [ "protocol" ] ~docv:"P" ~doc:"Routing protocol (see graphs_cli route).")
  in
  let max_steps =
    Arg.(
      value & opt (some int) None
      & info [ "max-steps" ] ~docv:"N" ~doc:"Step cutoff per route.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Append one smallworld.churn.v1 JSONL record per epoch row.")
  in
  let run file scenario epochs events quit seed count pair_seed protocol max_steps out
      jobs =
    match apply_jobs jobs with
    | Error e -> Error e
    | Ok () -> (
        let ( let* ) r f = Result.bind r f in
        let wrap = Result.map_error (fun m -> `Msg m) in
        let* scenario = wrap (Experiments.Churn.scenario_of_string scenario) in
        let* protocol =
          match Api.V1.protocol_of_string protocol with
          | Ok p -> Ok p
          | Error e -> Error (`Msg (Api.Error.to_string e))
        in
        let cfg =
          {
            Experiments.Churn.scenario;
            epochs;
            events;
            quit;
            seed;
            count;
            pair_seed;
            protocol;
            max_steps;
          }
        in
        match Girg.Store.load ~path:file with
        | Error e -> Error (`Msg (Printf.sprintf "cannot load %s: %s" file e))
        | Ok inst ->
            let _final, rows = Experiments.Churn.run_local cfg inst in
            print_string (Stats.Table.render (Experiments.Churn.table cfg rows));
            Option.iter
              (fun file ->
                Out_channel.with_open_gen
                  [ Open_append; Open_creat; Open_wronly; Open_text ]
                  0o644 file
                  (fun oc ->
                    List.iter
                      (fun row ->
                        output_string oc
                          (Obs.Export.json_to_string
                             (Experiments.Churn.record_json cfg row));
                        output_char oc '\n')
                      rows);
                Printf.printf "wrote %d smallworld.churn.v1 records to %s\n"
                  (List.length rows) file)
              out;
            Ok ())
  in
  Cmd.v
    (Cmd.info "churn" ~doc)
    Term.(
      term_result
        (const run $ file $ scenario $ epochs $ events $ quit $ seed $ count
       $ pair_seed $ protocol $ max_steps $ out $ jobs_arg))

let main =
  let doc = "Reproduction suite for 'Greedy Routing and the Algorithmic Small-World Phenomenon'" in
  Cmd.group (Cmd.info "smallworld-experiments" ~doc)
    [ list_cmd; list_metrics_cmd; run_cmd; churn_cmd ]

let () = exit (Cmd.eval main)
