(* Command-line driver for the paper-reproduction experiment suite.

     experiments_cli list
     experiments_cli run [-e E3] [-e E5] [--quick] [--seed N] [--csv DIR]   *)

open Cmdliner

let scale_of_quick quick = if quick then Experiments.Context.Quick else Experiments.Context.Standard

let list_cmd =
  let doc = "List all experiments with the paper claim each one reproduces." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n     %s\n\n" e.Experiments.Registry.id e.title e.claim)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments (all by default) and print their tables." in
  let ids =
    Arg.(value & opt_all string [] & info [ "e"; "experiment" ] ~docv:"ID"
           ~doc:"Experiment id (e.g. E3); repeatable.  Default: all.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes (seconds instead of minutes).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Base random seed.")
  in
  let csv_dir =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write every table as a CSV file into $(docv).")
  in
  let run ids quick seed csv_dir =
    let ctx = Experiments.Context.make ~seed ~scale:(scale_of_quick quick) () in
    let selected =
      match ids with
      | [] -> Ok Experiments.Registry.all
      | ids ->
          let rec resolve acc = function
            | [] -> Ok (List.rev acc)
            | id :: rest -> begin
                match Experiments.Registry.find id with
                | Some e -> resolve (e :: acc) rest
                | None -> Error (`Msg (Printf.sprintf "unknown experiment %S" id))
              end
          in
          resolve [] ids
    in
    match selected with
    | Error e -> Error e
    | Ok experiments ->
        List.iter
          (fun e ->
            let t0 = Sys.time () in
            let tables = e.Experiments.Registry.run ctx in
            Printf.printf "---- %s: %s ----\n" e.id e.title;
            Printf.printf "claim: %s\n\n" e.claim;
            List.iter (fun t -> print_string (Stats.Table.render t); print_newline ()) tables;
            (match csv_dir with
            | None -> ()
            | Some dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                List.iteri
                  (fun i t ->
                    let file =
                      Filename.concat dir
                        (Printf.sprintf "%s_%d.csv" (String.lowercase_ascii e.id) i)
                    in
                    Out_channel.with_open_text file (fun oc ->
                        output_string oc (Stats.Table.to_csv t)))
                  tables);
            Printf.printf "(%s finished in %.1fs)\n\n%!" e.id (Sys.time () -. t0))
          experiments;
        Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(term_result (const run $ ids $ quick $ seed $ csv_dir))

let main =
  let doc = "Reproduction suite for 'Greedy Routing and the Algorithmic Small-World Phenomenon'" in
  Cmd.group (Cmd.info "smallworld-experiments" ~doc) [ list_cmd; run_cmd ]

let () = exit (Cmd.eval main)
