(** Kleinberg's small-world model (STOC 2000) — the baseline of Section 1.1.

    Vertices form a [side x side] lattice (we use the toroidal lattice for
    symmetry, which does not affect the asymptotics); every vertex keeps its
    4 grid edges and draws [long_range] extra contacts, the other endpoint
    chosen with probability proportional to [manhattan_dist^-exponent].
    Kleinberg's theorem: decentralised greedy routing takes O(log^2 n) steps
    iff [exponent = 2] (= the lattice dimension), and n^Omega(1) otherwise.

    The *noisy* variant discussed in Section 1.1 (random positions instead of
    a perfect lattice) is a GIRG with constant weights; experiments build it
    through [Girg.Instance.generate_with] with unit weights. *)

type params = {
  side : int;  (** lattice side; the graph has [side * side] vertices *)
  long_range : int;  (** long-range contacts per vertex (Kleinberg's q) *)
  exponent : float;  (** decay exponent r of the contact distribution *)
}

val make : ?long_range:int -> ?exponent:float -> side:int -> unit -> params
(** Defaults: [long_range = 1], [exponent = 2.0].
    @raise Invalid_argument if [side < 2] or [long_range < 0] or
    [exponent < 0]. *)

type t = { params : params; graph : Sparse_graph.Graph.t }

val n : t -> int

val coords : params -> int -> int * int
(** Lattice coordinates of a vertex id (row-major). *)

val vertex : params -> int * int -> int

val manhattan : params -> int -> int -> int
(** Toroidal Manhattan distance between two vertices. *)

val generate : rng:Prng.Rng.t -> params -> t
(** Sample the long-range contacts (grid edges are deterministic).
    Long-range endpoints are drawn in O(1) per edge from a precomputed
    distance table. *)

val greedy_route : t -> source:int -> target:int -> int
(** Steps taken by lattice greedy routing (always move to the neighbour
    closest to the target in Manhattan distance; grid edges guarantee
    progress, so routing always succeeds). *)
