type params = { side : int; long_range : int; exponent : float }

let make ?(long_range = 1) ?(exponent = 2.0) ~side () =
  if side < 2 then invalid_arg "Lattice.make: side must be >= 2";
  if long_range < 0 then invalid_arg "Lattice.make: long_range must be >= 0";
  if exponent < 0.0 then invalid_arg "Lattice.make: exponent must be >= 0";
  { side; long_range; exponent }

type t = { params : params; graph : Sparse_graph.Graph.t }

let n t = t.params.side * t.params.side

let coords p v = (v / p.side, v mod p.side)

let vertex p (i, j) =
  let wrap x = ((x mod p.side) + p.side) mod p.side in
  (wrap i * p.side) + wrap j

let axis_dist side a b =
  let d = abs (a - b) in
  min d (side - d)

let manhattan p u v =
  let ui, uj = coords p u and vi, vj = coords p v in
  axis_dist p.side ui vi + axis_dist p.side uj vj

(* Offsets (di, dj) grouped by toroidal Manhattan distance, plus the
   cumulative sampling weights  ring_size(l) * l^-exponent. *)
let build_distance_table p =
  let side = p.side in
  let max_d = 2 * (side / 2) in
  let groups = Array.make (max_d + 1) [] in
  for di = -((side - 1) / 2) to side / 2 do
    for dj = -((side - 1) / 2) to side / 2 do
      if di <> 0 || dj <> 0 then begin
        let d = abs di + abs dj in
        groups.(d) <- (di, dj) :: groups.(d)
      end
    done
  done;
  let offsets = Array.map Array.of_list groups in
  let cumulative = Array.make (max_d + 1) 0.0 in
  let acc = ref 0.0 in
  for d = 1 to max_d do
    acc := !acc +. (float_of_int (Array.length offsets.(d)) *. (float_of_int d ** -.p.exponent));
    cumulative.(d) <- !acc
  done;
  (offsets, cumulative)

let sample_offset rng offsets cumulative =
  let max_d = Array.length cumulative - 1 in
  let total = cumulative.(max_d) in
  let u = Prng.Rng.unit_float rng *. total in
  (* Binary search for the smallest distance with cumulative weight > u. *)
  let lo = ref 1 and hi = ref max_d in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) > u then hi := mid else lo := mid + 1
  done;
  let ring = offsets.(!lo) in
  ring.(Prng.Rng.int rng (Array.length ring))

let generate ~rng p =
  let side = p.side in
  let count = side * side in
  let buf = ref [] in
  (* Grid edges: right and down neighbour of every vertex (torus). *)
  for v = 0 to count - 1 do
    let i, j = coords p v in
    buf := (v, vertex p (i, j + 1)) :: (v, vertex p (i + 1, j)) :: !buf
  done;
  if p.long_range > 0 then begin
    let offsets, cumulative = build_distance_table p in
    for v = 0 to count - 1 do
      let i, j = coords p v in
      for _ = 1 to p.long_range do
        let di, dj = sample_offset rng offsets cumulative in
        buf := (v, vertex p (i + di, j + dj)) :: !buf
      done
    done
  end;
  { params = p; graph = Sparse_graph.Graph.of_edge_list ~n:count !buf }

let greedy_route t ~source ~target =
  let p = t.params in
  let rec go v steps =
    if v = target then steps
    else begin
      let best = ref v and best_d = ref (manhattan p v target) in
      Sparse_graph.Graph.iter_neighbors t.graph v (fun u ->
          let d = manhattan p u target in
          if d < !best_d then begin
            best := u;
            best_d := d
          end);
      (* A grid neighbour always strictly decreases the distance. *)
      assert (!best <> v);
      go !best (steps + 1)
    end
  in
  go source 0
