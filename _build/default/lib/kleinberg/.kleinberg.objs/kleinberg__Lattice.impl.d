lib/kleinberg/lattice.ml: Array Prng Sparse_graph
