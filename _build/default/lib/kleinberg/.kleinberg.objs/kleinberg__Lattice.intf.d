lib/kleinberg/lattice.mli: Prng Sparse_graph
