let bernoulli rng ~p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else Rng.unit_float rng < p

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.log (Rng.unit_float_pos rng) /. rate

let pareto rng ~x_min ~exponent =
  if x_min <= 0.0 then invalid_arg "Dist.pareto: x_min must be positive";
  if exponent <= 1.0 then invalid_arg "Dist.pareto: exponent must exceed 1";
  let u = Rng.unit_float_pos rng in
  x_min *. (u ** (-1.0 /. (exponent -. 1.0)))

let pareto_truncated rng ~x_min ~x_max ~exponent =
  if x_max < x_min then invalid_arg "Dist.pareto_truncated: empty support";
  (* Inversion restricted to [x_min, x_max]: the CDF tail weight of the
     untruncated law above x is (x/x_min)^(1-exponent). *)
  let tail_at_max = (x_max /. x_min) ** (1.0 -. exponent) in
  let u = Rng.unit_float_pos rng in
  let u' = tail_at_max +. (u *. (1.0 -. tail_at_max)) in
  x_min *. (u' ** (-1.0 /. (exponent -. 1.0)))

let geometric rng ~p =
  if p <= 0.0 then invalid_arg "Dist.geometric: p must be positive";
  if p >= 1.0 then 0
  else begin
    let u = Rng.unit_float_pos rng in
    let k = log u /. log1p (-.p) in
    (* Clamp: for tiny p the skip can exceed integer range of interest. *)
    if k >= float_of_int max_int then max_int else int_of_float k
  end

let log_sqrt_2pi = 0.91893853320467267

(* log k! for k = 0..9; larger k use the Stirling series inside PTRD. *)
let log_factorial_table =
  [| 0.0; 0.0; 0.6931471805599453; 1.791759469228055; 3.1780538303479458;
     4.787491742782046; 6.579251212010101; 8.525161361065415;
     10.60460290274525; 12.801827480081469 |]

(* Transformed-rejection sampler for Poisson, Hörmann (1993), for mean >= 10. *)
let poisson_ptrd rng mu =
  let smu = sqrt mu in
  let b = 0.931 +. (2.53 *. smu) in
  let a = -0.059 +. (0.02483 *. b) in
  let inv_alpha = 1.1239 +. (1.1328 /. (b -. 3.4)) in
  let v_r = 0.9277 -. (3.6224 /. (b -. 2.0)) in
  let rec attempt () =
    let v = Rng.unit_float rng in
    if v <= 0.86 *. v_r then begin
      let u = (v /. v_r) -. 0.43 in
      let us = 0.5 -. abs_float u in
      int_of_float (((2.0 *. a /. us) +. b) *. u +. mu +. 0.445)
    end
    else begin
      let u, v =
        if v >= v_r then (Rng.unit_float rng -. 0.5, v)
        else begin
          let u = (v /. v_r) -. 0.93 in
          let u = (if u >= 0.0 then 0.5 else -0.5) -. u in
          (u, Rng.unit_float rng *. v_r)
        end
      in
      let us = 0.5 -. abs_float u in
      if us < 0.013 && v > us then attempt ()
      else begin
        let kf = floor (((2.0 *. a /. us) +. b) *. u +. mu +. 0.445) in
        let v = v *. inv_alpha /. ((a /. (us *. us)) +. b) in
        if kf >= 10.0 then begin
          let k = kf in
          let correction = (1.0 /. 12.0 -. (1.0 /. (360.0 *. k *. k))) /. k in
          if
            log (v *. smu)
            <= ((k +. 0.5) *. log (mu /. k)) -. mu -. log_sqrt_2pi +. k -. correction
          then int_of_float k
          else attempt ()
        end
        else if kf >= 0.0 then begin
          let k = int_of_float kf in
          if log v <= (kf *. log mu) -. mu -. log_factorial_table.(k) then k
          else attempt ()
        end
        else attempt ()
      end
    end
  in
  attempt ()

(* Knuth's product method, fine for small means. *)
let poisson_knuth rng mu =
  let limit = exp (-.mu) in
  let rec loop k p =
    let p = p *. Rng.unit_float rng in
    if p <= limit then k else loop (k + 1) p
  in
  loop 0 1.0

let poisson rng ~mean =
  if mean < 0.0 then invalid_arg "Dist.poisson: mean must be non-negative";
  if mean = 0.0 then 0
  else if mean < 10.0 then poisson_knuth rng mean
  else poisson_ptrd rng mean

let gaussian rng ~mean ~stddev =
  let u1 = Rng.unit_float_pos rng in
  let u2 = Rng.unit_float rng in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let log_uniform_factor rng ~spread =
  if spread = 0.0 then 1.0
  else exp ((Rng.unit_float rng *. 2.0 *. spread) -. spread)

let shuffle_in_place rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct_pair rng ~n =
  if n < 2 then invalid_arg "Dist.sample_distinct_pair: need n >= 2";
  let a = Rng.int rng n in
  let b = Rng.int rng (n - 1) in
  let b = if b >= a then b + 1 else b in
  (a, b)
