lib/prng/dist.mli: Rng
