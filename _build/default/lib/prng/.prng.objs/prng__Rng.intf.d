lib/prng/rng.mli:
