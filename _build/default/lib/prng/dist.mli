(** Random variate generators for the distributions used by the models.

    All samplers draw from an explicit {!Rng.t}. *)

val bernoulli : Rng.t -> p:float -> bool
(** [bernoulli rng ~p] is [true] with probability [max 0 (min 1 p)]. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] samples Exp(rate) by inversion.
    @raise Invalid_argument if [rate <= 0]. *)

val pareto : Rng.t -> x_min:float -> exponent:float -> float
(** [pareto rng ~x_min ~exponent] samples the Pareto (power-law) distribution
    with density proportional to [w^-exponent] on [w >= x_min]; this is the
    GIRG weight law with [exponent = beta].  Sampled by inversion:
    [x_min * u^(-1/(exponent-1))].
    @raise Invalid_argument if [x_min <= 0] or [exponent <= 1]. *)

val pareto_truncated :
  Rng.t -> x_min:float -> x_max:float -> exponent:float -> float
(** Like {!pareto} but conditioned on the result lying in [[x_min, x_max]]. *)

val geometric : Rng.t -> p:float -> int
(** [geometric rng ~p] is the number of independent failures before the first
    success of a Bernoulli(p) trial (support {0, 1, ...}).  Used for skip
    sampling over candidate edge slots.  For [p >= 1] the result is [0].
    @raise Invalid_argument if [p <= 0]. *)

val poisson : Rng.t -> mean:float -> int
(** [poisson rng ~mean] samples Poisson(mean).  Uses Knuth's product method
    for small means and the PTRD transformed-rejection method (Hörmann 1993)
    for large means, so it is safe for means in the millions.
    @raise Invalid_argument if [mean < 0]. *)

val gaussian : Rng.t -> mean:float -> stddev:float -> float
(** [gaussian rng ~mean ~stddev] samples a normal variate (Box–Muller). *)

val log_uniform_factor : Rng.t -> spread:float -> float
(** [log_uniform_factor rng ~spread] samples a multiplicative noise factor
    [exp u] with [u] uniform on [[-spread, spread]]; used by the relaxed
    objectives of Theorem 3.5.  [spread = 0] yields exactly [1.0]. *)

val shuffle_in_place : Rng.t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_distinct_pair : Rng.t -> n:int -> int * int
(** [sample_distinct_pair rng ~n] returns two distinct indices uniform on
    [0, n).  @raise Invalid_argument if [n < 2]. *)
