type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let entry_at t i = match t.heap.(i) with Some e -> e | None -> assert false

let push t ~time payload =
  if Float.is_nan time || time < 0.0 then
    invalid_arg "Event_queue.push: time must be a non-negative number";
  if t.len = Array.length t.heap then begin
    let bigger = Array.make (2 * t.len) None in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end;
  t.heap.(t.len) <- Some { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  let i = ref (t.len - 1) in
  while !i > 0 && earlier (entry_at t !i) (entry_at t ((!i - 1) / 2)) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = entry_at t 0 in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && earlier (entry_at t l) (entry_at t !smallest) then smallest := l;
      if r < t.len && earlier (entry_at t r) (entry_at t !smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap t !i !smallest;
        i := !smallest
      end
    done;
    Some (top.time, top.payload)
  end
