(** Algorithm 2 (the distributed greedy Φ-DFS) in its native habitat: as a
    message-passing protocol on the {!Sim} substrate.

    Exactly as in the paper's pseudocode, the message carries three scalars
    (the best objective seen, the current Φ, and — implicitly, as the
    sender of the message — the last visited vertex), and every node stores
    a constant number of values (its Φ, a parent pointer, a resume flag and
    the previous Φ).  Each handler invocation uses only the node's
    {!Local_view.t} plus the message.

    The walk, step count and outcome are {e identical} to the centralised
    {!Greedy_routing.Patch_dfs.route} — property-tested equivalence. *)

type fields = {
  m_phi : float;  (** the current Φ *)
  best_seen : float;  (** best objective encountered so far *)
  target : Local_view.address;
}

type msg = Explore of fields | Backtrack of fields

val run :
  inst:Girg.Instance.t ->
  source:int ->
  target:int ->
  ?latency:(src:int -> dst:int -> float) ->
  ?max_deliveries:int ->
  unit ->
  Greedy_routing.Outcome.t * Sim.stats
