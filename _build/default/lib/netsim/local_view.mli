(** The strictly local knowledge of a node, per Section 2.2 of the paper:
    "Every vertex has local information, i.e., it knows the address of
    itself and of its neighbors", where an address is the pair (position,
    weight).  Distributed protocol handlers receive exactly one of these
    views plus the message contents — nothing else — so locality holds by
    construction, not by promise. *)

type address = { id : int; weight : float; position : Geometry.Torus.point }

type config = {
  dim : int;
  denom : float;  (** the model constant [w_min * n] in the objective phi *)
}
(** Protocol configuration: global {e constants} of the model (known to
    every participant, like the protocol version), not topology
    knowledge. *)

type t = {
  config : config;
  self : address;
  neighbors : address array;  (** ascending by id *)
}

val of_instance : Girg.Instance.t -> t array
(** One view per vertex. *)

val phi : t -> address -> target:address -> float
(** The objective [phi] of the given address towards [target], computed
    from constants every node knows; [infinity] when the address {e is} the
    target. *)

val best_neighbor : t -> target:address -> (address * float) option
(** The neighbour maximising [phi] towards the target (ties to the smaller
    id), or [None] for an isolated node. *)
