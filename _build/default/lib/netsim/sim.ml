type 'msg api = {
  self : int;
  now : float;
  send : dst:int -> 'msg -> unit;
  halt : unit -> unit;
}

type 'msg envelope = { src : int; dst : int; msg : 'msg }

type 'msg t = {
  n : int;
  latency : src:int -> dst:int -> float;
  handler : 'msg api -> src:int -> 'msg -> unit;
  queue : 'msg envelope Event_queue.t;
  mutable sends : int;
  mutable halted : bool;
}

let create ~n ?(latency = fun ~src:_ ~dst:_ -> 1.0) ~handler () =
  if n < 0 then invalid_arg "Sim.create: negative n";
  { n; latency; handler; queue = Event_queue.create (); sends = 0; halted = false }

let check_node t v ctx =
  if v < 0 || v >= t.n then invalid_arg (ctx ^ ": node id out of range")

let inject t ?(time = 0.0) ~dst msg =
  check_node t dst "Sim.inject";
  Event_queue.push t.queue ~time { src = dst; dst; msg }

type stats = { deliveries : int; sends : int; final_time : float; halted : bool }

let run ?(max_deliveries = 10_000_000) (t : 'msg t) =
  let deliveries = ref 0 in
  let final_time = ref 0.0 in
  let continue = ref true in
  while !continue && not t.halted && !deliveries < max_deliveries do
    match Event_queue.pop t.queue with
    | None -> continue := false
    | Some (time, env) ->
        incr deliveries;
        final_time := time;
        let api =
          {
            self = env.dst;
            now = time;
            send =
              (fun ~dst msg ->
                check_node t dst "Sim.send";
                t.sends <- t.sends + 1;
                Event_queue.push t.queue
                  ~time:(time +. t.latency ~src:env.dst ~dst)
                  { src = env.dst; dst; msg });
            halt = (fun () -> t.halted <- true);
          }
        in
        t.handler api ~src:env.src env.msg
  done;
  { deliveries = !deliveries; sends = t.sends; final_time = !final_time; halted = t.halted }
