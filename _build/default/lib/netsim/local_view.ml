type address = { id : int; weight : float; position : Geometry.Torus.point }

type config = { dim : int; denom : float }

type t = { config : config; self : address; neighbors : address array }

let of_instance (inst : Girg.Instance.t) =
  let p = inst.params in
  let config =
    {
      dim = p.Girg.Params.dim;
      denom = p.Girg.Params.w_min *. float_of_int p.Girg.Params.n;
    }
  in
  let address v = { id = v; weight = inst.weights.(v); position = inst.positions.(v) } in
  Array.init (Array.length inst.weights) (fun v ->
      {
        config;
        self = address v;
        neighbors = Array.map address (Sparse_graph.Graph.neighbors inst.graph v);
      })

let phi view addr ~target =
  if addr.id = target.id then infinity
  else begin
    let dist = Geometry.Torus.dist_linf addr.position target.position in
    let dist_d =
      match view.config.dim with
      | 1 -> dist
      | 2 -> dist *. dist
      | 3 -> dist *. dist *. dist
      | d -> dist ** float_of_int d
    in
    addr.weight /. (view.config.denom *. dist_d)
  end

let best_neighbor view ~target =
  Array.fold_left
    (fun acc addr ->
      let s = phi view addr ~target in
      match acc with
      | Some (_, best) when best >= s -> acc
      | Some _ | None -> Some (addr, s))
    None view.neighbors
