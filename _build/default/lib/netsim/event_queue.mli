(** Discrete-event queue: a binary min-heap on (time, sequence number).

    Ties in time break by insertion order, so simulations are fully
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on negative or NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, FIFO among equal times. *)
