lib/netsim/local_view.mli: Geometry Girg
