lib/netsim/dist_dfs.ml: Array Greedy_routing List Local_view Sim
