lib/netsim/dist_greedy.ml: Array Greedy_routing List Local_view Sim
