lib/netsim/sim.mli:
