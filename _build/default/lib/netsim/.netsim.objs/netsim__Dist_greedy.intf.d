lib/netsim/dist_greedy.mli: Girg Greedy_routing Local_view Sim
