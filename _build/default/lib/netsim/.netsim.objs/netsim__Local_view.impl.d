lib/netsim/local_view.ml: Array Geometry Girg Sparse_graph
