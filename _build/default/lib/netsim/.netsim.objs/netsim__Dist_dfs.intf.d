lib/netsim/dist_dfs.mli: Girg Greedy_routing Local_view Sim
