(** Greedy routing (Algorithm 1) as a distributed message handler.

    The packet carries only the target's address; each node consults its
    {!Local_view.t} and either delivers, forwards to its best neighbour, or
    drops.  Running it through {!Sim} produces a walk identical to the
    centralised {!Greedy_routing.Greedy.route} — the equivalence is
    property-tested. *)

type packet = { target : Local_view.address }

val run :
  inst:Girg.Instance.t ->
  source:int ->
  target:int ->
  ?latency:(src:int -> dst:int -> float) ->
  unit ->
  Greedy_routing.Outcome.t * Sim.stats
(** Simulate one routing.  [Outcome.steps] equals the number of link
    traversals; [stats.final_time] is the arrival time under the given link
    latencies (default 1.0 per link). *)
