(** Persistence for complete GIRG instances (parameters, weights, positions,
    edges), so that expensive samples can be routed on repeatedly or shared
    with external tooling.

    Format (plain text): a ["# smallworld-girg"] header carrying the
    parameters, one ["v w x_1 .. x_d"] line per vertex, an ["edges m"]
    separator, then one ["u v"] line per edge. *)

val save : path:string -> Instance.t -> unit

val load : path:string -> (Instance.t, string) result
(** [Error] with a diagnostic on malformed or unreadable files.  Loading
    reconstructs exactly the saved weights/positions/edges (floats round-trip
    through the shortest exact decimal representation). *)
