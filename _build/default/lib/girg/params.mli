(** Parameters of the geometric inhomogeneous random graph model (Section 2.1
    of the paper).

    A GIRG is controlled by the expected vertex count [n] (the intensity of
    the Poisson point process), the torus dimension [d], the power-law
    exponent [beta] of the weight distribution (2 < beta < 3), the minimum
    weight [w_min], and the decay parameter [alpha > 1] (with [alpha = ∞] the
    threshold model (EP2)).  The constant [c] tunes the concrete edge
    probability [p_uv = min(1, (c q)^alpha)] with
    [q = w_u w_v / (w_min n dist^d)]; any [c >= 1] realises condition (EP3)
    ([p_uv = 1] for sufficiently close pairs). *)

type alpha = Finite of float | Infinite

type t = {
  n : int;  (** expected number of vertices (PPP intensity) *)
  dim : int;  (** torus dimension [d >= 1] *)
  beta : float;  (** power-law exponent, in (2, 3) *)
  w_min : float;  (** minimum weight, > 0 *)
  alpha : alpha;  (** decay parameter, > 1 if finite *)
  c : float;  (** probability constant, > 0; [>= 1] gives (EP3) *)
  norm : Geometry.Torus.norm;
      (** the norm of the underlying geometry; the paper allows any norm
          (constants are absorbed by the Theta in (EP1)/(EP2)) *)
  poisson_count : bool;
      (** if [true] (default) the vertex count is Poisson(n); if [false]
          exactly [n] vertices are placed (the model of [16], footnote 13) *)
}

val default : t
(** n = 10_000, dim = 2, beta = 2.5, w_min = 1.0, alpha = Finite 2.0,
    c = 1.0, norm = Linf, poisson_count = true. *)

val make :
  ?dim:int ->
  ?beta:float ->
  ?w_min:float ->
  ?alpha:alpha ->
  ?c:float ->
  ?norm:Geometry.Torus.norm ->
  ?poisson_count:bool ->
  n:int ->
  unit ->
  t
(** Build and {!validate} a parameter record. *)

val validate : t -> (t, string) result
(** Checks all the domain constraints listed above. *)

val validate_exn : t -> t
(** @raise Invalid_argument when {!validate} fails. *)

val alpha_to_string : alpha -> string
val norm_to_string : Geometry.Torus.norm -> string
val norm_of_string : string -> Geometry.Torus.norm option

val to_string : t -> string
