(** Chung–Lu random graphs — the non-geometric ancestor of GIRGs.

    Vertices carry weights; each pair connects independently with probability
    [min(1, w_u w_v / W)] where [W] is the total weight.  Lemma 7.1 of the
    paper shows GIRGs have exactly these marginal connection probabilities —
    "GIRGs can be interpreted as a geometric variant of Chung-Lu random
    graphs".  Experiment E17 uses this model to show that the geometry, not
    the degree sequence, is what makes greedy routing possible.

    Sampling follows Miller & Hagberg (2011): vertices sorted by decreasing
    weight; for each [u] the candidates [v > u] are enumerated by geometric
    skip-sampling under the running probability bound [min(1, w_u w_v / W)],
    giving expected O(n + m) time. *)

val sample_edges :
  rng:Prng.Rng.t -> weights:float array -> (int * int) array
(** Edge list over the vertex ids of [weights]. *)

type t = {
  weights : float array;
  graph : Sparse_graph.Graph.t;
}

val generate : rng:Prng.Rng.t -> weights:float array -> t

val generate_power_law :
  rng:Prng.Rng.t -> n:int -> beta:float -> w_min:float -> t
(** Weights drawn from the same Pareto law as a GIRG with these
    parameters — E17 pairs instances this way. *)
