type alpha = Finite of float | Infinite

type t = {
  n : int;
  dim : int;
  beta : float;
  w_min : float;
  alpha : alpha;
  c : float;
  norm : Geometry.Torus.norm;
  poisson_count : bool;
}

let default =
  {
    n = 10_000;
    dim = 2;
    beta = 2.5;
    w_min = 1.0;
    alpha = Finite 2.0;
    c = 1.0;
    norm = Geometry.Torus.Linf;
    poisson_count = true;
  }

let validate t =
  if t.n < 1 then Error "n must be >= 1"
  else if t.dim < 1 then Error "dim must be >= 1"
  else if not (t.beta > 2.0 && t.beta < 3.0) then Error "beta must lie in (2, 3)"
  else if not (t.w_min > 0.0) then Error "w_min must be positive"
  else if not (t.c > 0.0) then Error "c must be positive"
  else
    match t.alpha with
    | Infinite -> Ok t
    | Finite a -> if a > 1.0 then Ok t else Error "alpha must exceed 1"

let validate_exn t =
  match validate t with
  | Ok t -> t
  | Error msg -> invalid_arg ("Girg.Params: " ^ msg)

let make ?(dim = default.dim) ?(beta = default.beta) ?(w_min = default.w_min)
    ?(alpha = default.alpha) ?(c = default.c) ?(norm = default.norm)
    ?(poisson_count = default.poisson_count) ~n () =
  validate_exn { n; dim; beta; w_min; alpha; c; norm; poisson_count }

let alpha_to_string = function
  | Infinite -> "inf"
  | Finite a -> Printf.sprintf "%g" a

let norm_to_string = function
  | Geometry.Torus.Linf -> "linf"
  | Geometry.Torus.L2 -> "l2"
  | Geometry.Torus.L1 -> "l1"

let norm_of_string = function
  | "linf" -> Some Geometry.Torus.Linf
  | "l2" -> Some Geometry.Torus.L2
  | "l1" -> Some Geometry.Torus.L1
  | _ -> None

let to_string t =
  Printf.sprintf "girg(n=%d, d=%d, beta=%g, w_min=%g, alpha=%s, c=%g, %s, %s)" t.n t.dim
    t.beta t.w_min (alpha_to_string t.alpha) t.c (norm_to_string t.norm)
    (if t.poisson_count then "poisson" else "fixed")
