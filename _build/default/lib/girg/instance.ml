type sampler = Auto | Use_naive | Use_cell

type t = {
  params : Params.t;
  weights : float array;
  positions : Geometry.Torus.point array;
  graph : Sparse_graph.Graph.t;
}

let threshold_n = 600

let sample_weights ~rng ~params ~count =
  Array.init count (fun _ ->
      Prng.Dist.pareto rng ~x_min:params.Params.w_min ~exponent:params.Params.beta)

let sample_positions ~rng ~params ~count =
  Array.init count (fun _ -> Geometry.Torus.random_point rng ~dim:params.Params.dim)

let vertex_count ~rng ~params =
  if params.Params.poisson_count then
    Prng.Dist.poisson rng ~mean:(float_of_int params.Params.n)
  else params.Params.n

let generate_with ?(sampler = Auto) ~rng ~params ~weights ~positions () =
  let params = Params.validate_exn params in
  let count = Array.length weights in
  if Array.length positions <> count then invalid_arg "Instance.generate_with: length mismatch";
  let kernel = Kernel.girg params in
  let edges =
    let use_cell =
      match sampler with
      | Use_cell -> true
      | Use_naive -> false
      | Auto -> count > threshold_n
    in
    if use_cell then Cell.sample_edges ~rng ~kernel ~weights ~positions
    else Naive.sample_edges ~rng ~kernel ~weights ~positions
  in
  { params; weights; positions; graph = Sparse_graph.Graph.of_edges ~n:count edges }

let generate ?(sampler = Auto) ~rng params =
  let params = Params.validate_exn params in
  let rng_count = Prng.Rng.split rng in
  let rng_weights = Prng.Rng.split rng in
  let rng_positions = Prng.Rng.split rng in
  let rng_edges = Prng.Rng.split rng in
  let count = vertex_count ~rng:rng_count ~params in
  let weights = sample_weights ~rng:rng_weights ~params ~count in
  let positions = sample_positions ~rng:rng_positions ~params ~count in
  generate_with ~sampler ~rng:rng_edges ~params ~weights ~positions ()

let generate_pinned ?(sampler = Auto) ~rng ~params ~pinned () =
  let params = Params.validate_exn params in
  List.iter
    (fun ((w : float), x) ->
      if w < params.Params.w_min then
        invalid_arg "Girg.generate_pinned: pinned weight below w_min";
      if Array.length x <> params.Params.dim then
        invalid_arg "Girg.generate_pinned: pinned position has wrong dimension")
    pinned;
  let rng_count = Prng.Rng.split rng in
  let rng_weights = Prng.Rng.split rng in
  let rng_positions = Prng.Rng.split rng in
  let rng_edges = Prng.Rng.split rng in
  let k = List.length pinned in
  let count = max k (vertex_count ~rng:rng_count ~params) in
  let weights = sample_weights ~rng:rng_weights ~params ~count in
  let positions = sample_positions ~rng:rng_positions ~params ~count in
  List.iteri
    (fun i (w, x) ->
      weights.(i) <- w;
      positions.(i) <- Array.copy x)
    pinned;
  generate_with ~sampler ~rng:rng_edges ~params ~weights ~positions ()

let connection_prob t u v =
  let dist = Geometry.Torus.dist_fn t.params.Params.norm t.positions.(u) t.positions.(v) in
  Kernel.girg_prob t.params ~wu:t.weights.(u) ~wv:t.weights.(v) ~dist

let expected_avg_weight (p : Params.t) = p.w_min *. (p.beta -. 1.0) /. (p.beta -. 2.0)
