type t = { mutable data : int array; mutable len : int (* in ints, 2 per edge *) }

let create ?(capacity = 1024) () = { data = Array.make (max 2 (2 * capacity)) 0; len = 0 }

let push t u v =
  if t.len + 2 > Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- u;
  t.data.(t.len + 1) <- v;
  t.len <- t.len + 2

let length t = t.len / 2

let to_array t = Array.init (length t) (fun i -> (t.data.(2 * i), t.data.((2 * i) + 1)))
