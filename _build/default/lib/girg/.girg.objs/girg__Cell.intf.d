lib/girg/cell.mli: Geometry Kernel Prng
