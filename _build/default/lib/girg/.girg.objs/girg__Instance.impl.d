lib/girg/instance.ml: Array Cell Geometry Kernel List Naive Params Prng Sparse_graph
