lib/girg/edge_buf.mli:
