lib/girg/store.mli: Instance
