lib/girg/kernel.mli: Geometry Params
