lib/girg/instance.mli: Geometry Params Prng Sparse_graph
