lib/girg/chung_lu.ml: Array Edge_buf Float Fun Prng Sparse_graph
