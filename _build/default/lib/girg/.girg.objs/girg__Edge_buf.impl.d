lib/girg/edge_buf.ml: Array
