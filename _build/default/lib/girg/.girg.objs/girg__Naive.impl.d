lib/girg/naive.ml: Array Edge_buf Geometry Kernel Prng
