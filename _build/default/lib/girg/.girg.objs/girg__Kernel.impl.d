lib/girg/kernel.ml: Float Geometry Params
