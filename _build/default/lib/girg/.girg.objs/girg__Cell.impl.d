lib/girg/cell.ml: Array Edge_buf Float Geometry Grid Kernel List Morton Prng Torus
