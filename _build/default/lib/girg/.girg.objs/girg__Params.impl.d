lib/girg/params.ml: Geometry Printf
