lib/girg/naive.mli: Geometry Kernel Prng
