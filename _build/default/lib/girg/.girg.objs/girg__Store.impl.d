lib/girg/store.ml: Array Geometry Hashtbl In_channel Instance List Option Out_channel Params Printf Sparse_graph String
