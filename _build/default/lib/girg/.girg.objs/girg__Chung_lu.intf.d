lib/girg/chung_lu.mli: Prng Sparse_graph
