lib/girg/params.mli: Geometry
