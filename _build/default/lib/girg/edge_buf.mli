(** Growable buffer of undirected edges (amortised O(1) push). *)

type t

val create : ?capacity:int -> unit -> t

val push : t -> int -> int -> unit

val length : t -> int
(** Number of edges pushed. *)

val to_array : t -> (int * int) array
(** Fresh array of the pushed edges, in push order. *)
