open Geometry

type stats = { type1_pairs : int; type2_trials : int; cells_visited : int }

(* Scratch buckets: the vertices of one cell, split by weight layer.  Reused
   across cells; [touched] records which layers must be reset. *)
type buckets = {
  mutable touched : int list;
  counts : int array;
  data : int array array; (* data.(l) grows on demand *)
}

let buckets_create num_layers =
  {
    touched = [];
    counts = Array.make num_layers 0;
    data = Array.make num_layers [||];
  }

let buckets_reset b =
  List.iter (fun l -> b.counts.(l) <- 0) b.touched;
  b.touched <- []

let buckets_push b l v =
  let cnt = b.counts.(l) in
  if cnt = 0 then b.touched <- l :: b.touched;
  let arr = b.data.(l) in
  let arr =
    if cnt >= Array.length arr then begin
      let bigger = Array.make (max 4 (2 * Array.length arr)) 0 in
      Array.blit arr 0 bigger 0 cnt;
      b.data.(l) <- bigger;
      bigger
    end
    else arr
  in
  arr.(cnt) <- v;
  b.counts.(l) <- cnt + 1

let buckets_fill b grid ~level ~code ~layer_of =
  buckets_reset b;
  Grid.iter_cell grid ~level ~code (fun v -> buckets_push b layer_of.(v) v)

(* Toroidal adjacency of two cells at a level: every coordinate index differs
   by at most 1 (mod cells-per-side). *)
let cells_adjacent ~dim ~level a b =
  if level = 0 then true
  else begin
    let cps = 1 lsl level in
    let ca = Morton.decode ~dim ~level a and cb = Morton.decode ~dim ~level b in
    let ok = ref true in
    for i = 0 to dim - 1 do
      let d = abs (ca.(i) - cb.(i)) in
      let d = min d (cps - d) in
      if d > 1 then ok := false
    done;
    !ok
  end

let sample_edges_stats ~rng ~kernel ~weights ~positions =
  let n = Array.length weights in
  if Array.length positions <> n then invalid_arg "Cell.sample_edges: length mismatch";
  let dim = kernel.Kernel.dim in
  let out = Edge_buf.create () in
  let type1_pairs = ref 0 and type2_trials = ref 0 and cells_visited = ref 0 in
  if n > 0 then begin
    let dist_fn = Torus.dist_fn kernel.Kernel.norm in
    let prob ~u ~v =
      let dist = dist_fn positions.(u) positions.(v) in
      kernel.Kernel.prob ~wu:weights.(u) ~wv:weights.(v) ~dist
    in
    let flip p = p > 0.0 && (p >= 1.0 || Prng.Rng.unit_float rng < p) in
    (* Split off capped vertices (kernels whose envelope needs a weight cap). *)
    let capped = ref [] and regular = ref [] in
    for v = n - 1 downto 0 do
      if weights.(v) >= kernel.Kernel.weight_cap then capped := v :: !capped
      else regular := v :: !regular
    done;
    let capped = Array.of_list !capped and regular = Array.of_list !regular in
    let is_capped = Array.make n false in
    Array.iter (fun v -> is_capped.(v) <- true) capped;
    (* Capped vertices: exhaustive against everyone (capped pairs once). *)
    Array.iter
      (fun u ->
        for v = 0 to n - 1 do
          if v <> u && ((not is_capped.(v)) || v > u) then begin
            incr type1_pairs;
            if flip (prob ~u ~v) then Edge_buf.push out u v
          end
        done)
      capped;
    let nr = Array.length regular in
    if nr > 0 then begin
      (* Weight layers relative to the smallest regular weight. *)
      let w_base = Array.fold_left (fun acc v -> Float.min acc weights.(v)) infinity regular in
      let layer_of_weight w =
        let l = int_of_float (Float.log2 (w /. w_base)) in
        if l < 0 then 0 else l
      in
      let num_layers = 1 + Array.fold_left (fun acc v -> max acc (layer_of_weight weights.(v))) 0 regular in
      let layer_of = Array.make n 0 in
      Array.iter (fun v -> layer_of.(v) <- layer_of_weight weights.(v)) regular;
      let w_ub = Array.init num_layers (fun l -> w_base *. Float.of_int (1 lsl (l + 1))) in
      (* Grid depth: about one vertex per deepest cell. *)
      let depth =
        let by_count = int_of_float (Float.log2 (float_of_int (max 2 nr)) /. float_of_int dim) in
        max 1 (min by_count (Morton.max_level ~dim))
      in
      let level_of_pair i j =
        let vol = kernel.Kernel.saturation_volume ~wu_ub:w_ub.(i) ~wv_ub:w_ub.(j) in
        if vol >= 1.0 then 0
        else begin
          let l = int_of_float (floor (-.Float.log2 vol /. float_of_int dim)) in
          max 0 (min l depth)
        end
      in
      let level_matrix =
        Array.init num_layers (fun i -> Array.init num_layers (fun j -> level_of_pair i j))
      in
      let pairs_at_level = Array.make (depth + 1) [] in
      for i = 0 to num_layers - 1 do
        for j = i to num_layers - 1 do
          let l = level_matrix.(i).(j) in
          pairs_at_level.(l) <- (i, j) :: pairs_at_level.(l)
        done
      done;
      let max_pair_level =
        let best = ref 0 in
        Array.iteri (fun l pairs -> if pairs <> [] then best := max !best l) pairs_at_level;
        !best
      in
      let grid = Grid.build ~dim ~max_level:depth ~points:positions ~ids:regular in
      let sa = buckets_create num_layers and sb = buckets_create num_layers in
      (* Exhaustive test between bucket slices (type I). *)
      let test_all data_a cnt_a data_b cnt_b =
        for ia = 0 to cnt_a - 1 do
          let u = data_a.(ia) in
          for ib = 0 to cnt_b - 1 do
            let v = data_b.(ib) in
            incr type1_pairs;
            if flip (prob ~u ~v) then Edge_buf.push out u v
          done
        done
      in
      let test_triangular data cnt =
        for ia = 0 to cnt - 1 do
          let u = data.(ia) in
          for ib = ia + 1 to cnt - 1 do
            let v = data.(ib) in
            incr type1_pairs;
            if flip (prob ~u ~v) then Edge_buf.push out u v
          done
        done
      in
      let type1 ~same_cell ba bb i j =
        if i = j then begin
          if same_cell then test_triangular ba.data.(i) ba.counts.(i)
          else test_all ba.data.(i) ba.counts.(i) bb.data.(j) bb.counts.(j)
        end
        else begin
          test_all ba.data.(i) ba.counts.(i) bb.data.(j) bb.counts.(j);
          if not same_cell then test_all ba.data.(j) ba.counts.(j) bb.data.(i) bb.counts.(i)
        end
      in
      (* Geometric skip-sampling between two bucket slices (type II). *)
      let skip_sample data_a cnt_a data_b cnt_b ~p_ub =
        if cnt_a > 0 && cnt_b > 0 && p_ub > 0.0 then begin
          let total = cnt_a * cnt_b in
          let k = ref (Prng.Dist.geometric rng ~p:p_ub) in
          while !k < total do
            incr type2_trials;
            let u = data_a.(!k / cnt_b) and v = data_b.(!k mod cnt_b) in
            let p = prob ~u ~v in
            if p > 0.0 && (p >= p_ub || Prng.Rng.unit_float rng < p /. p_ub) then
              Edge_buf.push out u v;
            let skip = Prng.Dist.geometric rng ~p:p_ub in
            k := if skip > total then total else !k + 1 + skip
          done
        end
      in
      let type2 a b level =
        buckets_fill sa grid ~level ~code:a ~layer_of;
        buckets_fill sb grid ~level ~code:b ~layer_of;
        if sa.touched <> [] && sb.touched <> [] then begin
          let min_dist = Morton.cell_min_dist ~dim ~level a b in
          List.iter
            (fun i ->
              List.iter
                (fun j ->
                  if level_matrix.(i).(j) >= level then begin
                    let p_ub =
                      kernel.Kernel.upper ~wu_ub:w_ub.(i) ~wv_ub:w_ub.(j) ~min_dist
                    in
                    skip_sample sa.data.(i) sa.counts.(i) sb.data.(j) sb.counts.(j) ~p_ub
                  end)
                sb.touched)
            sa.touched
        end
      in
      let nonempty code level = Grid.count_cell grid ~level ~code > 0 in
      let rec visit a b level =
        incr cells_visited;
        (match pairs_at_level.(level) with
        | [] -> ()
        | pairs ->
            let same_cell = a = b in
            buckets_fill sa grid ~level ~code:a ~layer_of;
            let bb =
              if same_cell then sa
              else begin
                buckets_fill sb grid ~level ~code:b ~layer_of;
                sb
              end
            in
            List.iter (fun (i, j) -> type1 ~same_cell sa bb i j) pairs);
        if level < max_pair_level then begin
          let child_level = level + 1 in
          let kids = 1 lsl dim in
          for xa = 0 to kids - 1 do
            let x = (a lsl dim) lor xa in
            if nonempty x child_level then begin
              let yb_start = if a = b then xa else 0 in
              for yb = yb_start to kids - 1 do
                let y = (b lsl dim) lor yb in
                if (x < y || x = y) && nonempty y child_level then begin
                  if cells_adjacent ~dim ~level:child_level x y then visit x y child_level
                  else type2 x y child_level
                end
              done
            end
          done
        end
      in
      visit 0 0 0
    end
  end;
  ( Edge_buf.to_array out,
    { type1_pairs = !type1_pairs; type2_trials = !type2_trials; cells_visited = !cells_visited } )

let sample_edges ~rng ~kernel ~weights ~positions =
  fst (sample_edges_stats ~rng ~kernel ~weights ~positions)
