type t = {
  name : string;
  dim : int;
  norm : Geometry.Torus.norm;
  prob : wu:float -> wv:float -> dist:float -> float;
  upper : wu_ub:float -> wv_ub:float -> min_dist:float -> float;
  saturation_volume : wu_ub:float -> wv_ub:float -> float;
  weight_cap : float;
}

(* [dist^d] without the general [( ** )] for the common small dimensions. *)
let dist_pow ~dim dist =
  match dim with
  | 1 -> dist
  | 2 -> dist *. dist
  | 3 -> dist *. dist *. dist
  | _ -> dist ** float_of_int dim

let girg_prob_fun (p : Params.t) =
  let denom = p.w_min *. float_of_int p.n in
  let dim = p.dim in
  let decay =
    match p.alpha with
    | Params.Infinite -> fun _ -> 0.0
    | Params.Finite a when Float.equal a 2.0 -> fun q -> q *. q
    | Params.Finite a when Float.equal a 3.0 -> fun q -> q *. q *. q
    | Params.Finite a -> fun q -> q ** a
  in
  let c = p.c in
  fun ~wu ~wv ~dist ->
    let dist_d = dist_pow ~dim dist in
    if dist_d <= 0.0 then 1.0
    else begin
      let q = c *. wu *. wv /. (denom *. dist_d) in
      if q >= 1.0 then 1.0 else decay q
    end

let girg_prob p ~wu ~wv ~dist = girg_prob_fun p ~wu ~wv ~dist

let girg (p : Params.t) =
  let p = Params.validate_exn p in
  let prob = girg_prob_fun p in
  (* [girg_prob] is nondecreasing in both weights and nonincreasing in the
     distance, so plugging the bounds straight in yields a valid envelope. *)
  let upper ~wu_ub ~wv_ub ~min_dist = girg_prob p ~wu:wu_ub ~wv:wv_ub ~dist:min_dist in
  let saturation_volume ~wu_ub ~wv_ub =
    p.c *. wu_ub *. wv_ub /. (p.w_min *. float_of_int p.n)
  in
  {
    name = Params.to_string p;
    dim = p.dim;
    norm = p.norm;
    prob;
    upper;
    saturation_volume;
    weight_cap = infinity;
  }
