type t = { ids : int array; sizes : int array; giant : int }

(* Union-find with path halving and union by size. *)
let compute g =
  let n = Graph.n g in
  let parent = Array.init n Fun.id in
  let rank = Array.make n 1 in
  let rec find x =
    let p = parent.(x) in
    if p = x then x
    else begin
      parent.(x) <- parent.(p);
      find parent.(x)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let big, small = if rank.(ra) >= rank.(rb) then (ra, rb) else (rb, ra) in
      parent.(small) <- big;
      rank.(big) <- rank.(big) + rank.(small)
    end
  in
  Graph.iter_edges g union;
  let ids = Array.make n (-1) in
  let next_id = ref 0 in
  let sizes_rev = ref [] in
  for v = 0 to n - 1 do
    let root = find v in
    if ids.(root) < 0 then begin
      ids.(root) <- !next_id;
      sizes_rev := rank.(root) :: !sizes_rev;
      incr next_id
    end;
    ids.(v) <- ids.(root)
  done;
  let sizes = Array.of_list (List.rev !sizes_rev) in
  let giant = ref 0 in
  Array.iteri (fun i s -> if s > sizes.(!giant) then giant := i) sizes;
  { ids; sizes; giant = !giant }

let count t = Array.length t.sizes
let id t v = t.ids.(v)
let size t c = t.sizes.(c)
let same t u v = t.ids.(u) = t.ids.(v)
let giant_id t = t.giant
let giant_size t = t.sizes.(t.giant)

let members t c =
  let buf = ref [] in
  for v = Array.length t.ids - 1 downto 0 do
    if t.ids.(v) = c then buf := v :: !buf
  done;
  Array.of_list !buf

let giant_members t = members t t.giant
