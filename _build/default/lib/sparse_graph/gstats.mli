(** Structural statistics of graphs: degree distribution, power-law exponent
    estimation, clustering, sampled average distance.  Used by experiment E10
    to validate the GIRG substrate against Lemmas 7.2/7.3 of the paper. *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, multiplicity)] pairs, ascending by degree. *)

val power_law_exponent_mle : ?d_min:int -> Graph.t -> float option
(** Maximum-likelihood estimate of the exponent [beta] of a power-law degree
    tail [p(k) ~ k^-beta], using the continuous-approximation Hill estimator
    [1 + n / sum (ln (d_i / (d_min - 1/2)))] over degrees [>= d_min]
    (Clauset–Shalizi–Newman 2009).  [None] if fewer than 10 usable vertices.
    Default [d_min] = 5. *)

val global_clustering_sample : Graph.t -> rng:Prng.Rng.t -> samples:int -> float
(** Sampled estimate of the mean local clustering coefficient over vertices of
    degree [>= 2].  Returns [nan] when no such vertex exists. *)

val avg_distance_sample :
  Graph.t -> rng:Prng.Rng.t -> pairs:int -> within:int array -> float option
(** Mean BFS distance over random pairs drawn from the vertex set [within]
    (e.g. a giant component).  [None] if [within] has fewer than 2 vertices
    or no sampled pair was connected. *)
