let distances g ~source =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = dist.(u) in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- du + 1;
          Queue.add v queue
        end)
  done;
  dist

(* Bidirectional BFS.  Frontiers expand alternately (smaller side first);
   the meet-in-the-middle distance is minimised over all contact edges found
   while expanding the level on which the frontiers first touch. *)
let distance g ~source ~target =
  if source = target then Some 0
  else begin
    let n = Graph.n g in
    let dist_s = Array.make n (-1) and dist_t = Array.make n (-1) in
    dist_s.(source) <- 0;
    dist_t.(target) <- 0;
    let frontier_s = ref [ source ] and frontier_t = ref [ target ] in
    let depth_s = ref 0 and depth_t = ref 0 in
    let best = ref max_int in
    let expand frontier depth dist_mine dist_other =
      incr depth;
      let next = ref [] in
      List.iter
        (fun u ->
          Graph.iter_neighbors g u (fun v ->
              if dist_other.(v) >= 0 then begin
                let through = !depth + dist_other.(v) in
                if through < !best then best := through
              end;
              if dist_mine.(v) < 0 then begin
                dist_mine.(v) <- !depth;
                next := v :: !next
              end))
        !frontier;
      frontier := !next
    in
    let result = ref None in
    let finished = ref false in
    while not !finished do
      if !frontier_s = [] && !frontier_t = [] then begin
        finished := true;
        result := if !best < max_int then Some !best else None
      end
      else if !best < max_int && !best <= !depth_s + !depth_t + 1 then begin
        (* No shorter path can appear: any further meeting costs more. *)
        finished := true;
        result := Some !best
      end
      else if
        !frontier_t = []
        || (!frontier_s <> [] && List.length !frontier_s <= List.length !frontier_t)
      then expand frontier_s depth_s dist_s dist_t
      else expand frontier_t depth_t dist_t dist_s
    done;
    !result
  end

let shortest_path g ~source ~target =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.add source queue;
  let found = ref (source = target) in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          if v = target then found := true else Queue.add v queue
        end)
  done;
  if not !found then None
  else begin
    let rec backtrack v acc = if v = source then v :: acc else backtrack parent.(v) (v :: acc) in
    Some (backtrack target [])
  end

let eccentricity_lower_bound g ~source =
  Array.fold_left max 0 (distances g ~source)
