lib/sparse_graph/io.mli: Graph In_channel Out_channel
