lib/sparse_graph/gstats.ml: Array Bfs Graph Hashtbl List Option Prng
