lib/sparse_graph/components.mli: Graph
