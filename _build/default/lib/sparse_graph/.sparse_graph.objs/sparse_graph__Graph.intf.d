lib/sparse_graph/graph.mli:
