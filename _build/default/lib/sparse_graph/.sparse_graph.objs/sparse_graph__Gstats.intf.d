lib/sparse_graph/gstats.mli: Graph Prng
