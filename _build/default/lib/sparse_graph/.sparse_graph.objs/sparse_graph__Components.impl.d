lib/sparse_graph/components.ml: Array Fun Graph List
