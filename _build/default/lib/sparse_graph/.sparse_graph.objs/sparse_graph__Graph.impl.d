lib/sparse_graph/graph.ml: Array Int
