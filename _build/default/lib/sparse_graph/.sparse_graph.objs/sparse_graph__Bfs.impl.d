lib/sparse_graph/bfs.ml: Array Graph List Queue
