lib/sparse_graph/bfs.mli: Graph
