lib/sparse_graph/io.ml: Graph In_channel Out_channel Printf String
