(** Connected components via union–find. *)

type t

val compute : Graph.t -> t

val count : t -> int
(** Number of connected components. *)

val id : t -> int -> int
(** Component id of a vertex (ids are [0 .. count-1], in order of first
    appearance by vertex number). *)

val size : t -> int -> int
(** Size of a component given its id. *)

val same : t -> int -> int -> bool
(** Whether two vertices share a component. *)

val giant_id : t -> int
(** Id of a largest component. *)

val giant_size : t -> int

val giant_members : t -> int array
(** Vertices of a largest component, ascending. *)

val members : t -> int -> int array
(** Vertices of the given component, ascending. *)
