(** Breadth-first search: shortest (hop) distances on unweighted graphs. *)

val distances : Graph.t -> source:int -> int array
(** [distances g ~source] returns an array [d] with [d.(v)] the hop distance
    from [source] to [v], or [-1] if unreachable. *)

val distance : Graph.t -> source:int -> target:int -> int option
(** Single-pair distance via bidirectional BFS; [None] if disconnected.
    Much faster than {!distances} on small-world graphs, where full BFS
    explores nearly everything after a few levels. *)

val shortest_path : Graph.t -> source:int -> target:int -> int list option
(** An explicit shortest path (vertex sequence including both endpoints). *)

val eccentricity_lower_bound : Graph.t -> source:int -> int
(** Maximum finite BFS distance from [source]; a lower bound on the diameter
    of the source's component. *)
