let write_graph oc g =
  Printf.fprintf oc "# smallworld-graph %d %d\n" (Graph.n g) (Graph.m g);
  Graph.iter_edges g (fun u v -> Printf.fprintf oc "%d %d\n" u v)

let read_graph ic =
  let parse_error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match In_channel.input_line ic with
  | None -> Error "empty file"
  | Some header -> begin
      match String.split_on_char ' ' (String.trim header) with
      | [ "#"; "smallworld-graph"; n_str; m_str ] -> begin
          match (int_of_string_opt n_str, int_of_string_opt m_str) with
          | Some n, Some m when n >= 0 && m >= 0 -> begin
              let edges = ref [] in
              let count = ref 0 in
              let error = ref None in
              let rec loop lineno =
                match In_channel.input_line ic with
                | None -> ()
                | Some line ->
                    let line = String.trim line in
                    if line = "" || (String.length line > 0 && line.[0] = '#') then
                      loop (lineno + 1)
                    else begin
                      match String.split_on_char ' ' line with
                      | [ u_str; v_str ] -> begin
                          match (int_of_string_opt u_str, int_of_string_opt v_str) with
                          | Some u, Some v when u >= 0 && u < n && v >= 0 && v < n ->
                              edges := (u, v) :: !edges;
                              incr count;
                              loop (lineno + 1)
                          | _ ->
                              error :=
                                Some (Printf.sprintf "line %d: bad edge %S" lineno line)
                        end
                      | _ -> error := Some (Printf.sprintf "line %d: expected 'u v'" lineno)
                    end
              in
              loop 2;
              match !error with
              | Some e -> Error e
              | None ->
                  if !count <> m then
                    parse_error "header promises %d edges, file has %d" m !count
                  else Ok (Graph.of_edge_list ~n !edges)
            end
          | _ -> parse_error "bad header counts: %s" header
        end
      | _ -> parse_error "not a smallworld-graph file (header: %s)" header
    end

let save ~path g = Out_channel.with_open_text path (fun oc -> write_graph oc g)

let load ~path =
  match In_channel.with_open_text path read_graph with
  | result -> result
  | exception Sys_error msg -> Error msg
