(** Plain-text persistence for graphs.

    Format: a header line ["# smallworld-graph n m"], then one ["u v"] line
    per undirected edge with [u < v].  Lines starting with ['#'] are
    comments.  The format round-trips exactly and is trivially consumable by
    external tools (numpy, networkx, gnuplot). *)

val write_graph : Out_channel.t -> Graph.t -> unit

val read_graph : In_channel.t -> (Graph.t, string) result
(** Parses a graph written by {!write_graph}; returns [Error] with a
    human-readable message on malformed input (bad header, vertex out of
    range, non-numeric fields). *)

val save : path:string -> Graph.t -> unit
(** File wrapper around {!write_graph}. *)

val load : path:string -> (Graph.t, string) result
(** File wrapper around {!read_graph}; [Error] also covers unreadable
    files. *)
