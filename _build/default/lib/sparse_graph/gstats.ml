let degree_histogram g =
  let tbl = Hashtbl.create 64 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])

let power_law_exponent_mle ?(d_min = 5) g =
  let shift = float_of_int d_min -. 0.5 in
  let count = ref 0 and log_sum = ref 0.0 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    if d >= d_min then begin
      incr count;
      log_sum := !log_sum +. log (float_of_int d /. shift)
    end
  done;
  if !count < 10 || !log_sum <= 0.0 then None
  else Some (1.0 +. (float_of_int !count /. !log_sum))

let local_clustering g v =
  let nbrs = Graph.neighbors g v in
  let d = Array.length nbrs in
  if d < 2 then nan
  else begin
    let closed = ref 0 in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        if Graph.has_edge g nbrs.(i) nbrs.(j) then incr closed
      done
    done;
    2.0 *. float_of_int !closed /. float_of_int (d * (d - 1))
  end

let global_clustering_sample g ~rng ~samples =
  let eligible = ref [] in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v >= 2 then eligible := v :: !eligible
  done;
  match Array.of_list !eligible with
  | [||] -> nan
  | pool ->
      let total = ref 0.0 in
      for _ = 1 to samples do
        let v = pool.(Prng.Rng.int rng (Array.length pool)) in
        total := !total +. local_clustering g v
      done;
      !total /. float_of_int samples

let avg_distance_sample g ~rng ~pairs ~within =
  let k = Array.length within in
  if k < 2 then None
  else begin
    let total = ref 0 and found = ref 0 in
    for _ = 1 to pairs do
      let i, j = Prng.Dist.sample_distinct_pair rng ~n:k in
      match Bfs.distance g ~source:within.(i) ~target:within.(j) with
      | Some d ->
          total := !total + d;
          incr found
      | None -> ()
    done;
    if !found = 0 then None else Some (float_of_int !total /. float_of_int !found)
  end
