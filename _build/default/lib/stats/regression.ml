type fit = { slope : float; intercept : float; r2 : float }

let linear points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least 2 points";
  let nf = float_of_int n in
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    points;
  let mx = !sx /. nf and my = !sy /. nf in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx and dy = y -. my in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    points;
  if !sxx = 0.0 then { slope = 0.0; intercept = my; r2 = (if !syy = 0.0 then 1.0 else 0.0) }
  else begin
    let slope = !sxy /. !sxx in
    let intercept = my -. (slope *. mx) in
    let ss_res =
      Array.fold_left
        (fun acc (x, y) ->
          let e = y -. ((slope *. x) +. intercept) in
          acc +. (e *. e))
        0.0 points
    in
    let r2 = if !syy = 0.0 then 1.0 else 1.0 -. (ss_res /. !syy) in
    { slope; intercept; r2 }
  end

let log_log points =
  let usable =
    Array.of_seq
      (Seq.filter_map
         (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
         (Array.to_seq points))
  in
  if Array.length usable < 2 then invalid_arg "Regression.log_log: need 2 positive points";
  linear usable

let predict fit x = (fit.slope *. x) +. fit.intercept
