type t = {
  title : string;
  columns : string list;
  mutable rows_rev : string list list;
  mutable notes_rev : string list;
}

let create ~title ~columns = { title; columns; rows_rev = []; notes_rev = [] }

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows_rev

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch with header";
  t.rows_rev <- cells :: t.rows_rev

let add_rowf t fmt =
  Printf.ksprintf
    (fun s -> add_row t (List.map String.trim (String.split_on_char '|' s)))
    fmt

let note t s = t.notes_rev <- s :: t.notes_rev

let render t =
  let all_rows = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all_rows;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row = "  " ^ String.concat "  " (List.mapi pad row) in
  let rule =
    "  " ^ String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) (rows t);
  List.iter
    (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n"))
    (List.rev t.notes_rev);
  Buffer.contents buf

let csv_cell cell =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.columns :: rows t)) ^ "\n"
