type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create_linear ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create_linear: hi <= lo";
  if bins <= 0 then invalid_arg "Histogram.create_linear: bins <= 0";
  { scale = Linear; lo; hi; counts = Array.make bins 0; total = 0 }

let create_log ~lo ~hi ~bins =
  if lo <= 0.0 then invalid_arg "Histogram.create_log: lo must be positive";
  if hi <= lo then invalid_arg "Histogram.create_log: hi <= lo";
  if bins <= 0 then invalid_arg "Histogram.create_log: bins <= 0";
  { scale = Log; lo; hi; counts = Array.make bins 0; total = 0 }

let bin_index t x =
  let bins = Array.length t.counts in
  let frac =
    match t.scale with
    | Linear -> (x -. t.lo) /. (t.hi -. t.lo)
    | Log -> if x <= 0.0 then 0.0 else log (x /. t.lo) /. log (t.hi /. t.lo)
  in
  let i = int_of_float (frac *. float_of_int bins) in
  if i < 0 then 0 else if i >= bins then bins - 1 else i

let add t x =
  t.counts.(bin_index t x) <- t.counts.(bin_index t x) + 1;
  t.total <- t.total + 1

let add_many t xs = Array.iter (add t) xs

let count t = t.total

let edge t i =
  let bins = float_of_int (Array.length t.counts) in
  let frac = float_of_int i /. bins in
  match t.scale with
  | Linear -> t.lo +. (frac *. (t.hi -. t.lo))
  | Log -> t.lo *. ((t.hi /. t.lo) ** frac)

let bins t =
  List.init (Array.length t.counts) (fun i -> (edge t i, edge t (i + 1), t.counts.(i)))

let mode_bin t =
  if t.total = 0 then None
  else begin
    let best = ref 0 in
    Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
    Some (edge t !best, edge t (!best + 1), t.counts.(!best))
  end

let render ?(width = 50) t =
  let max_count = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 256 in
  List.iter
    (fun (lo, hi, c) ->
      if c > 0 then begin
        let bar = String.make (c * width / max_count) '#' in
        Buffer.add_string buf (Printf.sprintf "[%10.4g, %10.4g) %7d %s\n" lo hi c bar)
      end)
    (bins t);
  Buffer.contents buf
