(** Ordinary least-squares fits used to check predicted scaling laws
    (e.g. greedy path length vs [log log n], log failure rate vs [w_min]). *)

type fit = { slope : float; intercept : float; r2 : float }

val linear : (float * float) array -> fit
(** OLS fit of [y = slope * x + intercept].  [r2] is the coefficient of
    determination ([1.0] when all x are equal and y constant; [nan] r2 when
    variance of y is zero but points fit exactly is reported as 1.0).
    @raise Invalid_argument with fewer than 2 points. *)

val log_log : (float * float) array -> fit
(** Fit on [(log x, log y)]: estimates the exponent of a power law
    [y ~ x^slope].  Points with non-positive coordinates are dropped.
    @raise Invalid_argument if fewer than 2 usable points remain. *)

val predict : fit -> float -> float
