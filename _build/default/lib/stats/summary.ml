type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p05 : float;
  p95 : float;
}

let empty =
  { count = 0; mean = nan; stddev = nan; min = nan; max = nan; median = nan; p05 = nan; p95 = nan }

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then nan
  else begin
    let mu = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile_sorted sorted ~p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs ~p =
  if Array.length xs = 0 then invalid_arg "Summary.percentile: empty sample";
  if p < 0.0 || p > 1.0 then invalid_arg "Summary.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted ~p

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  {
    count = n;
    mean = mean xs;
    stddev = (if n < 2 then 0.0 else stddev xs);
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile_sorted sorted ~p:0.5;
    p05 = percentile_sorted sorted ~p:0.05;
    p95 = percentile_sorted sorted ~p:0.95;
  }

let of_list xs = of_array (Array.of_list xs)

let ci95_halfwidth t =
  if t.count < 2 then nan else 1.96 *. t.stddev /. sqrt (float_of_int t.count)

let binomial_ci95 ~successes ~trials =
  if trials = 0 then (nan, nan)
  else begin
    let z = 1.96 in
    let nf = float_of_int trials in
    let p_hat = float_of_int successes /. nf in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p_hat +. (z2 /. (2.0 *. nf))) /. denom in
    let half =
      z /. denom *. sqrt ((p_hat *. (1.0 -. p_hat) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
    in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end

let to_string t =
  Printf.sprintf "n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f p95=%.4f max=%.4f" t.count
    t.mean t.stddev t.min t.median t.p95 t.max
