lib/stats/regression.mli:
