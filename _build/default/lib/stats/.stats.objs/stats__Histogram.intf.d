lib/stats/histogram.mli:
