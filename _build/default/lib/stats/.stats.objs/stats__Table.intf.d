lib/stats/table.mli:
