lib/stats/summary.mli:
