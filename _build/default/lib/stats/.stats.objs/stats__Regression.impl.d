lib/stats/regression.ml: Array Seq
