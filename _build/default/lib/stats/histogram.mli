(** Fixed-bin and logarithmic-bin histograms. *)

type t

val create_linear : lo:float -> hi:float -> bins:int -> t
(** Equal-width bins on [[lo, hi)]; out-of-range samples are clamped into the
    first/last bin.  @raise Invalid_argument if [hi <= lo] or [bins <= 0]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Bin edges geometric between [lo] and [hi] ([lo > 0] required).  Suited to
    power-law data (degrees, weights). *)

val add : t -> float -> unit

val add_many : t -> float array -> unit

val count : t -> int
(** Total number of samples added. *)

val bins : t -> (float * float * int) list
(** [(lower_edge, upper_edge, count)] per bin, ascending. *)

val mode_bin : t -> (float * float * int) option
(** The fullest bin, or [None] if the histogram is empty. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per nonempty bin. *)
