(** Text tables for experiment output: aligned console rendering and CSV. *)

type t

val create : title:string -> columns:string list -> t
(** A table with the given header.  Rows are appended with {!add_row}. *)

val title : t -> string
val columns : t -> string list
val rows : t -> string list list

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the header. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|'] into
    cells, trimming whitespace: [add_rowf t "%d | %.3f" 4 0.5]. *)

val render : t -> string
(** Console rendering with padded columns and a rule under the header. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val note : t -> string -> unit
(** Attach a free-text footnote printed below the table. *)
