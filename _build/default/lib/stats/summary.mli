(** Summary statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float; (* sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p05 : float;
  p95 : float;
}

val of_array : float array -> t
(** @raise Invalid_argument on an empty array. *)

val of_list : float list -> t

val empty : t
(** All-nan summary with [count = 0]; convenient for absent data. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] for [p] in [[0,1]], linear interpolation between order
    statistics.  Does not mutate its argument. *)

val mean : float array -> float
val stddev : float array -> float

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval for the
    mean: [1.96 * stddev / sqrt count]; [nan] if [count < 2]. *)

val binomial_ci95 : successes:int -> trials:int -> float * float
(** Wilson score interval for a proportion. *)

val to_string : t -> string
