lib/hyperbolic/hrg.mli: Geometry Girg Prng Sparse_graph
