lib/hyperbolic/embed.ml: Array Float Fun Hrg List Prng Queue Sparse_graph Stack
