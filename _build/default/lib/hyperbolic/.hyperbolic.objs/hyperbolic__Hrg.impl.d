lib/hyperbolic/hrg.ml: Array Float Geometry Girg Printf Prng Sparse_graph
