lib/hyperbolic/embed.mli: Hrg Prng Sparse_graph
