(** Hyperbolic embedding of bare graphs — a lightweight version of the
    pipeline of Boguñá, Papadopoulos & Krioukov ("Sustaining the Internet
    with hyperbolic mapping", [11] in the paper): infer coordinates for a
    graph that has none, then run greedy geometric routing on them.

    The algorithm:

    - {b radii from degrees}: [r_v = 2 ln (n / max(0.5, deg v))] — degrees
      concentrate around Θ(w_v), and by Theorem 3.5 a constant-factor weight
      error is harmless for routing;
    - {b angles from a spanning forest}: a BFS tree per component (largest
      components first, roots of maximum degree) laid out by recursive
      sector splitting, each subtree receiving an angular sector
      proportional to its size.  Tree edges are angularly local by
      construction, and BFS trees of hyperbolic graphs follow the underlying
      geometry closely (cf. the tree-based methods of [66]);
    - optional {b windowed likelihood refinement}: sweeps that move each
      vertex within a shrinking angular window towards the angle that best
      explains its edges.  The window prevents the attraction-only
      likelihood from collapsing the circle.  Refinement tightens edge
      locality but can perturb the global sector order, so it is off by
      default — routing quality is the criterion that matters ([11]), and
      the raw tree layout routes best.

    Experiment E15 measures the result the way [11] did: by how well greedy
    routing performs on the inferred coordinates. *)

type t = {
  params : Hrg.params;  (** the assumed model (n from the graph) *)
  coords : Hrg.polar array;  (** inferred coordinates per vertex *)
}

val infer :
  rng:Prng.Rng.t ->
  graph:Sparse_graph.Graph.t ->
  ?fit_temperature:float ->
  ?candidates:int ->
  ?refinement_sweeps:int ->
  unit ->
  t
(** Defaults: [fit_temperature = 0.5] (refinement likelihood smoothing),
    [candidates = 32] angles tested per refinement move,
    [refinement_sweeps = 0].  Cost: O(n + m) for the layout plus
    O(sweeps · candidates · m) for refinement.
    @raise Invalid_argument on an empty graph. *)

val to_hrg : t -> graph:Sparse_graph.Graph.t -> Hrg.t
(** Package an embedding as an [Hrg.t] (GIRG-equivalent weights and
    positions derived from the inferred coordinates), so the routing
    objectives of the core library apply unchanged. *)
