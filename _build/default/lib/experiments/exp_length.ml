let id = "E3"
let title = "Greedy path length and stretch (Theorem 3.3)"

let claim =
  "A.a.s. greedy routing stops within (2+o(1))/|log(beta-2)| * log log n \
   steps, matching the average distance of the giant component; conditioned \
   on success the stretch is 1 + o(1)."

let predicted_length ~beta ~n =
  2.0 /. abs_float (log (beta -. 2.0)) *. log (log (float_of_int n))

let run ctx =
  let sizes =
    Context.pick ctx ~quick:[ 4096; 16384 ] ~standard:[ 4096; 16384; 65536; 131072 ]
  in
  let pairs_per_size = Context.pick ctx ~quick:120 ~standard:300 in
  let betas = [ 2.3; 2.5; 2.8 ] in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [ "beta"; "n"; "mean steps"; "p95"; "predicted"; "steps/pred"; "mean stretch"; "paper" ]
  in
  List.iteri
    (fun bi beta ->
      let points = ref [] in
      List.iteri
        (fun ni n ->
          let rng = Context.rng ctx ~salt:(3000 + (100 * bi) + ni) in
          let params = Girg.Params.make ~dim:2 ~beta ~c:0.25 ~n () in
          let inst = Girg.Instance.generate ~rng params in
          let pairs =
            Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:pairs_per_size
          in
          let res =
            Workload.run ~graph:inst.graph
              ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
              ~protocol:Greedy_routing.Protocol.Greedy ~with_stretch:true ~pairs ()
          in
          let mean = Workload.mean_steps res in
          let p95 =
            if Array.length res.steps = 0 then nan
            else Stats.Summary.percentile res.steps ~p:0.95
          in
          let predicted = predicted_length ~beta ~n in
          points := (log (log (float_of_int n)), mean) :: !points;
          Stats.Table.add_row table
            [
              Printf.sprintf "%.1f" beta;
              string_of_int n;
              Printf.sprintf "%.2f" mean;
              Printf.sprintf "%.0f" p95;
              Printf.sprintf "%.2f" predicted;
              Printf.sprintf "%.2f" (mean /. predicted);
              Printf.sprintf "%.3f" (Workload.mean_stretch res);
              "<= (2+o(1))/|ln(b-2)| lnln n; stretch -> 1";
            ])
        sizes;
      if List.length !points >= 2 then begin
        let fit = Stats.Regression.linear (Array.of_list !points) in
        Stats.Table.note table
          (Printf.sprintf
             "beta=%.1f: mean steps ~ %.2f * lnln n + %.2f (paper coefficient %.2f)" beta
             fit.Stats.Regression.slope fit.intercept
             (2.0 /. abs_float (log (beta -. 2.0))))
      end)
    betas;
  [ table ]
