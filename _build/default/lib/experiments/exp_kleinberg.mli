(** E8 — Section 1.1 baselines: Kleinberg's model routes in Theta(log^2 n)
    steps and only at the critical exponent; removing the perfect lattice
    (random positions) makes greedy routing fail; GIRGs beat both. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
