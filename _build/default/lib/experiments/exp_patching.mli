(** E5 — Theorem 3.4: any patching protocol satisfying (P1)–(P3) succeeds
    with probability 1 on same-component pairs and still routes in
    (2+o(1))/|log(beta-2)| * log log n steps. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
