(** E11 — Section 4 ([9, 10]): degree-agnostic geometric routing (pure
    distance minimisation) is less robust than objective-based greedy
    routing and degrades as beta approaches 3. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
