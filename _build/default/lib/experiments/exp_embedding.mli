(** E15 — the embed-then-route pipeline of Boguñá et al. [11]: infer
    hyperbolic coordinates for a bare graph and run greedy routing on them.
    Inferred coordinates should route far above chance, with unchanged path
    lengths on success, and patching restores guaranteed delivery. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
