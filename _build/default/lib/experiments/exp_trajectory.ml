let id = "E4"
let title = "Typical greedy trajectory (Figure 1, Section 6)"

let claim =
  "A successful greedy path first climbs to ever-heavier vertices (weight \
   exponent ~ 1/(beta-2) per hop), then descends towards the target with \
   rapidly shrinking geometric distance; the objective rises throughout."

let run ctx =
  let n = Context.pick ctx ~quick:8192 ~standard:65536 in
  let beta = 2.5 in
  let attempts = Context.pick ctx ~quick:300 ~standard:1200 in
  let rng = Context.rng ctx ~salt:4000 in
  let params = Girg.Params.make ~dim:2 ~beta ~c:0.25 ~n () in
  let inst = Girg.Instance.generate ~rng params in
  let graph = inst.graph in
  let comps = Sparse_graph.Components.compute graph in
  let giant = Sparse_graph.Components.giant_members comps in
  (* Milgram-typical endpoints: low weight, geometrically far apart. *)
  let eligible v = inst.weights.(v) <= 1.5 in
  let trajectories = ref [] in
  for _ = 1 to attempts do
    let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
    let s = giant.(i) and t = giant.(j) in
    if
      eligible s && eligible t
      && Geometry.Torus.dist_linf inst.positions.(s) inst.positions.(t) >= 0.2
    then begin
      let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
      let outcome =
        Greedy_routing.Greedy.route ~graph ~objective ~source:s ()
      in
      if Greedy_routing.Outcome.delivered outcome then
        trajectories :=
          Greedy_routing.Trajectory.of_walk ~inst ~target:t ~walk:outcome.walk
          :: !trajectories
    end
  done;
  let trajectories = !trajectories in
  (* Per-hop profile over trajectories of the modal length. *)
  let lengths = List.map (fun tr -> List.length tr - 1) trajectories in
  let modal =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun l -> Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
      lengths;
    Hashtbl.fold (fun l c (bl, bc) -> if c > bc then (l, c) else (bl, bc)) tbl (0, 0) |> fst
  in
  let modal_trs = List.filter (fun tr -> List.length tr - 1 = modal) trajectories in
  let profile =
    Stats.Table.create
      ~title:(Printf.sprintf "%s: per-hop profile (paths of modal length %d)" id modal)
      ~columns:[ "hop"; "mean log2 weight"; "median dist to t"; "median objective"; "paper" ]
  in
  for hop = 0 to modal do
    let at_hop = List.filter_map (fun tr -> List.nth_opt tr hop) modal_trs in
    let weights = Array.of_list (List.map (fun p -> Float.log2 p.Greedy_routing.Trajectory.weight) at_hop) in
    let dists = Array.of_list (List.map (fun p -> p.Greedy_routing.Trajectory.dist_to_target) at_hop) in
    let objs = Array.of_list (List.map (fun p -> p.Greedy_routing.Trajectory.objective) at_hop) in
    let shape =
      if hop = 0 then "start (low weight)"
      else if 2 * hop < modal then "phase 1: climb weights"
      else if hop = modal then "target"
      else "phase 2: close distance"
    in
    let finite_fmt fmt x =
      if Float.is_finite x then Printf.sprintf fmt x
      else if x = infinity then "inf"
      else "inf" (* median over a set containing the target's infinite phi *)
    in
    Stats.Table.add_row profile
      [
        string_of_int hop;
        Printf.sprintf "%.2f" (Stats.Summary.mean weights);
        Printf.sprintf "%.4f" (Stats.Summary.percentile dists ~p:0.5);
        finite_fmt "%.3g" (Stats.Summary.percentile objs ~p:0.5);
        shape;
      ]
  done;
  (* Phase-1 growth exponents and structural checks. *)
  let summary =
    Stats.Table.create
      ~title:(id ^ "b: trajectory structure")
      ~columns:[ "metric"; "measured"; "paper" ]
  in
  let exponents =
    List.concat_map Greedy_routing.Trajectory.weight_doubling_exponents trajectories
  in
  let peak_inner =
    List.filter
      (fun tr ->
        let peak = Greedy_routing.Trajectory.peak_weight_hop tr in
        peak > 0 && peak < List.length tr - 1)
      trajectories
  in
  Stats.Table.add_row summary
    [ "successful low-weight far-apart routes"; string_of_int (List.length trajectories); "" ];
  (if exponents <> [] then
     Stats.Table.add_row summary
       [
         "median phase-1 weight exponent";
         Printf.sprintf "%.2f" (Stats.Summary.percentile (Array.of_list exponents) ~p:0.5);
         Printf.sprintf "1/(beta-2) = %.2f" (1.0 /. (beta -. 2.0));
       ]);
  Stats.Table.add_row summary
    [
      "fraction with interior weight peak";
      (if trajectories = [] then "nan"
       else
         Printf.sprintf "%.2f"
           (float_of_int (List.length peak_inner) /. float_of_int (List.length trajectories)));
      "~1 (two-phase shape)";
    ];
  [ profile; summary ]
