(** E14 — model-parameter robustness ablation (the "our results are robust
    in the model parameters" bullet of Section 1): dimension, decay
    parameter, vertex-count law and probability constant do not change the
    qualitative behaviour of greedy routing. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
