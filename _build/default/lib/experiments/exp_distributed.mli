(** E16 — the distributed nature of the protocols (Sections 1–2): greedy
    routing and Algorithm 2 run as message-passing protocols where each node
    knows only its neighbours' addresses, the message carries O(1) scalars,
    one node is awake at a time, and message complexity equals the step
    bounds of Theorems 3.3/3.4. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
