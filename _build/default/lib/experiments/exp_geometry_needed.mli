(** E17 — geometry is what makes networks navigable (Sections 1.1/2.1):
    Chung–Lu graphs share the GIRG's exact marginal connection probabilities
    (Lemma 7.1) and are just as ultra-small, yet without positions no local
    greedy rule can find the short paths. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
