let id = "E2"
let title = "Failure probability vs w_min (Theorem 3.2)"

let claim =
  "With (EP3), greedy routing fails with probability O(exp(-w_min^Omega(1))): \
   log failure-rate falls roughly linearly in w_min.  For heavy endpoints \
   (w_s, w_t = omega(1)) the failure rate is polynomially small."

let run ctx =
  let n = Context.pick ctx ~quick:4096 ~standard:16384 in
  let pairs = Context.pick ctx ~quick:400 ~standard:1500 in
  let w_mins = [ 0.3; 0.5; 0.8; 1.2; 1.7; 2.3; 3.0 ] in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:[ "w_min"; "avg_deg"; "success"; "failure"; "ln failure"; "paper" ]
  in
  let points = ref [] in
  List.iteri
    (fun i w_min ->
      let rng = Context.rng ctx ~salt:(2000 + i) in
      (* c = 0.25 keeps (EP3): p_uv = 1 whenever dist^d <= 0.25 w_u w_v / (w_min n). *)
      let params = Girg.Params.make ~dim:2 ~beta:2.5 ~w_min ~c:0.25 ~n () in
      let inst = Girg.Instance.generate ~rng params in
      let pair_set =
        Workload.sample_pairs_any ~rng ~n:(Sparse_graph.Graph.n inst.graph) ~count:pairs
      in
      let res =
        Workload.run ~graph:inst.graph
          ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
          ~protocol:Greedy_routing.Protocol.Greedy ~pairs:pair_set ()
      in
      let failure = Workload.failure_rate res in
      if failure > 0.0 then points := (w_min, log failure) :: !points;
      Stats.Table.add_row table
        [
          Printf.sprintf "%.1f" w_min;
          Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree inst.graph);
          Printf.sprintf "%.4f" (Workload.success_rate res);
          Printf.sprintf "%.4f" failure;
          (if failure > 0.0 then Printf.sprintf "%.2f" (log failure) else "-inf");
          "exp(-w_min^Omega(1))";
        ])
    w_mins;
  (if List.length !points >= 3 then begin
     let fit = Stats.Regression.linear (Array.of_list !points) in
     Stats.Table.note table
       (Printf.sprintf
          "ln(failure) ~ %.2f * w_min + %.2f (R^2 = %.3f); a clearly negative slope = exponential decay."
          fit.Stats.Regression.slope fit.intercept fit.r2)
   end);
  (* Part (ii): heavy endpoints at the sparsest setting. *)
  let table2 =
    Stats.Table.create
      ~title:(id ^ "b: heavy endpoints (Theorem 3.2 (ii))")
      ~columns:[ "min endpoint weight"; "success"; "paper" ]
  in
  let rng = Context.rng ctx ~salt:2999 in
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~w_min:0.5 ~c:0.25 ~n () in
  let inst = Girg.Instance.generate ~rng params in
  List.iter
    (fun min_weight ->
      match
        Workload.sample_pairs_heavy ~rng ~weights:inst.weights ~min_weight
          ~count:(min pairs 500)
      with
      | exception Invalid_argument _ ->
          Stats.Table.add_row table2
            [ Printf.sprintf ">= %.0f" min_weight; "n/a (too few)"; "" ]
      | pair_set ->
          let res =
            Workload.run ~graph:inst.graph
              ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
              ~protocol:Greedy_routing.Protocol.Greedy ~pairs:pair_set ()
          in
          Stats.Table.add_row table2
            [
              Printf.sprintf ">= %.0f" min_weight;
              Printf.sprintf "%.4f" (Workload.success_rate res);
              "1 - min(w_s,w_t)^-Omega(1)";
            ])
    [ 1.0; 2.0; 4.0; 8.0 ];
  [ table; table2 ]
