(** E2 — Theorem 3.2: under (EP3) the failure probability of greedy routing
    decays exponentially in the minimum weight [w_min]; and (ii) it decays
    polynomially in [min(w_s, w_t)] for heavy endpoints. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
