(** E13 — robustness to link failures (Section 3, discussion of Theorem
    3.5): greedy routing degrades gracefully when every edge is transiently
    unavailable with constant probability at each forwarding step. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
