let id = "E12"
let title = "Layer structure of greedy paths (main Lemma 8.1)"

let claim =
  "The proof machinery predicts that a greedy path crosses the V1/V2 \
   boundary (weight-driven to objective-driven) at most once, and visits \
   each doubly exponential weight/objective layer at most once; the union \
   bound in Lemma 8.1 rests on exactly these events."

let run ctx =
  let sizes = Context.pick ctx ~quick:[ 8192 ] ~standard:[ 16384; 65536 ] in
  let betas = [ 2.3; 2.5; 2.8 ] in
  let pairs_count = Context.pick ctx ~quick:150 ~standard:400 in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [
          "beta"; "n"; "paths"; "<=1 phase switch"; "no layer repeat";
          "mean layers visited"; "paper";
        ]
  in
  List.iteri
    (fun bi beta ->
      List.iteri
        (fun ni n ->
          let rng = Context.rng ctx ~salt:(12_000 + (100 * bi) + ni) in
          let params = Girg.Params.make ~dim:2 ~beta ~c:0.25 ~n () in
          let inst = Girg.Instance.generate ~rng params in
          let comps = Sparse_graph.Components.compute inst.graph in
          let giant = Sparse_graph.Components.giant_members comps in
          let analyzed = ref 0 in
          let clean_phases = ref 0 in
          let clean_layers = ref 0 in
          let layer_counts = ref [] in
          for _ = 1 to pairs_count do
            let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
            let s = giant.(i) and t = giant.(j) in
            let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
            let outcome =
              Greedy_routing.Greedy.route ~graph:inst.graph ~objective ~source:s ()
            in
            (* The lemma describes successful walks of nontrivial length. *)
            if Greedy_routing.Outcome.delivered outcome && outcome.steps >= 2 then begin
              incr analyzed;
              let layers = Greedy_routing.Layers.make ~inst ~target:t () in
              (* Exclude the target itself (phi = infinity puts it in V2
                 trivially). *)
              let walk_body =
                List.filteri
                  (fun k _ -> k < List.length outcome.walk - 1)
                  outcome.walk
              in
              let report = Greedy_routing.Layers.analyze_walk layers walk_body in
              if report.Greedy_routing.Layers.phase_switches <= 1 then incr clean_phases;
              if
                report.Greedy_routing.Layers.repeated_weight_layers = 0
                && report.Greedy_routing.Layers.repeated_objective_layers = 0
              then incr clean_layers;
              layer_counts :=
                float_of_int
                  (report.Greedy_routing.Layers.weight_layers_visited
                 + report.Greedy_routing.Layers.objective_layers_visited)
                :: !layer_counts
            end
          done;
          let frac x = float_of_int x /. float_of_int (max 1 !analyzed) in
          Stats.Table.add_row table
            [
              Printf.sprintf "%.1f" beta;
              string_of_int n;
              string_of_int !analyzed;
              Printf.sprintf "%.3f" (frac !clean_phases);
              Printf.sprintf "%.3f" (frac !clean_layers);
              (match !layer_counts with
              | [] -> "nan"
              | xs -> Printf.sprintf "%.1f" (Stats.Summary.mean (Array.of_list xs)));
              "both fractions -> 1 (a.a.s.)";
            ])
        sizes)
    betas;
  Stats.Table.note table
    "walks of >= 2 hops, target excluded; layers use epsilon = 0.1 as in \
     Greedy_routing.Layers.";
  [ table ]
