(** E12 — Lemma 8.1 (the main lemma): greedy paths respect the layer
    structure — at most one crossing from the weight-driven region V1 to the
    objective-driven region V2, and no layer visited twice. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
