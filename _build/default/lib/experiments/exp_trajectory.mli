(** E4 — Figure 1 / Section 6: the typical trajectory of a greedy path.

    First phase: the current weight rises doubly exponentially (one exponent
    ~ 1/(beta-2) per hop); second phase: weights fall again while the
    geometric distance to the target collapses and the objective keeps
    rising. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
