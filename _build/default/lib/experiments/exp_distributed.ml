let id = "E16"
let title = "Distributed execution on a message-passing substrate"

let claim =
  "The protocols are purely distributed: each node's handler sees only its \
   own and its neighbours' addresses plus the message (O(1) scalars for \
   Algorithm 2); exactly one node is awake per event; messages sent equal \
   steps, so the log log n step bounds are message-complexity bounds; and \
   end-to-end delivery time is just the sum of the traversed links' \
   latencies."

let run ctx =
  let n = Context.pick ctx ~quick:4096 ~standard:16384 in
  let pairs_count = Context.pick ctx ~quick:100 ~standard:250 in
  let rng = Context.rng ctx ~salt:16_000 in
  (* Sparse enough that phi-DFS has real patching work to do. *)
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.12 ~n () in
  let inst = Girg.Instance.generate ~rng params in
  let comps = Sparse_graph.Components.compute inst.graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let pairs =
    Array.init pairs_count (fun _ ->
        let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
        (giant.(i), giant.(j)))
  in
  (* Random per-link latencies, deterministic in the endpoints. *)
  let latency ~src ~dst =
    let h = Hashtbl.hash (min src dst, max src dst, 17) in
    1.0 +. (float_of_int (h land 0xFFFF) /. 65536.0)
  in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [
          "protocol"; "success"; "mean msgs"; "msgs = steps"; "mean delivery time";
          "matches centralised"; "paper";
        ]
  in
  let eval name run_distributed run_centralised prediction =
    let delivered = ref 0 and msgs = ref [] and times = ref [] in
    let msg_eq_steps = ref true and matches = ref true in
    Array.iter
      (fun (source, target) ->
        let outcome, stats = run_distributed ~source ~target in
        let central = run_centralised ~source ~target in
        if
          central.Greedy_routing.Outcome.walk <> outcome.Greedy_routing.Outcome.walk
          || central.Greedy_routing.Outcome.status <> outcome.Greedy_routing.Outcome.status
        then matches := false;
        if stats.Netsim.Sim.sends <> outcome.Greedy_routing.Outcome.steps then
          msg_eq_steps := false;
        if Greedy_routing.Outcome.delivered outcome then begin
          incr delivered;
          msgs := float_of_int stats.Netsim.Sim.sends :: !msgs;
          times := stats.Netsim.Sim.final_time :: !times
        end)
      pairs;
    Stats.Table.add_row table
      [
        name;
        Printf.sprintf "%.3f" (float_of_int !delivered /. float_of_int pairs_count);
        (match !msgs with
        | [] -> "nan"
        | xs -> Printf.sprintf "%.2f" (Stats.Summary.mean (Array.of_list xs)));
        (if !msg_eq_steps then "yes" else "NO");
        (match !times with
        | [] -> "nan"
        | xs -> Printf.sprintf "%.2f" (Stats.Summary.mean (Array.of_list xs)));
        (if !matches then "yes" else "NO");
        prediction;
      ]
  in
  eval "greedy (distributed)"
    (fun ~source ~target -> Netsim.Dist_greedy.run ~inst ~source ~target ~latency ())
    (fun ~source ~target ->
      let objective = Greedy_routing.Objective.girg_phi inst ~target in
      Greedy_routing.Greedy.route ~graph:inst.graph ~objective ~source ())
    "O(loglog n) msgs, Omega(1) success";
  eval "phi-dfs (distributed)"
    (fun ~source ~target -> Netsim.Dist_dfs.run ~inst ~source ~target ~latency ())
    (fun ~source ~target ->
      let objective = Greedy_routing.Objective.girg_phi inst ~target in
      Greedy_routing.Patch_dfs.route ~graph:inst.graph ~objective ~source ())
    "success = 1, O(loglog n) msgs";
  Stats.Table.note table
    "per-node knowledge: own + neighbours' addresses; Algorithm 2 stores 4 \
     scalars per node and 2 in the message; per-link latencies are random \
     in [1, 2).";
  [ table ]
