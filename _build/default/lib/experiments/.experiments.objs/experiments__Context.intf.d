lib/experiments/context.mli: Prng
