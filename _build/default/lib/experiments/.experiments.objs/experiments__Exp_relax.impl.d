lib/experiments/exp_relax.ml: Array Context Girg Greedy_routing List Printf Stats Workload
