lib/experiments/exp_geometry_needed.mli: Context Stats
