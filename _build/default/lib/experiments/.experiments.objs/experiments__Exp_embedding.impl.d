lib/experiments/exp_embedding.ml: Context Greedy_routing Hyperbolic List Printf Stats Workload
