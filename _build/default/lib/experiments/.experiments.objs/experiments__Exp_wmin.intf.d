lib/experiments/exp_wmin.mli: Context Stats
