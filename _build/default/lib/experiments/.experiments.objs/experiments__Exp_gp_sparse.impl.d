lib/experiments/exp_gp_sparse.ml: Array Context Girg Greedy_routing List Printf Sparse_graph Stats Workload
