lib/experiments/exp_failures.mli: Context Stats
