lib/experiments/exp_patching.mli: Context Stats
