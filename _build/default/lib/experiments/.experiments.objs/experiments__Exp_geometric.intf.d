lib/experiments/exp_geometric.mli: Context Stats
