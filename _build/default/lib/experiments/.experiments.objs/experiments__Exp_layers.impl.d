lib/experiments/exp_layers.ml: Array Context Girg Greedy_routing List Printf Prng Sparse_graph Stats
