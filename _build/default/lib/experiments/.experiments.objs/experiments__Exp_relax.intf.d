lib/experiments/exp_relax.mli: Context Stats
