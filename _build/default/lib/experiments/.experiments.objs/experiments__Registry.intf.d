lib/experiments/registry.mli: Context Stats
