lib/experiments/exp_robustness.mli: Context Stats
