lib/experiments/exp_length.ml: Array Context Girg Greedy_routing List Printf Stats Workload
