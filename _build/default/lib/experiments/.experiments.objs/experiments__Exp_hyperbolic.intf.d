lib/experiments/exp_hyperbolic.mli: Context Stats
