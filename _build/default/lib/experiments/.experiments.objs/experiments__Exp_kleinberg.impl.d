lib/experiments/exp_kleinberg.ml: Array Context Girg Greedy_routing Kleinberg List Printf Prng Sparse_graph Stats Workload
