lib/experiments/exp_hyperbolic.ml: Context Greedy_routing Hyperbolic List Printf Sparse_graph Stats Workload
