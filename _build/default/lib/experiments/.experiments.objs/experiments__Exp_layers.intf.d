lib/experiments/exp_layers.mli: Context Stats
