lib/experiments/exp_distributed.ml: Array Context Girg Greedy_routing Hashtbl Netsim Printf Prng Sparse_graph Stats
