lib/experiments/exp_geometric.ml: Context Girg Greedy_routing List Printf Stats String Workload
