lib/experiments/exp_trajectory.mli: Context Stats
