lib/experiments/exp_trajectory.ml: Array Context Float Geometry Girg Greedy_routing Hashtbl List Option Printf Prng Sparse_graph Stats
