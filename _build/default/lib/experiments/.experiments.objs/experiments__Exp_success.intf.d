lib/experiments/exp_success.mli: Context Stats
