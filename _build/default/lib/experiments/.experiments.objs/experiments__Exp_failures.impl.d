lib/experiments/exp_failures.ml: Array Context Girg Greedy_routing List Printf Prng Sparse_graph Stats
