lib/experiments/workload.ml: Array Greedy_routing Prng Sparse_graph Stats
