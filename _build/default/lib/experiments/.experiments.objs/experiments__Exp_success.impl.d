lib/experiments/exp_success.ml: Context Girg Greedy_routing List Printf Sparse_graph Stats Workload
