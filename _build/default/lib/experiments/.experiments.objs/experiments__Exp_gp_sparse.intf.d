lib/experiments/exp_gp_sparse.mli: Context Stats
