lib/experiments/context.ml: Prng
