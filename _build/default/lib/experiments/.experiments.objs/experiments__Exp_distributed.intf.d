lib/experiments/exp_distributed.mli: Context Stats
