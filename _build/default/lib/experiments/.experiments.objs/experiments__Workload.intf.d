lib/experiments/workload.mli: Greedy_routing Prng Sparse_graph
