lib/experiments/exp_length.mli: Context Stats
