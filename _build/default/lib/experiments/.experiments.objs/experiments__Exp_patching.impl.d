lib/experiments/exp_patching.ml: Array Context Exp_length Girg Greedy_routing List Printf Stats Workload
