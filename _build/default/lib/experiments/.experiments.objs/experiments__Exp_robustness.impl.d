lib/experiments/exp_robustness.ml: Array Context Geometry Girg Greedy_routing List Printf Sparse_graph Stats Workload
