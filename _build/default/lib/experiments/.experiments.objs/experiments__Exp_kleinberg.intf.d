lib/experiments/exp_kleinberg.mli: Context Stats
