lib/experiments/exp_geometry_needed.ml: Array Context Float Girg Greedy_routing List Printf Sparse_graph Stats Workload
