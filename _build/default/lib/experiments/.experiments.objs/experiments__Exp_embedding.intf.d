lib/experiments/exp_embedding.mli: Context Stats
