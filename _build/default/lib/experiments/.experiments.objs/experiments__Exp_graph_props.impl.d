lib/experiments/exp_graph_props.ml: Array Context Exp_length Fun Girg List Option Printf Seq Sparse_graph Stats
