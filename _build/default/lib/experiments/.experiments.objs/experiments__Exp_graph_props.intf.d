lib/experiments/exp_graph_props.mli: Context Stats
