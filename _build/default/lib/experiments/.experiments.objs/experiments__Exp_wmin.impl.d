lib/experiments/exp_wmin.ml: Array Context Girg Greedy_routing List Printf Sparse_graph Stats Workload
