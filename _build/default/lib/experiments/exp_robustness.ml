let id = "E14"
let title = "Model-parameter robustness ablation (Section 1/3)"

let claim =
  "The theorems hold for ALL parameter choices: any dimension d, any decay \
   alpha > 1 (including the threshold model), Poisson or fixed vertex \
   counts, and any probability constant.  Ablating each knob leaves success \
   probability Omega(1) and ultra-small path lengths intact."

type variant = {
  label : string;
  dim : int;
  alpha : Girg.Params.alpha;
  c : float;
  norm : Geometry.Torus.norm;
  poisson : bool;
}

let baseline =
  { label = "baseline (d=2, a=2, Linf, poisson)"; dim = 2; alpha = Girg.Params.Finite 2.0;
    c = 0.25; norm = Geometry.Torus.Linf; poisson = true }

let variants =
  [
    baseline;
    { baseline with label = "d=1"; dim = 1 };
    { baseline with label = "d=3"; dim = 3 };
    { baseline with label = "alpha=1.2 (weak decay)"; alpha = Girg.Params.Finite 1.2 };
    { baseline with label = "alpha=4 (strong decay)"; alpha = Girg.Params.Finite 4.0 };
    { baseline with label = "alpha=inf (threshold)"; alpha = Girg.Params.Infinite };
    { baseline with label = "L2 norm"; norm = Geometry.Torus.L2 };
    { baseline with label = "L1 norm"; norm = Geometry.Torus.L1 };
    { baseline with label = "fixed vertex count"; poisson = false };
    { baseline with label = "c=0.5 (denser)"; c = 0.5 };
  ]

let run ctx =
  let n = Context.pick ctx ~quick:8192 ~standard:32768 in
  let pairs_count = Context.pick ctx ~quick:150 ~standard:400 in
  let beta = 2.5 in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:[ "variant"; "avg deg"; "success"; "mean steps"; "p95"; "paper" ]
  in
  List.iteri
    (fun i v ->
      let rng = Context.rng ctx ~salt:(14_000 + i) in
      let params =
        Girg.Params.make ~dim:v.dim ~beta ~alpha:v.alpha ~c:v.c ~norm:v.norm
          ~poisson_count:v.poisson ~n ()
      in
      let inst = Girg.Instance.generate ~rng params in
      let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:pairs_count in
      let res =
        Workload.run ~graph:inst.graph
          ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
          ~protocol:Greedy_routing.Protocol.Greedy ~pairs ()
      in
      Stats.Table.add_row table
        [
          v.label;
          Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree inst.graph);
          Printf.sprintf "%.3f" (Workload.success_rate res);
          Printf.sprintf "%.2f" (Workload.mean_steps res);
          (if Array.length res.steps = 0 then "nan"
           else Printf.sprintf "%.0f" (Stats.Summary.percentile res.steps ~p:0.95));
          "Omega(1) success, short paths";
        ])
    variants;
  Stats.Table.note table
    "contrast with Kleinberg's model, where changing the decay exponent \
     destroys navigability (E8).";
  [ table ]
