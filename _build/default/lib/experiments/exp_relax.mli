(** E6 — Theorem 3.5 / Remark 10.1: routing with approximate objectives.

    Bounded multiplicative noise (and sub-polynomial noise in
    min(w, phi^-1)) leaves success probability and path lengths intact;
    polynomially large noise slows routing down. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
