(** E3 — Theorem 3.3: successful greedy paths have length
    (2+o(1))/|log(beta-2)| * log log n and stretch 1 + o(1). *)

val id : string
val title : string
val claim : string

val predicted_length : beta:float -> n:int -> float
(** The paper's leading-order bound [2 / |ln(beta-2)| * ln ln n]. *)

val run : Context.t -> Stats.Table.t list
