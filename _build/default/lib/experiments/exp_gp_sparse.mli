(** E9 — Section 5: gravity–pressure routing (which violates (P3)) degrades
    badly on sparse networks, while the (P1)–(P3) protocols stay fast. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
