(** E10 — substrate validation (Lemmas 7.2/7.3 and the GIRG literature):
    degrees are Pois(Theta(w)), the degree distribution is a power law with
    exponent beta, a unique linear-size giant exists, the average distance
    matches (2±o(1))/|log(beta-2)| log log n, and clustering is constant. *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
