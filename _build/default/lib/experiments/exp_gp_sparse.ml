let id = "E9"
let title = "Gravity-pressure vs (P1)-(P3) patching on sparse graphs (Section 5)"

let claim =
  "Gravity-pressure delivers but, lacking condition (P3), may wander \
   through large parts of the graph before returning to the right branch: \
   on sparse GIRGs its step distribution has a heavy tail, while Phi-DFS \
   and history patching remain polylog."

let run ctx =
  let n = Context.pick ctx ~quick:8192 ~standard:32768 in
  let pairs_count = Context.pick ctx ~quick:150 ~standard:300 in
  let densities = [ ("sparse", 0.05); ("moderate", 0.15) ] in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [ "density"; "avg deg"; "protocol"; "success"; "mean"; "p95"; "max"; "paper" ]
  in
  List.iteri
    (fun di (label, c) ->
      let rng = Context.rng ctx ~salt:(9000 + di) in
      let params = Girg.Params.make ~dim:2 ~beta:2.6 ~w_min:0.6 ~c ~n () in
      let inst = Girg.Instance.generate ~rng params in
      let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:pairs_count in
      List.iter
        (fun protocol ->
          let res =
            Workload.run ~graph:inst.graph
              ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
              ~protocol ~pairs ()
          in
          let stats =
            if Array.length res.steps = 0 then None else Some (Stats.Summary.of_array res.steps)
          in
          Stats.Table.add_row table
            [
              label;
              Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree inst.graph);
              Greedy_routing.Protocol.name protocol;
              Printf.sprintf "%.3f" (Workload.success_rate res);
              (match stats with None -> "nan" | Some s -> Printf.sprintf "%.1f" s.mean);
              (match stats with None -> "nan" | Some s -> Printf.sprintf "%.0f" s.p95);
              (match stats with None -> "nan" | Some s -> Printf.sprintf "%.0f" s.max);
              (match protocol with
              | Greedy_routing.Protocol.Gravity_pressure -> "heavy tail, vulnerable"
              | Greedy_routing.Protocol.Greedy -> "drops packets"
              | _ -> "poly, controlled");
            ])
        Greedy_routing.Protocol.all)
    densities;
  [ table ]
