(** E7 — Corollary 3.6 / Section 11: geometric routing on hyperbolic random
    graphs inherits all the greedy-routing guarantees; at internet-like
    parameters the success rate is very high and the stretch close to 1
    (cf. Boguñá et al.'s 97% on the embedded internet). *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
