let id = "E15"
let title = "Embed-then-route pipeline (Boguna et al. [11])"

let claim =
  "Hyperbolic maps can be INFERRED from bare connectivity: re-embedding a \
   coordinate-stripped HRG (degrees -> radii, BFS-tree sectors -> angles) \
   lets greedy routing succeed on a large fraction of pairs with the same \
   path lengths as on the true coordinates, and Phi-DFS patching restores \
   delivery guarantees.  ([11] reached 97% with a full maximum-likelihood \
   fit; the gap below is the price of our deliberately simple embedder.)"

let run ctx =
  let n = Context.pick ctx ~quick:2000 ~standard:8000 in
  let pairs_count = Context.pick ctx ~quick:150 ~standard:400 in
  let configs =
    [ ("internet-like (beta=2.1)", 0.55, -0.5); ("beta=2.5", 0.75, -1.0) ]
  in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:[ "graph"; "coordinates"; "protocol"; "success"; "mean steps"; "paper" ]
  in
  List.iteri
    (fun ci (label, alpha_h, radius_c) ->
      let rng = Context.rng ctx ~salt:(15_000 + ci) in
      let p = Hyperbolic.Hrg.make ~alpha_h ~radius_c ~temperature:0.0 ~n () in
      let h = Hyperbolic.Hrg.generate ~rng p in
      let graph = h.graph in
      let embedding = Hyperbolic.Embed.infer ~rng ~graph () in
      let embedded = Hyperbolic.Embed.to_hrg embedding ~graph in
      let pairs = Workload.sample_pairs_giant ~rng ~graph ~count:pairs_count in
      let row coords_label hrg protocol prediction =
        let res =
          Workload.run ~graph
            ~objective_for:(fun ~target -> Greedy_routing.Objective.hyperbolic hrg ~target)
            ~protocol ~pairs ()
        in
        Stats.Table.add_row table
          [
            label;
            coords_label;
            Greedy_routing.Protocol.name protocol;
            Printf.sprintf "%.3f" (Workload.success_rate res);
            Printf.sprintf "%.2f" (Workload.mean_steps res);
            prediction;
          ]
      in
      row "true" h Greedy_routing.Protocol.Greedy "reference";
      row "inferred" embedded Greedy_routing.Protocol.Greedy
        "far above chance, same lengths";
      row "inferred" embedded Greedy_routing.Protocol.Patch_dfs "success = 1")
    configs;
  Stats.Table.note table
    "the same graph is routed under two coordinate sets; 'inferred' uses \
     only connectivity (degrees + BFS-tree sectors).";
  [ table ]
