let id = "E7"
let title = "Geometric routing on hyperbolic random graphs (Corollary 3.6)"

let claim =
  "Routing by hyperbolic distance on HRGs behaves exactly like greedy \
   routing on GIRGs: constant (in fact high) success probability, \
   O(log log n) path length, stretch ~ 1; patching lifts success to 1."

let run ctx =
  let sizes = Context.pick ctx ~quick:[ 2048; 8192 ] ~standard:[ 4096; 16384; 65536 ] in
  let pairs_count = Context.pick ctx ~quick:150 ~standard:300 in
  let configs =
    [
      (* internet-like: beta ~ 2.1, threshold connections *)
      (0.55, -0.5, 0.0, "internet-like (beta=2.1)");
      (0.75, -1.0, 0.0, "beta=2.5, threshold");
      (0.75, -1.0, 0.5, "beta=2.5, T=0.5");
    ]
  in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [ "config"; "n"; "avg deg"; "protocol"; "success"; "mean steps"; "stretch"; "paper" ]
  in
  List.iteri
    (fun ci (alpha_h, radius_c, temperature, label) ->
      List.iteri
        (fun ni n ->
          let rng = Context.rng ctx ~salt:(7000 + (100 * ci) + ni) in
          let p = Hyperbolic.Hrg.make ~alpha_h ~radius_c ~temperature ~n () in
          let h = Hyperbolic.Hrg.generate ~rng p in
          let pairs = Workload.sample_pairs_giant ~rng ~graph:h.graph ~count:pairs_count in
          List.iter
            (fun protocol ->
              let res =
                Workload.run ~graph:h.graph
                  ~objective_for:(fun ~target ->
                    Greedy_routing.Objective.hyperbolic h ~target)
                  ~protocol ~with_stretch:true ~pairs ()
              in
              Stats.Table.add_row table
                [
                  label;
                  string_of_int n;
                  Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree h.graph);
                  Greedy_routing.Protocol.name protocol;
                  Printf.sprintf "%.3f" (Workload.success_rate res);
                  Printf.sprintf "%.2f" (Workload.mean_steps res);
                  Printf.sprintf "%.3f" (Workload.mean_stretch res);
                  (if protocol = Greedy_routing.Protocol.Greedy then
                     "high success, stretch ~ 1"
                   else "success = 1");
                ])
            [ Greedy_routing.Protocol.Greedy; Greedy_routing.Protocol.Patch_dfs ])
        sizes)
    configs;
  Stats.Table.note table
    "same-component pairs; cf. the >90% success observed on the hyperbolic \
     internet embedding of Boguna et al. [11].";
  [ table ]
