let id = "E6"
let title = "Relaxed (approximate) objectives (Theorem 3.5)"

let claim =
  "Greedy routing is robust to approximation: multiplying phi by bounded \
   factors, or by min(w_v, phi(v)^-1)^delta with small delta, preserves \
   success rate and path length; constant-delta polynomial noise degrades \
   the path length (Remark 10.1)."

let run ctx =
  let n = Context.pick ctx ~quick:8192 ~standard:32768 in
  let pairs_count = Context.pick ctx ~quick:200 ~standard:500 in
  let rng = Context.rng ctx ~salt:6000 in
  (* Sparser than E1/E3 so paths are long enough for noise to bite. *)
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.1 ~n () in
  let inst = Girg.Instance.generate ~rng params in
  let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:pairs_count in
  let noise_seed = 1234 in
  let objectives =
    [
      ("exact phi", "baseline", fun ~target -> Greedy_routing.Objective.girg_phi inst ~target);
      ( "factor exp(±0.5)",
        "success Omega(1), length unchanged",
        fun ~target ->
          Greedy_routing.Objective.noisy_factor ~seed:noise_seed ~spread:0.5
            (Greedy_routing.Objective.girg_phi inst ~target) );
      ( "factor exp(±2.0)",
        "success Omega(1), length unchanged",
        fun ~target ->
          Greedy_routing.Objective.noisy_factor ~seed:noise_seed ~spread:2.0
            (Greedy_routing.Objective.girg_phi inst ~target) );
      ( "poly delta=0.1",
        "unchanged (small exponent)",
        fun ~target ->
          Greedy_routing.Objective.noisy_polynomial ~seed:noise_seed ~delta:0.1
            ~weights:inst.weights
            (Greedy_routing.Objective.girg_phi inst ~target) );
      ( "poly delta=0.5",
        "slower (Remark 10.1)",
        fun ~target ->
          Greedy_routing.Objective.noisy_polynomial ~seed:noise_seed ~delta:0.5
            ~weights:inst.weights
            (Greedy_routing.Objective.girg_phi inst ~target) );
      ( "poly delta=1.5",
        "much slower (Remark 10.1)",
        fun ~target ->
          Greedy_routing.Objective.noisy_polynomial ~seed:noise_seed ~delta:1.5
            ~weights:inst.weights
            (Greedy_routing.Objective.girg_phi inst ~target) );
    ]
  in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:[ "objective"; "protocol"; "success"; "mean steps"; "p95"; "paper" ]
  in
  List.iter
    (fun (label, prediction, objective_for) ->
      List.iter
        (fun protocol ->
          let res =
            Workload.run ~graph:inst.graph ~objective_for ~protocol ~pairs ()
          in
          Stats.Table.add_row table
            [
              label;
              Greedy_routing.Protocol.name protocol;
              Printf.sprintf "%.3f" (Workload.success_rate res);
              Printf.sprintf "%.2f" (Workload.mean_steps res);
              (if Array.length res.steps = 0 then "nan"
               else Printf.sprintf "%.0f" (Stats.Summary.percentile res.steps ~p:0.95));
              prediction;
            ])
        [ Greedy_routing.Protocol.Greedy; Greedy_routing.Protocol.Patch_dfs ])
    objectives;
  [ table ]
