let id = "E10"
let title = "GIRG substrate validation (Lemmas 7.2/7.3)"

let claim =
  "deg(v) ~ Pois(Theta(w_v)) (log-log slope 1 of degree vs weight); degree \
   power law with exponent beta; unique linear-size giant; average distance \
   (2±o(1))/|log(beta-2)| log log n; clustering coefficient constant in n."

let run ctx =
  let sizes = Context.pick ctx ~quick:[ 4096; 16384 ] ~standard:[ 8192; 32768; 131072 ] in
  let beta = 2.5 in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [
          "n"; "avg deg"; "deg~w slope"; "beta (MLE)"; "giant frac"; "avg dist";
          "pred dist"; "clustering";
        ]
  in
  List.iteri
    (fun i n ->
      let rng = Context.rng ctx ~salt:(10_000 + i) in
      let params = Girg.Params.make ~dim:2 ~beta ~c:0.25 ~n () in
      let inst = Girg.Instance.generate ~rng params in
      let g = inst.graph in
      let count = Sparse_graph.Graph.n g in
      (* Degree vs weight on a log-log scale: slope should be ~1. *)
      let points =
        Array.of_seq
          (Seq.filter_map
             (fun v ->
               let d = Sparse_graph.Graph.degree g v in
               if d > 0 then Some (inst.weights.(v), float_of_int d) else None)
             (Seq.init count Fun.id))
      in
      let slope =
        try (Stats.Regression.log_log points).Stats.Regression.slope with Invalid_argument _ -> nan
      in
      let beta_hat =
        (* Tail cutoff above the degree bulk, or the estimator is biased by
           the Poisson body of the distribution. *)
        let d_min = max 5 (2 * int_of_float (Sparse_graph.Graph.avg_degree g)) in
        Option.value ~default:nan (Sparse_graph.Gstats.power_law_exponent_mle ~d_min g)
      in
      let comps = Sparse_graph.Components.compute g in
      let giant = Sparse_graph.Components.giant_members comps in
      let avg_dist =
        Sparse_graph.Gstats.avg_distance_sample g ~rng
          ~pairs:(Context.pick ctx ~quick:100 ~standard:300)
          ~within:giant
      in
      let clustering =
        Sparse_graph.Gstats.global_clustering_sample g ~rng
          ~samples:(Context.pick ctx ~quick:300 ~standard:1000)
      in
      Stats.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree g);
          Printf.sprintf "%.2f" slope;
          Printf.sprintf "%.2f" beta_hat;
          Printf.sprintf "%.3f"
            (float_of_int (Array.length giant) /. float_of_int count);
          (match avg_dist with None -> "nan" | Some d -> Printf.sprintf "%.2f" d);
          Printf.sprintf "%.2f" (Exp_length.predicted_length ~beta ~n);
          Printf.sprintf "%.3f" clustering;
        ])
    sizes;
  Stats.Table.note table
    (Printf.sprintf
       "expected: slope ~ 1, beta ~ %.1f, giant frac high and stable, avg dist \
        tracking the prediction, clustering constant in n."
       beta);
  [ table ]
