let id = "E17"
let title = "Geometry makes navigability: GIRG vs Chung-Lu (Lemma 7.1)"

let claim =
  "A Chung-Lu graph with the SAME weights has the same marginal connection \
   probabilities (Lemma 7.1) and equally ultra-small distances — but \
   without geometry the only local signal is degree, and degree-greedy \
   routing (forward to the best-connected acquaintance) almost never finds \
   the target.  The small-world phenomenon is existential in Chung-Lu \
   graphs but ALGORITHMIC in GIRGs."

let run ctx =
  let sizes = Context.pick ctx ~quick:[ 2048; 8192 ] ~standard:[ 4096; 16384; 65536 ] in
  let pairs_count = Context.pick ctx ~quick:150 ~standard:300 in
  let beta = 2.5 in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:
        [ "model"; "n"; "avg deg"; "avg dist"; "objective"; "success"; "mean steps"; "paper" ]
  in
  List.iteri
    (fun ni n ->
      let rng = Context.rng ctx ~salt:(17_000 + ni) in
      let params = Girg.Params.make ~dim:2 ~beta ~c:0.25 ~n () in
      let inst = Girg.Instance.generate ~rng params in
      (* The Chung-Lu twin reuses the GIRG's weight sequence, scaled so both
         graphs have the same density (the GIRG kernel's Theta-constants
         make it denser than the bare w_u w_v / W rule); a denser twin is
         the baseline's best shot, since hubs become easier to reach. *)
      let cl =
        let trial = Girg.Chung_lu.generate ~rng ~weights:inst.weights in
        let ratio =
          Sparse_graph.Graph.avg_degree inst.graph
          /. Float.max 0.1 (Sparse_graph.Graph.avg_degree trial.Girg.Chung_lu.graph)
        in
        (* p = w_u w_v / W scales linearly when all weights scale linearly. *)
        let scaled = Array.map (fun w -> w *. ratio) inst.weights in
        Girg.Chung_lu.generate ~rng ~weights:scaled
      in
      let row ~model ~graph ~objective_label ~objective_for ~prediction =
        let comps = Sparse_graph.Components.compute graph in
        let giant = Sparse_graph.Components.giant_members comps in
        let avg_dist =
          Sparse_graph.Gstats.avg_distance_sample graph ~rng
            ~pairs:(Context.pick ctx ~quick:60 ~standard:150)
            ~within:giant
        in
        let pairs = Workload.sample_pairs_giant ~rng ~graph ~count:pairs_count in
        let res =
          Workload.run ~graph ~objective_for ~protocol:Greedy_routing.Protocol.Greedy
            ~pairs ()
        in
        Stats.Table.add_row table
          [
            model;
            string_of_int n;
            Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree graph);
            (match avg_dist with None -> "nan" | Some d -> Printf.sprintf "%.2f" d);
            objective_label;
            Printf.sprintf "%.3f" (Workload.success_rate res);
            Printf.sprintf "%.2f" (Workload.mean_steps res);
            prediction;
          ]
      in
      row ~model:"GIRG" ~graph:inst.graph ~objective_label:"phi (geometry + weight)"
        ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
        ~prediction:"navigable: Omega(1) success";
      row ~model:"Chung-Lu twin" ~graph:cl.Girg.Chung_lu.graph
        ~objective_label:"degree-greedy"
        ~objective_for:(fun ~target ->
          Greedy_routing.Objective.of_fun ~name:"weight" ~target (fun v ->
              cl.Girg.Chung_lu.weights.(v)))
        ~prediction:"not navigable: success -> 0")
    sizes;
  Stats.Table.note table
    "both models use identical weight sequences; 'avg dist' shows the short \
     paths exist in both — only the GIRG lets a local rule find them.";
  [ table ]
