(** E1 — Theorem 3.1: greedy routing succeeds with probability Ω(1).

    Sweeps the graph size for several (beta, alpha) combinations and reports
    the success rate of pure greedy routing over uniformly random
    source–target pairs.  Paper-predicted shape: the rate is bounded away
    from 0 and essentially flat in n (failures are dominated by the constant
    per-endpoint hazards of the first and last hops, not by n). *)

val id : string
val title : string
val claim : string
val run : Context.t -> Stats.Table.t list
