let id = "E8"
let title = "Kleinberg baseline: lattice, fragile exponent, noisy positions"

let claim =
  "On the lattice with exponent r=2 greedy routing needs Theta(log^2 n) \
   steps (steps/ln^2 n constant); other exponents are polynomially slower; \
   with random positions instead of a lattice ('noisy Kleinberg' = \
   constant-weight GIRG) greedy routing fails with high probability; GIRG \
   greedy routing needs only Theta(log log n) steps."

let lattice_steps ~rng lattice ~pairs =
  let count = Kleinberg.Lattice.n lattice in
  let steps = ref [] in
  for _ = 1 to pairs do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:count in
    steps := float_of_int (Kleinberg.Lattice.greedy_route lattice ~source:s ~target:t) :: !steps
  done;
  Array.of_list !steps

let run ctx =
  let pairs = Context.pick ctx ~quick:100 ~standard:300 in
  (* Part 1: scaling at the critical exponent. *)
  let sides = Context.pick ctx ~quick:[ 32; 64 ] ~standard:[ 32; 64; 128; 256 ] in
  let t1 =
    Stats.Table.create
      ~title:(id ^ ": lattice scaling at r = 2")
      ~columns:[ "side"; "n"; "mean steps"; "steps/ln^2 n"; "paper" ]
  in
  List.iteri
    (fun i side ->
      let rng = Context.rng ctx ~salt:(8000 + i) in
      let lattice = Kleinberg.Lattice.generate ~rng (Kleinberg.Lattice.make ~side ()) in
      let steps = lattice_steps ~rng lattice ~pairs in
      let n = side * side in
      let ln2 = log (float_of_int n) ** 2.0 in
      Stats.Table.add_row t1
        [
          string_of_int side;
          string_of_int n;
          Printf.sprintf "%.1f" (Stats.Summary.mean steps);
          Printf.sprintf "%.3f" (Stats.Summary.mean steps /. ln2);
          "O(log^2 n): ratio flat";
        ])
    sides;
  (* Part 2: fragile exponent. *)
  let side = Context.pick ctx ~quick:64 ~standard:128 in
  let t2 =
    Stats.Table.create
      ~title:(Printf.sprintf "%s: exponent fragility (side = %d)" id side)
      ~columns:[ "exponent r"; "mean steps"; "paper" ]
  in
  List.iteri
    (fun i r ->
      let rng = Context.rng ctx ~salt:(8100 + i) in
      let lattice =
        Kleinberg.Lattice.generate ~rng (Kleinberg.Lattice.make ~side ~exponent:r ())
      in
      let steps = lattice_steps ~rng lattice ~pairs in
      Stats.Table.add_row t2
        [
          Printf.sprintf "%.1f" r;
          Printf.sprintf "%.1f" (Stats.Summary.mean steps);
          (if r = 2.0 then "optimal asymptotically (log^2 n)"
           else if r > 2.0 then "n^Omega(1): already visibly slower"
           else "n^Omega(1): emerges only at huge n");
        ])
    [ 0.0; 1.0; 2.0; 2.5; 3.0 ];
  Stats.Table.note t2
    "for r < 2 the polynomial lower bound has a tiny exponent and minuscule \
     constants; Kleinberg's own simulations needed n ~ 10^8 to separate it \
     (finite-size effect, not a contradiction).";
  (* Part 3: noisy Kleinberg (random positions, constant weights) fails,
     while the inhomogeneous GIRG keeps succeeding. *)
  let sizes = Context.pick ctx ~quick:[ 1024; 4096 ] ~standard:[ 1024; 4096; 16384; 65536 ] in
  let t3 =
    Stats.Table.create
      ~title:(id ^ ": noisy Kleinberg (no lattice) vs GIRG")
      ~columns:[ "model"; "n"; "avg deg"; "success"; "mean steps"; "paper" ]
  in
  List.iteri
    (fun i n ->
      let rng = Context.rng ctx ~salt:(8200 + i) in
      (* Constant weights: 'the same edge sampling procedure as in
         Kleinberg's model' started from random positions. *)
      let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:1.0 ~n () in
      let count = Girg.Instance.vertex_count ~rng ~params in
      let weights = Array.make count 1.0 in
      let positions = Girg.Instance.sample_positions ~rng ~params ~count in
      let noisy = Girg.Instance.generate_with ~rng ~params ~weights ~positions () in
      let pairs_set = Workload.sample_pairs_giant ~rng ~graph:noisy.graph ~count:pairs in
      let res =
        Workload.run ~graph:noisy.graph
          ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi noisy ~target)
          ~protocol:Greedy_routing.Protocol.Greedy ~pairs:pairs_set ()
      in
      Stats.Table.add_row t3
        [
          "noisy Kleinberg";
          string_of_int n;
          Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree noisy.graph);
          Printf.sprintf "%.3f" (Workload.success_rate res);
          Printf.sprintf "%.2f" (Workload.mean_steps res);
          "success -> 0 as n grows";
        ];
      let girg_params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.25 ~n () in
      let inst = Girg.Instance.generate ~rng girg_params in
      let pairs_set = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:pairs in
      let res =
        Workload.run ~graph:inst.graph
          ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
          ~protocol:Greedy_routing.Protocol.Greedy ~pairs:pairs_set ()
      in
      Stats.Table.add_row t3
        [
          "GIRG (beta=2.5)";
          string_of_int n;
          Printf.sprintf "%.1f" (Sparse_graph.Graph.avg_degree inst.graph);
          Printf.sprintf "%.3f" (Workload.success_rate res);
          Printf.sprintf "%.2f" (Workload.mean_steps res);
          "Omega(1) success, loglog n steps";
        ])
    sizes;
  [ t1; t2; t3 ]
