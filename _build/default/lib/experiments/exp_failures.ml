let id = "E13"
let title = "Greedy routing under transient link failures (Theorem 3.5 discussion)"

let claim =
  "Because many near-optimal neighbours are 'good enough' (any of the best \
   min(w, phi^-1)^o(1) ones), routing survives transient edge failures: the \
   current vertex simply forwards to the best surviving neighbour.  Success \
   degrades gracefully and path lengths barely grow for constant failure \
   rates."

let run ctx =
  let n = Context.pick ctx ~quick:8192 ~standard:32768 in
  let pairs_count = Context.pick ctx ~quick:200 ~standard:500 in
  let rng = Context.rng ctx ~salt:13_000 in
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~c:0.25 ~n () in
  let inst = Girg.Instance.generate ~rng params in
  let comps = Sparse_graph.Components.compute inst.graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let pairs =
    Array.init pairs_count (fun _ ->
        let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
        (giant.(i), giant.(j)))
  in
  let table =
    Stats.Table.create
      ~title:(id ^ ": " ^ title)
      ~columns:[ "edge failure prob"; "success"; "mean steps"; "p95"; "paper" ]
  in
  List.iter
    (fun failure_prob ->
      let delivered = ref 0 and steps = ref [] in
      Array.iter
        (fun (source, target) ->
          let objective = Greedy_routing.Objective.girg_phi inst ~target in
          let outcome =
            Greedy_routing.Faulty.route ~graph:inst.graph ~objective ~source ~rng
              ~failure_prob ()
          in
          if Greedy_routing.Outcome.delivered outcome then begin
            incr delivered;
            steps := float_of_int outcome.steps :: !steps
          end)
        pairs;
      let steps = Array.of_list !steps in
      Stats.Table.add_row table
        [
          Printf.sprintf "%.2f" failure_prob;
          Printf.sprintf "%.3f" (float_of_int !delivered /. float_of_int pairs_count);
          (if Array.length steps = 0 then "nan"
           else Printf.sprintf "%.2f" (Stats.Summary.mean steps));
          (if Array.length steps = 0 then "nan"
           else Printf.sprintf "%.0f" (Stats.Summary.percentile steps ~p:0.95));
          (if failure_prob = 0.0 then "baseline"
           else "graceful degradation, length ~ unchanged");
        ])
    [ 0.0; 0.1; 0.25; 0.5; 0.75 ];
  Stats.Table.note table
    "fresh failure coins per forwarding step; a vertex drops the packet \
     only if no surviving link improves the objective.";
  [ table ]
