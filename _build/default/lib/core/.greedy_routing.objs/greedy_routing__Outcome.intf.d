lib/core/outcome.mli:
