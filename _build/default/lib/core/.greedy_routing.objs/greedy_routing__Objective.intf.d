lib/core/objective.mli: Geometry Girg Hyperbolic
