lib/core/protocol.ml: Gravity_pressure Greedy Patch_dfs Patch_history
