lib/core/gravity_pressure.mli: Objective Outcome Sparse_graph
