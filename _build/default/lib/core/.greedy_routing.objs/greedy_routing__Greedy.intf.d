lib/core/greedy.mli: Objective Outcome Sparse_graph
