lib/core/layers.mli: Girg
