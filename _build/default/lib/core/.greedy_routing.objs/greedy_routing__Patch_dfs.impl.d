lib/core/patch_dfs.ml: Array List Objective Option Outcome Sparse_graph
