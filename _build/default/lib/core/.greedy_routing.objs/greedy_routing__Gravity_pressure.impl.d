lib/core/gravity_pressure.ml: Array List Objective Option Outcome Sparse_graph
