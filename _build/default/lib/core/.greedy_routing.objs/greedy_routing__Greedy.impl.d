lib/core/greedy.ml: List Objective Option Outcome Sparse_graph
