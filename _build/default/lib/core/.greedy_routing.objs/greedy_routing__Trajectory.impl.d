lib/core/trajectory.ml: Array Geometry Girg List Objective
