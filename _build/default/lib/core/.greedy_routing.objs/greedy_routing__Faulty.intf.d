lib/core/faulty.mli: Objective Outcome Prng Sparse_graph
