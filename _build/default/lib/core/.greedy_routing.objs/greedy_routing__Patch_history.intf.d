lib/core/patch_history.mli: Objective Outcome Sparse_graph
