lib/core/binary_heap.mli:
