lib/core/faulty.ml: List Objective Option Outcome Prng Sparse_graph
