lib/core/patch_dfs.mli: Objective Outcome Sparse_graph
