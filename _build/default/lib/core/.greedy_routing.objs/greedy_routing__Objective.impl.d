lib/core/objective.ml: Array Float Geometry Girg Hyperbolic Int64 Printf
