lib/core/trajectory.mli: Girg
