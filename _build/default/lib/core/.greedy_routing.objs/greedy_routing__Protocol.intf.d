lib/core/protocol.mli: Objective Outcome Sparse_graph
