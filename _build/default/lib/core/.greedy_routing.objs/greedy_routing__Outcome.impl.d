lib/core/outcome.ml: Printf
