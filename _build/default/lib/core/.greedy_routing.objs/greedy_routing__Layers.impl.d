lib/core/layers.ml: Array Float Girg Hashtbl List Objective Option
