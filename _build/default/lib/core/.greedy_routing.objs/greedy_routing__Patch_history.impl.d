lib/core/patch_history.ml: Array Binary_heap List Objective Option Outcome Sparse_graph
