lib/core/binary_heap.ml: Array
