(** The layer decomposition behind the paper's main lemma (Sections 7.3 and
    8.1), as an empirical analysis tool.

    The proofs split the vertex set into
    [V1 = {v : phi(v) <= w_v^-gamma}] (first phase, weight-driven) and
    [V2 = {v : phi(v) >= w_v^-gamma}] (second phase, objective-driven) with
    [gamma = (1 - eps)/(beta - 2)], and partition each into doubly
    exponential layers: weight layers [y_{j+1} = y_j^g] in V1 and objective
    layers [psi_{j+1} = psi_j^g] in V2.  Lemma 8.1 shows that a.a.s. a greedy
    path crosses from V1 to V2 exactly once and visits every layer at most
    once — experiment E12 verifies both claims on sampled walks. *)

type phase = Weight_phase  (** V1 *) | Objective_phase  (** V2 *)

type t

val make : inst:Girg.Instance.t -> target:int -> ?epsilon:float -> unit -> t
(** Layer classifier for one instance and target.  [epsilon] is the paper's
    eps_1 (default 0.1); it must satisfy [0 < epsilon < 1]. *)

val gamma : t -> float
(** The phase-boundary exponent [(1 - eps)/(beta - 2)]. *)

val growth : t -> float
(** The per-layer exponent [g = gamma(zeta * eps)] with the paper's
    [zeta = max(3/2, (2a-1)/(2a+4-2b))] (3/2 in the threshold case). *)

val phase : t -> int -> phase
(** Which side of the V1/V2 boundary a vertex lies on. *)

val weight_layer : t -> int -> int
(** Index [j >= 0] of the weight layer [A_{1,j}] containing the vertex, or
    [-1] for weights below the base layer. *)

val objective_layer : t -> int -> int
(** Index [j >= 0] of the objective layer [A_{2,j}]; larger indices mean
    smaller objectives (the walk traverses them downwards); [-1] when the
    objective already exceeds the base [psi_0]. *)

type walk_report = {
  length : int;  (** hops in the walk *)
  phase_switches : int;
      (** transitions between V1 and V2 along the walk; Lemma 8.1 (ii)
          predicts at most 1 *)
  repeated_weight_layers : int;
      (** weight layers visited more than once during the V1 part;
          predicted 0 *)
  repeated_objective_layers : int;
      (** objective layers visited more than once during the V2 part;
          predicted 0 *)
  weight_layers_visited : int;
  objective_layers_visited : int;
}

val analyze_walk : t -> int list -> walk_report
