(** Gravity–pressure routing (Cvetkovski & Crovella, INFOCOM 2009; [23] in
    the paper) — the comparator that does {e not} satisfy condition (P3).

    Gravity mode forwards greedily; at a local optimum the protocol records
    the stuck objective and switches to pressure mode, forwarding to the
    least-visited neighbour (per-vertex visit counters) until it reaches a
    vertex strictly better than the stuck one, then resumes gravity.  It
    always delivers eventually on a connected component, but Section 5
    explains why it may wander far before returning to the right branch —
    experiment E9 reproduces its step blow-up on sparse graphs. *)

val route :
  graph:Sparse_graph.Graph.t ->
  objective:Objective.t ->
  source:int ->
  ?max_steps:int ->
  unit ->
  Outcome.t
(** [max_steps] defaults to [50 * n + 1000]; unlike the (P1)–(P3) protocols,
    hitting the cap ([Cutoff]) is a real possibility. *)
