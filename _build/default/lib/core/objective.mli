(** Objective functions for greedy routing (Section 2.2 of the paper).

    An objective scores vertices; routing protocols forward the message to
    the neighbour of maximum score.  Every objective is maximised at its
    target ([score target = infinity] by construction), which realises the
    paper's requirement that the target globally maximises phi. *)

type t = {
  name : string;
  target : int;
  score : int -> float;
}

val girg_phi : Girg.Instance.t -> target:int -> t
(** The paper's objective [phi(v) = w_v / (w_min n ||x_v - x_t||^d)]
    (Section 2.2) — maximising [phi] maximises the connection probability
    to the target.  [score target = infinity]. *)

val geometric : positions:Geometry.Torus.point array -> target:int -> t
(** Degree-agnostic geometric routing ([9, 10] in the paper): score
    [1 / ||x_v - x_t||].  Used by experiment E11 to show objective-based
    greedy routing is more robust. *)

val hyperbolic : Hyperbolic.Hrg.t -> target:int -> t
(** Geometric routing on hyperbolic random graphs: the objective [phi_H] of
    Section 11, [n / (w_t w_min sqrt(cosh d_H(v, t)))].  Maximising [phi_H]
    minimises the hyperbolic distance to the target. *)

val of_fun : name:string -> target:int -> (int -> float) -> t
(** Wrap an arbitrary scoring function; the target's score is forced to
    [infinity].  (Lattice-greedy on Kleinberg graphs uses this with the
    negated Manhattan distance.) *)

val noisy_factor : seed:int -> spread:float -> t -> t
(** Theorem 3.5, bounded relaxation: multiply each vertex's score by a
    deterministic pseudo-random factor [exp u], [u] uniform in
    [[-spread, spread]] (a function of [seed] and the vertex id).  The
    target's score stays [infinity]. *)

val noisy_polynomial :
  seed:int -> delta:float -> weights:float array -> t -> t
(** Theorem 3.5, full relaxation: multiply each score by
    [M_v^(u delta)] with [M_v = min(w_v, 1 / score v)] and [u] uniform in
    [[-1, 1]] — the [min(w_v, phi(v)^-1)^(o(1))] perturbation class.  With
    [delta = o(1)] all theorems survive; constant [delta] degrades routing
    (Remark 10.1), which experiment E6 demonstrates. *)
