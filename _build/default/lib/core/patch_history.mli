(** History-based patching (the SMTP-style example of Section 5).

    The message carries the list of visited vertices and, for every visited
    vertex, the objective of its best unexplored incident edge.  The
    protocol runs plain greedy while an unvisited improving neighbour
    exists; in a local optimum it physically walks back through the visited
    tree to the vertex owning the globally best unexplored edge and takes
    that edge.  This satisfies (P1)–(P3): greedy choices, poly-time
    exploration, poly-time exhaustive search.

    Steps count every hop of the message, including the walk back through
    the tree. *)

val route :
  graph:Sparse_graph.Graph.t ->
  objective:Objective.t ->
  source:int ->
  ?max_steps:int ->
  unit ->
  Outcome.t
(** [max_steps] defaults to [50 * n + 1000] tree hops. *)
