(** Algorithm 2 of the paper: the distributed greedy Φ-DFS exploration.

    Whenever the walk reaches a vertex with a strictly better objective than
    anything seen so far (and that vertex has an even better neighbour), a
    new depth-first search restricted to the sublevel set [G[V >= Φ]] with
    [Φ = φ(v)] is started; inner DFSs pause outer ones and are discarded on
    failure, resuming the outer search where it left off.  Per vertex only a
    constant amount of state is stored ([Φ], parent pointer, resume flag,
    previous [Φ]), and the message carries three scalars — exactly the
    memory model of the paper.

    The protocol satisfies conditions (P1)–(P3), so by Theorem 3.4 it always
    delivers when source and target share a component, a.a.s. within
    [(2+o(1))/|log(beta-2)| * log log n] steps.

    Steps are counted as edge traversals of the message, including every
    backtracking move. *)

val route :
  graph:Sparse_graph.Graph.t ->
  objective:Objective.t ->
  source:int ->
  ?max_steps:int ->
  unit ->
  Outcome.t
(** [max_steps] defaults to [50 * n + 1000]; exceeding it yields [Cutoff]
    (the theory guarantees polynomially many steps, and in practice runs end
    far below the default). *)
