type t = { name : string; target : int; score : int -> float }

let of_fun ~name ~target f =
  { name; target; score = (fun v -> if v = target then infinity else f v) }

let girg_phi (inst : Girg.Instance.t) ~target =
  let p = inst.params in
  let denom = p.Girg.Params.w_min *. float_of_int p.Girg.Params.n in
  let dim = p.Girg.Params.dim in
  let xt = inst.positions.(target) in
  let dist_fn = Geometry.Torus.dist_fn p.Girg.Params.norm in
  let score v =
    let dist = dist_fn inst.positions.(v) xt in
    let dist_d =
      match dim with
      | 1 -> dist
      | 2 -> dist *. dist
      | 3 -> dist *. dist *. dist
      | _ -> dist ** float_of_int dim
    in
    inst.weights.(v) /. (denom *. dist_d)
  in
  of_fun ~name:"phi" ~target score

let geometric ~positions ~target =
  let xt = positions.(target) in
  of_fun ~name:"geometric" ~target (fun v ->
      1.0 /. Geometry.Torus.dist_linf positions.(v) xt)

let hyperbolic (h : Hyperbolic.Hrg.t) ~target =
  let p = h.params in
  let nf = float_of_int p.Hyperbolic.Hrg.n in
  let w_min = exp (-.p.Hyperbolic.Hrg.radius_c /. 2.0) in
  let ct = h.coords.(target) in
  let wt = h.weights.(target) in
  let score v =
    let a = h.coords.(v) in
    let dangle =
      let d = abs_float (a.Hyperbolic.Hrg.angle -. ct.Hyperbolic.Hrg.angle) in
      if d > Float.pi then (2.0 *. Float.pi) -. d else d
    in
    let cosh_dh =
      cosh (a.Hyperbolic.Hrg.r -. ct.Hyperbolic.Hrg.r)
      +. ((1.0 -. cos dangle) *. sinh a.Hyperbolic.Hrg.r *. sinh ct.Hyperbolic.Hrg.r)
    in
    nf /. (wt *. w_min *. sqrt (Float.max 1.0 cosh_dh))
  in
  of_fun ~name:"phi_H" ~target score

(* Deterministic per-vertex uniform in [0, 1): one SplitMix64-style mix of
   (seed, vertex).  Stable across calls, so an objective scores consistently
   during a whole routing run. *)
let hash_unit ~seed v =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (v + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits53 = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int bits53 /. 9007199254740992.0

let noisy_factor ~seed ~spread base =
  if spread < 0.0 then invalid_arg "Objective.noisy_factor: negative spread";
  let score v =
    let u = (2.0 *. hash_unit ~seed v) -. 1.0 in
    base.score v *. exp (u *. spread)
  in
  of_fun ~name:(Printf.sprintf "%s~factor(%g)" base.name spread) ~target:base.target score

let noisy_polynomial ~seed ~delta ~weights base =
  if delta < 0.0 then invalid_arg "Objective.noisy_polynomial: negative delta";
  let score v =
    let s = base.score v in
    if s <= 0.0 then s
    else begin
      let m = Float.min weights.(v) (1.0 /. s) in
      let u = (2.0 *. hash_unit ~seed v) -. 1.0 in
      s *. (Float.max 1.0 m ** (u *. delta))
    end
  in
  of_fun
    ~name:(Printf.sprintf "%s~poly(%g)" base.name delta)
    ~target:base.target score
