(** Routing run results shared by all protocols. *)

type status =
  | Delivered  (** the message reached the target *)
  | Dead_end  (** pure greedy entered a local optimum and dropped the packet *)
  | Exhausted  (** a patching protocol proved the target unreachable *)
  | Cutoff  (** the step budget ran out (should not happen in theory) *)

type t = {
  status : status;
  steps : int;
      (** edge traversals by the message, including backtracking moves —
          the quantity bounded by Theorems 3.3 and 3.4 *)
  visited : int;  (** distinct vertices seen *)
  walk : int list;  (** full vertex sequence of the message, source first *)
}

val delivered : t -> bool

val path_if_delivered : t -> int list option
(** The walk when the run delivered, [None] otherwise. *)

val status_to_string : status -> string

val to_string : t -> string
