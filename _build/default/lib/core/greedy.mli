(** Algorithm 1: pure greedy routing.

    From the current vertex the message moves to the neighbour of maximum
    objective; if no neighbour beats the current vertex the packet is
    dropped (dead end).  Each vertex uses only the addresses of its direct
    neighbours plus the target's address carried in the message. *)

val route :
  graph:Sparse_graph.Graph.t ->
  objective:Objective.t ->
  source:int ->
  ?max_steps:int ->
  unit ->
  Outcome.t
(** [max_steps] defaults to [n + 1], which pure greedy can never exceed
    (the objective strictly increases along the path). *)
