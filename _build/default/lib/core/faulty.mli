(** Greedy routing under transient link failures.

    The discussion around Theorem 3.5 points out that greedy routing is
    robust: "it is no problem if some of the edges fail during execution of
    the routing, since the current vertex can send the message to any other
    good neighbor instead".  This module makes that executable: at every
    forwarding step each incident edge is independently unavailable with
    probability [failure_prob] (fresh coins per hop, modelling transient
    congestion/loss), and the message goes to the best {e reachable}
    improving neighbour.  Experiment E13 measures how slowly success and
    path length degrade as the failure rate grows. *)

val route :
  graph:Sparse_graph.Graph.t ->
  objective:Objective.t ->
  source:int ->
  rng:Prng.Rng.t ->
  failure_prob:float ->
  ?max_steps:int ->
  unit ->
  Outcome.t
(** With [failure_prob = 0] this behaves exactly like {!Greedy.route}.  The
    objective still strictly increases along the walk (only improving moves
    are taken), so [max_steps] keeps its [n + 1] default.
    @raise Invalid_argument unless [0 <= failure_prob < 1]. *)
