(** Uniform dispatch over the routing protocols. *)

type t =
  | Greedy  (** Algorithm 1 — may drop the packet at a local optimum *)
  | Patch_dfs  (** Algorithm 2 — distributed Φ-DFS, satisfies (P1)–(P3) *)
  | Patch_history  (** SMTP-style history patching, satisfies (P1)–(P3) *)
  | Gravity_pressure  (** the (P3)-violating comparator of Section 5 *)

val all : t list

val name : t -> string

val run :
  t ->
  graph:Sparse_graph.Graph.t ->
  objective:Objective.t ->
  source:int ->
  ?max_steps:int ->
  unit ->
  Outcome.t
