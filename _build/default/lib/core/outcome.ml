type status = Delivered | Dead_end | Exhausted | Cutoff

type t = { status : status; steps : int; visited : int; walk : int list }

let delivered t = t.status = Delivered

let path_if_delivered t = if delivered t then Some t.walk else None

let status_to_string = function
  | Delivered -> "delivered"
  | Dead_end -> "dead-end"
  | Exhausted -> "exhausted"
  | Cutoff -> "cutoff"

let to_string t =
  Printf.sprintf "%s in %d steps (%d vertices visited)" (status_to_string t.status)
    t.steps t.visited
