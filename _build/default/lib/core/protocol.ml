type t = Greedy | Patch_dfs | Patch_history | Gravity_pressure

let all = [ Greedy; Patch_dfs; Patch_history; Gravity_pressure ]

let name = function
  | Greedy -> "greedy"
  | Patch_dfs -> "phi-dfs"
  | Patch_history -> "history"
  | Gravity_pressure -> "gravity-pressure"

let run t ~graph ~objective ~source ?max_steps () =
  match t with
  | Greedy -> Greedy.route ~graph ~objective ~source ?max_steps ()
  | Patch_dfs -> Patch_dfs.route ~graph ~objective ~source ?max_steps ()
  | Patch_history -> Patch_history.route ~graph ~objective ~source ?max_steps ()
  | Gravity_pressure -> Gravity_pressure.route ~graph ~objective ~source ?max_steps ()
