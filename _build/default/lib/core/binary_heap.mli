(** Minimal max-heap of (priority, payload) pairs, used by the history-based
    patching protocol's frontier of unexplored edges. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop_max : 'a t -> (float * 'a) option
val peek_max : 'a t -> (float * 'a) option
