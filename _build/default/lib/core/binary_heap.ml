type 'a t = { mutable prio : float array; mutable data : 'a option array; mutable len : int }

let create () = { prio = Array.make 16 0.0; data = Array.make 16 None; len = 0 }

let is_empty t = t.len = 0
let size t = t.len

let swap t i j =
  let p = t.prio.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.data.(j) <- d

let push t p x =
  if t.len = Array.length t.prio then begin
    let np = Array.make (2 * t.len) 0.0 and nd = Array.make (2 * t.len) None in
    Array.blit t.prio 0 np 0 t.len;
    Array.blit t.data 0 nd 0 t.len;
    t.prio <- np;
    t.data <- nd
  end;
  t.prio.(t.len) <- p;
  t.data.(t.len) <- Some x;
  t.len <- t.len + 1;
  let i = ref (t.len - 1) in
  while !i > 0 && t.prio.((!i - 1) / 2) < t.prio.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop_max t =
  if t.len = 0 then None
  else begin
    let p = t.prio.(0) and x = t.data.(0) in
    t.len <- t.len - 1;
    t.prio.(0) <- t.prio.(t.len);
    t.data.(0) <- t.data.(t.len);
    t.data.(t.len) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let biggest = ref !i in
      if l < t.len && t.prio.(l) > t.prio.(!biggest) then biggest := l;
      if r < t.len && t.prio.(r) > t.prio.(!biggest) then biggest := r;
      if !biggest = !i then continue := false
      else begin
        swap t !i !biggest;
        i := !biggest
      end
    done;
    match x with None -> None | Some x -> Some (p, x)
  end

let peek_max t =
  if t.len = 0 then None
  else match t.data.(0) with None -> None | Some x -> Some (t.prio.(0), x)
