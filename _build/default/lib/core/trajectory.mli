(** Per-hop trajectory of a routing walk — the data behind Figure 1 of the
    paper (weights rise doubly exponentially during the first phase, then
    the objective rises while the geometric distance to the target falls). *)

type point = {
  hop : int;
  vertex : int;
  weight : float;
  objective : float;
  dist_to_target : float;
}

val of_walk : inst:Girg.Instance.t -> target:int -> walk:int list -> point list
(** Annotate a walk (e.g. [Outcome.walk]) with weight, the paper's phi
    objective, and L∞ distance to the target. *)

val peak_weight_hop : point list -> int
(** Hop index of the maximum-weight vertex — the boundary between the
    weight-increasing first phase and the distance-decreasing second phase. *)

val weight_doubling_exponents : point list -> float list
(** Successive exponents [log w_{i+1} / log w_i] over the first phase
    (hops up to the weight peak, restricted to weights >= 4 so the ratio of
    logarithms is numerically meaningful) — the paper predicts values
    around [1/(beta-2)]. *)
