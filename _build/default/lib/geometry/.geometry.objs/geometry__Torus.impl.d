lib/geometry/torus.ml: Array Float Printf Prng String
