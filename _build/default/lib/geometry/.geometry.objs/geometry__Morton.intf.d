lib/geometry/morton.mli: Torus
