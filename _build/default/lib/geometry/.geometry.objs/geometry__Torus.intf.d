lib/geometry/torus.mli: Prng
