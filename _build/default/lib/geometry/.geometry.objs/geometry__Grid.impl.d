lib/geometry/grid.ml: Array Morton
