lib/geometry/morton.ml: Array
