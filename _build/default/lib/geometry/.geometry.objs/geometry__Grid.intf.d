lib/geometry/grid.mli: Torus
