(** The d-dimensional unit torus [T^d = R^d / Z^d].

    Points are float arrays of length [d] with coordinates in [[0, 1)].  The
    paper's default metric is the wrap-around L∞ (max) norm; L1 and L2 are
    provided because the GIRG definition is norm-agnostic up to constants. *)

type point = float array

type norm = Linf | L2 | L1

val coord_dist : float -> float -> float
(** [coord_dist a b] is the 1-dimensional wrap-around distance
    [min (|a - b|) (1 - |a - b|)], always in [[0, 1/2]]. *)

val dist : ?norm:norm -> point -> point -> float
(** [dist x y] is the toroidal distance under [norm] (default [Linf]).
    @raise Invalid_argument if dimensions differ. *)

val dist_linf : point -> point -> float
(** Specialised L∞ distance (the hot path of every sampler and router). *)

val dist_fn : norm -> point -> point -> float
(** The distance function for a norm, resolved once (for hot loops).
    Note [dist_linf x y <= dist_fn L2 x y <= dist_fn L1 x y] pointwise, so
    L∞-based cell separation bounds lower-bound every supported norm. *)

val random_point : Prng.Rng.t -> dim:int -> point
(** A uniform point of [T^d]. *)

val wrap : float -> float
(** [wrap x] maps [x] into [[0, 1)] by taking the fractional part. *)

val add : point -> point -> point
(** Coordinate-wise addition modulo 1. *)

val ball_volume : dim:int -> radius:float -> float
(** Volume of an L∞ ball of radius [r] on the torus:
    [min 1 ((2 r)^d)]. *)

val ball_radius_of_volume : dim:int -> volume:float -> float
(** Inverse of {!ball_volume} for volumes in [[0, 1]]. *)

val to_string : point -> string
(** Human-readable rendering, e.g. ["(0.25, 0.75)"]. *)
