type point = float array

type norm = Linf | L2 | L1

let coord_dist a b =
  let d = abs_float (a -. b) in
  if d > 0.5 then 1.0 -. d else d

let check_dims x y =
  if Array.length x <> Array.length y then
    invalid_arg "Torus: dimension mismatch"

let dist_linf x y =
  check_dims x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = coord_dist x.(i) y.(i) in
    if d > !acc then acc := d
  done;
  !acc

let dist_l2 x y =
  check_dims x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = coord_dist x.(i) y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let dist_l1 x y =
  check_dims x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. coord_dist x.(i) y.(i)
  done;
  !acc

let dist ?(norm = Linf) x y =
  match norm with Linf -> dist_linf x y | L2 -> dist_l2 x y | L1 -> dist_l1 x y

let dist_fn = function Linf -> dist_linf | L2 -> dist_l2 | L1 -> dist_l1

let random_point rng ~dim = Array.init dim (fun _ -> Prng.Rng.unit_float rng)

let wrap x =
  let f = x -. Float.of_int (int_of_float (floor x)) in
  if f >= 1.0 then f -. 1.0 else if f < 0.0 then f +. 1.0 else f

let add x y =
  check_dims x y;
  Array.init (Array.length x) (fun i -> wrap (x.(i) +. y.(i)))

let ball_volume ~dim ~radius =
  if radius <= 0.0 then 0.0
  else Float.min 1.0 ((2.0 *. radius) ** float_of_int dim)

let ball_radius_of_volume ~dim ~volume =
  if volume <= 0.0 then 0.0
  else (Float.min 1.0 volume ** (1.0 /. float_of_int dim)) /. 2.0

let to_string p =
  let coords = Array.to_list (Array.map (Printf.sprintf "%.4f") p) in
  "(" ^ String.concat ", " coords ^ ")"
