type t = {
  dim : int;
  max_level : int;
  codes : int array; (* deepest-level Morton code, ascending *)
  order : int array; (* order.(k) = vertex id at sorted position k *)
}

let build ~dim ~max_level ~points ~ids =
  if max_level > Morton.max_level ~dim then
    invalid_arg "Grid.build: max_level too deep for dimension";
  let n = Array.length ids in
  let keyed =
    Array.map (fun id -> (Morton.code_of_point ~dim ~level:max_level points.(id), id)) ids
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) keyed;
  ignore n;
  {
    dim;
    max_level;
    codes = Array.map fst keyed;
    order = Array.map snd keyed;
  }

let dim t = t.dim
let max_level t = t.max_level
let size t = Array.length t.order

(* First sorted position whose code is >= [key]. *)
let lower_bound codes key =
  let lo = ref 0 and hi = ref (Array.length codes) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if codes.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let cell_range t ~level ~code =
  if level < 0 || level > t.max_level then invalid_arg "Grid.cell_range: bad level";
  let shift = t.dim * (t.max_level - level) in
  let lo_key = code lsl shift in
  let hi_key = (code + 1) lsl shift in
  (lower_bound t.codes lo_key, lower_bound t.codes hi_key)

let vertex_at t k = t.order.(k)

let iter_cell t ~level ~code f =
  let lo, hi = cell_range t ~level ~code in
  for k = lo to hi - 1 do
    f t.order.(k)
  done

let count_cell t ~level ~code =
  let lo, hi = cell_range t ~level ~code in
  hi - lo

let nonempty_cells t ~level =
  let shift = t.dim * (t.max_level - level) in
  let rec collect k acc =
    if k < 0 then acc
    else begin
      let code = t.codes.(k) lsr shift in
      match acc with
      | c :: _ when c = code -> collect (k - 1) acc
      | _ -> collect (k - 1) (code :: acc)
    end
  in
  collect (Array.length t.codes - 1) []
