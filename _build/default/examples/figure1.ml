(* An ASCII rendition of the paper's Figure 1: the typical trajectory of a
   greedy path, averaged over many routes.

   Phase 1: the walk climbs the weight hierarchy (one exponent ~ 1/(beta-2)
   per hop); phase 2: it descends towards the target while the geometric
   distance collapses and the objective phi keeps rising.

     dune exec examples/figure1.exe                                        *)

let bar ~width ~max_value value =
  let k = int_of_float (Float.max 0.0 value /. max_value *. float_of_int width) in
  String.make (min width k) '#'

let () =
  let beta = 2.5 in
  let rng = Prng.Rng.create ~seed:1612 in
  let params = Girg.Params.make ~n:100_000 ~dim:2 ~beta ~c:0.2 () in
  let inst = Girg.Instance.generate ~rng params in
  Printf.printf "GIRG: n=%d, beta=%.1f, avg degree %.1f\n"
    (Sparse_graph.Graph.n inst.graph) beta
    (Sparse_graph.Graph.avg_degree inst.graph);
  let comps = Sparse_graph.Components.compute inst.graph in
  let giant = Sparse_graph.Components.giant_members comps in

  (* Collect successful routes between low-weight, far-apart endpoints. *)
  let trajectories = ref [] in
  let attempts = 4000 in
  for _ = 1 to attempts do
    let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
    let s = giant.(i) and t = giant.(j) in
    if
      inst.weights.(s) <= 1.5 && inst.weights.(t) <= 1.5
      && Geometry.Torus.dist_linf inst.positions.(s) inst.positions.(t) >= 0.2
    then begin
      let objective = Greedy_routing.Objective.girg_phi inst ~target:t in
      let outcome = Greedy_routing.Greedy.route ~graph:inst.graph ~objective ~source:s () in
      if Greedy_routing.Outcome.delivered outcome then
        trajectories :=
          Greedy_routing.Trajectory.of_walk ~inst ~target:t ~walk:outcome.walk
          :: !trajectories
    end
  done;
  let trajectories = !trajectories in
  Printf.printf "%d successful low-weight far-apart routes collected\n\n"
    (List.length trajectories);

  (* Fix the modal path length; average per hop over those routes. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      let l = List.length tr - 1 in
      Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    trajectories;
  let modal, _ =
    Hashtbl.fold (fun l c (bl, bc) -> if c > bc then (l, c) else (bl, bc)) tbl (0, 0)
  in
  let sample = List.filter (fun tr -> List.length tr - 1 = modal) trajectories in
  Printf.printf "modal path length: %d hops (%d routes)\n\n" modal (List.length sample);

  let per_hop f =
    List.init (modal + 1) (fun hop ->
        let values =
          List.filter_map
            (fun tr -> Option.map f (List.nth_opt tr hop))
            sample
        in
        Stats.Summary.mean (Array.of_list values))
  in
  let log_weights = per_hop (fun p -> Float.log2 p.Greedy_routing.Trajectory.weight) in
  let dists = per_hop (fun p -> p.Greedy_routing.Trajectory.dist_to_target) in

  let width = 48 in
  let max_w = List.fold_left Float.max 1e-9 log_weights in
  let max_d = List.fold_left Float.max 1e-9 dists in
  print_endline "mean log2(weight) per hop           <- Figure 1, the w-axis";
  List.iteri
    (fun hop w ->
      let phase =
        if hop = 0 then "  start"
        else if w = max_w then "  <- core of the network"
        else if hop = modal then "  target"
        else ""
      in
      Printf.printf "  hop %2d |%-*s| %5.2f%s\n" hop width (bar ~width ~max_value:max_w w) w
        phase)
    log_weights;
  print_newline ();
  print_endline "mean distance to target per hop     <- Figure 1, the phi-axis (inverted)";
  List.iteri
    (fun hop d ->
      Printf.printf "  hop %2d |%-*s| %7.4f\n" hop width (bar ~width ~max_value:max_d d) d)
    dists;
  print_newline ();
  let exponents =
    List.concat_map Greedy_routing.Trajectory.weight_doubling_exponents sample
  in
  (match exponents with
  | [] -> ()
  | xs ->
      Printf.printf
        "phase-1 weight growth: median exponent %.2f per hop (paper: 1/(beta-2) = %.2f)\n"
        (Stats.Summary.percentile (Array.of_list xs) ~p:0.5)
        (1.0 /. (beta -. 2.0)));
  print_endline
    "the rise-then-fall weight profile with monotonically collapsing distance\n\
     is exactly the two-phase trajectory of Figure 1 / Section 6."
