(* Dead-end recovery, protocol by protocol (Section 5 of the paper).

   On a deliberately sparse GIRG pure greedy often drops the packet.  This
   demo finds a pair where that happens and shows how each patching
   strategy recovers: the paper's distributed Phi-DFS (Algorithm 2), the
   SMTP-style history protocol, and the (P3)-violating gravity-pressure
   heuristic.

     dune exec examples/patching_demo.exe                                  *)

let () =
  let rng = Prng.Rng.create ~seed:55 in
  let params = Girg.Params.make ~n:30_000 ~dim:2 ~beta:2.6 ~c:0.07 ~w_min:0.6 () in
  let inst = Girg.Instance.generate ~rng params in
  let graph = inst.graph in
  Printf.printf "sparse network: n=%d, avg degree %.1f\n" (Sparse_graph.Graph.n graph)
    (Sparse_graph.Graph.avg_degree graph);
  let comps = Sparse_graph.Components.compute graph in
  let giant = Sparse_graph.Components.giant_members comps in

  (* Find a same-component pair where plain greedy dies. *)
  let rec find_stuck_pair attempts =
    if attempts > 10_000 then failwith "no dead end found (graph too dense?)";
    let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
    let source = giant.(i) and target = giant.(j) in
    let objective = Greedy_routing.Objective.girg_phi inst ~target in
    let outcome = Greedy_routing.Greedy.route ~graph ~objective ~source () in
    if outcome.status = Greedy_routing.Outcome.Dead_end then (source, target, objective, outcome)
    else find_stuck_pair (attempts + 1)
  in
  let source, target, objective, greedy_outcome = find_stuck_pair 0 in
  Printf.printf "\npacket from %d to %d:\n" source target;
  Printf.printf "  %-17s %s\n" "greedy" (Greedy_routing.Outcome.to_string greedy_outcome);
  (match List.rev greedy_outcome.walk with
  | stuck :: _ ->
      Printf.printf "  (stuck at vertex %d: none of its %d neighbours improves phi)\n" stuck
        (Sparse_graph.Graph.degree graph stuck)
  | [] -> ());

  let shortest = Sparse_graph.Bfs.distance graph ~source ~target in
  (match shortest with
  | Some d -> Printf.printf "  a path exists though: shortest = %d hops\n\n" d
  | None -> print_endline "  (actually disconnected?)");

  List.iter
    (fun protocol ->
      let outcome = Greedy_routing.Protocol.run protocol ~graph ~objective ~source () in
      let stretch =
        match shortest with
        | Some d when d > 0 && Greedy_routing.Outcome.delivered outcome ->
            Printf.sprintf " (stretch %.2f, visited %d vertices)"
              (float_of_int outcome.steps /. float_of_int d)
              outcome.visited
        | _ -> ""
      in
      Printf.printf "  %-17s %s%s\n"
        (Greedy_routing.Protocol.name protocol)
        (Greedy_routing.Outcome.to_string outcome)
        stretch)
    [
      Greedy_routing.Protocol.Patch_dfs;
      Greedy_routing.Protocol.Patch_history;
      Greedy_routing.Protocol.Gravity_pressure;
    ];

  (* Aggregate view over many pairs. *)
  print_endline "\naggregate over 300 random giant-component pairs:";
  let pairs =
    Array.init 300 (fun _ ->
        let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
        (giant.(i), giant.(j)))
  in
  List.iter
    (fun protocol ->
      let res =
        Experiments.Workload.run ~graph
          ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
          ~protocol ~pairs ()
      in
      Printf.printf "  %-17s success %.1f%%  mean steps %.1f\n"
        (Greedy_routing.Protocol.name protocol)
        (100.0 *. Experiments.Workload.success_rate res)
        (Experiments.Workload.mean_steps res))
    Greedy_routing.Protocol.all
