(* Greedy geographic routing on an internet-like hyperbolic random graph —
   the question of Krioukov et al. answered by Corollary 3.6.

   Boguna, Papadopoulos and Krioukov (2010) embedded the AS-level internet
   into the hyperbolic plane and observed that greedy forwarding along
   hyperbolic distances delivers ~97% of packets over nearly-shortest
   paths.  Here we sample the model their embedding was validated against
   (beta ~ 2.1, i.e. alpha_h = 0.55) and run the same protocol.

     dune exec examples/internet_routing.exe                               *)

let () =
  let rng = Prng.Rng.create ~seed:2010 in
  let p = Hyperbolic.Hrg.make ~alpha_h:0.55 ~radius_c:(-1.5) ~temperature:0.0 ~n:30_000 () in
  let h = Hyperbolic.Hrg.generate ~rng p in
  let graph = h.graph in
  Printf.printf "AS-like topology: n=%d, m=%d, avg degree %.1f, degree exponent beta=%.2f\n"
    (Sparse_graph.Graph.n graph) (Sparse_graph.Graph.m graph)
    (Sparse_graph.Graph.avg_degree graph) (Hyperbolic.Hrg.beta p);
  (match Sparse_graph.Gstats.power_law_exponent_mle ~d_min:20 graph with
  | Some b -> Printf.printf "measured degree exponent: %.2f\n" b
  | None -> ());
  let comps = Sparse_graph.Components.compute graph in
  let giant = Sparse_graph.Components.giant_members comps in
  Printf.printf "giant component: %d nodes (%.1f%%)\n\n" (Array.length giant)
    (100.0 *. float_of_int (Array.length giant) /. float_of_int (Sparse_graph.Graph.n graph));

  let packets = 1000 in
  let run protocol =
    let delivered = ref 0 and steps = ref [] and stretches = ref [] in
    let rng = Prng.Rng.create ~seed:7 in
    for _ = 1 to packets do
      let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
      let source = giant.(i) and target = giant.(j) in
      let objective = Greedy_routing.Objective.hyperbolic h ~target in
      let outcome = Greedy_routing.Protocol.run protocol ~graph ~objective ~source () in
      if Greedy_routing.Outcome.delivered outcome then begin
        incr delivered;
        steps := float_of_int outcome.steps :: !steps;
        match Sparse_graph.Bfs.distance graph ~source ~target with
        | Some d when d > 0 ->
            stretches := (float_of_int outcome.steps /. float_of_int d) :: !stretches
        | Some _ | None -> ()
      end
    done;
    (!delivered, !steps, !stretches)
  in

  List.iter
    (fun protocol ->
      let delivered, steps, stretches = run protocol in
      let mean xs =
        match xs with [] -> nan | _ -> (Stats.Summary.of_list xs).Stats.Summary.mean
      in
      Printf.printf "%-17s delivery %.1f%%  mean hops %.2f  mean stretch %.3f\n"
        (Greedy_routing.Protocol.name protocol)
        (100.0 *. float_of_int delivered /. float_of_int packets)
        (mean steps) (mean stretches))
    [ Greedy_routing.Protocol.Greedy; Greedy_routing.Protocol.Patch_dfs ];
  print_endline
    "\n(compare: ~97% success and stretch ~1 reported for the embedded internet [11])"
