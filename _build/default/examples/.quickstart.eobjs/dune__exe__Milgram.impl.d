examples/milgram.ml: Girg Greedy_routing List Printf Prng Sparse_graph Stats
