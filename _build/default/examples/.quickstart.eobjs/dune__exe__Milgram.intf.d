examples/milgram.mli:
