examples/patching_demo.ml: Array Experiments Girg Greedy_routing List Printf Prng Sparse_graph
