examples/quickstart.mli:
