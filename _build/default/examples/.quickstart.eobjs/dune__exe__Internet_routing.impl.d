examples/internet_routing.ml: Array Greedy_routing Hyperbolic List Printf Prng Sparse_graph Stats
