examples/quickstart.ml: Array Geometry Girg Greedy_routing List Printf Prng Sparse_graph
