examples/patching_demo.mli:
