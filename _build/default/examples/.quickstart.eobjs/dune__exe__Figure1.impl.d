examples/figure1.ml: Array Float Geometry Girg Greedy_routing Hashtbl List Option Printf Prng Sparse_graph Stats String
