(* A synthetic Milgram letter experiment (Sections 1-2 of the paper).

   A GIRG plays the role of the acquaintance network: positions model
   geography/occupation, weights model how connected a person is.  Every
   participant forwards the letter to the acquaintance most likely to know
   the target (the objective phi) and gives up at a dead end — exactly
   Milgram's protocol, where ~29% of the letters arrived after ~6 hops.

     dune exec examples/milgram.exe                                         *)

let () =
  let rng = Prng.Rng.create ~seed:1967 in
  (* A "society" of 200k people, realistically sparse. *)
  let params = Girg.Params.make ~n:200_000 ~dim:2 ~beta:2.5 ~c:0.1 ~w_min:0.7 () in
  let inst = Girg.Instance.generate ~rng params in
  let graph = inst.graph in
  Printf.printf "society: %d people, %d acquaintance ties (avg %.1f per person)\n\n"
    (Sparse_graph.Graph.n graph) (Sparse_graph.Graph.m graph)
    (Sparse_graph.Graph.avg_degree graph);

  let letters = 500 in
  let n = Sparse_graph.Graph.n graph in
  let chain_lengths = ref [] in
  let delivered = ref 0 in
  for _ = 1 to letters do
    let source, target = Prng.Dist.sample_distinct_pair rng ~n in
    let objective = Greedy_routing.Objective.girg_phi inst ~target in
    let outcome = Greedy_routing.Greedy.route ~graph ~objective ~source () in
    if Greedy_routing.Outcome.delivered outcome then begin
      incr delivered;
      chain_lengths := float_of_int outcome.steps :: !chain_lengths
    end
  done;

  Printf.printf "letters sent:      %d\n" letters;
  Printf.printf "letters delivered: %d (%.0f%%; Milgram saw ~29%%, theory says Omega(1))\n"
    !delivered
    (100.0 *. float_of_int !delivered /. float_of_int letters);
  (match !chain_lengths with
  | [] -> print_endline "no chains completed"
  | lengths ->
      let s = Stats.Summary.of_list lengths in
      Printf.printf "chain length:      mean %.1f, median %.0f, p95 %.0f (six degrees!)\n\n"
        s.Stats.Summary.mean s.Stats.Summary.median s.Stats.Summary.p95;
      let h = Stats.Histogram.create_linear ~lo:0.5 ~hi:12.5 ~bins:12 in
      List.iter (fun l -> Stats.Histogram.add h l) lengths;
      print_endline "chain length distribution:";
      print_string (Stats.Histogram.render ~width:40 h));

  (* Lost letters are not lost causes: the same local information plus
     backtracking (Theorem 3.4) delivers every letter whose sender and
     addressee are socially connected at all. *)
  let patched = ref 0 and attempts = ref 0 in
  let comps = Sparse_graph.Components.compute graph in
  for _ = 1 to 100 do
    let source, target = Prng.Dist.sample_distinct_pair rng ~n in
    if Sparse_graph.Components.same comps source target then begin
      incr attempts;
      let objective = Greedy_routing.Objective.girg_phi inst ~target in
      let outcome = Greedy_routing.Patch_history.route ~graph ~objective ~source () in
      if Greedy_routing.Outcome.delivered outcome then incr patched
    end
  done;
  Printf.printf "\nwith backtracking (history patching): %d/%d connected pairs delivered\n"
    !patched !attempts
