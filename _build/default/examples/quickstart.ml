(* Quickstart: generate a GIRG, route one message greedily, inspect the path.

     dune exec examples/quickstart.exe                                        *)

let () =
  (* 1. Sample a geometric inhomogeneous random graph.  All randomness flows
     through an explicit generator, so runs are reproducible. *)
  let rng = Prng.Rng.create ~seed:2017 in
  let params =
    Girg.Params.make ~n:50_000 ~dim:2 ~beta:2.5 ~alpha:(Girg.Params.Finite 2.0) ~c:0.2 ()
  in
  let inst = Girg.Instance.generate ~rng params in
  let graph = inst.graph in
  Printf.printf "sampled %s\n" (Girg.Params.to_string params);
  Printf.printf "  vertices: %d, edges: %d, average degree: %.1f\n\n"
    (Sparse_graph.Graph.n graph) (Sparse_graph.Graph.m graph)
    (Sparse_graph.Graph.avg_degree graph);

  (* 2. Pick a random source and target inside the giant component. *)
  let comps = Sparse_graph.Components.compute graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
  let source = giant.(i) and target = giant.(j) in
  Printf.printf "routing from %d (w=%.2f, x=%s) to %d (w=%.2f, x=%s)\n" source
    inst.weights.(source)
    (Geometry.Torus.to_string inst.positions.(source))
    target inst.weights.(target)
    (Geometry.Torus.to_string inst.positions.(target));

  (* 3. Greedy routing with the paper's objective phi. *)
  let objective = Greedy_routing.Objective.girg_phi inst ~target in
  let outcome = Greedy_routing.Greedy.route ~graph ~objective ~source () in
  Printf.printf "greedy: %s\n" (Greedy_routing.Outcome.to_string outcome);

  (* 4. Inspect the trajectory: weights climb, then distance collapses. *)
  let trajectory =
    Greedy_routing.Trajectory.of_walk ~inst ~target ~walk:outcome.walk
  in
  Printf.printf "\n  hop  vertex    weight   dist_to_target   phi\n";
  List.iter
    (fun p ->
      Printf.printf "  %3d  %6d  %8.2f   %14.5f   %g\n" p.Greedy_routing.Trajectory.hop
        p.Greedy_routing.Trajectory.vertex p.Greedy_routing.Trajectory.weight
        p.Greedy_routing.Trajectory.dist_to_target p.Greedy_routing.Trajectory.objective)
    trajectory;

  (* 5. Compare with the true shortest path (stretch). *)
  (match Sparse_graph.Bfs.distance graph ~source ~target with
  | Some d when Greedy_routing.Outcome.delivered outcome ->
      Printf.printf "\nshortest path: %d hops -> stretch %.3f\n" d
        (float_of_int outcome.steps /. float_of_int d)
  | Some d -> Printf.printf "\nshortest path: %d hops (greedy was dropped)\n" d
  | None -> print_endline "\nsource and target are disconnected");

  (* 6. If greedy got stuck, patching (Algorithm 2) is guaranteed to work. *)
  if not (Greedy_routing.Outcome.delivered outcome) then begin
    let patched = Greedy_routing.Patch_dfs.route ~graph ~objective ~source () in
    Printf.printf "phi-DFS patching: %s\n" (Greedy_routing.Outcome.to_string patched)
  end
