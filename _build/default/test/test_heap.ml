open Greedy_routing

let test_empty () =
  let h : int Binary_heap.t = Binary_heap.create () in
  Alcotest.(check bool) "empty" true (Binary_heap.is_empty h);
  Alcotest.(check int) "size" 0 (Binary_heap.size h);
  Alcotest.(check bool) "pop none" true (Binary_heap.pop_max h = None);
  Alcotest.(check bool) "peek none" true (Binary_heap.peek_max h = None)

let test_push_pop_order () =
  let h = Binary_heap.create () in
  List.iter (fun (p, x) -> Binary_heap.push h p x)
    [ (3.0, "c"); (1.0, "a"); (5.0, "e"); (2.0, "b"); (4.0, "d") ];
  let order = ref [] in
  let rec drain () =
    match Binary_heap.pop_max h with
    | None -> ()
    | Some (_, x) ->
        order := x :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "descending priority" [ "a"; "b"; "c"; "d"; "e" ] !order

let test_peek_does_not_remove () =
  let h = Binary_heap.create () in
  Binary_heap.push h 2.0 "x";
  Binary_heap.push h 7.0 "y";
  (match Binary_heap.peek_max h with
  | Some (p, v) ->
      Alcotest.(check (float 0.0)) "peek prio" 7.0 p;
      Alcotest.(check string) "peek value" "y" v
  | None -> Alcotest.fail "expected element");
  Alcotest.(check int) "size unchanged" 2 (Binary_heap.size h)

let test_duplicates_and_negative () =
  let h = Binary_heap.create () in
  List.iter (fun p -> Binary_heap.push h p p) [ -1.0; -1.0; 0.0; -5.0 ];
  let firsts = ref [] in
  let rec drain () =
    match Binary_heap.pop_max h with
    | None -> ()
    | Some (p, _) ->
        firsts := p :: !firsts;
        drain ()
  in
  drain ();
  Alcotest.(check (list (float 0.0))) "sorted ascending after reversal"
    [ -5.0; -1.0; -1.0; 0.0 ] !firsts

let heap_sort_prop =
  QCheck2.Test.make ~name:"heap drains in descending priority order" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) (float_range (-100.0) 100.0))
    (fun prios ->
      let h = Binary_heap.create () in
      List.iteri (fun i p -> Binary_heap.push h p i) prios;
      let rec drain acc =
        match Binary_heap.pop_max h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      List.length out = List.length prios
      && out = List.sort (fun a b -> compare b a) prios)

let test_interleaved_operations () =
  let h = Binary_heap.create () in
  Binary_heap.push h 1.0 1;
  Binary_heap.push h 3.0 3;
  (match Binary_heap.pop_max h with
  | Some (_, v) -> Alcotest.(check int) "first pop" 3 v
  | None -> Alcotest.fail "expected");
  Binary_heap.push h 2.0 2;
  Binary_heap.push h 0.5 0;
  (match Binary_heap.pop_max h with
  | Some (_, v) -> Alcotest.(check int) "second pop" 2 v
  | None -> Alcotest.fail "expected");
  Alcotest.(check int) "remaining" 2 (Binary_heap.size h)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "push/pop order" `Quick test_push_pop_order;
    Alcotest.test_case "peek does not remove" `Quick test_peek_does_not_remove;
    Alcotest.test_case "duplicates and negatives" `Quick test_duplicates_and_negative;
    QCheck_alcotest.to_alcotest heap_sort_prop;
    Alcotest.test_case "interleaved operations" `Quick test_interleaved_operations;
  ]
