open Stats

let test_basic_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let r = Table.render t in
  Alcotest.(check bool) "title" true (String.length r > 0);
  (* Rows preserved in order. *)
  Alcotest.(check (list (list string))) "rows" [ [ "1"; "2" ]; [ "333"; "4" ] ] (Table.rows t)

let test_arity_check () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch with header")
    (fun () -> Table.add_row t [ "only one" ])

let test_add_rowf () =
  let t = Table.create ~title:"demo" ~columns:[ "x"; "y" ] in
  Table.add_rowf t "%d | %.2f" 4 0.5;
  Alcotest.(check (list (list string))) "formatted" [ [ "4"; "0.50" ] ] (Table.rows t)

let test_csv_quoting () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "has,comma"; "has\"quote" ];
  Table.add_row t [ "plain"; "1" ];
  let csv = Table.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "3 lines" 3 (List.length lines);
  Alcotest.(check string) "header" "name,value" (List.nth lines 0);
  Alcotest.(check string) "quoted" "\"has,comma\",\"has\"\"quote\"" (List.nth lines 1);
  Alcotest.(check string) "plain" "plain,1" (List.nth lines 2)

let test_notes_rendered () =
  let t = Table.create ~title:"demo" ~columns:[ "a" ] in
  Table.add_row t [ "1" ];
  Table.note t "important caveat";
  let r = Table.render t in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "note present" true (contains_sub r "important caveat")

let test_column_alignment () =
  let t = Table.create ~title:"demo" ~columns:[ "col"; "c" ] in
  Table.add_row t [ "x"; "longvalue" ];
  let r = Table.render t in
  let lines = String.split_on_char '\n' (String.trim r) in
  (* Header, rule, and data lines all have the same width. *)
  match lines with
  | _ :: header :: rule :: data :: _ ->
      Alcotest.(check int) "rule width" (String.length header) (String.length rule);
      Alcotest.(check int) "data width" (String.length header) (String.length data)
  | _ -> Alcotest.fail "unexpected layout"

let suite =
  [
    Alcotest.test_case "basic render" `Quick test_basic_render;
    Alcotest.test_case "arity check" `Quick test_arity_check;
    Alcotest.test_case "add_rowf" `Quick test_add_rowf;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "notes rendered" `Quick test_notes_rendered;
    Alcotest.test_case "column alignment" `Quick test_column_alignment;
  ]
