open Stats

let test_linear_binning () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:10.0 ~bins:5 in
  Histogram.add h 1.0;
  Histogram.add h 3.0;
  Histogram.add h 3.5;
  Histogram.add h 9.9;
  Alcotest.(check int) "count" 4 (Histogram.count h);
  let counts = List.map (fun (_, _, c) -> c) (Histogram.bins h) in
  Alcotest.(check (list int)) "per bin" [ 1; 2; 0; 0; 1 ] counts

let test_clamping () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h (-5.0);
  Histogram.add h 42.0;
  let counts = List.map (fun (_, _, c) -> c) (Histogram.bins h) in
  Alcotest.(check (list int)) "clamped to edges" [ 1; 1 ] counts

let test_log_binning () =
  let h = Histogram.create_log ~lo:1.0 ~hi:1000.0 ~bins:3 in
  Histogram.add h 2.0;
  Histogram.add h 50.0;
  Histogram.add h 500.0;
  let counts = List.map (fun (_, _, c) -> c) (Histogram.bins h) in
  Alcotest.(check (list int)) "decade bins" [ 1; 1; 1 ] counts;
  let edges = List.map (fun (lo, _, _) -> lo) (Histogram.bins h) in
  List.iter2
    (fun e expected -> Alcotest.(check (float 1e-6)) "edge" expected e)
    edges [ 1.0; 10.0; 100.0 ]

let test_invalid_args () =
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create_linear: hi <= lo")
    (fun () -> ignore (Histogram.create_linear ~lo:1.0 ~hi:1.0 ~bins:3));
  Alcotest.check_raises "log lo<=0" (Invalid_argument "Histogram.create_log: lo must be positive")
    (fun () -> ignore (Histogram.create_log ~lo:0.0 ~hi:1.0 ~bins:3))

let test_mode_bin () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:3.0 ~bins:3 in
  Alcotest.(check bool) "empty none" true (Histogram.mode_bin h = None);
  Histogram.add_many h [| 1.5; 1.6; 0.5 |];
  match Histogram.mode_bin h with
  | Some (lo, hi, c) ->
      Alcotest.(check (float 1e-9)) "mode lo" 1.0 lo;
      Alcotest.(check (float 1e-9)) "mode hi" 2.0 hi;
      Alcotest.(check int) "mode count" 2 c
  | None -> Alcotest.fail "expected a mode"

let counts_sum_prop =
  QCheck2.Test.make ~name:"bin counts sum to total" ~count:100
    QCheck2.Gen.(list_size (int_bound 100) (float_range (-2.0) 12.0))
    (fun xs ->
      let h = Histogram.create_linear ~lo:0.0 ~hi:10.0 ~bins:7 in
      List.iter (Histogram.add h) xs;
      let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.bins h) in
      total = List.length xs && Histogram.count h = List.length xs)

let test_render_nonempty () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:1.0 ~bins:4 in
  Histogram.add_many h [| 0.1; 0.1; 0.9 |];
  let r = Histogram.render h in
  Alcotest.(check bool) "has bars" true (String.length r > 0 && String.contains r '#')

let suite =
  [
    Alcotest.test_case "linear binning" `Quick test_linear_binning;
    Alcotest.test_case "clamping" `Quick test_clamping;
    Alcotest.test_case "log binning" `Quick test_log_binning;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "mode bin" `Quick test_mode_bin;
    QCheck_alcotest.to_alcotest counts_sum_prop;
    Alcotest.test_case "render" `Quick test_render_nonempty;
  ]
