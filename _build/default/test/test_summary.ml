open Stats

let test_basic () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "count" 5 s.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.median;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.5) s.stddev

let test_singleton () =
  let s = Summary.of_array [| 7.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 7.0 s.mean;
  Alcotest.(check (float 1e-9)) "median" 7.0 s.median;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.stddev

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty sample")
    (fun () -> ignore (Summary.of_array [||]))

let test_percentile_interpolation () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Summary.percentile xs ~p:0.0);
  Alcotest.(check (float 1e-9)) "p1" 40.0 (Summary.percentile xs ~p:1.0);
  Alcotest.(check (float 1e-9)) "median interp" 25.0 (Summary.percentile xs ~p:0.5);
  Alcotest.(check (float 1e-9)) "p25" 17.5 (Summary.percentile xs ~p:0.25)

let test_percentile_unsorted_input () =
  let xs = [| 30.0; 10.0; 40.0; 20.0 |] in
  Alcotest.(check (float 1e-9)) "sorted internally" 25.0 (Summary.percentile xs ~p:0.5);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 30.0; 10.0; 40.0; 20.0 |] xs

let test_percentile_bad_p () =
  Alcotest.check_raises "p>1" (Invalid_argument "Summary.percentile: p outside [0,1]")
    (fun () -> ignore (Summary.percentile [| 1.0 |] ~p:1.5))

let percentile_monotone_prop =
  QCheck2.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck2.Gen.(list_size (int_range 2 30) (float_bound_inclusive 100.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let ps = [ 0.0; 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ] in
      let vals = List.map (fun p -> Summary.percentile arr ~p) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

let mean_within_bounds_prop =
  QCheck2.Test.make ~name:"mean within [min, max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (float_range (-50.0) 50.0))
    (fun xs ->
      let s = Summary.of_list xs in
      s.min <= s.mean +. 1e-9 && s.mean <= s.max +. 1e-9)

let test_ci95 () =
  let s = Summary.of_array (Array.make 100 5.0) in
  Alcotest.(check (float 1e-9)) "zero variance" 0.0 (Summary.ci95_halfwidth s);
  let s1 = Summary.of_array [| 1.0 |] in
  Alcotest.(check bool) "nan for n=1" true (Float.is_nan (Summary.ci95_halfwidth s1))

let test_binomial_ci () =
  let lo, hi = Summary.binomial_ci95 ~successes:50 ~trials:100 in
  Alcotest.(check bool) "contains p-hat" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "reasonable width" true (hi -. lo < 0.25);
  let lo0, _ = Summary.binomial_ci95 ~successes:0 ~trials:100 in
  Alcotest.(check (float 1e-9)) "lower bound at 0" 0.0 lo0;
  let _, hi1 = Summary.binomial_ci95 ~successes:100 ~trials:100 in
  Alcotest.(check (float 1e-9)) "upper bound at 1" 1.0 hi1

let test_empty_summary () =
  Alcotest.(check int) "count 0" 0 Summary.empty.count;
  Alcotest.(check bool) "nan mean" true (Float.is_nan Summary.empty.mean)

let suite =
  [
    Alcotest.test_case "basic stats" `Quick test_basic;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "percentile leaves input" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "percentile bad p" `Quick test_percentile_bad_p;
    QCheck_alcotest.to_alcotest percentile_monotone_prop;
    QCheck_alcotest.to_alcotest mean_within_bounds_prop;
    Alcotest.test_case "ci95" `Quick test_ci95;
    Alcotest.test_case "binomial ci" `Quick test_binomial_ci;
    Alcotest.test_case "empty summary" `Quick test_empty_summary;
  ]
