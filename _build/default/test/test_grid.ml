open Geometry

let build_random ~seed ~n ~dim ~max_level =
  let rng = Prng.Rng.create ~seed in
  let points = Array.init n (fun _ -> Torus.random_point rng ~dim) in
  let grid = Grid.build ~dim ~max_level ~points ~ids:(Array.init n Fun.id) in
  (points, grid)

let test_size_and_accessors () =
  let _, grid = build_random ~seed:1 ~n:100 ~dim:2 ~max_level:5 in
  Alcotest.(check int) "size" 100 (Grid.size grid);
  Alcotest.(check int) "dim" 2 (Grid.dim grid);
  Alcotest.(check int) "max_level" 5 (Grid.max_level grid)

let test_cells_partition_all_levels () =
  let _, grid = build_random ~seed:2 ~n:500 ~dim:2 ~max_level:6 in
  List.iter
    (fun level ->
      let total = ref 0 in
      let seen = Array.make 500 false in
      for code = 0 to (1 lsl (2 * level)) - 1 do
        Grid.iter_cell grid ~level ~code (fun v ->
            if seen.(v) then Alcotest.fail "vertex in two cells";
            seen.(v) <- true;
            incr total)
      done;
      Alcotest.(check int)
        (Printf.sprintf "level %d partition" level)
        500 !total)
    [ 0; 1; 3; 6 ]

let test_cell_contents_match_brute_force () =
  let points, grid = build_random ~seed:3 ~n:300 ~dim:2 ~max_level:6 in
  List.iter
    (fun level ->
      for code = 0 to (1 lsl (2 * level)) - 1 do
        let members = ref [] in
        Grid.iter_cell grid ~level ~code (fun v -> members := v :: !members);
        let expected = ref [] in
        Array.iteri
          (fun v p ->
            if Morton.code_of_point ~dim:2 ~level p = code then expected := v :: !expected)
          points;
        Alcotest.(check (list int))
          (Printf.sprintf "cell %d@%d" code level)
          (List.sort compare !expected)
          (List.sort compare !members)
      done)
    [ 1; 2; 4 ]

let test_count_cell () =
  let _, grid = build_random ~seed:4 ~n:200 ~dim:1 ~max_level:4 in
  for code = 0 to 15 do
    let n = ref 0 in
    Grid.iter_cell grid ~level:4 ~code (fun _ -> incr n);
    Alcotest.(check int) "count matches iter" !n (Grid.count_cell grid ~level:4 ~code)
  done

let test_subset_ids () =
  (* Index only even vertices; odd ones must never appear. *)
  let rng = Prng.Rng.create ~seed:5 in
  let points = Array.init 100 (fun _ -> Torus.random_point rng ~dim:2) in
  let ids = Array.init 50 (fun i -> 2 * i) in
  let grid = Grid.build ~dim:2 ~max_level:4 ~points ~ids in
  Alcotest.(check int) "size" 50 (Grid.size grid);
  for code = 0 to 255 do
    Grid.iter_cell grid ~level:4 ~code (fun v ->
        if v mod 2 = 1 then Alcotest.fail "odd vertex indexed")
  done

let test_nonempty_cells () =
  let points, grid = build_random ~seed:6 ~n:120 ~dim:2 ~max_level:5 in
  let level = 3 in
  let expected =
    List.sort_uniq compare
      (Array.to_list (Array.map (fun p -> Morton.code_of_point ~dim:2 ~level p) points))
  in
  Alcotest.(check (list int)) "nonempty codes" expected (Grid.nonempty_cells grid ~level)

let test_vertex_at_order () =
  let _, grid = build_random ~seed:7 ~n:50 ~dim:2 ~max_level:5 in
  (* Positions 0..size-1 enumerate all indexed vertices exactly once. *)
  let seen = Array.make 50 false in
  for k = 0 to 49 do
    let v = Grid.vertex_at grid k in
    if seen.(v) then Alcotest.fail "vertex repeated in order";
    seen.(v) <- true
  done

let test_bad_level_rejected () =
  let _, grid = build_random ~seed:8 ~n:10 ~dim:2 ~max_level:3 in
  Alcotest.check_raises "too deep" (Invalid_argument "Grid.cell_range: bad level")
    (fun () -> ignore (Grid.cell_range grid ~level:4 ~code:0))

let test_build_too_deep_rejected () =
  Alcotest.check_raises "max_level too deep"
    (Invalid_argument "Grid.build: max_level too deep for dimension") (fun () ->
      ignore (Grid.build ~dim:2 ~max_level:40 ~points:[| [| 0.5; 0.5 |] |] ~ids:[| 0 |]))

let suite =
  [
    Alcotest.test_case "size and accessors" `Quick test_size_and_accessors;
    Alcotest.test_case "cells partition at all levels" `Quick test_cells_partition_all_levels;
    Alcotest.test_case "cell contents vs brute force" `Quick test_cell_contents_match_brute_force;
    Alcotest.test_case "count_cell" `Quick test_count_cell;
    Alcotest.test_case "subset ids" `Quick test_subset_ids;
    Alcotest.test_case "nonempty_cells" `Quick test_nonempty_cells;
    Alcotest.test_case "vertex_at enumerates once" `Quick test_vertex_at_order;
    Alcotest.test_case "bad level rejected" `Quick test_bad_level_rejected;
    Alcotest.test_case "too deep build rejected" `Quick test_build_too_deep_rejected;
  ]
