open Stats

let test_exact_line () =
  let points = Array.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) +. 1.0)) in
  let fit = Regression.linear points in
  Alcotest.(check (float 1e-9)) "slope" 2.5 fit.slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 fit.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 fit.r2

let test_constant_y () =
  let points = Array.init 5 (fun i -> (float_of_int i, 3.0)) in
  let fit = Regression.linear points in
  Alcotest.(check (float 1e-9)) "slope" 0.0 fit.slope;
  Alcotest.(check (float 1e-9)) "intercept" 3.0 fit.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 fit.r2

let test_constant_x () =
  let points = [| (1.0, 2.0); (1.0, 4.0) |] in
  let fit = Regression.linear points in
  Alcotest.(check (float 1e-9)) "slope" 0.0 fit.slope;
  Alcotest.(check (float 1e-9)) "intercept (mean y)" 3.0 fit.intercept

let test_too_few_points () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.linear: need at least 2 points") (fun () ->
      ignore (Regression.linear [| (1.0, 1.0) |]))

let test_noisy_slope_recovery () =
  let rng = Prng.Rng.create ~seed:77 in
  let points =
    Array.init 500 (fun i ->
        let x = float_of_int i /. 10.0 in
        (x, (1.7 *. x) -. 3.0 +. Prng.Dist.gaussian rng ~mean:0.0 ~stddev:0.5))
  in
  let fit = Regression.linear points in
  if abs_float (fit.slope -. 1.7) > 0.05 then Alcotest.failf "slope %f" fit.slope;
  if fit.r2 < 0.95 then Alcotest.failf "r2 %f" fit.r2

let test_log_log_power_law () =
  let points = Array.init 20 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 5.0 *. (x ** 1.5)))
  in
  let fit = Regression.log_log points in
  Alcotest.(check (float 1e-9)) "exponent" 1.5 fit.slope;
  Alcotest.(check (float 1e-9)) "log prefactor" (log 5.0) fit.intercept

let test_log_log_drops_nonpositive () =
  let points = [| (-1.0, 2.0); (0.0, 3.0); (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) |] in
  let fit = Regression.log_log points in
  Alcotest.(check (float 1e-9)) "exponent from positives" 1.0 fit.slope

let test_log_log_too_few () =
  Alcotest.check_raises "all nonpositive"
    (Invalid_argument "Regression.log_log: need 2 positive points") (fun () ->
      ignore (Regression.log_log [| (-1.0, 1.0); (1.0, -1.0) |]))

let test_predict () =
  let fit = { Regression.slope = 2.0; intercept = 1.0; r2 = 1.0 } in
  Alcotest.(check (float 1e-9)) "predict" 7.0 (Regression.predict fit 3.0)

let residuals_orthogonal_prop =
  (* OLS invariant: residuals sum to ~0. *)
  QCheck2.Test.make ~name:"OLS residuals sum to zero" ~count:100
    QCheck2.Gen.(list_size (int_range 2 30) (tup2 (float_range 0.0 10.0) (float_range (-5.0) 5.0)))
    (fun pts ->
      let points = Array.of_list pts in
      let fit = Regression.linear points in
      let resid_sum =
        Array.fold_left
          (fun acc (x, y) -> acc +. (y -. Regression.predict fit x))
          0.0 points
      in
      abs_float resid_sum < 1e-6 *. float_of_int (Array.length points))

let suite =
  [
    Alcotest.test_case "exact line" `Quick test_exact_line;
    Alcotest.test_case "constant y" `Quick test_constant_y;
    Alcotest.test_case "constant x" `Quick test_constant_x;
    Alcotest.test_case "too few points" `Quick test_too_few_points;
    Alcotest.test_case "noisy slope recovery" `Quick test_noisy_slope_recovery;
    Alcotest.test_case "log-log power law" `Quick test_log_log_power_law;
    Alcotest.test_case "log-log drops nonpositive" `Quick test_log_log_drops_nonpositive;
    Alcotest.test_case "log-log too few" `Quick test_log_log_too_few;
    Alcotest.test_case "predict" `Quick test_predict;
    QCheck_alcotest.to_alcotest residuals_orthogonal_prop;
  ]
