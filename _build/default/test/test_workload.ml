open Experiments

let instance () = Test_greedy.girg_instance ~seed:700 ~n:2000 ~c:0.15 ()

let test_sample_pairs_any () =
  let rng = Prng.Rng.create ~seed:1 in
  let pairs = Workload.sample_pairs_any ~rng ~n:10 ~count:200 in
  Alcotest.(check int) "count" 200 (Array.length pairs);
  Array.iter
    (fun (s, t) ->
      if s = t || s < 0 || s >= 10 || t < 0 || t >= 10 then Alcotest.fail "bad pair")
    pairs

let test_sample_pairs_giant () =
  let inst = instance () in
  let rng = Prng.Rng.create ~seed:2 in
  let comps = Sparse_graph.Components.compute inst.graph in
  let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:100 in
  Array.iter
    (fun (s, t) ->
      if not (Sparse_graph.Components.same comps s t) then
        Alcotest.fail "pair crosses components";
      if Sparse_graph.Components.id comps s <> Sparse_graph.Components.giant_id comps then
        Alcotest.fail "pair outside giant")
    pairs

let test_sample_pairs_heavy () =
  let inst = instance () in
  let rng = Prng.Rng.create ~seed:3 in
  let pairs = Workload.sample_pairs_heavy ~rng ~weights:inst.weights ~min_weight:2.0 ~count:50 in
  Array.iter
    (fun (s, t) ->
      if inst.weights.(s) < 2.0 || inst.weights.(t) < 2.0 then
        Alcotest.fail "light endpoint")
    pairs

let test_sample_pairs_heavy_rejects () =
  Alcotest.check_raises "no heavy vertices"
    (Invalid_argument "Workload.sample_pairs_heavy: fewer than two heavy vertices")
    (fun () ->
      ignore
        (Workload.sample_pairs_heavy
           ~rng:(Prng.Rng.create ~seed:1)
           ~weights:[| 1.0; 1.0 |] ~min_weight:5.0 ~count:5))

let test_run_counts_consistent () =
  let inst = instance () in
  let rng = Prng.Rng.create ~seed:4 in
  let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:120 in
  let res =
    Workload.run ~graph:inst.graph
      ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
      ~protocol:Greedy_routing.Protocol.Greedy ~pairs ()
  in
  Alcotest.(check int) "attempted" 120 res.Workload.attempted;
  Alcotest.(check int) "partition"
    res.Workload.attempted
    (res.Workload.delivered + res.Workload.dead_end + res.Workload.exhausted
   + res.Workload.cutoff);
  Alcotest.(check int) "steps per delivery" res.Workload.delivered
    (Array.length res.Workload.steps);
  Alcotest.(check (float 1e-9)) "success + failure = 1" 1.0
    (Workload.success_rate res +. Workload.failure_rate res)

let test_run_with_stretch () =
  let inst = instance () in
  let rng = Prng.Rng.create ~seed:5 in
  let pairs = Workload.sample_pairs_giant ~rng ~graph:inst.graph ~count:60 in
  let res =
    Workload.run ~graph:inst.graph
      ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
      ~protocol:Greedy_routing.Protocol.Greedy ~with_stretch:true ~pairs ()
  in
  Alcotest.(check bool) "stretch recorded" true (Array.length res.Workload.stretches > 0);
  Array.iter
    (fun s -> if s < 1.0 -. 1e-9 then Alcotest.failf "stretch %f below 1" s)
    res.Workload.stretches

let test_empty_pairs () =
  let inst = instance () in
  let res =
    Workload.run ~graph:inst.graph
      ~objective_for:(fun ~target -> Greedy_routing.Objective.girg_phi inst ~target)
      ~protocol:Greedy_routing.Protocol.Greedy ~pairs:[||] ()
  in
  Alcotest.(check int) "attempted 0" 0 res.Workload.attempted;
  Alcotest.(check bool) "nan rates" true (Float.is_nan (Workload.success_rate res));
  Alcotest.(check bool) "nan steps" true (Float.is_nan (Workload.mean_steps res))

let suite =
  [
    Alcotest.test_case "sample_pairs_any" `Quick test_sample_pairs_any;
    Alcotest.test_case "sample_pairs_giant" `Quick test_sample_pairs_giant;
    Alcotest.test_case "sample_pairs_heavy" `Quick test_sample_pairs_heavy;
    Alcotest.test_case "heavy rejects when empty" `Quick test_sample_pairs_heavy_rejects;
    Alcotest.test_case "run counts consistent" `Quick test_run_counts_consistent;
    Alcotest.test_case "run with stretch" `Quick test_run_with_stretch;
    Alcotest.test_case "empty pairs" `Quick test_empty_pairs;
  ]
