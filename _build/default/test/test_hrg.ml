open Hyperbolic

let params ?(alpha_h = 0.75) ?(radius_c = -1.0) ?(temperature = 0.0) ~n () =
  Hrg.make ~alpha_h ~radius_c ~temperature ~n ()

let test_make_validation () =
  Alcotest.check_raises "alpha too small"
    (Invalid_argument "Hrg.make: alpha_h must lie in (1/2, 1) for beta in (2, 3)")
    (fun () -> ignore (Hrg.make ~alpha_h:0.4 ~n:10 ()));
  Alcotest.check_raises "temperature 1"
    (Invalid_argument "Hrg.make: temperature must lie in [0, 1)") (fun () ->
      ignore (Hrg.make ~temperature:1.0 ~n:10 ()))

let test_disk_radius () =
  let p = params ~radius_c:0.5 ~n:100 () in
  Alcotest.(check (float 1e-9)) "R" ((2.0 *. log 100.0) +. 0.5) (Hrg.disk_radius p)

let test_beta_mapping () =
  Alcotest.(check (float 1e-9)) "beta" 2.5 (Hrg.beta (params ~n:10 ()));
  Alcotest.(check (float 1e-9)) "beta internet" 2.1
    (Hrg.beta (Hrg.make ~alpha_h:0.55 ~n:10 ()))

let test_distance_identities () =
  let a = { Hrg.r = 3.0; angle = 0.0 } in
  (* Same point: distance 0. *)
  Alcotest.(check (float 1e-9)) "self" 0.0 (Hrg.distance a a);
  (* Same angle: |r1 - r2|. *)
  let b = { Hrg.r = 5.0; angle = 0.0 } in
  Alcotest.(check (float 1e-6)) "radial" 2.0 (Hrg.distance a b);
  (* Symmetry. *)
  let c = { Hrg.r = 4.0; angle = 1.3 } in
  Alcotest.(check (float 1e-9)) "symmetric" (Hrg.distance a c) (Hrg.distance c a)

let distance_triangle_prop =
  QCheck2.Test.make ~name:"hyperbolic triangle inequality" ~count:300
    QCheck2.Gen.(
      tup3
        (tup2 (float_range 0.1 10.0) (float_range 0.0 6.28))
        (tup2 (float_range 0.1 10.0) (float_range 0.0 6.28))
        (tup2 (float_range 0.1 10.0) (float_range 0.0 6.28)))
    (fun ((r1, a1), (r2, a2), (r3, a3)) ->
      let p1 = { Hrg.r = r1; angle = a1 } in
      let p2 = { Hrg.r = r2; angle = a2 } in
      let p3 = { Hrg.r = r3; angle = a3 } in
      Hrg.distance p1 p2 <= Hrg.distance p1 p3 +. Hrg.distance p3 p2 +. 1e-6)

let test_edge_prob_threshold () =
  let p = params ~n:100 () in
  let big_r = Hrg.disk_radius p in
  Alcotest.(check (float 0.0)) "below" 1.0 (Hrg.edge_prob p (big_r -. 0.1));
  Alcotest.(check (float 0.0)) "above" 0.0 (Hrg.edge_prob p (big_r +. 0.1))

let test_edge_prob_temperature () =
  let p = params ~temperature:0.5 ~n:100 () in
  let big_r = Hrg.disk_radius p in
  Alcotest.(check (float 1e-9)) "at R" 0.5 (Hrg.edge_prob p big_r);
  Alcotest.(check bool) "monotone" true
    (Hrg.edge_prob p (big_r -. 1.0) > Hrg.edge_prob p (big_r +. 1.0));
  Alcotest.(check (float 1e-9)) "far" 0.0 (Hrg.edge_prob p (big_r +. 2000.0))

let test_girg_mapping_roundtrip () =
  let p = params ~n:1000 () in
  let pt = { Hrg.r = 7.3; angle = 2.1 } in
  let w = Hrg.girg_weight p ~r:pt.Hrg.r in
  let x = Hrg.girg_position pt in
  let back = Hrg.polar_of_girg p ~weight:w ~position:x in
  Alcotest.(check (float 1e-9)) "radius roundtrip" pt.Hrg.r back.Hrg.r;
  Alcotest.(check (float 1e-9)) "angle roundtrip" pt.Hrg.angle back.Hrg.angle

let test_radial_density () =
  (* Radii concentrate near the rim: P(r <= R - 2) should be small. *)
  let p = params ~n:10_000 () in
  let rng = Prng.Rng.create ~seed:12 in
  let big_r = Hrg.disk_radius p in
  let inner = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let pt = Hrg.sample_polar ~rng p in
    if pt.Hrg.r < 0.0 || pt.Hrg.r > big_r +. 1e-9 then Alcotest.fail "radius out of disk";
    if pt.Hrg.r <= big_r -. 2.0 then incr inner
  done;
  (* P(r <= R-2) ~ e^(-2 alpha_h) = 0.22 for alpha_h = 0.75. *)
  let frac = float_of_int !inner /. float_of_int n in
  if abs_float (frac -. exp (-2.0 *. 0.75)) > 0.03 then
    Alcotest.failf "inner fraction %.3f" frac

let test_kernel_envelope () =
  (* The HRG kernel's envelope must dominate the exact probability for
     weights below the cap. *)
  let p = params ~temperature:0.4 ~n:2000 () in
  let k = Hrg.kernel p in
  let rng = Prng.Rng.create ~seed:13 in
  for _ = 1 to 3000 do
    let wu = Prng.Rng.float rng (k.Girg.Kernel.weight_cap *. 0.99) +. 0.01 in
    let wv = Prng.Rng.float rng (k.Girg.Kernel.weight_cap *. 0.99) +. 0.01 in
    let min_dist = Prng.Rng.float rng 0.49 +. 0.001 in
    let dist = Float.min 0.5 (min_dist *. (1.0 +. Prng.Rng.float rng 2.0)) in
    let prob = k.Girg.Kernel.prob ~wu ~wv ~dist in
    let upper = k.Girg.Kernel.upper ~wu_ub:(wu *. 1.5) ~wv_ub:(wv *. 1.5) ~min_dist in
    if prob > upper +. 1e-9 then
      Alcotest.failf "envelope violated: prob %.6f > upper %.6f (w=%.1f,%.1f d=%.4f)" prob
        upper wu wv dist
  done

let test_kernel_envelope_threshold () =
  let p = params ~temperature:0.0 ~n:2000 () in
  let k = Hrg.kernel p in
  let rng = Prng.Rng.create ~seed:14 in
  for _ = 1 to 3000 do
    let wu = Prng.Rng.float rng 50.0 +. 0.1 in
    let wv = Prng.Rng.float rng 50.0 +. 0.1 in
    let min_dist = Prng.Rng.float rng 0.49 +. 0.001 in
    let dist = Float.min 0.5 (min_dist *. (1.0 +. Prng.Rng.float rng 2.0)) in
    let prob = k.Girg.Kernel.prob ~wu ~wv ~dist in
    let upper = k.Girg.Kernel.upper ~wu_ub:wu ~wv_ub:wv ~min_dist in
    if prob > upper then Alcotest.fail "threshold envelope violated"
  done

let test_generate_samplers_agree () =
  let p = params ~radius_c:(-1.0) ~n:500 () in
  let m_of sampler seed =
    Sparse_graph.Graph.m (Hrg.generate ~sampler ~rng:(Prng.Rng.create ~seed) p).Hrg.graph
  in
  let totn = ref 0 and totc = ref 0 in
  for s = 1 to 15 do
    totn := !totn + m_of Hrg.Use_naive (s * 31);
    totc := !totc + m_of Hrg.Use_cell (s * 31)
  done;
  (* Threshold model: same points => identical edges, so the totals match
     exactly seed by seed. *)
  Alcotest.(check int) "threshold totals equal" !totn !totc

let test_generate_power_law () =
  let p = params ~radius_c:(-0.5) ~n:20_000 () in
  let h = Hrg.generate ~rng:(Prng.Rng.create ~seed:15) p in
  match Sparse_graph.Gstats.power_law_exponent_mle ~d_min:10 h.Hrg.graph with
  | None -> Alcotest.fail "no MLE"
  | Some b ->
      if abs_float (b -. Hrg.beta p) > 0.4 then
        Alcotest.failf "HRG degree exponent %.2f, expected %.2f" b (Hrg.beta p)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "disk radius" `Quick test_disk_radius;
    Alcotest.test_case "beta mapping" `Quick test_beta_mapping;
    Alcotest.test_case "distance identities" `Quick test_distance_identities;
    QCheck_alcotest.to_alcotest distance_triangle_prop;
    Alcotest.test_case "edge prob threshold" `Quick test_edge_prob_threshold;
    Alcotest.test_case "edge prob temperature" `Quick test_edge_prob_temperature;
    Alcotest.test_case "girg mapping roundtrip" `Quick test_girg_mapping_roundtrip;
    Alcotest.test_case "radial density" `Quick test_radial_density;
    Alcotest.test_case "kernel envelope (T>0)" `Quick test_kernel_envelope;
    Alcotest.test_case "kernel envelope (threshold)" `Quick test_kernel_envelope_threshold;
    Alcotest.test_case "samplers agree (threshold)" `Slow test_generate_samplers_agree;
    Alcotest.test_case "degree power law" `Quick test_generate_power_law;
  ]
