open Hyperbolic

let hrg_graph ?(n = 1500) ?(alpha_h = 0.65) () =
  let p = Hrg.make ~alpha_h ~radius_c:(-1.0) ~temperature:0.0 ~n () in
  Hrg.generate ~rng:(Prng.Rng.create ~seed:61) p

let test_empty_graph_rejected () =
  let g = Sparse_graph.Graph.of_edges ~n:0 [||] in
  Alcotest.check_raises "empty" (Invalid_argument "Embed.infer: empty graph") (fun () ->
      ignore (Embed.infer ~rng:(Prng.Rng.create ~seed:1) ~graph:g ()))

let test_coordinates_well_formed () =
  let h = hrg_graph () in
  let emb = Embed.infer ~rng:(Prng.Rng.create ~seed:2) ~graph:h.Hrg.graph () in
  let big_r = Hrg.disk_radius emb.Embed.params in
  Alcotest.(check int) "one coord per vertex"
    (Sparse_graph.Graph.n h.Hrg.graph)
    (Array.length emb.Embed.coords);
  Array.iter
    (fun c ->
      if c.Hrg.r < 0.0 || c.Hrg.r > big_r +. 1e-6 then Alcotest.fail "radius out of disk";
      if c.Hrg.angle < 0.0 || c.Hrg.angle >= 2.0 *. Float.pi +. 1e-9 then
        Alcotest.fail "angle out of range")
    emb.Embed.coords

let test_radii_monotone_in_degree () =
  let h = hrg_graph () in
  let g = h.Hrg.graph in
  let emb = Embed.infer ~rng:(Prng.Rng.create ~seed:3) ~graph:g () in
  let n = Sparse_graph.Graph.n g in
  for _ = 1 to 500 do
    let u = Random.int n and v = Random.int n in
    let du = Sparse_graph.Graph.degree g u and dv = Sparse_graph.Graph.degree g v in
    if du > dv && emb.Embed.coords.(u).Hrg.r > emb.Embed.coords.(v).Hrg.r +. 1e-9 then
      Alcotest.fail "higher degree must not sit further out"
  done

let test_deterministic () =
  let h = hrg_graph ~n:500 () in
  let run seed = (Embed.infer ~rng:(Prng.Rng.create ~seed) ~graph:h.Hrg.graph ()).Embed.coords in
  Alcotest.(check bool) "same seed same coords" true (run 5 = run 5)

let test_edge_angular_locality () =
  (* Edges must be far more angularly local than random pairs. *)
  let h = hrg_graph () in
  let g = h.Hrg.graph in
  let emb = Embed.infer ~rng:(Prng.Rng.create ~seed:4) ~graph:g () in
  let ang v = emb.Embed.coords.(v).Hrg.angle in
  let ang_dist a b =
    let d = abs_float (a -. b) in
    if d > Float.pi then (2.0 *. Float.pi) -. d else d
  in
  let sum = ref 0.0 and cnt = ref 0 in
  Sparse_graph.Graph.iter_edges g (fun u v ->
      incr cnt;
      sum := !sum +. ang_dist (ang u) (ang v));
  let mean_edge = !sum /. float_of_int !cnt in
  (* Random pairs average pi/2 ~ 1.571. *)
  if mean_edge > 1.45 then Alcotest.failf "edges not angularly local: %.3f" mean_edge

let test_routing_beats_chance () =
  let h = hrg_graph () in
  let g = h.Hrg.graph in
  let emb = Embed.infer ~rng:(Prng.Rng.create ~seed:5) ~graph:g () in
  let embedded = Embed.to_hrg emb ~graph:g in
  let comps = Sparse_graph.Components.compute g in
  let giant = Sparse_graph.Components.giant_members comps in
  let rng = Prng.Rng.create ~seed:6 in
  let delivered = ref 0 in
  let trials = 200 in
  for _ = 1 to trials do
    let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
    let objective = Greedy_routing.Objective.hyperbolic embedded ~target:giant.(j) in
    let r = Greedy_routing.Greedy.route ~graph:g ~objective ~source:giant.(i) () in
    if Greedy_routing.Outcome.delivered r then incr delivered
  done;
  let rate = float_of_int !delivered /. float_of_int trials in
  if rate < 0.35 then Alcotest.failf "embedded routing success %.2f too low" rate

let test_to_hrg_consistency () =
  let h = hrg_graph ~n:400 () in
  let emb = Embed.infer ~rng:(Prng.Rng.create ~seed:7) ~graph:h.Hrg.graph () in
  let packaged = Embed.to_hrg emb ~graph:h.Hrg.graph in
  Array.iteri
    (fun v c ->
      let w = packaged.Hrg.weights.(v) in
      Alcotest.(check (float 1e-6)) "weight matches radius"
        (Hrg.girg_weight emb.Embed.params ~r:c.Hrg.r)
        w;
      Alcotest.(check (float 1e-9)) "position matches angle"
        (c.Hrg.angle /. (2.0 *. Float.pi))
        packaged.Hrg.positions.(v).(0))
    emb.Embed.coords

let test_disconnected_graph () =
  (* Two cliques, no inter-edges: embedding must still terminate and give
     every vertex a coordinate. *)
  let edges = ref [] in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      edges := (i, j) :: (i + 5, j + 5) :: !edges
    done
  done;
  let g = Sparse_graph.Graph.of_edge_list ~n:10 !edges in
  let emb = Embed.infer ~rng:(Prng.Rng.create ~seed:8) ~graph:g () in
  Alcotest.(check int) "all placed" 10 (Array.length emb.Embed.coords)

let test_refinement_tightens_edges () =
  let h = hrg_graph ~n:800 () in
  let g = h.Hrg.graph in
  let mean_edge_angle sweeps =
    let emb = Embed.infer ~rng:(Prng.Rng.create ~seed:9) ~graph:g ~refinement_sweeps:sweeps () in
    let ang v = emb.Embed.coords.(v).Hrg.angle in
    let ang_dist a b =
      let d = abs_float (a -. b) in
      if d > Float.pi then (2.0 *. Float.pi) -. d else d
    in
    let sum = ref 0.0 and cnt = ref 0 in
    Sparse_graph.Graph.iter_edges g (fun u v ->
        incr cnt;
        sum := !sum +. ang_dist (ang u) (ang v));
    !sum /. float_of_int !cnt
  in
  let base = mean_edge_angle 0 and refined = mean_edge_angle 3 in
  if refined > base +. 1e-9 then
    Alcotest.failf "refinement should tighten edges: %.3f -> %.3f" base refined

let suite =
  [
    Alcotest.test_case "empty graph rejected" `Quick test_empty_graph_rejected;
    Alcotest.test_case "coordinates well-formed" `Quick test_coordinates_well_formed;
    Alcotest.test_case "radii monotone in degree" `Quick test_radii_monotone_in_degree;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "edge angular locality" `Quick test_edge_angular_locality;
    Alcotest.test_case "routing beats chance" `Quick test_routing_beats_chance;
    Alcotest.test_case "to_hrg consistency" `Quick test_to_hrg_consistency;
    Alcotest.test_case "disconnected graph" `Quick test_disconnected_graph;
    Alcotest.test_case "refinement tightens edges" `Quick test_refinement_tightens_edges;
  ]
