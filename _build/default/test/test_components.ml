open Sparse_graph

let test_two_components () =
  let g = Graph.of_edge_list ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let c = Components.compute g in
  Alcotest.(check int) "count" 3 (Components.count c);
  Alcotest.(check bool) "0~2" true (Components.same c 0 2);
  Alcotest.(check bool) "3~4" true (Components.same c 3 4);
  Alcotest.(check bool) "0!~3" false (Components.same c 0 3);
  Alcotest.(check int) "giant size" 3 (Components.giant_size c);
  Alcotest.(check (array int)) "giant members" [| 0; 1; 2 |] (Components.giant_members c)

let test_isolated_vertices () =
  let g = Graph.of_edges ~n:4 [||] in
  let c = Components.compute g in
  Alcotest.(check int) "count" 4 (Components.count c);
  Alcotest.(check int) "giant" 1 (Components.giant_size c)

let test_single_component () =
  let g = Graph.of_edge_list ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let c = Components.compute g in
  Alcotest.(check int) "count" 1 (Components.count c);
  Alcotest.(check int) "giant" 5 (Components.giant_size c)

let test_sizes_sum_to_n () =
  let g = Graph.of_edge_list ~n:10 [ (0, 1); (2, 3); (3, 4); (7, 8) ] in
  let c = Components.compute g in
  let total = ref 0 in
  for i = 0 to Components.count c - 1 do
    total := !total + Components.size c i
  done;
  Alcotest.(check int) "partition" 10 !total

let components_match_bfs_prop =
  QCheck2.Test.make ~name:"components agree with BFS reachability" ~count:150
    QCheck2.Gen.(list_size (int_bound 30) (tup2 (int_bound 9) (int_bound 9)))
    (fun edges ->
      let g = Graph.of_edge_list ~n:10 edges in
      let c = Components.compute g in
      let ok = ref true in
      for s = 0 to 9 do
        let dist = Bfs.distances g ~source:s in
        for t = 0 to 9 do
          if Components.same c s t <> (dist.(t) >= 0) then ok := false
        done
      done;
      !ok)

let test_members_consistent_with_id () =
  let g = Graph.of_edge_list ~n:8 [ (0, 1); (2, 3); (4, 5); (5, 6) ] in
  let c = Components.compute g in
  for i = 0 to Components.count c - 1 do
    let members = Components.members c i in
    Alcotest.(check int) "size matches" (Components.size c i) (Array.length members);
    Array.iter (fun v -> Alcotest.(check int) "id matches" i (Components.id c v)) members
  done

let suite =
  [
    Alcotest.test_case "two components" `Quick test_two_components;
    Alcotest.test_case "isolated vertices" `Quick test_isolated_vertices;
    Alcotest.test_case "single component" `Quick test_single_component;
    Alcotest.test_case "sizes partition n" `Quick test_sizes_sum_to_n;
    QCheck_alcotest.to_alcotest components_match_bfs_prop;
    Alcotest.test_case "members consistent" `Quick test_members_consistent_with_id;
  ]
