open Girg

let is_error = function Error _ -> true | Ok _ -> false

let test_default_valid () =
  Alcotest.(check bool) "default valid" false (is_error (Params.validate Params.default))

let test_rejects_bad_beta () =
  Alcotest.(check bool) "beta 2" true
    (is_error (Params.validate { Params.default with beta = 2.0 }));
  Alcotest.(check bool) "beta 3" true
    (is_error (Params.validate { Params.default with beta = 3.0 }));
  Alcotest.(check bool) "beta 3.5" true
    (is_error (Params.validate { Params.default with beta = 3.5 }))

let test_rejects_bad_alpha () =
  Alcotest.(check bool) "alpha 1" true
    (is_error (Params.validate { Params.default with alpha = Params.Finite 1.0 }));
  Alcotest.(check bool) "alpha inf ok" false
    (is_error (Params.validate { Params.default with alpha = Params.Infinite }))

let test_rejects_bad_rest () =
  Alcotest.(check bool) "n 0" true (is_error (Params.validate { Params.default with n = 0 }));
  Alcotest.(check bool) "dim 0" true
    (is_error (Params.validate { Params.default with dim = 0 }));
  Alcotest.(check bool) "w_min 0" true
    (is_error (Params.validate { Params.default with w_min = 0.0 }));
  Alcotest.(check bool) "c 0" true (is_error (Params.validate { Params.default with c = 0.0 }))

let test_make_raises () =
  Alcotest.check_raises "make validates" (Invalid_argument "Girg.Params: beta must lie in (2, 3)")
    (fun () -> ignore (Params.make ~beta:5.0 ~n:10 ()))

let test_to_string_mentions_fields () =
  let s = Params.to_string (Params.make ~n:123 ~beta:2.25 ()) in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "n" true (contains "123");
  Alcotest.(check bool) "beta" true (contains "2.25")

let test_norm_strings () =
  List.iter
    (fun norm ->
      Alcotest.(check bool) "roundtrip" true
        (Params.norm_of_string (Params.norm_to_string norm) = Some norm))
    [ Geometry.Torus.Linf; Geometry.Torus.L2; Geometry.Torus.L1 ];
  Alcotest.(check bool) "unknown" true (Params.norm_of_string "l7" = None)

let test_alpha_to_string () =
  Alcotest.(check string) "inf" "inf" (Params.alpha_to_string Params.Infinite);
  Alcotest.(check string) "finite" "2.5" (Params.alpha_to_string (Params.Finite 2.5))

let test_expected_avg_weight () =
  let p = Params.make ~beta:2.5 ~w_min:2.0 ~n:10 () in
  Alcotest.(check (float 1e-9)) "w_min(b-1)/(b-2)" 6.0 (Instance.expected_avg_weight p)

let test_weights_empirical_mean () =
  let p = Params.make ~beta:2.5 ~w_min:1.0 ~n:10 () in
  let rng = Prng.Rng.create ~seed:55 in
  let ws = Instance.sample_weights ~rng ~params:p ~count:200_000 in
  let mean = Array.fold_left ( +. ) 0.0 ws /. 200_000.0 in
  if abs_float (mean -. Instance.expected_avg_weight p) > 0.2 then
    Alcotest.failf "weight mean %f" mean

let test_vertex_count_modes () =
  let rng = Prng.Rng.create ~seed:1 in
  let fixed = Params.make ~n:500 ~poisson_count:false () in
  Alcotest.(check int) "fixed" 500 (Instance.vertex_count ~rng ~params:fixed);
  let poisson = Params.make ~n:500 () in
  let counts = List.init 50 (fun _ -> Instance.vertex_count ~rng ~params:poisson) in
  let mean = float_of_int (List.fold_left ( + ) 0 counts) /. 50.0 in
  if abs_float (mean -. 500.0) > 25.0 then Alcotest.failf "poisson count mean %f" mean;
  Alcotest.(check bool) "varies" true
    (List.exists (fun c -> c <> List.hd counts) counts)

let suite =
  [
    Alcotest.test_case "default valid" `Quick test_default_valid;
    Alcotest.test_case "rejects bad beta" `Quick test_rejects_bad_beta;
    Alcotest.test_case "rejects bad alpha" `Quick test_rejects_bad_alpha;
    Alcotest.test_case "rejects bad n/dim/w_min/c" `Quick test_rejects_bad_rest;
    Alcotest.test_case "make raises" `Quick test_make_raises;
    Alcotest.test_case "to_string" `Quick test_to_string_mentions_fields;
    Alcotest.test_case "norm strings" `Quick test_norm_strings;
    Alcotest.test_case "alpha_to_string" `Quick test_alpha_to_string;
    Alcotest.test_case "expected avg weight" `Quick test_expected_avg_weight;
    Alcotest.test_case "weights empirical mean" `Quick test_weights_empirical_mean;
    Alcotest.test_case "vertex count modes" `Quick test_vertex_count_modes;
  ]
