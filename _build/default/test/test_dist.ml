open Prng

let rng () = Rng.create ~seed:101

let mean_of f n =
  let r = rng () in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. f r
  done;
  !sum /. float_of_int n

let check_close name ~expected ~tolerance actual =
  if abs_float (actual -. expected) > tolerance then
    Alcotest.failf "%s: %f not within %f of %f" name actual tolerance expected

let test_bernoulli_edge_cases () =
  let r = rng () in
  Alcotest.(check bool) "p=1" true (Dist.bernoulli r ~p:1.0);
  Alcotest.(check bool) "p=0" false (Dist.bernoulli r ~p:0.0);
  Alcotest.(check bool) "p>1" true (Dist.bernoulli r ~p:2.0);
  Alcotest.(check bool) "p<0" false (Dist.bernoulli r ~p:(-1.0))

let test_bernoulli_rate () =
  let r = rng () in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Dist.bernoulli r ~p:0.3 then incr hits
  done;
  check_close "bernoulli rate" ~expected:0.3 ~tolerance:0.01
    (float_of_int !hits /. float_of_int n)

let test_exponential_mean () =
  check_close "exp mean" ~expected:0.5 ~tolerance:0.02
    (mean_of (fun r -> Dist.exponential r ~rate:2.0) 50_000)

let test_exponential_invalid () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Dist.exponential: rate must be positive")
    (fun () -> ignore (Dist.exponential (rng ()) ~rate:0.0))

let test_pareto_support () =
  let r = rng () in
  for _ = 1 to 10_000 do
    if Dist.pareto r ~x_min:2.0 ~exponent:2.5 < 2.0 then
      Alcotest.fail "pareto below x_min"
  done

let test_pareto_tail () =
  (* P(W >= w) = (w / x_min)^(1 - exponent). *)
  let r = rng () in
  let n = 200_000 in
  let above4 = ref 0 in
  for _ = 1 to n do
    if Dist.pareto r ~x_min:1.0 ~exponent:2.5 >= 4.0 then incr above4
  done;
  check_close "pareto tail at 4" ~expected:(4.0 ** -1.5) ~tolerance:0.01
    (float_of_int !above4 /. float_of_int n)

let test_pareto_mean () =
  (* E[W] = x_min (e-1)/(e-2) for exponent e > 2. *)
  check_close "pareto mean" ~expected:3.0 ~tolerance:0.15
    (mean_of (fun r -> Dist.pareto r ~x_min:1.0 ~exponent:2.5) 300_000)

let test_pareto_truncated_support () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let w = Dist.pareto_truncated r ~x_min:1.0 ~x_max:8.0 ~exponent:2.5 in
    if w < 1.0 || w > 8.0 then Alcotest.fail "truncated pareto out of range"
  done

let test_geometric_mean () =
  (* E = (1-p)/p. *)
  check_close "geometric mean" ~expected:(0.8 /. 0.2) ~tolerance:0.1
    (mean_of (fun r -> float_of_int (Dist.geometric r ~p:0.2)) 100_000)

let test_geometric_p1 () =
  let r = rng () in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 -> 0" 0 (Dist.geometric r ~p:1.0)
  done

let test_geometric_invalid () =
  Alcotest.check_raises "p=0" (Invalid_argument "Dist.geometric: p must be positive")
    (fun () -> ignore (Dist.geometric (rng ()) ~p:0.0))

let poisson_moments mean n =
  let r = rng () in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let k = float_of_int (Dist.poisson r ~mean) in
    sum := !sum +. k;
    sumsq := !sumsq +. (k *. k)
  done;
  let m = !sum /. float_of_int n in
  (m, (!sumsq /. float_of_int n) -. (m *. m))

let test_poisson_small () =
  let m, v = poisson_moments 3.0 100_000 in
  check_close "poisson(3) mean" ~expected:3.0 ~tolerance:0.05 m;
  check_close "poisson(3) var" ~expected:3.0 ~tolerance:0.1 v

let test_poisson_large () =
  let m, v = poisson_moments 10_000.0 20_000 in
  check_close "poisson(1e4) mean" ~expected:10_000.0 ~tolerance:5.0 m;
  check_close "poisson(1e4) var/mean" ~expected:1.0 ~tolerance:0.05 (v /. m)

let test_poisson_boundary () =
  (* Means around the Knuth/PTRD switch must agree with theory. *)
  List.iter
    (fun mean ->
      let m, _ = poisson_moments mean 100_000 in
      check_close (Printf.sprintf "poisson(%g) mean" mean) ~expected:mean
        ~tolerance:(0.03 *. mean) m)
    [ 8.0; 9.9; 10.1; 14.0 ]

let test_poisson_zero () =
  Alcotest.(check int) "mean 0" 0 (Dist.poisson (rng ()) ~mean:0.0)

let test_gaussian_moments () =
  let r = rng () in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Dist.gaussian r ~mean:2.0 ~stddev:3.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let m = !sum /. float_of_int n in
  let v = (!sumsq /. float_of_int n) -. (m *. m) in
  check_close "gaussian mean" ~expected:2.0 ~tolerance:0.05 m;
  check_close "gaussian var" ~expected:9.0 ~tolerance:0.2 v

let test_log_uniform_factor () =
  let r = rng () in
  Alcotest.(check (float 0.0)) "spread 0" 1.0 (Dist.log_uniform_factor r ~spread:0.0);
  for _ = 1 to 10_000 do
    let f = Dist.log_uniform_factor r ~spread:1.5 in
    if f < exp (-1.5) -. 1e-9 || f > exp 1.5 +. 1e-9 then
      Alcotest.fail "factor out of range"
  done

let test_shuffle_permutation () =
  let r = rng () in
  let arr = Array.init 50 Fun.id in
  Dist.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_distinct_pair () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let a, b = Dist.sample_distinct_pair r ~n:5 in
    if a = b || a < 0 || a >= 5 || b < 0 || b >= 5 then Alcotest.fail "bad pair"
  done

let test_distinct_pair_uniform () =
  let r = rng () in
  let counts = Hashtbl.create 16 in
  let n = 60_000 in
  for _ = 1 to n do
    let p = Dist.sample_distinct_pair r ~n:4 in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  Alcotest.(check int) "12 ordered pairs seen" 12 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      check_close "pair frequency" ~expected:(1.0 /. 12.0) ~tolerance:0.01
        (float_of_int c /. float_of_int n))
    counts

let suite =
  [
    Alcotest.test_case "bernoulli edge cases" `Quick test_bernoulli_edge_cases;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential invalid" `Quick test_exponential_invalid;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "pareto tail" `Quick test_pareto_tail;
    Alcotest.test_case "pareto mean" `Quick test_pareto_mean;
    Alcotest.test_case "pareto truncated support" `Quick test_pareto_truncated_support;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
    Alcotest.test_case "geometric invalid" `Quick test_geometric_invalid;
    Alcotest.test_case "poisson small mean/var" `Quick test_poisson_small;
    Alcotest.test_case "poisson large mean/var" `Quick test_poisson_large;
    Alcotest.test_case "poisson boundary means" `Quick test_poisson_boundary;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "log uniform factor" `Quick test_log_uniform_factor;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "distinct pair validity" `Quick test_distinct_pair;
    Alcotest.test_case "distinct pair uniformity" `Quick test_distinct_pair_uniform;
  ]
