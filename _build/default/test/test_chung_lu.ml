open Girg

let test_per_pair_probabilities () =
  (* Skip-sampling must realise exactly p = min(1, w_u w_v / W) per pair. *)
  let weights = [| 5.0; 3.0; 2.0; 1.0; 1.0; 0.5; 4.0; 0.25 |] in
  let n = Array.length weights in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let trials = 30_000 in
  let counts = Array.make_matrix n n 0 in
  for s = 1 to trials do
    let rng = Prng.Rng.create ~seed:(70_000 + s) in
    Array.iter
      (fun (u, v) ->
        let u, v = (min u v, max u v) in
        counts.(u).(v) <- counts.(u).(v) + 1)
      (Chung_lu.sample_edges ~rng ~weights)
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = Float.min 1.0 (weights.(u) *. weights.(v) /. total) in
      let observed = float_of_int counts.(u).(v) /. float_of_int trials in
      let tolerance = 0.01 +. (4.5 *. sqrt (p *. (1.0 -. p) /. float_of_int trials)) in
      if abs_float (observed -. p) > tolerance then
        Alcotest.failf "pair (%d,%d): expected %.4f observed %.4f" u v p observed
    done
  done

let test_no_duplicates_or_loops () =
  let rng = Prng.Rng.create ~seed:71 in
  let weights = Array.init 200 (fun _ -> Prng.Dist.pareto rng ~x_min:1.0 ~exponent:2.5) in
  let edges = Chung_lu.sample_edges ~rng:(Prng.Rng.create ~seed:72) ~weights in
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun (u, v) ->
      if u = v then Alcotest.fail "self loop";
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then Alcotest.fail "duplicate edge";
      Hashtbl.add seen key ())
    edges

let test_degree_tracks_weight () =
  let rng = Prng.Rng.create ~seed:73 in
  let cl = Chung_lu.generate_power_law ~rng ~n:30_000 ~beta:2.5 ~w_min:3.0 in
  let points =
    Array.of_seq
      (Seq.filter_map
         (fun v ->
           let d = Sparse_graph.Graph.degree cl.Chung_lu.graph v in
           if d > 0 then Some (cl.Chung_lu.weights.(v), float_of_int d) else None)
         (Seq.init (Sparse_graph.Graph.n cl.Chung_lu.graph) Fun.id))
  in
  let fit = Stats.Regression.log_log points in
  if abs_float (fit.Stats.Regression.slope -. 1.0) > 0.15 then
    Alcotest.failf "CL degree/weight slope %.3f" fit.Stats.Regression.slope

let test_expected_edge_count () =
  (* m concentrates around sum over pairs of min(1, w_u w_v / W). *)
  let weights = Array.make 500 2.0 in
  (* homogeneous: p = 4/1000 per pair, ~ 499 expected edges *)
  let total_m = ref 0 in
  let runs = 30 in
  for s = 1 to runs do
    let cl = Chung_lu.generate ~rng:(Prng.Rng.create ~seed:(80 + s)) ~weights in
    total_m := !total_m + Sparse_graph.Graph.m cl.Chung_lu.graph
  done;
  let mean_m = float_of_int !total_m /. float_of_int runs in
  let expected = 4.0 /. 1000.0 *. float_of_int (500 * 499 / 2) in
  if abs_float (mean_m -. expected) > 0.1 *. expected then
    Alcotest.failf "mean edges %.1f vs expected %.1f" mean_m expected

let test_tiny_inputs () =
  let rng = Prng.Rng.create ~seed:90 in
  Alcotest.(check int) "empty" 0 (Array.length (Chung_lu.sample_edges ~rng ~weights:[||]));
  Alcotest.(check int) "single" 0
    (Array.length (Chung_lu.sample_edges ~rng ~weights:[| 3.0 |]))

let test_heavy_pair_always_connected () =
  (* Two weights whose product exceeds W force p = 1. *)
  let weights = [| 100.0; 100.0; 1.0; 1.0 |] in
  for s = 1 to 50 do
    let cl = Chung_lu.generate ~rng:(Prng.Rng.create ~seed:(100 + s)) ~weights in
    if not (Sparse_graph.Graph.has_edge cl.Chung_lu.graph 0 1) then
      Alcotest.fail "saturated pair missing"
  done

let suite =
  [
    Alcotest.test_case "per-pair probabilities" `Slow test_per_pair_probabilities;
    Alcotest.test_case "no duplicates or loops" `Quick test_no_duplicates_or_loops;
    Alcotest.test_case "degree tracks weight" `Quick test_degree_tracks_weight;
    Alcotest.test_case "expected edge count" `Quick test_expected_edge_count;
    Alcotest.test_case "tiny inputs" `Quick test_tiny_inputs;
    Alcotest.test_case "heavy pair always connected" `Quick test_heavy_pair_always_connected;
  ]
