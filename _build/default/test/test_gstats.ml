open Sparse_graph

let test_degree_histogram () =
  let g = Graph.of_edge_list ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check (list (pair int int)))
    "star histogram"
    [ (1, 3); (3, 1) ]
    (Gstats.degree_histogram g)

let test_power_law_mle_recovers_exponent () =
  (* Build a graph whose degree sequence is sampled from a known power law:
     a star forest where vertex i has round(w_i) leaves. *)
  let rng = Prng.Rng.create ~seed:42 in
  let beta = 2.5 in
  let hubs = 3000 in
  let edges = ref [] in
  let next = ref hubs in
  let total = ref hubs in
  (* First pass to size the graph. *)
  let degrees =
    Array.init hubs (fun _ ->
        let w = Prng.Dist.pareto rng ~x_min:3.0 ~exponent:beta in
        let d = int_of_float (Float.round (Float.min w 10_000.0)) in
        total := !total + d;
        d)
  in
  Array.iteri
    (fun hub d ->
      for _ = 1 to d do
        edges := (hub, !next) :: !edges;
        incr next
      done)
    degrees;
  let g = Graph.of_edge_list ~n:!total !edges in
  match Gstats.power_law_exponent_mle ~d_min:5 g with
  | None -> Alcotest.fail "MLE returned None"
  | Some b ->
      if abs_float (b -. beta) > 0.2 then
        Alcotest.failf "MLE %.2f too far from %.2f" b beta

let test_power_law_mle_too_few () =
  let g = Graph.of_edge_list ~n:4 [ (0, 1) ] in
  Alcotest.(check bool) "None on tiny graph" true
    (Gstats.power_law_exponent_mle g = None)

let test_clustering_triangle () =
  let g = Graph.of_edge_list ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let rng = Prng.Rng.create ~seed:1 in
  Alcotest.(check (float 1e-9)) "triangle clustering" 1.0
    (Gstats.global_clustering_sample g ~rng ~samples:50)

let test_clustering_star () =
  let g = Graph.of_edge_list ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let rng = Prng.Rng.create ~seed:1 in
  Alcotest.(check (float 1e-9)) "star clustering" 0.0
    (Gstats.global_clustering_sample g ~rng ~samples:50)

let test_clustering_no_eligible () =
  let g = Graph.of_edge_list ~n:2 [ (0, 1) ] in
  let rng = Prng.Rng.create ~seed:1 in
  Alcotest.(check bool) "nan" true
    (Float.is_nan (Gstats.global_clustering_sample g ~rng ~samples:10))

let test_avg_distance_path () =
  let n = 5 in
  let g = Graph.of_edge_list ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let rng = Prng.Rng.create ~seed:3 in
  match Gstats.avg_distance_sample g ~rng ~pairs:500 ~within:(Array.init n Fun.id) with
  | None -> Alcotest.fail "no distance"
  | Some d ->
      (* Exact mean pairwise distance of P5 = 2. *)
      if abs_float (d -. 2.0) > 0.15 then Alcotest.failf "avg distance %f" d

let test_avg_distance_empty_pool () =
  let g = Graph.of_edge_list ~n:3 [ (0, 1) ] in
  let rng = Prng.Rng.create ~seed:3 in
  Alcotest.(check bool) "None for singleton pool" true
    (Gstats.avg_distance_sample g ~rng ~pairs:10 ~within:[| 0 |] = None)

let suite =
  [
    Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    Alcotest.test_case "power-law MLE recovers beta" `Quick test_power_law_mle_recovers_exponent;
    Alcotest.test_case "power-law MLE too few" `Quick test_power_law_mle_too_few;
    Alcotest.test_case "clustering triangle" `Quick test_clustering_triangle;
    Alcotest.test_case "clustering star" `Quick test_clustering_star;
    Alcotest.test_case "clustering no eligible" `Quick test_clustering_no_eligible;
    Alcotest.test_case "avg distance on path" `Quick test_avg_distance_path;
    Alcotest.test_case "avg distance empty pool" `Quick test_avg_distance_empty_pool;
  ]
