open Geometry

let test_encode_decode_roundtrip () =
  List.iter
    (fun (dim, level) ->
      let rng = Prng.Rng.create ~seed:(dim * 100 + level) in
      for _ = 1 to 200 do
        let coords = Array.init dim (fun _ -> Prng.Rng.int rng (1 lsl level)) in
        let code = Morton.encode ~dim ~level coords in
        Alcotest.(check (array int)) "roundtrip" coords (Morton.decode ~dim ~level code)
      done)
    [ (1, 5); (2, 7); (3, 6); (4, 4) ]

let test_encode_is_injective_2d () =
  let level = 4 in
  let seen = Hashtbl.create 256 in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let code = Morton.encode ~dim:2 ~level [| x; y |] in
      if Hashtbl.mem seen code then Alcotest.fail "duplicate morton code";
      Hashtbl.add seen code ()
    done
  done;
  Alcotest.(check int) "all cells distinct" 256 (Hashtbl.length seen)

let test_parent_prefix () =
  let rng = Prng.Rng.create ~seed:9 in
  for _ = 1 to 500 do
    let dim = 1 + Prng.Rng.int rng 3 in
    let level = 2 + Prng.Rng.int rng 5 in
    let coords = Array.init dim (fun _ -> Prng.Rng.int rng (1 lsl level)) in
    let code = Morton.encode ~dim ~level coords in
    let parent_coords = Array.map (fun c -> c / 2) coords in
    Alcotest.(check int) "parent = coordinate halving"
      (Morton.encode ~dim ~level:(level - 1) parent_coords)
      (Morton.parent ~dim code)
  done

let test_to_level () =
  let code = Morton.encode ~dim:2 ~level:5 [| 21; 13 |] in
  Alcotest.(check int) "two levels up"
    (Morton.encode ~dim:2 ~level:3 [| 5; 3 |])
    (Morton.to_level ~dim:2 ~from_level:5 ~to_level:3 code)

let test_cell_of_point () =
  Alcotest.(check (array int)) "cell coords" [| 1; 3 |]
    (Morton.cell_coords_of_point ~dim:2 ~level:2 [| 0.3; 0.9 |]);
  Alcotest.(check (array int)) "boundary clamp" [| 3; 3 |]
    (Morton.cell_coords_of_point ~dim:2 ~level:2 [| 0.999999999; 1.0 |])

let test_code_consistent_with_grid_membership () =
  let rng = Prng.Rng.create ~seed:10 in
  for _ = 1 to 1000 do
    let p = Torus.random_point rng ~dim:2 in
    let level = 3 in
    let code = Morton.code_of_point ~dim:2 ~level p in
    let coords = Morton.decode ~dim:2 ~level code in
    let side = Morton.cell_side ~level in
    Array.iteri
      (fun i c ->
        let lo = float_of_int c *. side in
        if p.(i) < lo -. 1e-12 || p.(i) >= lo +. side +. 1e-12 then
          Alcotest.fail "point outside its cell")
      coords
  done

let test_neighbors_count () =
  (* Interior cell in a 8x8 grid: 9 neighbours incl. self. *)
  let collect dim level coords =
    let acc = ref [] in
    Morton.iter_neighbors ~dim ~level (Morton.encode ~dim ~level coords) (fun c ->
        acc := c :: !acc);
    !acc
  in
  Alcotest.(check int) "2d level 3" 9 (List.length (collect 2 3 [| 4; 4 |]));
  Alcotest.(check int) "1d level 3" 3 (List.length (collect 1 3 [| 4 |]));
  Alcotest.(check int) "3d level 2" 27 (List.length (collect 3 2 [| 1; 1; 1 |]));
  (* Level 1 (two cells per side): only 2^dim distinct cells exist. *)
  Alcotest.(check int) "2d level 1 dedup" 4 (List.length (collect 2 1 [| 0; 1 |]));
  (* Level 0: single cell. *)
  Alcotest.(check int) "level 0" 1 (List.length (collect 2 0 [| 0; 0 |]))

let test_neighbors_distinct_and_adjacent () =
  let dim = 2 and level = 3 in
  let cps = 1 lsl level in
  let code = Morton.encode ~dim ~level [| 0; 7 |] in
  let base = Morton.decode ~dim ~level code in
  let seen = Hashtbl.create 16 in
  Morton.iter_neighbors ~dim ~level code (fun c ->
      if Hashtbl.mem seen c then Alcotest.fail "duplicate neighbor";
      Hashtbl.add seen c ();
      let coords = Morton.decode ~dim ~level c in
      Array.iteri
        (fun i x ->
          let d = abs (x - base.(i)) in
          let d = min d (cps - d) in
          if d > 1 then Alcotest.fail "non-adjacent neighbor")
        coords);
  Alcotest.(check int) "corner cell wraps to 9" 9 (Hashtbl.length seen)

let test_cell_min_dist () =
  let dim = 1 and level = 3 in
  (* side = 1/8 *)
  let c i = Morton.encode ~dim ~level [| i |] in
  let d a b = Morton.cell_min_dist ~dim ~level (c a) (c b) in
  Alcotest.(check (float 1e-12)) "same" 0.0 (d 3 3);
  Alcotest.(check (float 1e-12)) "adjacent" 0.0 (d 3 4);
  Alcotest.(check (float 1e-12)) "gap 1" 0.125 (d 3 5);
  Alcotest.(check (float 1e-12)) "wrap adjacent" 0.0 (d 0 7);
  Alcotest.(check (float 1e-12)) "wrap gap" 0.125 (d 0 6)

let cell_min_dist_is_lower_bound_prop =
  QCheck2.Test.make ~name:"cell_min_dist lower-bounds point distances" ~count:300
    QCheck2.Gen.(
      tup2
        (array_size (return 2) (float_bound_exclusive 1.0))
        (array_size (return 2) (float_bound_exclusive 1.0)))
    (fun (x, y) ->
      let level = 3 in
      let a = Morton.code_of_point ~dim:2 ~level x in
      let b = Morton.code_of_point ~dim:2 ~level y in
      Morton.cell_min_dist ~dim:2 ~level a b <= Torus.dist_linf x y +. 1e-12)

let test_max_level () =
  Alcotest.(check int) "d=1" 62 (Morton.max_level ~dim:1);
  Alcotest.(check int) "d=2" 31 (Morton.max_level ~dim:2);
  Alcotest.(check int) "d=3" 20 (Morton.max_level ~dim:3)

let suite =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "encode injective" `Quick test_encode_is_injective_2d;
    Alcotest.test_case "parent = halved coords" `Quick test_parent_prefix;
    Alcotest.test_case "to_level" `Quick test_to_level;
    Alcotest.test_case "cell_of_point" `Quick test_cell_of_point;
    Alcotest.test_case "point in its cell" `Quick test_code_consistent_with_grid_membership;
    Alcotest.test_case "neighbor counts" `Quick test_neighbors_count;
    Alcotest.test_case "neighbors distinct+adjacent" `Quick test_neighbors_distinct_and_adjacent;
    Alcotest.test_case "cell_min_dist cases" `Quick test_cell_min_dist;
    QCheck_alcotest.to_alcotest cell_min_dist_is_lower_bound_prop;
    Alcotest.test_case "max_level" `Quick test_max_level;
  ]
