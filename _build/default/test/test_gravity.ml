open Greedy_routing

let test_plain_greedy_path () =
  (* When pure gravity suffices, GP behaves exactly like greedy. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let obj = Objective.of_fun ~name:"x" ~target:3 (fun v -> [| 0.1; 0.2; 0.3; 0.0 |].(v)) in
  let r = Gravity_pressure.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "delivered" true (Outcome.delivered r);
  Alcotest.(check (list int)) "walk" [ 0; 1; 2; 3 ] r.Outcome.walk

let test_escapes_local_optimum () =
  (* Source is a local optimum; pressure mode must carry the packet over. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let obj = Objective.of_fun ~name:"x" ~target:3 (fun v -> [| 0.9; 0.1; 0.5; 0.0 |].(v)) in
  let r = Gravity_pressure.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "delivered" true (Outcome.delivered r)

let test_delivers_on_sparse_girg () =
  let inst = Test_greedy.girg_instance ~seed:900 ~n:3000 ~c:0.08 () in
  let comps = Sparse_graph.Components.compute inst.graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let rng = Prng.Rng.create ~seed:901 in
  for _ = 1 to 40 do
    let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
    let s = giant.(i) and t = giant.(j) in
    let objective = Objective.girg_phi inst ~target:t in
    let r = Gravity_pressure.route ~graph:inst.graph ~objective ~source:s () in
    if not (Outcome.delivered r) then Alcotest.fail "GP failed in the giant"
  done

let test_cutoff_when_unreachable () =
  (* GP has no termination detection: unreachable targets hit the cap. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:4 [ (0, 1); (2, 3) ] in
  let obj = Objective.of_fun ~name:"x" ~target:3 (fun v -> float_of_int v) in
  let r = Gravity_pressure.route ~graph:g ~objective:obj ~source:0 ~max_steps:500 () in
  Alcotest.(check bool) "cutoff" true (r.Outcome.status = Outcome.Cutoff);
  Alcotest.(check int) "spent budget" 500 r.Outcome.steps

let test_dead_end_on_isolated () =
  let g = Sparse_graph.Graph.of_edge_list ~n:2 [] in
  let obj = Objective.of_fun ~name:"x" ~target:1 (fun _ -> 0.5) in
  let r = Gravity_pressure.route ~graph:g ~objective:obj ~source:0 () in
  Alcotest.(check bool) "dead end" true (r.Outcome.status = Outcome.Dead_end)

let test_walk_validity () =
  let inst = Test_greedy.girg_instance ~seed:902 ~n:1000 ~c:0.1 () in
  let g = inst.graph in
  let rng = Prng.Rng.create ~seed:903 in
  for _ = 1 to 20 do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n g) in
    let objective = Objective.girg_phi inst ~target:t in
    let r = Gravity_pressure.route ~graph:g ~objective ~source:s ~max_steps:5000 () in
    Alcotest.(check int) "steps = |walk|-1" (List.length r.Outcome.walk - 1) r.Outcome.steps;
    let rec check_edges = function
      | a :: (b :: _ as rest) ->
          if not (Sparse_graph.Graph.has_edge g a b) then Alcotest.fail "non-edge hop";
          check_edges rest
      | [ _ ] | [] -> ()
    in
    check_edges r.Outcome.walk
  done

let test_pressure_spreads_visits () =
  (* In a cycle with the target's objective hidden behind a local optimum,
     pressure mode must not ping-pong between two vertices forever. *)
  let g = Sparse_graph.Graph.of_edge_list ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] in
  let obj =
    Objective.of_fun ~name:"x" ~target:3 (fun v -> [| 0.9; 0.1; 0.2; 0.0; 0.05; 0.3 |].(v))
  in
  let r = Gravity_pressure.route ~graph:g ~objective:obj ~source:0 ~max_steps:100 () in
  Alcotest.(check bool) "delivered" true (Outcome.delivered r)

let suite =
  [
    Alcotest.test_case "plain greedy path" `Quick test_plain_greedy_path;
    Alcotest.test_case "escapes local optimum" `Quick test_escapes_local_optimum;
    Alcotest.test_case "delivers on sparse girg" `Quick test_delivers_on_sparse_girg;
    Alcotest.test_case "cutoff when unreachable" `Quick test_cutoff_when_unreachable;
    Alcotest.test_case "dead end on isolated" `Quick test_dead_end_on_isolated;
    Alcotest.test_case "walk validity" `Quick test_walk_validity;
    Alcotest.test_case "pressure spreads visits" `Quick test_pressure_spreads_visits;
  ]
