open Sparse_graph

let path_graph n = Graph.of_edge_list ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let random_graph ~seed ~n ~m =
  let rng = Prng.Rng.create ~seed in
  let edges =
    Array.init m (fun _ -> (Prng.Rng.int rng n, Prng.Rng.int rng n))
  in
  Graph.of_edges ~n edges

let test_distances_path () =
  let g = path_graph 6 in
  Alcotest.(check (array int)) "from 0" [| 0; 1; 2; 3; 4; 5 |] (Bfs.distances g ~source:0);
  Alcotest.(check (array int)) "from 3" [| 3; 2; 1; 0; 1; 2 |] (Bfs.distances g ~source:3)

let test_distances_disconnected () =
  let g = Graph.of_edge_list ~n:4 [ (0, 1) ] in
  Alcotest.(check (array int)) "unreachable -1" [| 0; 1; -1; -1 |] (Bfs.distances g ~source:0)

let test_single_pair () =
  let g = path_graph 10 in
  Alcotest.(check (option int)) "0-9" (Some 9) (Bfs.distance g ~source:0 ~target:9);
  Alcotest.(check (option int)) "same" (Some 0) (Bfs.distance g ~source:4 ~target:4);
  Alcotest.(check (option int)) "adjacent" (Some 1) (Bfs.distance g ~source:4 ~target:5)

let test_single_pair_disconnected () =
  let g = Graph.of_edge_list ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check (option int)) "disconnected" None (Bfs.distance g ~source:0 ~target:3)

let bidirectional_matches_full_prop =
  QCheck2.Test.make ~name:"bidirectional BFS = full BFS" ~count:150
    QCheck2.Gen.(
      tup3 (list_size (int_bound 40) (tup2 (int_bound 11) (int_bound 11)))
        (int_bound 11) (int_bound 11))
    (fun (edges, s, t) ->
      let g = Graph.of_edge_list ~n:12 edges in
      let full = (Bfs.distances g ~source:s).(t) in
      let expected = if full < 0 then None else Some full in
      Bfs.distance g ~source:s ~target:t = expected)

let shortest_path_valid_prop =
  QCheck2.Test.make ~name:"shortest_path is a valid shortest path" ~count:150
    QCheck2.Gen.(
      tup3 (list_size (int_bound 40) (tup2 (int_bound 11) (int_bound 11)))
        (int_bound 11) (int_bound 11))
    (fun (edges, s, t) ->
      let g = Graph.of_edge_list ~n:12 edges in
      match Bfs.shortest_path g ~source:s ~target:t with
      | None -> (Bfs.distances g ~source:s).(t) < 0
      | Some path ->
          let rec consecutive_edges = function
            | a :: (b :: _ as rest) -> Graph.has_edge g a b && consecutive_edges rest
            | [ _ ] | [] -> true
          in
          let len = List.length path - 1 in
          List.hd path = s
          && List.nth path len = t
          && consecutive_edges path
          && len = (Bfs.distances g ~source:s).(t))

let test_eccentricity () =
  let g = path_graph 7 in
  Alcotest.(check int) "end" 6 (Bfs.eccentricity_lower_bound g ~source:0);
  Alcotest.(check int) "middle" 3 (Bfs.eccentricity_lower_bound g ~source:3)

let test_bidirectional_on_random_larger () =
  let g = random_graph ~seed:5 ~n:300 ~m:500 in
  let rng = Prng.Rng.create ~seed:6 in
  for _ = 1 to 100 do
    let s = Prng.Rng.int rng 300 and t = Prng.Rng.int rng 300 in
    let full = (Bfs.distances g ~source:s).(t) in
    let expected = if full < 0 then None else Some full in
    Alcotest.(check (option int)) "pair distance" expected (Bfs.distance g ~source:s ~target:t)
  done

let suite =
  [
    Alcotest.test_case "distances on a path" `Quick test_distances_path;
    Alcotest.test_case "distances disconnected" `Quick test_distances_disconnected;
    Alcotest.test_case "single pair" `Quick test_single_pair;
    Alcotest.test_case "single pair disconnected" `Quick test_single_pair_disconnected;
    QCheck_alcotest.to_alcotest bidirectional_matches_full_prop;
    QCheck_alcotest.to_alcotest shortest_path_valid_prop;
    Alcotest.test_case "eccentricity lower bound" `Quick test_eccentricity;
    Alcotest.test_case "bidirectional on random graph" `Quick test_bidirectional_on_random_larger;
  ]
