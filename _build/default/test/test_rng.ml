open Prng

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_replays () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_split_diverges () =
  let a = Rng.create ~seed:3 in
  let child = Rng.split a in
  let clash = ref 0 in
  for _ = 1 to 100 do
    if Rng.bits64 a = Rng.bits64 child then incr clash
  done;
  Alcotest.(check int) "split streams do not collide" 0 !clash

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_int_bound_one () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 always 0" 0 (Rng.int rng 1)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let test_unit_float_range () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let x = Rng.unit_float rng in
    if not (x >= 0.0 && x < 1.0) then Alcotest.fail "unit_float out of [0,1)"
  done

let test_unit_float_pos_range () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let x = Rng.unit_float_pos rng in
    if not (x > 0.0 && x <= 1.0) then Alcotest.fail "unit_float_pos out of (0,1]"
  done

let test_unit_float_mean () =
  let rng = Rng.create ~seed:17 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.unit_float rng
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.01 then Alcotest.failf "mean %f too far from 0.5" mean

let test_bool_balance () =
  let rng = Rng.create ~seed:19 in
  let n = 100_000 in
  let heads = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int n in
  if abs_float (frac -. 0.5) > 0.01 then Alcotest.failf "coin bias %f" frac

let test_float_scales () =
  let rng = Rng.create ~seed:23 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 42.0 in
    if not (x >= 0.0 && x < 42.0) then Alcotest.fail "float out of [0,42)"
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bound 1" `Quick test_int_bound_one;
    Alcotest.test_case "int rejects bound<=0" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
    Alcotest.test_case "unit_float_pos range" `Quick test_unit_float_pos_range;
    Alcotest.test_case "unit_float mean" `Quick test_unit_float_mean;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "float scale" `Quick test_float_scales;
  ]
