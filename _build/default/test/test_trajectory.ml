open Greedy_routing

let make_instance () =
  let params = Girg.Params.make ~dim:1 ~beta:2.5 ~n:10 ~poisson_count:false () in
  let weights = [| 1.0; 8.0; 2.0; 1.5 |] in
  let positions = [| [| 0.0 |]; [| 0.2 |]; [| 0.45 |]; [| 0.5 |] |] in
  let rng = Prng.Rng.create ~seed:1 in
  Girg.Instance.generate_with ~rng ~params ~weights ~positions ()

let test_of_walk_annotates () =
  let inst = make_instance () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "length" 4 (List.length points);
  let p0 = List.nth points 0 in
  Alcotest.(check int) "hop" 0 p0.Trajectory.hop;
  Alcotest.(check int) "vertex" 0 p0.Trajectory.vertex;
  Alcotest.(check (float 1e-9)) "weight" 1.0 p0.Trajectory.weight;
  Alcotest.(check (float 1e-9)) "dist" 0.5 p0.Trajectory.dist_to_target;
  let p3 = List.nth points 3 in
  Alcotest.(check (float 1e-9)) "target dist 0" 0.0 p3.Trajectory.dist_to_target;
  Alcotest.(check bool) "target objective inf" true (p3.Trajectory.objective = infinity)

let test_peak_weight_hop () =
  let inst = make_instance () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "peak at hop 1" 1 (Trajectory.peak_weight_hop points)

let test_exponents_filter_small_weights () =
  let inst = make_instance () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  (* Only vertex 1 has weight >= 4 in the first phase, so no ratio exists. *)
  Alcotest.(check (list (float 0.0))) "no exponents" []
    (Trajectory.weight_doubling_exponents points)

let test_exponents_on_climbing_path () =
  let params = Girg.Params.make ~dim:1 ~beta:2.5 ~n:10 ~poisson_count:false () in
  let weights = [| 4.0; 16.0; 256.0; 1.0 |] in
  let positions = [| [| 0.0 |]; [| 0.1 |]; [| 0.2 |]; [| 0.5 |] |] in
  let rng = Prng.Rng.create ~seed:1 in
  let inst = Girg.Instance.generate_with ~rng ~params ~weights ~positions () in
  let points = Trajectory.of_walk ~inst ~target:3 ~walk:[ 0; 1; 2; 3 ] in
  let exps = Trajectory.weight_doubling_exponents points in
  Alcotest.(check int) "two ratios" 2 (List.length exps);
  Alcotest.(check (float 1e-9)) "log16/log4" 2.0 (List.nth exps 0);
  Alcotest.(check (float 1e-9)) "log256/log16" 2.0 (List.nth exps 1)

let test_empty_walk () =
  let inst = make_instance () in
  Alcotest.(check int) "empty" 0 (List.length (Trajectory.of_walk ~inst ~target:3 ~walk:[]))

let suite =
  [
    Alcotest.test_case "of_walk annotates" `Quick test_of_walk_annotates;
    Alcotest.test_case "peak weight hop" `Quick test_peak_weight_hop;
    Alcotest.test_case "exponent noise filter" `Quick test_exponents_filter_small_weights;
    Alcotest.test_case "exponents on climbing path" `Quick test_exponents_on_climbing_path;
    Alcotest.test_case "empty walk" `Quick test_empty_walk;
  ]
