open Kleinberg

let test_make_validation () =
  Alcotest.check_raises "side 1" (Invalid_argument "Lattice.make: side must be >= 2")
    (fun () -> ignore (Lattice.make ~side:1 ()));
  Alcotest.check_raises "negative q" (Invalid_argument "Lattice.make: long_range must be >= 0")
    (fun () -> ignore (Lattice.make ~long_range:(-1) ~side:4 ()))

let test_coords_roundtrip () =
  let p = Lattice.make ~side:5 () in
  for v = 0 to 24 do
    Alcotest.(check int) "roundtrip" v (Lattice.vertex p (Lattice.coords p v))
  done

let test_vertex_wraps () =
  let p = Lattice.make ~side:4 () in
  Alcotest.(check int) "wrap i" (Lattice.vertex p (0, 2)) (Lattice.vertex p (4, 2));
  Alcotest.(check int) "wrap negative" (Lattice.vertex p (3, 3)) (Lattice.vertex p (-1, -1))

let test_manhattan () =
  let p = Lattice.make ~side:8 () in
  let v a b = Lattice.vertex p (a, b) in
  Alcotest.(check int) "plain" 3 (Lattice.manhattan p (v 0 0) (v 1 2));
  Alcotest.(check int) "wrap" 2 (Lattice.manhattan p (v 0 0) (v 7 7));
  Alcotest.(check int) "self" 0 (Lattice.manhattan p (v 3 3) (v 3 3))

let test_grid_only_graph () =
  let p = Lattice.make ~side:4 ~long_range:0 () in
  let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:1) p in
  Alcotest.(check int) "n" 16 (Lattice.n t);
  (* Toroidal grid: every vertex has exactly degree 4. *)
  Alcotest.(check int) "m" 32 (Sparse_graph.Graph.m t.Lattice.graph);
  for v = 0 to 15 do
    Alcotest.(check int) "degree" 4 (Sparse_graph.Graph.degree t.Lattice.graph v)
  done

let test_long_range_degree () =
  let p = Lattice.make ~side:10 ~long_range:2 () in
  let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:2) p in
  (* Each vertex has 4 grid edges plus up to 2 long-range (some may collide
     with existing edges and be deduped). *)
  let total_deg = 2 * Sparse_graph.Graph.m t.Lattice.graph in
  Alcotest.(check bool) "degree range" true
    (total_deg > 4 * 100 && total_deg <= 8 * 100)

let test_greedy_always_succeeds () =
  let p = Lattice.make ~side:12 () in
  let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:3) p in
  let rng = Prng.Rng.create ~seed:4 in
  for _ = 1 to 300 do
    let s, tgt = Prng.Dist.sample_distinct_pair rng ~n:(Lattice.n t) in
    let steps = Lattice.greedy_route t ~source:s ~target:tgt in
    if steps <= 0 then Alcotest.fail "must take at least one step";
    (* Greedy is at most the Manhattan distance hops... no: long-range can
       only shorten; the grid alone needs exactly manhattan hops, and every
       greedy hop strictly decreases distance, so steps <= manhattan. *)
    if steps > Lattice.manhattan p s tgt then Alcotest.fail "greedy slower than grid walk"
  done

let test_greedy_adjacent () =
  let p = Lattice.make ~side:6 ~long_range:0 () in
  let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:5) p in
  let a = Lattice.vertex p (2, 2) and b = Lattice.vertex p (2, 3) in
  Alcotest.(check int) "one hop" 1 (Lattice.greedy_route t ~source:a ~target:b)

let test_greedy_same_vertex () =
  let p = Lattice.make ~side:6 () in
  let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:6) p in
  Alcotest.(check int) "zero hops" 0 (Lattice.greedy_route t ~source:3 ~target:3)

let test_long_range_distance_bias () =
  (* With a large exponent, long-range contacts should be short. *)
  let count_avg_len exponent =
    let p = Lattice.make ~side:30 ~long_range:1 ~exponent () in
    let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:7) p in
    let total = ref 0 and edges = ref 0 in
    Sparse_graph.Graph.iter_edges t.Lattice.graph (fun u v ->
        let d = Lattice.manhattan p u v in
        if d > 1 then begin
          total := !total + d;
          incr edges
        end);
    float_of_int !total /. float_of_int (max 1 !edges)
  in
  let heavy_tail = count_avg_len 0.5 and short = count_avg_len 4.0 in
  if not (heavy_tail > 2.0 *. short) then
    Alcotest.failf "expected decay bias: r=0.5 avg %.1f vs r=4 avg %.1f" heavy_tail short

let test_scaling_log_squared () =
  (* Steps at r=2 grow roughly like ln^2 n: the ratio between side 16 and
     side 64 should be far below the linear-distance ratio 4. *)
  let mean_steps side =
    let p = Lattice.make ~side () in
    let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:8) p in
    let rng = Prng.Rng.create ~seed:9 in
    let total = ref 0 in
    let trials = 300 in
    for _ = 1 to trials do
      let s, tgt = Prng.Dist.sample_distinct_pair rng ~n:(Lattice.n t) in
      total := !total + Lattice.greedy_route t ~source:s ~target:tgt
    done;
    float_of_int !total /. float_of_int trials
  in
  let small = mean_steps 16 and large = mean_steps 64 in
  if large /. small > 3.0 then
    Alcotest.failf "scaling ratio %.2f looks linear, not polylog" (large /. small)

let test_matches_core_greedy () =
  (* Lattice greedy is the core greedy protocol with the negated Manhattan
     distance as objective (same tie-breaking: first best in ascending
     neighbour order). *)
  let p = Lattice.make ~side:10 () in
  let t = Lattice.generate ~rng:(Prng.Rng.create ~seed:21) p in
  let rng = Prng.Rng.create ~seed:22 in
  for _ = 1 to 150 do
    let s, tgt = Prng.Dist.sample_distinct_pair rng ~n:(Lattice.n t) in
    let objective =
      Greedy_routing.Objective.of_fun ~name:"manhattan" ~target:tgt (fun v ->
          -.float_of_int (Lattice.manhattan p v tgt))
    in
    let core =
      Greedy_routing.Greedy.route ~graph:t.Lattice.graph ~objective ~source:s ()
    in
    Alcotest.(check bool) "core delivers" true (Greedy_routing.Outcome.delivered core);
    Alcotest.(check int) "same steps"
      (Lattice.greedy_route t ~source:s ~target:tgt)
      core.Greedy_routing.Outcome.steps
  done

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
    Alcotest.test_case "vertex wraps" `Quick test_vertex_wraps;
    Alcotest.test_case "manhattan" `Quick test_manhattan;
    Alcotest.test_case "grid-only graph" `Quick test_grid_only_graph;
    Alcotest.test_case "long-range degree" `Quick test_long_range_degree;
    Alcotest.test_case "greedy always succeeds" `Quick test_greedy_always_succeeds;
    Alcotest.test_case "greedy adjacent" `Quick test_greedy_adjacent;
    Alcotest.test_case "greedy same vertex" `Quick test_greedy_same_vertex;
    Alcotest.test_case "long-range distance bias" `Quick test_long_range_distance_bias;
    Alcotest.test_case "polylog scaling at r=2" `Slow test_scaling_log_squared;
    Alcotest.test_case "lattice greedy = core greedy" `Quick test_matches_core_greedy;
  ]
