open Greedy_routing

let make_instance () =
  (* 1-d instance with hand-placed vertices for exact phi computations. *)
  let params = Girg.Params.make ~dim:1 ~beta:2.5 ~w_min:1.0 ~n:10 ~poisson_count:false () in
  let weights = [| 1.0; 2.0; 4.0; 1.0 |] in
  let positions = [| [| 0.0 |]; [| 0.1 |]; [| 0.3 |]; [| 0.5 |] |] in
  let rng = Prng.Rng.create ~seed:1 in
  Girg.Instance.generate_with ~rng ~params ~weights ~positions ()

let test_girg_phi_values () =
  let inst = make_instance () in
  let obj = Objective.girg_phi inst ~target:3 in
  (* phi(v) = w_v / (w_min * n * dist(v, t)^d); target at 0.5. *)
  Alcotest.(check (float 1e-9)) "phi(0)" (1.0 /. (10.0 *. 0.5)) (obj.Objective.score 0);
  Alcotest.(check (float 1e-9)) "phi(1)" (2.0 /. (10.0 *. 0.4)) (obj.Objective.score 1);
  Alcotest.(check (float 1e-9)) "phi(2)" (4.0 /. (10.0 *. 0.2)) (obj.Objective.score 2);
  Alcotest.(check bool) "phi(t) = inf" true (obj.Objective.score 3 = infinity)

let test_phi_maximised_at_target () =
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~n:500 () in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:2) params in
  let n = Sparse_graph.Graph.n inst.graph in
  let obj = Objective.girg_phi inst ~target:(n / 2) in
  for v = 0 to n - 1 do
    if v <> n / 2 && obj.Objective.score v >= obj.Objective.score (n / 2) then
      Alcotest.fail "target not the global maximum"
  done

let test_geometric_objective () =
  let positions = [| [| 0.0; 0.0 |]; [| 0.4; 0.4 |]; [| 0.5; 0.5 |] |] in
  let obj = Objective.geometric ~positions ~target:2 in
  Alcotest.(check bool) "closer scores higher" true
    (obj.Objective.score 1 > obj.Objective.score 0);
  Alcotest.(check bool) "target inf" true (obj.Objective.score 2 = infinity)

let test_hyperbolic_objective_ordering () =
  let p = Hyperbolic.Hrg.make ~n:200 () in
  let h = Hyperbolic.Hrg.generate ~rng:(Prng.Rng.create ~seed:3) p in
  let target = 17 in
  let obj = Objective.hyperbolic h ~target in
  (* phi_H ordering must match (inverse) hyperbolic distance ordering. *)
  let rng = Prng.Rng.create ~seed:4 in
  for _ = 1 to 500 do
    let u = Prng.Rng.int rng 200 and v = Prng.Rng.int rng 200 in
    if u <> target && v <> target then begin
      let du = Hyperbolic.Hrg.distance h.coords.(u) h.coords.(target) in
      let dv = Hyperbolic.Hrg.distance h.coords.(v) h.coords.(target) in
      let su = obj.Objective.score u and sv = obj.Objective.score v in
      if du < dv -. 1e-9 && su < sv then
        Alcotest.fail "phi_H ordering disagrees with hyperbolic distance"
    end
  done;
  Alcotest.(check bool) "target inf" true (obj.Objective.score target = infinity)

let test_of_fun_forces_target () =
  let obj = Objective.of_fun ~name:"const" ~target:5 (fun _ -> 1.0) in
  Alcotest.(check bool) "target inf" true (obj.Objective.score 5 = infinity);
  Alcotest.(check (float 0.0)) "others" 1.0 (obj.Objective.score 0)

let test_noisy_factor_bounds () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let noisy = Objective.noisy_factor ~seed:7 ~spread:1.0 base in
  for v = 0 to 2 do
    let ratio = noisy.Objective.score v /. base.Objective.score v in
    if ratio < exp (-1.0) -. 1e-9 || ratio > exp 1.0 +. 1e-9 then
      Alcotest.fail "factor out of bounds"
  done;
  Alcotest.(check bool) "target still inf" true (noisy.Objective.score 3 = infinity)

let test_noisy_deterministic () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let a = Objective.noisy_factor ~seed:7 ~spread:1.0 base in
  let b = Objective.noisy_factor ~seed:7 ~spread:1.0 base in
  for v = 0 to 2 do
    Alcotest.(check (float 0.0)) "same noise" (a.Objective.score v) (b.Objective.score v)
  done;
  let c = Objective.noisy_factor ~seed:8 ~spread:1.0 base in
  Alcotest.(check bool) "different seed differs" true
    (List.exists (fun v -> a.Objective.score v <> c.Objective.score v) [ 0; 1; 2 ])

let test_noisy_zero_spread_identity () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let noisy = Objective.noisy_factor ~seed:7 ~spread:0.0 base in
  for v = 0 to 2 do
    Alcotest.(check (float 1e-12)) "identity" (base.Objective.score v) (noisy.Objective.score v)
  done

let test_noisy_polynomial_bounds () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  let noisy = Objective.noisy_polynomial ~seed:9 ~delta:0.5 ~weights:inst.weights base in
  for v = 0 to 2 do
    let s = base.Objective.score v in
    let m = Float.max 1.0 (Float.min inst.weights.(v) (1.0 /. s)) in
    let ratio = noisy.Objective.score v /. s in
    if ratio < (m ** -0.5) -. 1e-9 || ratio > (m ** 0.5) +. 1e-9 then
      Alcotest.fail "polynomial noise out of Theorem 3.5 bounds"
  done

let test_noisy_rejects_negative () =
  let inst = make_instance () in
  let base = Objective.girg_phi inst ~target:3 in
  Alcotest.check_raises "negative spread"
    (Invalid_argument "Objective.noisy_factor: negative spread") (fun () ->
      ignore (Objective.noisy_factor ~seed:1 ~spread:(-1.0) base))

let suite =
  [
    Alcotest.test_case "girg phi values" `Quick test_girg_phi_values;
    Alcotest.test_case "phi maximised at target" `Quick test_phi_maximised_at_target;
    Alcotest.test_case "geometric objective" `Quick test_geometric_objective;
    Alcotest.test_case "hyperbolic objective ordering" `Quick test_hyperbolic_objective_ordering;
    Alcotest.test_case "of_fun forces target" `Quick test_of_fun_forces_target;
    Alcotest.test_case "noisy factor bounds" `Quick test_noisy_factor_bounds;
    Alcotest.test_case "noisy deterministic" `Quick test_noisy_deterministic;
    Alcotest.test_case "zero spread identity" `Quick test_noisy_zero_spread_identity;
    Alcotest.test_case "polynomial noise bounds" `Quick test_noisy_polynomial_bounds;
    Alcotest.test_case "rejects negative spread" `Quick test_noisy_rejects_negative;
  ]
