open Greedy_routing

let instance () = Test_greedy.girg_instance ~seed:777 ~n:4000 ~c:0.25 ()

let test_zero_failures_matches_greedy () =
  let inst = instance () in
  let graph = inst.graph in
  let rng_pairs = Prng.Rng.create ~seed:1 in
  for _ = 1 to 50 do
    let s, t = Prng.Dist.sample_distinct_pair rng_pairs ~n:(Sparse_graph.Graph.n graph) in
    let objective = Objective.girg_phi inst ~target:t in
    let plain = Greedy.route ~graph ~objective ~source:s () in
    let faulty =
      Faulty.route ~graph ~objective ~source:s ~rng:(Prng.Rng.create ~seed:2)
        ~failure_prob:0.0 ()
    in
    Alcotest.(check (list int)) "identical walks" plain.Outcome.walk faulty.Outcome.walk;
    Alcotest.(check bool) "same status" true (plain.Outcome.status = faulty.Outcome.status)
  done

let test_invalid_probability () =
  let inst = instance () in
  let objective = Objective.girg_phi inst ~target:0 in
  Alcotest.check_raises "p = 1" (Invalid_argument "Faulty.route: failure_prob must lie in [0, 1)")
    (fun () ->
      ignore
        (Faulty.route ~graph:inst.graph ~objective ~source:1 ~rng:(Prng.Rng.create ~seed:1)
           ~failure_prob:1.0 ()))

let test_monotone_objective_still_holds () =
  let inst = instance () in
  let graph = inst.graph in
  let rng = Prng.Rng.create ~seed:3 in
  for _ = 1 to 50 do
    let s, t = Prng.Dist.sample_distinct_pair rng ~n:(Sparse_graph.Graph.n graph) in
    let objective = Objective.girg_phi inst ~target:t in
    let r = Faulty.route ~graph ~objective ~source:s ~rng ~failure_prob:0.4 () in
    let rec check = function
      | a :: (b :: _ as rest) ->
          if objective.Objective.score b <= objective.Objective.score a then
            Alcotest.fail "objective must strictly increase even under failures";
          if not (Sparse_graph.Graph.has_edge graph a b) then
            Alcotest.fail "walk uses non-edge";
          check rest
      | [ _ ] | [] -> ()
    in
    check r.Outcome.walk
  done

let test_graceful_degradation () =
  let inst = instance () in
  let graph = inst.graph in
  let comps = Sparse_graph.Components.compute graph in
  let giant = Sparse_graph.Components.giant_members comps in
  let success failure_prob =
    let rng = Prng.Rng.create ~seed:4 in
    let delivered = ref 0 in
    let trials = 300 in
    for _ = 1 to trials do
      let i, j = Prng.Dist.sample_distinct_pair rng ~n:(Array.length giant) in
      let objective = Objective.girg_phi inst ~target:giant.(j) in
      let r = Faulty.route ~graph ~objective ~source:giant.(i) ~rng ~failure_prob () in
      if Outcome.delivered r then incr delivered
    done;
    float_of_int !delivered /. float_of_int trials
  in
  let s0 = success 0.0 and s25 = success 0.25 and s75 = success 0.75 in
  Alcotest.(check bool) "baseline high" true (s0 > 0.9);
  Alcotest.(check bool) "moderate failures still mostly fine" true (s25 > 0.7);
  Alcotest.(check bool) "monotone degradation" true (s0 >= s25 && s25 >= s75)

let test_deterministic_given_rng () =
  let inst = instance () in
  let objective = Objective.girg_phi inst ~target:42 in
  let run seed =
    (Faulty.route ~graph:inst.graph ~objective ~source:7 ~rng:(Prng.Rng.create ~seed)
       ~failure_prob:0.3 ())
      .Outcome.walk
  in
  Alcotest.(check (list int)) "same seed same walk" (run 5) (run 5)

let suite =
  [
    Alcotest.test_case "p=0 matches greedy" `Quick test_zero_failures_matches_greedy;
    Alcotest.test_case "invalid probability" `Quick test_invalid_probability;
    Alcotest.test_case "monotone objective under failures" `Quick test_monotone_objective_still_holds;
    Alcotest.test_case "graceful degradation" `Quick test_graceful_degradation;
    Alcotest.test_case "deterministic given rng" `Quick test_deterministic_given_rng;
  ]
