open Greedy_routing

let make_instance ?(beta = 2.5) ?(alpha = Girg.Params.Finite 2.0) () =
  let params = Girg.Params.make ~dim:2 ~beta ~alpha ~c:0.25 ~n:5000 () in
  Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:41) params

let test_make_validation () =
  let inst = make_instance () in
  Alcotest.check_raises "epsilon 0" (Invalid_argument "Layers.make: epsilon must lie in (0, 1)")
    (fun () -> ignore (Layers.make ~inst ~target:0 ~epsilon:0.0 ()))

let test_gamma_and_growth () =
  let inst = make_instance () in
  let t = Layers.make ~inst ~target:0 ~epsilon:0.1 () in
  (* gamma = (1 - 0.1)/(2.5 - 2) = 1.8; zeta = 1.5 => growth = 0.85/0.5 = 1.7. *)
  Alcotest.(check (float 1e-9)) "gamma" 1.8 (Layers.gamma t);
  Alcotest.(check (float 1e-9)) "growth" 1.7 (Layers.growth t)

let test_growth_threshold_case () =
  let inst = make_instance ~alpha:Girg.Params.Infinite () in
  let t = Layers.make ~inst ~target:0 () in
  Alcotest.(check (float 1e-9)) "zeta = 3/2 for threshold" 1.7 (Layers.growth t)

let test_phase_boundary () =
  let inst = make_instance () in
  let t = Layers.make ~inst ~target:17 () in
  let objective = Objective.girg_phi inst ~target:17 in
  let n = Sparse_graph.Graph.n inst.graph in
  for v = 0 to min 999 (n - 1) do
    if v <> 17 then begin
      let expected =
        if objective.Objective.score v <= inst.weights.(v) ** -1.8 then Layers.Weight_phase
        else Layers.Objective_phase
      in
      if Layers.phase t v <> expected then Alcotest.failf "phase mismatch at %d" v
    end
  done

let test_weight_layer_examples () =
  (* Base layer starts at w = 2 with growth g = 1.7: boundaries are
     2, 2^1.7, 2^(1.7^2), ... — check a few hand-computed indices by
     patching one vertex's weight. *)
  let inst = make_instance () in
  let layer_of_weight w =
    let weights = Array.copy inst.weights in
    weights.(1) <- w;
    let inst' = { inst with Girg.Instance.weights = weights } in
    Layers.weight_layer (Layers.make ~inst:inst' ~target:0 ()) 1
  in
  Alcotest.(check int) "below base" (-1) (layer_of_weight 1.5);
  Alcotest.(check int) "at base" 0 (layer_of_weight 2.0);
  Alcotest.(check int) "inside layer 0" 0 (layer_of_weight (2.0 ** 1.6));
  Alcotest.(check int) "layer 1" 1 (layer_of_weight (2.0 ** 1.8));
  Alcotest.(check int) "layer 2" 2 (layer_of_weight (2.0 ** (1.7 *. 1.7 *. 1.01)))

let test_weight_layer_monotone () =
  let inst = make_instance () in
  let t = Layers.make ~inst ~target:0 () in
  (* Heavier vertices never have a smaller layer index. *)
  let n = Sparse_graph.Graph.n inst.graph in
  let indexed = List.init (min 2000 n) (fun v -> (inst.weights.(v), Layers.weight_layer t v)) in
  let sorted = List.sort compare indexed in
  let rec check = function
    | (_, j1) :: ((_, j2) :: _ as rest) ->
        if j1 > j2 then Alcotest.fail "weight layer not monotone in weight";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted

let test_below_base_layer () =
  let inst = make_instance () in
  let t = Layers.make ~inst ~target:0 () in
  (* w_min = 1 < base 2: some vertex below the base must map to -1. *)
  let n = Sparse_graph.Graph.n inst.graph in
  let found = ref false in
  for v = 0 to n - 1 do
    if inst.weights.(v) < 2.0 then begin
      if Layers.weight_layer t v <> -1 then Alcotest.fail "light vertex not in layer -1";
      found := true
    end
  done;
  Alcotest.(check bool) "light vertices exist" true !found

let test_objective_layer_direction () =
  let inst = make_instance () in
  let target = 3 in
  let t = Layers.make ~inst ~target () in
  let objective = Objective.girg_phi inst ~target in
  (* Larger objectives get smaller (or equal) layer indices; the target
     itself (phi = infinity) is index -1. *)
  Alcotest.(check int) "target index" (-1) (Layers.objective_layer t target);
  let n = Sparse_graph.Graph.n inst.graph in
  let scored =
    List.init (min 2000 n) (fun v -> (objective.Objective.score v, Layers.objective_layer t v))
  in
  let in_range = List.filter (fun (s, _) -> s <= 0.5 && s > 0.0) scored in
  let sorted = List.sort compare in_range in
  let rec check = function
    | (_, j1) :: ((_, j2) :: _ as rest) ->
        if j1 < j2 then Alcotest.fail "objective layer not antitone in objective";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted

let test_analyze_short_walks () =
  let inst = make_instance () in
  let t = Layers.make ~inst ~target:5 () in
  let empty = Layers.analyze_walk t [] in
  Alcotest.(check int) "empty length" 0 empty.Layers.length;
  Alcotest.(check int) "empty switches" 0 empty.Layers.phase_switches;
  let single = Layers.analyze_walk t [ 0 ] in
  Alcotest.(check int) "single length" 0 single.Layers.length

let test_analyze_greedy_walks () =
  let inst = make_instance () in
  let graph = inst.graph in
  let rng = Prng.Rng.create ~seed:42 in
  let n = Sparse_graph.Graph.n graph in
  let clean = ref 0 and total = ref 0 in
  for _ = 1 to 200 do
    let s, target = Prng.Dist.sample_distinct_pair rng ~n in
    let objective = Objective.girg_phi inst ~target in
    let outcome = Greedy.route ~graph ~objective ~source:s () in
    if Outcome.delivered outcome && outcome.steps >= 2 then begin
      incr total;
      let t = Layers.make ~inst ~target () in
      let body = List.filteri (fun k _ -> k < List.length outcome.walk - 1) outcome.walk in
      let r = Layers.analyze_walk t body in
      if
        r.Layers.phase_switches <= 1
        && r.Layers.repeated_weight_layers = 0
        && r.Layers.repeated_objective_layers = 0
      then incr clean
    end
  done;
  (* Lemma 8.1 is an a.a.s. statement; at n = 5000 the clean fraction should
     already be overwhelming. *)
  if !total = 0 then Alcotest.fail "no walks analyzed";
  let frac = float_of_int !clean /. float_of_int !total in
  if frac < 0.9 then Alcotest.failf "clean fraction %.2f below 0.9" frac

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "gamma and growth" `Quick test_gamma_and_growth;
    Alcotest.test_case "growth threshold case" `Quick test_growth_threshold_case;
    Alcotest.test_case "phase boundary" `Quick test_phase_boundary;
    Alcotest.test_case "weight layer examples" `Quick test_weight_layer_examples;
    Alcotest.test_case "weight layer monotone" `Quick test_weight_layer_monotone;
    Alcotest.test_case "below base layer" `Quick test_below_base_layer;
    Alcotest.test_case "objective layer direction" `Quick test_objective_layer_direction;
    Alcotest.test_case "analyze short walks" `Quick test_analyze_short_walks;
    Alcotest.test_case "analyze greedy walks (Lemma 8.1)" `Quick test_analyze_greedy_walks;
  ]
