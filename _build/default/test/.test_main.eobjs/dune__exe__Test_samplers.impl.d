test/test_samplers.ml: Alcotest Array Cell Fun Geometry Girg Instance Kernel List Naive Params Prng Seq Sparse_graph Stats
