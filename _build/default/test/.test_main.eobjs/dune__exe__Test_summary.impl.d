test/test_summary.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Stats Summary
