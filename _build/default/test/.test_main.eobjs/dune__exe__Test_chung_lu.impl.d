test/test_chung_lu.ml: Alcotest Array Chung_lu Float Fun Girg Hashtbl Prng Seq Sparse_graph Stats
