test/test_rng.ml: Alcotest Array Prng Rng
