test/test_grid.ml: Alcotest Array Fun Geometry Grid List Morton Printf Prng Torus
