test/test_regression.ml: Alcotest Array Prng QCheck2 QCheck_alcotest Regression Stats
