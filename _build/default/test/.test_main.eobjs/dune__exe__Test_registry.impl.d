test/test_registry.ml: Alcotest Context Experiments List Printf Prng Registry Stats String
