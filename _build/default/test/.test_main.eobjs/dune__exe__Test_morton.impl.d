test/test_morton.ml: Alcotest Array Geometry Hashtbl List Morton Prng QCheck2 QCheck_alcotest Torus
