test/test_io.ml: Alcotest Array Filename Geometry Girg Greedy_routing In_channel List Out_channel Printf Prng Sparse_graph String Sys
