test/test_hrg.ml: Alcotest Float Girg Hrg Hyperbolic Prng QCheck2 QCheck_alcotest Sparse_graph
