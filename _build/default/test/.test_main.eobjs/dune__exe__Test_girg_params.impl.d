test/test_girg_params.ml: Alcotest Array Geometry Girg Instance List Params Prng String
