test/test_gstats.ml: Alcotest Array Float Fun Graph Gstats List Prng Sparse_graph
