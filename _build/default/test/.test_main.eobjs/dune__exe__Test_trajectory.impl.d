test/test_trajectory.ml: Alcotest Girg Greedy_routing List Prng Trajectory
