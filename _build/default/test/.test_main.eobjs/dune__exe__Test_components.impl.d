test/test_components.ml: Alcotest Array Bfs Components Graph QCheck2 QCheck_alcotest Sparse_graph
