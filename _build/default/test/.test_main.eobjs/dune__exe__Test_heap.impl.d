test/test_heap.ml: Alcotest Binary_heap Greedy_routing List QCheck2 QCheck_alcotest
