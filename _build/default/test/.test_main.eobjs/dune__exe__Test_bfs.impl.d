test/test_bfs.ml: Alcotest Array Bfs Graph List Prng QCheck2 QCheck_alcotest Sparse_graph
