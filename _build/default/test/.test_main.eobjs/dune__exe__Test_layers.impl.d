test/test_layers.ml: Alcotest Array Girg Greedy Greedy_routing Layers List Objective Outcome Prng Sparse_graph
