test/test_dist.ml: Alcotest Array Dist Fun Hashtbl List Option Printf Prng Rng
