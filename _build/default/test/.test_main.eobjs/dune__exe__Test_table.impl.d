test/test_table.ml: Alcotest List Stats String Table
