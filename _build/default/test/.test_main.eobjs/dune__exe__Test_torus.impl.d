test/test_torus.ml: Alcotest Array Fmt Geometry List Prng QCheck2 QCheck_alcotest Torus
