test/test_patching.ml: Alcotest Array Greedy_routing List Objective Outcome Prng Protocol Sparse_graph Stats Test_greedy
