test/test_netsim.ml: Alcotest Array Float Girg Greedy_routing List Netsim Printf Prng Sparse_graph Test_greedy
