test/test_workload.ml: Alcotest Array Experiments Float Greedy_routing Prng Sparse_graph Test_greedy Workload
