test/test_lattice.ml: Alcotest Greedy_routing Kleinberg Lattice Prng Sparse_graph
