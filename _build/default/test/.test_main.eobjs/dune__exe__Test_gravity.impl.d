test/test_gravity.ml: Alcotest Array Gravity_pressure Greedy_routing List Objective Outcome Prng Sparse_graph Test_greedy
