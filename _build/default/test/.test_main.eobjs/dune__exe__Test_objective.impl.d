test/test_objective.ml: Alcotest Array Float Girg Greedy_routing Hyperbolic List Objective Prng Sparse_graph
