test/test_greedy.ml: Alcotest Array Girg Greedy Greedy_routing List Objective Outcome Prng Sparse_graph
