test/test_embed.ml: Alcotest Array Embed Float Greedy_routing Hrg Hyperbolic Prng Random Sparse_graph
