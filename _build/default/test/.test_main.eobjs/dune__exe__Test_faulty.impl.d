test/test_faulty.ml: Alcotest Array Faulty Greedy Greedy_routing Objective Outcome Prng Sparse_graph Test_greedy
