test/test_kernel.ml: Alcotest Float Girg Kernel List Params Printf Prng QCheck2 QCheck_alcotest
