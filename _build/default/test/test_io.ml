(* Persistence round-trips: Sparse_graph.Io and Girg.Store. *)

let temp_path suffix = Filename.temp_file "smallworld_test" suffix

let test_graph_roundtrip () =
  let g = Sparse_graph.Graph.of_edge_list ~n:6 [ (0, 1); (2, 5); (1, 4); (3, 4) ] in
  let path = temp_path ".graph" in
  Sparse_graph.Io.save ~path g;
  (match Sparse_graph.Io.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok g' ->
      Alcotest.(check int) "n" (Sparse_graph.Graph.n g) (Sparse_graph.Graph.n g');
      Alcotest.(check int) "m" (Sparse_graph.Graph.m g) (Sparse_graph.Graph.m g');
      for v = 0 to 5 do
        Alcotest.(check (array int))
          (Printf.sprintf "nbrs %d" v)
          (Sparse_graph.Graph.neighbors g v)
          (Sparse_graph.Graph.neighbors g' v)
      done);
  Sys.remove path

let test_graph_roundtrip_random () =
  let rng = Prng.Rng.create ~seed:31 in
  for trial = 1 to 20 do
    let n = 1 + Prng.Rng.int rng 30 in
    let edges =
      Array.init (Prng.Rng.int rng 60) (fun _ -> (Prng.Rng.int rng n, Prng.Rng.int rng n))
    in
    let g = Sparse_graph.Graph.of_edges ~n edges in
    let path = temp_path ".graph" in
    Sparse_graph.Io.save ~path g;
    (match Sparse_graph.Io.load ~path with
    | Error e -> Alcotest.failf "trial %d: %s" trial e
    | Ok g' ->
        let edges_of g =
          let acc = ref [] in
          Sparse_graph.Graph.iter_edges g (fun u v -> acc := (u, v) :: !acc);
          List.sort compare !acc
        in
        Alcotest.(check (list (pair int int))) "edge sets" (edges_of g) (edges_of g'));
    Sys.remove path
  done

let test_graph_empty () =
  let g = Sparse_graph.Graph.of_edges ~n:0 [||] in
  let path = temp_path ".graph" in
  Sparse_graph.Io.save ~path g;
  (match Sparse_graph.Io.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok g' -> Alcotest.(check int) "empty" 0 (Sparse_graph.Graph.n g'));
  Sys.remove path

let test_graph_rejects_garbage () =
  let path = temp_path ".graph" in
  Out_channel.with_open_text path (fun oc -> output_string oc "not a graph\n1 2\n");
  (match Sparse_graph.Io.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected header error");
  Sys.remove path

let test_graph_rejects_bad_edge () =
  let path = temp_path ".graph" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "# smallworld-graph 3 1\n0 7\n");
  (match Sparse_graph.Io.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected out-of-range error");
  Sys.remove path

let test_graph_rejects_count_mismatch () =
  let path = temp_path ".graph" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "# smallworld-graph 3 2\n0 1\n");
  (match Sparse_graph.Io.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected edge-count error");
  Sys.remove path

let test_graph_missing_file () =
  match Sparse_graph.Io.load ~path:"/nonexistent/nowhere.graph" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected file error"

let test_store_roundtrip () =
  let params =
    Girg.Params.make ~dim:2 ~beta:2.5 ~alpha:(Girg.Params.Finite 2.0) ~c:0.3 ~n:300 ()
  in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:8) params in
  let path = temp_path ".girg" in
  Girg.Store.save ~path inst;
  (match Girg.Store.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok inst' ->
      Alcotest.(check bool) "params" true (inst'.Girg.Instance.params = inst.params);
      Alcotest.(check bool) "weights exact" true (inst'.weights = inst.weights);
      Alcotest.(check bool) "positions exact" true (inst'.positions = inst.positions);
      Alcotest.(check int) "m" (Sparse_graph.Graph.m inst.graph)
        (Sparse_graph.Graph.m inst'.graph);
      (* Routing on the reloaded instance is identical. *)
      let n = Sparse_graph.Graph.n inst.graph in
      let route i ~source ~target =
        let objective = Greedy_routing.Objective.girg_phi i ~target in
        (Greedy_routing.Greedy.route ~graph:i.Girg.Instance.graph ~objective ~source ())
          .Greedy_routing.Outcome.walk
      in
      let rng = Prng.Rng.create ~seed:9 in
      for _ = 1 to 20 do
        let s, t = Prng.Dist.sample_distinct_pair rng ~n in
        Alcotest.(check (list int)) "same route" (route inst ~source:s ~target:t)
          (route inst' ~source:s ~target:t)
      done);
  Sys.remove path

let test_store_roundtrip_threshold () =
  let params = Girg.Params.make ~dim:1 ~beta:2.2 ~alpha:Girg.Params.Infinite ~n:200 () in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:10) params in
  let path = temp_path ".girg" in
  Girg.Store.save ~path inst;
  (match Girg.Store.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok inst' ->
      Alcotest.(check bool) "alpha inf survives" true
        (inst'.Girg.Instance.params.Girg.Params.alpha = Girg.Params.Infinite));
  Sys.remove path

let test_store_norm_roundtrip () =
  let params =
    Girg.Params.make ~dim:2 ~beta:2.5 ~norm:Geometry.Torus.L2 ~n:100 ~poisson_count:false ()
  in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:12) params in
  let path = temp_path ".girg" in
  Girg.Store.save ~path inst;
  (match Girg.Store.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok inst' ->
      Alcotest.(check bool) "norm survives" true
        (inst'.Girg.Instance.params.Girg.Params.norm = Geometry.Torus.L2));
  Sys.remove path

let test_store_rejects_garbage () =
  let path = temp_path ".girg" in
  Out_channel.with_open_text path (fun oc -> output_string oc "hello\n");
  (match Girg.Store.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  Sys.remove path

let test_store_rejects_truncated () =
  (* Write a valid instance, truncate it mid-file, expect a clean error. *)
  let params = Girg.Params.make ~dim:2 ~beta:2.5 ~n:100 ~poisson_count:false () in
  let inst = Girg.Instance.generate ~rng:(Prng.Rng.create ~seed:11) params in
  let path = temp_path ".girg" in
  Girg.Store.save ~path inst;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (String.sub contents 0 (String.length contents / 2)));
  (match Girg.Store.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected truncation error");
  Sys.remove path

let suite =
  [
    Alcotest.test_case "graph roundtrip" `Quick test_graph_roundtrip;
    Alcotest.test_case "graph roundtrip random" `Quick test_graph_roundtrip_random;
    Alcotest.test_case "graph empty" `Quick test_graph_empty;
    Alcotest.test_case "graph rejects garbage" `Quick test_graph_rejects_garbage;
    Alcotest.test_case "graph rejects bad edge" `Quick test_graph_rejects_bad_edge;
    Alcotest.test_case "graph rejects count mismatch" `Quick test_graph_rejects_count_mismatch;
    Alcotest.test_case "graph missing file" `Quick test_graph_missing_file;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store threshold alpha" `Quick test_store_roundtrip_threshold;
    Alcotest.test_case "store norm roundtrip" `Quick test_store_norm_roundtrip;
    Alcotest.test_case "store rejects garbage" `Quick test_store_rejects_garbage;
    Alcotest.test_case "store rejects truncated" `Quick test_store_rejects_truncated;
  ]
