module V1 = Api.V1

type slot =
  | Computing  (** a leader is computing; followers wait on [cond] *)
  | Value of { v : V1.response; mutable stamp : int }

type t = {
  cache_cap : int;
  mutex : Mutex.t;
  cond : Condition.t;
  table : (string, slot) Hashtbl.t;
  mutable clock : int;
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_coalesced : int Atomic.t;
  c_evictions : int Atomic.t;
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_coalesced : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
  m_size : Obs.Metrics.gauge;
}

let create ~cap =
  if cap < 0 then invalid_arg "Cache.create: cap must be >= 0";
  {
    cache_cap = cap;
    mutex = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create (max 16 (min cap 4096));
    clock = 0;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_coalesced = Atomic.make 0;
    c_evictions = Atomic.make 0;
    m_hits = Obs.Metrics.counter "server.cache.hits";
    m_misses = Obs.Metrics.counter "server.cache.misses";
    m_coalesced = Obs.Metrics.counter "server.cache.coalesced";
    m_evictions = Obs.Metrics.counter "server.cache.evictions";
    m_size = Obs.Metrics.gauge "server.cache.size";
  }

let cap t = t.cache_cap
let hits t = Atomic.get t.c_hits
let misses t = Atomic.get t.c_misses
let coalesced t = Atomic.get t.c_coalesced
let evictions t = Atomic.get t.c_evictions

let counter_pairs t =
  [
    ("server.cache.hits", hits t);
    ("server.cache.misses", misses t);
    ("server.cache.coalesced", coalesced t);
    ("server.cache.evictions", evictions t);
  ]

(* '|'-joined fields; the name goes last (names may themselves contain
   '|', but nothing after the name is parsed back, so the key stays
   unambiguous for equality). *)
let route_key ~name ~generation ~protocol ~max_steps ~source ~target =
  Printf.sprintf "route|%s|%s|%d|%d|%s#%d"
    (Greedy_routing.Protocol.name protocol)
    (match max_steps with None -> "-" | Some n -> string_of_int n)
    source target name generation

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Completed entries only (Computing slots are pinned by their leader
   and never evicted). *)
let size t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ s n -> match s with Value _ -> n + 1 | Computing -> n) t.table 0

(* Under the mutex. *)
let touch t = function
  | Value v ->
      t.clock <- t.clock + 1;
      v.stamp <- t.clock
  | Computing -> ()

let value_count t =
  Hashtbl.fold (fun _ s n -> match s with Value _ -> n + 1 | Computing -> n) t.table 0

let evict_over_cap t =
  while value_count t > t.cache_cap do
    let victim =
      Hashtbl.fold
        (fun key s best ->
          match (s, best) with
          | Computing, _ -> best
          | Value v, Some (_, bs) when bs <= v.stamp -> best
          | Value v, _ -> Some (key, v.stamp))
        t.table None
    in
    match victim with
    | Some (key, _) ->
        Hashtbl.remove t.table key;
        Atomic.incr t.c_evictions;
        Obs.Metrics.incr t.m_evictions
    | None -> ()
  done

let cacheable = function V1.Routed _ -> true | _ -> false

let find_or_compute t ?(cache_if = fun _ -> true) ~key f =
  if t.cache_cap = 0 then f ()
  else begin
    Mutex.lock t.mutex;
    let rec claim ~waited =
      match Hashtbl.find_opt t.table key with
      | Some (Value v as s) ->
          touch t s;
          (* A follower woken into a completed entry is already counted
             as coalesced; only first-lookup hits count as hits. *)
          if not waited then begin
            Atomic.incr t.c_hits;
            Obs.Metrics.incr t.m_hits
          end;
          Mutex.unlock t.mutex;
          `Done v.v
      | Some Computing ->
          if not waited then begin
            Atomic.incr t.c_coalesced;
            Obs.Metrics.incr t.m_coalesced
          end;
          Condition.wait t.cond t.mutex;
          claim ~waited:true
      | None ->
          (* First caller — or first follower after a failed leader —
             becomes the (new) leader. *)
          Atomic.incr t.c_misses;
          Obs.Metrics.incr t.m_misses;
          Hashtbl.replace t.table key Computing;
          Mutex.unlock t.mutex;
          `Lead
    in
    match claim ~waited:false with
    | `Done v -> v
    | `Lead ->
        let result = try Ok (f ()) with exn -> Error exn in
        Mutex.lock t.mutex;
        (match result with
        | Ok r when cacheable r && cache_if r ->
            let s = Value { v = r; stamp = 0 } in
            Hashtbl.replace t.table key s;
            touch t s;
            evict_over_cap t;
            Obs.Metrics.set t.m_size (float_of_int (value_count t))
        | Ok _ | Error _ -> Hashtbl.remove t.table key);
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        (match result with Ok r -> r | Error exn -> raise exn)
  end

let invalidate_name t ~name =
  if t.cache_cap > 0 then
    locked t @@ fun () ->
    (* Keys end with "|<name>#<gen>"; the last '#' separates the
       (digits-only) generation, so matching "|<name>" right before it
       is exact even for names containing '|' or '#'. *)
    let want = "|" ^ name in
    let wl = String.length want in
    let matches key =
      match String.rindex_opt key '#' with
      | Some j -> j >= wl && String.sub key (j - wl) wl = want
      | None -> false
    in
    let doomed =
      Hashtbl.fold
        (fun key s acc ->
          match s with Computing -> acc | Value _ -> if matches key then key :: acc else acc)
        t.table []
    in
    List.iter (Hashtbl.remove t.table) doomed;
    Obs.Metrics.set t.m_size (float_of_int (value_count t))
