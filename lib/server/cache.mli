(** Hot-pair route cache with single-flight coalescing.

    Keys embed the instance's registry {e generation}, so a [load] or
    [sample] over an existing name can never serve a stale route: the
    new epoch's requests key differently and the old epoch's entries
    age out of the LRU (an {!invalidate_name} sweep drops them
    eagerly).  Concurrent requests for the same key are coalesced:
    one leader computes while followers block on a condition variable
    and share the result — a thundering herd on a hot pair computes
    once.  Only successful [Routed] replies are cached; failures
    (deadline, unknown instance, …) are per-request verdicts and are
    recomputed.

    Counters are authoritative plain atomics (live under
    [SMALLWORLD_OBS=0]) mirrored into [server.cache.*] obs counters
    for manifests and Prometheus. *)

type t

val create : cap:int -> t
(** LRU capacity in entries; [cap = 0] disables caching entirely
    ({!find_or_compute} always computes, counters stay 0). *)

val cap : t -> int

val route_key :
  name:string ->
  generation:int ->
  protocol:Greedy_routing.Protocol.t ->
  max_steps:int option ->
  source:int ->
  target:int ->
  string
(** The canonical cache key for a single-route request. *)

val find_or_compute :
  t ->
  ?cache_if:(Api.V1.response -> bool) ->
  key:string ->
  (unit -> Api.V1.response) ->
  Api.V1.response
(** Return the cached response for [key], or run the computation
    exactly once across all concurrent callers of the same key.  A
    leader whose result is not cacheable (anything but [Routed])
    releases its followers, and the first of them retries as the new
    leader (a failure is never shared).  [cache_if] (default: always)
    is consulted on the leader's result after the computation: when it
    returns [false] the result is returned but not stored — used by
    the executor to drop results whose instance generation no longer
    matches the generation baked into [key] (a replace raced the
    lookup), which would otherwise survive {!invalidate_name}. *)

val invalidate_name : t -> name:string -> unit
(** Eagerly drop every cached route for the named instance (all
    generations).  Called on registry insert-over. *)

val hits : t -> int
val misses : t -> int
val coalesced : t -> int
val evictions : t -> int

val counter_pairs : t -> (string * int) list
(** [server.cache.hits] / [.misses] / [.coalesced] / [.evictions] with
    current values, for [health] / [stats-server] /manifest output. *)

val size : t -> int
(** Cached (completed) entries currently held. *)
