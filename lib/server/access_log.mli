(** Structured JSONL access log.

    Each served request becomes one [smallworld.access.v1] line:

    {v
    {"schema":"smallworld.access.v1","req":7,"id":3,"op":"route",
     "instance":"net","outcome":"ok","t":1754650000.123,
     "queue_ms":0.2,"compute_ms":1.7,"render_ms":0.1,"write_ms":0.05,
     "total_ms":2.05}
    v}

    [req] is the server-assigned request id, [id] the client's
    envelope id (when sent), [outcome] is ["ok"] or the error-taxonomy
    code of the failure.  Stage timings are milliseconds (3 decimal
    places).  Lines are buffered and flushed on size/time thresholds
    and from the daemon's housekeeping loop, not only at drain. *)

val schema_version : string
(** ["smallworld.access.v1"]. *)

type t

type entry = {
  req_id : int;
  client_id : int option;
  op : string;  (** wire op name, or ["invalid"] for unparseable lines *)
  instance : string option;
  outcome : string;  (** ["ok"] or an {!Api.Error} code string *)
  t_unix : float;  (** request start, epoch seconds *)
  queue_s : float;
  compute_s : float;
  render_s : float;
  write_s : float;
}

val create : path:string -> ?sample:int -> unit -> t
(** Open [path] for appending.  [sample = n] keeps one request in [n]
    (by [req_id mod n = 0]; default 1 = everything).
    @raise Invalid_argument when [sample < 1]. *)

val log : t -> entry -> unit
(** Thread-safe; a no-op for requests the sampler drops. *)

val line_of_entry : entry -> string
(** The exact line [log] writes (no trailing newline) — exposed for
    tests. *)

val flush : t -> unit
val close : t -> unit
