module V1 = Api.V1
module Error = Api.Error
module Graph = Sparse_graph.Graph

(* Stage and per-op latency histograms are registered by wire op name
   with '-' mapped to '_' so the Prometheus rendering stays a valid
   metric name.  The inventory is read off the V1 op table, so a new op
   gets its latency histogram without touching this module. *)
let all_ops = V1.op_names

let metric_op_suffix op = String.map (fun c -> if c = '-' then '_' else c) op

type t = {
  reg : Registry.t;
  cache : Cache.t;
  compute : Mutex.t;
  max_batch : int;
  drain_flag : bool Atomic.t;
  t_start : float;
  next_id : int Atomic.t;
  c_accepted : int Atomic.t;
  c_served : int Atomic.t;
  c_rejected : int Atomic.t;
  c_deadline : int Atomic.t;
  c_inflight : int Atomic.t;
  (* Authoritative queue depth comes from the transport (the daemon
     owns the connection queue); defaults to 0 when embedded without
     one.  Set once before serving starts. *)
  mutable queue_depth_source : unit -> int;
  (* Obs mirrors: no-ops under SMALLWORLD_OBS=0, live in manifests. *)
  m_accepted : Obs.Metrics.counter;
  m_served : Obs.Metrics.counter;
  m_rejected : Obs.Metrics.counter;
  m_deadline : Obs.Metrics.counter;
  m_inflight : Obs.Metrics.gauge;
  m_queue_depth : Obs.Metrics.gauge;
  m_reg_size : Obs.Metrics.gauge;
  m_reg_pinned : Obs.Metrics.gauge;
  m_reg_orphaned : Obs.Metrics.gauge;
  h_queue_wait : Obs.Metrics.histogram;
  h_compute : Obs.Metrics.histogram;
  h_render : Obs.Metrics.histogram;
  h_write : Obs.Metrics.histogram;
  h_ops : (string * Obs.Metrics.histogram) list;
  (* Per-request GC deltas around the compute stage (Gc.quick_stat
     diffs taken by the daemon, obs-on only). *)
  h_gc_minor : Obs.Metrics.histogram;
  h_gc_major : Obs.Metrics.histogram;
  h_gc_coll : Obs.Metrics.histogram;
}

let create ?(registry_cap = 8) ?(max_batch = 4096) ?(cache_cap = 4096) () =
  {
    reg = Registry.create ~cap:registry_cap;
    cache = Cache.create ~cap:cache_cap;
    compute = Mutex.create ();
    max_batch;
    drain_flag = Atomic.make false;
    t_start = Unix.gettimeofday ();
    next_id = Atomic.make 1;
    c_accepted = Atomic.make 0;
    c_served = Atomic.make 0;
    c_rejected = Atomic.make 0;
    c_deadline = Atomic.make 0;
    c_inflight = Atomic.make 0;
    queue_depth_source = (fun () -> 0);
    m_accepted = Obs.Metrics.counter "server.accepted";
    m_served = Obs.Metrics.counter "server.served";
    m_rejected = Obs.Metrics.counter "server.rejected";
    m_deadline = Obs.Metrics.counter "server.deadline_missed";
    m_inflight = Obs.Metrics.gauge "server.inflight";
    m_queue_depth = Obs.Metrics.gauge "server.queue_depth";
    m_reg_size = Obs.Metrics.gauge "server.registry.size";
    m_reg_pinned = Obs.Metrics.gauge "server.registry.pinned";
    m_reg_orphaned = Obs.Metrics.gauge "server.registry.orphaned";
    h_queue_wait = Obs.Metrics.histogram "server.stage.queue_wait";
    h_compute = Obs.Metrics.histogram "server.stage.compute";
    h_render = Obs.Metrics.histogram "server.stage.render";
    h_write = Obs.Metrics.histogram "server.stage.write";
    h_ops =
      List.map
        (fun op ->
          (op, Obs.Metrics.histogram ("server.latency." ^ metric_op_suffix op)))
        all_ops;
    h_gc_minor = Obs.Metrics.histogram "server.gc.compute.minor_words";
    h_gc_major = Obs.Metrics.histogram "server.gc.compute.major_words";
    h_gc_coll = Obs.Metrics.histogram "server.gc.compute.collections";
  }

let registry t = t.reg
let cache t = t.cache
let draining t = Atomic.get t.drain_flag
let start_drain t = Atomic.set t.drain_flag true

let accepted t = Atomic.get t.c_accepted
let served t = Atomic.get t.c_served
let rejected t = Atomic.get t.c_rejected
let deadline_missed t = Atomic.get t.c_deadline

let note_accepted t =
  Atomic.incr t.c_accepted;
  Obs.Metrics.incr t.m_accepted

let note_rejected t =
  Atomic.incr t.c_rejected;
  Obs.Metrics.incr t.m_rejected

let note_served t =
  Atomic.incr t.c_served;
  Obs.Metrics.incr t.m_served

let note_deadline t =
  Atomic.incr t.c_deadline;
  Obs.Metrics.incr t.m_deadline

let next_request_id t = Atomic.fetch_and_add t.next_id 1
let inflight t = Atomic.get t.c_inflight

let begin_request t =
  let n = Atomic.fetch_and_add t.c_inflight 1 + 1 in
  Obs.Metrics.set t.m_inflight (float_of_int n)

let end_request t =
  let n = Atomic.fetch_and_add t.c_inflight (-1) - 1 in
  Obs.Metrics.set t.m_inflight (float_of_int n)

let set_queue_depth_source t f = t.queue_depth_source <- f
let note_queue_depth t n = Obs.Metrics.set t.m_queue_depth (float_of_int n)
let note_queue_wait t dt = Obs.Metrics.observe t.h_queue_wait dt

let observe_stages t ?op ~compute ~render ~write () =
  Obs.Metrics.observe t.h_compute compute;
  Obs.Metrics.observe t.h_render render;
  Obs.Metrics.observe t.h_write write;
  match op with
  | None -> ()
  | Some op -> (
      match List.assoc_opt op t.h_ops with
      | Some h -> Obs.Metrics.observe h (compute +. render +. write)
      | None -> ())

(* Stage-labelled GC deltas for one request's compute stage.  The
   daemon only calls this when [Obs.Metrics.enabled] — the Gc reads
   themselves live behind that guard, so SMALLWORLD_OBS=0 keeps its
   zero-GC-read contract. *)
let observe_gc t ~minor_words ~major_words ~collections =
  Obs.Metrics.observe t.h_gc_minor minor_words;
  Obs.Metrics.observe t.h_gc_major major_words;
  Obs.Metrics.observe t.h_gc_coll (float_of_int collections)

let counter_pairs t =
  [
    ("server.accepted", accepted t);
    ("server.served", served t);
    ("server.rejected", rejected t);
    ("server.deadline_missed", deadline_missed t);
  ]
  @ Cache.counter_pairs t.cache

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let with_instance t name f =
  match Registry.acquire t.reg name with
  | Error e -> V1.Failed e
  | Ok handle ->
      Fun.protect ~finally:(fun () -> Registry.release t.reg handle) (fun () -> f handle)

(* [>=], not [>]: the deadline instant itself is expired, so a
   [deadline_ms = 0] request deterministically misses even when both
   clock reads land on the same microsecond tick. *)
let expired ?deadline () =
  match deadline with Some d -> Unix.gettimeofday () >= d | None -> false

let deadline_error =
  Error.make Error.Deadline "deadline expired before the request completed"

let stage_names =
  [ "stage.queue_wait"; "stage.compute"; "stage.render"; "stage.write" ]
  @ List.map (fun op -> "latency." ^ metric_op_suffix op) all_ops

(* Assembled without the compute mutex, so a scrape answers even while
   a long batch holds it.  Counters and gauges come from the
   authoritative atomics (real numbers under SMALLWORLD_OBS=0 too);
   stage quantiles come from the Obs.Hist-backed histograms, which are
   zeroed no-op stubs when obs is off — [obs_live] tells the client
   which regime it is reading. *)
let server_stats t =
  let queue_depth = t.queue_depth_source () in
  let infl = inflight t in
  let reg_size = Registry.size t.reg in
  let reg_pinned = Registry.pinned t.reg in
  let reg_orphaned = Registry.orphaned t.reg in
  (* Refresh the gauge mirrors so the Prometheus dump below carries
     current values. *)
  note_queue_depth t queue_depth;
  Obs.Metrics.set t.m_inflight (float_of_int infl);
  Obs.Metrics.set t.m_reg_size (float_of_int reg_size);
  Obs.Metrics.set t.m_reg_pinned (float_of_int reg_pinned);
  Obs.Metrics.set t.m_reg_orphaned (float_of_int reg_orphaned);
  let stages =
    List.filter_map
      (fun stage ->
        match Obs.Metrics.find_value Obs.Metrics.default ("server." ^ stage) with
        | Some (Obs.Metrics.Histogram_v snap) ->
            let q p = Obs.Metrics.hist_quantile snap p in
            Some
              {
                V1.stage;
                s_count = snap.Obs.Metrics.count;
                p50 = q 0.5;
                p90 = q 0.9;
                p99 = q 0.99;
                p999 = q 0.999;
                s_max = (if snap.Obs.Metrics.count = 0 then 0.0 else snap.Obs.Metrics.max);
              }
        | _ -> None)
      stage_names
  in
  {
    V1.uptime_s = Unix.gettimeofday () -. t.t_start;
    s_draining = draining t;
    obs_live = Obs.Metrics.enabled;
    s_counters = counter_pairs t;
    gauges =
      [
        ("server.queue_depth", float_of_int queue_depth);
        ("server.inflight", float_of_int infl);
        ("server.registry.size", float_of_int reg_size);
        ("server.registry.pinned", float_of_int reg_pinned);
        ("server.registry.orphaned", float_of_int reg_orphaned);
        ("server.registry.cap", float_of_int (Registry.cap t.reg));
        ("server.cache.size", float_of_int (Cache.size t.cache));
        ("server.cache.cap", float_of_int (Cache.cap t.cache));
      ]
      @ List.map
          (fun (name, gen) ->
            ("server.registry.gen." ^ name, float_of_int gen))
          (Registry.generations t.reg);
    stages;
    prometheus = Obs.Export.prometheus Obs.Metrics.default;
  }

let run t ?deadline request =
  (* Checkpoint the deadline at request start and again right before
     compute-heavy stages; between checkpoints work is not interrupted,
     so replies stay deterministic. *)
  if expired ?deadline () then begin
    note_deadline t;
    V1.Failed deadline_error
  end
  else
    match request with
    | V1.Load { name; path } -> (
        match Girg.Store.load ~path with
        | Error e ->
            V1.Failed (Error.make Error.Io "cannot load %s: %s" path e)
        | Ok inst -> (
            match Registry.insert t.reg ~name inst with
            | Error e -> V1.Failed e
            | Ok info ->
                Cache.invalidate_name t.cache ~name;
                V1.Loaded info))
    | V1.Sample { name; model; seed } -> (
        let inst = locked t.compute (fun () -> Api.Render.instantiate ~model ~seed) in
        match Registry.insert t.reg ~name inst with
        | Error e -> V1.Failed e
        | Ok info ->
            Cache.invalidate_name t.cache ~name;
            V1.Sampled info)
    | V1.Route { instance; source; target; protocol; max_steps } ->
        let route h =
          match
            Api.Render.route ~inst:(Registry.instance h) ~protocol ?max_steps
              ~source ~target ()
          with
          | Error e -> V1.Failed e
          | Ok reply -> V1.Routed reply
        in
        if Cache.cap t.cache = 0 then with_instance t instance route
        else
          (* Keyed on the name's current generation: a replace bumps the
             generation, so post-replace requests key (and miss) freshly
             and pre-replace entries can never be served to them. *)
          let gen = Registry.generation t.reg instance in
          let key =
            Cache.route_key ~name:instance ~generation:gen ~protocol ~max_steps
              ~source ~target
          in
          (* A replace can land between the generation read above and
             the leader's acquire below; the result then belongs to a
             newer instance than the key claims and must not be stored
             (it would outlive the replace's invalidation sweep and be
             served to old-generation keys).  Returning it uncached is
             fine — the request overlapped the replace. *)
          let fresh = ref true in
          let compute () =
            with_instance t instance (fun h ->
                if Registry.handle_generation h <> gen then fresh := false;
                route h)
          in
          Cache.find_or_compute t.cache ~cache_if:(fun _ -> !fresh) ~key compute
    | V1.Route_batch { instance; pairs; protocol; max_steps } ->
        with_instance t instance (fun h ->
            let inst = Registry.instance h in
            match Api.Render.resolve_pairs ~inst pairs with
            | Error e -> V1.Failed e
            | Ok resolved ->
                if Array.length resolved > t.max_batch then
                  V1.Failed
                    (Error.make Error.Overloaded
                       "batch of %d pairs exceeds the %d-pair limit; split the request"
                       (Array.length resolved) t.max_batch)
                else if expired ?deadline () then begin
                  note_deadline t;
                  V1.Failed deadline_error
                end
                else
                  locked t.compute (fun () ->
                      match
                        Api.Render.route_batch ~inst ~protocol ?max_steps
                          ~pairs:resolved ()
                      with
                      | Error e -> V1.Failed e
                      | Ok replies -> V1.Routed_batch replies))
    | V1.Stats { instance } ->
        with_instance t instance (fun h ->
            V1.Stats_reply (Api.Render.stats (Registry.instance h)))
    | V1.Gen_shard { params; seed; shards; shard; out } -> (
        match
          locked t.compute (fun () ->
              Girg.Shard.generate_spill ~path:out ~seed ~shards ~shard params)
        with
        | header ->
            V1.Spilled
              {
                V1.sp_path = out;
                sp_shard = header.Girg.Shard.shard;
                sp_shards = header.Girg.Shard.shards;
                sp_vertices = header.Girg.Shard.count;
                sp_edges = header.Girg.Shard.edges;
              }
        | exception Sys_error m ->
            V1.Failed (Error.make Error.Io "cannot write spill %s: %s" out m)
        | exception Invalid_argument m -> V1.Failed (Error.make Error.Bad_request "%s" m))
    | V1.Merge_shards { name; spills } -> (
        match locked t.compute (fun () -> Girg.Shard.merge ~paths:spills ()) with
        | Error e -> V1.Failed (Error.make Error.Io "merge failed: %s" e)
        | Ok inst -> (
            match Registry.insert t.reg ~name inst with
            | Error e -> V1.Failed e
            | Ok info ->
                Cache.invalidate_name t.cache ~name;
                V1.Merged info))
    | V1.Snapshot { instance; out } ->
        with_instance t instance (fun h ->
            let inst = Registry.instance h in
            match Girg.Store.save_binary ~path:out inst with
            | () ->
                V1.Snapshotted
                  {
                    V1.sn_path = out;
                    sn_bytes = (Unix.stat out).Unix.st_size;
                    sn_vertices = Sparse_graph.Graph.n inst.Girg.Instance.graph;
                    sn_edges = Sparse_graph.Graph.m inst.Girg.Instance.graph;
                  }
            | exception Sys_error m ->
                V1.Failed (Error.make Error.Io "cannot write snapshot %s: %s" out m))
    | V1.Mutate { instance; ops; seed } ->
        with_instance t instance (fun h ->
            let inst = Registry.instance h in
            match
              Girg.Mutate.validate ~n:(Graph.n inst.Girg.Instance.graph) ops
            with
            | Error m -> V1.Failed (Error.make Error.Bad_request "%s" m)
            | Ok () -> (
                let mutated =
                  locked t.compute (fun () -> Girg.Mutate.apply ~seed inst ops)
                in
                (* The insert bumps the name's generation, so every
                   cached route keyed on the old generation is dead by
                   key construction; the sweep below just reclaims the
                   slots eagerly. *)
                match Registry.insert t.reg ~name:instance mutated with
                | Error e -> V1.Failed e
                | Ok _info ->
                    Cache.invalidate_name t.cache ~name:instance;
                    let g = mutated.Girg.Instance.graph in
                    V1.Mutated
                      {
                        V1.mu_name = instance;
                        mu_epoch = Graph.epoch g;
                        mu_generation = Registry.generation t.reg instance;
                        mu_live = Graph.live_count g;
                        mu_vertices = Graph.n g;
                        mu_edges = Graph.m g;
                        mu_applied = List.length ops;
                      }))
    | V1.Churn { instance; config } ->
        (* One epoch = plan against the current version, apply as a
           fresh insert (generation bump + cache sweep, exactly like a
           standalone mutate), then measure on the new version.  The
           compute mutex is held per stage, not across the whole
           scenario, so health and stats answer between epochs. *)
        let measure inst =
          locked t.compute (fun () ->
              Experiments.Churn.measure config ~inst
                ~epoch:(Graph.epoch inst.Girg.Instance.graph))
        in
        let rec epochs inst rows left =
          if left = 0 then Ok (List.rev rows)
          else if expired ?deadline () then begin
            note_deadline t;
            Error deadline_error
          end
          else
            let ops =
              Experiments.Churn.plan config ~inst
                ~epoch:(Graph.epoch inst.Girg.Instance.graph + 1)
            in
            let mutated =
              locked t.compute (fun () ->
                  Girg.Mutate.apply ~seed:config.seed inst ops)
            in
            match Registry.insert t.reg ~name:instance mutated with
            | Error e -> Error e
            | Ok _info ->
                Cache.invalidate_name t.cache ~name:instance;
                epochs mutated (measure mutated :: rows) (left - 1)
        in
        with_instance t instance (fun h ->
            let inst = Registry.instance h in
            match epochs inst [ measure inst ] config.epochs with
            | Error e -> V1.Failed e
            | Ok rows ->
                V1.Churned
                  {
                    V1.ch_name = instance;
                    ch_scenario = config.scenario;
                    ch_generation = Registry.generation t.reg instance;
                    ch_rows = rows;
                  })
    | V1.Health ->
        V1.Health_reply
          {
            V1.draining = draining t;
            instances = Registry.names t.reg;
            counters = counter_pairs t;
          }
    | V1.Server_stats -> V1.Server_stats_reply (server_stats t)
    | V1.Drain ->
        start_drain t;
        V1.Drain_ack

let handle t ?deadline request =
  let response =
    Obs.Span.with_ ~name:("server." ^ V1.op_of_request request) (fun () ->
        try run t ?deadline request
        with exn ->
          V1.Failed (Error.make Error.Internal "%s" (Printexc.to_string exn)))
  in
  (match response with
  | V1.Failed { Error.code = Error.Overloaded | Error.Draining; _ } -> note_rejected t
  | V1.Failed { Error.code = Error.Deadline; _ } -> ()  (* counted at the checkpoint *)
  | V1.Failed _ -> ()
  | _ -> note_served t);
  response
