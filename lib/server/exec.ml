module V1 = Api.V1
module Error = Api.Error

type t = {
  reg : Registry.t;
  compute : Mutex.t;
  max_batch : int;
  drain_flag : bool Atomic.t;
  c_accepted : int Atomic.t;
  c_served : int Atomic.t;
  c_rejected : int Atomic.t;
  c_deadline : int Atomic.t;
  (* Obs mirrors: no-ops under SMALLWORLD_OBS=0, live in manifests. *)
  m_accepted : Obs.Metrics.counter;
  m_served : Obs.Metrics.counter;
  m_rejected : Obs.Metrics.counter;
  m_deadline : Obs.Metrics.counter;
}

let create ?(registry_cap = 8) ?(max_batch = 4096) () =
  {
    reg = Registry.create ~cap:registry_cap;
    compute = Mutex.create ();
    max_batch;
    drain_flag = Atomic.make false;
    c_accepted = Atomic.make 0;
    c_served = Atomic.make 0;
    c_rejected = Atomic.make 0;
    c_deadline = Atomic.make 0;
    m_accepted = Obs.Metrics.counter "server.accepted";
    m_served = Obs.Metrics.counter "server.served";
    m_rejected = Obs.Metrics.counter "server.rejected";
    m_deadline = Obs.Metrics.counter "server.deadline_missed";
  }

let registry t = t.reg
let draining t = Atomic.get t.drain_flag
let start_drain t = Atomic.set t.drain_flag true

let accepted t = Atomic.get t.c_accepted
let served t = Atomic.get t.c_served
let rejected t = Atomic.get t.c_rejected
let deadline_missed t = Atomic.get t.c_deadline

let note_accepted t =
  Atomic.incr t.c_accepted;
  Obs.Metrics.incr t.m_accepted

let note_rejected t =
  Atomic.incr t.c_rejected;
  Obs.Metrics.incr t.m_rejected

let note_served t =
  Atomic.incr t.c_served;
  Obs.Metrics.incr t.m_served

let note_deadline t =
  Atomic.incr t.c_deadline;
  Obs.Metrics.incr t.m_deadline

let counter_pairs t =
  [
    ("server.accepted", accepted t);
    ("server.served", served t);
    ("server.rejected", rejected t);
    ("server.deadline_missed", deadline_missed t);
  ]

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let with_instance t name f =
  match Registry.acquire t.reg name with
  | Error e -> V1.Failed e
  | Ok handle ->
      Fun.protect ~finally:(fun () -> Registry.release t.reg handle) (fun () -> f handle)

(* [>=], not [>]: the deadline instant itself is expired, so a
   [deadline_ms = 0] request deterministically misses even when both
   clock reads land on the same microsecond tick. *)
let expired ?deadline () =
  match deadline with Some d -> Unix.gettimeofday () >= d | None -> false

let deadline_error =
  Error.make Error.Deadline "deadline expired before the request completed"

let run t ?deadline request =
  (* Checkpoint the deadline at request start and again right before
     compute-heavy stages; between checkpoints work is not interrupted,
     so replies stay deterministic. *)
  if expired ?deadline () then begin
    note_deadline t;
    V1.Failed deadline_error
  end
  else
    match request with
    | V1.Load { name; path } -> (
        match Girg.Store.load ~path with
        | Error e ->
            V1.Failed (Error.make Error.Io "cannot load %s: %s" path e)
        | Ok inst -> (
            match Registry.insert t.reg ~name inst with
            | Error e -> V1.Failed e
            | Ok info -> V1.Loaded info))
    | V1.Sample { name; model; seed } -> (
        let inst = locked t.compute (fun () -> Api.Render.instantiate ~model ~seed) in
        match Registry.insert t.reg ~name inst with
        | Error e -> V1.Failed e
        | Ok info -> V1.Sampled info)
    | V1.Route { instance; source; target; protocol; max_steps } ->
        with_instance t instance (fun h ->
            match
              Api.Render.route ~inst:(Registry.instance h) ~protocol ?max_steps
                ~source ~target ()
            with
            | Error e -> V1.Failed e
            | Ok reply -> V1.Routed reply)
    | V1.Route_batch { instance; pairs; protocol; max_steps } ->
        with_instance t instance (fun h ->
            let inst = Registry.instance h in
            match Api.Render.resolve_pairs ~inst pairs with
            | Error e -> V1.Failed e
            | Ok resolved ->
                if Array.length resolved > t.max_batch then
                  V1.Failed
                    (Error.make Error.Overloaded
                       "batch of %d pairs exceeds the %d-pair limit; split the request"
                       (Array.length resolved) t.max_batch)
                else if expired ?deadline () then begin
                  note_deadline t;
                  V1.Failed deadline_error
                end
                else
                  locked t.compute (fun () ->
                      match
                        Api.Render.route_batch ~inst ~protocol ?max_steps
                          ~pairs:resolved ()
                      with
                      | Error e -> V1.Failed e
                      | Ok replies -> V1.Routed_batch replies))
    | V1.Stats { instance } ->
        with_instance t instance (fun h ->
            V1.Stats_reply (Api.Render.stats (Registry.instance h)))
    | V1.Health ->
        V1.Health_reply
          {
            V1.draining = draining t;
            instances = Registry.names t.reg;
            counters = counter_pairs t;
          }
    | V1.Drain ->
        start_drain t;
        V1.Drain_ack

let op_name = function
  | V1.Load _ -> "load"
  | V1.Sample _ -> "sample"
  | V1.Route _ -> "route"
  | V1.Route_batch _ -> "route_batch"
  | V1.Stats _ -> "stats"
  | V1.Health -> "health"
  | V1.Drain -> "drain"

let handle t ?deadline request =
  let response =
    Obs.Span.with_ ~name:("server." ^ op_name request) (fun () ->
        try run t ?deadline request
        with exn ->
          V1.Failed (Error.make Error.Internal "%s" (Printexc.to_string exn)))
  in
  (match response with
  | V1.Failed { Error.code = Error.Overloaded | Error.Draining; _ } -> note_rejected t
  | V1.Failed { Error.code = Error.Deadline; _ } -> ()  (* counted at the checkpoint *)
  | V1.Failed _ -> ()
  | _ -> note_served t);
  response
