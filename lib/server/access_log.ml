(* Structured JSONL access log (smallworld.access.v1).

   One line per served request, written by whichever worker domain
   finished it, so the writer is a mutex-guarded buffer.  Lines are
   buffered and flushed when the buffer grows past a threshold or a
   couple of seconds have passed since the last flush — plus whatever
   periodic flushes the daemon's housekeeping loop adds — so a crashed
   daemon loses at most the tail, not the whole log.

   Sampling is deterministic: with [sample = n] only requests whose id
   is divisible by n are logged, so a given request id either appears
   in the log or never does, regardless of timing. *)

module J = Obs.Export

let schema_version = "smallworld.access.v1"

type t = {
  oc : Out_channel.t;
  sample : int;
  lock : Mutex.t;
  buf : Buffer.t;
  mutable last_flush : float;
}

type entry = {
  req_id : int;
  client_id : int option;
  op : string;
  instance : string option;
  outcome : string;
  t_unix : float;
  queue_s : float;
  compute_s : float;
  render_s : float;
  write_s : float;
}

let flush_bytes = 32 * 1024
let flush_interval = 2.0

let create ~path ?(sample = 1) () =
  if sample < 1 then invalid_arg "Access_log.create: sample must be >= 1";
  let oc =
    Out_channel.open_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  { oc; sample; lock = Mutex.create (); buf = Buffer.create 4096;
    last_flush = Unix.gettimeofday () }

let ms s = Float.round (s *. 1e6) /. 1e3

let line_of_entry e =
  J.json_to_string
    (J.Obj
       ([ ("schema", J.Str schema_version); ("req", J.Int e.req_id) ]
       @ (match e.client_id with Some i -> [ ("id", J.Int i) ] | None -> [])
       @ [ ("op", J.Str e.op) ]
       @ (match e.instance with Some i -> [ ("instance", J.Str i) ] | None -> [])
       @ [
           ("outcome", J.Str e.outcome);
           ("t", J.Float e.t_unix);
           ("queue_ms", J.Float (ms e.queue_s));
           ("compute_ms", J.Float (ms e.compute_s));
           ("render_ms", J.Float (ms e.render_s));
           ("write_ms", J.Float (ms e.write_s));
           ( "total_ms",
             J.Float (ms (e.queue_s +. e.compute_s +. e.render_s +. e.write_s)) );
         ]))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let flush_locked t =
  if Buffer.length t.buf > 0 then begin
    Out_channel.output_string t.oc (Buffer.contents t.buf);
    Buffer.clear t.buf;
    Out_channel.flush t.oc
  end;
  t.last_flush <- Unix.gettimeofday ()

let sampled t e = t.sample = 1 || e.req_id mod t.sample = 0

let log t e =
  if sampled t e then begin
    let line = line_of_entry e in
    locked t @@ fun () ->
    Buffer.add_string t.buf line;
    Buffer.add_char t.buf '\n';
    if
      Buffer.length t.buf >= flush_bytes
      || Unix.gettimeofday () -. t.last_flush >= flush_interval
    then flush_locked t
  end

let flush t = locked t @@ fun () -> flush_locked t

let close t =
  locked t @@ fun () ->
  flush_locked t;
  Out_channel.close t.oc
