(** A select(2)-based readiness loop with a self-pipe wakeup.

    The daemon's connection plane is single-threaded: one domain owns
    every socket and runs [wait] in a loop, while worker domains that
    finish a request call {!wakeup} (async-signal-safe: at most one
    non-blocking byte written to a pipe) to break the
    [select] so the loop can flush their replies immediately instead
    of waiting out the poll timeout. *)

type t

val create : unit -> t
(** Opens the self-pipe (both ends non-blocking, close-on-exec). *)

val wakeup : t -> unit
(** Make the current or next {!wait} return immediately (one
    non-blocking self-pipe write; a full pipe already holds unread
    wakeups, so the write is then dropped).  Safe to call from any
    domain or from a signal handler. *)

val wait :
  t ->
  read:Unix.file_descr list ->
  write:Unix.file_descr list ->
  timeout:float ->
  Unix.file_descr list * Unix.file_descr list
(** Block until some fd is ready, a wakeup arrives, or [timeout]
    (seconds; negative = forever) elapses.  Returns the ready subsets
    of [read] and [write] — the self-pipe is managed internally and
    never appears in the result.  [EINTR] returns [([], [])], as does
    [EINVAL] (an fd past select's FD_SETSIZE limit) after a short
    pacing sleep — callers must cap their fd count below FD_SETSIZE;
    the [EINVAL] path only sheds load instead of crashing. *)

val close : t -> unit
(** Close the self-pipe.  Calling {!wakeup} afterwards is a no-op. *)
