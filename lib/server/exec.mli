(** Request execution: one v1 request in, one v1 response out.

    This layer owns everything below the wire: the registry, the
    drain flag, the always-live request counters (plain atomics, so
    [health] reports real numbers even under [SMALLWORLD_OBS=0]; the
    obs layer mirrors them for manifests), and the compute lock that
    serialises work entering the shared {!Parallel.Global} pool —
    [Pool.run] must not be called concurrently from two domains, so
    [sample] and [route_batch] take the lock while single routes and
    lookups run lock-free in parallel. *)

type t

val create : ?registry_cap:int -> ?max_batch:int -> ?cache_cap:int -> unit -> t
(** Defaults: [registry_cap = 8], [max_batch = 4096],
    [cache_cap = 4096] ([cache_cap = 0] disables the route cache). *)

val registry : t -> Registry.t

val cache : t -> Cache.t
(** The hot-pair route cache; single routes are answered through
    {!Cache.find_or_compute} keyed on the instance's registry
    generation, and [load] / [sample] over an existing name sweep the
    name's entries. *)

val draining : t -> bool
val start_drain : t -> unit

(** {1 Counters} *)

val accepted : t -> int
val served : t -> int
val rejected : t -> int
val deadline_missed : t -> int

val note_accepted : t -> unit
(** Called by the transport when it reads a request line. *)

val note_rejected : t -> unit
(** Called by the transport when it refuses a connection (queue full /
    draining) without reading a request. *)

val counter_pairs : t -> (string * int) list
(** The snapshot [health] replies carry, and the [extra] fields of the
    drain manifest: [server.accepted], [server.served],
    [server.rejected], [server.deadline_missed], plus the
    [server.cache.*] hit/miss/coalesced/eviction counters. *)

(** {1 Request tracing}

    Called by the transport around each request so the telemetry plane
    sees per-request ids, in-flight depth and per-stage timings.  All
    of it is cheap: ids and the in-flight count are plain atomics;
    stage histograms are {!Obs.Metrics} handles, i.e. no-op stubs
    under [SMALLWORLD_OBS=0]. *)

val next_request_id : t -> int
(** Monotone, starts at 1; assigned when the transport reads a
    request line. *)

val begin_request : t -> unit
val end_request : t -> unit
val inflight : t -> int

val note_queue_wait : t -> float -> unit
(** Seconds a connection spent in the accept queue before a worker
    picked it up ([server.stage.queue_wait]). *)

val observe_stages :
  t -> ?op:string -> compute:float -> render:float -> write:float -> unit -> unit
(** Record one request's stage timings (seconds) into
    [server.stage.compute] / [.render] / [.write]; when [op] names a
    known wire op, the total also lands in [server.latency.<op>]. *)

val observe_gc : t -> minor_words:float -> major_words:float -> collections:int -> unit
(** Record one request's GC deltas around the compute stage
    ([Gc.quick_stat] differences) into the stage-labelled
    [server.gc.compute.minor_words] / [.major_words] / [.collections]
    histograms.  Callers must gate the [Gc.quick_stat] reads (and this
    call) behind [Obs.Metrics.enabled]: under [SMALLWORLD_OBS=0] the
    serving path performs no GC introspection at all. *)

val set_queue_depth_source : t -> (unit -> int) -> unit
(** Install the transport's live queue-depth reader (called by
    [stats-server]); defaults to a constant 0.  Set before serving
    starts. *)

val note_queue_depth : t -> int -> unit
(** Mirror the current queue depth into the [server.queue_depth]
    gauge. *)

val server_stats : t -> Api.V1.server_stats_reply
(** The [stats-server] snapshot: uptime, drain state, counters,
    gauges, per-stage latency quantiles, and a Prometheus text dump.
    Never takes the compute mutex, so it answers under full load. *)

(** {1 Execution} *)

val handle :
  t -> ?deadline:float -> Api.V1.request -> Api.V1.response
(** Execute one request under a [server.<op>] span.  [deadline] is an
    absolute [Unix.gettimeofday] instant; an expired deadline yields
    the [deadline] taxonomy error without touching the instance.
    Exceptions become [internal] responses — the daemon never dies on a
    request. *)
