(** The route-serving TCP daemon: newline-delimited JSON over a
    loopback (or any) TCP socket, stdlib [Unix] only.

    Concurrency model: the domain that calls {!serve} runs the accept
    loop; [workers] spawned domains each own one client connection at a
    time, popped from a bounded queue.  When the queue is full the
    accept loop answers with the [overloaded] taxonomy error and closes
    — backpressure is explicit, nothing buffers without bound.  Worker
    domains poll the drain flag (200 ms granularity) between requests
    and while waiting for input, so a SIGTERM (or a [drain] request)
    stops new work, lets every in-flight request finish and reply, and
    then {!serve} returns — after appending the run manifest when
    [obs_out] is set. *)

type config = {
  host : string;  (** bind address, default "127.0.0.1" *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** connection-serving domains, >= 1 *)
  queue_cap : int;  (** pending-connection queue bound, >= 1 *)
  registry_cap : int;  (** LRU capacity of the instance registry *)
  max_batch : int;  (** largest accepted [route_batch], else [overloaded] *)
  obs_out : string option;  (** manifest destination, written at drain *)
}

val default_config : config
(** host 127.0.0.1, port 7441, 4 workers, queue_cap 16,
    registry_cap 8, max_batch 4096, no manifest. *)

type t

val create : config -> t
(** Bind + listen and spawn the worker domains.  The listening socket
    is live from here on (connections queue in the backlog until
    {!serve} starts accepting).
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val exec : t -> Exec.t
(** The execution layer (registry, counters, drain flag) — lets an
    embedding process preload instances before serving. *)

val stop : t -> unit
(** Begin draining: stop accepting, finish in-flight requests.
    Safe from a signal handler or another domain.  {!serve} returns
    once the drain completes. *)

val serve : t -> unit
(** Run the accept loop in the calling domain until drained (via
    {!stop}, SIGTERM wired to it, or a client's [drain] request), then
    join the workers, close the socket, and write the manifest. *)
