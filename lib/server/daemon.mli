(** The route-serving TCP daemon: newline-delimited JSON or
    length-prefixed binary frames (see {!Api.Binary}) over a loopback
    (or any) TCP socket, stdlib [Unix] only.

    Concurrency model: the domain that calls {!serve} runs a
    single-threaded readiness event loop (see {!Evloop}) that owns
    every client socket — non-blocking accepts, reads, framing, and
    reply writes all happen there, so an idle or slow client costs one
    table entry, not a domain.  Parsed requests are dispatched to a
    bounded job queue that [workers] spawned domains pop from; each
    finished reply travels back to the event loop as a completion (a
    self-pipe wakeup breaks the [select], so replies flush immediately
    rather than on a poll tick).  When the job queue is full the event
    loop answers with the [overloaded] taxonomy error in the client's
    own codec and the connection survives to retry — backpressure is
    explicit, nothing buffers without bound (at most one request per
    connection is in flight; pipelined bytes wait in the read buffer).
    A SIGTERM (or a [drain] request) stops new work, lets every
    in-flight request finish and reply, and then {!serve} returns —
    after appending the run manifest when [obs_out] is set.

    Codec negotiation is per connection, by first byte: [0xB1] selects
    binary framing (unless [json_only] is set, which refuses it with a
    JSON caller error), anything else — in particular ['{'] — keeps
    the JSON line codec, so old clients work unchanged.  Replies are
    rendered in the codec of their request, and mixed-codec clients
    can be served concurrently.  Oversized binary frames are refused
    as a caller error and the connection survives (the declared
    payload is discarded as it arrives); malformed frames cannot be
    resynchronised and close the connection after the error reply.

    {2 Telemetry}

    Every request gets a server-assigned id at dispatch (ordered by
    arrival on the event loop) and is traced through four lifecycle
    stages — queue_wait (request sat in the job queue), compute
    ({!Exec.handle}), render (reply serialisation), write (queued
    until the last reply byte is flushed) — recorded into
    stage-labelled {!Obs.Metrics} histograms and, when [access_log] is
    set, one [smallworld.access.v1] JSONL line per request (see
    {!Access_log}).  Stage clocks are skipped entirely when obs is off
    and no access log is configured.

    Single route requests are answered through the {!Cache} keyed on
    the instance's registry generation, with single-flight coalescing
    of concurrent identical requests; [server.cache.*] counters land
    in [health] and [stats-server] replies.

    When [admin_port] is set, a separate listener domain serves the
    telemetry plane without touching the worker queue or the compute
    mutex, so scrapes answer while every worker is busy: HTTP
    [GET /metrics] returns the Prometheus text dump, [GET /stats] the
    [stats-server] JSON reply; raw JSON lines are also accepted but
    only for [stats-server] and [health] (admin requests do not move
    the [server.*] counters).

    A housekeeping domain (spawned when [obs_out] or [access_log] is
    set) rewrites the manifest every [obs_interval] seconds and on
    {!request_manifest} (wired to SIGHUP by [bin/serve]), and flushes
    the access log, so a killed daemon still leaves telemetry. *)

type config = {
  host : string;  (** bind address, default "127.0.0.1" *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** request-executing domains, >= 1 *)
  queue_cap : int;  (** pending-request job queue bound, >= 1 *)
  registry_cap : int;  (** LRU capacity of the instance registry *)
  max_batch : int;  (** largest accepted [route_batch], else [overloaded] *)
  obs_out : string option;  (** manifest destination, written at drain *)
  obs_interval : float;  (** seconds between periodic manifest rewrites;
                             [<= 0.] disables the periodic timer *)
  admin_port : int option;  (** telemetry listener; 0 picks ephemeral *)
  access_log : string option;  (** JSONL access-log path (appended) *)
  access_sample : int;  (** log 1 request in [n] (by request id), >= 1 *)
  events_out : string option;
      (** flight-recorder destination: the {!Obs.Events} ring is dumped
          once as [smallworld.events.v1] JSONL when {!serve} returns at
          drain (empty under [SMALLWORLD_OBS=0]) *)
  trace_out : string option;
      (** distributed-trace sink: every request carrying a
          [trace] context gets its span tree — server stages plus the
          algorithm spans under [server.<op>] — appended as one
          [smallworld.trace.v1] record.  Server records use the negated
          request id as their span id, so they never collide with
          client-declared (positive) span ids.  Requires obs on;
          with [SMALLWORLD_OBS=0] no records are written. *)
  json_only : bool;
      (** refuse binary framing at negotiation: a connection opening
          with the [0xB1] magic gets a JSON [bad-request] reply and is
          closed.  For deployments that want a text-only wire. *)
  cache_cap : int;
      (** route-cache capacity in entries ({!Cache}); [0] disables
          caching (every route recomputes). *)
}

val default_config : config
(** host 127.0.0.1, port 7441, 4 workers, queue_cap 16,
    registry_cap 8, max_batch 4096, no manifest, obs_interval 60 s,
    no admin port, no access log, access_sample 1, no events or trace
    sink, binary framing accepted, cache_cap 4096. *)

type t

val create : config -> t
(** Bind + listen (main and, when configured, admin sockets) and spawn
    the worker, admin and housekeeping domains.  The listening sockets
    are live from here on (connections queue in the backlog until
    {!serve} starts accepting).
    @raise Unix.Unix_error when an address cannot be bound.
    @raise Invalid_argument on a non-positive [workers], [queue_cap] or
    [access_sample], or a negative [cache_cap]. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val admin_port : t -> int option
(** The actually bound admin port, when [admin_port] was configured. *)

val exec : t -> Exec.t
(** The execution layer (registry, counters, drain flag) — lets an
    embedding process preload instances before serving. *)

val request_manifest : t -> unit
(** Ask the housekeeping domain to rewrite the manifest (and flush the
    access log) at its next tick (≤ 200 ms).  Async-signal-safe — the
    SIGHUP handler in [bin/serve] calls this directly.  A no-op when
    neither [obs_out] nor [access_log] is configured. *)

val stop : t -> unit
(** Begin draining: stop accepting, finish in-flight requests.
    Safe from a signal handler or another domain.  {!serve} returns
    once the drain completes. *)

val serve : t -> unit
(** Run the event loop in the calling domain until drained (via
    {!stop}, SIGTERM wired to it, or a client's [drain] request), then
    join the worker/admin/housekeeping domains, close the sockets,
    write the final manifest, and close the access log. *)
