type t = {
  rpipe : Unix.file_descr;
  wpipe : Unix.file_descr;
  closed : bool Atomic.t;
}

let create () =
  let rpipe, wpipe = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock rpipe;
  Unix.set_nonblock wpipe;
  { rpipe; wpipe; closed = Atomic.make false }

let wakeup_byte = Bytes.make 1 '!'

(* Unconditional one-byte write: a flag-guarded "write only if not
   already pending" scheme can lose wakeups (the reader may consume a
   byte written after it cleared the flag, leaving the flag set and
   the pipe empty).  A full pipe means plenty of unread wakeups, so
   dropping the write on EAGAIN is correct; callers wanting fewer
   syscalls coalesce at their own queue (wake only on empty->non-empty
   transitions). *)
let wakeup t =
  if not (Atomic.get t.closed) then
    try ignore (Unix.write t.wpipe wakeup_byte 0 1) with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EBADF | EPIPE | EINTR), _, _) -> ()

let drain t =
  let buf = Bytes.create 256 in
  let rec loop () =
    match Unix.read t.rpipe buf 0 256 with
    | 0 -> ()
    | _ -> loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  loop ()

let wait t ~read ~write ~timeout =
  match Unix.select (t.rpipe :: read) write [] timeout with
  | exception Unix.Unix_error (EINTR, _, _) -> ([], [])
  | exception Unix.Unix_error (EINVAL, _, _) ->
      (* An fd >= FD_SETSIZE slipped into the set (select's hard
         limit).  Callers cap their connection count to keep fds below
         it, so this is a last-resort shed: report nothing ready and
         pace the retry rather than crash the loop or spin hot. *)
      (try Unix.sleepf (Float.min 0.05 (Float.max 0.0 timeout))
       with Unix.Unix_error _ -> ());
      ([], [])
  | readable, writable, _ ->
      let self, readable = List.partition (fun fd -> fd == t.rpipe) readable in
      if self <> [] then drain t;
      (readable, writable)

let close t =
  if not (Atomic.exchange t.closed true) then begin
    (try Unix.close t.wpipe with Unix.Unix_error _ -> ());
    try Unix.close t.rpipe with Unix.Unix_error _ -> ()
  end
