module V1 = Api.V1
module Error = Api.Error
module B = Api.Binary

type config = {
  host : string;
  port : int;
  workers : int;
  queue_cap : int;
  registry_cap : int;
  max_batch : int;
  obs_out : string option;
  obs_interval : float;
  admin_port : int option;
  access_log : string option;
  access_sample : int;
  events_out : string option;
      (* flight-recorder ring, dumped once at drain (smallworld.events.v1) *)
  trace_out : string option;
      (* smallworld.trace.v1 sink: one record per traced request *)
  json_only : bool;
      (* refuse binary-framed clients with a JSON caller error *)
  cache_cap : int;
      (* route-cache capacity, 0 disables (see Cache) *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7441;
    workers = 4;
    queue_cap = 16;
    registry_cap = 8;
    max_batch = 4096;
    obs_out = None;
    obs_interval = 60.0;
    admin_port = None;
    access_log = None;
    access_sample = 1;
    events_out = None;
    trace_out = None;
    json_only = false;
    cache_cap = 4096;
  }

type codec = C_unknown | C_json | C_binary

(* Everything needed to finish a request's bookkeeping once its reply
   bytes hit the socket: stage timings, trace context, access-log
   fields.  Produced by the worker, consumed by the event loop when
   the reply chunk finishes flushing. *)
type fin = {
  f_req_id : int;
  f_client_id : int option;
  f_op : string option;
  f_instance : string option;
  f_outcome : string;
  f_t_start : float;
  f_queue_s : float;
  f_compute_s : float;
  f_render_s : float;
  f_traced : (V1.trace_ctx * Obs.Span.t) option;
  mutable f_flush_t0 : float;
}

type wchunk = { w_bytes : Bytes.t; mutable w_off : int; w_fin : fin option }

type conn = {
  c_fd : Unix.file_descr;
  mutable c_codec : codec;
  mutable c_rbuf : Bytes.t;
  mutable c_rlen : int;
  mutable c_scanned : int;  (* newline scan resume point (JSON codec) *)
  c_wq : wchunk Queue.t;
  mutable c_inflight : bool;  (* one dispatched request at a time *)
  mutable c_skip : int;  (* oversized-frame payload bytes left to discard *)
  mutable c_eof : bool;
  mutable c_dead : bool;
  mutable c_close_after_flush : bool;
}

type job = {
  j_conn : conn;
  j_payload : string;  (* JSON line (sans newline) or binary frame payload *)
  j_codec : codec;
  j_req_id : int;
  j_enqueued : float;
}

type completion = { d_conn : conn; d_bytes : Bytes.t; d_fin : fin option }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  admin : (Unix.file_descr * int) option;
  ex : Exec.t;
  ev : Evloop.t;
  (* Pending *requests* (not connections): the event loop refuses with
     [overloaded] past [queue_cap], workers pop. *)
  jobs : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  (* Finished requests travelling back to the event loop for writing. *)
  completions : completion Queue.t;
  cmutex : Mutex.t;
  (* Connection table; owned exclusively by the event-loop domain. *)
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable outstanding : int;  (* dispatched jobs without a collected completion *)
  alog : Access_log.t option;
  (* Mutex-guarded JSONL sink for per-request trace records. *)
  trace_log : (Mutex.t * out_channel) option;
  manifest_now : bool Atomic.t;
  (* Stage clocks cost one gettimeofday each; skip them entirely when
     neither obs nor the access log can consume the result. *)
  timing : bool;
  mutable worker_domains : unit Domain.t list;
  mutable aux_domains : unit Domain.t list;
}

(* Fallback tick for blocked loops (drain-flag checks in the admin and
   housekeeping domains; event-loop safety net).  The request path
   never waits on it: completions wake the event loop through the
   self-pipe. *)
let poll_interval = 0.2

(* select(2) rejects any fd >= FD_SETSIZE (1024 on Linux) with EINVAL,
   so the connection table must stay comfortably below it — the slack
   covers the listen fds, the self-pipe, log files, and stdio.  At the
   cap the listen fd is dropped from the readiness set (fresh
   connections wait in the accept backlog) and any burst that was
   already accepted is refused with [overloaded] and closed. *)
let max_conns = 960

(* A request line larger than this is hostile; drop the connection
   rather than buffer without bound. *)
let max_line_bytes = 16 * 1024 * 1024

(* Read-buffer ceiling: one maximal frame or line plus header slack. *)
let buf_cap_limit = max_line_bytes + 64

(* How long an admin connection may sit idle before it is dropped —
   the admin loop serves connections one at a time, so a silent client
   must not wedge scrapes. *)
let admin_idle_timeout = 10.0

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = restart_on_intr (fun () -> Unix.write_substring fd s off (len - off)) in
      go (off + n)
  in
  go 0

(* Best effort: the peer may already be gone; that must not take the
   admin loop down. *)
let try_write fd s =
  match write_all fd s with
  | () -> true
  | exception Unix.Unix_error _ -> false

let try_write_reply fd reply = try_write fd (V1.reply_line reply ^ "\n")

let overloaded_error cap =
  Error.make Error.Overloaded "request queue full (%d pending requests); retry later"
    cap

let conn_limit_error cap =
  Error.make Error.Overloaded
    "connection limit reached (%d concurrent connections); retry later" cap

let draining_error =
  Error.make Error.Draining "server is draining and no longer accepts work"

let json_only_error =
  Error.make Error.Bad_request
    "binary framing is disabled on this server; send newline-delimited JSON"

let oversized_frame_error declared =
  Error.make Error.Bad_request
    "frame payload of %d bytes exceeds the %d-byte limit; split the request"
    declared B.max_frame_bytes

let render_reply codec reply =
  match codec with
  | C_json -> V1.reply_line reply ^ "\n"
  | C_binary | C_unknown -> B.reply_frame reply

(* Read one newline-terminated line, polling the drain flag while
   blocked.  [None] on EOF, drain, oversized line, socket error, or an
   exceeded [give_up] instant.  Admin plane only — the main plane is
   event-driven. *)
let read_line_poll ?give_up t fd buf =
  let chunk = Bytes.create 8192 in
  let take_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
  in
  let expired () =
    match give_up with Some d -> Unix.gettimeofday () >= d | None -> false
  in
  let rec go () =
    match take_line () with
    | Some line -> Some line
    | None ->
        if Exec.draining t.ex then None
        else if Buffer.length buf > max_line_bytes then None
        else if expired () then None
        else
          let readable, _, _ =
            restart_on_intr (fun () -> Unix.select [ fd ] [] [] poll_interval)
          in
          if readable = [] then go ()
          else
            match restart_on_intr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) with
            | 0 -> None
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                go ()
            | exception Unix.Unix_error _ -> None
  in
  go ()

let wake_all t =
  Mutex.lock t.qmutex;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex

let outcome_of = function
  | V1.Failed e -> Error.code_string e.Error.code
  | _ -> "ok"

(* A synthesized span for a stage the span machinery did not itself
   time (queue wait, render, write): the trace record shows them as
   leaf children of the request root. *)
let stage_span name wall_s =
  { Obs.Span.name; count = 1; wall_s; alloc_bytes = 0.0; children = [] }

(* One smallworld.trace.v1 record for a traced request.  The server's
   span id is the negated request id: request ids are positive and
   clients declare positive span ids, so the two namespaces can never
   collide inside one merged trace file. *)
let write_trace_record t ~ctx ~req_id ~compute_tree ~queue_s ~compute_s ~render_s
    ~write_s ~t_start =
  Option.iter
    (fun (mu, oc) ->
      let root =
        {
          Obs.Span.name = "server.request";
          count = 1;
          wall_s = queue_s +. compute_s +. render_s +. write_s;
          alloc_bytes = compute_tree.Obs.Span.alloc_bytes;
          children =
            [
              stage_span "stage.queue_wait" queue_s;
              compute_tree;
              stage_span "stage.render" render_s;
              stage_span "stage.write" write_s;
            ];
        }
      in
      let record =
        {
          Obs.Export.tr_trace = ctx.V1.trace_id;
          tr_span = -req_id;
          tr_parent = Some ctx.V1.parent_span;
          tr_origin = "server";
          tr_t0 = t_start;
          tr_root = root;
        }
      in
      Mutex.lock mu;
      output_string oc (Obs.Export.trace_line record);
      output_char oc '\n';
      flush oc;
      Mutex.unlock mu)
    t.trace_log

(* ------------------------------------------------------------------ *)
(* Event-loop side: connection I/O, framing, dispatch.  Everything in
   this section runs on the single event-loop domain unless noted. *)

let finalize t fin ~write_s =
  if t.timing then
    Exec.observe_stages t.ex ?op:fin.f_op ~compute:fin.f_compute_s
      ~render:fin.f_render_s ~write:write_s ();
  Option.iter
    (fun (ctx, compute_tree) ->
      write_trace_record t ~ctx ~req_id:fin.f_req_id ~compute_tree
        ~queue_s:fin.f_queue_s ~compute_s:fin.f_compute_s ~render_s:fin.f_render_s
        ~write_s ~t_start:fin.f_t_start)
    fin.f_traced;
  Option.iter
    (fun alog ->
      Access_log.log alog
        {
          Access_log.req_id = fin.f_req_id;
          client_id = fin.f_client_id;
          op = Option.value fin.f_op ~default:"invalid";
          instance = fin.f_instance;
          outcome = fin.f_outcome;
          t_unix = fin.f_t_start;
          queue_s = fin.f_queue_s;
          compute_s = fin.f_compute_s;
          render_s = fin.f_render_s;
          write_s;
        })
    t.alog;
  Exec.end_request t.ex

(* Killing a connection must still retire its unflushed requests, or
   the inflight gauge (begin/end_request) never balances. *)
let mark_dead t conn =
  if not conn.c_dead then begin
    conn.c_dead <- true;
    Queue.iter
      (fun ch -> Option.iter (fun fin -> finalize t fin ~write_s:0.0) ch.w_fin)
      conn.c_wq;
    Queue.clear conn.c_wq
  end

(* Per-connection blast shield for the event loop: nothing above the
   loop catches, so an unexpected exception while parsing or flushing
   one connection must cost that connection, not the daemon. *)
let conn_protect t conn f =
  try f ()
  with _ -> mark_dead t conn

let rec try_flush t conn =
  if not conn.c_dead then
    match Queue.peek_opt conn.c_wq with
    | None -> ()
    | Some ch -> (
        let remaining = Bytes.length ch.w_bytes - ch.w_off in
        match Unix.write conn.c_fd ch.w_bytes ch.w_off remaining with
        | n ->
            ch.w_off <- ch.w_off + n;
            if ch.w_off = Bytes.length ch.w_bytes then begin
              ignore (Queue.pop conn.c_wq);
              Option.iter
                (fun fin ->
                  let write_s =
                    if t.timing then
                      Float.max 0.0 (Unix.gettimeofday () -. fin.f_flush_t0)
                    else 0.0
                  in
                  finalize t fin ~write_s)
                ch.w_fin;
              try_flush t conn
            end
            (* partial write: the socket buffer is full; select tells us
               when to resume *)
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (EINTR, _, _) -> try_flush t conn
        | exception Unix.Unix_error _ -> mark_dead t conn)

let enqueue_reply t conn ~codec reply =
  if not conn.c_dead then begin
    Queue.push
      { w_bytes = Bytes.of_string (render_reply codec reply); w_off = 0; w_fin = None }
      conn.c_wq;
    try_flush t conn
  end

let close_conn t conn =
  mark_dead t conn;
  Hashtbl.remove t.conns conn.c_fd;
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

(* Backpressure: stop reading while a request is dispatched or a reply
   is still flushing — a client cannot pump unbounded pipelined work
   into the daemon.  Oversized-frame discards keep reading regardless
   (the bytes are thrown away, not buffered). *)
let want_read conn =
  (not conn.c_dead) && (not conn.c_eof)
  && (not conn.c_close_after_flush)
  && (conn.c_skip > 0 || ((not conn.c_inflight) && Queue.is_empty conn.c_wq))

let should_close t conn =
  conn.c_dead
  || ((not conn.c_inflight)
     && Queue.is_empty conn.c_wq
     && (conn.c_eof || conn.c_close_after_flush || Exec.draining t.ex))

(* Worker -> event loop.  Wake only on the empty->non-empty
   transition: a non-empty queue already has an unconsumed wakeup byte
   in flight, so back-to-back completions cost one pipe write. *)
let push_completion t c =
  Mutex.lock t.cmutex;
  let was_empty = Queue.is_empty t.completions in
  Queue.push c t.completions;
  Mutex.unlock t.cmutex;
  if was_empty then Evloop.wakeup t.ev

(* Event loop -> workers.  Request ids are assigned here, on the one
   domain that reads sockets, so ids are ordered by arrival. *)
let dispatch t conn ~payload ~codec =
  Mutex.lock t.qmutex;
  if Queue.length t.jobs >= t.config.queue_cap then begin
    Mutex.unlock t.qmutex;
    (* Answer right here on the event loop — an overload can never
       wedge the daemon, and the connection survives to retry. *)
    Exec.note_rejected t.ex;
    enqueue_reply t conn ~codec
      { V1.reply_id = None; response = V1.Failed (overloaded_error t.config.queue_cap) }
  end
  else begin
    let job =
      {
        j_conn = conn;
        j_payload = payload;
        j_codec = codec;
        j_req_id = Exec.next_request_id t.ex;
        j_enqueued = Unix.gettimeofday ();
      }
    in
    Queue.push job t.jobs;
    Exec.note_queue_depth t.ex (Queue.length t.jobs);
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex;
    conn.c_inflight <- true;
    t.outstanding <- t.outstanding + 1
  end

let consume conn n =
  Bytes.blit conn.c_rbuf n conn.c_rbuf 0 (conn.c_rlen - n);
  conn.c_rlen <- conn.c_rlen - n;
  conn.c_scanned <- 0

(* The first byte of a connection selects the codec: 0xB1 is binary
   framing, anything else (in particular '{') stays on the JSON line
   codec, so old clients keep working unchanged. *)
let negotiate t conn =
  if conn.c_codec = C_unknown && conn.c_rlen > 0 then begin
    if Bytes.get conn.c_rbuf 0 = B.magic then
      if t.config.json_only then begin
        enqueue_reply t conn ~codec:C_json
          { V1.reply_id = None; response = V1.Failed json_only_error };
        conn.c_close_after_flush <- true
      end
      else conn.c_codec <- C_binary
    else conn.c_codec <- C_json
  end

(* Extract at most one request from the connection's read buffer and
   dispatch it.  At most one, because a dispatch flips [c_inflight]
   and the next request waits for the reply (FIFO per connection);
   oversized binary frames are refused inline and parsing continues. *)
let rec pump t conn =
  if not (conn.c_dead || conn.c_close_after_flush || Exec.draining t.ex) then begin
    if conn.c_skip > 0 && conn.c_rlen > 0 then begin
      let d = min conn.c_skip conn.c_rlen in
      consume conn d;
      conn.c_skip <- conn.c_skip - d
    end;
    if
      conn.c_skip = 0
      && (not conn.c_inflight)
      && Queue.is_empty conn.c_wq
      && conn.c_rlen > 0
    then begin
      negotiate t conn;
      match conn.c_codec with
      | C_unknown -> ()  (* json-only refusal queued above *)
      | C_json ->
          let rec find_nl i =
            if i >= conn.c_rlen then None
            else if Bytes.get conn.c_rbuf i = '\n' then Some i
            else find_nl (i + 1)
          in
          (match find_nl conn.c_scanned with
          | Some i ->
              let line = Bytes.sub_string conn.c_rbuf 0 i in
              consume conn (i + 1);
              dispatch t conn ~payload:line ~codec:C_json
          | None ->
              conn.c_scanned <- conn.c_rlen;
              if conn.c_rlen > max_line_bytes then mark_dead t conn)
      | C_binary -> (
          (* unsafe_to_string: [parse] only reads, and only within
             [0, c_rlen) while we hold the buffer. *)
          match
            B.parse (Bytes.unsafe_to_string conn.c_rbuf) ~pos:0 ~len:conn.c_rlen
          with
          | B.Need -> ()
          | B.Frame { payload; consumed } ->
              consume conn consumed;
              dispatch t conn ~payload ~codec:C_binary
          | B.Oversized { declared; consumed } ->
              consume conn consumed;
              conn.c_skip <- declared;
              enqueue_reply t conn ~codec:C_binary
                {
                  V1.reply_id = None;
                  response = V1.Failed (oversized_frame_error declared);
                };
              (* discard whatever payload bytes already arrived *)
              pump t conn
          | B.Bad_version v ->
              (* Structured refusal naming the supported range, framed
                 in the one version this server speaks, then close. *)
              enqueue_reply t conn ~codec:C_binary
                {
                  V1.reply_id = None;
                  response =
                    V1.Failed
                      (Error.make Error.Unsupported_version
                         "unsupported binary protocol version %d (this server \
                          speaks v%d only)"
                         v B.version);
                };
              conn.c_close_after_flush <- true
          | B.Bad msg ->
              enqueue_reply t conn ~codec:C_binary
                {
                  V1.reply_id = None;
                  response = V1.Failed (Error.make Error.Bad_request "bad frame: %s" msg);
                };
              conn.c_close_after_flush <- true)
    end
  end

let accept_new t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ when Hashtbl.length t.conns >= max_conns ->
        (* The listen fd leaves the readiness set at the cap, but a
           burst accepted in this very loop can still overshoot: refuse
           (best-effort JSON — the codec was never negotiated) and
           close, keeping every selected fd below FD_SETSIZE. *)
        Exec.note_rejected t.ex;
        ignore
          (try_write_reply fd
             { V1.reply_id = None; response = V1.Failed (conn_limit_error max_conns) });
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        Hashtbl.replace t.conns fd
          {
            c_fd = fd;
            c_codec = C_unknown;
            c_rbuf = Bytes.create 8192;
            c_rlen = 0;
            c_scanned = 0;
            c_wq = Queue.create ();
            c_inflight = false;
            c_skip = 0;
            c_eof = false;
            c_dead = false;
            c_close_after_flush = false;
          };
        go ()
  in
  go ()

let ensure_space conn =
  let cap = Bytes.length conn.c_rbuf in
  if cap - conn.c_rlen < 8192 && cap < buf_cap_limit then begin
    let ncap = min buf_cap_limit (max (cap * 2) (conn.c_rlen + 65536)) in
    let nb = Bytes.create ncap in
    Bytes.blit conn.c_rbuf 0 nb 0 conn.c_rlen;
    conn.c_rbuf <- nb
  end

let read_conn t conn =
  ensure_space conn;
  let free = Bytes.length conn.c_rbuf - conn.c_rlen in
  if free = 0 then
    (* only reachable past the buffer ceiling: hostile input *)
    mark_dead t conn
  else
    match Unix.read conn.c_fd conn.c_rbuf conn.c_rlen free with
    | 0 -> conn.c_eof <- true
    | n -> conn.c_rlen <- conn.c_rlen + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> mark_dead t conn

let process_completions t =
  let batch = Queue.create () in
  Mutex.lock t.cmutex;
  Queue.transfer t.completions batch;
  Mutex.unlock t.cmutex;
  if not (Queue.is_empty batch) then begin
    let now = if t.timing then Unix.gettimeofday () else 0.0 in
    Queue.iter
      (fun c ->
        t.outstanding <- t.outstanding - 1;
        let conn = c.d_conn in
        conn.c_inflight <- false;
        if conn.c_dead then
          (* the peer vanished mid-request; retire the bookkeeping *)
          Option.iter (fun fin -> finalize t fin ~write_s:0.0) c.d_fin
        else begin
          Option.iter (fun fin -> fin.f_flush_t0 <- now) c.d_fin;
          Queue.push { w_bytes = c.d_bytes; w_off = 0; w_fin = c.d_fin } conn.c_wq;
          conn_protect t conn (fun () -> try_flush t conn)
        end)
      batch
  end

(* At drain, jobs may be left in the queue after the workers exit (a
   dispatch can race the drain flag); refuse them from here so nothing
   is stranded. *)
let refuse_leftover_jobs t =
  let leftovers = ref [] in
  Mutex.lock t.qmutex;
  Queue.iter (fun j -> leftovers := j :: !leftovers) t.jobs;
  Queue.clear t.jobs;
  Mutex.unlock t.qmutex;
  List.iter
    (fun job ->
      t.outstanding <- t.outstanding - 1;
      job.j_conn.c_inflight <- false;
      Exec.note_rejected t.ex;
      enqueue_reply t job.j_conn ~codec:job.j_codec
        { V1.reply_id = None; response = V1.Failed draining_error })
    (List.rev !leftovers)

let queues_empty t =
  Mutex.lock t.qmutex;
  let jobs_empty = Queue.is_empty t.jobs in
  Mutex.unlock t.qmutex;
  Mutex.lock t.cmutex;
  let comps_empty = Queue.is_empty t.completions in
  Mutex.unlock t.cmutex;
  jobs_empty && comps_empty

(* The connection plane: one domain, readiness-driven.  Never blocks
   on a socket — reads and writes are non-blocking, replies produced
   by worker domains arrive through [completions] plus a self-pipe
   wakeup. *)
let event_loop t =
  Unix.set_nonblock t.listen_fd;
  let finished = ref false in
  while not !finished do
    process_completions t;
    let draining = Exec.draining t.ex in
    if draining then begin
      refuse_leftover_jobs t;
      (* parked workers must observe the flag and exit *)
      wake_all t
    end;
    Hashtbl.iter (fun _ conn -> conn_protect t conn (fun () -> pump t conn)) t.conns;
    let doomed =
      Hashtbl.fold (fun _ c acc -> if should_close t c then c :: acc else acc) t.conns []
    in
    List.iter (close_conn t) doomed;
    if draining && t.outstanding = 0 && Hashtbl.length t.conns = 0 && queues_empty t
    then finished := true
    else begin
      let read =
        ref
          (if draining || Hashtbl.length t.conns >= max_conns then []
           else [ t.listen_fd ])
      in
      let write = ref [] in
      Hashtbl.iter
        (fun fd conn ->
          if want_read conn then read := fd :: !read;
          if (not conn.c_dead) && not (Queue.is_empty conn.c_wq) then
            write := fd :: !write)
        t.conns;
      let readable, writable =
        Evloop.wait t.ev ~read:!read ~write:!write ~timeout:poll_interval
      in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt t.conns fd with
          | Some conn -> conn_protect t conn (fun () -> try_flush t conn)
          | None -> ())
        writable;
      List.iter
        (fun fd ->
          if fd == t.listen_fd then accept_new t
          else
            match Hashtbl.find_opt t.conns fd with
            | Some conn ->
                conn_protect t conn (fun () ->
                    read_conn t conn;
                    pump t conn)
            | None -> ())
        readable
    end
  done

(* ------------------------------------------------------------------ *)
(* Worker side: parse, execute, render.  Runs on the worker domains. *)

let process t (job : job) =
  let conn = job.j_conn in
  let queue_wait =
    if t.timing then Float.max 0.0 (Unix.gettimeofday () -. job.j_enqueued) else 0.0
  in
  if t.timing then Exec.note_queue_wait t.ex queue_wait;
  Exec.begin_request t.ex;
  Exec.note_accepted t.ex;
  let clock () = if t.timing then Unix.gettimeofday () else 0.0 in
  let t_start = clock () in
  let parsed =
    match job.j_codec with
    | C_json -> V1.envelope_of_line job.j_payload
    | C_binary | C_unknown -> B.envelope_of_payload job.j_payload
  in
  let client_id, op, instance, reply, traced =
    match parsed with
    | Error e -> (None, None, None, { V1.reply_id = None; response = V1.Failed e }, None)
    | Ok env ->
        let deadline =
          Option.map
            (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
            env.V1.deadline_ms
        in
        (* GC deltas around the compute stage; the reads only happen
           with obs on, preserving the zero-GC-read contract of
           SMALLWORLD_OBS=0. *)
        let gc0 = if Obs.Metrics.enabled then Some (Gc.quick_stat ()) else None in
        let handle () = Exec.handle t.ex ?deadline env.request in
        let response, traced =
          match env.trace with
          | Some ctx when t.trace_log <> None ->
              (* The probe snapshots this request's span tree (Exec's
                 server.<op> span plus the algorithm spans beneath it)
                 before it merges into the rolled-up profile. *)
              let response, tree = Obs.Span.probe ~name:"stage.compute" handle in
              (response, Option.map (fun tree -> (ctx, tree)) tree)
          | Some _ | None -> (handle (), None)
        in
        Option.iter
          (fun (g0 : Gc.stat) ->
            let g1 = Gc.quick_stat () in
            Exec.observe_gc t.ex
              ~minor_words:(g1.minor_words -. g0.minor_words)
              ~major_words:(g1.major_words -. g0.major_words)
              ~collections:
                (g1.minor_collections - g0.minor_collections
                + (g1.major_collections - g0.major_collections)))
          gc0;
        ( env.id,
          Some (V1.op_of_request env.request),
          V1.instance_of_request env.request,
          { V1.reply_id = env.id; response },
          traced )
  in
  let t_computed = clock () in
  let out = render_reply job.j_codec reply in
  let t_rendered = clock () in
  let fin =
    {
      f_req_id = job.j_req_id;
      f_client_id = client_id;
      f_op = op;
      f_instance = instance;
      f_outcome = outcome_of reply.V1.response;
      f_t_start = t_start;
      f_queue_s = queue_wait;
      f_compute_s = t_computed -. t_start;
      f_render_s = t_rendered -. t_computed;
      f_traced = traced;
      f_flush_t0 = 0.0;
    }
  in
  push_completion t { d_conn = conn; d_bytes = Bytes.of_string out; d_fin = Some fin };
  (* A drain ack must wake parked workers so they can observe the flag
     and exit. *)
  if reply.V1.response = V1.Drain_ack then wake_all t

let refuse_job t (job : job) =
  Exec.note_rejected t.ex;
  let out =
    render_reply job.j_codec { V1.reply_id = None; response = V1.Failed draining_error }
  in
  push_completion t { d_conn = job.j_conn; d_bytes = Bytes.of_string out; d_fin = None }

let worker_loop t =
  let rec next () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.jobs && not (Exec.draining t.ex) do
      Condition.wait t.qcond t.qmutex
    done;
    match Queue.take_opt t.jobs with
    | None -> Mutex.unlock t.qmutex  (* draining and nothing queued: exit *)
    | Some job ->
        Exec.note_queue_depth t.ex (Queue.length t.jobs);
        Mutex.unlock t.qmutex;
        if Exec.draining t.ex then refuse_job t job else process t job;
        next ()
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Admin plane: scrapes bypass the worker queue (and the compute
   mutex), so telemetry answers while every worker is busy.  Requests
   here are out-of-band — they do not move the server.* counters. *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let stats_reply t =
  { V1.reply_id = None; response = V1.Server_stats_reply (Exec.server_stats t.ex) }

let admin_restricted =
  Error.make Error.Bad_request
    "the admin port answers stats-server and health only; send compute requests \
     to the main port"

let serve_admin_connection t fd =
  let buf = Buffer.create 256 in
  let next_line () =
    read_line_poll ~give_up:(Unix.gettimeofday () +. admin_idle_timeout) t fd buf
  in
  let handle_json line =
    match V1.envelope_of_line line with
    | Error e -> { V1.reply_id = None; response = V1.Failed e }
    | Ok env -> (
        match env.V1.request with
        | V1.Server_stats -> { (stats_reply t) with V1.reply_id = env.id }
        | V1.Health ->
            {
              V1.reply_id = env.id;
              response =
                V1.Health_reply
                  {
                    V1.draining = Exec.draining t.ex;
                    instances = Registry.names (Exec.registry t.ex);
                    counters = Exec.counter_pairs t.ex;
                  };
            }
        | _ -> { V1.reply_id = env.id; response = V1.Failed admin_restricted })
  in
  let handle_http line =
    let path =
      match String.split_on_char ' ' line with _ :: p :: _ -> p | _ -> "/"
    in
    let body =
      match path with
      | "/metrics" ->
          (* server_stats refreshes the gauge mirrors the dump carries. *)
          let _ = Exec.server_stats t.ex in
          Some
            (http_response ~status:"200 OK"
               ~content_type:"text/plain; version=0.0.4"
               (Obs.Export.prometheus Obs.Metrics.default))
      | "/" | "/stats" | "/stats-server" ->
          Some
            (http_response ~status:"200 OK" ~content_type:"application/json"
               (V1.reply_line (stats_reply t) ^ "\n"))
      | _ ->
          Some
            (http_response ~status:"404 Not Found" ~content_type:"text/plain"
               "not found (try /metrics or /stats)\n")
    in
    Option.iter (fun s -> ignore (try_write fd s)) body
  in
  let run () =
    match next_line () with
    | None -> ()
    | Some line when String.length line >= 4 && String.sub line 0 4 = "GET " ->
        handle_http line
    | Some line ->
        let rec jloop line =
          if try_write_reply fd (handle_json line) then
            match next_line () with Some l -> jloop l | None -> ()
        in
        jloop line
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    run

let admin_loop t admin_fd =
  while not (Exec.draining t.ex) do
    let readable, _, _ =
      restart_on_intr (fun () -> Unix.select [ admin_fd ] [] [] poll_interval)
    in
    if readable <> [] && not (Exec.draining t.ex) then
      match restart_on_intr (fun () -> Unix.accept admin_fd) with
      | exception Unix.Unix_error _ -> ()
      | fd, _ -> serve_admin_connection t fd
  done;
  try Unix.close admin_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let write_manifest t =
  Option.iter
    (fun path ->
      let extra =
        List.map (fun (k, v) -> (k, Obs.Export.Int v)) (Exec.counter_pairs t.ex)
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Obs.Export.manifest_line ~extra ~experiment:"serve" ~seed:0 ~scale:"serve"
               ~registry:Obs.Metrics.default ~span:None ());
          output_char oc '\n'))
    t.config.obs_out

let request_manifest t = Atomic.set t.manifest_now true

(* Periodic telemetry flush: rewrite the manifest every
   [obs_interval] seconds (and on {!request_manifest}, wired to
   SIGHUP by bin/serve) and flush the access log, so a crashed or
   SIGKILLed daemon still leaves telemetry behind. *)
let housekeeping_loop t =
  let last = ref (Unix.gettimeofday ()) in
  while not (Exec.draining t.ex) do
    (try Unix.sleepf poll_interval with Unix.Unix_error _ -> ());
    let forced = Atomic.exchange t.manifest_now false in
    let due =
      t.config.obs_interval > 0.0
      && Unix.gettimeofday () -. !last >= t.config.obs_interval
    in
    if forced || due then begin
      write_manifest t;
      Option.iter Access_log.flush t.alog;
      last := Unix.gettimeofday ()
    end
  done

let listen_on ~host ~port ~backlog =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd backlog;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let create config =
  if config.workers < 1 then invalid_arg "Daemon.create: workers must be >= 1";
  if config.queue_cap < 1 then invalid_arg "Daemon.create: queue_cap must be >= 1";
  if config.access_sample < 1 then
    invalid_arg "Daemon.create: access_sample must be >= 1";
  if config.cache_cap < 0 then invalid_arg "Daemon.create: cache_cap must be >= 0";
  let listen_fd, bound_port =
    listen_on ~host:config.host ~port:config.port
      ~backlog:(config.queue_cap + config.workers)
  in
  let admin =
    match config.admin_port with
    | None -> None
    | Some p -> (
        match listen_on ~host:config.host ~port:p ~backlog:16 with
        | fd_port -> Some fd_port
        | exception e ->
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            raise e)
  in
  let alog =
    Option.map
      (fun path -> Access_log.create ~path ~sample:config.access_sample ())
      config.access_log
  in
  let trace_log =
    Option.map (fun path -> (Mutex.create (), Out_channel.open_text path)) config.trace_out
  in
  let t =
    {
      config;
      listen_fd;
      bound_port;
      admin;
      ex =
        Exec.create ~registry_cap:config.registry_cap ~max_batch:config.max_batch
          ~cache_cap:config.cache_cap ();
      ev = Evloop.create ();
      jobs = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      completions = Queue.create ();
      cmutex = Mutex.create ();
      conns = Hashtbl.create 64;
      outstanding = 0;
      alog;
      trace_log;
      manifest_now = Atomic.make false;
      timing = Obs.Metrics.enabled || config.access_log <> None;
      worker_domains = [];
      aux_domains = [];
    }
  in
  Exec.set_queue_depth_source t.ex (fun () ->
      Mutex.lock t.qmutex;
      let n = Queue.length t.jobs in
      Mutex.unlock t.qmutex;
      n);
  t.worker_domains <-
    List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  let aux = ref [] in
  Option.iter
    (fun (fd, _) -> aux := Domain.spawn (fun () -> admin_loop t fd) :: !aux)
    admin;
  if config.obs_out <> None || alog <> None then
    aux := Domain.spawn (fun () -> housekeeping_loop t) :: !aux;
  t.aux_domains <- !aux;
  t

let port t = t.bound_port
let admin_port t = Option.map snd t.admin
let exec t = t.ex

(* Safe from a signal handler: one atomic store and one self-pipe
   write; the event loop broadcasts to the workers on its next
   iteration. *)
let stop t =
  Exec.start_drain t.ex;
  Evloop.wakeup t.ev

let serve t =
  Obs.Span.with_ ~name:"server.serve" (fun () ->
      event_loop t;
      wake_all t;
      List.iter Domain.join t.worker_domains;
      t.worker_domains <- [];
      List.iter Domain.join t.aux_domains;
      t.aux_domains <- [];
      Evloop.close t.ev;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ()));
  write_manifest t;
  (* Drain-time finalization: the event ring (whatever survived the
     ring's overwrite window) lands alongside the access log. *)
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Obs.Export.write_events oc (Obs.Events.events ())))
    t.config.events_out;
  Option.iter (fun (_, oc) -> Out_channel.close oc) t.trace_log;
  Option.iter Access_log.close t.alog
