module V1 = Api.V1
module Error = Api.Error

type config = {
  host : string;
  port : int;
  workers : int;
  queue_cap : int;
  registry_cap : int;
  max_batch : int;
  obs_out : string option;
  obs_interval : float;
  admin_port : int option;
  access_log : string option;
  access_sample : int;
  events_out : string option;
      (* flight-recorder ring, dumped once at drain (smallworld.events.v1) *)
  trace_out : string option;
      (* smallworld.trace.v1 sink: one record per traced request *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7441;
    workers = 4;
    queue_cap = 16;
    registry_cap = 8;
    max_batch = 4096;
    obs_out = None;
    obs_interval = 60.0;
    admin_port = None;
    access_log = None;
    access_sample = 1;
    events_out = None;
    trace_out = None;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  admin : (Unix.file_descr * int) option;
  ex : Exec.t;
  (* Connections carry their enqueue instant so the worker that pops
     one can charge the wait to the queue_wait stage. *)
  queue : (Unix.file_descr * float) Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  alog : Access_log.t option;
  (* Mutex-guarded JSONL sink for per-request trace records; workers on
     any domain may append. *)
  trace_log : (Mutex.t * out_channel) option;
  manifest_now : bool Atomic.t;
  (* Stage clocks cost one gettimeofday each; skip them entirely when
     neither obs nor the access log can consume the result. *)
  timing : bool;
  mutable worker_domains : unit Domain.t list;
  mutable aux_domains : unit Domain.t list;
}

(* How often blocked loops re-check the drain flag. *)
let poll_interval = 0.2

(* A request line larger than this is hostile; drop the connection
   rather than buffer without bound. *)
let max_line_bytes = 16 * 1024 * 1024

(* How long an admin connection may sit idle before it is dropped —
   the admin loop serves connections one at a time, so a silent client
   must not wedge scrapes. *)
let admin_idle_timeout = 10.0

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = restart_on_intr (fun () -> Unix.write_substring fd s off (len - off)) in
      go (off + n)
  in
  go 0

(* Best effort: the peer may already be gone; that must not take a
   worker down. *)
let try_write fd s =
  match write_all fd s with
  | () -> true
  | exception Unix.Unix_error _ -> false

let try_write_reply fd reply = try_write fd (V1.reply_line reply ^ "\n")

let refuse fd err =
  ignore (try_write_reply fd { V1.reply_id = None; response = V1.Failed err });
  (try Unix.close fd with Unix.Unix_error _ -> ())

let overloaded_error cap =
  Error.make Error.Overloaded
    "request queue full (%d pending connections); retry later" cap

let draining_error =
  Error.make Error.Draining "server is draining and no longer accepts work"

(* Read one newline-terminated line, polling the drain flag while
   blocked.  [None] on EOF, drain, oversized line, socket error, or an
   exceeded [give_up] instant. *)
let read_line_poll ?give_up t fd buf =
  let chunk = Bytes.create 8192 in
  let take_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
  in
  let expired () =
    match give_up with Some d -> Unix.gettimeofday () >= d | None -> false
  in
  let rec go () =
    match take_line () with
    | Some line -> Some line
    | None ->
        if Exec.draining t.ex then None
        else if Buffer.length buf > max_line_bytes then None
        else if expired () then None
        else
          let readable, _, _ =
            restart_on_intr (fun () -> Unix.select [ fd ] [] [] poll_interval)
          in
          if readable = [] then go ()
          else
            match restart_on_intr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) with
            | 0 -> None
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                go ()
            | exception Unix.Unix_error _ -> None
  in
  go ()

let wake_all t =
  Mutex.lock t.qmutex;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex

let outcome_of = function
  | V1.Failed e -> Error.code_string e.Error.code
  | _ -> "ok"

(* A synthesized span for a stage the span machinery did not itself
   time (queue wait, render, write): the trace record shows them as
   leaf children of the request root. *)
let stage_span name wall_s =
  { Obs.Span.name; count = 1; wall_s; alloc_bytes = 0.0; children = [] }

(* One smallworld.trace.v1 record for a traced request.  The server's
   span id is the negated request id: request ids are positive and
   clients declare positive span ids, so the two namespaces can never
   collide inside one merged trace file. *)
let write_trace_record t ~ctx ~req_id ~compute_tree ~queue_s ~compute_s ~render_s
    ~write_s ~t_start =
  Option.iter
    (fun (mu, oc) ->
      let root =
        {
          Obs.Span.name = "server.request";
          count = 1;
          wall_s = queue_s +. compute_s +. render_s +. write_s;
          alloc_bytes = compute_tree.Obs.Span.alloc_bytes;
          children =
            [
              stage_span "stage.queue_wait" queue_s;
              compute_tree;
              stage_span "stage.render" render_s;
              stage_span "stage.write" write_s;
            ];
        }
      in
      let record =
        {
          Obs.Export.tr_trace = ctx.V1.trace_id;
          tr_span = -req_id;
          tr_parent = Some ctx.V1.parent_span;
          tr_origin = "server";
          tr_t0 = t_start;
          tr_root = root;
        }
      in
      Mutex.lock mu;
      output_string oc (Obs.Export.trace_line record);
      output_char oc '\n';
      flush oc;
      Mutex.unlock mu)
    t.trace_log

let serve_connection t ~queue_wait fd =
  let buf = Buffer.create 256 in
  (* The first request on a connection is charged the time the
     connection spent in the accept queue; follow-ups on the same
     connection never queued. *)
  let pending_wait = ref queue_wait in
  let rec loop () =
    if Exec.draining t.ex then ()
    else
      match read_line_poll t fd buf with
      | None -> ()
      | Some line ->
          let req_id = Exec.next_request_id t.ex in
          Exec.begin_request t.ex;
          Exec.note_accepted t.ex;
          let queue_s = !pending_wait in
          pending_wait := 0.0;
          let clock () = if t.timing then Unix.gettimeofday () else 0.0 in
          let t_start = clock () in
          let client_id, op, instance, reply, traced =
            match V1.envelope_of_line line with
            | Error e ->
                (None, None, None, { V1.reply_id = None; response = V1.Failed e }, None)
            | Ok env ->
                let deadline =
                  Option.map
                    (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
                    env.deadline_ms
                in
                (* GC deltas around the compute stage; the reads only
                   happen with obs on, preserving the zero-GC-read
                   contract of SMALLWORLD_OBS=0. *)
                let gc0 = if Obs.Metrics.enabled then Some (Gc.quick_stat ()) else None in
                let handle () = Exec.handle t.ex ?deadline env.request in
                let response, traced =
                  match env.trace with
                  | Some ctx when t.trace_log <> None ->
                      (* The probe snapshots this request's span tree
                         (Exec's server.<op> span plus the algorithm
                         spans beneath it) before it merges into the
                         rolled-up profile. *)
                      let response, tree = Obs.Span.probe ~name:"stage.compute" handle in
                      (response, Option.map (fun tree -> (ctx, tree)) tree)
                  | Some _ | None -> (handle (), None)
                in
                Option.iter
                  (fun (g0 : Gc.stat) ->
                    let g1 = Gc.quick_stat () in
                    Exec.observe_gc t.ex
                      ~minor_words:(g1.minor_words -. g0.minor_words)
                      ~major_words:(g1.major_words -. g0.major_words)
                      ~collections:
                        (g1.minor_collections - g0.minor_collections
                        + (g1.major_collections - g0.major_collections)))
                  gc0;
                ( env.id,
                  Some (V1.op_of_request env.request),
                  V1.instance_of_request env.request,
                  { V1.reply_id = env.id; response },
                  traced )
          in
          let t_computed = clock () in
          let out = V1.reply_line reply ^ "\n" in
          let t_rendered = clock () in
          let ok = try_write fd out in
          let t_written = clock () in
          let compute_s = t_computed -. t_start
          and render_s = t_rendered -. t_computed
          and write_s = t_written -. t_rendered in
          if t.timing then
            Exec.observe_stages t.ex ?op ~compute:compute_s ~render:render_s
              ~write:write_s ();
          Option.iter
            (fun (ctx, compute_tree) ->
              write_trace_record t ~ctx ~req_id ~compute_tree ~queue_s ~compute_s
                ~render_s ~write_s ~t_start)
            traced;
          Option.iter
            (fun alog ->
              Access_log.log alog
                {
                  Access_log.req_id;
                  client_id;
                  op = Option.value op ~default:"invalid";
                  instance;
                  outcome = outcome_of reply.V1.response;
                  t_unix = t_start;
                  queue_s;
                  compute_s;
                  render_s;
                  write_s;
                })
            t.alog;
          Exec.end_request t.ex;
          (* A drain ack must wake parked workers so they can observe
             the flag and exit. *)
          if reply.V1.response = V1.Drain_ack then wake_all t;
          if ok then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let worker_loop t =
  let rec next () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not (Exec.draining t.ex) do
      Condition.wait t.qcond t.qmutex
    done;
    if Exec.draining t.ex then begin
      (* Connections still queued never got to send a request: refuse
         them explicitly instead of dropping them on the floor. *)
      let leftovers = Queue.fold (fun acc (fd, _) -> fd :: acc) [] t.queue in
      Queue.clear t.queue;
      Mutex.unlock t.qmutex;
      List.iter
        (fun fd ->
          Exec.note_rejected t.ex;
          refuse fd draining_error)
        leftovers
    end
    else begin
      let fd, enqueued = Queue.pop t.queue in
      Exec.note_queue_depth t.ex (Queue.length t.queue);
      Mutex.unlock t.qmutex;
      let queue_wait =
        if t.timing then Float.max 0.0 (Unix.gettimeofday () -. enqueued) else 0.0
      in
      if t.timing then Exec.note_queue_wait t.ex queue_wait;
      serve_connection t ~queue_wait fd;
      next ()
    end
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Admin plane: scrapes bypass the worker queue (and the compute
   mutex), so telemetry answers while every worker is busy.  Requests
   here are out-of-band — they do not move the server.* counters. *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let stats_reply t =
  { V1.reply_id = None; response = V1.Server_stats_reply (Exec.server_stats t.ex) }

let admin_restricted =
  Error.make Error.Bad_request
    "the admin port answers stats-server and health only; send compute requests \
     to the main port"

let serve_admin_connection t fd =
  let buf = Buffer.create 256 in
  let next_line () =
    read_line_poll ~give_up:(Unix.gettimeofday () +. admin_idle_timeout) t fd buf
  in
  let handle_json line =
    match V1.envelope_of_line line with
    | Error e -> { V1.reply_id = None; response = V1.Failed e }
    | Ok env -> (
        match env.V1.request with
        | V1.Server_stats -> { (stats_reply t) with V1.reply_id = env.id }
        | V1.Health ->
            {
              V1.reply_id = env.id;
              response =
                V1.Health_reply
                  {
                    V1.draining = Exec.draining t.ex;
                    instances = Registry.names (Exec.registry t.ex);
                    counters = Exec.counter_pairs t.ex;
                  };
            }
        | _ -> { V1.reply_id = env.id; response = V1.Failed admin_restricted })
  in
  let handle_http line =
    let path =
      match String.split_on_char ' ' line with _ :: p :: _ -> p | _ -> "/"
    in
    let body =
      match path with
      | "/metrics" ->
          (* server_stats refreshes the gauge mirrors the dump carries. *)
          let _ = Exec.server_stats t.ex in
          Some
            (http_response ~status:"200 OK"
               ~content_type:"text/plain; version=0.0.4"
               (Obs.Export.prometheus Obs.Metrics.default))
      | "/" | "/stats" | "/stats-server" ->
          Some
            (http_response ~status:"200 OK" ~content_type:"application/json"
               (V1.reply_line (stats_reply t) ^ "\n"))
      | _ ->
          Some
            (http_response ~status:"404 Not Found" ~content_type:"text/plain"
               "not found (try /metrics or /stats)\n")
    in
    Option.iter (fun s -> ignore (try_write fd s)) body
  in
  let run () =
    match next_line () with
    | None -> ()
    | Some line when String.length line >= 4 && String.sub line 0 4 = "GET " ->
        handle_http line
    | Some line ->
        let rec jloop line =
          if try_write_reply fd (handle_json line) then
            match next_line () with Some l -> jloop l | None -> ()
        in
        jloop line
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    run

let admin_loop t admin_fd =
  while not (Exec.draining t.ex) do
    let readable, _, _ =
      restart_on_intr (fun () -> Unix.select [ admin_fd ] [] [] poll_interval)
    in
    if readable <> [] && not (Exec.draining t.ex) then
      match restart_on_intr (fun () -> Unix.accept admin_fd) with
      | exception Unix.Unix_error _ -> ()
      | fd, _ -> serve_admin_connection t fd
  done;
  try Unix.close admin_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let write_manifest t =
  Option.iter
    (fun path ->
      let extra =
        List.map (fun (k, v) -> (k, Obs.Export.Int v)) (Exec.counter_pairs t.ex)
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Obs.Export.manifest_line ~extra ~experiment:"serve" ~seed:0 ~scale:"serve"
               ~registry:Obs.Metrics.default ~span:None ());
          output_char oc '\n'))
    t.config.obs_out

let request_manifest t = Atomic.set t.manifest_now true

(* Periodic telemetry flush: rewrite the manifest every
   [obs_interval] seconds (and on {!request_manifest}, wired to
   SIGHUP by bin/serve) and flush the access log, so a crashed or
   SIGKILLed daemon still leaves telemetry behind. *)
let housekeeping_loop t =
  let last = ref (Unix.gettimeofday ()) in
  while not (Exec.draining t.ex) do
    (try Unix.sleepf poll_interval with Unix.Unix_error _ -> ());
    let forced = Atomic.exchange t.manifest_now false in
    let due =
      t.config.obs_interval > 0.0
      && Unix.gettimeofday () -. !last >= t.config.obs_interval
    in
    if forced || due then begin
      write_manifest t;
      Option.iter Access_log.flush t.alog;
      last := Unix.gettimeofday ()
    end
  done

let listen_on ~host ~port ~backlog =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd backlog;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let create config =
  if config.workers < 1 then invalid_arg "Daemon.create: workers must be >= 1";
  if config.queue_cap < 1 then invalid_arg "Daemon.create: queue_cap must be >= 1";
  if config.access_sample < 1 then
    invalid_arg "Daemon.create: access_sample must be >= 1";
  let listen_fd, bound_port =
    listen_on ~host:config.host ~port:config.port
      ~backlog:(config.queue_cap + config.workers)
  in
  let admin =
    match config.admin_port with
    | None -> None
    | Some p -> (
        match listen_on ~host:config.host ~port:p ~backlog:16 with
        | fd_port -> Some fd_port
        | exception e ->
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            raise e)
  in
  let alog =
    Option.map
      (fun path -> Access_log.create ~path ~sample:config.access_sample ())
      config.access_log
  in
  let trace_log =
    Option.map (fun path -> (Mutex.create (), Out_channel.open_text path)) config.trace_out
  in
  let t =
    {
      config;
      listen_fd;
      bound_port;
      admin;
      ex = Exec.create ~registry_cap:config.registry_cap ~max_batch:config.max_batch ();
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      alog;
      trace_log;
      manifest_now = Atomic.make false;
      timing = Obs.Metrics.enabled || config.access_log <> None;
      worker_domains = [];
      aux_domains = [];
    }
  in
  Exec.set_queue_depth_source t.ex (fun () ->
      Mutex.lock t.qmutex;
      let n = Queue.length t.queue in
      Mutex.unlock t.qmutex;
      n);
  t.worker_domains <-
    List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  let aux = ref [] in
  Option.iter
    (fun (fd, _) -> aux := Domain.spawn (fun () -> admin_loop t fd) :: !aux)
    admin;
  if config.obs_out <> None || alog <> None then
    aux := Domain.spawn (fun () -> housekeeping_loop t) :: !aux;
  t.aux_domains <- !aux;
  t

let port t = t.bound_port
let admin_port t = Option.map snd t.admin
let exec t = t.ex

let stop t =
  Exec.start_drain t.ex;
  wake_all t

let accept_loop t =
  while not (Exec.draining t.ex) do
    let readable, _, _ =
      restart_on_intr (fun () -> Unix.select [ t.listen_fd ] [] [] poll_interval)
    in
    if readable <> [] && not (Exec.draining t.ex) then begin
      match restart_on_intr (fun () -> Unix.accept t.listen_fd) with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
          Mutex.lock t.qmutex;
          if Queue.length t.queue >= t.config.queue_cap then begin
            Mutex.unlock t.qmutex;
            (* Backpressure: answer right here on the accept path, so
               an overload can never wedge the daemon. *)
            Exec.note_rejected t.ex;
            refuse fd (overloaded_error t.config.queue_cap)
          end
          else begin
            Queue.push (fd, Unix.gettimeofday ()) t.queue;
            Exec.note_queue_depth t.ex (Queue.length t.queue);
            Condition.signal t.qcond;
            Mutex.unlock t.qmutex
          end
    end
  done

let serve t =
  Obs.Span.with_ ~name:"server.serve" (fun () ->
      accept_loop t;
      wake_all t;
      List.iter Domain.join t.worker_domains;
      t.worker_domains <- [];
      List.iter Domain.join t.aux_domains;
      t.aux_domains <- [];
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ()));
  write_manifest t;
  (* Drain-time finalization: the event ring (whatever survived the
     ring's overwrite window) lands alongside the access log. *)
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Obs.Export.write_events oc (Obs.Events.events ())))
    t.config.events_out;
  Option.iter (fun (_, oc) -> Out_channel.close oc) t.trace_log;
  Option.iter Access_log.close t.alog
