module V1 = Api.V1
module Error = Api.Error

type config = {
  host : string;
  port : int;
  workers : int;
  queue_cap : int;
  registry_cap : int;
  max_batch : int;
  obs_out : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7441;
    workers = 4;
    queue_cap = 16;
    registry_cap = 8;
    max_batch = 4096;
    obs_out = None;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  ex : Exec.t;
  queue : Unix.file_descr Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable worker_domains : unit Domain.t list;
}

(* How often blocked loops re-check the drain flag. *)
let poll_interval = 0.2

(* A request line larger than this is hostile; drop the connection
   rather than buffer without bound. *)
let max_line_bytes = 16 * 1024 * 1024

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = restart_on_intr (fun () -> Unix.write_substring fd s off (len - off)) in
      go (off + n)
  in
  go 0

(* Best effort: the peer may already be gone; that must not take a
   worker down. *)
let try_write_reply fd reply =
  match write_all fd (V1.reply_line reply ^ "\n") with
  | () -> true
  | exception Unix.Unix_error _ -> false

let refuse fd err =
  ignore (try_write_reply fd { V1.reply_id = None; response = V1.Failed err });
  (try Unix.close fd with Unix.Unix_error _ -> ())

let overloaded_error cap =
  Error.make Error.Overloaded
    "request queue full (%d pending connections); retry later" cap

let draining_error =
  Error.make Error.Draining "server is draining and no longer accepts work"

(* Read one newline-terminated line, polling the drain flag while
   blocked.  [None] on EOF, drain, oversized line, or socket error. *)
let read_line_poll t fd buf =
  let chunk = Bytes.create 8192 in
  let take_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
  in
  let rec go () =
    match take_line () with
    | Some line -> Some line
    | None ->
        if Exec.draining t.ex then None
        else if Buffer.length buf > max_line_bytes then None
        else
          let readable, _, _ =
            restart_on_intr (fun () -> Unix.select [ fd ] [] [] poll_interval)
          in
          if readable = [] then go ()
          else
            match restart_on_intr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) with
            | 0 -> None
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                go ()
            | exception Unix.Unix_error _ -> None
  in
  go ()

let wake_all t =
  Mutex.lock t.qmutex;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex

let serve_connection t fd =
  let buf = Buffer.create 256 in
  let rec loop () =
    if Exec.draining t.ex then ()
    else
      match read_line_poll t fd buf with
      | None -> ()
      | Some line ->
          Exec.note_accepted t.ex;
          let keep_going =
            match V1.envelope_of_line line with
            | Error e -> try_write_reply fd { V1.reply_id = None; response = V1.Failed e }
            | Ok env ->
                let deadline =
                  Option.map
                    (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
                    env.deadline_ms
                in
                let response = Exec.handle t.ex ?deadline env.request in
                let ok = try_write_reply fd { V1.reply_id = env.id; response } in
                (* A drain ack must wake parked workers so they can
                   observe the flag and exit. *)
                if response = V1.Drain_ack then wake_all t;
                ok
          in
          if keep_going then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let worker_loop t =
  let rec next () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not (Exec.draining t.ex) do
      Condition.wait t.qcond t.qmutex
    done;
    if Exec.draining t.ex then begin
      (* Connections still queued never got to send a request: refuse
         them explicitly instead of dropping them on the floor. *)
      let leftovers = Queue.fold (fun acc fd -> fd :: acc) [] t.queue in
      Queue.clear t.queue;
      Mutex.unlock t.qmutex;
      List.iter
        (fun fd ->
          Exec.note_rejected t.ex;
          refuse fd draining_error)
        leftovers
    end
    else begin
      let fd = Queue.pop t.queue in
      Mutex.unlock t.qmutex;
      serve_connection t fd;
      next ()
    end
  in
  next ()

let create config =
  if config.workers < 1 then invalid_arg "Daemon.create: workers must be >= 1";
  if config.queue_cap < 1 then invalid_arg "Daemon.create: queue_cap must be >= 1";
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd addr
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd (config.queue_cap + config.workers);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      config;
      listen_fd;
      bound_port;
      ex = Exec.create ~registry_cap:config.registry_cap ~max_batch:config.max_batch ();
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      worker_domains = [];
    }
  in
  t.worker_domains <-
    List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let port t = t.bound_port
let exec t = t.ex

let stop t =
  Exec.start_drain t.ex;
  wake_all t

let write_manifest t =
  Option.iter
    (fun path ->
      let extra =
        List.map (fun (k, v) -> (k, Obs.Export.Int v)) (Exec.counter_pairs t.ex)
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Obs.Export.manifest_line ~extra ~experiment:"serve" ~seed:0 ~scale:"serve"
               ~registry:Obs.Metrics.default ~span:None ());
          output_char oc '\n'))
    t.config.obs_out

let accept_loop t =
  while not (Exec.draining t.ex) do
    let readable, _, _ =
      restart_on_intr (fun () -> Unix.select [ t.listen_fd ] [] [] poll_interval)
    in
    if readable <> [] && not (Exec.draining t.ex) then begin
      match restart_on_intr (fun () -> Unix.accept t.listen_fd) with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
          Mutex.lock t.qmutex;
          if Queue.length t.queue >= t.config.queue_cap then begin
            Mutex.unlock t.qmutex;
            (* Backpressure: answer right here on the accept path, so
               an overload can never wedge the daemon. *)
            Exec.note_rejected t.ex;
            refuse fd (overloaded_error t.config.queue_cap)
          end
          else begin
            Queue.push fd t.queue;
            Condition.signal t.qcond;
            Mutex.unlock t.qmutex
          end
    end
  done

let serve t =
  Obs.Span.with_ ~name:"server.serve" (fun () ->
      accept_loop t;
      wake_all t;
      List.iter Domain.join t.worker_domains;
      t.worker_domains <- [];
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ()));
  write_manifest t
