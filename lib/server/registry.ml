type entry = {
  e_name : string;
  e_inst : Girg.Instance.t;
  e_info : Api.V1.instance_info;
  e_gen : int;
  mutable refs : int;
  mutable stamp : int;
}

type t = {
  cap : int;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  (* Per-name insert counter.  Never evicted, so a generation observed
     for a name is monotone across evict + reinsert cycles — the route
     cache and clients key on it to detect staleness. *)
  gens : (string, int) Hashtbl.t;
  (* Replaced-but-still-pinned entries: dropped from [table] by an
     insert over their name while some handle still held them.  Pruned
     lazily on read — an entry leaves the list once its last holder
     releases it. *)
  mutable orphans : entry list;
  mutable clock : int;
}

type handle = entry

let create ~cap =
  if cap < 1 then invalid_arg "Registry.create: cap must be >= 1";
  {
    cap;
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    gens = Hashtbl.create 16;
    orphans = [];
    clock = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

(* Called under the mutex.  Picks the unpinned entry with the oldest
   stamp; [None] when everything is pinned. *)
let eviction_victim t =
  Hashtbl.fold
    (fun _ e best ->
      if e.refs > 0 then best
      else
        match best with
        | Some b when b.stamp <= e.stamp -> best
        | _ -> Some e)
    t.table None

let insert t ~name inst =
  locked t @@ fun () ->
  let evict_ok =
    if Hashtbl.mem t.table name || Hashtbl.length t.table < t.cap then Ok ()
    else
      match eviction_victim t with
      | Some victim ->
          Hashtbl.remove t.table victim.e_name;
          Ok ()
      | None ->
          Error
            (Api.Error.make Api.Error.Overloaded
               "registry full (%d instances, all pinned by in-flight queries)" t.cap)
  in
  match evict_ok with
  | Error e -> Error e
  | Ok () ->
      let info = Api.Render.instance_info ~name inst in
      let gen = 1 + Option.value ~default:0 (Hashtbl.find_opt t.gens name) in
      Hashtbl.replace t.gens name gen;
      let e =
        { e_name = name; e_inst = inst; e_info = info; e_gen = gen; refs = 0; stamp = 0 }
      in
      touch t e;
      (* Replace, not add: a shadowed old entry is dropped from the
         table here but survives as long as some handle still pins it —
         track it so [orphaned] can report live-but-replaced holders. *)
      (match Hashtbl.find_opt t.table name with
      | Some old when old.refs > 0 -> t.orphans <- old :: t.orphans
      | _ -> ());
      Hashtbl.replace t.table name e;
      Ok info

let acquire t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table name with
  | None ->
      Error
        (Api.Error.make Api.Error.Unknown_instance
           "no instance named %S is loaded (use load or sample first)" name)
  | Some e ->
      e.refs <- e.refs + 1;
      touch t e;
      Ok e

let instance (e : handle) = e.e_inst
let info (e : handle) = e.e_info
let handle_generation (e : handle) = e.e_gen

let generation t name =
  locked t @@ fun () -> Option.value ~default:0 (Hashtbl.find_opt t.gens name)

let generations t =
  locked t @@ fun () ->
  Hashtbl.fold
    (fun name e acc -> (name, e.e_gen) :: acc)
    t.table []
  |> List.sort compare

let release t (e : handle) =
  locked t @@ fun () ->
  assert (e.refs > 0);
  e.refs <- e.refs - 1

let names t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> compare b.stamp a.stamp)
  |> List.map (fun e -> e.e_name)

let size t = locked t @@ fun () -> Hashtbl.length t.table

let pinned t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ e acc -> if e.refs > 0 then acc + 1 else acc) t.table 0

let orphaned t =
  locked t @@ fun () ->
  t.orphans <- List.filter (fun e -> e.refs > 0) t.orphans;
  List.length t.orphans

let cap t = t.cap
