(** The daemon's instance registry: named instances, LRU-capped,
    refcounted.

    Invariants (see DESIGN.md "Serving"):
    - an entry with [refs > 0] is pinned: eviction skips it, so an
      in-flight query never loses its instance mid-route;
    - eviction among unpinned entries is strictly by last-use stamp
      (least recently acquired first);
    - inserting over an existing name replaces it in the table, but the
      old entry stays alive until its last holder releases it — lookups
      see the new instance, in-flight queries keep the old one;
    - when the table is full and every entry is pinned, insertion fails
      with [overloaded] rather than growing without bound. *)

type t

type handle
(** An acquired (pinned) instance.  Must be released exactly once. *)

val create : cap:int -> t
(** @raise Invalid_argument when [cap < 1]. *)

val insert :
  t -> name:string -> Girg.Instance.t -> (Api.V1.instance_info, Api.Error.t) result

val acquire : t -> string -> (handle, Api.Error.t) result
(** Pin the named instance ([unknown-instance] if absent) and mark it
    most recently used. *)

val instance : handle -> Girg.Instance.t
val info : handle -> Api.V1.instance_info

val handle_generation : handle -> int
(** The generation the held instance was inserted at (see
    {!generation}). *)

val generation : t -> string -> int
(** Monotonically increasing per-name insert counter: 0 before the
    first insert, bumped by every [insert] over the name, and — unlike
    the entry itself — never reset by eviction, so the route cache and
    clients can detect staleness across replace and evict/reinsert
    cycles. *)

val generations : t -> (string * int) list
(** [(name, generation)] for every currently registered instance,
    sorted by name (for [stats-server] output). *)

val release : t -> handle -> unit

val names : t -> string list
(** Registered names, most recently used first. *)

val size : t -> int

val pinned : t -> int
(** Entries currently held by at least one in-flight query. *)

val orphaned : t -> int
(** Replaced-but-still-pinned entries: an insert (load, sample or
    mutate) over an existing name drops the old entry from the table,
    but in-flight holders keep it alive until release.  Each such
    zombie counts here until its last holder lets go — exported as the
    [server.registry.orphaned] gauge, it makes replace-under-load
    visible (a persistently non-zero value means long queries are
    pinning superseded graph versions). *)

val cap : t -> int
