(* The process-wide shared pool.

   Library code (GIRG sampling, route batches) takes an optional
   [?pool] argument and falls back to this shared instance, so a single
   [set_jobs] call — wired to the [--jobs] CLI flags — retargets every
   hot path at once.  The pool is created lazily on first use with the
   job count from SMALLWORLD_JOBS (default 1), and its workers are
   joined through [at_exit]. *)

let shared : Pool.t option ref = ref None

let exit_hook_installed = ref false

let install_exit_hook () =
  if not !exit_hook_installed then begin
    exit_hook_installed := true;
    at_exit (fun () -> match !shared with Some p -> Pool.shutdown p | None -> ())
  end

let get () =
  match !shared with
  | Some p -> p
  | None ->
      let p = Pool.create () in
      shared := Some p;
      install_exit_hook ();
      p

let jobs () = Pool.jobs (get ())

let set_jobs n =
  let n = Pool.resolve_jobs ~jobs:n () in
  (match !shared with
  | Some p when Pool.jobs p = n -> ()
  | existing ->
      Option.iter Pool.shutdown existing;
      shared := Some (Pool.create ~jobs:n ());
      install_exit_hook ())
