(** Work pool on stdlib [Domain] (OCaml 5) — dependency-free.

    A pool owns [jobs - 1] persistent worker domains parked on a
    condition variable; the submitting domain always participates, so a
    pool with [jobs = 1] spawns nothing and executes every combinator as
    a plain sequential loop (the exact single-core code path).

    Scheduling is dynamic (workers claim task indices from an atomic
    counter), so which domain runs a task is nondeterministic — but all
    combinators combine results in task-index order, which makes a
    computation bit-reproducible whenever each task depends only on its
    own index (e.g. derives its RNG substream from a per-task key).  See
    DESIGN.md "Parallel execution".

    A task body that re-enters the pool (any pool) runs the nested batch
    inline on its own domain, so nesting cannot deadlock.  [run] itself
    must not be called concurrently from two domains on one pool. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] builds a pool with the given parallelism.
    [jobs = 0] means {!recommended}; omitting [jobs] resolves the
    [SMALLWORLD_JOBS] environment variable (defaulting to [1]) as
    described at {!resolve_jobs}.
    @raise Invalid_argument on negative [jobs]. *)

val jobs : t -> int
(** Resolved parallelism (>= 1). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Further batch submissions raise
    [Invalid_argument]; calling [shutdown] twice is harmless. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n body] executes [body i] for every [i] in [0..n-1], one
    task per index, and returns when all have finished.  If any body
    raised, the first exception recorded is re-raised (remaining tasks
    still run). *)

val parallel_for : t -> ?chunk_size:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] runs [body i] for [lo <= i < hi],
    grouping indices into contiguous chunks ([chunk_size] defaults to
    [max 1 ((hi-lo) / (8*jobs))]) to amortise task-claim overhead. *)

val map : t -> n:int -> (int -> 'a) -> 'a array
(** [map t ~n f] is [[| f 0; ...; f (n-1) |]], computed in parallel;
    the result array is in index order regardless of scheduling. *)

val map_reduce : t -> n:int -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> 'b
(** [map_reduce t ~n ~map ~reduce ~init] computes every [map i] in
    parallel, then folds [reduce] over the results sequentially in
    index order — deterministic even for non-commutative [reduce]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : ?jobs:int -> unit -> int
(** Resolution order: explicit [jobs] argument (0 = {!recommended}),
    else the [SMALLWORLD_JOBS] environment variable ([auto] or [0] =
    {!recommended}; unparseable values are ignored), else [1]. *)
