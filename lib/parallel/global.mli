(** The process-wide shared {!Pool}.

    Created lazily on first use with the job count resolved from the
    [SMALLWORLD_JOBS] environment variable (default 1); CLI entry
    points call {!set_jobs} after parsing [--jobs].  Worker domains are
    joined at process exit. *)

val get : unit -> Pool.t
(** The shared pool (created on first call). *)

val jobs : unit -> int
(** Parallelism of the shared pool. *)

val set_jobs : int -> unit
(** Replace the shared pool with one of the given parallelism
    ([0] = {!Pool.recommended}).  A no-op when the job count is
    unchanged; otherwise the previous pool is shut down. *)
