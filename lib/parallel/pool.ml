(* A dependency-free work pool on stdlib Domain (OCaml 5).

   The pool keeps [jobs - 1] persistent worker domains parked on a
   condition variable; the submitting domain participates in every
   batch, so [jobs = 1] never spawns a domain and never touches the
   synchronisation path — it is exactly a [for] loop over the task
   bodies.  A batch is an atomic task queue: workers claim indices with
   [Atomic.fetch_and_add], which balances load dynamically without any
   per-task locking.

   Determinism contract: the pool schedules WHICH domain runs a task
   nondeterministically, but callers that (a) give every task an
   independent input (e.g. an RNG substream derived from the task
   index/key alone) and (b) write results into per-task slots combined
   in task order afterwards get output that is bit-identical for every
   job count.  All combinators here ([map], [map_reduce],
   [parallel_for] over disjoint state) are built on that pattern.

   Reentrancy: a task body that calls back into any pool runs the inner
   batch inline on its own domain (a per-domain flag, see [inside_key]);
   this keeps nested parallelism deadlock-free.  [run] must not be
   called concurrently from two different domains on the same pool. *)

type batch = {
  body : int -> unit;
  n : int;
  next : int Atomic.t; (* next unclaimed task index *)
  completed : int Atomic.t; (* finished tasks (successful or failed) *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable current : batch option;
  mutable epoch : int; (* bumped once per published batch *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

(* True on any domain currently executing pool tasks (and on workers
   permanently): nested submissions from such a domain run inline. *)
let inside_key = Domain.DLS.new_key (fun () -> false)

let execute pool b =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      (try b.body i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set b.failed None (Some (e, bt))));
      let finished = 1 + Atomic.fetch_and_add b.completed 1 in
      if finished = b.n then begin
        (* Wake the submitter; taking the mutex avoids a lost wakeup
           between its completion check and its wait. *)
        Mutex.lock pool.mutex;
        Condition.broadcast pool.batch_done;
        Mutex.unlock pool.mutex
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop pool epoch_seen =
  Mutex.lock pool.mutex;
  while pool.epoch = epoch_seen && not pool.stopping do
    Condition.wait pool.work_ready pool.mutex
  done;
  let epoch = pool.epoch in
  let batch = pool.current in
  let stop = pool.stopping in
  Mutex.unlock pool.mutex;
  if not stop then begin
    (match batch with Some b -> execute pool b | None -> ());
    worker_loop pool epoch
  end

(* ------------------------------------------------------------------ *)
(* Job-count resolution *)

let max_jobs = 512

let recommended () = Domain.recommended_domain_count ()

let env_jobs () =
  match Sys.getenv_opt "SMALLWORLD_JOBS" with
  | None | Some "" -> None
  | Some s -> begin
      match String.trim s with
      | "auto" -> Some (recommended ())
      | s -> begin
          match int_of_string_opt s with
          | Some 0 -> Some (recommended ())
          | Some n when n >= 1 -> Some (min n max_jobs)
          | Some _ | None -> None (* ignore garbage; stay sequential *)
        end
    end

let resolve_jobs ?jobs () =
  match jobs with
  | Some 0 -> recommended ()
  | Some n when n >= 1 -> min n max_jobs
  | Some n -> invalid_arg (Printf.sprintf "Pool.resolve_jobs: bad job count %d" n)
  | None -> ( match env_jobs () with Some n -> n | None -> 1)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let create ?jobs () =
  let jobs = resolve_jobs ?jobs () in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      epoch = 0;
      stopping = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set inside_key true;
            worker_loop pool 0));
  pool

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* ------------------------------------------------------------------ *)
(* Batch submission *)

let run_inline ~n body =
  for i = 0 to n - 1 do
    body i
  done

let run t ~n body =
  if n <= 0 then ()
  else if t.jobs = 1 || n = 1 || Domain.DLS.get inside_key then run_inline ~n body
  else begin
    if t.stopping then invalid_arg "Pool.run: pool is shut down";
    let b =
      { body; n; next = Atomic.make 0; completed = Atomic.make 0; failed = Atomic.make None }
    in
    Mutex.lock t.mutex;
    t.current <- Some b;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* The submitting domain works through the same queue. *)
    Domain.DLS.set inside_key true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set inside_key false)
      (fun () -> execute t b);
    Mutex.lock t.mutex;
    while Atomic.get b.completed < b.n do
      Condition.wait t.batch_done t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    match Atomic.get b.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_for t ?chunk_size ~lo ~hi body =
  let span = hi - lo in
  if span > 0 then begin
    let chunk =
      match chunk_size with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_for: bad chunk_size %d" c)
      | None -> max 1 (span / (t.jobs * 8))
    in
    let chunks = (span + chunk - 1) / chunk in
    run t ~n:chunks (fun c ->
        let first = lo + (c * chunk) in
        let last = min hi (first + chunk) - 1 in
        for i = first to last do
          body i
        done)
  end

let map t ~n f =
  if n < 0 then invalid_arg "Pool.map: negative length";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run t ~n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce t ~n ~map:f ~reduce ~init =
  (* The reduction is a sequential left fold in task-index order, so it is
     deterministic even for non-commutative [reduce]. *)
  Array.fold_left reduce init (map t ~n f)
