type point = {
  hop : int;
  vertex : int;
  weight : float;
  objective : float;
  dist_to_target : float;
}

let of_walk ~(inst : Girg.Instance.t) ~target ~walk =
  let objective = Objective.girg_phi inst ~target in
  let phi = Objective.scorer objective in
  let xt = inst.positions.(target) in
  List.mapi
    (fun hop v ->
      {
        hop;
        vertex = v;
        weight = inst.weights.(v);
        objective = phi v;
        dist_to_target = Geometry.Torus.dist_linf inst.positions.(v) xt;
      })
    walk

let peak_weight_hop points =
  let best = ref 0 and best_w = ref neg_infinity in
  List.iter
    (fun p ->
      if p.weight > !best_w then begin
        best_w := p.weight;
        best := p.hop
      end)
    points;
  !best

let weight_doubling_exponents points =
  let peak = peak_weight_hop points in
  (* Only hops whose weight is clearly above the noise floor: the ratio
     log w' / log w is meaningless when log w ~ 0. *)
  let phase1 = List.filter (fun p -> p.hop <= peak && p.weight >= 4.0) points in
  let rec ratios = function
    | a :: (b :: _ as rest) -> (log b.weight /. log a.weight) :: ratios rest
    | [ _ ] | [] -> []
  in
  ratios phase1
