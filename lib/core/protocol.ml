type t = Greedy | Patch_dfs | Patch_history | Gravity_pressure

let all = [ Greedy; Patch_dfs; Patch_history; Gravity_pressure ]

let name = function
  | Greedy -> "greedy"
  | Patch_dfs -> "phi-dfs"
  | Patch_history -> "history"
  | Gravity_pressure -> "gravity-pressure"

(* The span makes every routed request traceable end to end (the name
   joins the server's request tree in smallworld.trace.v1 exports); one
   scope per route, not per hop, so the overhead is two clock reads per
   call — and none at all when observability is compiled off. *)
let run t ~graph ~objective ~source ?max_steps () =
  Obs.Span.with_ ~name:("route." ^ name t) @@ fun () ->
  match t with
  | Greedy -> Greedy.route ~graph ~objective ~source ?max_steps ()
  | Patch_dfs -> Patch_dfs.route ~graph ~objective ~source ?max_steps ()
  | Patch_history -> Patch_history.route ~graph ~objective ~source ?max_steps ()
  | Gravity_pressure -> Gravity_pressure.route ~graph ~objective ~source ?max_steps ()
