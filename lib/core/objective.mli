(** Objective functions for greedy routing (Section 2.2 of the paper).

    An objective scores vertices; routing protocols forward the message to
    the neighbour of maximum score.  Every objective is maximised at its
    target ([score target = infinity] by construction), which realises the
    paper's requirement that the target globally maximises phi. *)

type t = {
  name : string;
  target : int;
  score : int -> float;
  dense : (int -> float) option;
      (** Optional preresolved fast path: same values as [score], bit for
          bit, but evaluated against flat (structure-of-arrays) stores with
          (norm, dim)-specialised kernels.  Hot loops call {!scorer} to pick
          it up; [None] falls back to [score]. *)
}

val scorer : t -> int -> float
(** [scorer t] is [t.dense] when present, else [t.score].  Routing inner
    loops hoist this once per route. *)

val girg_phi : Girg.Instance.t -> target:int -> t
(** The paper's objective [phi(v) = w_v / (w_min n ||x_v - x_t||^d)]
    (Section 2.2) — maximising [phi] maximises the connection probability
    to the target.  [score target = infinity].  Carries a dense fast path
    over the instance's packed coordinate store. *)

val geometric :
  ?packed:Geometry.Torus.Packed.t ->
  positions:Geometry.Torus.point array ->
  target:int ->
  unit ->
  t
(** Degree-agnostic geometric routing ([9, 10] in the paper): score
    [1 / ||x_v - x_t||].  Used by experiment E11 to show objective-based
    greedy routing is more robust.  Pass [?packed] (the same coordinates in
    flat form) to enable the dense fast path. *)

val hyperbolic : Hyperbolic.Hrg.t -> target:int -> t
(** Geometric routing on hyperbolic random graphs: the objective [phi_H] of
    Section 11, [n / (w_t w_min sqrt(cosh d_H(v, t)))].  Maximising [phi_H]
    minimises the hyperbolic distance to the target.  Carries a dense fast
    path over [packed_coords]. *)

val of_fun : name:string -> target:int -> (int -> float) -> t
(** Wrap an arbitrary scoring function; the target's score is forced to
    [infinity].  (Lattice-greedy on Kleinberg graphs uses this with the
    negated Manhattan distance.)  No dense fast path. *)

val hash_unit : seed:int -> int -> float
(** [hash_unit ~seed v]: deterministic uniform in [[0, 1)] from one
    SplitMix64 mix of [(seed, v)].  Implemented on native ints (no boxed
    [Int64] per call); the output is pinned by regression tests. *)

val noisy_factor : seed:int -> spread:float -> t -> t
(** Theorem 3.5, bounded relaxation: multiply each vertex's score by a
    deterministic pseudo-random factor [exp u], [u] uniform in
    [[-spread, spread]] (a function of [seed] and the vertex id).  The
    target's score stays [infinity].  Chains off the base objective's
    {!scorer}, so a dense base keeps its fast path. *)

val noisy_polynomial :
  seed:int -> delta:float -> weights:float array -> t -> t
(** Theorem 3.5, full relaxation: multiply each score by
    [M_v^(u delta)] with [M_v = min(w_v, 1 / score v)] and [u] uniform in
    [[-1, 1]] — the [min(w_v, phi(v)^-1)^(o(1))] perturbation class.  With
    [delta = o(1)] all theorems survive; constant [delta] degrades routing
    (Remark 10.1), which experiment E6 demonstrates. *)

(** Per-route score memo: a vertex's score is computed at most once per
    route even when several protocol phases revisit it.  Values are cached
    by vertex id in flat arrays; a generation stamp invalidates the whole
    cache in O(1) when the scratch is reused for the next route.  Sound
    because every objective above is a pure function of the vertex id. *)
module Memo : sig
  type scratch
  (** Reusable backing store (score + stamp arrays).  Not thread-safe: use
      one scratch per domain. *)

  val create : unit -> scratch

  val wrap : scratch -> n:int -> t -> t
  (** [wrap scratch ~n t]: [t] with its evaluation path memoised over
      vertex ids [0 .. n-1].  Starts a fresh generation (previous cached
      values become invisible).  Observability counters are unaffected —
      routers count logical evaluations before calling the scorer. *)
end
