(* Iterative translation of the paper's Algorithm 2.  The mutually recursive
   EXPLORE / BACKTRACK_TO procedures become a two-state machine; the message
   token moves along one edge per state transition (except the in-place
   re-EXPLORE after resuming a paused DFS, line 27 of the pseudocode, which
   costs no step).  [m_last] always holds the vertex occupied immediately
   before the current one, which is what both the parent assignment
   (INIT_VERTEX) and the "children still unexplored" window in BACKTRACK_TO
   rely on. *)

type action = Explore of int | Backtrack of int

let c_routes = Obs.Metrics.counter "route.patch_dfs.routes"
let c_patches = Obs.Metrics.counter "route.patch_dfs.patches"
let c_backtracks = Obs.Metrics.counter "route.patch_dfs.backtracks"
let c_steps = Obs.Metrics.counter "route.patch_dfs.steps"
let c_visited = Obs.Metrics.counter "route.patch_dfs.visited"

let route ~graph ~objective ~source ?max_steps () =
  let open Objective in
  Obs.Metrics.incr c_routes;
  let recording = Obs.Events.recording () in
  let rid = if recording then Obs.Events.next_route_id () else 0 in
  let n = Sparse_graph.Graph.n graph in
  let max_steps = Option.value max_steps ~default:((200 * n) + 10_000) in
  let phi = Objective.scorer objective in
  let target = objective.target in
  let v_phi = Array.make n nan in
  let v_parent = Array.make n (-1) in
  let v_started = Array.make n false in
  let v_prev_phi = Array.make n neg_infinity in
  let seen = Array.make n false in
  let visited = ref 0 in
  let walk = ref [] in
  let steps = ref 0 in
  let cur = ref source in
  let m_phi = ref neg_infinity in
  let best_seen = ref neg_infinity in
  let m_last = ref source in
  let record v =
    walk := v :: !walk;
    if not seen.(v) then begin
      seen.(v) <- true;
      incr visited
    end
  in
  record source;
  if recording then
    Obs.Events.emit
      (Obs.Events.Route_hop { route = rid; hop = 0; vertex = source; objective = phi source });
  let move v =
    if v <> !cur then begin
      incr steps;
      m_last := !cur;
      cur := v;
      record v;
      if recording then
        Obs.Events.emit (Obs.Events.Route_hop { route = rid; hop = !steps; vertex = v; objective = phi v })
    end
  in
  (* Best neighbour of [v] overall (ties towards smaller id). *)
  let best_neighbor v =
    let best = ref (-1) and best_score = ref neg_infinity in
    Sparse_graph.Graph.iter_neighbors graph v (fun u ->
        let s = phi u in
        if s > !best_score then begin
          best := u;
          best_score := s
        end);
    if !best < 0 then None else Some (!best, !best_score)
  in
  let exists_geq v threshold =
    Sparse_graph.Graph.exists_neighbor graph v (fun u -> phi u >= threshold)
  in
  (* Best unexplored child during backtracking: u <> parent with
     m_phi <= phi u < bound. *)
  let best_child v ~parent ~bound =
    let best = ref (-1) and best_score = ref neg_infinity in
    Sparse_graph.Graph.iter_neighbors graph v (fun u ->
        if u <> parent then begin
          let s = phi u in
          if s >= !m_phi && s < bound && s > !best_score then begin
            best := u;
            best_score := s
          end
        end);
    if !best < 0 then None else Some !best
  in
  v_phi.(source) <- phi source;
  let action = ref (Explore source) in
  let result = ref None in
  while !result = None do
    if !steps >= max_steps then result := Some Outcome.Cutoff
    else begin
      match !action with
      | Explore v ->
          move v;
          if v = target then result := Some Outcome.Delivered
          else if v_phi.(v) = !m_phi then
            (* Already visited in the current Phi-DFS: return immediately. *)
            action := Backtrack !m_last
          else begin
            let pv = phi v in
            if pv > !best_seen then begin
              (* SET_NEW_PHI: only actually descend if a better neighbour
                 exists, otherwise just remember the new record. *)
              best_seen := pv;
              if exists_geq v pv then begin
                Obs.Metrics.incr c_patches;
                if recording then
                  Obs.Events.emit (Obs.Events.Patch_enter { route = rid; vertex = v; phi = pv });
                v_started.(v) <- true;
                v_prev_phi.(v) <- !m_phi;
                m_phi := pv
              end
            end;
            (* INIT_VERTEX *)
            v_phi.(v) <- !m_phi;
            v_parent.(v) <- !m_last;
            match best_neighbor v with
            | Some (u, pu) when pu >= !m_phi -> action := Explore u
            | Some _ | None -> action := Backtrack !m_last
          end
      | Backtrack v ->
          Obs.Metrics.incr c_backtracks;
          move v;
          let bound = phi !m_last in
          (match best_child v ~parent:v_parent.(v) ~bound with
          | Some u -> action := Explore u
          | None ->
              if v_started.(v) then begin
                (* RESET_TO_OLD_PHI: the inner DFS rooted at v failed and is
                   discarded; resume the outer DFS.  v counts as freshly
                   visited there, so enumerate all its children again — the
                   inner DFS only covered the sublevel set G[V >= phi(v)],
                   and regions hanging below high-objective neighbours are
                   reachable only by descending through them once more. *)
                v_started.(v) <- false;
                if recording then
                  Obs.Events.emit
                    (Obs.Events.Patch_exit { route = rid; vertex = v; phi = v_prev_phi.(v) });
                m_phi := v_prev_phi.(v);
                v_phi.(v) <- v_prev_phi.(v);
                match best_neighbor v with
                | Some (u, pu) when pu >= !m_phi -> action := Explore u
                | Some _ | None ->
                    if v_parent.(v) = v then result := Some Outcome.Exhausted
                    else action := Backtrack v_parent.(v)
              end
              else if v_parent.(v) = v then
                (* Self-backtracking with nothing left is a fixed point of
                   the walk: the component is exhausted. *)
                result := Some Outcome.Exhausted
              else action := Backtrack v_parent.(v))
    end
  done;
  match !result with
  | None -> assert false
  | Some status ->
      Obs.Metrics.add c_steps !steps;
      Obs.Metrics.add c_visited !visited;
      { Outcome.status; steps = !steps; visited = !visited; walk = List.rev !walk }
