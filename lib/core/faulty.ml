let route ~graph ~objective ~source ~rng ~failure_prob ?max_steps () =
  let open Objective in
  if not (failure_prob >= 0.0 && failure_prob < 1.0) then
    invalid_arg "Faulty.route: failure_prob must lie in [0, 1)";
  let max_steps = Option.value max_steps ~default:(Sparse_graph.Graph.n graph + 1) in
  let target = objective.target in
  let phi = Objective.scorer objective in
  let edge_up () = failure_prob = 0.0 || Prng.Rng.unit_float rng >= failure_prob in
  let rec go v score_v steps walk =
    if v = target then
      { Outcome.status = Delivered; steps; visited = steps + 1; walk = List.rev walk }
    else if steps >= max_steps then
      { Outcome.status = Cutoff; steps; visited = steps + 1; walk = List.rev walk }
    else begin
      (* Best neighbour among the links that are up this round. *)
      let best = ref (-1) and best_score = ref neg_infinity in
      Sparse_graph.Graph.iter_neighbors graph v (fun u ->
          if edge_up () then begin
            let s = phi u in
            if s > !best_score then begin
              best := u;
              best_score := s
            end
          end);
      if !best >= 0 && !best_score > score_v then
        go !best !best_score (steps + 1) (!best :: walk)
      else { Outcome.status = Dead_end; steps; visited = steps + 1; walk = List.rev walk }
    end
  in
  go source (phi source) 0 [ source ]
