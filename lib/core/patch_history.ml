let route ~graph ~objective ~source ?max_steps () =
  let open Objective in
  let n = Sparse_graph.Graph.n graph in
  let max_steps = Option.value max_steps ~default:((50 * n) + 1000) in
  let phi = Objective.scorer objective in
  let target = objective.target in
  let seen = Array.make n false in
  let tree_parent = Array.make n (-1) in
  let tree_depth = Array.make n 0 in
  (* Per visited vertex: neighbours sorted by descending objective and a
     cursor to the best not-yet-consumed one. *)
  let sorted_nbrs : int array array = Array.make n [||] in
  let cursor = Array.make n 0 in
  let frontier : int Binary_heap.t = Binary_heap.create () in
  let visited = ref 0 in
  let steps = ref 0 in
  let walk = ref [] in
  let record v = walk := v :: !walk in
  (* Best unvisited neighbour of [v], advancing the cursor past visited
     ones.  Returns its objective or [neg_infinity]. *)
  let rec frontier_score v =
    let nbrs = sorted_nbrs.(v) in
    if cursor.(v) >= Array.length nbrs then neg_infinity
    else if seen.(nbrs.(cursor.(v))) then begin
      cursor.(v) <- cursor.(v) + 1;
      frontier_score v
    end
    else phi nbrs.(cursor.(v))
  in
  let consume v =
    let u = sorted_nbrs.(v).(cursor.(v)) in
    cursor.(v) <- cursor.(v) + 1;
    u
  in
  let visit v ~parent =
    seen.(v) <- true;
    incr visited;
    tree_parent.(v) <- parent;
    tree_depth.(v) <- (if parent < 0 then 0 else tree_depth.(parent) + 1);
    let nbrs = Sparse_graph.Graph.neighbors graph v in
    (* Descending objective; ascending id on ties for determinism. *)
    Array.sort
      (fun a b ->
        let c = compare (phi b) (phi a) in
        if c <> 0 then c else compare a b)
      nbrs;
    sorted_nbrs.(v) <- nbrs;
    cursor.(v) <- 0;
    let s = frontier_score v in
    if s > neg_infinity then Binary_heap.push frontier s v
  in
  (* Path from [a] to [b] through the visited tree (via their LCA); the
     message physically retraces it, so every hop counts as a step. *)
  let tree_path a b =
    let rec ancestors v acc = if v < 0 then acc else ancestors tree_parent.(v) (v :: acc) in
    let chain_a = ancestors a [] and chain_b = ancestors b [] in
    let rec split ca cb =
      match (ca, cb) with
      | x :: ca', y :: cb' when x = y -> begin
          match (ca', cb') with
          | x' :: _, y' :: _ when x' = y' -> split ca' cb'
          | _ -> (x, ca', cb')
        end
      | _ -> invalid_arg "tree_path: disjoint trees"
    in
    let lca, rest_a, rest_b = split chain_a chain_b in
    (* Path: a, ..., lca, ..., b  — rest_a reversed gives a..(just below lca). *)
    List.rev rest_a @ (lca :: rest_b)
  in
  let move_along path =
    (* path starts at the current vertex; each subsequent element is a hop. *)
    match path with
    | [] -> ()
    | _ :: hops ->
        List.iter
          (fun v ->
            incr steps;
            record v)
          hops
  in
  (* Best neighbour overall, visited or not — (P1) requires moving to it on
     a first visit whenever it improves. *)
  let best_neighbor v =
    let best = ref (-1) and best_score = ref neg_infinity in
    Sparse_graph.Graph.iter_neighbors graph v (fun u ->
        let s = phi u in
        if s > !best_score then begin
          best := u;
          best_score := s
        end);
    (!best, !best_score)
  in
  let result = ref None in
  let cur = ref source in
  record source;
  visit source ~parent:(-1);
  while !result = None do
    let v = !cur in
    if v = target then result := Some Outcome.Delivered
    else if !steps >= max_steps then result := Some Outcome.Cutoff
    else begin
      let b, b_score = best_neighbor v in
      if b >= 0 && b_score > phi v then begin
        (* Greedy move.  The objective strictly increases along greedy
           moves, so revisits cannot cycle; an already-visited best
           neighbour just means the walk continues from there. *)
        (* No frontier bookkeeping needed: once b is marked seen, every
           cursor skips it lazily. *)
        incr steps;
        record b;
        if not seen.(b) then visit b ~parent:v;
        cur := b
      end
      else begin
        (* Local optimum: jump to the visited vertex owning the globally
           best unexplored edge.  Lazy heap: re-validate priorities. *)
        let rec next_jump () =
          match Binary_heap.pop_max frontier with
          | None -> None
          | Some (p, w) ->
              let s' = frontier_score w in
              if s' = neg_infinity then next_jump ()
              else if s' < p then begin
                (* Stale: its best unexplored changed; re-queue. *)
                Binary_heap.push frontier s' w;
                next_jump ()
              end
              else Some w
        in
        match next_jump () with
        | None -> result := Some Outcome.Exhausted
        | Some w ->
            if w <> v then move_along (tree_path v w);
            let u = consume w in
            let s' = frontier_score w in
            if s' > neg_infinity then Binary_heap.push frontier s' w;
            incr steps;
            record u;
            visit u ~parent:w;
            cur := u
      end
    end
  done;
  match !result with
  | None -> assert false
  | Some status -> { Outcome.status; steps = !steps; visited = !visited; walk = List.rev !walk }
