type mode = Gravity | Pressure of float (* objective of the vertex we got stuck at *)

let c_routes = Obs.Metrics.counter "route.gravity.routes"
let c_stuck = Obs.Metrics.counter "route.gravity.stuck_events"
let c_pressure_steps = Obs.Metrics.counter "route.gravity.pressure_steps"
let c_steps = Obs.Metrics.counter "route.gravity.steps"
let c_visited = Obs.Metrics.counter "route.gravity.visited"

let route ~graph ~objective ~source ?max_steps () =
  let open Objective in
  Obs.Metrics.incr c_routes;
  let recording = Obs.Events.recording () in
  let rid = if recording then Obs.Events.next_route_id () else 0 in
  let n = Sparse_graph.Graph.n graph in
  let max_steps = Option.value max_steps ~default:((50 * n) + 1000) in
  let phi = Objective.scorer objective in
  let target = objective.target in
  let visits = Array.make n 0 in
  let seen = Array.make n false in
  let visited = ref 0 in
  let steps = ref 0 in
  let walk = ref [] in
  let record v =
    walk := v :: !walk;
    visits.(v) <- visits.(v) + 1;
    if not seen.(v) then begin
      seen.(v) <- true;
      incr visited
    end
  in
  record source;
  if recording then
    Obs.Events.emit
      (Obs.Events.Route_hop { route = rid; hop = 0; vertex = source; objective = phi source });
  let hop_event u =
    if recording then
      Obs.Events.emit (Obs.Events.Route_hop { route = rid; hop = !steps; vertex = u; objective = phi u })
  in
  let best_neighbor v =
    let best = ref (-1) and best_score = ref neg_infinity in
    Sparse_graph.Graph.iter_neighbors graph v (fun u ->
        let s = phi u in
        if s > !best_score then begin
          best := u;
          best_score := s
        end);
    (!best, !best_score)
  in
  (* Least-visited neighbour; ties broken towards better objective, then
     smaller id (the iteration order). *)
  let pressure_neighbor v =
    let best = ref (-1) and best_visits = ref max_int and best_score = ref neg_infinity in
    Sparse_graph.Graph.iter_neighbors graph v (fun u ->
        let c = visits.(u) and s = phi u in
        if c < !best_visits || (c = !best_visits && s > !best_score) then begin
          best := u;
          best_visits := c;
          best_score := s
        end);
    !best
  in
  let result = ref None in
  let cur = ref source in
  let mode = ref Gravity in
  while !result = None do
    let v = !cur in
    if v = target then result := Some Outcome.Delivered
    else if !steps >= max_steps then result := Some Outcome.Cutoff
    else begin
      (match !mode with
      | Pressure stuck when phi v > stuck ->
          mode := Gravity;
          if recording then
            Obs.Events.emit (Obs.Events.Phase_switch { route = rid; vertex = v; phase = "gravity" })
      | Pressure _ | Gravity -> ());
      match !mode with
      | Gravity ->
          let u, s = best_neighbor v in
          if u >= 0 && s > phi v then begin
            incr steps;
            record u;
            hop_event u;
            cur := u
          end
          else if u < 0 then result := Some Outcome.Dead_end (* isolated vertex *)
          else begin
            (* Stuck: remember the local optimum and take a pressure hop. *)
            Obs.Metrics.incr c_stuck;
            mode := Pressure (phi v);
            if recording then
              Obs.Events.emit (Obs.Events.Phase_switch { route = rid; vertex = v; phase = "pressure" });
            let u = pressure_neighbor v in
            incr steps;
            Obs.Metrics.incr c_pressure_steps;
            record u;
            hop_event u;
            cur := u
          end
      | Pressure _ ->
          let u = pressure_neighbor v in
          incr steps;
          Obs.Metrics.incr c_pressure_steps;
          record u;
          hop_event u;
          cur := u
    end
  done;
  match !result with
  | None -> assert false
  | Some status ->
      Obs.Metrics.add c_steps !steps;
      Obs.Metrics.add c_visited !visited;
      { Outcome.status; steps = !steps; visited = !visited; walk = List.rev !walk }
