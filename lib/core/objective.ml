type t = {
  name : string;
  target : int;
  score : int -> float;
  dense : (int -> float) option;
}

let scorer t = match t.dense with Some f -> f | None -> t.score

let of_fun ~name ~target f =
  { name; target; score = (fun v -> if v = target then infinity else f v); dense = None }

let girg_phi (inst : Girg.Instance.t) ~target =
  let p = inst.params in
  let denom = p.Girg.Params.w_min *. float_of_int p.Girg.Params.n in
  let dim = p.Girg.Params.dim in
  let xt = inst.positions.(target) in
  let dist_fn = Geometry.Torus.dist_fn p.Girg.Params.norm in
  let score v =
    let dist = dist_fn inst.positions.(v) xt in
    let dist_d =
      match dim with
      | 1 -> dist
      | 2 -> dist *. dist
      | 3 -> dist *. dist *. dist
      | _ -> dist ** float_of_int dim
    in
    inst.weights.(v) /. (denom *. dist_d)
  in
  (* Dense fast path: the (norm, dim)-specialised strided kernel reads the
     instance's flat coordinate store; same floats, same operation order as
     [score] above. *)
  let weights = inst.weights in
  let dist_to = Geometry.Torus.Packed.dist_to_fn inst.packed p.Girg.Params.norm in
  let dense =
    match dim with
    | 1 ->
        fun v ->
          if v = target then infinity else weights.(v) /. (denom *. dist_to v xt)
    | 2 ->
        fun v ->
          if v = target then infinity
          else begin
            let dist = dist_to v xt in
            weights.(v) /. (denom *. (dist *. dist))
          end
    | 3 ->
        fun v ->
          if v = target then infinity
          else begin
            let dist = dist_to v xt in
            weights.(v) /. (denom *. (dist *. dist *. dist))
          end
    | _ ->
        let dimf = float_of_int dim in
        fun v ->
          if v = target then infinity
          else begin
            let dist = dist_to v xt in
            weights.(v) /. (denom *. (dist ** dimf))
          end
  in
  {
    name = "phi";
    target;
    score = (fun v -> if v = target then infinity else score v);
    dense = Some dense;
  }

let geometric ?packed ~positions ~target () =
  let xt = positions.(target) in
  let dense =
    match packed with
    | None -> None
    | Some pk ->
        let dist_to = Geometry.Torus.Packed.dist_to_fn pk Geometry.Torus.Linf in
        Some (fun v -> if v = target then infinity else 1.0 /. dist_to v xt)
  in
  let base =
    of_fun ~name:"geometric" ~target (fun v ->
        1.0 /. Geometry.Torus.dist_linf positions.(v) xt)
  in
  { base with dense }

let hyperbolic (h : Hyperbolic.Hrg.t) ~target =
  let p = h.params in
  let nf = float_of_int p.Hyperbolic.Hrg.n in
  let w_min = exp (-.p.Hyperbolic.Hrg.radius_c /. 2.0) in
  let ct = h.coords.(target) in
  let wt = h.weights.(target) in
  let score v =
    let a = h.coords.(v) in
    let dangle =
      let d = abs_float (a.Hyperbolic.Hrg.angle -. ct.Hyperbolic.Hrg.angle) in
      if d > Float.pi then (2.0 *. Float.pi) -. d else d
    in
    let cosh_dh =
      cosh (a.Hyperbolic.Hrg.r -. ct.Hyperbolic.Hrg.r)
      +. ((1.0 -. cos dangle) *. sinh a.Hyperbolic.Hrg.r *. sinh ct.Hyperbolic.Hrg.r)
    in
    nf /. (wt *. w_min *. sqrt (Float.max 1.0 cosh_dh))
  in
  (* Dense fast path over the flat [r; angle] store.  [sinh ct.r] and
     [wt *. w_min] are trailing/leading factors of left-associated products,
     so hoisting them preserves every intermediate bit pattern. *)
  let pc = h.packed_coords in
  let ct_r = ct.Hyperbolic.Hrg.r in
  let ct_angle = ct.Hyperbolic.Hrg.angle in
  let sinh_ct = sinh ct_r in
  let lead = wt *. w_min in
  let dense v =
    if v = target then infinity
    else begin
      let ar = pc.(2 * v) in
      let aa = pc.((2 * v) + 1) in
      let dangle =
        let d = abs_float (aa -. ct_angle) in
        if d > Float.pi then (2.0 *. Float.pi) -. d else d
      in
      let cosh_dh = cosh (ar -. ct_r) +. ((1.0 -. cos dangle) *. sinh ar *. sinh_ct) in
      nf /. (lead *. sqrt (Float.max 1.0 cosh_dh))
    end
  in
  {
    name = "phi_H";
    target;
    score = (fun v -> if v = target then infinity else score v);
    dense = Some dense;
  }

(* Deterministic per-vertex uniform in [0, 1): one SplitMix64-style mix of
   (seed, vertex).  Stable across calls, so an objective scores consistently
   during a whole routing run.

   The 64-bit mix runs on (hi32, lo32) native-int halves — no boxed [Int64]
   per evaluation.  Native [( * )] wraps mod 2^63, which keeps the low 32
   bits of any product exact; the low word of a 32x32 multiply is assembled
   from 16-bit limbs so no intermediate exceeds 63 bits.  Output is
   bit-identical to the boxed [Int64] formulation (pinned by tests). *)

let mask32 = 0xFFFFFFFF

let hash_unit ~seed v =
  (* z = seed + (v + 1) * 0x9E3779B97F4A7C15 *)
  let m = v + 1 in
  let ah = (m asr 32) land mask32 in
  let al = m land mask32 in
  let a0 = al land 0xFFFF in
  let a1 = al lsr 16 in
  (* constant limbs of 0x9E3779B97F4A7C15 *)
  let p00 = a0 * 0x7C15 in
  let mid = (p00 lsr 16) + (a1 * 0x7C15) + (a0 * 0x7F4A) in
  let lo = (p00 land 0xFFFF) lor ((mid land 0xFFFF) lsl 16) in
  let hi =
    ((mid lsr 16) + (a1 * 0x7F4A) + ((al * 0x9E3779B9) land mask32)
    + ((ah * 0x7F4A7C15) land mask32))
    land mask32
  in
  let sum = lo + (seed land mask32) in
  let zl = sum land mask32 in
  let zh = (hi + ((seed asr 32) land mask32) + (sum lsr 32)) land mask32 in
  (* z ^= z >>> 30 *)
  let zl = zl lxor ((zl lsr 30) lor ((zh lsl 2) land mask32)) in
  let zh = zh lxor (zh lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let a0 = zl land 0xFFFF in
  let a1 = zl lsr 16 in
  let p00 = a0 * 0xE5B9 in
  let mid = (p00 lsr 16) + (a1 * 0xE5B9) + (a0 * 0x1CE4) in
  let lo = (p00 land 0xFFFF) lor ((mid land 0xFFFF) lsl 16) in
  let hi =
    ((mid lsr 16) + (a1 * 0x1CE4) + ((zl * 0xBF58476D) land mask32)
    + ((zh * 0x1CE4E5B9) land mask32))
    land mask32
  in
  let zl = lo and zh = hi in
  (* z ^= z >>> 27 *)
  let zl = zl lxor ((zl lsr 27) lor ((zh lsl 5) land mask32)) in
  let zh = zh lxor (zh lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let a0 = zl land 0xFFFF in
  let a1 = zl lsr 16 in
  let p00 = a0 * 0x11EB in
  let mid = (p00 lsr 16) + (a1 * 0x11EB) + (a0 * 0x1331) in
  let lo = (p00 land 0xFFFF) lor ((mid land 0xFFFF) lsl 16) in
  let hi =
    ((mid lsr 16) + (a1 * 0x1331) + ((zl * 0x94D049BB) land mask32)
    + ((zh * 0x133111EB) land mask32))
    land mask32
  in
  let zl = lo and zh = hi in
  (* z ^= z >>> 31 *)
  let zl = zl lxor ((zl lsr 31) lor ((zh lsl 1) land mask32)) in
  let zh = zh lxor (zh lsr 31) in
  (* top 53 bits, scaled to [0, 1) *)
  let bits53 = (zh lsl 21) lor (zl lsr 11) in
  float_of_int bits53 /. 9007199254740992.0

let noisy_factor ~seed ~spread base =
  if spread < 0.0 then invalid_arg "Objective.noisy_factor: negative spread";
  let name = Printf.sprintf "%s~factor(%g)" base.name spread in
  let target = base.target in
  let score v =
    let u = (2.0 *. hash_unit ~seed v) -. 1.0 in
    base.score v *. exp (u *. spread)
  in
  let bs = scorer base in
  let dense v =
    if v = target then infinity
    else begin
      let u = (2.0 *. hash_unit ~seed v) -. 1.0 in
      bs v *. exp (u *. spread)
    end
  in
  {
    name;
    target;
    score = (fun v -> if v = target then infinity else score v);
    dense = Some dense;
  }

let noisy_polynomial ~seed ~delta ~weights base =
  if delta < 0.0 then invalid_arg "Objective.noisy_polynomial: negative delta";
  let name = Printf.sprintf "%s~poly(%g)" base.name delta in
  let target = base.target in
  let perturb s v =
    if s <= 0.0 then s
    else begin
      let m = Float.min weights.(v) (1.0 /. s) in
      let u = (2.0 *. hash_unit ~seed v) -. 1.0 in
      s *. (Float.max 1.0 m ** (u *. delta))
    end
  in
  let score v = perturb (base.score v) v in
  let bs = scorer base in
  let dense v = if v = target then infinity else perturb (bs v) v in
  {
    name;
    target;
    score = (fun v -> if v = target then infinity else score v);
    dense = Some dense;
  }

module Memo = struct
  type scratch = {
    mutable scores : float array;
    mutable stamps : int array;
    mutable gen : int;
  }

  let create () = { scores = [||]; stamps = [||]; gen = 0 }

  let wrap scratch ~n t =
    if n < 0 then invalid_arg "Objective.Memo.wrap: negative n";
    if Array.length scratch.stamps < n then begin
      scratch.scores <- Array.make n 0.0;
      scratch.stamps <- Array.make n 0
    end;
    (* A fresh generation invalidates every cached entry without clearing:
       a slot is valid only while its stamp equals the current generation. *)
    scratch.gen <- scratch.gen + 1;
    let gen = scratch.gen in
    let scores = scratch.scores in
    let stamps = scratch.stamps in
    let base = scorer t in
    let memo v =
      if stamps.(v) = gen then scores.(v)
      else begin
        let s = base v in
        scores.(v) <- s;
        stamps.(v) <- gen;
        s
      end
    in
    { t with dense = Some memo }
end
