type phase = Weight_phase | Objective_phase

type t = {
  score : int -> float;
  weights : float array;
  gamma : float;
  growth : float;
  w_base : float; (* y_0: weight of the first layer *)
  psi_base : float; (* psi_0: objective of the first (largest) layer *)
}

let make ~(inst : Girg.Instance.t) ~target ?(epsilon = 0.1) () =
  if not (epsilon > 0.0 && epsilon < 1.0) then
    invalid_arg "Layers.make: epsilon must lie in (0, 1)";
  let p = inst.params in
  let beta = p.Girg.Params.beta in
  let gamma = (1.0 -. epsilon) /. (beta -. 2.0) in
  let zeta =
    match p.Girg.Params.alpha with
    | Girg.Params.Infinite -> 1.5
    | Girg.Params.Finite a ->
        Float.max 1.5 (((2.0 *. a) -. 1.0) /. ((2.0 *. a) +. 4.0 -. (2.0 *. beta)))
  in
  let growth = (1.0 -. (zeta *. epsilon)) /. (beta -. 2.0) in
  if growth <= 1.0 then
    invalid_arg "Layers.make: epsilon too large for this beta (growth <= 1)";
  let objective = Objective.girg_phi inst ~target in
  {
    score = Objective.scorer objective;
    weights = inst.weights;
    gamma;
    growth;
    w_base = Float.max 2.0 (2.0 *. p.Girg.Params.w_min);
    psi_base = 0.5;
  }

let gamma t = t.gamma
let growth t = t.growth

let phase t v =
  if t.score v <= t.weights.(v) ** -.t.gamma then Weight_phase else Objective_phase

(* Index of x in the doubly exponential ladder x_0 = base, x_{j+1} = x_j^g.
   [direction] is [`Up] for weights (base > 1, growing) and [`Down] for
   objectives (base < 1, shrinking). *)
let ladder_index ~base ~growth x ~direction =
  let inside = match direction with `Up -> x >= base | `Down -> x <= base in
  if not inside then -1
  else begin
    (* log x / log base = g^j  =>  j = floor(log_g (log x / log base)). *)
    let ratio = log x /. log base in
    if ratio < 1.0 then 0 else int_of_float (log ratio /. log growth)
  end

let weight_layer t v =
  ladder_index ~base:t.w_base ~growth:t.growth t.weights.(v) ~direction:`Up

let objective_layer t v =
  let s = t.score v in
  if s = infinity then -1
  else ladder_index ~base:t.psi_base ~growth:t.growth s ~direction:`Down

type walk_report = {
  length : int;
  phase_switches : int;
  repeated_weight_layers : int;
  repeated_objective_layers : int;
  weight_layers_visited : int;
  objective_layers_visited : int;
}

let analyze_walk t walk =
  let phases = List.map (phase t) walk in
  let rec count_switches acc = function
    | a :: (b :: _ as rest) -> count_switches (if a <> b then acc + 1 else acc) rest
    | [ _ ] | [] -> acc
  in
  let count_repeats layers =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun j ->
        if j >= 0 then
          Hashtbl.replace tbl j (1 + Option.value ~default:0 (Hashtbl.find_opt tbl j)))
      layers;
    let repeats = ref 0 and distinct = ref 0 in
    Hashtbl.iter
      (fun _ c ->
        incr distinct;
        if c > 1 then incr repeats)
      tbl;
    (!repeats, !distinct)
  in
  let v1_part =
    List.filter_map
      (fun (v, ph) -> if ph = Weight_phase then Some (weight_layer t v) else None)
      (List.combine walk phases)
  in
  let v2_part =
    List.filter_map
      (fun (v, ph) -> if ph = Objective_phase then Some (objective_layer t v) else None)
      (List.combine walk phases)
  in
  let repeated_weight_layers, weight_layers_visited = count_repeats v1_part in
  let repeated_objective_layers, objective_layers_visited = count_repeats v2_part in
  {
    length = max 0 (List.length walk - 1);
    phase_switches = count_switches 0 phases;
    repeated_weight_layers;
    repeated_objective_layers;
    weight_layers_visited;
    objective_layers_visited;
  }
