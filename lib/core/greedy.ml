(* Metric handles resolve to no-op stubs under SMALLWORLD_OBS=0, so the
   hot loop carries no recording cost when observability is off. *)
let c_routes = Obs.Metrics.counter "route.greedy.routes"
let c_evals = Obs.Metrics.counter "route.greedy.objective_evals"
let c_steps = Obs.Metrics.counter "route.greedy.steps"
let c_dead_ends = Obs.Metrics.counter "route.greedy.dead_ends"

let route ~graph ~objective ~source ?max_steps () =
  let open Objective in
  Obs.Metrics.incr c_routes;
  let recording = Obs.Events.recording () in
  let rid = if recording then Obs.Events.next_route_id () else 0 in
  let max_steps = Option.value max_steps ~default:(Sparse_graph.Graph.n graph + 1) in
  let target = objective.target in
  let phi = Objective.scorer objective in
  if recording then
    Obs.Events.emit
      (Obs.Events.Route_hop { route = rid; hop = 0; vertex = source; objective = phi source });
  let rec go v score_v steps walk =
    if v = target then
      { Outcome.status = Delivered; steps; visited = steps + 1; walk = List.rev walk }
    else if steps >= max_steps then
      { Outcome.status = Cutoff; steps; visited = steps + 1; walk = List.rev walk }
    else begin
      (* Best neighbour; ties resolved towards the smaller id (neighbours
         iterate in ascending order) for determinism. *)
      let best = ref (-1) and best_score = ref neg_infinity in
      Sparse_graph.Graph.iter_neighbors graph v (fun u ->
          Obs.Metrics.incr c_evals;
          let s = phi u in
          if s > !best_score then begin
            best := u;
            best_score := s
          end);
      if !best >= 0 && !best_score > score_v then begin
        if recording then
          Obs.Events.emit
            (Obs.Events.Route_hop { route = rid; hop = steps + 1; vertex = !best; objective = !best_score });
        go !best !best_score (steps + 1) (!best :: walk)
      end
      else begin
        if recording then Obs.Events.emit (Obs.Events.Dead_end { route = rid; vertex = v });
        { Outcome.status = Dead_end; steps; visited = steps + 1; walk = List.rev walk }
      end
    end
  in
  let outcome = go source (phi source) 0 [ source ] in
  Obs.Metrics.add c_steps outcome.Outcome.steps;
  if outcome.Outcome.status = Outcome.Dead_end then Obs.Metrics.incr c_dead_ends;
  outcome
