(** Nestable timed scopes producing a rolled-up tree per trace root.

    Each completed span records wall-clock seconds and bytes allocated
    (via [Gc.allocated_bytes], inclusive of children).  Sibling spans
    with the same name merge — counts, times and subtrees accumulate —
    so a span inside a loop shows up once with [count] = iterations.
    Spans closed with an empty stack become trace roots, retrievable
    through {!roots} / {!Trace.roots}. *)

type t = {
  name : string;
  mutable count : int;  (** merged invocations *)
  mutable wall_s : float;  (** inclusive wall time, summed over invocations *)
  mutable alloc_bytes : float;  (** inclusive GC-allocated bytes *)
  mutable children : t list;  (** first-seen order *)
}

val enabled : bool
(** Same kill switch as {!Metrics.enabled}: with [SMALLWORLD_OBS=0]
    spans neither measure nor collect. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Run [f] inside a span named [name].  Exception-safe; when disabled
    this is exactly [f ()]. *)

val time : name:string -> (unit -> 'a) -> 'a * t option
(** Like {!with_} but also returns the node the span merged into
    ([None] when disabled). *)

val probe : name:string -> (unit -> 'a) -> 'a * t option
(** Like {!time}, but the returned tree is a private deep copy of
    {e this invocation alone}, snapshotted before the span merges into
    the rolled-up profile (which it still does).  Unlike the node
    returned by {!time} — which is shared with the global tree and keeps
    accumulating as later same-name spans merge into it — a probe's tree
    is frozen, so it can be exported as one request's trace.  Only spans
    opened on the calling domain nest under the probe; work fanned out
    to pool domains lands in the global roots instead.  [None] when
    disabled. *)

val copy : t -> t
(** Deep copy (children included); the result shares no mutable state
    with the original. *)

val roots : unit -> t list
(** Completed top-level spans, oldest first. *)

val clear_roots : unit -> unit

val self_s : t -> float
(** Wall time not attributed to children (clamped at 0). *)

val depth : t -> int
(** Nesting depth of the tree rooted here (a leaf has depth 1). *)
