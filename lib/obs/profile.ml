(* Offline assembly of smallworld.trace.v1 records into one tree.

   Each record is one process's span tree for one request, addressed by
   (trace id, span id); a record whose [tr_parent] names another
   record's [tr_span] grafts its root under that record's root span.
   The daemon writes server-side records with [tr_span] = the request
   id the client put in its trace context, so a client record that
   declared that id as a span links up without any clock agreement. *)

type record = Export.trace_record = {
  tr_trace : string;
  tr_span : int;
  tr_parent : int option;
  tr_origin : string;
  tr_t0 : float;
  tr_root : Span.t;
}

let read_line line =
  match Export.json_of_string line with
  | Error e -> Error e
  | Ok j -> Export.trace_of_json j

let read_channel ic =
  let records = ref [] and errors = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match read_line line with
         | Ok r -> records := r :: !records
         | Error e -> errors := Printf.sprintf "line %d: %s" !lineno e :: !errors
     done
   with End_of_file -> ());
  (List.rev !records, List.rev !errors)

let trace_ids records =
  List.fold_left
    (fun acc r -> if List.mem r.tr_trace acc then acc else acc @ [ r.tr_trace ])
    [] records

let merge ?trace_id records =
  match records with
  | [] -> Error "no trace records"
  | first :: _ -> (
      let tid = Option.value trace_id ~default:first.tr_trace in
      match List.filter (fun r -> r.tr_trace = tid) records with
      | [] -> Error (Printf.sprintf "no records for trace %S" tid)
      | records -> (
          (* Work on copies: grafting mutates children lists. *)
          let records =
            List.map (fun r -> { r with tr_root = Span.copy r.tr_root }) records
          in
          let holder_of ?exclude span_id =
            List.find_opt
              (fun r ->
                r.tr_span = span_id
                && match exclude with Some c -> r != c | None -> true)
              records
          in
          let roots, children =
            List.partition
              (fun r ->
                match r.tr_parent with
                | None -> true
                | Some p -> p <> r.tr_span && holder_of p = None)
              records
          in
          List.iter
            (fun child ->
              match child.tr_parent with
              | None -> assert false
              | Some p -> (
                  match holder_of ~exclude:child p with
                  | Some parent ->
                      parent.tr_root.children <-
                        parent.tr_root.children @ [ child.tr_root ]
                  | None -> ()))
            children;
          match roots with
          | [ root ] -> Ok root
          | [] -> Error (Printf.sprintf "trace %S has no root record (cycle?)" tid)
          | many ->
              Error
                (Printf.sprintf "trace %S has %d root records (origins: %s)" tid
                   (List.length many)
                   (String.concat ", " (List.map (fun r -> r.tr_origin) many)))))

type hop = { cp_name : string; cp_wall_s : float; cp_self_s : float }

let critical_path (root : Span.t) =
  let heaviest children =
    List.fold_left
      (fun acc (c : Span.t) ->
        match acc with
        | Some (best : Span.t) when best.wall_s >= c.wall_s -> acc
        | _ -> Some c)
      None children
  in
  let rec go (s : Span.t) =
    match heaviest s.children with
    | None -> [ { cp_name = s.name; cp_wall_s = s.wall_s; cp_self_s = s.wall_s } ]
    | Some next ->
        (* Self contribution telescopes: (wall - next.wall) summed along
           the chain plus the leaf's wall equals the root's wall. *)
        { cp_name = s.name; cp_wall_s = s.wall_s; cp_self_s = s.wall_s -. next.wall_s }
        :: go next
  in
  go root

let total path = List.fold_left (fun acc h -> acc +. h.cp_self_s) 0.0 path
