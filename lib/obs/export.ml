(* Exporters: Prometheus-style text dump of a metrics registry, and the
   JSONL run manifest (one self-contained JSON object per line; schema
   documented in README.md "Observability").  The JSON emitter is local —
   no third-party dependency — and always single-line, so a manifest file
   is valid JSONL by construction. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* Shortest of %.9g/%.17g that parses back to the same double, so
         values (event timestamps in particular) round-trip exactly. *)
      if Float.is_finite f then begin
        let s = Printf.sprintf "%.9g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        Buffer.add_string buf s
      end
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

(* Recursive-descent parser for the same JSON subset the emitter
   produces (used by `bench diff` to read BENCH_*.json files back). *)
let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> failwith m) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then error "expected %c at offset %d" c !pos;
    advance ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then error "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then error "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   if
                     not
                       (String.for_all
                          (function
                            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
                            | _ -> false)
                          hex)
                   then error "bad \\u escape \\u%s at offset %d" hex (!pos - 1);
                   let code = int_of_string ("0x" ^ hex) in
                   pos := !pos + 4;
                   (* The emitter only writes \u for control characters;
                      anything outside one byte degrades to '?'. *)
                   Buffer.add_char buf (if code < 0x100 then Char.chr code else '?')
               | c -> error "bad escape \\%c" c);
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> error "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Failure m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec span_to_json (s : Span.t) =
  Obj
    [
      ("name", Str s.name);
      ("count", Int s.count);
      ("wall_s", Float s.wall_s);
      ("self_s", Float (Span.self_s s));
      ("alloc_bytes", Float s.alloc_bytes);
      ("children", Arr (List.map span_to_json s.children));
    ]

let value_to_json = function
  | Metrics.Counter_v v -> Int v
  | Metrics.Gauge_v v -> Float v
  | Metrics.Histogram_v h ->
      Obj
        [
          ("count", Int h.count);
          ("sum", Float h.sum);
          ("min", if h.count = 0 then Null else Float h.min);
          ("max", if h.count = 0 then Null else Float h.max);
          ("buckets", Arr (List.map (fun (ub, c) -> Arr [ Float ub; Int c ]) h.buckets));
        ]

let snapshot_to_json snap = Obj (List.map (fun (name, v) -> (name, value_to_json v)) snap)

(* Best-effort revision: env override, then .git/HEAD relative to cwd.
   Symbolic refs resolve through the loose ref file, falling back to
   .git/packed-refs (after `git pack-refs` the loose file disappears). *)
let git_rev () =
  match Sys.getenv_opt "SMALLWORLD_GIT_REV" with
  | Some rev -> rev
  | None -> (
      let read_line_of path =
        try In_channel.with_open_text path (fun ic -> In_channel.input_line ic)
        with Sys_error _ -> None
      in
      let packed_ref name =
        let lines =
          try In_channel.with_open_text ".git/packed-refs" In_channel.input_lines
          with Sys_error _ -> []
        in
        List.find_map
          (fun line ->
            (* "<hash> <refname>"; '#' header and '^' peeled-tag lines skip. *)
            match String.index_opt line ' ' with
            | Some i
              when String.length line > 0
                   && line.[0] <> '#'
                   && line.[0] <> '^'
                   && String.sub line (i + 1) (String.length line - i - 1) = name ->
                Some (String.sub line 0 i)
            | Some _ | None -> None)
          lines
      in
      match read_line_of ".git/HEAD" with
      | None -> "unknown"
      | Some head -> (
          match
            if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
              let name = String.trim (String.sub head 5 (String.length head - 5)) in
              match read_line_of (Filename.concat ".git" name) with
              | Some _ as rev -> rev
              | None -> packed_ref name
            end
            else Some head
          with
          | Some rev when String.trim rev <> "" -> String.trim rev
          | Some _ | None -> "unknown"))

let schema_version = "smallworld.obs.v1"

let manifest_line ?(extra = []) ~experiment ~seed ~scale ~registry ~span () =
  json_to_string
    (Obj
       ([
          ("schema", Str schema_version);
          ("experiment", Str experiment);
          ("seed", Int seed);
          ("scale", Str scale);
          ("git_rev", Str (git_rev ()));
          ( "wall_s",
            match span with Some (s : Span.t) -> Float s.wall_s | None -> Null );
          ("span", match span with Some s -> span_to_json s | None -> Null);
          ("metrics", snapshot_to_json (Metrics.snapshot registry));
        ]
       @ extra))

(* Flight-recorder export: one self-contained JSON object per event per
   line (schema smallworld.events.v1), flat fields so downstream tools
   can grep/jq a replay without schema knowledge. *)
let events_schema_version = "smallworld.events.v1"

let event_to_json (e : Events.event) =
  let common = [ ("schema", Str events_schema_version); ("seq", Int e.seq); ("t", Float e.time) ] in
  let typed = ("type", Str (Events.payload_kind e.payload)) in
  let msg_fields ~trace ~msg ~parent ~src ~dst ~kind ~sim_time =
    [
      ("trace", Int trace);
      ("msg", Int msg);
      ("parent", if parent < 0 then Null else Int parent);
      ("src", Int src);
      ("dst", Int dst);
      ("kind", Str kind);
      ("sim_time", Float sim_time);
    ]
  in
  let rest =
    match e.payload with
    | Events.Route_hop { route; hop; vertex; objective } ->
        [ ("route", Int route); ("hop", Int hop); ("vertex", Int vertex); ("objective", Float objective) ]
    | Events.Dead_end { route; vertex } -> [ ("route", Int route); ("vertex", Int vertex) ]
    | Events.Patch_enter { route; vertex; phi } | Events.Patch_exit { route; vertex; phi } ->
        [ ("route", Int route); ("vertex", Int vertex); ("phi", Float phi) ]
    | Events.Phase_switch { route; vertex; phase } ->
        [ ("route", Int route); ("vertex", Int vertex); ("phase", Str phase) ]
    | Events.Msg_send { trace; msg; parent; src; dst; kind; sim_time }
    | Events.Msg_recv { trace; msg; parent; src; dst; kind; sim_time } ->
        msg_fields ~trace ~msg ~parent ~src ~dst ~kind ~sim_time
  in
  Obj ((common @ [ typed ]) @ rest)

let event_line e = json_to_string (event_to_json e)

let write_events oc events =
  List.iter
    (fun e ->
      output_string oc (event_line e);
      output_char oc '\n')
    events

(* Field accessors for the decoders below: each one fails with the field
   name so a bad record pinpoints what was missing or mistyped. *)
let get_field what key j =
  match member key j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing field %S" what key)

let as_int what key = function
  | Int i -> i
  | _ -> failwith (Printf.sprintf "%s: field %S is not an int" what key)

let as_float what key = function
  | Int i -> float_of_int i
  | Float f -> f
  | Null -> Float.nan  (* the emitter writes non-finite floats as null *)
  | _ -> failwith (Printf.sprintf "%s: field %S is not a number" what key)

let as_str what key = function
  | Str s -> s
  | _ -> failwith (Printf.sprintf "%s: field %S is not a string" what key)

let int_field what key j = as_int what key (get_field what key j)
let float_field what key j = as_float what key (get_field what key j)
let str_field what key j = as_str what key (get_field what key j)

let event_of_json j =
  let what = "smallworld.events.v1" in
  match
    (match member "schema" j with
    | Some (Str s) when s <> events_schema_version ->
        failwith (Printf.sprintf "%s: unexpected schema %S" what s)
    | _ -> ());
    let i k = int_field what k j and f k = float_field what k j in
    let s k = str_field what k j in
    let route () = i "route" and vertex () = i "vertex" in
    let msg con =
      let parent = match member "parent" j with Some (Int p) -> p | _ -> -1 in
      con ~trace:(i "trace") ~msg:(i "msg") ~parent ~src:(i "src") ~dst:(i "dst")
        ~kind:(s "kind") ~sim_time:(f "sim_time")
    in
    let payload =
      match s "type" with
      | "route_hop" ->
          Events.Route_hop
            { route = route (); hop = i "hop"; vertex = vertex (); objective = f "objective" }
      | "dead_end" -> Events.Dead_end { route = route (); vertex = vertex () }
      | "patch_enter" ->
          Events.Patch_enter { route = route (); vertex = vertex (); phi = f "phi" }
      | "patch_exit" ->
          Events.Patch_exit { route = route (); vertex = vertex (); phi = f "phi" }
      | "phase_switch" ->
          Events.Phase_switch { route = route (); vertex = vertex (); phase = s "phase" }
      | "msg_send" ->
          msg (fun ~trace ~msg ~parent ~src ~dst ~kind ~sim_time ->
              Events.Msg_send { trace; msg; parent; src; dst; kind; sim_time })
      | "msg_recv" ->
          msg (fun ~trace ~msg ~parent ~src ~dst ~kind ~sim_time ->
              Events.Msg_recv { trace; msg; parent; src; dst; kind; sim_time })
      | other -> failwith (Printf.sprintf "%s: unknown event type %S" what other)
    in
    { Events.seq = int_field what "seq" j; time = float_field what "t" j; payload }
  with
  | e -> Ok e
  | exception Failure m -> Error m

let rec span_of_json j =
  let what = "span" in
  let children =
    match member "children" j with
    | Some (Arr xs) -> List.map span_of_json xs
    | Some _ -> failwith "span: field \"children\" is not an array"
    | None -> []
  in
  (* self_s is derived, so the decoder ignores it; the emitter writes it
     for human readers and jq pipelines only. *)
  {
    Span.name = str_field what "name" j;
    count = int_field what "count" j;
    wall_s = float_field what "wall_s" j;
    alloc_bytes = float_field what "alloc_bytes" j;
    children;
  }

(* One span tree captured for one request, addressable within a trace:
   [root] hangs under span [parent] of some other record of the same
   [trace], letting client and server records merge offline into one
   tree (see {!Profile}). *)
let trace_schema_version = "smallworld.trace.v1"

type trace_record = {
  tr_trace : string;
  tr_span : int;
  tr_parent : int option;
  tr_origin : string;
  tr_t0 : float;
  tr_root : Span.t;
}

let trace_to_json r =
  Obj
    [
      ("schema", Str trace_schema_version);
      ("trace", Str r.tr_trace);
      ("span", Int r.tr_span);
      ("parent", (match r.tr_parent with Some p -> Int p | None -> Null));
      ("origin", Str r.tr_origin);
      ("t0", Float r.tr_t0);
      ("root", span_to_json r.tr_root);
    ]

let trace_line r = json_to_string (trace_to_json r)

let trace_of_json j =
  let what = trace_schema_version in
  match
    (match member "schema" j with
    | Some (Str s) when s = trace_schema_version -> ()
    | Some (Str s) -> failwith (Printf.sprintf "%s: unexpected schema %S" what s)
    | _ -> failwith (Printf.sprintf "%s: missing field \"schema\"" what));
    {
      tr_trace = str_field what "trace" j;
      tr_span = int_field what "span" j;
      tr_parent =
        (match member "parent" j with
        | Some (Int p) -> Some p
        | Some Null | None -> None
        | Some _ -> failwith (Printf.sprintf "%s: field \"parent\" is not an int" what));
      tr_origin = str_field what "origin" j;
      tr_t0 = float_field what "t0" j;
      tr_root = span_of_json (get_field what "root" j);
    }
  with
  | r -> Ok r
  | exception Failure m -> Error m

(* Chrome trace-event JSON (the chrome://tracing / Perfetto "JSON Array
   Format"): one complete ("X") event per span node.  Span trees are
   rolled-up profiles without per-invocation timestamps, so a synthetic
   timeline is laid out instead: the root starts at t0 and each child
   starts where its previous sibling ended, clamped so children never
   overrun their parent (sibling walls can sum past the parent's wall
   when clocks jitter). *)
let chrome_trace ?(t0 = 0.0) (root : Span.t) =
  let events = ref [] in
  let rec layout start (s : Span.t) =
    let dur = Float.max 0.0 s.wall_s in
    events :=
      Obj
        [
          ("name", Str s.name);
          ("ph", Str "X");
          ("ts", Float (start *. 1e6));
          ("dur", Float (dur *. 1e6));
          ("pid", Int 1);
          ("tid", Int 1);
          ( "args",
            Obj
              [
                ("count", Int s.count);
                ("self_s", Float (Span.self_s s));
                ("alloc_bytes", Float s.alloc_bytes);
              ] );
        ]
      :: !events;
    let stop = start +. dur in
    ignore
      (List.fold_left
         (fun at (c : Span.t) ->
           let at = Float.min at stop in
           let c_dur = Float.min (Float.max 0.0 c.wall_s) (stop -. at) in
           layout at { c with wall_s = c_dur };
           at +. c_dur)
         start s.children)
  in
  layout t0 root;
  json_to_string
    (Obj [ ("traceEvents", Arr (List.rev !events)); ("displayTimeUnit", Str "ms") ])

(* Folded-stack flamegraph text (flamegraph.pl / speedscope): one line
   per tree node, "root;child;leaf <count>", where the count is the
   node's self time in integer microseconds.  Frame separators in span
   names are sanitized since ';' and ' ' are the grammar's delimiters. *)
let folded_stacks (root : Span.t) =
  let sanitize name =
    String.map (function ';' -> ':' | ' ' -> '_' | c -> c) name
  in
  let buf = Buffer.create 256 in
  let rec go prefix (s : Span.t) =
    let frame = match prefix with "" -> sanitize s.name | p -> p ^ ";" ^ sanitize s.name in
    let self_us = int_of_float (Float.round (Span.self_s s *. 1e6)) in
    if self_us > 0 || s.children = [] then
      Buffer.add_string buf (Printf.sprintf "%s %d\n" frame (max 0 self_us));
    List.iter (go frame) s.children
  in
  go "" root;
  Buffer.contents buf

(* Prometheus text format: dots and other separators become underscores,
   everything is prefixed with smallworld_.  Histograms are emitted with
   cumulative le buckets as the convention requires. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 11) in
  Buffer.add_string buf "smallworld_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prometheus registry =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = prometheus_name name in
      match v with
      | Metrics.Counter_v n ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname n)
      | Metrics.Gauge_v x ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %g\n" pname pname x)
      | Metrics.Histogram_v h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cum = ref 0 in
          List.iter
            (fun (ub, c) ->
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" pname ub !cum))
            h.buckets;
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname h.count);
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" pname h.sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pname h.count))
    (Metrics.snapshot registry);
  Buffer.contents buf
