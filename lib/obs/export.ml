(* Exporters: Prometheus-style text dump of a metrics registry, and the
   JSONL run manifest (one self-contained JSON object per line; schema
   documented in README.md "Observability").  The JSON emitter is local —
   no third-party dependency — and always single-line, so a manifest file
   is valid JSONL by construction. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

let rec span_to_json (s : Span.t) =
  Obj
    [
      ("name", Str s.name);
      ("count", Int s.count);
      ("wall_s", Float s.wall_s);
      ("self_s", Float (Span.self_s s));
      ("alloc_bytes", Float s.alloc_bytes);
      ("children", Arr (List.map span_to_json s.children));
    ]

let value_to_json = function
  | Metrics.Counter_v v -> Int v
  | Metrics.Gauge_v v -> Float v
  | Metrics.Histogram_v h ->
      Obj
        [
          ("count", Int h.count);
          ("sum", Float h.sum);
          ("min", if h.count = 0 then Null else Float h.min);
          ("max", if h.count = 0 then Null else Float h.max);
          ("buckets", Arr (List.map (fun (ub, c) -> Arr [ Float ub; Int c ]) h.buckets));
        ]

let snapshot_to_json snap = Obj (List.map (fun (name, v) -> (name, value_to_json v)) snap)

(* Best-effort revision: env override, then .git/HEAD relative to cwd. *)
let git_rev () =
  match Sys.getenv_opt "SMALLWORLD_GIT_REV" with
  | Some rev -> rev
  | None -> (
      let read_line_of path =
        try In_channel.with_open_text path (fun ic -> In_channel.input_line ic)
        with Sys_error _ -> None
      in
      match read_line_of ".git/HEAD" with
      | None -> "unknown"
      | Some head -> (
          match
            if String.length head > 5 && String.sub head 0 5 = "ref: " then
              read_line_of (Filename.concat ".git" (String.sub head 5 (String.length head - 5)))
            else Some head
          with
          | Some rev when String.trim rev <> "" -> String.trim rev
          | Some _ | None -> "unknown"))

let schema_version = "smallworld.obs.v1"

let manifest_line ?(extra = []) ~experiment ~seed ~scale ~registry ~span () =
  json_to_string
    (Obj
       ([
          ("schema", Str schema_version);
          ("experiment", Str experiment);
          ("seed", Int seed);
          ("scale", Str scale);
          ("git_rev", Str (git_rev ()));
          ( "wall_s",
            match span with Some (s : Span.t) -> Float s.wall_s | None -> Null );
          ("span", match span with Some s -> span_to_json s | None -> Null);
          ("metrics", snapshot_to_json (Metrics.snapshot registry));
        ]
       @ extra))

(* Prometheus text format: dots and other separators become underscores,
   everything is prefixed with smallworld_.  Histograms are emitted with
   cumulative le buckets as the convention requires. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 11) in
  Buffer.add_string buf "smallworld_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prometheus registry =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = prometheus_name name in
      match v with
      | Metrics.Counter_v n ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname n)
      | Metrics.Gauge_v x ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %g\n" pname pname x)
      | Metrics.Histogram_v h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cum = ref 0 in
          List.iter
            (fun (ub, c) ->
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" pname ub !cum))
            h.buckets;
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname h.count);
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" pname h.sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pname h.count))
    (Metrics.snapshot registry);
  Buffer.contents buf
