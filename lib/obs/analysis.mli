(** Algorithmic analytics over {!Events} streams.

    Computes the paper's trajectory-shaped quantities from a
    [smallworld.events.v1] stream (or the live ring): hop-count
    distribution vs [log log n], per-hop objective-progress curves,
    gravity/pressure phase occupancy, dead-end and patch-entry rates.

    Conventions (pinned, tested): a route's hop count is its largest
    hop index (hop 0 = source, so max index = steps); a route with a
    [dead_end] event failed and every other route is "completed" — for
    pure greedy this matches the delivered/dropped split, so the
    completed hop mean equals [Workload]'s [mean_steps]; phase
    occupancy aggregates only routes with at least one [phase_switch],
    with the implicit starting phase ["gravity"]; a route whose
    smallest hop index is positive was truncated by ring overwrite. *)

type progress_point = { hop : int; routes : int; mean_objective : float }
(** [routes] counts every route that reached the hop; [mean_objective]
    averages the finite objective values only (phi diverges at the
    target, where the distance is 0) and is [nan] when none were. *)

type t = {
  events : int;
  msg_events : int;  (** netsim send/recv events (not route-scoped) *)
  routes : int;
  truncated : int;
  completed : int;
  dead_ends : int;
  dead_end_rate : float;  (** [nan] when no routes *)
  hop_mean : float;  (** over completed routes; [nan] when none *)
  hop_p50 : float;  (** nearest-rank *)
  hop_p90 : float;
  hop_max : int;
  hop_mean_all : float;
  log_log_n : float option;  (** [ln (ln n)] when [analyze ~n] was given *)
  progress : progress_point list;  (** by hop index, ascending *)
  switches : int;
  phased_routes : int;
  hops_gravity : int;
  hops_pressure : int;
  patch_enters : int;
  patch_exits : int;
  routes_with_patch : int;
}

val analyze : ?n:int -> Events.event list -> t
(** Single ordered pass; [n] (vertex count) enables the [log log n]
    comparison. *)

val schema_version : string
(** Currently ["smallworld.analysis.v1"]. *)

val to_json : t -> Export.json
(** The [smallworld.analysis.v1] document (non-finite rates as null). *)

val render : t -> string
(** Human-readable multi-line table of the same quantities. *)
