(* Nestable timed scopes forming a rolled-up call tree.

   Completed spans merge into their parent's children by name (wall time,
   allocation and invocation counts accumulate; grandchildren merge
   recursively), so loops produce one aggregated node per distinct name
   rather than one node per iteration — the tree is a profile, not a log.
   Spans finishing with no parent on the stack become trace roots
   (collected until [clear_roots]).  The whole machinery is disabled
   together with metrics: with SMALLWORLD_OBS=0, [with_] is just an
   application of its argument.

   Domain safety: the open-frame stack is domain-local (Domain.DLS), so
   spans nest within the domain that opened them — a span opened inside
   a Parallel pool task parents to whatever is open on that worker
   domain, not to the submitter's enclosing span.  The finished-roots
   list is mutex-guarded, so rootless spans from any domain land in
   [roots ()] without racing.  Note [Gc.allocated_bytes] is per-domain
   in OCaml 5, so a span's [alloc_bytes] covers only allocation done on
   its own domain. *)

type t = {
  name : string;
  mutable count : int;
  mutable wall_s : float;
  mutable alloc_bytes : float;
  mutable children : t list;  (* first-seen order *)
}

let enabled = Metrics.enabled

type frame = { span : t; t0 : float; a0 : float }

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let roots_lock = Mutex.create ()
let finished_roots : t list ref = ref []

let rec absorb dst src =
  dst.count <- dst.count + src.count;
  dst.wall_s <- dst.wall_s +. src.wall_s;
  dst.alloc_bytes <- dst.alloc_bytes +. src.alloc_bytes;
  List.iter (fun c -> dst.children <- fst (merge_into dst.children c)) src.children

(* Merge [span] into [siblings]; returns the new list and the node that
   now carries the data (the existing sibling of the same name, if any). *)
and merge_into siblings span =
  match List.find_opt (fun c -> c.name = span.name) siblings with
  | Some dst ->
      absorb dst span;
      (siblings, dst)
  | None -> (siblings @ [ span ], span)

(* Merge a finalized frame into the enclosing scope (or the root list). *)
let finish stack fr =
  match !stack with
  | parent :: _ ->
      let siblings, dst = merge_into parent.span.children fr.span in
      parent.span.children <- siblings;
      dst
  | [] ->
      Mutex.lock roots_lock;
      let roots, dst = merge_into !finished_roots fr.span in
      finished_roots := roots;
      Mutex.unlock roots_lock;
      dst

let rec copy t = { t with children = List.map copy t.children }

(* Shared driver for [time] and [probe].  [capture] runs on the frame's
   own span after its clocks are finalized but before it merges into a
   same-name sibling — the only moment the tree still belongs to this
   invocation alone. *)
let run_frame ~name ~capture f =
  let stack = Domain.DLS.get stack_key in
  let fr =
    {
      span = { name; count = 1; wall_s = 0.0; alloc_bytes = 0.0; children = [] };
      t0 = Unix.gettimeofday ();
      a0 = Gc.allocated_bytes ();
    }
  in
  stack := fr :: !stack;
  let dst = ref fr.span in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (match !stack with [] -> () | _ :: rest -> stack := rest);
        fr.span.wall_s <- Unix.gettimeofday () -. fr.t0;
        fr.span.alloc_bytes <- Gc.allocated_bytes () -. fr.a0;
        capture fr.span;
        dst := finish stack fr)
      f
  in
  (result, !dst)

let time ~name f =
  if not enabled then (f (), None)
  else begin
    let result, dst = run_frame ~name ~capture:ignore f in
    (result, Some dst)
  end

let probe ~name f =
  if not enabled then (f (), None)
  else begin
    let captured = ref None in
    let result, _ =
      run_frame ~name ~capture:(fun span -> captured := Some (copy span)) f
    in
    (result, !captured)
  end

let with_ ~name f = fst (time ~name f)

let roots () =
  Mutex.lock roots_lock;
  let r = !finished_roots in
  Mutex.unlock roots_lock;
  r

let clear_roots () =
  Mutex.lock roots_lock;
  finished_roots := [];
  Mutex.unlock roots_lock

let self_s t =
  let child_total = List.fold_left (fun acc c -> acc +. c.wall_s) 0.0 t.children in
  Float.max 0.0 (t.wall_s -. child_total)

let rec depth t = 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children
