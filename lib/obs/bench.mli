(** Continuous-benchmarking records: the [smallworld.bench.v1] schema
    ([BENCH_<label>.json]) and its noise-aware comparator.

    A {!report} captures one `bench record` run — per-experiment median
    and minimum wall time over k repetitions, allocated bytes, counter
    snapshots — stamped with {!Export.git_rev} so a committed baseline
    pins the revision it measured.  {!diff} compares two reports and
    flags only regressions that clear both a relative threshold and an
    absolute noise floor, so CI can gate on wall time without flapping. *)

type entry = {
  id : string;  (** experiment id, e.g. ["E1"] *)
  runs : int;
  median_s : float;
  min_s : float;
  alloc_bytes : float;  (** major+minor allocation of the last run *)
  rss_bytes : float;
      (** peak resident-set bytes of the phase ([VmHWM] of a per-phase
          child process in `bench scale`); [0.] when not recorded —
          in-process experiment entries and reports predating the field
          parse as such, and the RSS axis then never gates *)
  counters : (string * int) list;  (** counter snapshot of the last run *)
}

type report = {
  label : string;
  git_rev : string;
  scale : string;
  seed : int;
  jobs : int;
      (** resolved [Parallel] job count the run executed with; reports
          predating the field parse as [1].  Wall times at different job
          counts are not comparable (and [alloc_bytes] is per-domain in
          OCaml 5), so `bench diff` refuses mismatched reports. *)
  entries : entry list;
}

val schema_version : string
(** Currently ["smallworld.bench.v1"]. *)

val median : float list -> float
(** [nan] on an empty list; mean of the middle pair on even lengths. *)

val make_entry :
  ?rss_bytes:float ->
  id:string ->
  wall_s:float list ->
  alloc_bytes:float ->
  counters:(string * int) list ->
  unit ->
  entry
(** [rss_bytes] defaults to [0.] (not recorded).
    @raise Invalid_argument when [wall_s] is empty. *)

val counters_of_registry : Metrics.registry -> (string * int) list
(** Counter-kind metrics only, sorted by name. *)

val to_json : report -> Export.json
val to_string : report -> string

val of_json : Export.json -> (report, string) result
val of_string : string -> (report, string) result

(** {1 Comparison} *)

type verdict = Ok_within_noise | Regressed | Improved | Missing

type comparison = {
  c_id : string;
  base_median_s : float;
  cur_median_s : float;  (** [nan] when the experiment is {!Missing} *)
  ratio : float;
  verdict : verdict;  (** wall-time verdict *)
  base_alloc_bytes : float;
  cur_alloc_bytes : float;
  alloc_ratio : float;
  alloc_verdict : verdict;
      (** allocation verdict; allocation is deterministic at fixed seed and
          job count, so this gate is trustworthy even on noisy CI boxes *)
  base_rss_bytes : float;
  cur_rss_bytes : float;
  rss_ratio : float;  (** [nan] unless both entries recorded RSS *)
  rss_verdict : verdict;
      (** peak-RSS verdict; [Ok_within_noise] whenever either side did
          not record RSS, so refreshing a pre-RSS baseline never fails
          on this axis.  Never [Missing] — absent experiments are
          already failed by the timing axis. *)
}

val default_threshold_pct : float
(** 25%. *)

val default_min_delta_s : float
(** 5ms: median deltas below this are noise regardless of ratio. *)

val default_alloc_threshold_pct : float
(** 100%: an experiment allocating over twice its baseline bytes fails —
    a structural change (a hot path started boxing), not timer jitter. *)

val default_min_delta_bytes : float
(** 1MB: allocation deltas below this are ignored regardless of ratio. *)

val default_rss_threshold_pct : float
(** 50%: looser than allocation (page-cache accounting and GC heap
    sizing add slack) but tight enough to catch an mmap path that
    started materialising its sections. *)

val default_min_delta_rss_bytes : float
(** 16MB: RSS deltas below this are ignored regardless of ratio. *)

val diff :
  ?threshold_pct:float ->
  ?min_delta_s:float ->
  ?alloc_threshold_pct:float ->
  ?min_delta_bytes:float ->
  ?rss_threshold_pct:float ->
  ?min_delta_rss_bytes:float ->
  baseline:report ->
  current:report ->
  unit ->
  comparison list
(** One comparison per baseline entry.  [Regressed]/[Improved] require
    the median delta to exceed [min_delta_s] {e and} the ratio to leave
    the [1 ± threshold_pct/100] band; the allocation verdict analogously
    uses [min_delta_bytes] and the multiplicative
    [1 + alloc_threshold_pct/100] band ([Improved] below its reciprocal).
    Experiments absent from [current] come back [Missing] on both axes. *)

val regressed : comparison list -> bool
(** {!time_regressed}, {!alloc_regressed} or {!rss_regressed} — the
    full CI gate. *)

val time_regressed : comparison list -> bool
(** True if any wall-time verdict is [Regressed] or [Missing]. *)

val alloc_regressed : comparison list -> bool
(** True if any allocation verdict is [Regressed] or [Missing].  CI legs
    on noisy shared runners can gate on this alone (advisory time). *)

val rss_regressed : comparison list -> bool
(** True if any peak-RSS verdict is [Regressed].  Entries without RSS
    data never trip this. *)

val verdict_to_string : verdict -> string
val render_diff : comparison list -> string
