let roots = Span.roots
let clear = Span.clear_roots

let find name = List.find_opt (fun (s : Span.t) -> s.name = name) (roots ())

let mb bytes = bytes /. 1048576.0

let render ?(max_depth = max_int) (root : Span.t) =
  let buf = Buffer.create 512 in
  let rec go indent depth (s : Span.t) =
    if depth <= max_depth then begin
      let label = indent ^ s.name in
      Buffer.add_string buf
        (Printf.sprintf "%-44s %9.3fs %7.3fs self %6dx %9.1fMB\n" label s.wall_s
           (Span.self_s s) s.count (mb s.alloc_bytes));
      List.iter (go (indent ^ "  ") (depth + 1)) s.children
    end
  in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %10s %12s %7s %11s\n" "span" "wall" "self" "count" "alloc");
  go "" 1 root;
  Buffer.contents buf

let render_all ?max_depth () = String.concat "" (List.map (render ?max_depth) (roots ()))
