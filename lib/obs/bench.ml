(* Continuous-benchmarking records: the smallworld.bench.v1 schema and
   its noise-aware comparator.  A report is one flat JSON object per
   bench run (per-experiment median/min wall time, allocated bytes and
   counter snapshots, stamped with the git revision), written as
   BENCH_<label>.json; `bench diff BASELINE CURRENT` reads two of them
   back and fails only on a median regression that clears both a
   relative threshold and an absolute noise floor. *)

type entry = {
  id : string;
  runs : int;
  median_s : float;
  min_s : float;
  alloc_bytes : float;
  counters : (string * int) list;
}

type report = {
  label : string;
  git_rev : string;
  scale : string;
  seed : int;
  jobs : int;
  entries : entry list;
}

let schema_version = "smallworld.bench.v1"

let median values =
  match List.sort compare values with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let make_entry ~id ~wall_s ~alloc_bytes ~counters =
  if wall_s = [] then invalid_arg "Obs.Bench.make_entry: no samples";
  {
    id;
    runs = List.length wall_s;
    median_s = median wall_s;
    min_s = List.fold_left Float.min infinity wall_s;
    alloc_bytes;
    counters;
  }

let counters_of_registry registry =
  List.filter_map
    (fun (name, v) -> match v with Metrics.Counter_v c -> Some (name, c) | _ -> None)
    (Metrics.snapshot registry)

(* ------------------------------------------------------------------ *)
(* Serialisation *)

let entry_to_json e =
  Export.Obj
    [
      ("id", Export.Str e.id);
      ("runs", Export.Int e.runs);
      ("median_s", Export.Float e.median_s);
      ("min_s", Export.Float e.min_s);
      ("alloc_bytes", Export.Float e.alloc_bytes);
      ("counters", Export.Obj (List.map (fun (k, v) -> (k, Export.Int v)) e.counters));
    ]

let to_json r =
  Export.Obj
    [
      ("schema", Export.Str schema_version);
      ("label", Export.Str r.label);
      ("git_rev", Export.Str r.git_rev);
      ("scale", Export.Str r.scale);
      ("seed", Export.Int r.seed);
      ("jobs", Export.Int r.jobs);
      ("experiments", Export.Arr (List.map entry_to_json r.entries));
    ]

let to_string r = Export.json_to_string (to_json r)

let ( let* ) r f = Result.bind r f

let field name j =
  match Export.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str = function Export.Str s -> Ok s | _ -> Error "expected a string"
let as_int = function Export.Int i -> Ok i | _ -> Error "expected an integer"

let as_float = function
  | Export.Float f -> Ok f
  | Export.Int i -> Ok (float_of_int i)
  | Export.Null -> Ok nan
  | _ -> Error "expected a number"

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let entry_of_json j =
  let* id = Result.bind (field "id" j) as_str in
  let* runs = Result.bind (field "runs" j) as_int in
  let* median_s = Result.bind (field "median_s" j) as_float in
  let* min_s = Result.bind (field "min_s" j) as_float in
  let* alloc_bytes = Result.bind (field "alloc_bytes" j) as_float in
  let* counters =
    match field "counters" j with
    | Ok (Export.Obj fields) ->
        collect (fun (k, v) -> Result.map (fun i -> (k, i)) (as_int v)) fields
    | Ok _ -> Error "counters: expected an object"
    | Error _ -> Ok []
  in
  Ok { id; runs; median_s; min_s; alloc_bytes; counters }

let of_json j =
  let* schema = Result.bind (field "schema" j) as_str in
  if schema <> schema_version then Error (Printf.sprintf "unsupported schema %S" schema)
  else
    let* label = Result.bind (field "label" j) as_str in
    let* git_rev = Result.bind (field "git_rev" j) as_str in
    let* scale = Result.bind (field "scale" j) as_str in
    let* seed = Result.bind (field "seed" j) as_int in
    (* [jobs] joined the schema with the multicore layer; reports
       written before it are single-domain by construction. *)
    let* jobs =
      match field "jobs" j with Ok v -> as_int v | Error _ -> Ok 1
    in
    let* entries =
      match field "experiments" j with
      | Ok (Export.Arr items) -> collect entry_of_json items
      | Ok _ -> Error "experiments: expected an array"
      | Error e -> Error e
    in
    Ok { label; git_rev; scale; seed; jobs; entries }

let of_string s = Result.bind (Export.json_of_string s) of_json

(* ------------------------------------------------------------------ *)
(* Comparison *)

type verdict = Ok_within_noise | Regressed | Improved | Missing

type comparison = {
  c_id : string;
  base_median_s : float;
  cur_median_s : float;  (** [nan] when missing from the current report *)
  ratio : float;
  verdict : verdict;
  base_alloc_bytes : float;
  cur_alloc_bytes : float;
  alloc_ratio : float;
  alloc_verdict : verdict;
}

let default_threshold_pct = 25.0

(* Timings below the floor are dominated by scheduler/GC noise at any
   threshold; ignore them rather than flapping CI. *)
let default_min_delta_s = 0.005

(* Allocation is deterministic at a fixed seed and job count, so the gate
   can be far looser than the timing one and still mean something: 100%
   (a doubling) flags a structural change — a hot path that started
   boxing — not jitter.  The byte floor ignores experiments too small
   for a ratio to matter. *)
let default_alloc_threshold_pct = 100.0
let default_min_delta_bytes = 1_000_000.0

let diff ?(threshold_pct = default_threshold_pct) ?(min_delta_s = default_min_delta_s)
    ?(alloc_threshold_pct = default_alloc_threshold_pct)
    ?(min_delta_bytes = default_min_delta_bytes) ~baseline ~current () =
  List.map
    (fun (b : entry) ->
      match List.find_opt (fun (c : entry) -> c.id = b.id) current.entries with
      | None ->
          {
            c_id = b.id;
            base_median_s = b.median_s;
            cur_median_s = nan;
            ratio = nan;
            verdict = Missing;
            base_alloc_bytes = b.alloc_bytes;
            cur_alloc_bytes = nan;
            alloc_ratio = nan;
            alloc_verdict = Missing;
          }
      | Some c ->
          let ratio = if b.median_s > 0.0 then c.median_s /. b.median_s else nan in
          let delta = c.median_s -. b.median_s in
          let verdict =
            if delta > min_delta_s && ratio > 1.0 +. (threshold_pct /. 100.0) then Regressed
            else if -.delta > min_delta_s && ratio < 1.0 -. (threshold_pct /. 100.0) then Improved
            else Ok_within_noise
          in
          let alloc_ratio =
            if b.alloc_bytes > 0.0 then c.alloc_bytes /. b.alloc_bytes else nan
          in
          let alloc_delta = c.alloc_bytes -. b.alloc_bytes in
          let growth = 1.0 +. (alloc_threshold_pct /. 100.0) in
          let alloc_verdict =
            if alloc_delta > min_delta_bytes && alloc_ratio > growth then Regressed
            else if -.alloc_delta > min_delta_bytes && alloc_ratio < 1.0 /. growth then
              Improved
            else Ok_within_noise
          in
          {
            c_id = b.id;
            base_median_s = b.median_s;
            cur_median_s = c.median_s;
            ratio;
            verdict;
            base_alloc_bytes = b.alloc_bytes;
            cur_alloc_bytes = c.alloc_bytes;
            alloc_ratio;
            alloc_verdict;
          })
    baseline.entries

let time_regressed comparisons =
  List.exists (fun c -> c.verdict = Regressed || c.verdict = Missing) comparisons

let alloc_regressed comparisons =
  List.exists (fun c -> c.alloc_verdict = Regressed || c.alloc_verdict = Missing) comparisons

let regressed comparisons = time_regressed comparisons || alloc_regressed comparisons

let verdict_to_string = function
  | Ok_within_noise -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Missing -> "MISSING"

let mib bytes =
  if Float.is_nan bytes then "-" else Printf.sprintf "%.1fMB" (bytes /. 1_048_576.0)

let render_diff comparisons =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "  %-6s %12s %12s %8s %-10s %10s %10s %8s %s\n" "exp" "base median"
       "cur median" "ratio" "verdict" "base alloc" "cur alloc" "aratio" "alloc verdict");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-6s %11.3fs %11.3fs %8s %-10s %10s %10s %8s %s\n" c.c_id
           c.base_median_s c.cur_median_s
           (if Float.is_nan c.ratio then "-" else Printf.sprintf "%.2fx" c.ratio)
           (verdict_to_string c.verdict) (mib c.base_alloc_bytes) (mib c.cur_alloc_bytes)
           (if Float.is_nan c.alloc_ratio then "-" else Printf.sprintf "%.2fx" c.alloc_ratio)
           (verdict_to_string c.alloc_verdict)))
    comparisons;
  Buffer.contents buf
