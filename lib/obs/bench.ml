(* Continuous-benchmarking records: the smallworld.bench.v1 schema and
   its noise-aware comparator.  A report is one flat JSON object per
   bench run (per-experiment median/min wall time, allocated bytes and
   counter snapshots, stamped with the git revision), written as
   BENCH_<label>.json; `bench diff BASELINE CURRENT` reads two of them
   back and fails only on a median regression that clears both a
   relative threshold and an absolute noise floor. *)

type entry = {
  id : string;
  runs : int;
  median_s : float;
  min_s : float;
  alloc_bytes : float;
  rss_bytes : float;
  counters : (string * int) list;
}

type report = {
  label : string;
  git_rev : string;
  scale : string;
  seed : int;
  jobs : int;
  entries : entry list;
}

let schema_version = "smallworld.bench.v1"

let median values =
  match List.sort compare values with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let make_entry ?(rss_bytes = 0.0) ~id ~wall_s ~alloc_bytes ~counters () =
  if wall_s = [] then invalid_arg "Obs.Bench.make_entry: no samples";
  {
    id;
    runs = List.length wall_s;
    median_s = median wall_s;
    min_s = List.fold_left Float.min infinity wall_s;
    alloc_bytes;
    rss_bytes;
    counters;
  }

let counters_of_registry registry =
  List.filter_map
    (fun (name, v) -> match v with Metrics.Counter_v c -> Some (name, c) | _ -> None)
    (Metrics.snapshot registry)

(* ------------------------------------------------------------------ *)
(* Serialisation *)

let entry_to_json e =
  Export.Obj
    ([
       ("id", Export.Str e.id);
       ("runs", Export.Int e.runs);
       ("median_s", Export.Float e.median_s);
       ("min_s", Export.Float e.min_s);
       ("alloc_bytes", Export.Float e.alloc_bytes);
     ]
    (* Emitted only when measured, so time/alloc-only reports keep their
       v1 byte layout and old readers never see the field. *)
    @ (if e.rss_bytes > 0.0 then [ ("rss_bytes", Export.Float e.rss_bytes) ] else [])
    @ [ ("counters", Export.Obj (List.map (fun (k, v) -> (k, Export.Int v)) e.counters)) ])

let to_json r =
  Export.Obj
    [
      ("schema", Export.Str schema_version);
      ("label", Export.Str r.label);
      ("git_rev", Export.Str r.git_rev);
      ("scale", Export.Str r.scale);
      ("seed", Export.Int r.seed);
      ("jobs", Export.Int r.jobs);
      ("experiments", Export.Arr (List.map entry_to_json r.entries));
    ]

let to_string r = Export.json_to_string (to_json r)

let ( let* ) r f = Result.bind r f

let field name j =
  match Export.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str = function Export.Str s -> Ok s | _ -> Error "expected a string"
let as_int = function Export.Int i -> Ok i | _ -> Error "expected an integer"

let as_float = function
  | Export.Float f -> Ok f
  | Export.Int i -> Ok (float_of_int i)
  | Export.Null -> Ok nan
  | _ -> Error "expected a number"

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let entry_of_json j =
  let* id = Result.bind (field "id" j) as_str in
  let* runs = Result.bind (field "runs" j) as_int in
  let* median_s = Result.bind (field "median_s" j) as_float in
  let* min_s = Result.bind (field "min_s" j) as_float in
  let* alloc_bytes = Result.bind (field "alloc_bytes" j) as_float in
  (* [rss_bytes] joined the schema with the out-of-core scale sweep;
     entries written before it (and in-process experiment entries, whose
     RSS would be meaningless) parse as 0 = "not recorded". *)
  let* rss_bytes =
    match field "rss_bytes" j with Ok v -> as_float v | Error _ -> Ok 0.0
  in
  let* counters =
    match field "counters" j with
    | Ok (Export.Obj fields) ->
        collect (fun (k, v) -> Result.map (fun i -> (k, i)) (as_int v)) fields
    | Ok _ -> Error "counters: expected an object"
    | Error _ -> Ok []
  in
  Ok { id; runs; median_s; min_s; alloc_bytes; rss_bytes; counters }

let of_json j =
  let* schema = Result.bind (field "schema" j) as_str in
  if schema <> schema_version then Error (Printf.sprintf "unsupported schema %S" schema)
  else
    let* label = Result.bind (field "label" j) as_str in
    let* git_rev = Result.bind (field "git_rev" j) as_str in
    let* scale = Result.bind (field "scale" j) as_str in
    let* seed = Result.bind (field "seed" j) as_int in
    (* [jobs] joined the schema with the multicore layer; reports
       written before it are single-domain by construction. *)
    let* jobs =
      match field "jobs" j with Ok v -> as_int v | Error _ -> Ok 1
    in
    let* entries =
      match field "experiments" j with
      | Ok (Export.Arr items) -> collect entry_of_json items
      | Ok _ -> Error "experiments: expected an array"
      | Error e -> Error e
    in
    Ok { label; git_rev; scale; seed; jobs; entries }

let of_string s = Result.bind (Export.json_of_string s) of_json

(* ------------------------------------------------------------------ *)
(* Comparison *)

type verdict = Ok_within_noise | Regressed | Improved | Missing

type comparison = {
  c_id : string;
  base_median_s : float;
  cur_median_s : float;  (** [nan] when missing from the current report *)
  ratio : float;
  verdict : verdict;
  base_alloc_bytes : float;
  cur_alloc_bytes : float;
  alloc_ratio : float;
  alloc_verdict : verdict;
  base_rss_bytes : float;
  cur_rss_bytes : float;
  rss_ratio : float;
  rss_verdict : verdict;
}

let default_threshold_pct = 25.0

(* Timings below the floor are dominated by scheduler/GC noise at any
   threshold; ignore them rather than flapping CI. *)
let default_min_delta_s = 0.005

(* Allocation is deterministic at a fixed seed and job count, so the gate
   can be far looser than the timing one and still mean something: 100%
   (a doubling) flags a structural change — a hot path that started
   boxing — not jitter.  The byte floor ignores experiments too small
   for a ratio to matter. *)
let default_alloc_threshold_pct = 100.0
let default_min_delta_bytes = 1_000_000.0

(* Peak RSS is reproducible at a fixed seed (it is dominated by the data
   structures, not the allocator), but page-cache accounting and GC heap
   sizing add slack, so the gate sits between the timing and allocation
   ones.  The floor ignores instances too small for pages to matter. *)
let default_rss_threshold_pct = 50.0
let default_min_delta_rss_bytes = 16_777_216.0

let diff ?(threshold_pct = default_threshold_pct) ?(min_delta_s = default_min_delta_s)
    ?(alloc_threshold_pct = default_alloc_threshold_pct)
    ?(min_delta_bytes = default_min_delta_bytes)
    ?(rss_threshold_pct = default_rss_threshold_pct)
    ?(min_delta_rss_bytes = default_min_delta_rss_bytes) ~baseline ~current () =
  List.map
    (fun (b : entry) ->
      match List.find_opt (fun (c : entry) -> c.id = b.id) current.entries with
      | None ->
          {
            c_id = b.id;
            base_median_s = b.median_s;
            cur_median_s = nan;
            ratio = nan;
            verdict = Missing;
            base_alloc_bytes = b.alloc_bytes;
            cur_alloc_bytes = nan;
            alloc_ratio = nan;
            alloc_verdict = Missing;
            base_rss_bytes = b.rss_bytes;
            cur_rss_bytes = nan;
            rss_ratio = nan;
            (* The timing axis already fails a missing experiment; the
               RSS axis only ever judges measurements that exist. *)
            rss_verdict = Ok_within_noise;
          }
      | Some c ->
          let ratio = if b.median_s > 0.0 then c.median_s /. b.median_s else nan in
          let delta = c.median_s -. b.median_s in
          let verdict =
            if delta > min_delta_s && ratio > 1.0 +. (threshold_pct /. 100.0) then Regressed
            else if -.delta > min_delta_s && ratio < 1.0 -. (threshold_pct /. 100.0) then Improved
            else Ok_within_noise
          in
          let alloc_ratio =
            if b.alloc_bytes > 0.0 then c.alloc_bytes /. b.alloc_bytes else nan
          in
          let alloc_delta = c.alloc_bytes -. b.alloc_bytes in
          let growth = 1.0 +. (alloc_threshold_pct /. 100.0) in
          let alloc_verdict =
            if alloc_delta > min_delta_bytes && alloc_ratio > growth then Regressed
            else if -.alloc_delta > min_delta_bytes && alloc_ratio < 1.0 /. growth then
              Improved
            else Ok_within_noise
          in
          (* RSS is only comparable when both reports recorded it: a
             report from before the field (or an in-process entry)
             carries 0, and gating 0-vs-measured would fail every
             baseline refresh. *)
          let rss_comparable = b.rss_bytes > 0.0 && c.rss_bytes > 0.0 in
          let rss_ratio = if rss_comparable then c.rss_bytes /. b.rss_bytes else nan in
          let rss_delta = c.rss_bytes -. b.rss_bytes in
          let rss_growth = 1.0 +. (rss_threshold_pct /. 100.0) in
          let rss_verdict =
            if not rss_comparable then Ok_within_noise
            else if rss_delta > min_delta_rss_bytes && rss_ratio > rss_growth then Regressed
            else if -.rss_delta > min_delta_rss_bytes && rss_ratio < 1.0 /. rss_growth then
              Improved
            else Ok_within_noise
          in
          {
            c_id = b.id;
            base_median_s = b.median_s;
            cur_median_s = c.median_s;
            ratio;
            verdict;
            base_alloc_bytes = b.alloc_bytes;
            cur_alloc_bytes = c.alloc_bytes;
            alloc_ratio;
            alloc_verdict;
            base_rss_bytes = b.rss_bytes;
            cur_rss_bytes = c.rss_bytes;
            rss_ratio;
            rss_verdict;
          })
    baseline.entries

let time_regressed comparisons =
  List.exists (fun c -> c.verdict = Regressed || c.verdict = Missing) comparisons

let alloc_regressed comparisons =
  List.exists (fun c -> c.alloc_verdict = Regressed || c.alloc_verdict = Missing) comparisons

(* No [Missing] arm: entries without RSS data come back [Ok_within_noise]
   on this axis by construction. *)
let rss_regressed comparisons = List.exists (fun c -> c.rss_verdict = Regressed) comparisons

let regressed comparisons =
  time_regressed comparisons || alloc_regressed comparisons || rss_regressed comparisons

let verdict_to_string = function
  | Ok_within_noise -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Missing -> "MISSING"

let mib bytes =
  if Float.is_nan bytes then "-" else Printf.sprintf "%.1fMB" (bytes /. 1_048_576.0)

(* 0 means "not recorded" for RSS, so it renders as absent. *)
let mib_rss bytes = if bytes <= 0.0 then "-" else mib bytes

let render_diff comparisons =
  (* The RSS columns only appear when some entry recorded RSS (scale
     reports); plain experiment diffs keep the narrower v1 table. *)
  let with_rss =
    List.exists (fun c -> c.base_rss_bytes > 0.0 || c.cur_rss_bytes > 0.0) comparisons
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "  %-24s %12s %12s %8s %-10s %10s %10s %8s %-13s" "exp" "base median"
       "cur median" "ratio" "verdict" "base alloc" "cur alloc" "aratio" "alloc verdict");
  if with_rss then
    Buffer.add_string buf
      (Printf.sprintf " %10s %10s %8s %s" "base rss" "cur rss" "rratio" "rss verdict");
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-24s %11.3fs %11.3fs %8s %-10s %10s %10s %8s %-13s" c.c_id
           c.base_median_s c.cur_median_s
           (if Float.is_nan c.ratio then "-" else Printf.sprintf "%.2fx" c.ratio)
           (verdict_to_string c.verdict) (mib c.base_alloc_bytes) (mib c.cur_alloc_bytes)
           (if Float.is_nan c.alloc_ratio then "-" else Printf.sprintf "%.2fx" c.alloc_ratio)
           (verdict_to_string c.alloc_verdict));
      if with_rss then
        Buffer.add_string buf
          (Printf.sprintf " %10s %10s %8s %s" (mib_rss c.base_rss_bytes)
             (mib_rss c.cur_rss_bytes)
             (if Float.is_nan c.rss_ratio then "-" else Printf.sprintf "%.2fx" c.rss_ratio)
             (verdict_to_string c.rss_verdict));
      Buffer.add_char buf '\n')
    comparisons;
  Buffer.contents buf
